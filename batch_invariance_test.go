package lsbench_test

// Batch-size invariance: the runner's op-dispatch batch size is a pure
// execution-strategy knob. Virtual-clock results — and therefore every
// report, figure, and service job built on them — must be byte-identical
// at any batch size. These goldens pin that contract.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/figures"
	"repro/internal/report"
	"repro/internal/workload"
)

// batchGoldenScenario is a two-phase scenario with a distribution shift,
// an open-loop arrival process, and pre-training: it exercises every part
// of the pipeline the batch path touches (deferred SLA calibration, phase
// stats, post-change latencies, outcome tallies).
func batchGoldenScenario() core.Scenario {
	return core.Scenario{
		Name:        "batch-invariance",
		Seed:        42,
		InitialData: distgen.NewZipfKeys(43, 1.1, 1<<22),
		InitialSize: 10000,
		TrainBefore: true,
		IntervalNs:  200_000,
		Phases: []core.Phase{
			{
				Name: "steady",
				Ops:  4000,
				Workload: workload.Spec{
					Mix:    workload.ReadHeavy,
					Access: distgen.Static{G: distgen.NewZipfKeys(44, 1.1, 1 << 22)},
				},
			},
			{
				Name: "shift",
				Ops:  4000,
				Workload: workload.Spec{
					Mix:    workload.Mix{GetFrac: 0.3, PutFrac: 0.55, DeleteFrac: 0.05, ScanFrac: 0.1, ScanLimit: 20},
					Access: distgen.Static{G: distgen.NewClustered(45, 25, float64(distgen.KeyDomain)/1e6)},
				},
				Arrival: workload.NewDiurnal(46, 600_000, 0.5, 2),
			},
		},
	}
}

// TestBatchSizeInvariance runs the golden scenario against every standard
// SUT at several batch sizes and asserts the marshalled result JSON is
// byte-for-byte identical to the unbatched (per-op) run.
func TestBatchSizeInvariance(t *testing.T) {
	factories := map[string]func() core.SUT{
		"btree":   core.NewBTreeSUT,
		"hash":    core.NewHashSUT,
		"rmi":     core.NewRMISUT,
		"alex":    core.NewALEXSUT,
		"kvstore": core.NewKVSUTDefault,
	}
	batches := []int{2, 7, 64, 1000}
	for name, f := range factories {
		f := f
		t.Run(name, func(t *testing.T) {
			runner := core.NewRunner()
			// Scenarios hold stateful generators: build a fresh one per run.
			base, err := runner.Run(batchGoldenScenario(), f())
			if err != nil {
				t.Fatal(err)
			}
			golden, err := report.MarshalResult(base)
			if err != nil {
				t.Fatal(err)
			}
			if base.Outcomes.Found == 0 || base.Outcomes.WorkUnits == 0 {
				t.Fatalf("golden run has empty outcomes: %+v", base.Outcomes)
			}
			for _, b := range batches {
				br := core.NewRunner()
				br.Batch = b
				res, err := br.Run(batchGoldenScenario(), f())
				if err != nil {
					t.Fatal(err)
				}
				got, err := report.MarshalResult(res)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, golden) {
					t.Fatalf("batch=%d: result JSON diverges from per-op dispatch\n--- batch ---\n%s\n--- per-op ---\n%s",
						b, got, golden)
				}
				if res.Outcomes != base.Outcomes {
					t.Fatalf("batch=%d: outcomes %+v, want %+v", b, res.Outcomes, base.Outcomes)
				}
			}
		})
	}
}

// TestBatchSizeInvarianceFigures pins the same property one layer up: a
// full figures panel (Fig 1b, phases + cumulative curves + area metrics)
// produces identical per-SUT result JSON whether or not the runner
// batches.
func TestBatchSizeInvarianceFigures(t *testing.T) {
	scale := figures.SmallScale()
	run := func(batch int) [][]byte {
		s := scale
		s.Batch = batch
		r, err := figures.Fig1b(s, 7)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		for _, res := range r.FullResults {
			data, err := report.MarshalResult(res)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, data)
		}
		return out
	}
	golden := run(0)
	batched := run(64)
	if len(golden) != len(batched) {
		t.Fatalf("result count differs: %d vs %d", len(golden), len(batched))
	}
	for i := range golden {
		if !bytes.Equal(golden[i], batched[i]) {
			t.Fatalf("fig1b result %d diverges between batch=0 and batch=64", i)
		}
	}
}
