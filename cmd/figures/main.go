// Command figures regenerates every evaluation artifact of the paper —
// the four panels of Figure 1 plus the Lesson ablations — printing ASCII
// plots to stdout and, with -csv, the raw data series for external
// plotting. This is the end-to-end reproduction entry point referenced by
// EXPERIMENTS.md.
//
// Panels run concurrently under -parallel (default GOMAXPROCS): each
// panel renders into its own buffer and buffers are flushed in
// declaration order, so stdout and every CSV are byte-identical at any
// parallelism level for the same seed.
//
// Usage:
//
//	figures [-scale small|full] [-seed N] [-only fig1a,...] [-csv dir] [-parallel N]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/figures"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/prof"
	"repro/internal/report"
)

// panel is one independently runnable artifact of the reproduction.
type panel struct {
	key string
	run func(w io.Writer, scale figures.Scale, seed uint64, csvDir string) error
}

// panels lists every artifact in output order.
func panels() []panel {
	return []panel{
		{"fig1a", runFig1a},
		{"fig1aw", runFig1aWorkload},
		{"fig1b", runFig1b},
		{"fig1c", runFig1c},
		{"fig1d", runFig1d},
		{"fig1e", runFig1e},
		{"fig1f", runFig1f},
		{"fig1g", runFig1g},
		{"lessons", runLessons},
		{"optdrift", runOptDrift},
		{"ablations", runAblations},
		{"cache", runCache},
		{"sched", runSched},
	}
}

func main() {
	var (
		scaleName  = flag.String("scale", "small", "experiment scale: small or full")
		seed       = flag.Uint64("seed", 42, "base random seed")
		only       = flag.String("only", "", "comma-separated subset: fig1a,fig1aw,fig1b,fig1c,fig1d,fig1e,fig1f,fig1g,lessons,optdrift,ablations,cache,sched")
		csvDir     = flag.String("csv", "", "directory for CSV series")
		parallelN  = flag.Int("parallel", 0, "max concurrent experiment runs (0 = GOMAXPROCS, 1 = serial); output is byte-identical at any setting")
		batchN     = flag.Int("batch", 0, "op-dispatch batch size for the virtual runner (0/1 = per-op); output is byte-identical at any setting")
		faults     = flag.String("faults", "", "fig1e fault plan override, e.g. 'slow@2ms-4ms:factor=8;crash@6ms' (default: derived from each SUT's baseline run)")
		driftList  = flag.String("drift-factor", "", "fig1g drift-intensity grid as a comma list in [0,1], e.g. '0,0.5,1' (default: the built-in 5-point sweep)")
		session    = flag.String("session", "", "fig1g session pacing override 'gap=<dur>[,budget=<dur>]', e.g. 'gap=200us,budget=34us'")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var scale figures.Scale
	switch *scaleName {
	case "small":
		scale = figures.SmallScale()
	case "full":
		scale = figures.FullScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	scale.Parallel = *parallelN
	scale.Batch = *batchN
	scale.Faults = *faults
	if *driftList != "" {
		grid, err := parseDriftList(*driftList)
		if err != nil {
			fatal(err)
		}
		scale.DriftFactors = grid
	}
	if *session != "" {
		gap, budget, err := parseSessionPacing(*session)
		if err != nil {
			fatal(err)
		}
		scale.SessionGapNs = gap
		scale.SessionBudgetNs = budget
	}

	want := map[string]bool{}
	if *only == "" {
		for _, p := range panels() {
			want[p.key] = true
		}
	} else {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	var selected []panel
	for _, p := range panels() {
		if want[p.key] {
			selected = append(selected, p)
		}
	}

	// Fan the panels out; each renders into its own buffer so stdout
	// stays in declaration order regardless of completion order.
	bufs := make([]bytes.Buffer, len(selected))
	err = par.ForEach(len(selected), *parallelN, func(i int) error {
		return selected[i].run(&bufs[i], scale, *seed, *csvDir)
	})
	for i := range bufs {
		os.Stdout.Write(bufs[i].Bytes())
	}
	if err != nil {
		fatal(err)
	}
}

func runSched(w io.Writer, scale figures.Scale, seed uint64, _ string) error {
	section(w, "Extension — learned scheduling on drifting job durations")
	res := figures.SchedExperiment(scale, seed)
	header := []string{"policy", "mean sojourn", "p99 sojourn", "train work"}
	var rows [][]string
	for _, p := range []string{"fifo", "static-sjf", "learned-sjf", "oracle-sjf"} {
		rows = append(rows, []string{
			p,
			fmt.Sprintf("%.3fms", res.MeanSojournNs[p]/1e6),
			fmt.Sprintf("%.3fms", float64(res.P99SojournNs[p])/1e6),
			fmt.Sprintf("%d", res.TrainWork[p]),
		})
	}
	report.Table(w, header, rows)
	fmt.Fprintln(w)
	return nil
}

func runAblations(w io.Writer, scale figures.Scale, seed uint64, _ string) error {
	section(w, "Design-choice ablations (DESIGN.md §5)")

	sla, err := figures.AblationSLA(scale, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "1. SLA threshold source — violation rate: calibrated %.1f%%, 100x-loose %.1f%%, 20x-tight %.1f%%\n",
		sla.CalibratedViolationRate*100, sla.LooseViolationRate*100, sla.TightViolationRate*100)

	phi := figures.AblationPhi(seed)
	fmt.Fprintf(w, "2. Φ estimator choice — KS/MMD pairwise ordering agreement: %.0f%%\n",
		phi.OrderAgreement*100)

	tr, err := figures.AblationTransition(scale, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "3. Transition type — throughput dip: abrupt %.0f%% vs gradual %.0f%%; over-SLA %.3fms vs %.3fms\n",
		tr.AbruptDip*100, tr.GradualDip*100,
		float64(tr.AbruptOverSLA)/1e6, float64(tr.GradualOverSLA)/1e6)

	tp, err := figures.AblationTrainingPlacement(scale, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "4. Training placement — post-shift over-SLA: online %.3fms vs scheduled window %.3fms (window work %d)\n",
		float64(tp.OnlineOverSLA)/1e6, float64(tp.ScheduledOverSLA)/1e6, tp.ScheduledRetrainWork)

	ho, err := figures.AblationHoldout(scale, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "5. Hold-out gap — in/out-of-sample throughput ratio: learned %.2fx vs traditional %.2fx\n\n",
		ho.LearnedGap, ho.TraditionalGap)
	return nil
}

func runCache(w io.Writer, scale figures.Scale, seed uint64, _ string) error {
	section(w, "Extension — learning-based cache eviction")
	res := figures.CacheExperiment(scale, seed)
	header := []string{"trace", "lru", "lfu", "learned", "belady (optimal)"}
	var rows [][]string
	for _, tr := range []string{"stable-zipf", "zipf+scans", "moving-hotspot"} {
		row := res.HitRate[tr]
		rows = append(rows, []string{
			tr,
			fmt.Sprintf("%.1f%%", row["lru"]*100),
			fmt.Sprintf("%.1f%%", row["lfu"]*100),
			fmt.Sprintf("%.1f%%", row["learned"]*100),
			fmt.Sprintf("%.1f%%", res.Belady[tr]*100),
		})
	}
	report.Table(w, header, rows)
	fmt.Fprintln(w)
	return nil
}

func runFig1a(w io.Writer, scale figures.Scale, seed uint64, csvDir string) error {
	section(w, "Figure 1a — throughput per workload/data distribution")
	res, err := figures.Fig1a(scale, seed)
	if err != nil {
		return err
	}
	for _, sut := range report.SortedKeys(res.Rows) {
		report.BoxPlot(w,
			fmt.Sprintf("%s: per-interval throughput by distribution (phi = KS distance from uniform)", sut),
			res.Rows[sut], 64)
		fmt.Fprintln(w)
		if csvDir != "" {
			if err := writeCSV(filepath.Join(csvDir, "fig1a-"+sut+".csv"), func(f *os.File) {
				report.BoxCSV(f, res.Rows[sut])
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFig1aWorkload(w io.Writer, scale figures.Scale, seed uint64, csvDir string) error {
	section(w, "Figure 1a (workload variant) — throughput per workload, Φ = plan-subtree Jaccard")
	res, err := figures.Fig1aWorkload(scale, seed)
	if err != nil {
		return err
	}
	for _, sut := range report.SortedKeys(res.Rows) {
		report.BoxPlot(w,
			fmt.Sprintf("%s: per-interval query throughput by workload family", sut),
			res.Rows[sut], 64)
		fmt.Fprintln(w)
		if csvDir != "" {
			if err := writeCSV(filepath.Join(csvDir, "fig1a-workload-"+sut+".csv"), func(f *os.File) {
				report.BoxCSV(f, res.Rows[sut])
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFig1b(w io.Writer, scale figures.Scale, seed uint64, csvDir string) error {
	section(w, "Figure 1b — cumulative queries over time")
	res, err := figures.Fig1b(scale, seed)
	if err != nil {
		return err
	}
	report.CumulativePlot(w, "build-then-serve: learned (rmi) vs traditional (btree)",
		res.Labels, res.Curves, 100, 18)
	fmt.Fprintln(w)
	if csvDir != "" {
		if err := writeCSV(filepath.Join(csvDir, "fig1b.csv"), func(f *os.File) {
			report.CumulativeCSV(f, res.Labels, res.Curves, 500)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig1c(w io.Writer, scale figures.Scale, seed uint64, csvDir string) error {
	section(w, "Figure 1c — SLA violations around a distribution change")
	res, err := figures.Fig1c(scale, seed)
	if err != nil {
		return err
	}
	for _, sut := range report.SortedKeys(res.Bands) {
		report.BandChart(w, "SLA bands — "+sut, res.Bands[sut], 10)
		fmt.Fprintf(w, "adjustment speed (over-SLA time after change): %.3fms; violation rate %.2f%%\n\n",
			float64(res.AdjustmentSpeed[sut])/1e6, res.ViolationRate[sut]*100)
		if csvDir != "" {
			sut := sut
			if err := writeCSV(filepath.Join(csvDir, "fig1c-"+sut+".csv"), func(f *os.File) {
				report.BandCSV(f, res.Bands[sut])
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFig1d(w io.Writer, scale figures.Scale, seed uint64, csvDir string) error {
	section(w, "Figure 1d — throughput per cost (training vs manual tuning)")
	res, err := figures.Fig1d(scale, seed)
	if err != nil {
		return err
	}
	report.CostPlot(w, "auto-tuned kv store (CPU tier) vs manual DBA",
		res.LearnedCPU, res.Traditional, 80, 16)
	fmt.Fprintln(w)
	report.CostPlot(w, "auto-tuned kv store (GPU tier) vs manual DBA",
		res.LearnedGPU, res.Traditional, 80, 16)
	fmt.Fprintln(w)
	if csvDir != "" {
		if err := writeCSV(filepath.Join(csvDir, "fig1d.csv"), func(f *os.File) {
			report.CostCSV(f, res.LearnedCPU, res.Traditional)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig1e(w io.Writer, scale figures.Scale, seed uint64, csvDir string) error {
	section(w, "Figure 1e — robustness: degradation and recovery under injected faults")
	res, err := figures.Fig1e(scale, seed, scale.Faults)
	if err != nil {
		return err
	}
	for _, sut := range report.SortedKeys(res.Results) {
		r := res.Results[sut]
		rec := res.Recovery[sut]
		rep := res.Reports[sut]
		fmt.Fprintf(w, "%s under %q (baseline %.3fms clean run):\n",
			sut, res.Specs[sut], float64(res.BaselineNs[sut])/1e6)
		report.RobustnessPanel(w, "  robustness", r.Snapshot, rec)
		fmt.Fprintf(w, "  fault ledger        slowed %d, failed %d, crashes %d (retrain work %d)\n\n",
			rep.SlowedOps, rep.FailedOps, rep.Crashes, rep.CrashRetrainWork)
	}
	if csvDir != "" {
		if err := writeCSV(filepath.Join(csvDir, "fig1e.csv"), func(f *os.File) {
			fmt.Fprintln(f, "sut,availability,failed_ops,error_budget_burn,baseline_violation_rate,peak_violation_rate,time_to_recover_ns,recovered,crashes,crash_retrain_work")
			for _, sut := range report.SortedKeys(res.Results) {
				rec := res.Recovery[sut]
				rep := res.Reports[sut]
				fmt.Fprintf(f, "%s,%.6f,%d,%.4f,%.6f,%.6f,%d,%t,%d,%d\n",
					sut, rec.Availability, rec.FailedOps, rec.ErrorBudgetBurn,
					rec.BaselineViolationRate, rec.PeakViolationRate,
					rec.TimeToRecoverNs, rec.Recovered, rep.Crashes, rep.CrashRetrainWork)
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig1f(w io.Writer, scale figures.Scale, seed uint64, csvDir string) error {
	section(w, "Figure 1f — storage tier: buffer pool, eviction policy, and compaction")
	res, err := figures.Fig1f(scale, seed)
	if err != nil {
		return err
	}
	figures.RenderFig1f(w, res)
	if csvDir != "" {
		if err := writeCSV(filepath.Join(csvDir, "fig1f.csv"), func(f *os.File) {
			figures.Fig1fCSV(f, res)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig1g(w io.Writer, scale figures.Scale, seed uint64, csvDir string) error {
	section(w, "Figure 1g — adaptability: the metric quadruple vs drift intensity D")
	res, err := figures.Fig1g(scale, seed)
	if err != nil {
		return err
	}
	figures.RenderFig1g(w, res)
	if csvDir != "" {
		if err := writeCSV(filepath.Join(csvDir, "fig1g.csv"), func(f *os.File) {
			figures.Fig1gCSV(f, res)
		}); err != nil {
			return err
		}
	}
	return nil
}

// parseDriftList parses the -drift-factor comma list into the fig1g
// intensity grid.
func parseDriftList(s string) ([]float64, error) {
	var grid []float64
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-drift-factor: %w", err)
		}
		if d < 0 || d > 1 {
			return nil, fmt.Errorf("-drift-factor: %v outside [0,1]", d)
		}
		grid = append(grid, d)
	}
	return grid, nil
}

// parseSessionPacing parses the -session flag ("gap=<dur>[,budget=<dur>]")
// into virtual-ns think gap and per-session budget.
func parseSessionPacing(s string) (gapNs, budgetNs int64, err error) {
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, 0, fmt.Errorf("-session: %q is not key=value", part)
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			return 0, 0, fmt.Errorf("-session %s: %w", k, err)
		}
		switch k {
		case "gap":
			gapNs = d.Nanoseconds()
		case "budget":
			budgetNs = d.Nanoseconds()
		default:
			return 0, 0, fmt.Errorf("-session: unknown key %q (want gap, budget)", k)
		}
	}
	if gapNs <= 0 {
		return 0, 0, fmt.Errorf("-session: needs a positive gap=<dur>")
	}
	return gapNs, budgetNs, nil
}

func runLessons(w io.Writer, scale figures.Scale, seed uint64, _ string) error {
	section(w, "Lesson ablations")
	l1, err := figures.Lesson1(scale, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Lesson 1 (fixed workloads are easy to learn):\n")
	fmt.Fprintf(w, "  learned/traditional throughput ratio: fixed %.2fx -> drifting %.2fx\n\n",
		l1.FixedRatio, l1.DriftRatio)

	l2, err := figures.Lesson2(scale, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Lesson 2 (averages hide adaptability):\n")
	fmt.Fprintf(w, "  %s: mean %.0f ops/s, p99 latency %dns\n", l2.NameA, l2.MeanA, l2.P99LatencyA)
	fmt.Fprintf(w, "  %s: mean %.0f ops/s, p99 latency %dns\n", l2.NameB, l2.MeanB, l2.P99LatencyB)
	fmt.Fprintf(w, "  means differ %.1f%%; p99 latencies differ %.1fx\n\n",
		l2.MeanGapFraction*100, l2.TailRatio)

	l3, err := figures.Lesson3(scale, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Lesson 3 (training is a first-class result):\n")
	fmt.Fprintf(w, "  training %.3fms; learned %.0fns/op vs traditional %.0fns/op\n",
		float64(l3.TrainNs)/1e6, l3.LearnedOpNs, l3.TraditionalOpNs)
	fmt.Fprintf(w, "  break-even after %.0f queries\n\n", l3.BreakEvenQueries)

	fig, err := figures.Fig1d(scale, seed)
	if err != nil {
		return err
	}
	l4 := figures.Lesson4(fig)
	fmt.Fprintf(w, "Lesson 4 (human cost matters):\n")
	fmt.Fprintf(w, "  machine-only TCO: learned $%.0f vs DBA $%.0f\n", l4.MachineOnlyLearned, l4.MachineOnlyDBA)
	fmt.Fprintf(w, "  with $120/h DBA:  learned $%.0f vs DBA $%.0f\n\n", l4.FullLearned, l4.FullDBA)
	return nil
}

func runOptDrift(w io.Writer, scale figures.Scale, seed uint64, _ string) error {
	section(w, "Extension — learned query optimizer under data drift")
	res, err := figures.OptDrift(scale, seed)
	if err != nil {
		return err
	}
	labels := make([]string, 0, len(res.Results))
	curves := make([]*metrics.CumCurve, 0, len(res.Results))
	for _, name := range report.SortedKeys(res.Results) {
		r := res.Results[name]
		labels = append(labels, name)
		curves = append(curves, r.Cumulative)
		fmt.Fprintf(w, "%-18s %.0f q/s, train work %d, over-SLA after drift %.3fms\n",
			name, r.Throughput(), r.TrainWork, float64(res.AdjustmentSpeed[name])/1e6)
	}
	fmt.Fprintln(w)
	report.CumulativePlot(w, "cumulative queries (drift at midpoint)", labels, curves, 100, 14)
	fmt.Fprintln(w)
	return nil
}

func section(w io.Writer, title string) {
	fmt.Fprintln(w, strings.Repeat("=", len(title)))
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", len(title)))
}

func writeCSV(path string, emit func(*os.File)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	emit(f)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
