// Command lsbenchd serves a system under test over TCP so a benchmark
// driver on another machine can measure it — the paper's §V-A deployment
// ("the benchmark driver should ideally run on a separate machine"). Pair
// it with `lsbench -remote host:port`.
//
// Usage:
//
//	lsbenchd [-addr :7070] [-sut btree|hash|rmi|alex|kvstore]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/netdriver"
)

func main() {
	var (
		addr = flag.String("addr", ":7070", "listen address")
		sut  = flag.String("sut", "btree", "SUT served per connection: btree,hash,rmi,alex,kvstore")
	)
	flag.Parse()

	factories := map[string]func() core.SUT{
		"btree":   core.NewBTreeSUT,
		"hash":    core.NewHashSUT,
		"rmi":     core.NewRMISUT,
		"alex":    core.NewALEXSUT,
		"kvstore": core.NewKVSUTDefault,
	}
	factory, ok := factories[*sut]
	if !ok {
		fmt.Fprintf(os.Stderr, "lsbenchd: unknown SUT %q\n", *sut)
		os.Exit(2)
	}
	srv, err := netdriver.Serve(*addr, factory)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsbenchd:", err)
		os.Exit(1)
	}
	fmt.Printf("lsbenchd: serving %s on %s (fresh instance per connection)\n", *sut, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("lsbenchd: shutting down")
	srv.Close()
}
