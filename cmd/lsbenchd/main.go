// Command lsbenchd serves a system under test over TCP so a benchmark
// driver on another machine can measure it — the paper's §V-A deployment
// ("the benchmark driver should ideally run on a separate machine"). Pair
// it with `lsbench -remote host:port`.
//
// Usage:
//
//	lsbenchd [-addr :7070] [-sut btree|hash|rmi|alex|kvstore] [-io-timeout 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netdriver"
)

func main() {
	var (
		addr      = flag.String("addr", ":7070", "listen address")
		sut       = flag.String("sut", "btree", "SUT served per connection: btree,hash,rmi,alex,kvstore")
		ioTimeout = flag.Duration("io-timeout", 0, "per-frame read/write deadline (0 = none); reclaims connections from dead drivers")
	)
	flag.Parse()

	factories := map[string]func() core.SUT{
		"btree":   core.NewBTreeSUT,
		"hash":    core.NewHashSUT,
		"rmi":     core.NewRMISUT,
		"alex":    core.NewALEXSUT,
		"kvstore": core.NewKVSUTDefault,
	}
	factory, ok := factories[*sut]
	if !ok {
		fmt.Fprintf(os.Stderr, "lsbenchd: unknown SUT %q\n", *sut)
		os.Exit(2)
	}
	srv, err := netdriver.ServeOptions(*addr, factory, netdriver.Options{
		ReadTimeout:  *ioTimeout,
		WriteTimeout: *ioTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsbenchd:", err)
		os.Exit(1)
	}
	fmt.Printf("lsbenchd: serving %s on %s (fresh instance per connection)\n", *sut, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	// Drain: stop accepting, then let every in-flight benchmark session
	// run to completion instead of dropping a driver mid-measurement.
	// Close blocks on the connection handlers' wait group.
	fmt.Printf("lsbenchd: %v — draining in-flight connections\n", s)
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
		fmt.Println("lsbenchd: drained, bye")
	case s := <-sig:
		fmt.Printf("lsbenchd: %v again — dropping remaining connections\n", s)
		os.Exit(1)
	case <-time.After(2 * time.Minute):
		fmt.Println("lsbenchd: drain timeout — dropping remaining connections")
		os.Exit(1)
	}
}
