// Command lsbench runs a benchmark scenario described by a JSON config
// file against one or more systems under test and prints the full report:
// per-phase throughput statistics, the cumulative-completion curve with
// area scores, SLA latency bands with the adjustment-speed metric, and
// training accounting.
//
// Usage:
//
//	lsbench -config scenario.json [-suts btree,rmi,alex,hash,kvstore] [-csv dir]
//	lsbench -example            # print a starter config and exit
//	lsbench -remote host:port   # drive a remote SUT (netdriver server)
//	lsbench ... -faults spec    # inject a deterministic fault plan
//	lsbench ... -record t.lstrace       # record the executed op stream
//	lsbench ... -replay t.lstrace       # replay a recording verbatim
//	lsbench ... -synth-from t.lstrace   # drive phases with load fitted
//	                                    # from a recording (-repeat-frac
//	                                    # adds temporal locality)
//	lsbench ... -drift-factor 0.5       # override every controller drift
//	                                    # clause's intensity D (sweep knob)
//	lsbench ... -session gap=2ms,budget=50ms  # segment interactive sessions
//	                                          # with a per-session budget
//
// With -remote the scenario runs in real time over TCP via the concurrent
// driver; otherwise it runs on the deterministic virtual clock.
//
// -faults takes a fault.ParseSpec schedule, e.g.
// "slow@10ms-30ms:factor=8;crash@50ms;error@70ms-80ms". On the virtual
// clock the windows are in virtual time and results are byte-identical
// per (plan, seed, batch); with -remote they are wall time from run start
// (wire drop/delay windows apply, and the client retries with capped
// seeded backoff). The report gains a robustness panel per SUT.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/kv"
	"repro/internal/metrics"
	"repro/internal/netdriver"
	"repro/internal/pager"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

const exampleConfig = `{
  "name": "drift-demo",
  "seed": 42,
  "initialData": {"kind": "zipf", "theta": 1.1, "universe": 4194304},
  "initialSize": 100000,
  "trainBefore": true,
  "intervalNs": 1000000,
  "phases": [
    {
      "name": "steady",
      "ops": 100000,
      "mix": {"get": 0.95, "put": 0.05},
      "access": {"kind": "static", "gen": {"kind": "zipf", "theta": 1.1, "universe": 4194304}}
    },
    {
      "name": "shift",
      "ops": 100000,
      "mix": {"get": 0.3, "put": 0.7},
      "access": {"kind": "static", "gen": {"kind": "clustered", "clusters": 25}},
      "insertKeys": {"kind": "static", "gen": {"kind": "clustered", "clusters": 25}},
      "arrival": {"kind": "diurnal", "rate": 600000, "amplitude": 0.5, "cycles": 2}
    }
  ]
}`

func main() {
	var (
		configPath = flag.String("config", "", "path to the scenario JSON config")
		suts       = flag.String("suts", "btree,rmi,alex", "comma-separated SUTs: btree,hash,rmi,alex,kvstore,disk-btree,disk-lsm")
		csvDir     = flag.String("csv", "", "directory to write per-figure CSV files into")
		example    = flag.Bool("example", false, "print an example config and exit")
		remote     = flag.String("remote", "", "address of a lsbenchd netdriver server (real-time mode)")
		workers    = flag.Int("workers", 4, "driver workers in -remote mode")
		batch      = flag.Int("batch", 0, "op-dispatch batch size (0/1 = per-op); virtual-clock results are byte-identical at any setting")
		faults     = flag.String("faults", "", "deterministic fault plan (kind@start-end:params;... with kinds slow,error,crash,drop,delay,stall)")
		poolPages  = flag.Int("pool-pages", 64, "buffer-pool capacity in 4KiB pages for disk-backed SUTs")
		poolPolicy = flag.String("pool-policy", "lru", "buffer-pool eviction policy for disk-backed SUTs: lru, clock, 2q")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		record     = flag.String("record", "", "record the executed op stream to this trace file (first SUT's run; with -remote, the driver run)")
		replay     = flag.String("replay", "", "replay this recorded trace instead of the config's phases")
		synthFrom  = flag.String("synth-from", "", "fit this recorded trace and drive the config's phases with synthesized lookalike load")
		repeatFrac = flag.Float64("repeat-frac", 0, "with -synth-from: fraction of keys re-drawn from the recently issued window [0,1)")
		driftKnob  = flag.Float64("drift-factor", -1, "override every controller drift clause's intensity D in [0,1] (-1 keeps the config's factors)")
		session    = flag.String("session", "", "segment interactive sessions: gap=<dur>[,budget=<dur>] (e.g. gap=2ms,budget=50ms)")
	)
	flag.Parse()

	if *example {
		fmt.Println(exampleConfig)
		return
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "lsbench: -config is required (see -example)")
		os.Exit(2)
	}
	if *driftKnob > 1 {
		fatal(fmt.Errorf("-drift-factor %v outside [0,1]", *driftKnob))
	}
	opts := config.Options{DriftFactor: *driftKnob}
	if *session != "" {
		spec, err := parseSessionFlag(*session)
		if err != nil {
			fatal(err)
		}
		opts.Session = spec
	}
	scenario, err := config.LoadWith(*configPath, opts)
	if err != nil {
		fatal(err)
	}
	plan, err := fault.ParseSpec(*faults, scenario.Seed)
	if err != nil {
		fatal(err)
	}

	if *replay != "" && *synthFrom != "" {
		fatal(fmt.Errorf("-replay and -synth-from are mutually exclusive"))
	}
	if *repeatFrac < 0 || *repeatFrac >= 1 {
		fatal(fmt.Errorf("-repeat-frac %v outside [0,1)", *repeatFrac))
	}
	var so sourceOpts
	so.record = *record
	so.repeatFrac = *repeatFrac
	if *replay != "" {
		tr, err := workload.ReadTraceFile(*replay)
		if err != nil {
			fatal(err)
		}
		if tr.Truncated {
			fmt.Fprintf(os.Stderr, "lsbench: warning: %s has a torn tail, replaying the intact %d ops\n", *replay, tr.TotalOps())
		}
		so.replay = tr
	}
	if *synthFrom != "" {
		tr, err := workload.ReadTraceFile(*synthFrom)
		if err != nil {
			fatal(err)
		}
		st := workload.FitTrace(tr, workload.FitOptions{})
		if st.Ops == 0 {
			fatal(fmt.Errorf("%s is empty, nothing to fit", *synthFrom))
		}
		so.stats = st
	}

	if *remote != "" {
		runRemote(scenario, *remote, *workers, *batch, plan, so)
		return
	}

	// Virtual mode: -replay replaces the config's phases with the
	// recording; -synth-from keeps the phase structure but swaps each
	// phase's op source for a fitted synthesizer (the runner reseeds it
	// per phase, so every SUT replays the identical synthetic stream).
	if so.replay != nil {
		scenario.Phases = nil
		for pi, ph := range so.replay.Phases {
			scenario.Phases = append(scenario.Phases, core.Phase{
				Name:   ph.Name,
				Ops:    len(ph.Ops),
				Source: so.replay.PhaseReader(pi),
			})
		}
	}
	if so.stats != nil {
		for pi := range scenario.Phases {
			scenario.Phases[pi].Source = workload.NewSynthesizer(so.stats, workload.PhaseSeed(scenario.Seed, pi), so.repeatFrac)
		}
	}

	// Head-to-head runs must replay identical inputs: stateful generators
	// and arrival processes (drift controllers, session pacers, poisson)
	// would otherwise advance between the per-SUT runs below. Pin the
	// streams once; each run is then a pure replay.
	if len(strings.Split(*suts, ",")) > 1 {
		scenario = scenario.Materialize()
	}

	poolKnobs := pager.PoolKnobs{Pages: *poolPages, Policy: *poolPolicy}.Validate()
	factories := map[string]func() core.SUT{
		"btree":   core.NewBTreeSUT,
		"hash":    core.NewHashSUT,
		"rmi":     core.NewRMISUT,
		"alex":    core.NewALEXSUT,
		"kvstore": core.NewKVSUTDefault,
		"disk-btree": func() core.SUT {
			return core.NewDiskBTreeSUT(poolKnobs)
		},
		"disk-lsm": func() core.SUT {
			return core.NewDiskKVSUT(kv.DefaultKnobs(), poolKnobs)
		},
	}
	var results []*core.Result
	var injectors []*fault.Injector
	for i, name := range strings.Split(*suts, ",") {
		name = strings.TrimSpace(name)
		f, ok := factories[name]
		if !ok {
			fatal(fmt.Errorf("unknown SUT %q (have: btree,hash,rmi,alex,kvstore,disk-btree,disk-lsm)", name))
		}
		// One runner (and injector) per SUT: the injector rides each
		// run's own virtual clock via the WrapSUT hook.
		runner := core.NewRunner()
		runner.Batch = *batch
		var inj *fault.Injector
		if !plan.Empty() {
			runner.WrapSUT = func(s core.SUT, clock sim.Clock) core.SUT {
				inj = fault.NewInjector(plan, clock)
				return fault.Wrap(s, inj)
			}
		}
		// Every SUT sees the same stream, so recording the first run
		// captures the shared workload once.
		var tw *workload.TraceWriter
		var tf *os.File
		if so.record != "" && i == 0 {
			tf, err = os.Create(so.record)
			if err != nil {
				fatal(err)
			}
			tw = workload.NewTraceWriter(tf, scenario.Name, scenario.Seed)
			runner.TraceSink = tw
		}
		res, err := runner.Run(scenario, f())
		if tw != nil {
			cErr := tw.Close()
			if fErr := tf.Close(); cErr == nil {
				cErr = fErr
			}
			if err == nil {
				err = cErr
			}
		}
		if err != nil {
			fatal(err)
		}
		if tw != nil {
			fmt.Printf("op stream recorded to %s\n\n", so.record)
		}
		results = append(results, res)
		injectors = append(injectors, inj)
	}
	printReport(results, *csvDir)
	printRobustness(results, injectors, plan)
}

// printRobustness renders the Fig 1e robustness panel per SUT when a
// fault plan was active.
func printRobustness(results []*core.Result, injectors []*fault.Injector, plan fault.Plan) {
	start, end, ok := plan.OpFaultSpan()
	if !ok {
		return
	}
	for i, r := range results {
		report.RobustnessPanel(os.Stdout,
			fmt.Sprintf("robustness — %s under %q (Fig 1e)", r.SUT, plan.String()),
			r.Snapshot, r.Snapshot.Recovery(start, end, 0))
		if inj := injectors[i]; inj != nil {
			rep := inj.Report()
			fmt.Printf("  fault ledger        slowed %d, failed %d, crashes %d (retrain work %d)\n",
				rep.SlowedOps, rep.FailedOps, rep.Crashes, rep.CrashRetrainWork)
		}
		fmt.Println()
	}
}

// parseSessionFlag parses "gap=<dur>[,budget=<dur>]" into a session spec.
func parseSessionFlag(s string) (*workload.SessionSpec, error) {
	spec := &workload.SessionSpec{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("-session: %q is not key=value", part)
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, fmt.Errorf("-session %s: %w", k, err)
		}
		switch k {
		case "gap":
			spec.GapNs = d.Nanoseconds()
		case "budget":
			spec.BudgetNs = d.Nanoseconds()
		default:
			return nil, fmt.Errorf("-session: unknown key %q (have gap, budget)", k)
		}
	}
	if spec.GapNs <= 0 {
		return nil, fmt.Errorf("-session requires a positive gap")
	}
	return spec, nil
}

// sourceOpts carries the trace/synth CLI selections into the run paths.
type sourceOpts struct {
	record     string
	replay     *workload.Trace
	stats      *workload.TraceStats
	repeatFrac float64
}

func runRemote(scenario core.Scenario, addr string, workers, batch int, plan fault.Plan, so sourceOpts) {
	if so.replay == nil && len(scenario.Phases) != 1 {
		fatal(fmt.Errorf("-remote mode supports single-phase scenarios"))
	}
	opts := netdriver.Options{}
	var inj *fault.Injector
	if !plan.Empty() {
		// Wall-clock injector from run start: wire windows perturb the
		// client's frames, op windows act through the SUT middleware.
		// Retries + deadlines make dropped frames survivable.
		inj = fault.NewInjector(plan, nil)
		opts.ReadTimeout = 250 * time.Millisecond
		opts.WriteTimeout = 250 * time.Millisecond
		opts.MaxRetries = 8
		opts.RetrySeed = scenario.Seed
		opts.WrapConn = func(c net.Conn) net.Conn { return fault.NewConn(c, inj) }
	}
	c, err := netdriver.DialOptions(addr, opts)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	var sut core.SUT = c
	if inj != nil {
		sut = fault.Wrap(c, inj)
	}
	var spec workload.Spec
	dopts := driver.Options{
		Workers: workers,
		Seed:    scenario.Seed,
		SLANs:   scenario.SLANs,
		Batch:   batch,
	}
	switch {
	case so.replay != nil:
		// Replay flattens the recording into one in-order stream; a
		// single worker preserves the recorded op order exactly.
		r := so.replay.Reader()
		dopts.Workers = 1
		dopts.Ops = r.Len()
		dopts.Sources = func(int) workload.Source { return r }
		if workers != 1 {
			fmt.Fprintln(os.Stderr, "lsbench: -replay forces -workers 1 (recorded order is a single stream)")
		}
	case so.stats != nil:
		dopts.Ops = scenario.Phases[0].Ops
		dopts.Sources = func(w int) workload.Source {
			return workload.NewSynthesizer(so.stats, workload.PhaseSeed(scenario.Seed, w), so.repeatFrac)
		}
	default:
		spec = scenario.Phases[0].Workload
		dopts.Ops = scenario.Phases[0].Ops
	}
	var tw *workload.TraceWriter
	var tf *os.File
	if so.record != "" {
		var err error
		tf, err = os.Create(so.record)
		if err != nil {
			fatal(err)
		}
		tw = workload.NewTraceWriter(tf, scenario.Name, scenario.Seed)
		dopts.TraceSink = tw
	}
	res, err := driver.Run(sut, spec, scenario.InitialData, scenario.InitialSize, dopts)
	if tw != nil {
		cErr := tw.Close()
		if fErr := tf.Close(); cErr == nil {
			cErr = fErr
		}
		if err == nil {
			err = cErr
		}
	}
	if err != nil {
		fatal(err)
	}
	if tw != nil {
		fmt.Printf("op stream recorded to %s (one trace phase per worker)\n", so.record)
	}
	if cerr := c.Err(); cerr != nil {
		fatal(fmt.Errorf("remote session failed mid-run (results incomplete): %w", cerr))
	}
	fmt.Printf("remote run against %s\n", addr)
	fmt.Printf("  completed: %d ops in %.3fs (%.0f ops/s)\n",
		res.Completed, float64(res.DurationNs)/1e9, res.Throughput())
	fmt.Printf("  latency: p50=%s p99=%s max=%s (SLA %s, %.2f%% violations)\n",
		ns(res.Latency.Quantile(0.5)), ns(res.Latency.Quantile(0.99)),
		ns(res.Latency.Max()), ns(res.SLANs), res.Bands.ViolationRate()*100)
	if inj != nil {
		if start, end, ok := plan.OpFaultSpan(); ok {
			report.RobustnessPanel(os.Stdout,
				fmt.Sprintf("robustness — remote under %q (Fig 1e)", plan.String()),
				res.Snapshot, res.Snapshot.Recovery(start, end, 0))
		}
		rep := inj.Report()
		fmt.Printf("  fault ledger        failed %d, wire drops %d, wire delays %d, client retries %d\n",
			rep.FailedOps, rep.WireDrops, rep.WireDelays, c.Retries())
	}
}

func printReport(results []*core.Result, csvDir string) {
	if len(results) == 0 {
		return
	}
	fmt.Printf("scenario: %s\n\n", results[0].Scenario)

	// Summary table.
	header := []string{"sut", "ops/s", "p50", "p99", "max", "sla",
		"viol%", "train-work", "online-work", "models"}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.SUT,
			fmt.Sprintf("%.0f", r.Throughput()),
			ns(r.Latency.Quantile(0.5)),
			ns(r.Latency.Quantile(0.99)),
			ns(r.Latency.Max()),
			ns(r.SLANs),
			fmt.Sprintf("%.2f", r.Bands.ViolationRate()*100),
			fmt.Sprintf("%d", r.OfflineTrainWork),
			fmt.Sprintf("%d", r.OnlineTrainWork),
			fmt.Sprintf("%d", r.Models),
		})
	}
	report.Table(os.Stdout, header, rows)
	fmt.Println()

	// Per-phase breakdown (the Figure 1a material).
	for _, r := range results {
		fmt.Printf("%s phases:\n", r.SUT)
		ph := []string{"phase", "ops/s", "completed", "retrain-work"}
		var prows [][]string
		for _, p := range r.Phases {
			prows = append(prows, []string{
				p.Name,
				fmt.Sprintf("%.0f", p.Throughput()),
				fmt.Sprintf("%d", p.Completed),
				fmt.Sprintf("%d", p.RetrainWork),
			})
		}
		report.Table(os.Stdout, ph, prows)
		fmt.Println()
	}

	// Figure 1b.
	labels := make([]string, len(results))
	curves := make([]*metrics.CumCurve, len(results))
	for i, r := range results {
		labels[i] = r.SUT
		curves[i] = r.Cumulative
	}
	report.CumulativePlot(os.Stdout, "cumulative queries over time (Fig 1b)", labels, curves, 100, 16)
	fmt.Println()

	// Figure 1c per SUT.
	for _, r := range results {
		report.BandChart(os.Stdout, fmt.Sprintf("SLA bands — %s (Fig 1c)", r.SUT), r.Bands, 10)
		if len(r.PostChangeLatencies) > 0 {
			adj := metrics.AdjustmentSpeed(r.PostChangeLatencies[0], r.SLANs, len(r.PostChangeLatencies[0]))
			fmt.Printf("adjustment speed after first change: %s over-SLA\n", ns(adj))
		}
		fmt.Println()
	}

	// Interactive-session digest (IDEBench-style per-session SLA).
	haveSessions := false
	for _, r := range results {
		if r.Sessions == nil {
			continue
		}
		if !haveSessions {
			fmt.Println("interactive sessions:")
			haveSessions = true
		}
		ss := r.Sessions
		fmt.Printf("  %-12s %d sessions, %.1f%% met budget %s (%d late ops), makespan p50=%s p99=%s\n",
			r.SUT, ss.Sessions, ss.MetRate()*100, ns(ss.BudgetNs), ss.LateOps,
			ns(ss.Makespan.Quantile(0.5)), ns(ss.Makespan.Quantile(0.99)))
	}
	if haveSessions {
		fmt.Println()
	}

	// Buffer-pool panels for disk-backed SUTs.
	haveStorage := false
	for _, r := range results {
		if r.Storage != nil {
			report.StoragePanel(os.Stdout, fmt.Sprintf("storage — %s (buffer pool)", r.SUT), r.Storage)
			fmt.Println()
			haveStorage = true
		}
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fatal(err)
		}
		writeCSV(filepath.Join(csvDir, "fig1b.csv"), func(f *os.File) {
			report.CumulativeCSV(f, labels, curves, 500)
		})
		if haveStorage {
			writeCSV(filepath.Join(csvDir, "storage.csv"), func(f *os.File) {
				report.StorageCSV(f, results)
			})
		}
		for _, r := range results {
			r := r
			writeCSV(filepath.Join(csvDir, "fig1c-"+r.SUT+".csv"), func(f *os.File) {
				report.BandCSV(f, r.Bands)
			})
		}
		fmt.Printf("CSV series written to %s\n", csvDir)
	}
}

func writeCSV(path string, emit func(*os.File)) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	emit(f)
}

// ns renders nanoseconds human-readably.
func ns(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsbench:", err)
	os.Exit(1)
}
