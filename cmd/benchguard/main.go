// Command benchguard turns `go test -bench` output into a committed
// baseline and fails CI when a benchmark regresses past a threshold.
//
// Emit mode tees bench output from stdin (so the CI log still shows it)
// and writes the parsed series as deterministic JSON; with -count=N the
// fastest of the N shots is kept, taming single-iteration noise:
//
//	go test -bench=. -benchtime=1x -count=3 -run='^$' ./... | benchguard -emit BENCH_smoke.json
//
// Compare mode checks a fresh emission against the committed baseline and
// exits non-zero on any ns/op regression beyond -max-regress:
//
//	benchguard -compare -baseline BENCH_baseline.json -current BENCH_smoke.json
//
// Only benchmarks present in both files are compared, so adding or
// removing a benchmark never breaks the gate — regenerate the baseline
// with `make bench-baseline` when the set changes. Benchmarks faster than
// -min-ns in the baseline are skipped: single-iteration smoke timings of
// micro-benches are noise, the guard is for the heavyweight figure
// harnesses.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement. AllocsPerOp is nil when the bench
// ran without -benchmem (and for baselines emitted before the allocation
// gate existed), so old baseline files keep parsing.
type Entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	Iters       int64    `json:"iters"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// File is the emitted JSON shape: benchmark key -> measurement, where the
// key is "<package>.<name>" with the GOMAXPROCS suffix stripped.
type File struct {
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	var (
		emit       = flag.String("emit", "", "parse `go test -bench` output from stdin (teeing it to stdout) and write the series to this file")
		compare    = flag.Bool("compare", false, "compare -current against -baseline and exit 1 on regression")
		baseline   = flag.String("baseline", "BENCH_baseline.json", "committed baseline file (compare mode)")
		current    = flag.String("current", "BENCH_smoke.json", "freshly emitted file (compare mode)")
		maxRegress = flag.Float64("max-regress", 0.25, "maximum allowed ns/op increase as a fraction of the baseline")
		minNs      = flag.Float64("min-ns", 1e6, "ignore benchmarks whose baseline ns/op is below this (single-shot noise)")
		allocSlack = flag.Int64("alloc-slack", 4, "maximum allowed allocs/op increase beyond max-regress*baseline (absolute; keeps 0-alloc benchmarks honest without tripping on noise)")
	)
	flag.Parse()

	switch {
	case *emit != "":
		if err := emitFile(os.Stdin, os.Stdout, *emit); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
	case *compare:
		regressions, err := compareFiles(*baseline, *current, *maxRegress, *minNs, *allocSlack)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		for _, r := range regressions {
			fmt.Println(r)
		}
		if len(regressions) > 0 {
			fmt.Printf("benchguard: %d benchmark(s) regressed more than %.0f%%\n",
				len(regressions), *maxRegress*100)
			os.Exit(1)
		}
		fmt.Printf("benchguard: no regressions beyond %.0f%%\n", *maxRegress*100)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// emitFile tees r to echo while parsing bench lines, then writes the
// collected series to path as deterministic (sorted-key) JSON.
func emitFile(r io.Reader, echo io.Writer, path string) error {
	f, err := parseBench(r, echo)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ") // map keys marshal sorted
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(echo, "benchguard: wrote %d benchmark(s) to %s\n", len(f.Benchmarks), path)
	return nil
}

// parseBench scans `go test -bench` output. "pkg:" lines set the package
// context; "Benchmark..." lines yield entries keyed by package and name.
func parseBench(r io.Reader, echo io.Writer) (File, error) {
	out := File{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		name, e, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		// With -count=N the same benchmark appears N times; keep the
		// fastest run — best-of-N is far less noisy than any single shot.
		if prev, ok := out.Benchmarks[key]; !ok || e.NsPerOp < prev.NsPerOp {
			out.Benchmarks[key] = e
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses one "BenchmarkX-8  10  123 ns/op ..." line. The
// trailing -N GOMAXPROCS suffix is stripped so the key is stable across
// machines.
func parseBenchLine(line string) (string, Entry, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Entry{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Entry{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Entry{}, false
	}
	// Find the "ns/op" unit; its value is the preceding field. allocs/op
	// (present with -benchmem) is captured the same way.
	e := Entry{Iters: iters}
	found := false
	for i := 3; i < len(fields); i++ {
		switch fields[i] {
		case "ns/op":
			ns, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return "", Entry{}, false
			}
			e.NsPerOp = ns
			found = true
		case "allocs/op":
			if a, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
				e.AllocsPerOp = &a
			}
		}
	}
	if !found {
		return "", Entry{}, false
	}
	return name, e, true
}

// compareFiles returns one line per benchmark that regressed beyond
// maxRegress, comparing only keys present in both files and only those
// with a baseline of at least minNs. When both sides carry allocs/op,
// allocations are gated too: the current count may exceed the baseline by
// at most maxRegress (relative) plus allocSlack (absolute), so a 0-alloc
// baseline stays pinned near zero instead of being exempted by a ratio.
func compareFiles(basePath, curPath string, maxRegress, minNs float64, allocSlack int64) ([]string, error) {
	base, err := readFile(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := readFile(curPath)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var regressions []string
	for _, k := range keys {
		b := base.Benchmarks[k]
		c, ok := cur.Benchmarks[k]
		if !ok || b.NsPerOp < minNs || b.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		if ratio > 1+maxRegress {
			regressions = append(regressions, fmt.Sprintf(
				"REGRESSION %s: %.0f ns/op -> %.0f ns/op (+%.0f%%)",
				k, b.NsPerOp, c.NsPerOp, (ratio-1)*100))
		}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			limit := *b.AllocsPerOp*(1+maxRegress) + float64(allocSlack)
			if *c.AllocsPerOp > limit {
				regressions = append(regressions, fmt.Sprintf(
					"REGRESSION %s: %.0f allocs/op -> %.0f allocs/op (limit %.0f)",
					k, *b.AllocsPerOp, *c.AllocsPerOp, limit))
			}
		}
	}
	return regressions, nil
}

func readFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
