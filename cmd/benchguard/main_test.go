package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkRunner-8   	       1	 5000000 ns/op	  1024 B/op	      10 allocs/op
BenchmarkFast-16    	 1000000	     1.5 ns/op
PASS
ok  	repro/internal/core	0.5s
pkg: repro/internal/figures
BenchmarkFig1a      	       1	 9000000 ns/op
PASS
ok  	repro/internal/figures	1.2s
`

func TestParseBench(t *testing.T) {
	var echo bytes.Buffer
	f, err := parseBench(strings.NewReader(sampleOutput), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sampleOutput {
		t.Fatal("emit mode did not tee its input verbatim")
	}
	want := map[string]Entry{
		"repro/internal/core.BenchmarkRunner":   {NsPerOp: 5e6, Iters: 1, AllocsPerOp: fp(10)},
		"repro/internal/core.BenchmarkFast":     {NsPerOp: 1.5, Iters: 1000000},
		"repro/internal/figures.BenchmarkFig1a": {NsPerOp: 9e6, Iters: 1},
	}
	if len(f.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(f.Benchmarks), len(want), f.Benchmarks)
	}
	for k, w := range want {
		got := f.Benchmarks[k]
		if got.NsPerOp != w.NsPerOp || got.Iters != w.Iters || !allocsEqual(got.AllocsPerOp, w.AllocsPerOp) {
			t.Fatalf("%s = %+v, want %+v", k, got, w)
		}
	}
}

func fp(v float64) *float64 { return &v }

func allocsEqual(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func TestParseBenchKeepsBestOfN(t *testing.T) {
	in := `pkg: p
BenchmarkX-8   	       1	 3000000 ns/op
BenchmarkX-8   	       1	 1000000 ns/op
BenchmarkX-8   	       1	 2000000 ns/op
`
	f, err := parseBench(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Benchmarks["p.BenchmarkX"].NsPerOp; got != 1e6 {
		t.Fatalf("best-of-3 = %v ns/op, want the 1e6 minimum", got)
	}
}

func TestParseBenchLineRejects(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	repro/internal/core	0.5s",
		"Benchmark",                     // no fields
		"BenchmarkX-8 notanint 1 ns/op", // bad iter count
		"BenchmarkX-8 1 2 MB/s",         // no ns/op unit
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine(%q) accepted junk", line)
		}
	}
}

func writeBench(t *testing.T, dir, name string, entries map[string]Entry) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(File{Benchmarks: entries})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]Entry{
		"pkg.BenchmarkStable":    {NsPerOp: 10e6, Iters: 1},
		"pkg.BenchmarkRegressed": {NsPerOp: 10e6, Iters: 1},
		"pkg.BenchmarkTiny":      {NsPerOp: 100, Iters: 1}, // under min-ns: ignored
		"pkg.BenchmarkRemoved":   {NsPerOp: 10e6, Iters: 1},
	})
	cur := writeBench(t, dir, "cur.json", map[string]Entry{
		"pkg.BenchmarkStable":    {NsPerOp: 11e6, Iters: 1},  // +10%: fine
		"pkg.BenchmarkRegressed": {NsPerOp: 14e6, Iters: 1},  // +40%: fails
		"pkg.BenchmarkTiny":      {NsPerOp: 10000, Iters: 1}, // 100x, but tiny
		"pkg.BenchmarkNew":       {NsPerOp: 1e9, Iters: 1},   // not in baseline
	})

	regs, err := compareFiles(base, cur, 0.25, 1e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the +40%% one", regs)
	}
	if !strings.Contains(regs[0], "pkg.BenchmarkRegressed") {
		t.Fatalf("wrong benchmark flagged: %s", regs[0])
	}

	// Within threshold: clean.
	regs, err = compareFiles(base, cur, 0.5, 1e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions at 50%% threshold: %v", regs)
	}
}

func TestCompareAllocs(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]Entry{
		"pkg.BenchmarkZeroAlloc": {NsPerOp: 10e6, Iters: 1, AllocsPerOp: fp(0)},
		"pkg.BenchmarkSteady":    {NsPerOp: 10e6, Iters: 1, AllocsPerOp: fp(100)},
		"pkg.BenchmarkLegacy":    {NsPerOp: 10e6, Iters: 1}, // baseline predates -benchmem
	})
	cur := writeBench(t, dir, "cur.json", map[string]Entry{
		"pkg.BenchmarkZeroAlloc": {NsPerOp: 10e6, Iters: 1, AllocsPerOp: fp(9)},   // 0 -> 9: fails (slack 4)
		"pkg.BenchmarkSteady":    {NsPerOp: 10e6, Iters: 1, AllocsPerOp: fp(110)}, // within 25%+4
		"pkg.BenchmarkLegacy":    {NsPerOp: 10e6, Iters: 1, AllocsPerOp: fp(1e6)}, // no baseline allocs: skipped
	})

	regs, err := compareFiles(base, cur, 0.25, 1e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "pkg.BenchmarkZeroAlloc") || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("regressions = %v, want exactly the zero-alloc allocs/op one", regs)
	}
}

func TestEmitDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	var sink bytes.Buffer
	if err := emitFile(strings.NewReader(sampleOutput), &sink, a); err != nil {
		t.Fatal(err)
	}
	if err := emitFile(strings.NewReader(sampleOutput), &sink, b); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Fatal("same input emitted different JSON")
	}
	if !json.Valid(da) {
		t.Fatal("emitted file is not valid JSON")
	}
}
