// Command lsbench-coord runs the sharded benchmark cluster coordinator:
// it consistent-hashes submitted jobs across a fleet of lsbench-svc
// worker daemons, replicates every worker's result store into a merged
// cluster-wide store by anti-entropy catch-up, serves the merged
// leaderboard, and re-routes work when a worker dies or leaves.
//
// Usage:
//
//	lsbench-coord -workers http://h1:8080,http://h2:8080 [-addr :9090]
//	              [-store cluster.jsonl] [-timeout 5s] [-retries 3]
//	              [-seed 1] [-replicas 64]
//
// Submit a job, watch the cluster, read the merged leaderboard:
//
//	curl -s localhost:9090/v1/jobs -d '{"sut":"rmi","scenario":"smoke"}'
//	curl -s localhost:9090/v1/cluster
//	curl -s 'localhost:9090/v1/leaderboard?scenario=smoke'
//
// Grow or shrink the fleet at runtime:
//
//	curl -s localhost:9090/v1/cluster/join  -d '{"addr":"http://h3:8080"}'
//	curl -s localhost:9090/v1/cluster/leave -d '{"addr":"http://h1:8080"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "coordinator listen address")
		workers  = flag.String("workers", "", "comma-separated worker base URLs (http://host:port)")
		store    = flag.String("store", "cluster.jsonl", "replicated store path (JSON lines; empty = in-memory)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-op deadline on worker calls")
		retries  = flag.Int("retries", 3, "transient-failure re-sends per worker call")
		seed     = flag.Uint64("seed", 1, "retry backoff jitter seed")
		replicas = flag.Int("replicas", 64, "consistent-hash virtual points per node")
	)
	flag.Parse()

	var nodes []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			nodes = append(nodes, w)
		}
	}
	if len(nodes) == 0 {
		fatal(errors.New("no workers: pass -workers http://host:port[,...]"))
	}

	co, err := cluster.New(cluster.Config{
		Workers:        nodes,
		Replicas:       *replicas,
		RequestTimeout: *timeout,
		MaxRetries:     *retries,
		RetrySeed:      *seed,
		StorePath:      *store,
	})
	if err != nil {
		fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: co.Handler()}
	errCh := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Printf("lsbench-coord: listening on %s (%d workers, store %q, %d replicated results)\n",
		*addr, len(nodes), *store, co.Store().Len())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		co.Close()
		fatal(err)
	case s := <-sig:
		fmt.Printf("lsbench-coord: %v — draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "lsbench-coord: shutdown:", err)
	}
	if err := co.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "lsbench-coord:", err)
	}
	fmt.Println("lsbench-coord: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsbench-coord:", err)
	os.Exit(1)
}
