// Command datagen generates synthetic datasets and workload traces to
// files — the §V-C synthetic-data path of the benchmark. Output is one
// uint64 key per line, suitable for dataqual and external tooling.
//
// Usage:
//
//	datagen -kind zipf -n 100000 -theta 1.2 > keys.txt
//	datagen -kind email -n 50000 -addresses       # emit raw addresses
//	datagen -kind drift -n 100000                 # uniform->clustered trace
//	datagen -synth trace.txt -n 100000            # fit §V-C synthesizer to a
//	                                              # recorded trace, emit a
//	                                              # statistically equivalent one
//	datagen -list                                 # show available kinds
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/distgen"
	"repro/internal/synth"
)

func main() {
	var (
		kind      = flag.String("kind", "uniform", "distribution kind")
		n         = flag.Int("n", 100000, "number of keys")
		seed      = flag.Uint64("seed", 1, "random seed")
		theta     = flag.Float64("theta", 1.1, "zipf skew")
		clusters  = flag.Int("clusters", 20, "clustered: cluster count")
		segments  = flag.Int("segments", 16, "segmented: segment count")
		sorted    = flag.Bool("sorted", false, "emit keys sorted ascending")
		addresses = flag.Bool("addresses", false, "email kind: emit raw addresses")
		list      = flag.Bool("list", false, "list available kinds and exit")
		synthPath = flag.String("synth", "", "fit the §V-C synthesizer to this trace file and emit a synthetic equivalent")
		anonymize = flag.Bool("anonymize", false, "with -synth: remap hot-key identities (costs marginal fidelity)")
	)
	flag.Parse()

	if *list {
		fmt.Println("kinds: uniform normal lognormal zipf clustered segmented sequential email drift")
		fmt.Println("or: -synth <trace file>")
		return
	}
	if *n <= 0 {
		fatal(fmt.Errorf("-n must be positive"))
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *synthPath != "" {
		trace, err := readTrace(*synthPath)
		if err != nil {
			fatal(err)
		}
		opts := synth.FitOptions{}
		if *anonymize {
			opts.RemapSeed = *seed | 1
		}
		model, err := synth.Fit(trace, opts)
		if err != nil {
			fatal(err)
		}
		for _, k := range model.Generate(*n, *seed) {
			fmt.Fprintln(w, k)
		}
		return
	}

	if *kind == "email" && *addresses {
		g := distgen.NewEmail(*seed)
		for i := 0; i < *n; i++ {
			fmt.Fprintln(w, g.Address())
		}
		return
	}
	if *kind == "drift" {
		d := distgen.NewBlend(*seed,
			distgen.NewUniform(*seed+1, 0, distgen.KeyDomain/8),
			distgen.NewClustered(*seed+2, *clusters, float64(distgen.KeyDomain)/1e6))
		for i := 0; i < *n; i++ {
			fmt.Fprintln(w, d.KeysAt(float64(i)/float64(*n), 1)[0])
		}
		return
	}

	var g distgen.Generator
	switch *kind {
	case "uniform":
		g = distgen.NewUniform(*seed, 0, distgen.KeyDomain)
	case "normal":
		g = distgen.NewNormal(*seed, float64(distgen.KeyDomain)/2, float64(distgen.KeyDomain)/64)
	case "lognormal":
		g = distgen.NewLognormal(*seed, 0, 2, 1e12)
	case "zipf":
		g = distgen.NewZipfKeys(*seed, *theta, 1<<22)
	case "clustered":
		g = distgen.NewClustered(*seed, *clusters, float64(distgen.KeyDomain)/1e6)
	case "segmented":
		g = distgen.NewSegmented(*seed, *segments)
	case "sequential":
		g = distgen.NewSequential(*seed, 1<<20, 64)
	case "email":
		g = distgen.NewEmail(*seed)
	default:
		fatal(fmt.Errorf("unknown kind %q (try -list)", *kind))
	}

	var keys []uint64
	if *sorted {
		keys = distgen.Sorted(g, *n)
	} else {
		keys = g.Keys(*n)
	}
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

func readTrace(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		s := sc.Text()
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
