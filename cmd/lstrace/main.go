// Command lstrace works with binary workload traces (.lstrace): the
// record → inspect → fit → synthesize flywheel around the benchmark's
// trace format.
//
// Usage:
//
//	lstrace record -config scenario.json -o run.lstrace [-sut btree] [-batch n]
//	    run the scenario on the virtual clock, recording the exact op
//	    stream each phase executes
//	lstrace inspect run.lstrace
//	    print the trace's header, phase layout, op mix, and gap summary
//	lstrace fit run.lstrace [-topk n] [-buckets n]
//	    fit the trace's statistics and print them as JSON
//	lstrace synth -from run.lstrace -n 100000 -o synthetic.lstrace
//	    [-seed s] [-repeat-frac f] [-topk n] [-buckets n]
//	    fit the trace and write a statistically equivalent synthetic
//	    trace, optionally with added temporal locality
//	lstrace import -o run.lstrace [-name n] [-seed s] ycsb.log
//	    convert a YCSB operation log (READ/INSERT/UPDATE/SCAN/DELETE
//	    lines) into a single-phase .lstrace ("-" reads stdin)
//
// A recorded trace replayed through the runner (lsbench -replay)
// reproduces the recorded run's result JSON byte-for-byte; a synthetic
// trace preserves the source's key popularity, op mix, and inter-arrival
// distribution without exposing the original stream.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "fit":
		cmdFit(os.Args[2:])
	case "synth":
		cmdSynth(os.Args[2:])
	case "import":
		cmdImport(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lstrace record|inspect|fit|synth|import [flags] (see go doc for details)")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lstrace:", err)
	os.Exit(1)
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	configPath := fs.String("config", "", "scenario JSON config to run")
	out := fs.String("o", "", "trace file to write")
	sut := fs.String("sut", "btree", "SUT to execute the run (the recorded stream is SUT-independent)")
	batch := fs.Int("batch", 0, "op-dispatch batch size")
	fs.Parse(args)
	if *configPath == "" || *out == "" {
		fatal(fmt.Errorf("record needs -config and -o"))
	}
	scenario, err := config.Load(*configPath)
	if err != nil {
		fatal(err)
	}
	factories := map[string]func() core.SUT{
		"btree":   core.NewBTreeSUT,
		"hash":    core.NewHashSUT,
		"rmi":     core.NewRMISUT,
		"alex":    core.NewALEXSUT,
		"kvstore": core.NewKVSUTDefault,
	}
	f, ok := factories[*sut]
	if !ok {
		fatal(fmt.Errorf("unknown SUT %q (have: btree,hash,rmi,alex,kvstore)", *sut))
	}
	tf, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	tw := workload.NewTraceWriter(tf, scenario.Name, scenario.Seed)
	runner := core.NewRunner()
	runner.Batch = *batch
	runner.TraceSink = tw
	res, err := runner.Run(scenario, f())
	cErr := tw.Close()
	if fErr := tf.Close(); cErr == nil {
		cErr = fErr
	}
	if err == nil {
		err = cErr
	}
	if err != nil {
		os.Remove(*out)
		fatal(err)
	}
	fmt.Printf("recorded %d ops (%d phases) to %s\n", res.Completed+res.Outcomes.Failed, len(res.Phases), *out)
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("inspect needs exactly one trace file"))
	}
	tr, err := workload.ReadTraceFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace %q (seed %d): %d phases, %d ops", tr.Name, tr.Seed, len(tr.Phases), tr.TotalOps())
	if tr.Truncated {
		fmt.Print(" [TORN TAIL: trailing block(s) dropped]")
	}
	fmt.Println()
	for _, ph := range tr.Phases {
		var mix [4]int
		var gapSum int64
		for _, op := range ph.Ops {
			mix[op.Type]++
		}
		for _, g := range ph.Gaps {
			gapSum += g
		}
		meanGap := int64(0)
		if len(ph.Gaps) > 0 {
			meanGap = gapSum / int64(len(ph.Gaps))
		}
		fmt.Printf("  phase %d %q: %d ops (declared %d)  get=%d put=%d del=%d scan=%d  mean gap %dns\n",
			ph.Index, ph.Name, len(ph.Ops), ph.DeclaredOps,
			mix[workload.Get], mix[workload.Put], mix[workload.Delete], mix[workload.Scan], meanGap)
	}
}

func cmdFit(args []string) {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	topK := fs.Int("topk", 0, "head keys tracked exactly (0 = default)")
	buckets := fs.Int("buckets", 0, "tail histogram buckets (0 = default)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("fit needs exactly one trace file"))
	}
	tr, err := workload.ReadTraceFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	st := workload.FitTrace(tr, workload.FitOptions{TopK: *topK, TailBuckets: *buckets})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		fatal(err)
	}
}

func cmdSynth(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	from := fs.String("from", "", "trace file to fit")
	out := fs.String("o", "", "synthetic trace file to write")
	n := fs.Int("n", 100_000, "ops to synthesize")
	seed := fs.Uint64("seed", 1, "synthesizer seed")
	repeatFrac := fs.Float64("repeat-frac", 0, "fraction of keys re-drawn from the recently issued window [0,1)")
	topK := fs.Int("topk", 0, "head keys tracked exactly (0 = default)")
	buckets := fs.Int("buckets", 0, "tail histogram buckets (0 = default)")
	fs.Parse(args)
	if *from == "" || *out == "" {
		fatal(fmt.Errorf("synth needs -from and -o"))
	}
	if *n <= 0 {
		fatal(fmt.Errorf("-n must be positive"))
	}
	if *repeatFrac < 0 || *repeatFrac >= 1 {
		fatal(fmt.Errorf("-repeat-frac %v outside [0,1)", *repeatFrac))
	}
	tr, err := workload.ReadTraceFile(*from)
	if err != nil {
		fatal(err)
	}
	st := workload.FitTrace(tr, workload.FitOptions{TopK: *topK, TailBuckets: *buckets})
	if st.Ops == 0 {
		fatal(fmt.Errorf("%s is empty, nothing to fit", *from))
	}
	synth := workload.NewSynthesizer(st, *seed, *repeatFrac)

	tf, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	tw := workload.NewTraceWriter(tf, tr.Name+"-synth", *seed)
	tw.BeginPhase(0, "synth", *n)
	const chunk = 4096
	ops := make([]workload.Op, chunk)
	gaps := make([]int64, chunk)
	for i := 0; i < *n; i += chunk {
		bn := chunk
		if rest := *n - i; bn > rest {
			bn = rest
		}
		synth.Fill(ops[:bn], gaps[:bn], i, *n)
		tw.Append(ops[:bn], gaps[:bn])
	}
	cErr := tw.Close()
	if fErr := tf.Close(); cErr == nil {
		cErr = fErr
	}
	if cErr != nil {
		os.Remove(*out)
		fatal(cErr)
	}
	fmt.Printf("synthesized %d ops from %s (repeat-frac %.2f) to %s\n", *n, *from, *repeatFrac, *out)
}

func cmdImport(args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	out := fs.String("o", "", "trace file to write")
	name := fs.String("name", "ycsb-import", "trace name recorded in the header")
	seed := fs.Uint64("seed", 0, "seed recorded in the header (imports have none of their own)")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 1 {
		fatal(fmt.Errorf("import needs -o and exactly one YCSB log file (or -)"))
	}
	in := os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	ops, err := workload.ImportYCSB(in)
	if err != nil {
		fatal(err)
	}
	gaps := make([]int64, len(ops))

	tf, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	tw := workload.NewTraceWriter(tf, *name, *seed)
	tw.BeginPhase(0, "import", len(ops))
	tw.Append(ops, gaps)
	cErr := tw.Close()
	if fErr := tf.Close(); cErr == nil {
		cErr = fErr
	}
	if cErr != nil {
		os.Remove(*out)
		fatal(cErr)
	}
	fmt.Printf("imported %d YCSB ops to %s\n", len(ops), *out)
}
