// Command dataqual is the dataset/workload quality tool the paper proposes
// in §V-C: it scores a key trace (and optionally an inter-arrival trace)
// for benchmark suitability, attributing low marks to uniform/static
// inputs and high marks to skew, structure, drift, and load variation.
//
// Usage:
//
//	dataqual -keys trace.txt [-gaps gaps.txt]      # one integer per line
//	dataqual -demo                                  # score built-in examples
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/distgen"
	"repro/internal/quality"
	"repro/internal/workload"
)

func main() {
	var (
		keysPath = flag.String("keys", "", "file with one key (uint64) per line, in arrival order")
		gapsPath = flag.String("gaps", "", "optional file with inter-arrival gaps in ns, one per line")
		demo     = flag.Bool("demo", false, "score built-in example traces and exit")
	)
	flag.Parse()

	if *demo {
		runDemo()
		return
	}
	if *keysPath == "" {
		fmt.Fprintln(os.Stderr, "dataqual: -keys is required (or -demo)")
		os.Exit(2)
	}
	keys, err := readUints(*keysPath)
	if err != nil {
		fatal(err)
	}
	var gaps []int64
	if *gapsPath != "" {
		raw, err := readUints(*gapsPath)
		if err != nil {
			fatal(err)
		}
		gaps = make([]int64, len(raw))
		for i, g := range raw {
			gaps[i] = int64(g)
		}
	}
	r := quality.Score(keys, gaps)
	printReport("input", r)
}

func runDemo() {
	const n = 50000
	cases := []struct {
		name string
		keys []uint64
		gaps []int64
	}{
		{"uniform-static", distgen.NewUniform(1, 0, distgen.KeyDomain).Keys(n), nil},
		{"zipf-skewed", distgen.NewZipfKeys(2, 1.3, 100000).Keys(n), nil},
		{"clustered", distgen.NewClustered(3, 10, 1e9).Keys(n), nil},
		{"drifting", driftTrace(n), nil},
		{"bursty-load", distgen.NewZipfKeys(4, 1.1, 100000).Keys(n), burstGaps(n)},
	}
	for _, c := range cases {
		printReport(c.name, quality.Score(c.keys, c.gaps))
	}
}

func driftTrace(n int) []uint64 {
	d := distgen.NewBlend(5,
		distgen.NewUniform(6, 0, distgen.KeyDomain/8),
		distgen.NewClustered(7, 5, 1e8))
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.KeysAt(float64(i)/float64(n), 1)[0])
	}
	return out
}

func burstGaps(n int) []int64 {
	b := workload.NewBursty(8, 10000, 20, 0.1, 5)
	out := make([]int64, n)
	for i := range out {
		out[i] = b.NextGap(float64(i) / float64(n))
	}
	return out
}

func printReport(name string, r quality.Report) {
	fmt.Printf("%-16s skew=%.2f shape=%.2f drift=%.2f load=%.2f overall=%.2f — %s\n",
		name, r.SkewScore, r.ShapeScore, r.DriftScore, r.LoadScore, r.Overall,
		quality.Grade(r.Overall))
}

func readUints(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := sc.Text()
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dataqual:", err)
	os.Exit(1)
}
