// Command lsbench-svc runs the benchmark as a service (paper §V-B): an
// HTTP daemon that accepts scenario×SUT job submissions, executes them on
// a bounded worker queue under the deterministic virtual-clock runner,
// persists every result to an append-only JSON-lines store, and serves a
// leaderboard over it. Sealed hold-out scenarios (JSON files in
// -holdouts) may be consumed exactly once per SUT.
//
// Usage:
//
//	lsbench-svc [-addr :8080] [-store results.jsonl] [-holdouts dir]
//	            [-workers 2] [-queue 16] [-timeout 2m]
//
// Submit a job, poll it, read the leaderboard:
//
//	curl -s localhost:8080/v1/jobs -d '{"sut":"rmi","scenario":"smoke"}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -s localhost:8080/v1/jobs/j1/result
//	curl -s 'localhost:8080/v1/leaderboard?scenario=smoke'
//
// SIGINT/SIGTERM drains: the listener stops, queued and running jobs
// finish and persist, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		store    = flag.String("store", "results.jsonl", "result store path (JSON lines; empty = in-memory)")
		holdouts = flag.String("holdouts", "", "directory of sealed hold-out scenario JSON files")
		workers  = flag.Int("workers", 2, "concurrent benchmark runs")
		queue    = flag.Int("queue", 16, "pending-job bound (full queue returns 429)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-job wall-clock timeout (0 = none)")
	)
	flag.Parse()

	reg := core.NewHoldoutRegistry()
	if *holdouts != "" {
		if err := registerHoldouts(reg, *holdouts); err != nil {
			fatal(err)
		}
	}

	svc, err := service.New(service.Config{
		Holdouts:   reg,
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *timeout,
		StorePath:  *store,
		LogWriter:  os.Stderr,
	})
	if err != nil {
		fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Printf("lsbench-svc: listening on %s (store %q, %d workers, queue %d, %d stored results)\n",
		*addr, *store, *workers, *queue, svc.Store().Len())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		svc.Close()
		fatal(err)
	case s := <-sig:
		fmt.Printf("lsbench-svc: %v — draining\n", s)
	}

	// Stop accepting, let in-flight HTTP requests finish, then drain the
	// job queue so every accepted run is executed and persisted.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "lsbench-svc: shutdown:", err)
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "lsbench-svc:", err)
	}
	fmt.Println("lsbench-svc: drained, bye")
}

// registerHoldouts seals every *.json scenario in dir under its base name.
// Files are re-parsed per run, so each attempt gets fresh generators and
// the scenario contents never appear on the API.
func registerHoldouts(reg *core.HoldoutRegistry, dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return err
	}
	for _, p := range paths {
		p := p
		// Validate eagerly so a bad file fails at startup, not at the
		// (single!) submission that would consume an attempt.
		if _, err := config.Load(p); err != nil {
			return fmt.Errorf("hold-out %s: %w", p, err)
		}
		name := strings.TrimSuffix(filepath.Base(p), ".json")
		err := reg.Register(name, func() core.Scenario {
			sc, err := config.Load(p)
			if err != nil {
				// Validated at startup; a later parse failure means the
				// file changed underneath the sealed registry.
				panic(fmt.Sprintf("lsbench-svc: hold-out %s: %v", p, err))
			}
			return sc
		})
		if err != nil {
			return err
		}
		fmt.Printf("lsbench-svc: sealed hold-out %q\n", name)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsbench-svc:", err)
	os.Exit(1)
}
