package report

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/stats"
)

func sampleSummary(vals ...float64) stats.Summary {
	return stats.Summarize(vals)
}

func TestBoxPlotSortsAndRenders(t *testing.T) {
	var sb strings.Builder
	rows := []BoxRow{
		{Label: "far", Phi: 0.9, Summary: sampleSummary(10, 20, 30, 40, 50)},
		{Label: "base", Phi: 0, Summary: sampleSummary(100, 110, 120, 130, 140)},
		{Label: "held", Phi: 0.5, Summary: sampleSummary(60, 70, 80), Holdout: true},
	}
	BoxPlot(&sb, "fig1a", rows, 60)
	out := sb.String()
	if !strings.Contains(out, "fig1a") {
		t.Fatal("missing title")
	}
	// Sorted by phi: base before held before far.
	if strings.Index(out, "base") > strings.Index(out, "held") ||
		strings.Index(out, "held") > strings.Index(out, "far") {
		t.Fatalf("rows not sorted by phi:\n%s", out)
	}
	if !strings.Contains(out, "(holdout)") {
		t.Fatal("holdout marker missing")
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "[") {
		t.Fatal("box glyphs missing")
	}
}

func TestBoxPlotEmptyRows(t *testing.T) {
	var sb strings.Builder
	BoxPlot(&sb, "empty", []BoxRow{{Label: "x", Phi: 0}}, 50)
	if sb.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestBoxCSV(t *testing.T) {
	var sb strings.Builder
	BoxCSV(&sb, []BoxRow{
		{Label: "with,comma", Phi: 0.1, Summary: sampleSummary(1, 2, 3)},
	})
	out := sb.String()
	if !strings.HasPrefix(out, "label,phi,holdout") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatal("csv escaping failed")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatal("row count")
	}
}

func makeCurve(n int, gap int64) *metrics.CumCurve {
	c := &metrics.CumCurve{}
	for i := 1; i <= n; i++ {
		c.AddCompletion(int64(i) * gap)
	}
	return c
}

func TestCumulativePlot(t *testing.T) {
	var sb strings.Builder
	fast := makeCurve(1000, 1e6)
	slow := makeCurve(500, 2e6)
	CumulativePlot(&sb, "fig1b", []string{"learned", "traditional"},
		[]*metrics.CumCurve{fast, slow}, 60, 10)
	out := sb.String()
	if !strings.Contains(out, "area-vs-ideal") {
		t.Fatal("missing area score")
	}
	if !strings.Contains(out, "area difference") {
		t.Fatal("missing pairwise area difference")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("curve marks missing")
	}
}

func TestCumulativePlotEmpty(t *testing.T) {
	var sb strings.Builder
	CumulativePlot(&sb, "x", []string{"a"}, []*metrics.CumCurve{{}}, 40, 8)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty curve must say no data")
	}
}

func TestCumulativePlotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CumulativePlot(&strings.Builder{}, "x", []string{"a", "b"}, []*metrics.CumCurve{{}}, 40, 8)
}

func TestCumulativeCSV(t *testing.T) {
	var sb strings.Builder
	CumulativeCSV(&sb, []string{"a"}, []*metrics.CumCurve{makeCurve(100, 1e6)}, 10)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 11 { // header + 10 points
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestBandChart(t *testing.T) {
	bt := metrics.NewBandTracker(1000, 1e9)
	for i := 0; i < 50; i++ {
		bt.Record(int64(i)*1e8, 500) // within
	}
	for i := 0; i < 20; i++ {
		bt.Record(5e9+int64(i)*1e8, 5000) // violations later
	}
	var sb strings.Builder
	BandChart(&sb, "fig1c", bt, 8)
	out := sb.String()
	if !strings.Contains(out, "#") {
		t.Fatal("within-SLA glyph missing")
	}
	if !strings.Contains(out, "!") {
		t.Fatal("violation glyph missing")
	}
	if !strings.Contains(out, "violation rate") {
		t.Fatal("violation rate missing")
	}
}

func TestBandChartMergesWideRuns(t *testing.T) {
	bt := metrics.NewBandTracker(1000, 1e6)
	for i := 0; i < 1000; i++ { // 1000 intervals -> must merge below 120 cols
		bt.Record(int64(i)*1e6, 500)
	}
	var sb strings.Builder
	BandChart(&sb, "wide", bt, 6)
	for _, line := range strings.Split(sb.String(), "\n") {
		if len(line) > 135 {
			t.Fatalf("line too wide: %d", len(line))
		}
	}
}

func TestBandCSV(t *testing.T) {
	bt := metrics.NewBandTracker(1000, 1e9)
	bt.Record(0, 100)
	bt.Record(0, 3000)
	var sb strings.Builder
	BandCSV(&sb, bt)
	out := sb.String()
	if !strings.Contains(out, "green,yellow,orange,red") {
		t.Fatal("header missing levels")
	}
	if !strings.Contains(out, "0,2,1,1,") {
		t.Fatalf("row wrong:\n%s", out)
	}
}

func TestCostPlot(t *testing.T) {
	learned := cost.Curve{
		{Dollars: 5, Throughput: 100, Label: "b1"},
		{Dollars: 50, Throughput: 800, Label: "b2"},
	}
	trad := cost.Curve{
		{Dollars: 0, Throughput: 200, Label: "untuned"},
		{Dollars: 100, Throughput: 600, Label: "tuned"},
	}
	var sb strings.Builder
	CostPlot(&sb, "fig1d", learned, trad, 60, 10)
	out := sb.String()
	if !strings.Contains(out, "L") || !strings.Contains(out, "T") {
		t.Fatal("curve marks missing")
	}
	if !strings.Contains(out, "training cost to outperform") {
		t.Fatal("headline metric missing")
	}
	if !strings.Contains(out, "$50.00") {
		t.Fatalf("wrong crossover:\n%s", out)
	}
}

func TestCostPlotNeverWins(t *testing.T) {
	learned := cost.Curve{{Dollars: 5, Throughput: 10, Label: "b"}}
	trad := cost.Curve{{Dollars: 0, Throughput: 100, Label: "u"}}
	var sb strings.Builder
	CostPlot(&sb, "x", learned, trad, 40, 8)
	if !strings.Contains(sb.String(), "never outperforms") {
		t.Fatal("missing never-outperforms note")
	}
}

func TestCostCSV(t *testing.T) {
	var sb strings.Builder
	CostCSV(&sb,
		cost.Curve{{Dollars: 2, Throughput: 5, Label: "l"}},
		cost.Curve{{Dollars: 1, Throughput: 3, Label: "t"}})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "learned,") || !strings.HasPrefix(lines[2], "traditional,") {
		t.Fatalf("rows:\n%s", sb.String())
	}
}

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	Table(&sb, []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"a-much-longer-name", "22"},
	})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatal("separator missing")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if strings.Join(got, "") != "abc" {
		t.Fatalf("sorted keys = %v", got)
	}
}

func TestTruncate(t *testing.T) {
	if truncate("short", 10) != "short" {
		t.Fatal("no-op truncate")
	}
	if got := truncate("averylonglabelindeed", 8); len(got) > 10 { // ellipsis is multi-byte
		t.Fatalf("truncate = %q", got)
	}
}
