package report

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// StoragePanel renders a disk-backed SUT's buffer-pool counters: the
// "why" behind its throughput — hit ratio, page traffic, durability cost.
func StoragePanel(w io.Writer, title string, s *core.StorageStats) {
	if s == nil {
		return
	}
	c := s.Counters
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %s\n", s.Knobs)
	fmt.Fprintf(w, "  pool: %d hits, %d misses (hit ratio %.3f), %d evictions, %d dirty writebacks\n",
		c.Hits, c.Misses, c.HitRatio(), c.Evictions, c.DirtyWritebacks)
	fmt.Fprintf(w, "  io:   %d pages read, %d pages written, %d fsyncs\n",
		c.PagesRead, c.PagesWritten, c.Fsyncs)
}

// StorageCSV emits one row per result with a storage summary.
func StorageCSV(w io.Writer, results []*core.Result) {
	fmt.Fprintln(w, "sut,pool_pages,policy,hits,misses,hit_ratio,evictions,dirty_writebacks,pages_read,pages_written,fsyncs")
	for _, r := range results {
		if r.Storage == nil {
			continue
		}
		c := r.Storage.Counters
		fmt.Fprintf(w, "%s,%d,%s,%d,%d,%.6f,%d,%d,%d,%d,%d\n",
			csvEscape(r.SUT), r.Storage.Knobs.Pages, r.Storage.Knobs.Policy,
			c.Hits, c.Misses, c.HitRatio(), c.Evictions, c.DirtyWritebacks,
			c.PagesRead, c.PagesWritten, c.Fsyncs)
	}
}
