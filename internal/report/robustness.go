package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
)

// RobustnessPanel renders the Fig 1e robustness view of a faulted run:
// availability and error-budget burn over the whole run, the degradation
// depth during the fault window, and the time the system took to return
// to its pre-fault SLA band. It consumes only metrics types, so any
// engine's snapshot can feed it.
func RobustnessPanel(w io.Writer, title string, s metrics.Snapshot, rec metrics.RecoveryStats) {
	fmt.Fprintf(w, "%s\n", title)
	total := s.Completed + rec.FailedOps
	fmt.Fprintf(w, "  availability        %8.3f%%  (%d failed / %d ops)\n",
		rec.Availability*100, rec.FailedOps, total)
	fmt.Fprintf(w, "  error budget burn   %8.2fx  (budget %.3f%% failures)\n",
		rec.ErrorBudgetBurn, metrics.DefaultErrorBudget*100)
	fmt.Fprintf(w, "  fault window        [%.3fms, %.3fms)\n",
		float64(rec.FaultStartNs)/1e6, float64(rec.FaultEndNs)/1e6)
	fmt.Fprintf(w, "  violation rate      %8.2f%% baseline -> %.2f%% peak\n",
		rec.BaselineViolationRate*100, rec.PeakViolationRate*100)
	switch {
	case rec.Recovered:
		fmt.Fprintf(w, "  time to recover     %8.3fms  (back in pre-fault SLA band)\n",
			float64(rec.TimeToRecoverNs)/1e6)
	default:
		fmt.Fprintf(w, "  time to recover          n/a  (never re-entered pre-fault SLA band)\n")
	}
	if s.Fails != nil && s.Bands != nil {
		failBar(w, s)
	}
}

// failBar renders the failure series as a one-line sparkline aligned with
// the band chart's intervals: '.' no failures, digits 1-9 scale to the
// worst interval's failure share, '#' is the peak.
func failBar(w io.Writer, s metrics.Snapshot) {
	n := s.Fails.Len()
	if bl := len(s.Bands.Intervals()); bl > n {
		n = bl
	}
	var max int64 = 1
	for i := 0; i < n; i++ {
		if c := s.Fails.At(i); c > max {
			max = c
		}
	}
	// Match BandChart's 120-column cap by merging intervals.
	merge := 1
	cols := n
	for cols > 120 {
		merge *= 2
		cols = (n + merge - 1) / merge
	}
	counts := make([]int64, cols)
	for i := 0; i < n; i++ {
		counts[i/merge] += s.Fails.At(i)
	}
	max = 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	for _, c := range counts {
		switch {
		case c == 0:
			sb.WriteByte('.')
		case c == max:
			sb.WriteByte('#')
		default:
			d := c * 9 / max
			if d < 1 {
				d = 1
			}
			sb.WriteByte(byte('0' + d))
		}
	}
	fmt.Fprintf(w, "  failures/interval   %s  (peak %d)\n", sb.String(), max)
}
