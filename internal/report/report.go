// Package report renders benchmark results as text: ASCII box plots
// (Fig 1a), cumulative-completion step plots (Fig 1b), SLA band charts
// (Fig 1c), throughput-vs-cost step plots (Fig 1d), plus CSV emitters so
// every figure's data can be regenerated and re-plotted elsewhere.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// BoxRow is one box of a Figure 1a chart: a label (workload/data
// distribution), its Φ distance from the baseline, and the throughput
// summary.
type BoxRow struct {
	Label   string
	Phi     float64
	Summary stats.Summary
	Holdout bool
}

// BoxPlot renders rows as horizontal ASCII box plots on a shared scale,
// sorted by Φ ascending (the paper: "it should be sufficient to sort the
// results by Φ value").
func BoxPlot(w io.Writer, title string, rows []BoxRow, width int) {
	if width < 40 {
		width = 40
	}
	sorted := append([]BoxRow(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Phi < sorted[j].Phi })

	lo, hi := 0.0, 0.0
	first := true
	for _, r := range sorted {
		if r.Summary.N == 0 {
			continue
		}
		if first || r.Summary.Min < lo {
			lo = r.Summary.Min
		}
		if first || r.Summary.Max > hi {
			hi = r.Summary.Max
		}
		first = false
	}
	if hi <= lo {
		hi = lo + 1
	}
	scale := func(v float64) int {
		p := int((v - lo) / (hi - lo) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-24s %8s  %s\n", "distribution", "phi", "throughput (min |--[ q1 | median | q3 ]--| max)")
	for _, r := range sorted {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		if r.Summary.N > 0 {
			wl, wh := scale(r.Summary.WhiskerLow), scale(r.Summary.WhiskerHigh)
			q1, q3 := scale(r.Summary.P25), scale(r.Summary.P75)
			med := scale(r.Summary.Median)
			for i := wl; i <= wh; i++ {
				line[i] = '-'
			}
			for i := q1; i <= q3; i++ {
				line[i] = '='
			}
			line[wl] = '|'
			line[wh] = '|'
			if q1 >= 0 {
				line[q1] = '['
			}
			if q3 < width {
				line[q3] = ']'
			}
			line[med] = '#'
		}
		label := r.Label
		if r.Holdout {
			label += " (holdout)"
		}
		fmt.Fprintf(w, "%-24s %8.3f  %s  med=%.0f n=%d out=%d\n",
			truncate(label, 24), r.Phi, string(line),
			r.Summary.Median, r.Summary.N, r.Summary.OutlierCount)
	}
	fmt.Fprintf(w, "scale: %.0f .. %.0f ops/s\n", lo, hi)
}

// BoxCSV emits the Figure 1a data series.
func BoxCSV(w io.Writer, rows []BoxRow) {
	fmt.Fprintln(w, "label,phi,holdout,n,min,p25,median,p75,max,mean,stddev,outliers")
	sorted := append([]BoxRow(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Phi < sorted[j].Phi })
	for _, r := range sorted {
		s := r.Summary
		fmt.Fprintf(w, "%s,%.6f,%v,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d\n",
			csvEscape(r.Label), r.Phi, r.Holdout, s.N, s.Min, s.P25, s.Median,
			s.P75, s.Max, s.Mean, s.Stddev, s.OutlierCount)
	}
}

// CumulativePlot renders one or more cumulative curves (Fig 1b) as an
// ASCII chart of completed queries over time, plus the area scores.
func CumulativePlot(w io.Writer, title string, labels []string, curves []*metrics.CumCurve, width, height int) {
	if len(labels) != len(curves) {
		panic("report: labels/curves mismatch")
	}
	if width < 40 {
		width = 40
	}
	if height < 8 {
		height = 8
	}
	var maxT, maxC int64
	for _, c := range curves {
		if c.Duration() > maxT {
			maxT = c.Duration()
		}
		if c.Total() > maxC {
			maxC = c.Total()
		}
	}
	if maxT == 0 || maxC == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x', '%', '@'}
	for ci, c := range curves {
		m := marks[ci%len(marks)]
		for col := 0; col < width; col++ {
			t := int64(float64(col) / float64(width-1) * float64(maxT))
			cnt := c.At(t)
			row := height - 1 - int(float64(cnt)/float64(maxC)*float64(height-1))
			if row < 0 {
				row = 0
			}
			if grid[row][col] == ' ' || grid[row][col] == m {
				grid[row][col] = m
			} else {
				grid[row][col] = '&' // overlap
			}
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s\n", string(row))
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "0 .. %.3fs, ymax=%d queries\n", float64(maxT)/1e9, maxC)
	for ci, label := range labels {
		fmt.Fprintf(w, "  %c %s: %d queries, area-vs-ideal=%.3f\n",
			marks[ci%len(marks)], label, curves[ci].Total(), curves[ci].AreaVsIdeal())
	}
	if len(curves) == 2 {
		fmt.Fprintf(w, "  area difference (%s vs %s): %.3f\n",
			labels[0], labels[1], metrics.AreaBetween(curves[0], curves[1]))
	}
}

// CumulativeCSV emits the Fig 1b series, downsampled to at most points.
func CumulativeCSV(w io.Writer, labels []string, curves []*metrics.CumCurve, points int) {
	fmt.Fprintln(w, "label,time_ns,completed")
	for i, c := range curves {
		d := c.Downsample(points)
		d.Points(func(t, cnt int64) {
			fmt.Fprintf(w, "%s,%d,%d\n", csvEscape(labels[i]), t, cnt)
		})
	}
}

// BandChart renders Figure 1c: one column per interval, split into
// within-SLA (#) and violating (!) completions, normalized to the busiest
// interval.
func BandChart(w io.Writer, title string, bt *metrics.BandTracker, height int) {
	ivs := bt.Intervals()
	if len(ivs) == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	if height < 6 {
		height = 6
	}
	var maxC int64 = 1
	for _, iv := range ivs {
		if iv.Completed > maxC {
			maxC = iv.Completed
		}
	}
	// Cap the chart at 120 columns by merging intervals.
	cols := len(ivs)
	merge := 1
	for cols > 120 {
		merge *= 2
		cols = (len(ivs) + merge - 1) / merge
	}
	type col struct{ ok, bad int64 }
	columns := make([]col, cols)
	for i, iv := range ivs {
		columns[i/merge].ok += iv.WithinSLA
		columns[i/merge].bad += iv.Violated
	}
	maxC = 1
	for _, c := range columns {
		if c.ok+c.bad > maxC {
			maxC = c.ok + c.bad
		}
	}
	fmt.Fprintf(w, "%s (SLA=%.3fms, interval=%.3fms x%d)\n",
		title, float64(bt.SLA())/1e6, float64(bt.Width())/1e6, merge)
	for row := height; row >= 1; row-- {
		thresh := float64(row) / float64(height) * float64(maxC)
		var sb strings.Builder
		for _, c := range columns {
			total := float64(c.ok + c.bad)
			switch {
			case total < thresh:
				sb.WriteByte(' ')
			case float64(c.ok) >= thresh:
				sb.WriteByte('#')
			default:
				sb.WriteByte('!')
			}
		}
		fmt.Fprintf(w, "|%s\n", sb.String())
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(w, "# within SLA, ! violation; violation rate %.2f%%\n", bt.ViolationRate()*100)
}

// BandCSV emits the Fig 1c series with the four color-coded levels.
func BandCSV(w io.Writer, bt *metrics.BandTracker) {
	fmt.Fprintln(w, "start_ns,completed,within_sla,violated,green,yellow,orange,red,over_sla_ns")
	for _, iv := range bt.Intervals() {
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			iv.Start, iv.Completed, iv.WithinSLA, iv.Violated,
			iv.ByLevel[metrics.Green], iv.ByLevel[metrics.Yellow],
			iv.ByLevel[metrics.Orange], iv.ByLevel[metrics.Red], iv.OverSLATime)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
