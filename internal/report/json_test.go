package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/workload"
)

func jsonScenario(seed uint64) core.Scenario {
	return core.Scenario{
		Name:        "json-test",
		Seed:        seed,
		InitialData: distgen.NewUniform(seed+1, 0, 1<<30),
		InitialSize: 2000,
		TrainBefore: true,
		IntervalNs:  1_000_000,
		Phases: []core.Phase{
			{
				Name: "steady",
				Ops:  5000,
				Workload: workload.Spec{
					Mix:    workload.ReadHeavy,
					Access: distgen.Static{G: distgen.NewUniform(seed+2, 0, 1<<30)},
				},
			},
			{
				Name:          "shift",
				Ops:           5000,
				RetrainBefore: true,
				Workload: workload.Spec{
					Mix:    workload.Balanced,
					Access: distgen.Static{G: distgen.NewZipfKeys(seed+3, 1.1, 1<<20)},
				},
			},
		},
	}
}

func TestResultJSONDeterministic(t *testing.T) {
	run := func() []byte {
		res, err := core.NewRunner().Run(jsonScenario(11), core.NewRMISUT())
		if err != nil {
			t.Fatal(err)
		}
		data, err := MarshalResult(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs marshalled to different JSON")
	}
}

func TestResultJSONContents(t *testing.T) {
	res, err := core.NewRunner().Run(jsonScenario(11), core.NewRMISUT())
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var v ResultView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("result JSON does not round-trip: %v", err)
	}
	if v.Scenario != "json-test" || v.SUT != res.SUT {
		t.Fatalf("identity fields wrong: %+v", v)
	}
	if v.Completed != 10000 {
		t.Fatalf("completed = %d, want 10000", v.Completed)
	}
	if v.Throughput <= 0 || v.DurationNs <= 0 {
		t.Fatalf("throughput/duration not populated: %+v", v)
	}
	if len(v.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(v.Phases))
	}
	if v.Phases[0].Latency.Count != 5000 {
		t.Fatalf("phase latency count = %d", v.Phases[0].Latency.Count)
	}
	if v.Latency.P50Ns <= 0 || v.Latency.P99Ns < v.Latency.P50Ns {
		t.Fatalf("latency digest inconsistent: %+v", v.Latency)
	}
	if len(v.AdjustmentNs) != 1 {
		t.Fatalf("adjustment entries = %d, want 1 (one phase change)", len(v.AdjustmentNs))
	}
	if v.OfflineTrainWork <= 0 {
		t.Fatal("RMI with TrainBefore reported no offline training work")
	}
	if v.SLANs <= 0 {
		t.Fatal("no SLA in view")
	}
}
