package report

import (
	"encoding/json"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
)

// LatencySummary is the JSON-friendly digest of a latency histogram.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"meanNs"`
	MinNs  int64   `json:"minNs"`
	P50Ns  int64   `json:"p50Ns"`
	P90Ns  int64   `json:"p90Ns"`
	P99Ns  int64   `json:"p99Ns"`
	MaxNs  int64   `json:"maxNs"`
}

// SummarizeLatency digests a histogram into a LatencySummary.
func SummarizeLatency(h *metrics.Histogram) LatencySummary {
	if h == nil {
		return LatencySummary{}
	}
	return LatencySummary{
		Count:  h.Count(),
		MeanNs: h.Mean(),
		MinNs:  h.Min(),
		P50Ns:  h.Quantile(0.5),
		P90Ns:  h.Quantile(0.9),
		P99Ns:  h.Quantile(0.99),
		MaxNs:  h.Max(),
	}
}

// PhaseView is the JSON form of one phase's results.
type PhaseView struct {
	Name      string `json:"name"`
	StartNs   int64  `json:"startNs"`
	EndNs     int64  `json:"endNs"`
	Completed int64  `json:"completed"`
	// Failed counts error completions (injected faults); omitted for
	// fault-free runs so their encoding is unchanged.
	Failed      int64          `json:"failed,omitempty"`
	Throughput  float64        `json:"throughput"`
	RetrainWork int64          `json:"retrainWork"`
	Latency     LatencySummary `json:"latency"`
}

// ResultView is the JSON form of a full core.Result: every Figure 1
// metric family digested into plain fields. The encoding is a pure
// function of the result, so identical runs (same scenario, same seed)
// marshal to byte-identical JSON — the property the benchmark service
// relies on for verifiable resubmissions.
type ResultView struct {
	Scenario string `json:"scenario"`
	SUT      string `json:"sut"`

	Completed int64 `json:"completed"`
	// Failed counts error completions; omitted for fault-free runs so
	// their encoding — and every pre-fault golden — is unchanged.
	Failed     int64   `json:"failed,omitempty"`
	DurationNs int64   `json:"durationNs"`
	Throughput float64 `json:"throughput"`

	Latency LatencySummary `json:"latency"`
	Phases  []PhaseView    `json:"phases"`

	// Figure 1b/1c digests.
	SLANs         int64   `json:"slaNs"`
	ViolationRate float64 `json:"violationRate"`
	AreaVsIdeal   float64 `json:"areaVsIdeal"`
	// AdjustmentNs holds, per phase change, the adjustment-speed metric
	// (virtual ns the system spent over SLA right after the change).
	AdjustmentNs []int64 `json:"adjustmentNs,omitempty"`

	// Lesson 3: training accounting.
	OfflineTrainWork int64 `json:"offlineTrainWork"`
	OnlineTrainWork  int64 `json:"onlineTrainWork"`
	Models           int   `json:"models"`
	MaxModels        int   `json:"maxModels"`
	Retrains         int   `json:"retrains"`

	// Storage summarizes buffer-pool work for disk-backed SUTs; omitted
	// for in-memory SUTs so pre-storage goldens are unchanged.
	Storage *StorageView `json:"storage,omitempty"`

	// Sessions digests per-session SLA accounting for interactive
	// workloads; omitted for non-session runs so earlier goldens are
	// unchanged.
	Sessions *SessionView `json:"sessions,omitempty"`
}

// SessionView is the JSON form of the per-session SLA digest.
type SessionView struct {
	BudgetNs      int64   `json:"budgetNs"`
	Sessions      int64   `json:"sessions"`
	MetBudget     int64   `json:"metBudget"`
	MetRate       float64 `json:"metRate"`
	LateOps       int64   `json:"lateOps,omitempty"`
	MakespanP50Ns int64   `json:"makespanP50Ns"`
	MakespanP99Ns int64   `json:"makespanP99Ns"`
	MakespanMaxNs int64   `json:"makespanMaxNs"`
}

// StorageView is the JSON form of a disk-backed SUT's pool summary.
type StorageView struct {
	PoolPages       int     `json:"poolPages"`
	Policy          string  `json:"policy"`
	Hits            uint64  `json:"hits"`
	Misses          uint64  `json:"misses"`
	HitRatio        float64 `json:"hitRatio"`
	Evictions       uint64  `json:"evictions"`
	DirtyWritebacks uint64  `json:"dirtyWritebacks"`
	PagesRead       uint64  `json:"pagesRead"`
	PagesWritten    uint64  `json:"pagesWritten"`
	Fsyncs          uint64  `json:"fsyncs"`
}

// viewFromSnapshot digests the engine-shared measurement quadruple — the
// fields every execution mode produces through metrics.Collector — into
// the common part of a ResultView.
func viewFromSnapshot(s metrics.Snapshot) ResultView {
	v := ResultView{
		Completed: s.Completed,
		Failed:    s.Failed,
		Latency:   SummarizeLatency(s.Latency),
		SLANs:     s.SLANs,
	}
	if s.Bands != nil {
		v.ViolationRate = s.Bands.ViolationRate()
	}
	if s.Cumulative != nil {
		v.AreaVsIdeal = s.Cumulative.AreaVsIdeal()
	}
	if s.Sessions != nil {
		v.Sessions = &SessionView{
			BudgetNs:      s.Sessions.BudgetNs,
			Sessions:      s.Sessions.Sessions,
			MetBudget:     s.Sessions.MetBudget,
			MetRate:       s.Sessions.MetRate(),
			LateOps:       s.Sessions.LateOps,
			MakespanP50Ns: s.Sessions.Makespan.Quantile(0.5),
			MakespanP99Ns: s.Sessions.Makespan.Quantile(0.99),
			MakespanMaxNs: s.Sessions.Makespan.Max(),
		}
	}
	return v
}

// NewResultView digests a core.Result into its JSON view.
func NewResultView(r *core.Result) ResultView {
	v := viewFromSnapshot(r.Snapshot)
	v.Scenario = r.Scenario
	v.SUT = r.SUT
	v.DurationNs = r.DurationNs
	v.Throughput = r.Throughput()
	v.OfflineTrainWork = r.OfflineTrainWork
	v.OnlineTrainWork = r.OnlineTrainWork
	v.Models = r.Models
	v.MaxModels = r.MaxModels
	v.Retrains = r.Retrains
	for _, p := range r.Phases {
		v.Phases = append(v.Phases, PhaseView{
			Name:        p.Name,
			StartNs:     p.StartNs,
			EndNs:       p.EndNs,
			Completed:   p.Completed,
			Failed:      p.Failed,
			Throughput:  p.Throughput(),
			RetrainWork: p.RetrainWork,
			Latency:     SummarizeLatency(p.Latency),
		})
	}
	for _, lats := range r.PostChangeLatencies {
		v.AdjustmentNs = append(v.AdjustmentNs, metrics.AdjustmentSpeed(lats, r.SLANs, len(lats)))
	}
	if r.Storage != nil {
		c := r.Storage.Counters
		v.Storage = &StorageView{
			PoolPages:       r.Storage.Knobs.Pages,
			Policy:          r.Storage.Knobs.Policy,
			Hits:            c.Hits,
			Misses:          c.Misses,
			HitRatio:        c.HitRatio(),
			Evictions:       c.Evictions,
			DirtyWritebacks: c.DirtyWritebacks,
			PagesRead:       c.PagesRead,
			PagesWritten:    c.PagesWritten,
			Fsyncs:          c.Fsyncs,
		}
	}
	return v
}

// MarshalResult renders the result view as indented JSON with a trailing
// newline. Identical results produce byte-identical output.
func MarshalResult(r *core.Result) ([]byte, error) {
	data, err := json.MarshalIndent(NewResultView(r), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// EncodeResult writes MarshalResult output to w.
func EncodeResult(w io.Writer, r *core.Result) error {
	data, err := MarshalResult(r)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
