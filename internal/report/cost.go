package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cost"
)

// CostPlot renders Figure 1d: throughput versus cost for a learned system
// (smooth-ish curve across training budgets) against a traditional system
// (manual-tuning step function), plus the training-cost-to-outperform
// metric.
func CostPlot(w io.Writer, title string, learned, traditional cost.Curve, width, height int) {
	if width < 40 {
		width = 40
	}
	if height < 8 {
		height = 8
	}
	all := append(append(cost.Curve{}, learned...), traditional...)
	if len(all) == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	var maxD, maxT float64
	for _, p := range all {
		if p.Dollars > maxD {
			maxD = p.Dollars
		}
		if p.Throughput > maxT {
			maxT = p.Throughput
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	if maxT == 0 {
		maxT = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(c cost.Curve, mark byte) {
		// Step semantics: best throughput affordable at each budget.
		for col := 0; col < width; col++ {
			budget := float64(col) / float64(width-1) * maxD
			tp := c.At(budget)
			if tp <= 0 {
				continue
			}
			row := height - 1 - int(tp/maxT*float64(height-1))
			if row < 0 {
				row = 0
			}
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			} else if grid[row][col] != mark {
				grid[row][col] = '&'
			}
		}
	}
	plot(traditional, 'T')
	plot(learned, 'L')

	fmt.Fprintf(w, "%s\n", title)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s\n", string(row))
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "$0 .. $%.2f, ymax=%.1f ops/s  (L=learned, T=traditional/DBA)\n", maxD, maxT)

	if d, p, err := cost.TrainingCostToOutperform(learned, traditional); err == nil {
		fmt.Fprintf(w, "training cost to outperform best traditional: $%.2f (%s)\n", d, p.Label)
	} else {
		fmt.Fprintf(w, "learned system never outperforms the tuned traditional baseline\n")
	}
	if d, err := cost.CrossoverBudget(learned, traditional); err == nil {
		fmt.Fprintf(w, "equal-spend crossover budget: $%.2f\n", d)
	}
}

// CostCSV emits the Fig 1d series.
func CostCSV(w io.Writer, learned, traditional cost.Curve) {
	fmt.Fprintln(w, "system,dollars,throughput,label")
	emit := func(name string, c cost.Curve) {
		s := append(cost.Curve(nil), c...)
		s.Sort()
		for _, p := range s {
			fmt.Fprintf(w, "%s,%.4f,%.4f,%s\n", name, p.Dollars, p.Throughput, csvEscape(p.Label))
		}
	}
	emit("learned", learned)
	emit("traditional", traditional)
}

// Table renders rows as an aligned text table. header sets column names;
// each row must have the same width.
func Table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// SortedKeys returns map keys sorted (report helper).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
