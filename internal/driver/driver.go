// Package driver executes workloads against a SUT in *real time* with
// concurrent workers — the counterpart of the virtual-clock runner in
// internal/core. The figure experiments use virtual time for determinism;
// this driver exists for wall-clock validation (the calibration
// micro-benches), for the network mode (internal/netdriver), and for
// users who want to benchmark their own real systems.
package driver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// sample is one completed operation: its completion offset from run start
// and its latency, both in nanoseconds.
type sample struct{ done, latency int64 }

// Options configures a real-time run.
type Options struct {
	// Workers is the number of concurrent client goroutines (default 1).
	Workers int
	// Ops is the total operation count across workers.
	Ops int
	// Seed derives per-worker generator streams.
	Seed uint64
	// IntervalNs is the reporting interval (default 100ms wall time).
	IntervalNs int64
	// SLANs fixes the SLA threshold; 0 calibrates from the first 1000
	// completions (20x median).
	SLANs int64
}

// Result carries the real-time measurements — the same metric families as
// the virtual runner, measured with the wall clock.
type Result struct {
	SUT        string
	Completed  int64
	DurationNs int64
	Timeline   *metrics.Timeline
	Cumulative *metrics.CumCurve
	Bands      *metrics.BandTracker
	Latency    *metrics.Histogram
	SLANs      int64
}

// Throughput returns ops/second of wall time.
func (r *Result) Throughput() float64 {
	if r.DurationNs <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.DurationNs) / 1e9)
}

// lockedSUT serializes access to a non-thread-safe SUT. Contention is part
// of the measured behaviour, as it would be on a single-writer engine.
type lockedSUT struct {
	mu  sync.Mutex
	sut core.SUT
}

func (l *lockedSUT) do(op workload.Op) core.OpResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sut.Do(op)
}

// lockedDrift serializes a stateful drift source shared by concurrent
// workers. (The virtual-clock runner is single-threaded and does not need
// this; real-time workers do.)
type lockedDrift struct {
	mu sync.Mutex
	d  distgen.Drift
}

// Name implements distgen.Drift. Stateful drift sources may compute their
// name from mutable state, so this takes the same lock as KeysAt.
func (l *lockedDrift) Name() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.d.Name()
}

// KeysAt implements distgen.Drift.
func (l *lockedDrift) KeysAt(p float64, n int) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.d.KeysAt(p, n)
}

// Run drives the SUT with Options.Workers concurrent workers issuing
// Options.Ops operations from the workload spec, measuring real latencies.
func Run(sut core.SUT, spec workload.Spec, initial distgen.Generator, initialSize int, opts Options) (*Result, error) {
	if opts.Ops <= 0 {
		return nil, fmt.Errorf("driver: Ops must be positive")
	}
	if spec.Access == nil {
		return nil, fmt.Errorf("driver: workload needs an access distribution")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	interval := opts.IntervalNs
	if interval <= 0 {
		interval = 100 * time.Millisecond.Nanoseconds()
	}

	if initialSize > 0 && initial != nil {
		keys := distgen.UniqueKeys(initial, initialSize)
		values := make([]uint64, len(keys))
		for i, k := range keys {
			values[i] = k ^ 0xDEADBEEF
		}
		sut.Load(keys, values)
	}

	locked := &lockedSUT{sut: sut}

	// Workers share the spec's stateful key sources; guard them.
	spec.Access = &lockedDrift{d: spec.Access}
	if spec.InsertKeys != nil {
		spec.InsertKeys = &lockedDrift{d: spec.InsertKeys}
	}

	results := make(chan []sample, workers)
	perWorker := opts.Ops / workers
	extra := opts.Ops % workers

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := perWorker
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(id, n int) {
			defer wg.Done()
			gen := workload.NewGenerator(spec, opts.Seed+uint64(id)*7919+1)
			out := make([]sample, 0, n)
			for i := 0; i < n; i++ {
				op := gen.Next(float64(i) / float64(n))
				t0 := time.Now()
				locked.do(op)
				t1 := time.Now()
				out = append(out, sample{
					done:    t1.Sub(start).Nanoseconds(),
					latency: t1.Sub(t0).Nanoseconds(),
				})
			}
			results <- out
		}(w, n)
	}
	wg.Wait()
	// The measured run ends when the last worker finishes; merging and
	// histogram post-processing below are not part of the workload and
	// must not deflate Throughput().
	duration := time.Since(start).Nanoseconds()
	close(results)

	// Merge worker samples in completion order.
	var all []sample
	for out := range results {
		all = append(all, out...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].done < all[j].done })

	res := &Result{
		SUT:        sut.Name(),
		Timeline:   metrics.NewTimeline(interval),
		Cumulative: &metrics.CumCurve{},
		Latency:    metrics.NewHistogram(),
	}
	sla := opts.SLANs
	if sla == 0 {
		h := metrics.NewHistogram()
		n := len(all)
		if n > 1000 {
			n = 1000
		}
		for _, s := range all[:n] {
			h.Record(s.latency)
		}
		sla = metrics.CalibrateSLA(h, 0.5, 20)
	}
	res.SLANs = sla
	res.Bands = metrics.NewBandTracker(sla, interval)
	for i, s := range all {
		res.Cumulative.Add(s.done, int64(i+1))
		res.Timeline.Record(s.done, s.latency)
		res.Latency.Record(s.latency)
		res.Bands.Record(s.done, s.latency)
	}
	res.Completed = int64(len(all))
	res.DurationNs = duration
	return res, nil
}
