// Package driver executes workloads against a SUT in *real time* with
// concurrent workers — the counterpart of the virtual-clock runner in
// internal/core. The figure experiments use virtual time for determinism;
// this driver exists for wall-clock validation (the calibration
// micro-benches), for the network mode (internal/netdriver), and for
// users who want to benchmark their own real systems.
package driver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// sample is one completed operation: its completion offset from run start
// and its latency, both in nanoseconds. failed marks operations that
// completed as errors (OpResult.Failed) — they feed the failure series
// instead of the latency structures.
type sample struct {
	done, latency int64
	failed        bool
}

// Options configures a real-time run.
type Options struct {
	// Workers is the number of concurrent client goroutines (default 1).
	Workers int
	// Ops is the total operation count across workers.
	Ops int
	// Seed derives per-worker generator streams.
	Seed uint64
	// IntervalNs is the reporting interval (default 100ms wall time).
	IntervalNs int64
	// SLANs fixes the SLA threshold; 0 calibrates from the first 1000
	// completions (20x median).
	SLANs int64
	// Batch is the dispatch batch size per worker: up to Batch operations
	// are generated ahead and executed in one BatchSUT call under a
	// single lock acquisition (and, for remote SUTs, one wire round
	// trip). 0 or 1 dispatches one op at a time. Batched completions
	// share the batch's timestamps: each op in a batch reports the
	// batch's wall latency, since the batch is the unit of service.
	Batch int
	// Sources, when set, supplies each worker's operation stream (trace
	// replay, synthesized load, …) instead of a per-worker generator over
	// the Spec; the Spec's access distribution may then be nil. A bounded
	// source that drains before the worker's op budget simply ends that
	// worker's stream early. Workers run in real time and ignore the
	// source's inter-arrival gaps.
	Sources func(worker int) workload.Source
	// TraceSink, when set, records each worker's issued stream into the
	// writer as one trace phase (phase index = worker id), written after
	// the run completes so recording never perturbs the measured timing.
	// Replay the recording by handing phase readers back per worker:
	// Sources: func(w int) workload.Source { return trace.PhaseReader(w) }.
	TraceSink *workload.TraceWriter
}

// Result carries the real-time measurements — the same metric families as
// the virtual runner (one shared metrics.Snapshot), measured with the
// wall clock.
type Result struct {
	SUT string
	metrics.Snapshot
	DurationNs int64
	// Outcomes tallies found/not-found lookups and total SUT-reported
	// work, mirroring what the virtual runner reports so real-time runs
	// can be sanity-checked against virtual runs of the same workload.
	Outcomes core.OpOutcomes
}

// Throughput returns ops/second of wall time.
func (r *Result) Throughput() float64 {
	if r.DurationNs <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.DurationNs) / 1e9)
}

// lockedSUT serializes access to a non-thread-safe SUT. Contention is part
// of the measured behaviour, as it would be on a single-writer engine;
// batched dispatch amortizes the lock over Options.Batch operations.
type lockedSUT struct {
	mu    sync.Mutex
	batch core.BatchSUT
}

func (l *lockedSUT) doBatch(ops []workload.Op, out []core.OpResult) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.batch.DoBatch(ops, out)
}

// lockedDrift serializes a stateful drift source shared by concurrent
// workers. (The virtual-clock runner is single-threaded and does not need
// this; real-time workers do.)
type lockedDrift struct {
	mu sync.Mutex
	d  distgen.Drift
}

// Name implements distgen.Drift. Stateful drift sources may compute their
// name from mutable state, so this takes the same lock as KeysAt.
func (l *lockedDrift) Name() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.d.Name()
}

// KeysAt implements distgen.Drift.
func (l *lockedDrift) KeysAt(p float64, n int) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.d.KeysAt(p, n)
}

// FillAt implements distgen.DriftFiller, preserving the wrapped drift's
// allocation-free path across the lock.
func (l *lockedDrift) FillAt(p float64, out []uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	distgen.FillAt(l.d, p, out)
}

// workerOut is one worker's contribution: samples in completion order plus
// its op-outcome tallies (and, when recording, the issued stream).
type workerOut struct {
	samples  []sample
	outcomes core.OpOutcomes
	recOps   []workload.Op
	recGaps  []int64
}

// Run drives the SUT with Options.Workers concurrent workers issuing
// Options.Ops operations from the workload spec, measuring real latencies.
func Run(sut core.SUT, spec workload.Spec, initial distgen.Generator, initialSize int, opts Options) (*Result, error) {
	if opts.Ops <= 0 {
		return nil, fmt.Errorf("driver: Ops must be positive")
	}
	if spec.Access == nil && opts.Sources == nil {
		return nil, fmt.Errorf("driver: workload needs an access distribution or Options.Sources")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	interval := opts.IntervalNs
	if interval <= 0 {
		interval = 100 * time.Millisecond.Nanoseconds()
	}
	batch := opts.Batch
	if batch < 1 {
		batch = 1
	}

	if initialSize > 0 && initial != nil {
		keys := distgen.UniqueKeys(initial, initialSize)
		sut.Load(keys, core.LoadValues(keys))
	}

	locked := &lockedSUT{batch: core.AsBatch(sut)}

	// Workers share the spec's stateful key sources; guard them. (With
	// explicit Sources the spec is not drawn from; each source belongs to
	// one worker and needs no lock.)
	if opts.Sources == nil {
		spec.Access = &lockedDrift{d: spec.Access}
		if spec.InsertKeys != nil {
			spec.InsertKeys = &lockedDrift{d: spec.InsertKeys}
		}
	}

	outs := make([]workerOut, workers)
	perWorker := opts.Ops / workers
	extra := opts.Ops % workers

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := perWorker
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(id, n int) {
			defer wg.Done()
			var src workload.Source
			if opts.Sources != nil {
				src = opts.Sources(id)
			} else {
				src = workload.NewSource(spec, nil, workload.PhaseSeed(opts.Seed, id))
			}
			out := workerOut{samples: make([]sample, 0, n)}
			ops := make([]workload.Op, batch)
			gaps := make([]int64, batch)
			res := make([]core.OpResult, batch)
			if opts.TraceSink != nil {
				out.recOps = make([]workload.Op, 0, n)
				out.recGaps = make([]int64, 0, n)
			}
			for i := 0; i < n; i += batch {
				bn := batch
				if rest := n - i; bn > rest {
					bn = rest
				}
				fn := src.Fill(ops[:bn], gaps[:bn], i, n)
				if fn == 0 {
					break // bounded source drained
				}
				if opts.TraceSink != nil {
					out.recOps = append(out.recOps, ops[:fn]...)
					out.recGaps = append(out.recGaps, gaps[:fn]...)
				}
				t0 := time.Now()
				locked.doBatch(ops[:fn], res[:fn])
				t1 := time.Now()
				s := sample{
					done:    t1.Sub(start).Nanoseconds(),
					latency: t1.Sub(t0).Nanoseconds(),
				}
				for j := 0; j < fn; j++ {
					s.failed = res[j].Failed
					out.samples = append(out.samples, s)
					out.outcomes.Observe(ops[j], res[j])
				}
				if fn < bn {
					break // bounded source drained mid-batch
				}
			}
			outs[id] = out
		}(w, n)
	}
	wg.Wait()
	// The measured run ends when the last worker finishes; merging and
	// histogram post-processing below are not part of the workload and
	// must not deflate Throughput().
	duration := time.Since(start).Nanoseconds()

	// Recording is written only now, one phase per worker in worker
	// order, so the trace layout is deterministic even though workers
	// raced in real time.
	if opts.TraceSink != nil {
		for id, o := range outs {
			opts.TraceSink.BeginPhase(id, fmt.Sprintf("worker-%d", id), len(o.recOps))
			opts.TraceSink.Append(o.recOps, o.recGaps)
		}
	}

	// Merge worker samples into completion order. Each worker's slice is
	// already sorted by done (appended as its ops complete), so a k-way
	// merge suffices — no O(n log n) global sort.
	parts := make([][]sample, workers)
	outcomes := core.OpOutcomes{}
	for i, o := range outs {
		parts[i] = o.samples
		outcomes.Found += o.outcomes.Found
		outcomes.NotFound += o.outcomes.NotFound
		outcomes.WorkUnits += o.outcomes.WorkUnits
		outcomes.Failed += o.outcomes.Failed
	}
	all := mergeSamples(parts)

	col := metrics.NewCollector(metrics.CollectorConfig{
		IntervalNs: interval,
		SLANs:      opts.SLANs,
	})
	for _, s := range all {
		if s.failed {
			col.RecordFailed(s.done)
			continue
		}
		col.Record(s.done, s.latency)
	}
	return &Result{
		SUT:        sut.Name(),
		Snapshot:   col.Snapshot(),
		DurationNs: duration,
		Outcomes:   outcomes,
	}, nil
}
