package driver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/workload"
)

func specFor(seed uint64) workload.Spec {
	return workload.Spec{
		Mix:    workload.Balanced,
		Access: distgen.Static{G: distgen.NewUniform(seed, 0, 1<<40)},
	}
}

func TestRunSingleWorker(t *testing.T) {
	res, err := Run(core.NewBTreeSUT(), specFor(1),
		distgen.NewUniform(2, 0, 1<<40), 5000,
		Options{Workers: 1, Ops: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.DurationNs <= 0 || res.Throughput() <= 0 {
		t.Fatal("no wall time measured")
	}
	if res.Latency.Count() != 3000 || res.Cumulative.Total() != 3000 {
		t.Fatal("metrics incomplete")
	}
	if res.SLANs <= 0 {
		t.Fatal("no SLA calibrated")
	}
}

func TestRunConcurrentWorkers(t *testing.T) {
	res, err := Run(core.NewALEXSUT(), specFor(4),
		distgen.NewUniform(5, 0, 1<<40), 2000,
		Options{Workers: 8, Ops: 8000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Cumulative curve must be monotone despite concurrent completion.
	prev := int64(-1)
	res.Cumulative.Points(func(tm, c int64) {
		if tm < prev {
			t.Fatal("curve times out of order")
		}
		prev = tm
	})
}

// statefulDrift mutates internal state in both KeysAt and Name — the
// worst-case Drift implementation lockedDrift must fully serialize.
type statefulDrift struct {
	draws int
	inner distgen.Drift
}

func (s *statefulDrift) Name() string { return fmt.Sprintf("stateful(%d draws)", s.draws) }

func (s *statefulDrift) KeysAt(p float64, n int) []uint64 {
	s.draws += n
	return s.inner.KeysAt(p, n)
}

// TestRunConcurrentStatefulDrift drives many workers through a genuinely
// stateful drift source; run under -race it proves the lockedDrift
// wrapping serializes every KeysAt.
func TestRunConcurrentStatefulDrift(t *testing.T) {
	spec := workload.Spec{
		Mix: workload.Balanced,
		Access: &statefulDrift{
			inner: distgen.NewMovingHotspot(11, 0.9, 0.05, 2),
		},
		InsertKeys: &statefulDrift{
			inner: distgen.NewBlend(12,
				distgen.NewUniform(13, 0, 1<<40),
				distgen.NewClustered(14, 5, 1e9)),
		},
	}
	res, err := Run(core.NewBTreeSUT(), spec,
		distgen.NewUniform(15, 0, 1<<40), 2000,
		Options{Workers: 8, Ops: 4000, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4000 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

// TestLockedDriftNameRace hammers Name and KeysAt concurrently: Name must
// take the same mutex as KeysAt, since Drift implementations may derive
// their name from state KeysAt mutates. Fails under -race without the lock.
func TestLockedDriftNameRace(t *testing.T) {
	ld := &lockedDrift{d: &statefulDrift{inner: distgen.Static{G: distgen.NewUniform(1, 0, 1 << 30)}}}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = ld.Name()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ld.KeysAt(0.5, 4)
			}
		}()
	}
	wg.Wait()
	if got := ld.Name(); got != "stateful(3200 draws)" {
		t.Fatalf("draw accounting lost under concurrency: %s", got)
	}
}

func TestRunDurationExcludesPostProcessing(t *testing.T) {
	res, err := Run(core.NewBTreeSUT(), specFor(20),
		distgen.NewUniform(21, 0, 1<<40), 2000,
		Options{Workers: 4, Ops: 4000, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	// The run duration must cover every recorded completion: the last
	// sample's completion offset cannot exceed the measured duration, and
	// the duration is captured at worker exit (not after merging), so the
	// two agree tightly.
	var lastDone int64
	res.Cumulative.Points(func(tm, _ int64) {
		if tm > lastDone {
			lastDone = tm
		}
	})
	if lastDone > res.DurationNs {
		t.Fatalf("last completion at %dns after measured duration %dns", lastDone, res.DurationNs)
	}
}

func TestRunUnevenSplit(t *testing.T) {
	res, err := Run(core.NewHashSUT(), specFor(7), nil, 0,
		Options{Workers: 3, Ops: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 {
		t.Fatalf("completed = %d, want all ops despite uneven split", res.Completed)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(core.NewBTreeSUT(), specFor(1), nil, 0, Options{Ops: 0}); err == nil {
		t.Fatal("zero ops accepted")
	}
	if _, err := Run(core.NewBTreeSUT(), workload.Spec{Mix: workload.ReadHeavy}, nil, 0,
		Options{Ops: 10}); err == nil {
		t.Fatal("missing access distribution accepted")
	}
}

// TestRunBatchDispatch proves the batch knob changes only how ops are
// dispatched, not which ops run: with one worker (so the shared drift
// source yields a deterministic op stream), batched and per-op runs issue
// identical ops against identical SUT state, so the outcome tallies and
// completion counts must match exactly.
func TestRunBatchDispatch(t *testing.T) {
	// A small key domain so lookups actually hit loaded/inserted keys.
	spec := func() workload.Spec {
		return workload.Spec{
			Mix:    workload.Balanced,
			Access: distgen.Static{G: distgen.NewUniform(30, 0, 1 << 13)},
		}
	}
	run := func(batch int) *Result {
		res, err := Run(core.NewBTreeSUT(), spec(),
			distgen.NewUniform(31, 0, 1<<13), 3000,
			Options{Workers: 1, Ops: 6000, Seed: 32, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0)
	if base.Outcomes.WorkUnits == 0 || base.Outcomes.Found == 0 {
		t.Fatalf("no outcomes surfaced: %+v", base.Outcomes)
	}
	for _, b := range []int{1, 8, 117, 10000} {
		res := run(b)
		if res.Completed != base.Completed {
			t.Fatalf("batch=%d completed %d, want %d", b, res.Completed, base.Completed)
		}
		if res.Outcomes != base.Outcomes {
			t.Fatalf("batch=%d outcomes %+v, want %+v", b, res.Outcomes, base.Outcomes)
		}
		if res.Latency.Count() != base.Latency.Count() {
			t.Fatalf("batch=%d recorded %d latencies, want %d",
				b, res.Latency.Count(), base.Latency.Count())
		}
	}
}

// TestRunBatchConcurrent smoke-tests batched dispatch under real worker
// concurrency: every op completes and the merged curve stays monotone.
func TestRunBatchConcurrent(t *testing.T) {
	res, err := Run(core.NewALEXSUT(), specFor(33),
		distgen.NewUniform(34, 0, 1<<40), 2000,
		Options{Workers: 8, Ops: 8000, Seed: 35, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	prev := int64(-1)
	res.Cumulative.Points(func(tm, c int64) {
		if tm < prev {
			t.Fatal("curve times out of order")
		}
		prev = tm
	})
}

func TestRunFixedSLA(t *testing.T) {
	res, err := Run(core.NewBTreeSUT(), specFor(9), nil, 0,
		Options{Ops: 500, SLANs: 5_000_000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLANs != 5_000_000 {
		t.Fatalf("sla = %d", res.SLANs)
	}
}
