package driver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/workload"
)

func specFor(seed uint64) workload.Spec {
	return workload.Spec{
		Mix:    workload.Balanced,
		Access: distgen.Static{G: distgen.NewUniform(seed, 0, 1<<40)},
	}
}

func TestRunSingleWorker(t *testing.T) {
	res, err := Run(core.NewBTreeSUT(), specFor(1),
		distgen.NewUniform(2, 0, 1<<40), 5000,
		Options{Workers: 1, Ops: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.DurationNs <= 0 || res.Throughput() <= 0 {
		t.Fatal("no wall time measured")
	}
	if res.Latency.Count() != 3000 || res.Cumulative.Total() != 3000 {
		t.Fatal("metrics incomplete")
	}
	if res.SLANs <= 0 {
		t.Fatal("no SLA calibrated")
	}
}

func TestRunConcurrentWorkers(t *testing.T) {
	res, err := Run(core.NewALEXSUT(), specFor(4),
		distgen.NewUniform(5, 0, 1<<40), 2000,
		Options{Workers: 8, Ops: 8000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Cumulative curve must be monotone despite concurrent completion.
	prev := int64(-1)
	res.Cumulative.Points(func(tm, c int64) {
		if tm < prev {
			t.Fatal("curve times out of order")
		}
		prev = tm
	})
}

func TestRunUnevenSplit(t *testing.T) {
	res, err := Run(core.NewHashSUT(), specFor(7), nil, 0,
		Options{Workers: 3, Ops: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 {
		t.Fatalf("completed = %d, want all ops despite uneven split", res.Completed)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(core.NewBTreeSUT(), specFor(1), nil, 0, Options{Ops: 0}); err == nil {
		t.Fatal("zero ops accepted")
	}
	if _, err := Run(core.NewBTreeSUT(), workload.Spec{Mix: workload.ReadHeavy}, nil, 0,
		Options{Ops: 10}); err == nil {
		t.Fatal("missing access distribution accepted")
	}
}

func TestRunFixedSLA(t *testing.T) {
	res, err := Run(core.NewBTreeSUT(), specFor(9), nil, 0,
		Options{Ops: 500, SLANs: 5_000_000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLANs != 5_000_000 {
		t.Fatalf("sla = %d", res.SLANs)
	}
}
