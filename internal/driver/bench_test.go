package driver

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/workload"
)

// BenchmarkDriverDispatch measures real-time driver throughput at several
// dispatch batch sizes: batch=1 pays one lock acquisition (and, remotely,
// one wire round trip) per op; larger batches amortize it. Run via
// `make bench-smoke` or `go test -bench=DriverDispatch ./internal/driver`.
func BenchmarkDriverDispatch(b *testing.B) {
	spec := workload.Spec{
		Mix:    workload.ReadHeavy,
		Access: distgen.Static{G: distgen.NewUniform(40, 0, 1<<40)},
	}
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(core.NewBTreeSUT(), spec,
					distgen.NewUniform(41, 0, 1<<40), 20000,
					Options{Workers: 4, Ops: 40000, Seed: 42, Batch: batch})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput(), "ops/s")
			}
		})
	}
}
