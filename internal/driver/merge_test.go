package driver

import (
	"sort"
	"testing"

	"repro/internal/stats"
)

// refMerge is the obviously-correct reference: concatenate and stable-sort
// by done with worker index as tiebreak (encoded via latency below).
func refMerge(parts [][]sample) []sample {
	type tagged struct {
		s      sample
		worker int
	}
	var all []tagged
	for w, p := range parts {
		for _, s := range p {
			all = append(all, tagged{s, w})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].s.done != all[j].s.done {
			return all[i].s.done < all[j].s.done
		}
		return all[i].worker < all[j].worker
	})
	out := make([]sample, len(all))
	for i, t := range all {
		out[i] = t.s
	}
	return out
}

func TestMergeSamplesEmpty(t *testing.T) {
	if got := mergeSamples(nil); len(got) != 0 {
		t.Fatalf("merge of nothing produced %d samples", len(got))
	}
	if got := mergeSamples([][]sample{{}, {}, {}}); len(got) != 0 {
		t.Fatalf("merge of empties produced %d samples", len(got))
	}
}

func TestMergeSamplesSinglePart(t *testing.T) {
	part := []sample{{done: 1, latency: 10}, {done: 5, latency: 20}}
	got := mergeSamples([][]sample{{}, part, {}})
	if len(got) != len(part) {
		t.Fatalf("len = %d, want %d", len(got), len(part))
	}
	for i := range part {
		if got[i] != part[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], part[i])
		}
	}
}

// TestMergeSamplesRandom fuzzes against the sort-based reference with
// uneven part sizes and heavy duplicate done values (tie-break coverage).
func TestMergeSamplesRandom(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		k := 1 + int(rng.Uint64()%8)
		parts := make([][]sample, k)
		for w := range parts {
			n := int(rng.Uint64() % 200)
			p := make([]sample, n)
			var done int64
			for i := range p {
				// Small increments force many equal done values across
				// workers.
				done += int64(rng.Uint64() % 3)
				p[i] = sample{done: done, latency: int64(w*1000 + i)}
			}
			parts[w] = p
		}
		want := refMerge(parts)
		got := mergeSamples(parts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: sample %d = %+v, want %+v (tie-break violated?)",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestMergeSamplesOrdered asserts the merged output is non-decreasing in
// done — the invariant the Collector's timeline and band replay rely on.
func TestMergeSamplesOrdered(t *testing.T) {
	rng := stats.NewRNG(7)
	parts := make([][]sample, 4)
	for w := range parts {
		p := make([]sample, 500)
		var done int64
		for i := range p {
			done += int64(rng.Uint64() % 100)
			p[i] = sample{done: done}
		}
		parts[w] = p
	}
	merged := mergeSamples(parts)
	for i := 1; i < len(merged); i++ {
		if merged[i].done < merged[i-1].done {
			t.Fatalf("merged[%d].done=%d < merged[%d].done=%d",
				i, merged[i].done, i-1, merged[i-1].done)
		}
	}
}
