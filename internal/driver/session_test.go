package driver

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/workload"
)

// sessionSources gives each driver worker its own session-paced source
// seeded from the run seed — the per-worker analogue of the virtual
// runner's per-phase seeding, so the recorded streams are a pure function
// of (seed, worker id).
func sessionSources(seed uint64) func(worker int) workload.Source {
	return func(worker int) workload.Source {
		ws := workload.PhaseSeed(seed, worker)
		spec := workload.Spec{
			Mix:    workload.Balanced,
			Access: distgen.Static{G: distgen.NewUniform(ws+100, 0, 1<<40)},
		}
		return workload.NewSource(spec,
			workload.NewSessionArrival(ws+200, 1_000_000, 20_000, 2, 6), ws)
	}
}

// sessionTrace runs the concurrent driver with session-paced per-worker
// sources, recording the issued streams, and returns the trace bytes.
func sessionTrace(t *testing.T, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := workload.NewTraceWriter(&buf, "driver-sessions", seed)
	_, err := Run(core.NewBTreeSUT(), workload.Spec{},
		distgen.NewUniform(seed+1, 0, 1<<40), 2000,
		Options{Workers: 4, Ops: 8000, Seed: seed,
			Sources: sessionSources(seed), TraceSink: tw})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunSessionSourcesDeterministic drives session-arrival workloads
// through the parallel driver twice with one seed: although workers race
// in real time, each worker's issued op/gap stream is deterministic and
// the recorded trace (one phase per worker, written in worker order) is
// byte-identical. Run under -race in the test-drift tier.
func TestRunSessionSourcesDeterministic(t *testing.T) {
	a := sessionTrace(t, 77)
	b := sessionTrace(t, 77)
	if !bytes.Equal(a, b) {
		t.Fatalf("session trace not reproducible: %d vs %d bytes differ", len(a), len(b))
	}
	if c := sessionTrace(t, 78); bytes.Equal(a, c) {
		t.Fatal("different seeds recorded identical traces")
	}

	// The recorded per-worker streams must carry the session structure:
	// think gaps >= ThinkNs and intra gaps below it, in 2..6-op bursts.
	tr, err := workload.ReadTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Phases) != 4 {
		t.Fatalf("trace has %d phases, want one per worker (4)", len(tr.Phases))
	}
	for _, ph := range tr.Phases {
		if len(ph.Gaps) == 0 || ph.Gaps[0] < 1_000_000 {
			t.Fatalf("worker phase %q does not open with a think gap", ph.Name)
		}
	}
}
