package driver

// mergeSamples k-way merges per-worker sample slices, each already in
// non-decreasing done order, into one globally ordered slice. Ties break
// toward the lower worker index, so the merged order is deterministic
// given the per-worker slices. A binary min-heap over the worker cursors
// makes this O(n log k) instead of the O(n log n) of re-sorting the
// concatenation.
func mergeSamples(parts [][]sample) []sample {
	total := 0
	live := 0
	for _, p := range parts {
		total += len(p)
		if len(p) > 0 {
			live++
		}
	}
	out := make([]sample, 0, total)
	switch live {
	case 0:
		return out
	case 1:
		for _, p := range parts {
			if len(p) > 0 {
				return append(out, p...)
			}
		}
	}

	// cursor is one worker's read position; ordering is (head done, worker
	// index) ascending.
	type cursor struct {
		worker int
		pos    int
	}
	heap := make([]cursor, 0, live)
	less := func(a, b cursor) bool {
		da, db := parts[a.worker][a.pos].done, parts[b.worker][b.pos].done
		if da != db {
			return da < db
		}
		return a.worker < b.worker
	}
	up := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}

	for w, p := range parts {
		if len(p) > 0 {
			heap = append(heap, cursor{worker: w})
			up(len(heap) - 1)
		}
	}
	for len(heap) > 0 {
		c := heap[0]
		out = append(out, parts[c.worker][c.pos])
		if c.pos+1 < len(parts[c.worker]) {
			heap[0].pos++
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return out
}
