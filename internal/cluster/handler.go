package cluster

import (
	"encoding/json"
	"net/http"
	"strings"

	"repro/internal/service"
)

// Handler returns the coordinator's HTTP surface:
//
//	POST /v1/jobs            submit (the coordinator assigns the cluster ID)
//	GET  /v1/jobs            list jobs with placement
//	GET  /v1/jobs/{id}        cached job view
//	GET  /v1/jobs/{id}/result full result JSON, proxied from the owner
//	GET  /v1/results          merged replicated store entries
//	GET  /v1/leaderboard      cluster-wide ranking (?scenario=&metric=)
//	GET  /v1/cluster          topology: nodes, liveness, placements
//	POST /v1/cluster/join     add a worker  {"addr": "http://host:port"}
//	POST /v1/cluster/leave    remove a worker gracefully
//	GET  /healthz             liveness
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": co.Jobs()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, ok := co.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, view)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", co.handleResult)
	mux.HandleFunc("GET /v1/results", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"results": co.store.Entries()})
	})
	mux.HandleFunc("GET /v1/leaderboard", co.handleLeaderboard)
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, co.View())
	})
	mux.HandleFunc("POST /v1/cluster/join", co.handleMembership(co.Join))
	mux.HandleFunc("POST /v1/cluster/leave", co.handleMembership(co.Leave))
	return mux
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad job request: "+err.Error())
		return
	}
	view, status, err := co.Submit(req)
	if err != nil {
		// Relay a worker's own rejection status; anything the cluster
		// could not place at all is a 503.
		if status < 400 {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{"error": err.Error(), "job": view})
		return
	}
	// 200 means a worker deduped a re-dispatched ID; a fresh submit is 202.
	if status != http.StatusOK {
		status = http.StatusAccepted
	}
	writeJSON(w, status, view)
}

func (co *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	raw, status, err := co.Result(r.PathValue("id"))
	if err != nil {
		if status < 400 {
			status = http.StatusBadGateway
		}
		writeError(w, status, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func (co *Coordinator) handleLeaderboard(w http.ResponseWriter, r *http.Request) {
	scenario := r.URL.Query().Get("scenario")
	if scenario == "" {
		writeError(w, http.StatusBadRequest, "missing ?scenario=")
		return
	}
	rows, err := co.Leaderboard(scenario, r.URL.Query().Get("metric"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenario": scenario, "rows": rows})
}

// handleMembership adapts Join/Leave to the POST body {"addr": "..."}.
// (Join/leave take the addr in a JSON body, not the URL path — worker
// addresses are URLs themselves and do not nest in a path segment.)
func (co *Coordinator) handleMembership(op func(string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Addr string `json:"addr"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || strings.TrimSpace(body.Addr) == "" {
			writeError(w, http.StatusBadRequest, `body must be {"addr": "http://host:port"}`)
			return
		}
		if err := op(strings.TrimSpace(body.Addr)); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, co.View())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
