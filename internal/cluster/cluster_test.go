package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/workload"
)

// detSpec mirrors the service e2e scenario: small, deterministic, fast.
const detSpec = `{
  "name": "det",
  "seed": 3,
  "initialData": {"kind": "uniform"},
  "initialSize": 2000,
  "trainBefore": true,
  "intervalNs": 1000000,
  "phases": [{
    "name": "p",
    "ops": 5000,
    "mix": {"get": 0.9, "put": 0.1},
    "access": {"kind": "static", "gen": {"kind": "zipf", "theta": 1.1, "universe": 1048576}}
  }]
}`

// fastConfig shrinks every coordinator period so failures are detected and
// repaired within test timescales.
func fastConfig(workers []string) Config {
	return Config{
		Workers:             workers,
		RequestTimeout:      2 * time.Second,
		MaxRetries:          2,
		RetryBase:           time.Millisecond,
		RetryMax:            10 * time.Millisecond,
		RetrySeed:           11,
		HealthInterval:      20 * time.Millisecond,
		HealthFailures:      2,
		PollInterval:        10 * time.Millisecond,
		AntiEntropyInterval: 50 * time.Millisecond,
		MaxDispatches:       3,
	}
}

// worker is one lsbench-svc daemon under httptest.
type worker struct {
	svc *service.Service
	ts  *httptest.Server
}

func newWorker(t *testing.T, cfg service.Config) *worker {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return &worker{svc: svc, ts: ts}
}

func newCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return co
}

func submitJob(t *testing.T, co *Coordinator, sut string) JobView {
	t.Helper()
	var seed uint64 = 3
	view, _, err := co.Submit(service.JobRequest{
		SUT:  sut,
		Spec: json.RawMessage(detSpec),
		Seed: &seed,
	})
	if err != nil {
		t.Fatalf("submit %s: %v (view %+v)", sut, err, view)
	}
	return view
}

func waitDone(t *testing.T, co *Coordinator, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		view, ok := co.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if view.State == service.JobDone {
			return view
		}
		if view.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want done", id, view.State, view.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// referenceRows runs the same jobs on one plain single-node service and
// returns its leaderboard — the ground truth a converged cluster must
// reproduce byte for byte.
func referenceRows(t *testing.T, suts []string) []byte {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, sut := range suts {
		body := fmt.Sprintf(`{"sut":%q,"seed":3,"spec":%s}`, sut, detSpec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var view service.JobView
		json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("reference submit %s: %d", sut, resp.StatusCode)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			r2, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
			if err != nil {
				t.Fatal(err)
			}
			json.NewDecoder(r2.Body).Decode(&view)
			r2.Body.Close()
			if view.State == service.JobDone {
				break
			}
			if view.State.Terminal() || time.Now().After(deadline) {
				t.Fatalf("reference job %s: state %s err %q", view.ID, view.State, view.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	rows, err := service.Leaderboard(svc.Store().Entries(), "det", "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterEndToEnd is the tentpole happy path: jobs sharded across a
// 3-worker cluster all finish, their results replicate to the
// coordinator, and the merged leaderboard is byte-identical to a
// single-node run of the same jobs.
func TestClusterEndToEnd(t *testing.T) {
	var addrs []string
	for i := 0; i < 3; i++ {
		addrs = append(addrs, newWorker(t, service.Config{Workers: 2}).ts.URL)
	}
	co := newCoordinator(t, fastConfig(addrs))

	suts := []string{"btree", "rmi", "hash", "alex"}
	var ids []string
	for _, sut := range suts {
		ids = append(ids, submitJob(t, co, sut).ID)
	}
	for _, id := range ids {
		waitDone(t, co, id)
	}

	// Anti-entropy must converge the merged store to every job's entry.
	deadline := time.Now().Add(10 * time.Second)
	for co.Store().Len() < len(ids) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := co.Store().Len(); got != len(ids) {
		t.Fatalf("replicated %d entries, want %d", got, len(ids))
	}

	rows, err := co.Leaderboard("det", "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(rows)
	want := referenceRows(t, suts)
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster leaderboard diverged from single-node reference:\n got %s\nwant %s", got, want)
	}

	view := co.View()
	if len(view.Nodes) != 3 {
		t.Fatalf("cluster view has %d nodes: %+v", len(view.Nodes), view)
	}
	for _, n := range view.Nodes {
		if !n.Alive {
			t.Fatalf("node %s marked dead in a healthy cluster", n.Addr)
		}
	}
	if view.Replicated != len(ids) {
		t.Fatalf("view reports %d replicated, want %d", view.Replicated, len(ids))
	}
}

// TestClusterRejectsExternalID: cluster IDs are coordinator-assigned.
func TestClusterRejectsExternalID(t *testing.T) {
	w := newWorker(t, service.Config{Workers: 1})
	co := newCoordinator(t, fastConfig([]string{w.ts.URL}))
	_, status, err := co.Submit(service.JobRequest{ID: "mine", SUT: "btree", Scenario: "smoke"})
	if err == nil || status != http.StatusBadRequest {
		t.Fatalf("external ID accepted (status %d, err %v)", status, err)
	}
}

// TestClusterHTTPSurface drives the coordinator through its own HTTP
// handler: submit, poll, result proxy, cluster view.
func TestClusterHTTPSurface(t *testing.T) {
	w := newWorker(t, service.Config{Workers: 2})
	co := newCoordinator(t, fastConfig([]string{w.ts.URL}))
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	body := fmt.Sprintf(`{"sut":"btree","seed":3,"spec":%s}`, detSpec)
	resp, err := http.Post(cts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || view.ID != "c1" || view.Node == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, view)
	}
	waitDone(t, co, view.ID)

	r2, err := http.Get(cts.URL + "/v1/jobs/c1/result")
	if err != nil {
		t.Fatal(err)
	}
	var result struct {
		Scenario string `json:"scenario"`
	}
	json.NewDecoder(r2.Body).Decode(&result)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || result.Scenario != "det" {
		t.Fatalf("result proxy: %d %+v", r2.StatusCode, result)
	}

	r3, err := http.Get(cts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cv ClusterView
	json.NewDecoder(r3.Body).Decode(&cv)
	r3.Body.Close()
	if len(cv.Nodes) != 1 || cv.Jobs != 1 {
		t.Fatalf("cluster view: %+v", cv)
	}
}

// TestClusterJoinLeave grows the fleet at runtime, then shrinks it, and
// checks the departed node's results survived in the merged store.
func TestClusterJoinLeave(t *testing.T) {
	w1 := newWorker(t, service.Config{Workers: 2})
	w2 := newWorker(t, service.Config{Workers: 2})
	co := newCoordinator(t, fastConfig([]string{w1.ts.URL}))
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	// Join via the HTTP surface.
	joinBody := fmt.Sprintf(`{"addr":%q}`, w2.ts.URL)
	resp, err := http.Post(cts.URL+"/v1/cluster/join", "application/json", strings.NewReader(joinBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d", resp.StatusCode)
	}
	if got := co.View().Nodes; len(got) != 2 {
		t.Fatalf("after join: %d nodes", len(got))
	}

	// Spread enough jobs that both nodes get some.
	var ids []string
	for i := 0; i < 6; i++ {
		sut := []string{"btree", "rmi", "hash"}[i%3]
		ids = append(ids, submitJob(t, co, sut).ID)
	}
	placed := make(map[string]bool)
	for _, id := range ids {
		placed[waitDone(t, co, id).Node] = true
	}
	if len(placed) != 2 {
		t.Skipf("all %d jobs hashed to one node; placement spread not exercised", len(ids))
	}

	// Leave: the departing node's entries must be pulled before it goes.
	leaveBody := fmt.Sprintf(`{"addr":%q}`, w2.ts.URL)
	resp, err = http.Post(cts.URL+"/v1/cluster/leave", "application/json", strings.NewReader(leaveBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %d", resp.StatusCode)
	}
	if got := co.View().Nodes; len(got) != 1 {
		t.Fatalf("after leave: %d nodes", len(got))
	}
	if got := co.Store().Len(); got != len(ids) {
		t.Fatalf("after leave the merged store has %d entries, want %d", got, len(ids))
	}
	// The survivors still serve the merged leaderboard.
	if _, err := co.Leaderboard("det", ""); err != nil {
		t.Fatal(err)
	}
}

// blockFirstSUT gates the globally-first instantiation: the chaos job's
// original run blocks in Load (simulating a benchmark in progress) until
// the test releases it, while every later instance — including the
// re-dispatched run — executes normally. It delegates everything else, so
// a completed run's results are identical to a plain btree run.
type blockFirstSUT struct {
	inner core.SUT
	gate  chan struct{}
}

func (b *blockFirstSUT) Name() string { return b.inner.Name() }
func (b *blockFirstSUT) Load(keys, values []uint64) {
	<-b.gate
	b.inner.Load(keys, values)
}
func (b *blockFirstSUT) Do(op workload.Op) core.OpResult { return b.inner.Do(op) }

// TestClusterSurvivesWorkerCrashMidJob is the acceptance chaos drill: a
// seeded fault plan times a worker kill while that worker is mid-job. The
// coordinator must detect the death, re-route the job to a surviving node
// exactly once (idempotent dispatch — no double execution), and converge
// the merged leaderboard to byte-equality with a no-fault single-node run
// of the same jobs.
func TestClusterSurvivesWorkerCrashMidJob(t *testing.T) {
	// The drill's timing comes from a deterministic fault plan, same
	// grammar as the service's chaos drills: kill 25ms into the run.
	plan, err := fault.ParseSpec("crash@25ms", 11)
	if err != nil {
		t.Fatal(err)
	}
	killDelay := time.Duration(plan.Windows[0].StartNs)

	gate := make(chan struct{})
	var instances int32
	gatedSUTs := func() map[string]func() core.SUT {
		return map[string]func() core.SUT{
			"btree": func() core.SUT {
				if atomic.AddInt32(&instances, 1) == 1 {
					return &blockFirstSUT{inner: core.NewBTreeSUT(), gate: gate}
				}
				return core.NewBTreeSUT()
			},
			"rmi": core.NewRMISUT,
		}
	}
	workers := make([]*worker, 3)
	var addrs []string
	for i := range workers {
		workers[i] = newWorker(t, service.Config{Workers: 2, SUTs: gatedSUTs()})
		addrs = append(addrs, workers[i].ts.URL)
	}
	// Registered after the workers: cleanups run LIFO, so the gate opens
	// before the killed worker's svc.Close waits on its wedged pool run.
	var released bool
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	t.Cleanup(release)
	co := newCoordinator(t, fastConfig(addrs))

	// The chaos job: its first run blocks "mid-benchmark" on the owner.
	chaos := submitJob(t, co, "btree")
	if chaos.Dispatches != 1 {
		t.Fatalf("fresh job has %d dispatches", chaos.Dispatches)
	}

	// Wait until the owner worker has actually started the run (the gated
	// Load is reached in state running), then kill it per the fault plan.
	deadline := time.Now().Add(10 * time.Second)
	for {
		view, ok := co.Job(chaos.ID)
		if !ok {
			t.Fatal("chaos job vanished")
		}
		if view.State == service.JobRunning && atomic.LoadInt32(&instances) >= 1 {
			break
		}
		if view.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("chaos job never started: %+v", view)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var owner *worker
	for _, w := range workers {
		if w.ts.URL == chaos.Node {
			owner = w
		}
	}
	if owner == nil {
		t.Fatalf("job placed on unknown node %q", chaos.Node)
	}
	time.Sleep(killDelay)
	owner.ts.Close() // the crash: connection refused from here on

	// A bystander job submitted after the crash: it must route around the
	// dead node and be unaffected by the recovery.
	bystander := submitJob(t, co, "rmi")

	done := waitDone(t, co, chaos.ID)
	if done.Node == owner.ts.URL {
		t.Fatalf("job finished on the killed node %s", done.Node)
	}
	if done.Dispatches != 2 {
		t.Fatalf("job dispatched %d times, want exactly 2 (one re-route)", done.Dispatches)
	}
	waitDone(t, co, bystander.ID)

	// The killed node must be marked dead in the topology.
	deadSeen := false
	for _, n := range co.View().Nodes {
		if n.Addr == strings.TrimRight(owner.ts.URL, "/") && !n.Alive {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Fatalf("killed node still alive in view: %+v", co.View())
	}

	// Converged leaderboard == no-fault single-node reference, byte for
	// byte. Runs counts are part of the rows, so a double-executed (and
	// twice-persisted) job would diverge here.
	rows, err := co.Leaderboard("det", "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(rows)
	want := referenceRows(t, []string{"btree", "rmi"})
	if !bytes.Equal(got, want) {
		t.Fatalf("post-crash leaderboard diverged from reference:\n got %s\nwant %s", got, want)
	}
}
