package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/netdriver"
	"repro/internal/service"
	"repro/internal/stats"
)

// workerClient speaks the service HTTP API to one worker node with the
// wire discipline the netdriver established: every call gets a per-op
// deadline, failures carry netdriver's typed retry classes
// (ErrTransient/ErrFatal) so callers branch with errors.Is, and transient
// failures re-send with seeded capped-exponential backoff. Re-sends are
// safe because every mutating call is idempotent — job dispatch carries
// an explicit job ID the worker dedupes.
type workerClient struct {
	base       string
	hc         *http.Client
	maxRetries int
	retryBase  time.Duration
	retryMax   time.Duration

	mu      sync.Mutex
	rng     *stats.RNG
	retries int64
}

// newWorkerClient builds a client for the worker at base URL, seeding its
// retry jitter from (cfg.RetrySeed, base) so cluster retry timing is
// reproducible per node for a fixed seed.
func newWorkerClient(base string, cfg Config) *workerClient {
	return &workerClient{
		base:       strings.TrimRight(base, "/"),
		hc:         &http.Client{Timeout: cfg.RequestTimeout},
		maxRetries: cfg.MaxRetries,
		retryBase:  cfg.RetryBase,
		retryMax:   cfg.RetryMax,
		rng:        stats.NewRNG(cfg.RetrySeed ^ ringHash(base) ^ 0xC00D),
	}
}

// Retries returns how many transient-failure re-sends this client made.
func (wc *workerClient) Retries() int64 {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.retries
}

// backoff sleeps the capped exponential delay for retry attempt (0-based)
// with seeded jitter in [d/2, d) — the netdriver client's schedule.
func (wc *workerClient) backoff(attempt int) {
	d := wc.retryBase << attempt
	if d > wc.retryMax || d <= 0 {
		d = wc.retryMax
	}
	wc.mu.Lock()
	jitter := wc.rng.Float64()
	wc.retries++
	wc.mu.Unlock()
	time.Sleep(d/2 + time.Duration(jitter*float64(d/2)))
}

// statusError is a non-2xx worker answer, preserved for relay.
type statusError struct {
	status int
	body   string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("worker answered %d: %s", e.status, strings.TrimSpace(e.body))
}

// classifyNetErr maps a transport error to netdriver's retry classes the
// same way the wire layer does: timeouts are transient (the request may
// merely be slow, or lost in flight), everything else — refused, reset,
// unreachable — means the node is gone and retrying this call cannot
// help.
func classifyNetErr(stage string, err error) error {
	class := netdriver.ErrFatal
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		class = netdriver.ErrTransient
	}
	return &netdriver.WireError{Stage: stage, Class: class, Err: err}
}

// classifyStatus maps a non-2xx status to a retry class: 429 (queue
// backpressure) and 5xx are transient — the worker may recover — while
// other 4xx mean the request itself is wrong and re-sending is futile.
func classifyStatus(stage string, status int, body []byte) error {
	class := netdriver.ErrFatal
	if status == http.StatusTooManyRequests || status >= 500 {
		class = netdriver.ErrTransient
	}
	return &netdriver.WireError{Stage: stage, Class: class, Err: &statusError{status, string(body)}}
}

// once issues a single HTTP request (no retries) and decodes a 2xx JSON
// answer into out (skipped when out is nil). The returned status is 0
// when the transport failed before an answer arrived.
func (wc *workerClient) once(method, path string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, wc.base+path, rd)
	if err != nil {
		return 0, &netdriver.WireError{Stage: "cluster request", Class: netdriver.ErrFatal, Err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := wc.hc.Do(req)
	if err != nil {
		return 0, classifyNetErr("cluster "+method+" "+path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, classifyNetErr("cluster response", err)
	}
	if resp.StatusCode >= 400 {
		return resp.StatusCode, classifyStatus("cluster "+method+" "+path, resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, &netdriver.WireError{Stage: "cluster response", Class: netdriver.ErrFatal, Err: err}
		}
	}
	return resp.StatusCode, nil
}

// do is once plus the transient retry loop: ErrTransient failures re-send
// up to maxRetries times with capped-exponential backoff before the error
// surfaces. The request body is re-sent verbatim per attempt.
func (wc *workerClient) do(method, path string, body []byte, out any) (int, error) {
	for attempt := 0; ; attempt++ {
		status, err := wc.once(method, path, body, out)
		if err == nil {
			return status, nil
		}
		if errors.Is(err, netdriver.ErrTransient) && attempt < wc.maxRetries {
			wc.backoff(attempt)
			continue
		}
		return status, err
	}
}

// submit dispatches a job (its ID set by the coordinator, making re-sends
// idempotent) and returns the worker's view of it.
func (wc *workerClient) submit(req service.JobRequest) (service.JobView, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return service.JobView{}, 0, err
	}
	var view service.JobView
	status, err := wc.do(http.MethodPost, "/v1/jobs", body, &view)
	return view, status, err
}

// jobStatus polls one job's state.
func (wc *workerClient) jobStatus(id string) (service.JobView, int, error) {
	var view service.JobView
	status, err := wc.do(http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &view)
	return view, status, err
}

// jobResult fetches a done job's full deterministic result JSON.
func (wc *workerClient) jobResult(id string) (json.RawMessage, int, error) {
	var raw json.RawMessage
	status, err := wc.do(http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &raw)
	return raw, status, err
}

// storeIDs lists the JobIDs in the worker's result store — the cheap half
// of anti-entropy.
func (wc *workerClient) storeIDs() ([]string, error) {
	var out struct {
		IDs []string `json:"ids"`
	}
	_, err := wc.do(http.MethodGet, "/v1/store/ids", nil, &out)
	return out.IDs, err
}

// storeEntriesChunk bounds how many IDs one pull request carries, keeping
// the query string well under URL length limits.
const storeEntriesChunk = 128

// storeEntries pulls the named entries from the worker's store, chunking
// large ID sets across requests.
func (wc *workerClient) storeEntries(ids []string) ([]service.Entry, error) {
	var out []service.Entry
	for len(ids) > 0 {
		chunk := ids
		if len(chunk) > storeEntriesChunk {
			chunk = ids[:storeEntriesChunk]
		}
		ids = ids[len(chunk):]
		var page struct {
			Entries []service.Entry `json:"entries"`
		}
		path := "/v1/store/entries?ids=" + url.QueryEscape(strings.Join(chunk, ","))
		if _, err := wc.do(http.MethodGet, path, nil, &page); err != nil {
			return out, err
		}
		out = append(out, page.Entries...)
	}
	return out, nil
}

// health is a single liveness probe — deliberately no retry loop; the
// coordinator's health checker does its own consecutive-failure damping.
func (wc *workerClient) health() error {
	_, err := wc.once(http.MethodGet, "/healthz", nil, nil)
	return err
}
