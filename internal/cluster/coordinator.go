package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/netdriver"
	"repro/internal/service"
)

// Config wires a Coordinator.
type Config struct {
	// Workers are the initial worker base URLs (http://host:port). More
	// can join (and any can leave) at runtime via /v1/cluster/join|leave.
	Workers []string
	// Replicas is the consistent-hash virtual-point count per node
	// (default 64).
	Replicas int
	// RequestTimeout is the per-op deadline on every worker HTTP call
	// (default 5s).
	RequestTimeout time.Duration
	// MaxRetries bounds transient re-sends per worker call (default 3).
	MaxRetries int
	// RetryBase/RetryMax shape the capped-exponential backoff
	// (defaults 5ms / 250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the backoff jitter so retry timing is reproducible.
	RetrySeed uint64
	// HealthInterval is the liveness probe period (default 250ms);
	// HealthFailures consecutive probe failures mark a node dead
	// (default 2).
	HealthInterval time.Duration
	HealthFailures int
	// PollInterval is the job status poll period (default 50ms).
	PollInterval time.Duration
	// AntiEntropyInterval is the store catch-up period (default 1s).
	AntiEntropyInterval time.Duration
	// MaxDispatches bounds how many nodes one job may be re-routed
	// across before the coordinator fails it (default 3).
	MaxDispatches int
	// StorePath is the coordinator's replicated JSON-lines store
	// ("" = in-memory only).
	StorePath string
}

func (cfg Config) withDefaults() Config {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 5 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 250 * time.Millisecond
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
	if cfg.HealthFailures <= 0 {
		cfg.HealthFailures = 2
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.AntiEntropyInterval <= 0 {
		cfg.AntiEntropyInterval = time.Second
	}
	if cfg.MaxDispatches <= 0 {
		cfg.MaxDispatches = 3
	}
	return cfg
}

// node is one worker's cluster-side state.
type node struct {
	addr   string
	client *workerClient
	alive  bool
	fails  int // consecutive health probe failures
}

// clusterJob is the coordinator's record of one dispatched job.
type clusterJob struct {
	ID         string
	Req        service.JobRequest // as submitted (ID unset; assigned at dispatch)
	Node       string             // current owner worker
	State      service.JobState
	Scenario   string
	Seed       uint64
	Err        string
	Dispatches int  // how many dispatch attempts this job has consumed
	done       bool // terminal from the cluster's point of view
	inflight   bool // a dispatch call is in progress (guards re-entry)
}

// JobView is the coordinator's status JSON for a job — the worker view
// plus placement.
type JobView struct {
	ID         string           `json:"id"`
	State      service.JobState `json:"state"`
	Scenario   string           `json:"scenario"`
	SUT        string           `json:"sut"`
	Seed       uint64           `json:"seed,omitempty"`
	Node       string           `json:"node"`
	Dispatches int              `json:"dispatches"`
	Error      string           `json:"error,omitempty"`
}

func (j *clusterJob) view() JobView {
	return JobView{
		ID:         j.ID,
		State:      j.State,
		Scenario:   j.Scenario,
		SUT:        j.Req.SUT,
		Seed:       j.Seed,
		Node:       j.Node,
		Dispatches: j.Dispatches,
		Error:      j.Err,
	}
}

// Coordinator shards benchmark jobs across worker nodes and merges their
// results. See the package comment for the full design.
//
// Locking rule: co.mu is never held across a worker HTTP call — dispatch,
// polling, and anti-entropy all snapshot under the lock, call with it
// released, then re-acquire to record outcomes.
type Coordinator struct {
	cfg   Config
	store *service.Store

	mu     sync.Mutex
	ring   *Ring
	nodes  map[string]*node
	jobs   map[string]*clusterJob
	order  []string // submission order
	nextID int
	// seen tracks replicated JobIDs so anti-entropy pulls only the set
	// difference and never appends a duplicate.
	seen map[string]bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a Coordinator over cfg.Workers and starts its health, poll,
// and anti-entropy loops. Call Close to stop them and release the store.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	store, err := service.OpenStore(cfg.StorePath)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:   cfg,
		store: store,
		ring:  NewRing(cfg.Replicas),
		nodes: make(map[string]*node),
		jobs:  make(map[string]*clusterJob),
		seen:  make(map[string]bool),
		stop:  make(chan struct{}),
	}
	for _, id := range store.IDs() {
		co.seen[id] = true
	}
	for _, addr := range cfg.Workers {
		co.addNode(addr)
	}
	co.wg.Add(3)
	go co.healthLoop()
	go co.pollLoop()
	go co.antiEntropyLoop()
	return co, nil
}

// Close stops the background loops and closes the replicated store.
func (co *Coordinator) Close() error {
	close(co.stop)
	co.wg.Wait()
	return co.store.Close()
}

// Store exposes the coordinator's replicated store (read-only use).
func (co *Coordinator) Store() *service.Store { return co.store }

// addNode registers addr (idempotent) and puts it on the ring as alive.
func (co *Coordinator) addNode(addr string) {
	addr = strings.TrimRight(addr, "/")
	co.mu.Lock()
	defer co.mu.Unlock()
	if _, ok := co.nodes[addr]; ok {
		if n := co.nodes[addr]; !n.alive {
			n.alive = true
			n.fails = 0
			co.ring.Add(addr)
		}
		return
	}
	co.nodes[addr] = &node{addr: addr, client: newWorkerClient(addr, co.cfg), alive: true}
	co.ring.Add(addr)
}

// markDead takes addr off the ring and re-routes its incomplete jobs to
// their new ring owners. except names a job the caller is already
// re-dispatching itself (avoids a double re-route from inside dispatch).
func (co *Coordinator) markDead(addr, except string) {
	co.mu.Lock()
	n, ok := co.nodes[addr]
	if !ok || !n.alive {
		co.mu.Unlock()
		return
	}
	n.alive = false
	co.ring.Remove(addr)
	var orphans []*clusterJob
	for _, j := range co.jobs {
		if j.Node == addr && !j.done && !j.inflight && j.ID != except {
			orphans = append(orphans, j)
		}
	}
	// Deterministic re-route order for a given failure.
	sort.Slice(orphans, func(i, k int) bool { return orphans[i].ID < orphans[k].ID })
	co.mu.Unlock()
	for _, j := range orphans {
		co.dispatch(j)
	}
}

// dispatch sends job to its current ring owner, walking to the next owner
// if the node dies mid-call. Re-sends are idempotent: the job keeps its
// cluster ID, and a worker that already has it returns the existing run.
// Returns the worker's HTTP status (0 when no worker answered) and error.
func (co *Coordinator) dispatch(job *clusterJob) (int, error) {
	co.mu.Lock()
	if job.done || job.inflight {
		co.mu.Unlock()
		return 0, nil
	}
	job.inflight = true
	co.mu.Unlock()
	defer func() {
		co.mu.Lock()
		job.inflight = false
		co.mu.Unlock()
	}()

	for {
		co.mu.Lock()
		if job.Dispatches >= co.cfg.MaxDispatches {
			job.State = service.JobFailed
			job.Err = fmt.Sprintf("exhausted %d dispatch attempts", job.Dispatches)
			job.done = true
			co.mu.Unlock()
			return 0, errors.New(job.Err)
		}
		owner, ok := co.ring.Owner(job.ID)
		if !ok {
			job.State = service.JobFailed
			job.Err = "no live worker nodes"
			job.done = true
			co.mu.Unlock()
			return 0, errors.New(job.Err)
		}
		n := co.nodes[owner]
		job.Node = owner
		job.Dispatches++
		req := job.Req
		req.ID = job.ID
		co.mu.Unlock()

		view, status, err := n.client.submit(req)
		if err == nil {
			co.mu.Lock()
			job.State = view.State
			job.Scenario = view.Scenario
			job.Seed = view.Seed
			job.Err = view.Error
			if view.State.Terminal() {
				job.done = true
			}
			co.mu.Unlock()
			return status, nil
		}
		if status != 0 {
			// The node answered: the request itself was rejected (bad
			// scenario, spent hold-out, queue full past retries). Re-routing
			// to another node cannot fix the request.
			co.mu.Lock()
			job.State = service.JobFailed
			job.Err = err.Error()
			job.done = true
			co.mu.Unlock()
			return status, err
		}
		// Transport failure: the node is unreachable. Take it off the ring
		// (re-routing its other jobs) and walk to this job's next owner.
		co.markDead(owner, job.ID)
	}
}

// healthLoop probes every node at HealthInterval, marking nodes dead
// after HealthFailures consecutive failures and reviving nodes whose
// probes recover.
func (co *Coordinator) healthLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.probeOnce()
		}
	}
}

func (co *Coordinator) probeOnce() {
	co.mu.Lock()
	snapshot := make([]*node, 0, len(co.nodes))
	for _, n := range co.nodes {
		snapshot = append(snapshot, n)
	}
	co.mu.Unlock()
	sort.Slice(snapshot, func(i, j int) bool { return snapshot[i].addr < snapshot[j].addr })
	for _, n := range snapshot {
		err := n.client.health()
		co.mu.Lock()
		cur, ok := co.nodes[n.addr]
		if !ok || cur != n {
			co.mu.Unlock()
			continue // node left while we probed
		}
		if err == nil {
			n.fails = 0
			if !n.alive {
				n.alive = true
				co.ring.Add(n.addr)
			}
			co.mu.Unlock()
			continue
		}
		n.fails++
		dead := n.alive && n.fails >= co.cfg.HealthFailures
		co.mu.Unlock()
		if dead {
			co.markDead(n.addr, "")
		}
	}
}

// pollLoop advances in-flight jobs at PollInterval.
func (co *Coordinator) pollLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.pollOnce()
		}
	}
}

func (co *Coordinator) pollOnce() {
	type probe struct {
		job    *clusterJob
		addr   string
		client *workerClient
	}
	co.mu.Lock()
	var probes []probe
	for _, j := range co.jobs {
		if j.done || j.inflight || j.Node == "" {
			continue
		}
		if n, ok := co.nodes[j.Node]; ok && n.alive {
			probes = append(probes, probe{j, j.Node, n.client})
		}
	}
	co.mu.Unlock()
	sort.Slice(probes, func(i, j int) bool { return probes[i].job.ID < probes[j].job.ID })

	for _, p := range probes {
		view, status, err := p.client.jobStatus(p.job.ID)
		if err != nil {
			if status == http.StatusNotFound {
				// The worker restarted and lost the job: re-dispatch (the
				// cluster ID keeps it idempotent if the worker catches up).
				co.dispatch(p.job)
				continue
			}
			if !errors.Is(err, netdriver.ErrTransient) && status == 0 {
				co.markDead(p.addr, "")
			}
			continue
		}
		co.mu.Lock()
		if p.job.Node != p.addr || p.job.done {
			co.mu.Unlock()
			continue // re-routed or settled while we polled
		}
		p.job.State = view.State
		p.job.Scenario = view.Scenario
		p.job.Seed = view.Seed
		p.job.Err = view.Error
		terminalDone := view.State == service.JobDone
		terminal := view.State.Terminal()
		if terminal {
			p.job.done = true
		}
		co.mu.Unlock()
		if terminalDone {
			// Pull this job's result entry right away so the merged
			// leaderboard is fresh and the entry survives the worker dying
			// between now and the next anti-entropy round.
			co.pullEntries(p.addr, p.client, []string{p.job.ID})
		}
	}
}

// antiEntropyLoop replicates worker store entries the coordinator has not
// seen, by jobID set difference, at AntiEntropyInterval.
func (co *Coordinator) antiEntropyLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.AntiEntropyInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.pullAll()
		}
	}
}

// pullAll runs one anti-entropy round across all alive nodes.
func (co *Coordinator) pullAll() {
	co.mu.Lock()
	snapshot := make([]*node, 0, len(co.nodes))
	for _, n := range co.nodes {
		if n.alive {
			snapshot = append(snapshot, n)
		}
	}
	co.mu.Unlock()
	sort.Slice(snapshot, func(i, j int) bool { return snapshot[i].addr < snapshot[j].addr })
	for _, n := range snapshot {
		ids, err := n.client.storeIDs()
		if err != nil {
			continue // next round will retry; health loop handles dead nodes
		}
		co.mu.Lock()
		missing := ids[:0:0]
		for _, id := range ids {
			if !co.seen[id] {
				missing = append(missing, id)
			}
		}
		co.mu.Unlock()
		if len(missing) > 0 {
			co.pullEntries(n.addr, n.client, missing)
		}
	}
}

// pullEntries copies the named store entries from one worker into the
// coordinator's replicated store. An entry is marked seen only after its
// Append succeeds, so a disk failure leaves it eligible for the next
// round instead of silently dropped.
func (co *Coordinator) pullEntries(addr string, client *workerClient, ids []string) {
	entries, err := client.storeEntries(ids)
	if err != nil && len(entries) == 0 {
		return
	}
	for _, e := range entries {
		co.mu.Lock()
		dup := co.seen[e.JobID]
		co.mu.Unlock()
		if dup {
			continue
		}
		if err := co.store.Append(e); err != nil {
			continue
		}
		co.mu.Lock()
		co.seen[e.JobID] = true
		// A replicated entry settles its job as done even if a status poll
		// never saw the terminal state (e.g. the worker died right after
		// persisting).
		if j, ok := co.jobs[e.JobID]; ok && !j.done {
			j.State = service.JobDone
			j.done = true
			j.Err = ""
		}
		co.mu.Unlock()
	}
}

// Submit assigns job a cluster ID and dispatches it to its ring owner.
func (co *Coordinator) Submit(req service.JobRequest) (JobView, int, error) {
	if req.ID != "" {
		return JobView{}, http.StatusBadRequest, errors.New("cluster assigns job ids; submit without one")
	}
	co.mu.Lock()
	co.nextID++
	id := "c" + strconv.Itoa(co.nextID)
	job := &clusterJob{ID: id, Req: req, State: service.JobQueued}
	co.jobs[id] = job
	co.order = append(co.order, id)
	co.mu.Unlock()

	status, err := co.dispatch(job)
	co.mu.Lock()
	view := job.view()
	co.mu.Unlock()
	return view, status, err
}

// Job returns the coordinator's cached view of one job.
func (co *Coordinator) Job(id string) (JobView, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs lists all jobs in submission order.
func (co *Coordinator) Jobs() []JobView {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]JobView, 0, len(co.order))
	for _, id := range co.order {
		out = append(out, co.jobs[id].view())
	}
	return out
}

// Join adds a worker node at runtime. Newly submitted jobs whose ring
// position lands on it are routed there; existing placements stand.
func (co *Coordinator) Join(addr string) error {
	if addr == "" {
		return errors.New("empty node addr")
	}
	co.addNode(addr)
	return nil
}

// Leave removes a worker node gracefully: its store entries are pulled
// one final time, its incomplete jobs re-routed, and the node forgotten.
func (co *Coordinator) Leave(addr string) error {
	addr = strings.TrimRight(addr, "/")
	co.mu.Lock()
	n, ok := co.nodes[addr]
	co.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown node %q", addr)
	}
	if n.alive {
		// Final catch-up while the node is still reachable.
		if ids, err := n.client.storeIDs(); err == nil {
			co.mu.Lock()
			missing := ids[:0:0]
			for _, id := range ids {
				if !co.seen[id] {
					missing = append(missing, id)
				}
			}
			co.mu.Unlock()
			if len(missing) > 0 {
				co.pullEntries(addr, n.client, missing)
			}
		}
	}
	co.markDead(addr, "")
	co.mu.Lock()
	delete(co.nodes, addr)
	co.mu.Unlock()
	return nil
}

// NodeView is one worker's row in GET /v1/cluster.
type NodeView struct {
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	Fails int    `json:"fails"`
	Jobs  int    `json:"jobs"` // jobs currently placed on this node
}

// ClusterView is the GET /v1/cluster topology document.
type ClusterView struct {
	Nodes      []NodeView `json:"nodes"`
	Jobs       int        `json:"jobs"`
	Replicated int        `json:"replicated"` // entries in the merged store
}

// View snapshots cluster topology.
func (co *Coordinator) View() ClusterView {
	co.mu.Lock()
	defer co.mu.Unlock()
	perNode := make(map[string]int)
	for _, j := range co.jobs {
		if j.Node != "" {
			perNode[j.Node]++
		}
	}
	addrs := make([]string, 0, len(co.nodes))
	for a := range co.nodes {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	v := ClusterView{Jobs: len(co.jobs), Replicated: len(co.seen)}
	for _, a := range addrs {
		n := co.nodes[a]
		v.Nodes = append(v.Nodes, NodeView{Addr: a, Alive: n.alive, Fails: n.fails, Jobs: perNode[a]})
	}
	return v
}

// Leaderboard runs a final anti-entropy round and ranks SUTs on the
// merged cluster-wide store.
func (co *Coordinator) Leaderboard(scenario, metric string) ([]service.Row, error) {
	co.pullAll()
	return service.Leaderboard(co.store.Entries(), scenario, metric)
}

// Result proxies a done job's full result JSON from its owner worker.
func (co *Coordinator) Result(id string) (json.RawMessage, int, error) {
	co.mu.Lock()
	j, ok := co.jobs[id]
	if !ok {
		co.mu.Unlock()
		return nil, http.StatusNotFound, fmt.Errorf("unknown job %q", id)
	}
	addr := j.Node
	n, live := co.nodes[addr]
	co.mu.Unlock()
	if !live || !n.alive {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("job %q's node %q is not reachable", id, addr)
	}
	return n.client.jobResult(id)
}
