// Package cluster grows the benchmark-as-a-service daemon
// (internal/service) into a shared-nothing multi-node cluster — the
// paper's §V-B deployment model at production scale. A Coordinator
// consistent-hashes submitted jobs across N worker nodes (each a plain
// internal/service daemon), speaks to them over HTTP with the wire
// discipline the netdriver established (typed ErrTransient/ErrFatal
// errors, per-op deadlines, seeded capped-exponential retry/backoff),
// replicates their append-only result stores by anti-entropy catch-up,
// serves a merged cluster-wide leaderboard, and re-routes work when a
// node dies or leaves. Dispatch is idempotent end to end: every job
// carries a coordinator-assigned ID the workers dedupe, so an ambiguous
// failure can never double-run a benchmark.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring: keys hash to points on a circle, each
// owned by the nearest clockwise node point. Every node contributes
// `replicas` virtual points so load spreads evenly, and adding or
// removing one node re-routes only the keys inside its own arcs — the
// property that keeps a node leave (or crash) from reshuffling the whole
// cluster's job placement.
//
// Ring is not safe for concurrent use; the Coordinator guards it with
// its mutex.
type Ring struct {
	replicas int
	points   []point // sorted by (hash, node)
	nodes    map[string]bool
}

type point struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-point count per
// node (<= 0 defaults to 64).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// ringHash is the ring's stable key hash: FNV-64a (deterministic across
// processes and runs, unlike maphash) put through a splitmix64 finalizer.
// The finalizer matters: bare FNV barely disperses short near-identical
// keys — sequential job IDs like "c1".."c6" differ only in their last
// byte and would land within a ~2^43-wide sliver of the 2^64 ring,
// clustering every job onto one node's arc.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.): full-avalanche
// bijective mixing of a 64-bit value.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{ringHash(node + "#" + strconv.Itoa(i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether node is on the ring.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the ring's nodes, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key: the first ring point clockwise from
// the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (owner string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's smallest point owns the top arc
	}
	return r.points[i].node, true
}
