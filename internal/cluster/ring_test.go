package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter.
		for _, n := range []string{"b", "a", "c"} {
			r.Add(n)
		}
		return r
	}
	r1, r2 := build(), build()
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("c%d", i)
		o1, ok1 := r1.Owner(key)
		o2, ok2 := r2.Owner(key)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("key %s: owners diverge (%s vs %s)", key, o1, o2)
		}
	}
}

func TestRingCoversAllNodes(t *testing.T) {
	r := NewRing(64)
	nodes := []string{"n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := make(map[string]int)
	for i := 0; i < 3000; i++ {
		owner, ok := r.Owner(fmt.Sprintf("c%d", i))
		if !ok {
			t.Fatal("empty ring?")
		}
		counts[owner]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns no keys: %v", n, counts)
		}
	}
}

// TestRingMinimalDisruption is consistent hashing's defining property:
// removing a node re-routes only that node's keys.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	before := make(map[string]string)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("c%d", i)
		before[key], _ = r.Owner(key)
	}
	r.Remove("n2")
	for key, owner := range before {
		after, ok := r.Owner(key)
		if !ok {
			t.Fatal("ring emptied")
		}
		if owner != "n2" && after != owner {
			t.Fatalf("key %s moved %s→%s though %s stayed up", key, owner, after, owner)
		}
		if owner == "n2" && after == "n2" {
			t.Fatalf("key %s still owned by removed node", key)
		}
	}

	// Empty ring answers not-ok rather than a stale owner.
	r.Remove("n1")
	r.Remove("n3")
	if _, ok := r.Owner("c0"); ok {
		t.Fatal("empty ring returned an owner")
	}
}

func TestRingIdempotentMembership(t *testing.T) {
	r := NewRing(8)
	r.Add("n1")
	r.Add("n1")
	if got := len(r.points); got != 8 {
		t.Fatalf("double add left %d points, want 8", got)
	}
	r.Remove("nope")
	if r.Len() != 1 || !r.Has("n1") {
		t.Fatalf("membership wrong after no-op remove: %v", r.Nodes())
	}
}

// TestRingDispersesSequentialIDs pins the splitmix64 finalizer in
// ringHash: coordinator job IDs are sequential ("c1", "c2", …), and bare
// FNV would cluster them all onto one node's arc.
func TestRingDispersesSequentialIDs(t *testing.T) {
	r := NewRing(64)
	r.Add("http://127.0.0.1:40001")
	r.Add("http://127.0.0.1:40002")
	counts := make(map[string]int)
	for i := 1; i <= 40; i++ {
		owner, ok := r.Owner(fmt.Sprintf("c%d", i))
		if !ok {
			t.Fatal("no owner")
		}
		counts[owner]++
	}
	if len(counts) != 2 {
		t.Fatalf("40 sequential job IDs all placed on one node: %v", counts)
	}
}
