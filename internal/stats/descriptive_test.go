package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Fatalf("quartiles = %v, %v", s.P25, s.P75)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Mean != 7 || s.Stddev != 0 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizeOutliers(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 100}
	s := Summarize(xs)
	if s.OutlierCount != 1 {
		t.Fatalf("outliers = %d, want 1 (summary %+v)", s.OutlierCount, s)
	}
	if s.WhiskerHigh == 100 {
		t.Fatal("whisker must exclude the outlier")
	}
	if s.Max != 100 {
		t.Fatal("max must include the outlier")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummaryInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		r := NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		s := Summarize(xs)
		ordered := s.Min <= s.P25 && s.P25 <= s.Median &&
			s.Median <= s.P75 && s.P75 <= s.Max
		whisk := s.WhiskerLow >= s.Min && s.WhiskerHigh <= s.Max &&
			s.WhiskerLow <= s.WhiskerHigh
		return ordered && whisk && s.N == n &&
			s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Quantile(xs, 0) != 1 {
		t.Fatalf("q0 = %v", Quantile(xs, 0))
	}
	if Quantile(xs, 1) != 9 {
		t.Fatalf("q1 = %v", Quantile(xs, 1))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("median of {0,10} = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2.5 {
		t.Fatalf("q25 of {0,10} = %v", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := NewRNG(17)
	xs := make([]float64, 5000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	s := Summarize(xs)
	if math.Abs(w.Mean()-s.Mean) > 1e-9 {
		t.Fatalf("welford mean %v vs batch %v", w.Mean(), s.Mean)
	}
	if math.Abs(w.Stddev()-s.Stddev) > 1e-9 {
		t.Fatalf("welford stddev %v vs batch %v", w.Stddev(), s.Stddev)
	}
	if w.Min() != s.Min || w.Max() != s.Max {
		t.Fatal("welford min/max mismatch")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean of {2,4}")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean must be NaN")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	l := FitLinear(xs, ys)
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", l)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	l := FitLinear([]float64{5, 5, 5}, []float64{1, 2, 3})
	if l.Slope != 0 || l.Intercept != 2 {
		t.Fatalf("degenerate fit = %+v", l)
	}
	if z := (Linear{}); z.Predict(10) != 0 {
		t.Fatal("zero line must predict 0")
	}
}

func TestFitLinearKeysMatchesGeneric(t *testing.T) {
	keys := []uint64{10, 20, 35, 70, 100, 160}
	xs := make([]float64, len(keys))
	ys := make([]float64, len(keys))
	for i, k := range keys {
		xs[i] = float64(k)
		ys[i] = float64(i)
	}
	a := FitLinearKeys(keys)
	b := FitLinear(xs, ys)
	if math.Abs(a.Slope-b.Slope) > 1e-9 || math.Abs(a.Intercept-b.Intercept) > 1e-9 {
		t.Fatalf("FitLinearKeys %+v != FitLinear %+v", a, b)
	}
}

func TestPredictClamped(t *testing.T) {
	l := Linear{Slope: 1, Intercept: 0}
	if l.PredictClamped(-5, 10) != 0 {
		t.Fatal("low clamp")
	}
	if l.PredictClamped(100, 10) != 9 {
		t.Fatal("high clamp")
	}
	if l.PredictClamped(4.7, 10) != 4 {
		t.Fatal("interior truncation")
	}
	nan := Linear{Slope: math.NaN()}
	if nan.PredictClamped(1, 10) != 0 {
		t.Fatal("NaN must clamp to 0")
	}
}

func TestFitLinearKeysResidualsSmallOnLinearData(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		base := r.Uint64() % (1 << 40)
		step := r.Uint64()%1000 + 1
		keys := make([]uint64, 256)
		for i := range keys {
			keys[i] = base + uint64(i)*step
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		l := FitLinearKeys(keys)
		for i, k := range keys {
			if math.Abs(l.Predict(float64(k))-float64(i)) > 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
