// Package stats provides the deterministic random-number generation,
// sampling, and descriptive-statistics primitives shared by every other
// package in LSBench.
//
// Benchmarks must be reproducible: two runs with the same scenario seed must
// issue the same operations in the same order regardless of Go version or
// platform. The math/rand global source does not guarantee a stable stream
// across releases, so LSBench uses its own splitmix64/xoshiro256** generator
// with a fully specified algorithm.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**
// seeded via splitmix64). It is NOT safe for concurrent use; each driver
// worker owns its own RNG forked from the scenario seed with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm = splitmix64(&sm)
		r.s[i] = sm
	}
	// xoshiro must not be seeded with all zeros.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split forks a statistically independent generator. The fork is a pure
// function of the parent's state, so forking is itself deterministic.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A55A5A5A5A)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the n elements addressed by swap in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
