package stats

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^theta, using the rejection-inversion method of Hörmann and
// Derflinger, which is O(1) per sample for any theta > 0, theta != 1 handled
// via the generalized harmonic transform.
//
// theta (the skew) around 0.99 matches the YCSB default; larger values
// concentrate more mass on the most popular items.
type Zipf struct {
	rng              *RNG
	n                uint64
	theta            float64
	oneMinusTheta    float64
	oneMinusThetaInv float64
	hIntegralX1      float64
	hIntegralN       float64
	s                float64
}

// NewZipf returns a Zipf sampler over [0, n) with skew theta > 0.
func NewZipf(rng *RNG, theta float64, n uint64) *Zipf {
	if n == 0 {
		panic("stats: Zipf with n == 0")
	}
	if theta <= 0 {
		panic("stats: Zipf with non-positive theta")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.oneMinusTheta = 1 - theta
	if z.oneMinusTheta != 0 {
		z.oneMinusThetaInv = 1 / z.oneMinusTheta
	}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.s = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

// hIntegral is the antiderivative of h(x) = x^-theta.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusTheta*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.theta * math.Log(x))
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusTheta
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series expansion near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a series expansion near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next returns the next Zipf-distributed rank in [0, n). Rank 0 is the most
// popular item.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralN + z.rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := uint64(x + 0.5)
		switch {
		case k < 1:
			k = 1
		case k > z.n:
			k = z.n
		}
		kf := float64(k)
		if kf-x <= z.s || u >= z.hIntegral(kf+0.5)-z.h(kf) {
			return k - 1
		}
	}
}

// ScrambledZipf wraps Zipf so that the popular ranks are scattered across
// the whole key space instead of clustering at the low end, matching the
// YCSB "scrambled zipfian" access pattern.
type ScrambledZipf struct {
	z *Zipf
	n uint64
}

// NewScrambledZipf returns a scrambled Zipf sampler over [0, n).
func NewScrambledZipf(rng *RNG, theta float64, n uint64) *ScrambledZipf {
	return &ScrambledZipf{z: NewZipf(rng, theta, n), n: n}
}

// Next returns the next scrambled rank in [0, n).
func (s *ScrambledZipf) Next() uint64 {
	r := s.z.Next()
	return fnvHash64(r) % s.n
}

func fnvHash64(v uint64) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= 0x100000001B3
		v >>= 8
	}
	return h
}
