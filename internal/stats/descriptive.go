package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics that back a box plot: the
// five-number summary plus mean, standard deviation, whiskers (Tukey 1.5 IQR
// fences clamped to observed data), and outlier count. It is the unit of
// reporting for the paper's Figure 1a ("report descriptive statistics, e.g.
// using a box plot").
type Summary struct {
	N            int
	Mean         float64
	Stddev       float64
	Min          float64
	P25          float64
	Median       float64
	P75          float64
	Max          float64
	WhiskerLow   float64 // lowest observation >= P25 - 1.5*IQR
	WhiskerHigh  float64 // highest observation <= P75 + 1.5*IQR
	OutlierCount int     // observations outside the whiskers
}

// IQR returns the interquartile range.
func (s Summary) IQR() float64 { return s.P75 - s.P25 }

// Summarize computes a Summary over the sample. It sorts a copy; the input
// slice is not modified. An empty sample yields a zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	var s Summary
	s.N = len(xs)
	s.Min = xs[0]
	s.Max = xs[len(xs)-1]
	s.P25 = quantileSorted(xs, 0.25)
	s.Median = quantileSorted(xs, 0.5)
	s.P75 = quantileSorted(xs, 0.75)

	var mean, m2 float64
	for i, x := range xs {
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
	}
	s.Mean = mean
	if s.N > 1 {
		s.Stddev = math.Sqrt(m2 / float64(s.N-1))
	}

	loFence := s.P25 - 1.5*s.IQR()
	hiFence := s.P75 + 1.5*s.IQR()
	s.WhiskerLow = s.Max
	s.WhiskerHigh = s.Min
	for _, x := range xs {
		if x < loFence || x > hiFence {
			s.OutlierCount++
			continue
		}
		if x < s.WhiskerLow {
			s.WhiskerLow = x
		}
		if x > s.WhiskerHigh {
			s.WhiskerHigh = x
		}
	}
	if s.OutlierCount == s.N { // degenerate: everything is an "outlier"
		s.WhiskerLow, s.WhiskerHigh = s.Min, s.Max
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample using linear
// interpolation between closest ranks. The input is not modified.
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	return quantileSorted(xs, q)
}

func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range sample {
		sum += x
	}
	return sum / float64(len(sample))
}

// Welford tracks mean and variance online in O(1) space. The driver uses it
// to account training-overhead resource metrics without retaining samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples folded in.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest sample (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }
