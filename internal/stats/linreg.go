package stats

import "math"

// Linear is a fitted line y = Slope*x + Intercept. It is the model primitive
// of the learned components: RMI stages, ALEX node models, the learned-sort
// CDF approximation, and the learned cardinality estimator all fit lines.
type Linear struct {
	Slope     float64
	Intercept float64
}

// Predict evaluates the line at x.
func (l Linear) Predict(x float64) float64 { return l.Slope*x + l.Intercept }

// FitLinear fits a least-squares line to (xs, ys). The slices must have the
// same length. Degenerate inputs (empty, or zero x-variance) yield a
// horizontal line through the mean of ys.
func FitLinear(xs, ys []float64) Linear {
	n := len(xs)
	if n == 0 {
		return Linear{}
	}
	if n != len(ys) {
		panic("stats: FitLinear length mismatch")
	}
	var sumX, sumY float64
	for i := 0; i < n; i++ {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/float64(n), sumY/float64(n)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - meanX
		sxx += dx * dx
		sxy += dx * (ys[i] - meanY)
	}
	if sxx == 0 {
		return Linear{Slope: 0, Intercept: meanY}
	}
	slope := sxy / sxx
	return Linear{Slope: slope, Intercept: meanY - slope*meanX}
}

// FitLinearKeys fits positions 0..n-1 against sorted uint64 keys. It is the
// common case for learned indexes, avoiding a float conversion pass by the
// caller.
func FitLinearKeys(keys []uint64) Linear {
	n := len(keys)
	if n == 0 {
		return Linear{}
	}
	if n == 1 {
		return Linear{Slope: 0, Intercept: 0}
	}
	var sumX, sumY float64
	for i, k := range keys {
		sumX += float64(k)
		sumY += float64(i)
	}
	meanX, meanY := sumX/float64(n), sumY/float64(n)
	var sxx, sxy float64
	for i, k := range keys {
		dx := float64(k) - meanX
		sxx += dx * dx
		sxy += dx * (float64(i) - meanY)
	}
	if sxx == 0 {
		return Linear{Slope: 0, Intercept: meanY}
	}
	slope := sxy / sxx
	return Linear{Slope: slope, Intercept: meanY - slope*meanX}
}

// PredictClamped evaluates the line and clamps the result into [0, n-1],
// returning an integer position. n must be positive.
func (l Linear) PredictClamped(x float64, n int) int {
	p := l.Predict(x)
	if math.IsNaN(p) || p < 0 {
		return 0
	}
	if p > float64(n-1) {
		return n - 1
	}
	return int(p)
}
