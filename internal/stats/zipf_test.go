package stats

import (
	"math"
	"testing"
)

func TestZipfBounds(t *testing.T) {
	r := NewRNG(1)
	z := NewZipf(r, 0.99, 1000)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Rank 0 must be the most frequent and frequency must broadly decay.
	r := NewRNG(2)
	z := NewZipf(r, 1.2, 100)
	counts := make([]int, 100)
	for i := 0; i < 500000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Fatalf("Zipf frequencies not decaying: c0=%d c10=%d c90=%d",
			counts[0], counts[10], counts[90])
	}
}

func TestZipfMatchesAnalyticHead(t *testing.T) {
	// For theta=1 the probability of rank 0 is 1/H_n. Check within 10%.
	const n = 50
	r := NewRNG(3)
	z := NewZipf(r, 1.0, n)
	var hn float64
	for k := 1; k <= n; k++ {
		hn += 1 / float64(k)
	}
	want := 1 / hn
	hits := 0
	const trials = 300000
	for i := 0; i < trials; i++ {
		if z.Next() == 0 {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("P(rank 0) = %v, analytic %v", got, want)
	}
}

func TestZipfHighSkewConcentrates(t *testing.T) {
	r := NewRNG(4)
	z := NewZipf(r, 2.0, 10000)
	top10 := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if z.Next() < 10 {
			top10++
		}
	}
	if float64(top10)/trials < 0.8 {
		t.Fatalf("theta=2 top-10 mass = %v, want > 0.8", float64(top10)/trials)
	}
}

func TestZipfLowSkewSpreads(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 0.2, 1000)
	seen := make(map[uint64]bool)
	for i := 0; i < 50000; i++ {
		seen[z.Next()] = true
	}
	if len(seen) < 500 {
		t.Fatalf("theta=0.2 visited only %d/1000 ranks", len(seen))
	}
}

func TestZipfSingleElement(t *testing.T) {
	z := NewZipf(NewRNG(6), 0.99, 1)
	for i := 0; i < 100; i++ {
		if z.Next() != 0 {
			t.Fatal("n=1 Zipf must always return 0")
		}
	}
}

func TestScrambledZipfSpreadsHotKeys(t *testing.T) {
	r := NewRNG(7)
	s := NewScrambledZipf(r, 0.99, 10000)
	counts := make(map[uint64]int)
	for i := 0; i < 200000; i++ {
		counts[s.Next()]++
	}
	// Find the two hottest keys; they must not be adjacent (scrambling).
	var h1, h2 uint64
	var c1, c2 int
	for k, c := range counts {
		if c > c1 {
			h2, c2 = h1, c1
			h1, c1 = k, c
		} else if c > c2 {
			h2, c2 = k, c
		}
	}
	d := int64(h1) - int64(h2)
	if d < 0 {
		d = -d
	}
	if d <= 1 {
		t.Fatalf("scrambled hot keys adjacent: %d and %d", h1, h2)
	}
}

func TestZipfPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero-n":     func() { NewZipf(NewRNG(1), 1, 0) },
		"zero-theta": func() { NewZipf(NewRNG(1), 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
