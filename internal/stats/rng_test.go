package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	var or uint64
	for i := 0; i < 100; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	p := NewRNG(7)
	p.Uint64() // consume the split draw
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("child replays parent: %d/100 matches", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("normal mean = %v", w.Mean())
	}
	if math.Abs(w.Stddev()-1) > 0.02 {
		t.Fatalf("normal stddev = %v", w.Stddev())
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(6)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if math.Abs(sum/n-1) > 0.03 {
		t.Fatalf("exponential mean = %v, want ~1", sum/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements, sum=%d", sum)
	}
}
