package figures

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/report"
)

// TestFig1gShape pins the ISSUE acceptance for the drift sweep: at least
// four intensity points and three SUT families per panel, with the drift
// knob actually steering the metric quadruple — learned structures
// degrade with D while the B+ tree baseline stays flat, and the adaptive
// optimizer holds its latency while the static sample collapses.
func TestFig1gShape(t *testing.T) {
	res, err := Fig1g(SmallScale(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intensities) < 4 {
		t.Fatalf("only %d intensity points, need >= 4", len(res.Intensities))
	}
	nd := len(res.Intensities)

	// Data panel: full grid, divergence monotone in D and zero at D=0.
	if len(res.Data) != nd*3 {
		t.Fatalf("data panel has %d cells, want %d", len(res.Data), nd*3)
	}
	cell := func(d float64, sut string) Fig1gData {
		for _, c := range res.Data {
			if c.D == d && c.SUT == sut {
				return c
			}
		}
		t.Fatalf("no data cell for D=%v %s", d, sut)
		return Fig1gData{}
	}
	dmin, dmax := res.Intensities[0], res.Intensities[nd-1]
	for _, c := range res.Data {
		if c.Throughput <= 0 {
			t.Fatalf("%s D=%v: zero throughput", c.SUT, c.D)
		}
		if c.D == 0 && c.Divergence != 0 {
			t.Fatalf("%s: non-zero divergence %v at D=0", c.SUT, c.Divergence)
		}
	}
	for _, sut := range []string{"btree", "rmi", "alex"} {
		prev := -1.0
		for _, d := range res.Intensities {
			c := cell(d, sut)
			if c.Divergence < prev {
				t.Fatalf("%s: divergence not monotone in D at %v", sut, d)
			}
			prev = c.Divergence
		}
	}
	// The baseline shrugs drift off; the learned in-place index pays.
	for _, d := range res.Intensities {
		if c := cell(d, "btree"); c.ViolationRate > 0.01 {
			t.Fatalf("btree D=%v: violation rate %v — baseline should be flat", d, c.ViolationRate)
		}
	}
	a0, a1 := cell(dmin, "alex"), cell(dmax, "alex")
	if a1.Throughput >= a0.Throughput {
		t.Fatalf("alex throughput did not degrade with drift: %v -> %v", a0.Throughput, a1.Throughput)
	}
	if a1.ViolationRate <= a0.ViolationRate {
		t.Fatalf("alex violations did not grow with drift: %v -> %v", a0.ViolationRate, a1.ViolationRate)
	}

	// Query panel: full grid over three optimizer families.
	if len(res.Query) != nd*3 {
		t.Fatalf("query panel has %d cells, want %d", len(res.Query), nd*3)
	}
	qcell := func(d float64, sys string) Fig1gQuery {
		for _, c := range res.Query {
			if c.D == d && c.System == sys {
				return c
			}
		}
		t.Fatalf("no query cell for D=%v %s", d, sys)
		return Fig1gQuery{}
	}
	for _, c := range res.Query {
		if c.Throughput <= 0 {
			t.Fatalf("%s D=%v: zero query throughput", c.System, c.D)
		}
		if c.System == "learned-steered" && c.TrainWork == 0 {
			t.Fatalf("learned-steered D=%v: no training work recorded", c.D)
		}
		if c.System != "learned-steered" && c.TrainWork != 0 {
			t.Fatalf("%s D=%v: static system reports training work %d", c.System, c.D, c.TrainWork)
		}
	}
	s0, s1 := qcell(dmin, "static-sample"), qcell(dmax, "static-sample")
	if s1.P99Ns <= s0.P99Ns {
		t.Fatalf("static-sample p99 did not degrade with query drift: %v -> %v", s0.P99Ns, s1.P99Ns)
	}

	// Session panel: the arrival stream is intensity-independent, so the
	// session count is one number everywhere; the met-rate is what moves.
	if len(res.Session) != nd*3 {
		t.Fatalf("session panel has %d cells, want %d", len(res.Session), nd*3)
	}
	scell := func(d float64, sut string) Fig1gSession {
		for _, c := range res.Session {
			if c.D == d && c.SUT == sut {
				return c
			}
		}
		t.Fatalf("no session cell for D=%v %s", d, sut)
		return Fig1gSession{}
	}
	want := res.Session[0].Sessions
	for _, c := range res.Session {
		if c.Sessions != want {
			t.Fatalf("%s D=%v: %d sessions, others saw %d — arrival stream not shared",
				c.SUT, c.D, c.Sessions, want)
		}
		if c.MetRate <= 0 || c.MetRate > 1 {
			t.Fatalf("%s D=%v: met rate %v out of (0,1]", c.SUT, c.D, c.MetRate)
		}
		if c.MakespanP99Ns <= 0 {
			t.Fatalf("%s D=%v: empty makespan distribution", c.SUT, c.D)
		}
	}
	x0, x1 := scell(dmin, "alex"), scell(dmax, "alex")
	if x1.MetRate >= x0.MetRate {
		t.Fatalf("alex session met-rate did not degrade with drift: %v -> %v", x0.MetRate, x1.MetRate)
	}

	if len(res.Results) != 2*nd*3 {
		t.Fatalf("raw results incomplete: %d, want %d", len(res.Results), 2*nd*3)
	}
	if len(res.SQLResults) != nd*3 {
		t.Fatalf("raw SQL results incomplete: %d, want %d", len(res.SQLResults), nd*3)
	}
}

// TestFig1gDeterministic: same seed + knobs yields identical panels and
// byte-identical result JSON across repeats, including the session block.
func TestFig1gDeterministic(t *testing.T) {
	a, err := Fig1g(SmallScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1g(SmallScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Data, b.Data) {
		t.Fatalf("data panel differs between identical runs:\n%+v\n%+v", a.Data, b.Data)
	}
	if !reflect.DeepEqual(a.Query, b.Query) {
		t.Fatal("query panel differs between identical runs")
	}
	if !reflect.DeepEqual(a.Session, b.Session) {
		t.Fatal("session panel differs between identical runs")
	}
	if !reflect.DeepEqual(a.SQLResults, b.SQLResults) {
		t.Fatal("raw SQL results differ between identical runs")
	}
	for key, ra := range a.Results {
		rb, ok := b.Results[key]
		if !ok {
			t.Fatalf("second run missing %s", key)
		}
		ja, err := report.MarshalResult(ra)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := report.MarshalResult(rb)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s: result JSON differs between identical runs", key)
		}
		if ra.Sessions != nil && !bytes.Contains(ja, []byte(`"sessions"`)) {
			t.Fatalf("%s: marshalled result has no sessions block", key)
		}
	}
}

// TestFig1gParallelBitIdentical: the sweep fans scenario×SUT runs out
// under -parallel; every panel must match the serial sweep exactly.
func TestFig1gParallelBitIdentical(t *testing.T) {
	serial := SmallScale()
	serial.Ops /= 2
	serial.DataSize /= 2
	serial.Parallel = 1
	par := serial
	par.Parallel = 8

	a, err := Fig1g(serial, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1g(par, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Data, b.Data) || !reflect.DeepEqual(a.Query, b.Query) ||
		!reflect.DeepEqual(a.Session, b.Session) {
		t.Fatal("panels differ between serial and parallel sweep")
	}
}

// TestFig1gGolden pins the rendered panel byte-for-byte. Regenerate with
//
//	go test ./internal/figures -run TestFig1gGolden -update
func TestFig1gGolden(t *testing.T) {
	scale := SmallScale()
	scale.Ops /= 2
	scale.DataSize /= 2
	res, err := Fig1g(scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig1g(&buf, res)
	buf.WriteString("--- csv ---\n")
	Fig1gCSV(&buf, res)

	path := filepath.Join("testdata", "fig1g.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("fig1g panel drifted from golden\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
