package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fig1bResult carries the cumulative-queries curves of Figure 1b for the
// compared SUTs, plus the single-value area scores the paper derives.
type Fig1bResult struct {
	Labels []string
	Curves []*metrics.CumCurve
	// AreaVsIdeal per SUT, and the pairwise area difference of the first
	// two SUTs (learned vs traditional).
	AreaVsIdeal map[string]float64
	AreaBetween float64
	PhaseStarts []int64
	FullResults []*core.Result
}

// fig1bScenario is a run with a mid-run abrupt distribution shift plus an
// insert flood into a new key region — the situation where a learned
// system "starts slow and later catches up" while adaptation costs show as
// slope changes.
func fig1bScenario(scale Scale, seed uint64) core.Scenario {
	oldRegion := func(s uint64) distgen.Generator {
		return distgen.NewUniform(s, 0, distgen.KeyDomain/4)
	}
	newRegion := func(s uint64) distgen.Generator {
		return distgen.NewClustered(s, 20, float64(distgen.KeyDomain)/1e6)
	}
	return core.Scenario{
		Name:        "fig1b-shift",
		Seed:        seed,
		InitialData: oldRegion(seed + 1),
		InitialSize: scale.DataSize,
		TrainBefore: true,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{
			{
				Name: "steady-old",
				Ops:  scale.Ops,
				Workload: workload.Spec{
					Mix:    workload.ReadHeavy,
					Access: distgen.Static{G: oldRegion(seed + 2)},
				},
			},
			{
				Name: "shifted-new",
				Ops:  scale.Ops,
				Workload: workload.Spec{
					// The new region arrives as an insert flood with
					// interleaved reads — the learned index must
					// re-learn its CDF mid-phase.
					Mix:        workload.Mix{GetFrac: 0.3, PutFrac: 0.7},
					Access:     distgen.Static{G: newRegion(seed + 3)},
					InsertKeys: distgen.Static{G: newRegion(seed + 4)},
				},
			},
			{
				Name: "settled-new",
				Ops:  scale.Ops,
				Workload: workload.Spec{
					Mix:    workload.ReadHeavy,
					Access: distgen.Static{G: newRegion(seed + 5)},
				},
			},
		},
	}
}

// fig1bBuildServeScenario reproduces the paper's Figure 1b narrative —
// "the SUT starts slow and later catches up": the run begins with an
// insert flood into a small database (the learned index repeatedly pays
// delta merges and retrains while learning the distribution) and then
// serves the read workload it trained for.
func fig1bBuildServeScenario(scale Scale, seed uint64) core.Scenario {
	region := func(s uint64) distgen.Generator {
		return distgen.NewClustered(s, 20, float64(distgen.KeyDomain)/1e6)
	}
	return core.Scenario{
		Name:        "fig1b-build-serve",
		Seed:        seed,
		InitialData: region(seed + 1),
		InitialSize: scale.DataSize / 10,
		TrainBefore: true,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{
			{
				Name: "build",
				Ops:  scale.Ops,
				Workload: workload.Spec{
					Mix:        workload.Mix{GetFrac: 0.1, PutFrac: 0.9},
					Access:     distgen.Static{G: region(seed + 2)},
					InsertKeys: distgen.Static{G: region(seed + 3)},
				},
			},
			{
				Name: "serve",
				Ops:  2 * scale.Ops,
				Workload: workload.Spec{
					Mix:    workload.ReadHeavy,
					Access: distgen.Static{G: region(seed + 4)},
				},
			},
		},
	}
}

// Fig1b runs the cumulative-queries experiment comparing the static
// learned index (RMI) against the traditional B+ tree.
func Fig1b(scale Scale, seed uint64) (*Fig1bResult, error) {
	runner := newRunner(scale)
	scenario := fig1bBuildServeScenario(scale, seed)
	results, err := runner.RunAll(scenario, []func() core.SUT{core.NewRMISUT, core.NewBTreeSUT})
	if err != nil {
		return nil, fmt.Errorf("figures: fig1b: %w", err)
	}
	out := &Fig1bResult{AreaVsIdeal: make(map[string]float64), FullResults: results}
	for _, r := range results {
		out.Labels = append(out.Labels, r.SUT)
		out.Curves = append(out.Curves, r.Cumulative)
		out.AreaVsIdeal[r.SUT] = r.Cumulative.AreaVsIdeal()
	}
	out.AreaBetween = metrics.AreaBetween(out.Curves[0], out.Curves[1])
	out.PhaseStarts = results[0].PhaseStarts
	return out, nil
}

// Fig1cResult carries the SLA-band data of Figure 1c per SUT plus the
// adjustment-speed single-value metric.
type Fig1cResult struct {
	// Bands per SUT name.
	Bands map[string]*metrics.BandTracker
	// AdjustmentSpeed per SUT: sum of over-SLA time over the first N
	// queries after the distribution change (ns).
	AdjustmentSpeed map[string]int64
	// SLA threshold per SUT (ns), calibrated per the paper's rule.
	SLANs map[string]int64
	// ViolationRate per SUT.
	ViolationRate map[string]float64
	FullResults   []*core.Result
}

// Fig1c runs the SLA-violation experiment: a diurnal open-loop arrival
// process over a run with an abrupt shift; latency bands expose how each
// SUT's adaptation disrupts service.
func Fig1c(scale Scale, seed uint64) (*Fig1cResult, error) {
	runner := newRunner(scale)
	// The adjustment-speed metric integrates over-SLA time across the
	// whole post-change phase so slow-burn adaptation (a delta merge
	// thousands of ops after the shift) is not missed.
	runner.PostChangeN = scale.Ops
	scenario := fig1bScenario(scale, seed)
	scenario.Name = "fig1c-sla"
	// An open loop at ~70% of closed-loop capacity with diurnal swings:
	// adaptation pauses now queue work and violate SLAs realistically.
	for i := range scenario.Phases {
		scenario.Phases[i].Arrival = workload.NewDiurnal(seed+uint64(i), 600_000, 0.5, 2)
	}
	results, err := runner.RunAll(scenario,
		[]func() core.SUT{core.NewRMISUT, core.NewALEXSUT, core.NewBTreeSUT})
	if err != nil {
		return nil, fmt.Errorf("figures: fig1c: %w", err)
	}
	out := &Fig1cResult{
		Bands:           make(map[string]*metrics.BandTracker),
		AdjustmentSpeed: make(map[string]int64),
		SLANs:           make(map[string]int64),
		ViolationRate:   make(map[string]float64),
		FullResults:     results,
	}
	for _, r := range results {
		out.Bands[r.SUT] = r.Bands
		out.SLANs[r.SUT] = r.SLANs
		out.ViolationRate[r.SUT] = r.Bands.ViolationRate()
		if len(r.PostChangeLatencies) > 0 {
			pl := r.PostChangeLatencies[0]
			out.AdjustmentSpeed[r.SUT] = metrics.AdjustmentSpeed(pl, r.SLANs, len(pl))
		}
	}
	return out, nil
}
