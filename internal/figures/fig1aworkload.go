package figures

import (
	"fmt"

	"repro/internal/card"
	"repro/internal/core"
	"repro/internal/optimizer"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/similarity"
	"repro/internal/sqlmini"
	"repro/internal/stats"
)

// Fig1aWorkloadResult is the workload-similarity variant of Figure 1a: the
// X-axis Φ is the paper's Jaccard distance over the sets of all query-plan
// subtrees (§V-D1), and each box is the per-interval query throughput of
// the same SUT on one workload family.
type Fig1aWorkloadResult struct {
	// Rows per SUT name, Φ-ordered by report.BoxPlot.
	Rows map[string][]report.BoxRow
	// Phi per workload name (1 - Jaccard similarity to the baseline).
	Phi map[string]float64
}

// workloadFamily generates queries of one template family over a shared
// database.
type workloadFamily struct {
	name  string
	query func(rng *stats.RNG, db *wlDB) optimizer.Query
}

// wlDB is the shared database of the workload-similarity experiment.
type wlDB struct {
	users, orders, items *sqlmini.Table
}

func newWLDB(scale Scale, seed uint64) *wlDB {
	rng := stats.NewRNG(seed)
	db := &wlDB{}
	db.users = sqlmini.NewTable("users", "id", "age", "region")
	nUsers := scale.DataSize / 40
	for i := 0; i < nUsers; i++ {
		db.users.Append(uint64(i), 18+rng.Uint64()%60, rng.Uint64()%20)
	}
	db.orders = sqlmini.NewTable("orders", "oid", "uid", "amount")
	for i := 0; i < nUsers*5; i++ {
		db.orders.Append(uint64(i), rng.Uint64()%uint64(nUsers), rng.Uint64()%10000)
	}
	db.items = sqlmini.NewTable("items", "iid", "oid2", "sku")
	for i := 0; i < nUsers*8; i++ {
		db.items.Append(uint64(i), rng.Uint64()%uint64(nUsers*5), rng.Uint64()%500)
	}
	return db
}

// fig1aWorkloadFamilies returns the families, from the baseline outward:
// same template with different literals (Φ=0), narrowed variant (shares
// most subtrees), different join shape, and a disjoint template.
func fig1aWorkloadFamilies() []workloadFamily {
	return []workloadFamily{
		{name: "baseline-join", query: func(rng *stats.RNG, db *wlDB) optimizer.Query {
			return optimizer.Query{
				Tables: []*sqlmini.Table{db.users, db.orders},
				Preds: map[string][]sqlmini.Predicate{
					"users": {{Column: "age", Op: sqlmini.Ge, Value: 18 + rng.Uint64()%50}},
				},
				Joins: []optimizer.JoinEdge{{LeftTable: "users", LeftCol: "id", RightTable: "orders", RightCol: "uid"}},
			}
		}},
		{name: "same-template", query: func(rng *stats.RNG, db *wlDB) optimizer.Query {
			// Identical shape, different literals: Φ must be ~0.
			return optimizer.Query{
				Tables: []*sqlmini.Table{db.users, db.orders},
				Preds: map[string][]sqlmini.Predicate{
					"users": {{Column: "age", Op: sqlmini.Ge, Value: 30 + rng.Uint64()%30}},
				},
				Joins: []optimizer.JoinEdge{{LeftTable: "users", LeftCol: "id", RightTable: "orders", RightCol: "uid"}},
			}
		}},
		{name: "extra-filter", query: func(rng *stats.RNG, db *wlDB) optimizer.Query {
			// Adds an orders filter: shares the scan/users subtree.
			return optimizer.Query{
				Tables: []*sqlmini.Table{db.users, db.orders},
				Preds: map[string][]sqlmini.Predicate{
					"users":  {{Column: "age", Op: sqlmini.Ge, Value: 18 + rng.Uint64()%50}},
					"orders": {{Column: "amount", Op: sqlmini.Lt, Value: rng.Uint64() % 10000}},
				},
				Joins: []optimizer.JoinEdge{{LeftTable: "users", LeftCol: "id", RightTable: "orders", RightCol: "uid"}},
			}
		}},
		{name: "three-way", query: func(rng *stats.RNG, db *wlDB) optimizer.Query {
			return optimizer.Query{
				Tables: []*sqlmini.Table{db.users, db.orders, db.items},
				Preds: map[string][]sqlmini.Predicate{
					"users": {{Column: "region", Op: sqlmini.Eq, Value: rng.Uint64() % 20}},
				},
				Joins: []optimizer.JoinEdge{
					{LeftTable: "users", LeftCol: "id", RightTable: "orders", RightCol: "uid"},
					{LeftTable: "orders", LeftCol: "oid", RightTable: "items", RightCol: "oid2"},
				},
			}
		}},
		{name: "disjoint-scan", query: func(rng *stats.RNG, db *wlDB) optimizer.Query {
			// Single-table template sharing no subtree with the baseline.
			return optimizer.Query{
				Tables: []*sqlmini.Table{db.items},
				Preds: map[string][]sqlmini.Predicate{
					"items": {{Column: "sku", Op: sqlmini.Between, Value: rng.Uint64() % 400, Hi: rng.Uint64()%400 + 100}},
				},
			}
		}},
	}
}

// Fig1aWorkload runs each workload family through the histogram-driven
// optimizer and reports Φ-positioned throughput boxes. Φ uses the actual
// optimized plans' subtree sets, exactly as §V-D1 prescribes.
func Fig1aWorkload(scale Scale, seed uint64) (*Fig1aWorkloadResult, error) {
	db := newWLDB(scale, seed)
	families := fig1aWorkloadFamilies()
	n := scale.Ops / 20
	if n < 100 {
		n = 100
	}

	est := card.NewHistogram(64)
	est.Analyze(db.users)
	est.Analyze(db.orders)
	est.Analyze(db.items)

	// Φ: plan-subtree Jaccard distance from the baseline family, using a
	// sample of optimized plans per family.
	planSample := func(f workloadFamily, s uint64) []*similarity.Tree {
		rng := stats.NewRNG(s)
		var trees []*similarity.Tree
		for i := 0; i < 16; i++ {
			plan, _, err := optimizer.Optimize(f.query(rng, db), est, optimizer.HintDefault)
			if err != nil {
				continue
			}
			trees = append(trees, plan.Tree())
		}
		return trees
	}
	base := planSample(families[0], seed+100)
	phi := make(map[string]float64, len(families))
	for _, f := range families {
		phi[f.name] = similarity.WorkloadDistance(base, planSample(f, seed+200))
	}

	out := &Fig1aWorkloadResult{Rows: make(map[string][]report.BoxRow), Phi: phi}
	for _, f := range families {
		rng := stats.NewRNG(seed + 300)
		scenario := core.SQLScenario{
			Name: "fig1a-workload-" + f.name,
			N:    n,
			Queries: func(i, total int) optimizer.Query {
				return f.query(rng, db)
			},
			IntervalNs: scale.IntervalNs * 20,
		}
		sys := &core.StaticOptimizer{Label: "histogram-optimizer", Est: est, Hint: optimizer.HintDefault}
		res, err := core.RunSQL(scenario, sys, sim.DefaultCostModel())
		if err != nil {
			return nil, fmt.Errorf("figures: fig1a-workload %s: %w", f.name, err)
		}
		out.Rows[sys.Name()] = append(out.Rows[sys.Name()], report.BoxRow{
			Label:   f.name,
			Phi:     phi[f.name],
			Summary: res.Timeline.ThroughputSummary(),
		})
	}
	return out, nil
}
