package figures

import "testing"

func TestOptDriftShape(t *testing.T) {
	res, err := OptDrift(SmallScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	static, ok := res.Results["static-histogram"]
	if !ok {
		t.Fatal("missing static system")
	}
	learned, ok := res.Results["learned-steered"]
	if !ok {
		t.Fatal("missing learned system")
	}
	if static.Completed != learned.Completed {
		t.Fatal("unequal query counts")
	}
	if learned.TrainWork <= 0 {
		t.Fatal("learned system reports no training work")
	}
	if static.TrainWork != 0 {
		t.Fatal("static system reports training work")
	}
	// Both have a change instant and post-change data.
	for name, r := range res.Results {
		if r.ChangeAt <= 0 {
			t.Fatalf("%s: no change instant", name)
		}
		if len(r.PostChangeLatencies) == 0 {
			t.Fatalf("%s: no post-change latencies", name)
		}
	}
	// The headline: after drift, the learned/steered optimizer ends up
	// completing the run in less virtual time than the stale static one
	// (it adapts; the static one keeps choosing plans from wrong
	// statistics).
	if learned.DurationNs >= static.DurationNs {
		t.Fatalf("learned (%d ns) not faster than stale static (%d ns)",
			learned.DurationNs, static.DurationNs)
	}
}
