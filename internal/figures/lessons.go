package figures

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/kv"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Lesson1Result quantifies Lesson 1 ("abstain from fixed workloads and
// databases as their characteristics are easy to learn"): the learned
// index's advantage over the traditional baseline on a fixed distribution
// versus under drift. A fixed benchmark overstates learned systems.
type Lesson1Result struct {
	// FixedRatio is learned/traditional throughput on the fixed workload.
	FixedRatio float64
	// DriftRatio is the same ratio under drift + insert flood.
	DriftRatio                     float64
	FixedLearned, FixedTraditional float64
	DriftLearned, DriftTraditional float64
}

// Lesson1 runs the fixed-vs-varying ablation with RMI as the learned
// system and the B+ tree as the traditional baseline.
func Lesson1(scale Scale, seed uint64) (*Lesson1Result, error) {
	runner := newRunner(scale)
	seqGen := func(s uint64) distgen.Generator { return distgen.NewSequential(s, 1<<20, 64) }

	fixed := core.Scenario{
		Name:        "lesson1-fixed",
		Seed:        seed,
		InitialData: seqGen(seed + 1),
		InitialSize: scale.DataSize,
		TrainBefore: true,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{{
			Name: "fixed",
			Ops:  scale.Ops,
			Workload: workload.Spec{
				Mix:    workload.ReadHeavy,
				Access: distgen.Static{G: seqGen(seed + 2)},
			},
		}},
	}

	drift := fixed
	drift.Name = "lesson1-drift"
	drift.Phases = []core.Phase{{
		Name: "drifting",
		Ops:  scale.Ops,
		Workload: workload.Spec{
			Mix: workload.Mix{GetFrac: 0.6, PutFrac: 0.4},
			Access: distgen.NewBlend(seed+3,
				seqGen(seed+4),
				distgen.NewClustered(seed+5, 25, float64(distgen.KeyDomain)/1e6)),
			InsertKeys: distgen.NewBlend(seed+6,
				seqGen(seed+7),
				distgen.NewClustered(seed+8, 25, float64(distgen.KeyDomain)/1e6)),
		},
	}}

	out := &Lesson1Result{}
	for _, cfg := range []struct {
		s    core.Scenario
		l, t *float64
	}{
		{fixed, &out.FixedLearned, &out.FixedTraditional},
		{drift, &out.DriftLearned, &out.DriftTraditional},
	} {
		results, err := runner.RunAll(cfg.s, []func() core.SUT{core.NewRMISUT, core.NewBTreeSUT})
		if err != nil {
			return nil, fmt.Errorf("figures: lesson1: %w", err)
		}
		*cfg.l = results[0].Throughput()
		*cfg.t = results[1].Throughput()
	}
	out.FixedRatio = out.FixedLearned / out.FixedTraditional
	out.DriftRatio = out.DriftLearned / out.DriftTraditional
	return out, nil
}

// Lesson2Result demonstrates Lesson 2 ("average metrics do not capture
// adaptability"): two kv configurations with similar average throughput
// but wildly different variance/tail behaviour.
type Lesson2Result struct {
	NameA, NameB             string
	MeanA, MeanB             float64 // per-interval throughput means
	StddevA, StddevB         float64
	P99LatencyA, P99LatencyB int64
	MeanGapFraction          float64 // |meanA-meanB| / max
	VarianceRatio            float64 // larger stddev / smaller stddev
	// TailRatio is the larger p99 latency over the smaller — the
	// difference the average completely hides.
	TailRatio float64
}

// Lesson2 compares "few giant compactions" against "many small
// compactions" — classic configurations whose averages hide opposite
// latency behaviour.
func Lesson2(scale Scale, seed uint64) (*Lesson2Result, error) {
	runner := newRunner(scale)
	scenario := core.Scenario{
		Name:        "lesson2",
		Seed:        seed,
		InitialData: distgen.NewUniform(seed+1, 0, distgen.KeyDomain),
		InitialSize: scale.DataSize / 2,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{{
			Name: "write-heavy",
			Ops:  scale.Ops,
			Workload: workload.Spec{
				Mix:    workload.WriteHeavy,
				Access: distgen.Static{G: distgen.NewUniform(seed+2, 0, distgen.KeyDomain)},
			},
		}},
	}
	spiky := kv.Knobs{MemtableCap: 512, MaxRuns: 16, SparseEvery: 128, BloomBitsPerKey: 8}
	smooth := kv.Knobs{MemtableCap: 1024, MaxRuns: 2, SparseEvery: 128, BloomBitsPerKey: 8}

	ra, err := runner.Run(scenario, core.NewKVSUT(spiky))
	if err != nil {
		return nil, err
	}
	rb, err := runner.Run(scenario, core.NewKVSUT(smooth))
	if err != nil {
		return nil, err
	}
	sa, sb := ra.Timeline.ThroughputSummary(), rb.Timeline.ThroughputSummary()
	out := &Lesson2Result{
		NameA: "rare-giant-compactions", NameB: "frequent-small-compactions",
		MeanA: sa.Mean, MeanB: sb.Mean,
		StddevA: sa.Stddev, StddevB: sb.Stddev,
		P99LatencyA: ra.Latency.Quantile(0.99),
		P99LatencyB: rb.Latency.Quantile(0.99),
	}
	maxMean := math.Max(out.MeanA, out.MeanB)
	if maxMean > 0 {
		out.MeanGapFraction = math.Abs(out.MeanA-out.MeanB) / maxMean
	}
	lo, hi := out.StddevA, out.StddevB
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo > 0 {
		out.VarianceRatio = hi / lo
	} else {
		out.VarianceRatio = math.Inf(1)
	}
	pLo, pHi := out.P99LatencyA, out.P99LatencyB
	if pLo > pHi {
		pLo, pHi = pHi, pLo
	}
	if pLo > 0 {
		out.TailRatio = float64(pHi) / float64(pLo)
	} else {
		out.TailRatio = math.Inf(1)
	}
	return out, nil
}

// Lesson3Result demonstrates Lesson 3 ("training must be a first-class
// result"): the execution-only comparison favours the learned index, but
// accounting for training time there is a break-even query count below
// which the traditional system is the right choice.
type Lesson3Result struct {
	TrainNs         int64   // virtual training time of the learned index
	LearnedOpNs     float64 // per-op virtual time, learned, post-training
	TraditionalOpNs float64 // per-op virtual time, traditional
	// BreakEvenQueries is the query count where learned total time
	// (training + execution) matches traditional; below it, training
	// never pays off. Negative if learned is not faster per op.
	BreakEvenQueries float64
}

// Lesson3 measures the training-inclusive break-even on a learnable
// (sequential) distribution.
func Lesson3(scale Scale, seed uint64) (*Lesson3Result, error) {
	runner := newRunner(scale)
	gen := func(s uint64) distgen.Generator { return distgen.NewSequential(s, 1<<20, 64) }
	scenario := core.Scenario{
		Name:        "lesson3",
		Seed:        seed,
		InitialData: gen(seed + 1),
		InitialSize: scale.DataSize,
		TrainBefore: true,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{{
			Name: "reads",
			Ops:  scale.Ops,
			Workload: workload.Spec{
				Mix:    workload.Mix{GetFrac: 1},
				Access: distgen.Static{G: gen(seed + 2)},
			},
		}},
	}
	learned, err := runner.Run(scenario, core.NewRMISUT())
	if err != nil {
		return nil, err
	}
	trad, err := runner.Run(scenario, core.NewBTreeSUT())
	if err != nil {
		return nil, err
	}
	cm := sim.DefaultCostModel()
	out := &Lesson3Result{
		TrainNs:         cm.TrainTime(learned.OfflineTrainWork),
		LearnedOpNs:     float64(learned.DurationNs-cm.TrainTime(learned.OfflineTrainWork)) / float64(learned.Completed),
		TraditionalOpNs: float64(trad.DurationNs) / float64(trad.Completed),
	}
	diff := out.TraditionalOpNs - out.LearnedOpNs
	if diff > 0 {
		out.BreakEvenQueries = float64(out.TrainNs) / diff
	} else {
		out.BreakEvenQueries = -1
	}
	return out, nil
}

// Lesson4Result demonstrates Lesson 4 ("we cannot ignore the human cost
// anymore"): the TCO ranking of auto-tuned vs. DBA-tuned flips once human
// hours are priced.
type Lesson4Result struct {
	// Machine-only TCO (training/execution hardware, human cost at $0).
	MachineOnlyLearned float64
	MachineOnlyDBA     float64
	// Full TCO at the default $120/h DBA rate.
	FullLearned float64
	FullDBA     float64
}

// Lesson4 derives TCO figures from the Figure 1d tuning experiment: the
// learned system's best budget and the DBA's full script, each amortized
// over the same execution horizon.
func Lesson4(fig1d *Fig1dResult) *Lesson4Result {
	// Best learned point (CPU tier) and final DBA point.
	var learned, dba float64
	for _, p := range fig1d.LearnedCPU {
		if p.Dollars > learned {
			learned = p.Dollars
		}
	}
	for _, p := range fig1d.Traditional {
		if p.Dollars > dba {
			dba = p.Dollars
		}
	}
	// Execution hardware cost is identical for both (same store, same
	// machine): 8 hours/day for a year at the CPU tier.
	const execHoursPerYear = 8 * 365
	m := modelWithDBARate(120)
	m0 := modelWithDBARate(0)
	// The learned system's optimization cost is hardware (training) cost;
	// the DBA's is purely human, so it vanishes at $0/h.
	return &Lesson4Result{
		MachineOnlyLearned: m0.TCO(execHoursPerYear, learned),
		MachineOnlyDBA:     m0.TCO(execHoursPerYear, 0),
		FullLearned:        m.TCO(execHoursPerYear, learned),
		FullDBA:            m.TCO(execHoursPerYear, dba),
	}
}
