package figures

import "testing"

func TestFig1aWorkloadShape(t *testing.T) {
	res, err := Fig1aWorkload(SmallScale(), 51)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows["histogram-optimizer"]
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Summary.N == 0 || r.Summary.Median <= 0 {
			t.Fatalf("%s: empty throughput summary", r.Label)
		}
	}
	// Φ structure per §V-D1:
	// the baseline's distance to itself is 0;
	if res.Phi["baseline-join"] != 0 {
		t.Fatalf("baseline self-distance = %v", res.Phi["baseline-join"])
	}
	// literals don't matter — same template is identical;
	if res.Phi["same-template"] != 0 {
		t.Fatalf("same-template distance = %v (literals leaked into Φ)", res.Phi["same-template"])
	}
	// shared-subtree variants sit strictly between identical and disjoint;
	for _, name := range []string{"extra-filter", "three-way"} {
		if p := res.Phi[name]; p <= 0 || p >= 1 {
			t.Fatalf("%s distance = %v, want in (0,1)", name, p)
		}
	}
	// and a disjoint template is maximally distant.
	if res.Phi["disjoint-scan"] != 1 {
		t.Fatalf("disjoint distance = %v", res.Phi["disjoint-scan"])
	}
	// The ordering is meaningful: extra-filter (supersets the baseline
	// plan) is closer than the three-way join.
	if res.Phi["extra-filter"] >= res.Phi["three-way"] {
		t.Fatalf("phi ordering: extra-filter %v !< three-way %v",
			res.Phi["extra-filter"], res.Phi["three-way"])
	}
}
