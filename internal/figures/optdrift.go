package figures

import (
	"fmt"

	"repro/internal/card"
	"repro/internal/core"
	"repro/internal/optimizer"
	"repro/internal/sim"
	"repro/internal/sqlmini"
	"repro/internal/stats"
)

// OptDriftResult compares query-optimization SUTs on a drifting database:
// a histogram-driven static optimizer (stale after drift), the same with a
// scheduled re-ANALYZE, and a learned steered optimizer with online
// cardinality feedback. It exercises every §V-D metric on the SQL
// substrate.
type OptDriftResult struct {
	Results map[string]*core.SQLRunResult
	// AdjustmentSpeed per system: over-SLA time after the drift.
	AdjustmentSpeed map[string]int64
}

// optDriftDB builds the star database whose fact-table value column
// shifts mid-run, invalidating analyzed statistics.
type optDriftDB struct {
	dim, fact *sqlmini.Table
	rng       *stats.RNG
}

func newOptDriftDB(scale Scale, seed uint64) *optDriftDB {
	db := &optDriftDB{rng: stats.NewRNG(seed)}
	db.dim = sqlmini.NewTable("dim", "id", "kind")
	dimRows := 200
	for i := 0; i < dimRows; i++ {
		db.dim.Append(uint64(i), uint64(i%10))
	}
	db.fact = sqlmini.NewTable("fact", "fid", "dimid", "val")
	factRows := scale.DataSize / 4
	z := stats.NewZipf(db.rng.Split(), 1.1, 1000)
	for i := 0; i < factRows; i++ {
		db.fact.Append(uint64(i), uint64(i%dimRows), z.Next())
	}
	return db
}

// shift moves the fact.val distribution up by 4096 — every analyzed
// histogram and trained model is now wrong about val predicates.
func (db *optDriftDB) shift() {
	rows := make([][]uint64, len(db.fact.Rows))
	for i, r := range db.fact.Rows {
		rows[i] = []uint64{r[0], r[1], r[2] + 4096}
	}
	db.fact.ReplaceRows(rows)
}

// query returns the i-th workload query: join dim-fact with a selective
// val range whose location tracks the *current* distribution (clients ask
// about data that exists), so after the shift the predicate constants move
// with it — but the static optimizer's statistics do not.
func (db *optDriftDB) query(shifted bool) optimizer.Query {
	base := db.rng.Uint64() % 64
	if shifted {
		base += 4096
	}
	return optimizer.Query{
		Tables: []*sqlmini.Table{db.dim, db.fact},
		Preds: map[string][]sqlmini.Predicate{
			"dim":  {{Column: "kind", Op: sqlmini.Eq, Value: db.rng.Uint64() % 10}},
			"fact": {{Column: "val", Op: sqlmini.Between, Value: base, Hi: base + 32}},
		},
		Joins: []optimizer.JoinEdge{{
			LeftTable: "dim", LeftCol: "id", RightTable: "fact", RightCol: "dimid",
		}},
	}
}

// OptDrift runs the learned-query-optimizer drift experiment.
func OptDrift(scale Scale, seed uint64) (*OptDriftResult, error) {
	n := scale.Ops / 10
	if n < 200 {
		n = 200
	}
	out := &OptDriftResult{
		Results:         make(map[string]*core.SQLRunResult),
		AdjustmentSpeed: make(map[string]int64),
	}

	type sutCfg struct {
		name  string
		build func(db *optDriftDB) core.QuerySystem
	}
	cfgs := []sutCfg{
		{name: "static-histogram", build: func(db *optDriftDB) core.QuerySystem {
			h := card.NewHistogram(64)
			h.Analyze(db.dim)
			h.Analyze(db.fact)
			return &core.StaticOptimizer{Label: "static-histogram", Est: h, Hint: optimizer.HintDefault}
		}},
		{name: "learned-steered", build: func(db *optDriftDB) core.QuerySystem {
			l := card.NewLearned()
			l.ObserveTable(db.dim)
			l.ObserveTable(db.fact)
			return &core.SteeredOptimizer{
				Label:         "learned-steered",
				Est:           l,
				Steering:      optimizer.NewSteering(0.5),
				FeedbackEvery: 2,
			}
		}},
	}

	for _, cfg := range cfgs {
		db := newOptDriftDB(scale, seed)
		shifted := false
		scenario := core.SQLScenario{
			Name: "optdrift",
			N:    n,
			Queries: func(i, total int) optimizer.Query {
				return db.query(shifted)
			},
			MutateAt: 0.5,
			Mutate: func() {
				db.shift()
				shifted = true
			},
			IntervalNs: scale.IntervalNs * 10,
		}
		res, err := core.RunSQL(scenario, cfg.build(db), sim.DefaultCostModel())
		if err != nil {
			return nil, fmt.Errorf("figures: optdrift %s: %w", cfg.name, err)
		}
		out.Results[cfg.name] = res
		if len(res.PostChangeLatencies) > 0 {
			var over int64
			for _, l := range res.PostChangeLatencies {
				if l > res.SLANs {
					over += l - res.SLANs
				}
			}
			out.AdjustmentSpeed[cfg.name] = over
		}
	}
	return out, nil
}
