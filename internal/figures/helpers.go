package figures

import "repro/internal/cost"

// modelWithDBARate returns the default cost model with the DBA hourly rate
// overridden — the Lesson 4 sweep variable.
func modelWithDBARate(rate float64) cost.Model {
	m := cost.DefaultModel()
	m.DBADollarsPerH = rate
	return m
}
