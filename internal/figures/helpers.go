package figures

import (
	"repro/internal/core"
	"repro/internal/cost"
)

// newRunner returns the core runner configured with the scale's
// parallelism bound and dispatch batch size, so every RunAll in this
// package runs under the same -parallel / -batch settings as the panel
// orchestration in cmd/figures.
func newRunner(scale Scale) *core.Runner {
	r := core.NewRunner()
	r.Parallel = scale.Parallel
	r.Batch = scale.Batch
	return r
}

// modelWithDBARate returns the default cost model with the DBA hourly rate
// overridden — the Lesson 4 sweep variable.
func modelWithDBARate(rate float64) cost.Model {
	m := cost.DefaultModel()
	m.DBADollarsPerH = rate
	return m
}
