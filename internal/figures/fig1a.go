// Package figures implements the paper's evaluation artifacts end to end:
// each ExperimentX function builds the workloads, runs the systems under
// test on the virtual clock, and returns the exact data series of the
// corresponding panel of Figure 1 (plus the Lesson ablations), ready for
// the report package, the root bench harness, and cmd/figures.
package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/similarity"
	"repro/internal/workload"
)

// Scale controls experiment size so the same code serves quick tests and
// full runs.
type Scale struct {
	// DataSize is the initial database size per scenario.
	DataSize int
	// Ops is the operation count per phase.
	Ops int
	// IntervalNs is the reporting interval.
	IntervalNs int64
	// Parallel bounds how many independent scenario×SUT runs execute
	// concurrently (0 = runtime.GOMAXPROCS(0), 1 = serial). Every run
	// replays materialized inputs with its own seeded generators, so
	// results are bit-identical at any setting.
	Parallel int
	// Batch is the runner's op-dispatch batch size (see core.Runner.Batch);
	// virtual-clock results are byte-identical at any setting.
	Batch int
	// Faults optionally overrides the Fig 1e fault plan (fault.ParseSpec
	// syntax). "" derives the default plan from each SUT's baseline run.
	Faults string
	// DriftFactors overrides the Fig 1g drift-intensity grid (cmd/figures
	// -drift-factor). Empty uses Fig1gIntensities.
	DriftFactors []float64
	// SessionGapNs / SessionBudgetNs override the Fig 1g session panel's
	// think-gap and per-session budget (cmd/figures -session). Zero uses
	// the Fig1gSession* defaults.
	SessionGapNs    int64
	SessionBudgetNs int64
}

// SmallScale keeps experiments under a second for tests.
func SmallScale() Scale { return Scale{DataSize: 20000, Ops: 10000, IntervalNs: 200_000} }

// FullScale is used by cmd/figures and the bench harness.
func FullScale() Scale { return Scale{DataSize: 200000, Ops: 100000, IntervalNs: 1_000_000} }

// DistCase is one workload/data distribution of the Figure 1a sweep.
type DistCase struct {
	Name    string
	Gen     func(seed uint64) distgen.Generator
	Holdout bool
}

// Fig1aCases returns the standard distribution sweep: the uniform baseline
// plus progressively stranger distributions, and one hold-out the SUTs see
// exactly once.
func Fig1aCases() []DistCase {
	return []DistCase{
		{Name: "uniform", Gen: func(s uint64) distgen.Generator {
			return distgen.NewUniform(s, 0, distgen.KeyDomain)
		}},
		{Name: "sequential", Gen: func(s uint64) distgen.Generator {
			return distgen.NewSequential(s, 1<<20, 64)
		}},
		{Name: "normal", Gen: func(s uint64) distgen.Generator {
			return distgen.NewNormal(s, float64(distgen.KeyDomain)/2, float64(distgen.KeyDomain)/64)
		}},
		{Name: "lognormal", Gen: func(s uint64) distgen.Generator {
			return distgen.NewLognormal(s, 0, 2, 1e12)
		}},
		{Name: "zipf", Gen: func(s uint64) distgen.Generator {
			return distgen.NewZipfKeys(s, 1.1, 1<<22)
		}},
		{Name: "clustered-osm", Gen: func(s uint64) distgen.Generator {
			return distgen.NewClustered(s, 40, float64(distgen.KeyDomain)/1e6)
		}},
		{Name: "segmented-books", Gen: func(s uint64) distgen.Generator {
			return distgen.NewSegmented(s, 32)
		}},
		{Name: "email", Gen: func(s uint64) distgen.Generator {
			return distgen.NewEmail(s)
		}},
		{Name: "holdout-mix", Holdout: true, Gen: func(s uint64) distgen.Generator {
			return distgen.NewMixture(s, []distgen.Generator{
				distgen.NewClustered(s+1, 7, float64(distgen.KeyDomain)/1e5),
				distgen.NewLognormal(s+2, 1, 1.5, 1e13),
			}, []float64{0.6, 0.4})
		}},
	}
}

// Fig1aResult maps SUT name -> box rows sorted by Φ, plus the raw Φ values
// per distribution.
type Fig1aResult struct {
	Rows map[string][]report.BoxRow
	Phi  map[string]float64
}

// Fig1a runs the specialization experiment: every SUT on every
// distribution, reporting per-interval throughput box statistics with the
// X-axis position given by the KS distance Φ from the uniform baseline.
func Fig1a(scale Scale, seed uint64) (*Fig1aResult, error) {
	cases := Fig1aCases()
	runner := newRunner(scale)

	// Φ: KS distance of each distribution's key sample from the baseline.
	base := cases[0].Gen(seed + 1000).Keys(4096)
	phi := make(map[string]float64, len(cases))
	for _, c := range cases {
		phi[c.Name] = similarity.KS(base, c.Gen(seed+2000).Keys(4096))
	}

	// Each case builds its own seeded generators and scenario, so the
	// sweep fans out; results are collected by case index and appended in
	// declaration order, keeping the rows identical to a serial sweep.
	perCase := make([][]*core.Result, len(cases))
	err := par.ForEach(len(cases), scale.Parallel, func(i int) error {
		c := cases[i]
		scenario := core.Scenario{
			Name:        "fig1a-" + c.Name,
			Seed:        seed,
			InitialData: c.Gen(seed + 1),
			InitialSize: scale.DataSize,
			TrainBefore: true,
			IntervalNs:  scale.IntervalNs,
			Phases: []core.Phase{{
				Name: "steady",
				Ops:  scale.Ops,
				Workload: workload.Spec{
					Mix:    workload.ReadHeavy,
					Access: distgen.Static{G: c.Gen(seed + 2)},
				},
			}},
		}
		results, err := runner.RunAll(scenario, core.StandardSUTs())
		if err != nil {
			return fmt.Errorf("figures: fig1a %s: %w", c.Name, err)
		}
		perCase[i] = results
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig1aResult{Rows: make(map[string][]report.BoxRow), Phi: phi}
	for i, c := range cases {
		for _, r := range perCase[i] {
			res.Rows[r.SUT] = append(res.Rows[r.SUT], report.BoxRow{
				Label:   c.Name,
				Phi:     phi[c.Name],
				Summary: r.Timeline.ThroughputSummary(),
				Holdout: c.Holdout,
			})
		}
	}
	return res, nil
}
