package figures

import (
	"reflect"
	"testing"
)

func fig1eScale() Scale {
	s := SmallScale()
	s.Ops /= 2
	s.DataSize /= 2
	return s
}

func TestFig1eShape(t *testing.T) {
	res, err := Fig1e(fig1eScale(), 5, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rmi", "btree"} {
		if res.Results[name] == nil {
			t.Fatalf("no result for %s", name)
		}
		if res.BaselineNs[name] <= 0 {
			t.Fatalf("%s: no baseline duration", name)
		}
		if res.Specs[name] == "" {
			t.Fatalf("%s: no derived spec recorded", name)
		}
		rep := res.Reports[name]
		if rep.Crashes != 1 {
			t.Fatalf("%s: crashes = %d, want 1", name, rep.Crashes)
		}
		if rep.SlowedOps == 0 || rep.FailedOps == 0 {
			t.Fatalf("%s: fault plan did not bite: %+v", name, rep)
		}
		rec := res.Recovery[name]
		if rec.Availability <= 0 || rec.Availability >= 1 {
			t.Fatalf("%s: availability = %v, want in (0,1) under an error window",
				name, rec.Availability)
		}
		if rec.FaultEndNs <= rec.FaultStartNs {
			t.Fatalf("%s: degenerate fault span [%d,%d]", name, rec.FaultStartNs, rec.FaultEndNs)
		}
	}
	// The acceptance headline: the crash forces the learned index to
	// retrain; the B+ tree has nothing to relearn.
	if w := res.Reports["rmi"].CrashRetrainWork; w <= 0 {
		t.Fatalf("rmi crash retrain work = %d, want > 0", w)
	}
	if w := res.Reports["btree"].CrashRetrainWork; w != 0 {
		t.Fatalf("btree crash retrain work = %d, want 0", w)
	}
}

func TestFig1eDeterministic(t *testing.T) {
	a, err := Fig1e(fig1eScale(), 11, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1e(fig1eScale(), 11, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Reports, b.Reports) {
		t.Fatal("fault ledgers differ between identical runs")
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Fatal("recovery stats differ between identical runs")
	}
	if !reflect.DeepEqual(a.Specs, b.Specs) {
		t.Fatal("derived specs differ between identical runs")
	}
}

func TestFig1eExplicitSpec(t *testing.T) {
	res, err := Fig1e(fig1eScale(), 5, "error@0.1ms-0.3ms:rate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	// An explicit spec applies identically to every SUT (no per-baseline
	// derivation) and disables the default crash.
	if res.Specs["rmi"] != res.Specs["btree"] {
		t.Fatalf("explicit spec diverged per SUT: %q vs %q",
			res.Specs["rmi"], res.Specs["btree"])
	}
	for name, rep := range res.Reports {
		if rep.Crashes != 0 {
			t.Fatalf("%s: explicit error-only spec produced a crash", name)
		}
		if rep.FailedOps == 0 {
			t.Fatalf("%s: error window never fired", name)
		}
	}
}
