package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/similarity"
	"repro/internal/workload"
)

// This file implements the five design-choice ablations called out in
// DESIGN.md §5. Each quantifies why the benchmark makes the choice it
// makes — the paper demands benchmarks justify their knobs, so we ablate
// our own.

// AblationSLAResult compares the paper's baseline-calibrated SLA rule to
// fixed thresholds: a threshold that is not derived from the SUT's own
// baseline statistics either misses every adaptation disruption (too
// loose) or drowns the signal in steady-state noise (too tight).
type AblationSLAResult struct {
	// CalibratedViolationRate is the violation rate under the paper's
	// calibrated rule for the learned SUT on the shift scenario.
	CalibratedViolationRate float64
	// LooseViolationRate uses 100x the calibrated threshold.
	LooseViolationRate float64
	// TightViolationRate uses 1/20 of the calibrated threshold.
	TightViolationRate float64
}

// AblationSLA runs the Fig1c shift scenario for the RMI under three SLA
// choices.
func AblationSLA(scale Scale, seed uint64) (*AblationSLAResult, error) {
	runner := newRunner(scale)
	base := fig1bScenario(scale, seed)
	base.Name = "ablation-sla-calibrated"
	calibrated, err := runner.Run(base, core.NewRMISUT())
	if err != nil {
		return nil, err
	}
	out := &AblationSLAResult{
		CalibratedViolationRate: calibrated.Bands.ViolationRate(),
	}
	loose := base
	loose.Name = "ablation-sla-loose"
	loose.SLANs = calibrated.SLANs * 100
	lr, err := runner.Run(loose, core.NewRMISUT())
	if err != nil {
		return nil, err
	}
	out.LooseViolationRate = lr.Bands.ViolationRate()

	tight := base
	tight.Name = "ablation-sla-tight"
	tight.SLANs = calibrated.SLANs / 20
	if tight.SLANs < 1 {
		tight.SLANs = 1
	}
	tr, err := runner.Run(tight, core.NewRMISUT())
	if err != nil {
		return nil, err
	}
	out.TightViolationRate = tr.Bands.ViolationRate()
	return out, nil
}

// AblationPhiResult checks that the two data-distribution Φ estimators
// (KS and subsampled MMD) induce the same ordering over the Figure 1a
// distribution sweep — the property the paper says is sufficient.
type AblationPhiResult struct {
	// OrderAgreement is the fraction of distribution pairs on which KS
	// and MMD agree which is closer to the baseline.
	OrderAgreement float64
	// KS and MMD values per distribution name.
	KS  map[string]float64
	MMD map[string]float64
}

// AblationPhi measures ordering agreement between KS and MMD.
func AblationPhi(seed uint64) *AblationPhiResult {
	cases := Fig1aCases()
	base := cases[0].Gen(seed + 1000).Keys(4096)
	out := &AblationPhiResult{
		KS:  make(map[string]float64),
		MMD: make(map[string]float64),
	}
	names := make([]string, 0, len(cases))
	for _, c := range cases {
		sample := c.Gen(seed + 2000).Keys(4096)
		out.KS[c.Name] = similarity.KS(base, sample)
		out.MMD[c.Name] = similarity.MMDSub(base, sample, 0, 256)
		names = append(names, c.Name)
	}
	agree, total := 0, 0
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := names[i], names[j]
			// Skip pairs the estimators consider ties.
			if out.KS[a] == out.KS[b] || out.MMD[a] == out.MMD[b] {
				continue
			}
			total++
			if (out.KS[a] < out.KS[b]) == (out.MMD[a] < out.MMD[b]) {
				agree++
			}
		}
	}
	if total > 0 {
		out.OrderAgreement = float64(agree) / float64(total)
	} else {
		out.OrderAgreement = 1
	}
	return out
}

// AblationTransitionResult compares abrupt and gradual transitions between
// the same two distributions (§V-B: "the type of transition can impact
// performance and adaptability in non-obvious ways").
type AblationTransitionResult struct {
	// AbruptDip and GradualDip are the worst post-change throughput
	// drops (DipDepth) for the adaptive learned index.
	AbruptDip  float64
	GradualDip float64
	// AbruptOverSLA and GradualOverSLA are total over-SLA times (ns).
	AbruptOverSLA  int64
	GradualOverSLA int64
}

// AblationTransition runs the same distribution change abruptly and as a
// linear blend against the ALEX index.
func AblationTransition(scale Scale, seed uint64) (*AblationTransitionResult, error) {
	runner := newRunner(scale)
	oldGen := func(s uint64) distgen.Generator {
		return distgen.NewUniform(s, 0, distgen.KeyDomain/4)
	}
	newGen := func(s uint64) distgen.Generator {
		return distgen.NewUniform(s, distgen.KeyDomain/2, 3*distgen.KeyDomain/4)
	}
	mk := func(name string, drift distgen.Drift) core.Scenario {
		return core.Scenario{
			Name:        name,
			Seed:        seed,
			InitialData: oldGen(seed + 1),
			InitialSize: scale.DataSize,
			IntervalNs:  scale.IntervalNs,
			Phases: []core.Phase{
				{
					Name: "before",
					Ops:  scale.Ops / 2,
					Workload: workload.Spec{
						Mix:    workload.ReadHeavy,
						Access: distgen.Static{G: oldGen(seed + 2)},
					},
				},
				{
					Name: "transition",
					Ops:  scale.Ops,
					Workload: workload.Spec{
						Mix:        workload.Mix{GetFrac: 0.5, PutFrac: 0.5},
						Access:     drift,
						InsertKeys: drift,
					},
				},
			},
		}
	}
	abrupt, err := runner.Run(mk("ablation-abrupt",
		distgen.NewAbrupt(seed+3, oldGen(seed+4), newGen(seed+5), 0.05)), core.NewALEXSUT())
	if err != nil {
		return nil, err
	}
	gradual, err := runner.Run(mk("ablation-gradual",
		distgen.NewBlend(seed+6, oldGen(seed+7), newGen(seed+8))), core.NewALEXSUT())
	if err != nil {
		return nil, err
	}
	overSLA := func(r *core.Result) int64 {
		var total int64
		for _, iv := range r.Bands.Intervals() {
			total += iv.OverSLATime
		}
		return total
	}
	return &AblationTransitionResult{
		AbruptDip:      abrupt.Timeline.DipDepth(abrupt.PhaseStarts[1]),
		GradualDip:     gradual.Timeline.DipDepth(gradual.PhaseStarts[1]),
		AbruptOverSLA:  overSLA(abrupt),
		GradualOverSLA: overSLA(gradual),
	}, nil
}

// AblationTrainingPlacementResult compares offline retraining (a scheduled
// window between phases, paper §V-B "two separate execution phases with
// possible retraining in-between") against purely online adaptation for
// the static learned index.
type AblationTrainingPlacementResult struct {
	// OnlineOverSLA / ScheduledOverSLA: total over-SLA time during the
	// post-shift phase (ns).
	OnlineOverSLA    int64
	ScheduledOverSLA int64
	// OnlineThroughput / ScheduledThroughput over the whole run.
	OnlineThroughput    float64
	ScheduledThroughput float64
	// ScheduledRetrainWork charged by the scheduled window.
	ScheduledRetrainWork int64
}

// AblationTrainingPlacement: the same shift scenario, with and without a
// scheduled retraining window at the phase boundary. Scheduling the
// retrain moves the cost out of the serving path: fewer SLA violations at
// similar overall throughput.
func AblationTrainingPlacement(scale Scale, seed uint64) (*AblationTrainingPlacementResult, error) {
	runner := newRunner(scale)

	online := fig1bScenario(scale, seed)
	online.Name = "ablation-online"
	or, err := runner.Run(online, core.NewRMISUT())
	if err != nil {
		return nil, err
	}

	scheduled := fig1bScenario(scale, seed)
	scheduled.Name = "ablation-scheduled"
	// Retrain in a maintenance window at the start of the settle phase:
	// the delta accumulated during the shift is merged outside serving.
	scheduled.Phases[2].RetrainBefore = true
	sr, err := runner.Run(scheduled, core.NewRMISUT())
	if err != nil {
		return nil, err
	}

	phaseOverSLA := func(r *core.Result, phase int) int64 {
		lo := r.PhaseStarts[phase]
		hi := r.DurationNs
		if phase+1 < len(r.PhaseStarts) {
			hi = r.PhaseStarts[phase+1]
		}
		var total int64
		for _, iv := range r.Bands.Intervals() {
			if iv.Start >= lo && iv.Start < hi {
				total += iv.OverSLATime
			}
		}
		return total
	}
	return &AblationTrainingPlacementResult{
		// Compare the settle phase: online keeps merging mid-serving,
		// scheduled did its merge in the window.
		OnlineOverSLA:        phaseOverSLA(or, 2),
		ScheduledOverSLA:     phaseOverSLA(sr, 2),
		OnlineThroughput:     or.Throughput(),
		ScheduledThroughput:  sr.Throughput(),
		ScheduledRetrainWork: sr.Phases[2].RetrainWork,
	}, nil
}

// AblationHoldoutResult quantifies the hold-out idea (§V-A) as an
// overfitting detector: a SUT "tuned" to one distribution shows a larger
// in-sample/out-of-sample gap than a distribution-oblivious SUT.
type AblationHoldoutResult struct {
	// Gap = in-sample / out-of-sample throughput (1.0 = no overfitting).
	LearnedGap     float64
	TraditionalGap float64
}

// AblationHoldout trains both SUTs on sequential data and evaluates
// in-sample (sequential) and out-of-sample (clustered hold-out).
func AblationHoldout(scale Scale, seed uint64) (*AblationHoldoutResult, error) {
	runner := newRunner(scale)
	mk := func(name string, gen func(uint64) distgen.Generator) core.Scenario {
		return core.Scenario{
			Name:        name,
			Seed:        seed,
			InitialData: gen(seed + 1),
			InitialSize: scale.DataSize,
			TrainBefore: true,
			IntervalNs:  scale.IntervalNs,
			Phases: []core.Phase{{
				Name: "reads",
				Ops:  scale.Ops,
				Workload: workload.Spec{
					Mix:    workload.ReadHeavy,
					Access: distgen.Static{G: gen(seed + 2)},
				},
			}},
		}
	}
	seq := func(s uint64) distgen.Generator { return distgen.NewSequential(s, 1<<20, 64) }
	// Lognormal is the RMI's hard case (Fig 1a): extreme density skew
	// concentrates most keys under a few stage-2 models, blowing up the
	// last-mile error bounds.
	hard := func(s uint64) distgen.Generator { return distgen.NewLognormal(s, 0, 2, 1e12) }
	out := &AblationHoldoutResult{}
	for _, cfg := range []struct {
		factory func() core.SUT
		gap     *float64
	}{
		{core.NewRMISUT, &out.LearnedGap},
		{core.NewBTreeSUT, &out.TraditionalGap},
	} {
		in, err := runner.Run(mk("ablation-insample", seq), cfg.factory())
		if err != nil {
			return nil, err
		}
		outOf, err := runner.Run(mk("ablation-holdout", hard), cfg.factory())
		if err != nil {
			return nil, err
		}
		if outOf.Throughput() == 0 {
			return nil, fmt.Errorf("figures: hold-out run produced zero throughput")
		}
		*cfg.gap = in.Throughput() / outOf.Throughput()
	}
	return out, nil
}
