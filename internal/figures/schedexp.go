package figures

import (
	"repro/internal/sched"
)

// SchedResult compares scheduling policies on a drifting job workload —
// the learned-scheduling component the paper cites (Mao et al. [30]):
// per-type job durations permute at the midpoint, so estimates trained
// before the drift mislead.
type SchedResult struct {
	// MeanSojournNs per policy.
	MeanSojournNs map[string]float64
	// P99SojournNs per policy.
	P99SojournNs map[string]int64
	// TrainWork per policy (online model updates).
	TrainWork map[string]int64
}

// SchedExperiment runs FIFO, the offline oracle, a statically-trained
// SJF, and the online-learned SJF over the same drifting trace.
func SchedExperiment(scale Scale, seed uint64) *SchedResult {
	jobs := sched.GenerateJobs(sched.WorkloadOptions{
		Jobs:      scale.Ops,
		Types:     6,
		MeanGapNs: 120_000,
		DriftAt:   0.5,
		Seed:      seed,
	})
	// Static SJF trains on a pre-drift sample — the separate training
	// phase of §V-B (its labels are stale after the permutation).
	trainN := scale.Ops / 10
	if trainN < 100 {
		trainN = 100
	}
	policies := []sched.Policy{
		sched.FIFO{},
		sched.OracleSJF{},
		sched.NewStaticSJF(jobs[:trainN]),
		sched.NewLearnedSJF(0),
	}
	out := &SchedResult{
		MeanSojournNs: make(map[string]float64),
		P99SojournNs:  make(map[string]int64),
		TrainWork:     make(map[string]int64),
	}
	for _, p := range policies {
		res := sched.Simulate(jobs, p)
		out.MeanSojournNs[res.Policy] = res.MeanSojournNs
		out.P99SojournNs[res.Policy] = res.Sojourn.Quantile(0.99)
		out.TrainWork[res.Policy] = res.TrainWork
	}
	return out
}
