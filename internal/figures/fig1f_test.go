package figures

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/report"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestFig1fShape(t *testing.T) {
	res, err := Fig1f(SmallScale(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cold) != 3 {
		t.Fatalf("cold panel has %d policies", len(res.Cold))
	}
	lo, hi := 1.0, 0.0
	for _, c := range res.Cold {
		if c.Misses == 0 {
			t.Fatalf("%s: cold run with zero misses — pool was not cold", c.Policy)
		}
		if c.HitRatio <= 0 || c.HitRatio >= 1 {
			t.Fatalf("%s: hit ratio %v out of (0,1)", c.Policy, c.HitRatio)
		}
		if c.PagesRead != c.Misses {
			t.Fatalf("%s: pages read %d != misses %d on a read-only phase",
				c.Policy, c.PagesRead, c.Misses)
		}
		if c.HitRatio < lo {
			lo = c.HitRatio
		}
		if c.HitRatio > hi {
			hi = c.HitRatio
		}
	}
	// The acceptance bar: the same workload through the same pool size
	// must show a measurable hit-ratio difference between policies.
	if hi-lo < 0.01 {
		t.Fatalf("eviction policies indistinguishable: hit ratios span [%v, %v]", lo, hi)
	}

	// IO-bound sweep: more pool => higher hit ratio => higher throughput.
	for i := 1; i < len(res.IOBound); i++ {
		prev, cur := res.IOBound[i-1], res.IOBound[i]
		if cur.HitRatio <= prev.HitRatio {
			t.Fatalf("hit ratio not increasing with pool size: %d pages %v vs %d pages %v",
				prev.Pages, prev.HitRatio, cur.Pages, cur.HitRatio)
		}
		if cur.Throughput <= prev.Throughput {
			t.Fatalf("throughput not increasing with pool size: %d pages %v vs %d pages %v",
				prev.Pages, prev.Throughput, cur.Pages, cur.Throughput)
		}
	}
	first, last := res.IOBound[0], res.IOBound[len(res.IOBound)-1]
	if last.HitRatio-first.HitRatio < 0.1 {
		t.Fatalf("pool sweep too flat: %v -> %v", first.HitRatio, last.HitRatio)
	}

	// Write-heavy: the in-place tree must write back far more pages than
	// the log-structured store, and only the LSM pays publish fsyncs.
	if len(res.WriteHeavy) != 2 {
		t.Fatalf("write panel has %d SUTs", len(res.WriteHeavy))
	}
	byName := map[string]Fig1fWrite{}
	for _, p := range res.WriteHeavy {
		byName[p.SUT] = p
	}
	bt, ok := byName["disk-btree"]
	if !ok {
		t.Fatal("no disk-btree in write panel")
	}
	lsm, ok := byName["disk-lsm"]
	if !ok {
		t.Fatal("no disk-lsm in write panel")
	}
	if bt.PagesWritten <= lsm.PagesWritten {
		t.Fatalf("in-place tree wrote %d pages, LSM %d — write amplification story inverted",
			bt.PagesWritten, lsm.PagesWritten)
	}
	if lsm.Fsyncs == 0 {
		t.Fatal("LSM published runs without a single fsync")
	}
	if len(res.Results) != len(res.Cold)+len(res.IOBound)+len(res.WriteHeavy) {
		t.Fatalf("raw results incomplete: %d", len(res.Results))
	}
}

// TestFig1fDeterministic pins the ISSUE acceptance: same seed + knobs
// yields byte-identical virtual-clock result JSON across repeats.
func TestFig1fDeterministic(t *testing.T) {
	a, err := Fig1f(SmallScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1f(SmallScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cold, b.Cold) {
		t.Fatalf("cold panel differs between identical runs:\n%+v\n%+v", a.Cold, b.Cold)
	}
	if !reflect.DeepEqual(a.IOBound, b.IOBound) {
		t.Fatal("io-bound panel differs between identical runs")
	}
	if !reflect.DeepEqual(a.WriteHeavy, b.WriteHeavy) {
		t.Fatal("write-heavy panel differs between identical runs")
	}
	for key, ra := range a.Results {
		rb, ok := b.Results[key]
		if !ok {
			t.Fatalf("second run missing %s", key)
		}
		ja, err := report.MarshalResult(ra)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := report.MarshalResult(rb)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s: result JSON differs between identical runs", key)
		}
		if !bytes.Contains(ja, []byte(`"storage"`)) {
			t.Fatalf("%s: marshalled result has no storage block", key)
		}
	}
}

// TestFig1fParallelBitIdentical: the panel fans its runs out under
// -parallel; results must match the serial sweep exactly.
func TestFig1fParallelBitIdentical(t *testing.T) {
	serial := SmallScale()
	serial.Ops /= 2
	serial.DataSize /= 2
	serial.Parallel = 1
	par := serial
	par.Parallel = 8

	a, err := Fig1f(serial, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1f(par, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cold, b.Cold) || !reflect.DeepEqual(a.IOBound, b.IOBound) ||
		!reflect.DeepEqual(a.WriteHeavy, b.WriteHeavy) {
		t.Fatal("panels differ between serial and parallel sweep")
	}
}

// TestFig1fGolden pins the rendered panel byte-for-byte. Regenerate with
//
//	go test ./internal/figures -run TestFig1fGolden -update
func TestFig1fGolden(t *testing.T) {
	scale := SmallScale()
	scale.Ops /= 2
	scale.DataSize /= 2
	res, err := Fig1f(scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig1f(&buf, res)
	buf.WriteString("--- csv ---\n")
	Fig1fCSV(&buf, res)

	path := filepath.Join("testdata", "fig1f.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("fig1f panel drifted from golden\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
