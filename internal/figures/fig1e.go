package figures

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig1eSUTs is the robustness head-to-head: the static learned index
// (crash-restart wipes its models and forces a full retrain) against the
// traditional B+ tree (nothing to retrain — its crash cost is zero).
func Fig1eSUTs() map[string]func() core.SUT {
	return map[string]func() core.SUT{
		"rmi":   core.NewRMISUT,
		"btree": core.NewBTreeSUT,
	}
}

// Fig1eResult carries the robustness panel: the faulted run per SUT plus
// the fault ledger and recovery view.
type Fig1eResult struct {
	Results  map[string]*core.Result
	Reports  map[string]fault.Report
	Recovery map[string]metrics.RecoveryStats
	// Specs records the fault plan each SUT ran under (canonical
	// fault.ParseSpec form).
	Specs map[string]string
	// BaselineNs is each SUT's fault-free run duration — the timebase the
	// default plan's windows are derived from.
	BaselineNs map[string]int64
}

// Fig1e runs the robustness experiment ("Fig 1e"): each SUT executes the
// same steady workload twice — once clean, once under a seeded fault
// plan — and the recovery view measures how deep the system degraded and
// how quickly it returned to its pre-fault SLA band.
//
// With spec == "" the plan is derived from the SUT's own baseline
// duration D: a slow-ops window over [15%, 25%]·D (8x work), a
// crash-restart at 35%·D (learned state wiped, retraining forced), and a
// full error outage over [55%, 65%]·D — leaving the last third of the
// run for recovery measurement. A non-empty spec (fault.ParseSpec
// syntax) runs identically for every SUT instead.
func Fig1e(scale Scale, seed uint64, spec string) (*Fig1eResult, error) {
	suts := Fig1eSUTs()
	names := make([]string, 0, len(suts))
	for n := range suts {
		names = append(names, n)
	}
	sort.Strings(names)

	scenario := core.Scenario{
		Name:        "fig1e-robustness",
		Seed:        seed,
		InitialData: distgen.NewUniform(seed+1, 0, distgen.KeyDomain),
		InitialSize: scale.DataSize,
		TrainBefore: true,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{{
			Name: "steady",
			Ops:  scale.Ops,
			Workload: workload.Spec{
				Mix:    workload.ReadHeavy,
				Access: distgen.Static{G: distgen.NewZipfKeys(seed+2, 1.1, 1<<21)},
			},
		}},
	}
	scenario = scenario.Materialize()

	res := &Fig1eResult{
		Results:    make(map[string]*core.Result, len(names)),
		Reports:    make(map[string]fault.Report, len(names)),
		Recovery:   make(map[string]metrics.RecoveryStats, len(names)),
		Specs:      make(map[string]string, len(names)),
		BaselineNs: make(map[string]int64, len(names)),
	}
	type perSUT struct {
		result     *core.Result
		report     fault.Report
		recovery   metrics.RecoveryStats
		spec       string
		baselineNs int64
	}
	out := make([]perSUT, len(names))
	err := par.ForEach(len(names), scale.Parallel, func(i int) error {
		name := names[i]

		// Clean baseline: fixes the duration timebase for the derived
		// plan and the SLA band the recovery must return to.
		base := newRunner(scale)
		baseRes, err := base.Run(scenario, suts[name]())
		if err != nil {
			return fmt.Errorf("figures: fig1e baseline %s: %w", name, err)
		}

		plan, err := fig1ePlan(spec, seed, baseRes.DurationNs)
		if err != nil {
			return err
		}

		// Faulted run: the injector rides the run's own virtual clock via
		// the runner's WrapSUT hook.
		var inj *fault.Injector
		faulted := newRunner(scale)
		faulted.WrapSUT = func(s core.SUT, clock sim.Clock) core.SUT {
			inj = fault.NewInjector(plan, clock)
			return fault.Wrap(s, inj)
		}
		fRes, err := faulted.Run(scenario, suts[name]())
		if err != nil {
			return fmt.Errorf("figures: fig1e faulted %s: %w", name, err)
		}

		start, end, ok := plan.OpFaultSpan()
		if !ok {
			start, end = 0, 0
		}
		out[i] = perSUT{
			result:     fRes,
			report:     inj.Report(),
			recovery:   fRes.Snapshot.Recovery(start, end, 0),
			spec:       plan.String(),
			baselineNs: baseRes.DurationNs,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		res.Results[name] = out[i].result
		res.Reports[name] = out[i].report
		res.Recovery[name] = out[i].recovery
		res.Specs[name] = out[i].spec
		res.BaselineNs[name] = out[i].baselineNs
	}
	return res, nil
}

// fig1ePlan resolves the fault plan: the user's spec verbatim, or the
// default schedule derived from the baseline duration.
func fig1ePlan(spec string, seed uint64, baselineNs int64) (fault.Plan, error) {
	if spec != "" {
		return fault.ParseSpec(spec, seed)
	}
	d := baselineNs
	return fault.Plan{
		Seed: seed,
		Windows: []fault.Window{
			{Kind: fault.SlowOps, StartNs: d * 15 / 100, EndNs: d * 25 / 100, Factor: 8},
			{Kind: fault.CrashRestart, StartNs: d * 35 / 100},
			{Kind: fault.ErrorOps, StartNs: d * 55 / 100, EndNs: d * 65 / 100},
		},
	}, nil
}
