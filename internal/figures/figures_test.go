package figures

import (
	"math"
	"reflect"
	"testing"
)

func TestFig1aParallelBitIdentical(t *testing.T) {
	// The determinism guarantee behind -parallel: the whole distribution
	// sweep, fanned out across cases and SUTs, produces exactly the data
	// a serial sweep produces.
	serialScale := SmallScale()
	serialScale.Ops /= 4
	serialScale.DataSize /= 4
	serialScale.Parallel = 1
	parScale := serialScale
	parScale.Parallel = 8

	a, err := Fig1a(serialScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1a(parScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Phi, b.Phi) {
		t.Fatal("phi values differ between serial and parallel sweep")
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatal("rows differ between serial and parallel sweep")
	}
}

func TestFig1aShape(t *testing.T) {
	res, err := Fig1a(SmallScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := Fig1aCases()
	if len(res.Rows) != 4 {
		t.Fatalf("SUT count = %d", len(res.Rows))
	}
	for sut, rows := range res.Rows {
		if len(rows) != len(cases) {
			t.Fatalf("%s: %d rows, want %d", sut, len(rows), len(cases))
		}
		holdouts := 0
		for _, r := range rows {
			if r.Summary.N == 0 {
				t.Fatalf("%s/%s: empty summary", sut, r.Label)
			}
			if r.Summary.Median <= 0 {
				t.Fatalf("%s/%s: zero throughput", sut, r.Label)
			}
			if r.Holdout {
				holdouts++
			}
		}
		if holdouts != 1 {
			t.Fatalf("%s: %d holdout rows", sut, holdouts)
		}
	}
	// Φ: the baseline's self-distance must be the smallest.
	if res.Phi["uniform"] > 0.1 {
		t.Fatalf("baseline phi = %v", res.Phi["uniform"])
	}
	for name, phi := range res.Phi {
		if phi < 0 || phi > 1 {
			t.Fatalf("phi[%s] = %v", name, phi)
		}
	}
	// Headline claim of learned indexes: on sequential (perfectly
	// learnable) data the RMI must beat the B+ tree.
	seqOf := func(sut string) float64 {
		for _, r := range res.Rows[sut] {
			if r.Label == "sequential" {
				return r.Summary.Median
			}
		}
		return 0
	}
	if seqOf("rmi") <= seqOf("btree") {
		t.Fatalf("rmi (%v) should beat btree (%v) on sequential data",
			seqOf("rmi"), seqOf("btree"))
	}
}

func TestFig1aSpecializationSpread(t *testing.T) {
	// The RMI's throughput must vary more across distributions than the
	// B+ tree's (specialization vs. distribution-obliviousness) —
	// measured by relative spread of medians.
	res, err := Fig1a(SmallScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(sut string) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range res.Rows[sut] {
			if r.Summary.Median < lo {
				lo = r.Summary.Median
			}
			if r.Summary.Median > hi {
				hi = r.Summary.Median
			}
		}
		return hi / lo
	}
	if spread("rmi") <= spread("btree") {
		t.Fatalf("rmi spread %v not above btree spread %v — specialization invisible",
			spread("rmi"), spread("btree"))
	}
}

func TestFig1bShape(t *testing.T) {
	res, err := Fig1b(SmallScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 || res.Labels[0] != "rmi" || res.Labels[1] != "btree" {
		t.Fatalf("labels = %v", res.Labels)
	}
	for i, c := range res.Curves {
		if c.Total() != int64(3*SmallScale().Ops) {
			t.Fatalf("curve %d total = %d", i, c.Total())
		}
	}
	if len(res.PhaseStarts) != 2 {
		t.Fatalf("phase starts = %v", res.PhaseStarts)
	}
	if res.AreaBetween == 0 {
		t.Fatal("area difference exactly zero is implausible")
	}
	for sut, a := range res.AreaVsIdeal {
		if a < -1 || a > 1 {
			t.Fatalf("%s area score %v out of range", sut, a)
		}
	}
	// The paper's narrative: the learned system starts slow (training
	// while building) and catches up — a clearly positive area-vs-ideal
	// — and more so than the traditional baseline.
	if res.AreaVsIdeal["rmi"] <= 0.02 {
		t.Fatalf("rmi area-vs-ideal %v should be clearly positive", res.AreaVsIdeal["rmi"])
	}
	if res.AreaVsIdeal["rmi"] <= res.AreaVsIdeal["btree"] {
		t.Fatalf("rmi (%v) should lag the ideal more than btree (%v)",
			res.AreaVsIdeal["rmi"], res.AreaVsIdeal["btree"])
	}
}

func TestFig1cShape(t *testing.T) {
	res, err := Fig1c(SmallScale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sut := range []string{"rmi", "alex", "btree"} {
		bt, ok := res.Bands[sut]
		if !ok {
			t.Fatalf("missing bands for %s", sut)
		}
		if len(bt.Intervals()) < 2 {
			t.Fatalf("%s: only %d intervals", sut, len(bt.Intervals()))
		}
		if res.SLANs[sut] <= 0 {
			t.Fatalf("%s: no SLA", sut)
		}
		if _, ok := res.AdjustmentSpeed[sut]; !ok {
			t.Fatalf("%s: no adjustment speed", sut)
		}
		if r := res.ViolationRate[sut]; r < 0 || r > 1 {
			t.Fatalf("%s: violation rate %v", sut, r)
		}
	}
	// The static learned index pays for adaptation: its adjustment cost
	// after the shift must exceed the traditional baseline's.
	if res.AdjustmentSpeed["rmi"] <= res.AdjustmentSpeed["btree"] {
		t.Fatalf("rmi adjustment %d not above btree %d",
			res.AdjustmentSpeed["rmi"], res.AdjustmentSpeed["btree"])
	}
}

func TestFig1dShape(t *testing.T) {
	res, err := Fig1d(SmallScale(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LearnedCPU) != len(Fig1dBudgets) || len(res.LearnedGPU) != len(Fig1dBudgets) {
		t.Fatal("learned curve incomplete")
	}
	if len(res.Traditional) != 6 { // untuned + 5 actions
		t.Fatalf("traditional curve has %d points", len(res.Traditional))
	}
	// Learned best-so-far throughput must be non-decreasing in budget.
	prev := 0.0
	for i, p := range res.LearnedCPU {
		if p.Throughput < prev*0.999 {
			t.Fatalf("learned curve decreasing at %d: %v after %v", i, p.Throughput, prev)
		}
		if p.Throughput > prev {
			prev = p.Throughput
		}
		if p.Dollars <= 0 {
			t.Fatalf("point %d has no cost", i)
		}
	}
	// GPU tier must dominate CPU tier on cost for the same throughput.
	for i := range res.LearnedCPU {
		if res.LearnedGPU[i].Dollars >= res.LearnedCPU[i].Dollars {
			t.Fatal("gpu tier not cheaper")
		}
		if res.LearnedGPU[i].Throughput != res.LearnedCPU[i].Throughput {
			t.Fatal("tiers must share throughput")
		}
	}
	// DBA curve: hours cumulative => dollars non-decreasing; tuning must
	// beat the untuned default eventually.
	for i := 1; i < len(res.Traditional); i++ {
		if res.Traditional[i].Dollars < res.Traditional[i-1].Dollars {
			t.Fatal("DBA costs not cumulative")
		}
	}
	if res.Traditional[len(res.Traditional)-1].Throughput <= res.Traditional[0].Throughput {
		t.Fatal("DBA tuning did not improve over untuned")
	}
	// The learned system with a real budget must outperform the best
	// DBA configuration at far lower cost (the paper's headline story).
	if res.CostToOutperformCPU < 0 {
		t.Fatal("learned system never outperforms the DBA — figure shape broken")
	}
	dbaBest := res.Traditional[len(res.Traditional)-1].Dollars
	if res.CostToOutperformCPU >= dbaBest {
		t.Fatalf("cost to outperform ($%v) not below DBA cost ($%v)",
			res.CostToOutperformCPU, dbaBest)
	}
}

func TestLesson1FixedOverstates(t *testing.T) {
	res, err := Lesson1(SmallScale(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.FixedRatio <= 1 {
		t.Fatalf("learned index should win on the fixed learnable workload: ratio %v", res.FixedRatio)
	}
	if res.DriftRatio >= res.FixedRatio {
		t.Fatalf("drift should shrink the learned advantage: fixed %v, drift %v",
			res.FixedRatio, res.DriftRatio)
	}
}

func TestLesson2AverageHides(t *testing.T) {
	res, err := Lesson2(SmallScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanGapFraction > 0.15 {
		t.Fatalf("means too far apart (%v) for the demonstration", res.MeanGapFraction)
	}
	if res.TailRatio < 3 {
		t.Fatalf("p99 ratio %v too small — averages do not hide anything here", res.TailRatio)
	}
}

func TestLesson3BreakEven(t *testing.T) {
	res, err := Lesson3(SmallScale(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainNs <= 0 {
		t.Fatal("no training time charged")
	}
	if res.LearnedOpNs >= res.TraditionalOpNs {
		t.Fatalf("learned per-op (%v) should beat traditional (%v) on sequential data",
			res.LearnedOpNs, res.TraditionalOpNs)
	}
	if res.BreakEvenQueries <= 0 {
		t.Fatal("break-even undefined despite learned being faster")
	}
}

func TestLesson4HumanCostFlips(t *testing.T) {
	fig, err := Fig1d(SmallScale(), 9)
	if err != nil {
		t.Fatal(err)
	}
	res := Lesson4(fig)
	// Machine-only: DBA "costs nothing" (human hours unpriced) so the
	// DBA system looks at least as cheap.
	if res.MachineOnlyDBA > res.MachineOnlyLearned {
		t.Fatalf("machine-only TCO: DBA %v should not exceed learned %v",
			res.MachineOnlyDBA, res.MachineOnlyLearned)
	}
	// Full model: pricing the human flips the ranking decisively.
	if res.FullDBA <= res.FullLearned {
		t.Fatalf("full TCO: DBA %v should exceed learned %v", res.FullDBA, res.FullLearned)
	}
}
