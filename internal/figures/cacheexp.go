package figures

import (
	"repro/internal/cache"
	"repro/internal/distgen"
	"repro/internal/stats"
)

// CacheResult compares caching policies on the benchmark's drifting
// workloads, with the Belady offline optimum as the upper bound — the
// "learning-based caches" component the paper lists among learned-system
// opportunities.
type CacheResult struct {
	// HitRate per policy per trace: HitRate[trace][policy].
	HitRate map[string]map[string]float64
	// Belady upper bound per trace.
	Belady map[string]float64
	// LearnedTrainWork per trace: online model updates (charged as
	// training overhead per the paper's online-learning rule).
	LearnedTrainWork map[string]int64
}

// cacheTraces builds the three access patterns of the experiment.
func cacheTraces(scale Scale, seed uint64) map[string][]uint64 {
	n := scale.Ops * 4
	rng := stats.NewRNG(seed)

	traces := make(map[string][]uint64, 3)

	// 1. Stable zipf: everyone's friendly case.
	z := stats.NewZipf(rng.Split(), 1.1, 2000)
	t1 := make([]uint64, n)
	for i := range t1 {
		t1[i] = z.Next()
	}
	traces["stable-zipf"] = t1

	// 2. Zipf + periodic one-shot scans (LRU pollution).
	z2 := stats.NewZipf(rng.Split(), 1.1, 2000)
	t2 := make([]uint64, 0, n)
	scanKey := uint64(1 << 40)
	for len(t2) < n {
		for i := 0; i < 400 && len(t2) < n; i++ {
			t2 = append(t2, z2.Next())
		}
		for i := 0; i < 300 && len(t2) < n; i++ {
			scanKey++
			t2 = append(t2, scanKey)
		}
	}
	traces["zipf+scans"] = t2

	// 3. Moving hotspot: the drifting case (Lesson 1 for caches). Keys
	// quantized to a 4096-key population; the hot window (~200 keys)
	// fits in cache, but it moves.
	mh := distgen.NewMovingHotspot(rng.Uint64(), 0.9, 0.05, 2)
	t3 := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		k := mh.KeysAt(float64(i)/float64(n), 1)[0]
		t3 = append(t3, k>>48)
	}
	traces["moving-hotspot"] = t3

	return traces
}

// CacheExperiment runs LRU, sampled LFU, and the learned reuse-interval
// policy over the three traces at a capacity of ~10% of the key
// population.
func CacheExperiment(scale Scale, seed uint64) *CacheResult {
	const capacity = 300
	out := &CacheResult{
		HitRate:          make(map[string]map[string]float64),
		Belady:           make(map[string]float64),
		LearnedTrainWork: make(map[string]int64),
	}
	for name, trace := range cacheTraces(scale, seed) {
		row := make(map[string]float64, 3)
		lru := cache.NewLRU(capacity)
		row[lru.Name()] = cache.HitRate(lru, trace)
		lfu := cache.NewSampledLFU(capacity, seed+1)
		row[lfu.Name()] = cache.HitRate(lfu, trace)
		learned := cache.NewLearned(capacity, seed+2)
		row[learned.Name()] = cache.HitRate(learned, trace)
		out.LearnedTrainWork[name] = learned.TrainWork()
		out.HitRate[name] = row
		out.Belady[name] = cache.BeladyHitRate(trace, capacity)
	}
	return out
}
