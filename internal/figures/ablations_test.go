package figures

import "testing"

func TestAblationSLA(t *testing.T) {
	res, err := AblationSLA(SmallScale(), 21)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated threshold must be discriminative: some violations
	// (adaptation disruptions) but far from drowning.
	if res.CalibratedViolationRate <= 0 || res.CalibratedViolationRate >= 0.9 {
		t.Fatalf("calibrated violation rate %v not discriminative", res.CalibratedViolationRate)
	}
	// A 100x threshold hides nearly everything.
	if res.LooseViolationRate >= res.CalibratedViolationRate/2 {
		t.Fatalf("loose threshold should hide violations: %v vs %v",
			res.LooseViolationRate, res.CalibratedViolationRate)
	}
	// A 1/20 threshold flags most steady-state ops too.
	if res.TightViolationRate <= res.CalibratedViolationRate*2 {
		t.Fatalf("tight threshold should drown in noise: %v vs %v",
			res.TightViolationRate, res.CalibratedViolationRate)
	}
}

func TestAblationPhi(t *testing.T) {
	res := AblationPhi(22)
	if res.OrderAgreement < 0.7 {
		t.Fatalf("KS/MMD ordering agreement %v below 0.7 — Φ choice would matter too much",
			res.OrderAgreement)
	}
	if len(res.KS) != len(Fig1aCases()) || len(res.MMD) != len(res.KS) {
		t.Fatal("missing Φ values")
	}
	for name, v := range res.KS {
		if v < 0 || v > 1 {
			t.Fatalf("KS[%s] = %v", name, v)
		}
	}
}

func TestAblationTransition(t *testing.T) {
	res, err := AblationTransition(SmallScale(), 23)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbruptDip < 0 || res.AbruptDip > 1 || res.GradualDip < 0 || res.GradualDip > 1 {
		t.Fatalf("dips out of range: %+v", res)
	}
	// The abrupt switch concentrates adaptation work; the gradual blend
	// spreads it. The concentrated variant must show the deeper dip or
	// the larger over-SLA burst (either signal suffices; both being
	// smaller would contradict §V-B).
	if res.AbruptDip <= res.GradualDip && res.AbruptOverSLA <= res.GradualOverSLA {
		t.Fatalf("abrupt transition shows no concentrated cost: %+v", res)
	}
}

func TestAblationTrainingPlacement(t *testing.T) {
	res, err := AblationTrainingPlacement(SmallScale(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScheduledRetrainWork <= 0 {
		t.Fatal("scheduled window did no retraining")
	}
	// The maintenance window removes the mid-serving merge from the
	// settle phase: less over-SLA time while serving.
	if res.ScheduledOverSLA > res.OnlineOverSLA {
		t.Fatalf("scheduled retrain did not reduce serving-path violations: %+v", res)
	}
	if res.OnlineThroughput <= 0 || res.ScheduledThroughput <= 0 {
		t.Fatal("throughput missing")
	}
}

func TestAblationHoldout(t *testing.T) {
	res, err := AblationHoldout(SmallScale(), 25)
	if err != nil {
		t.Fatal(err)
	}
	// The learned index's in-sample advantage must shrink out of sample
	// more than the traditional baseline's (which should be ~1.0).
	if res.LearnedGap <= res.TraditionalGap {
		t.Fatalf("hold-out failed to expose specialization: learned %v vs traditional %v",
			res.LearnedGap, res.TraditionalGap)
	}
	if res.TraditionalGap < 0.8 || res.TraditionalGap > 1.3 {
		t.Fatalf("traditional gap %v should be near 1", res.TraditionalGap)
	}
}
