package figures

import (
	"fmt"
	"io"

	"repro/internal/card"
	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/driftctl"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

// Fig 1g is the adaptability-vs-drift-intensity sweep: the driftctl knob
// D ∈ [0,1] dials how far the workload transports away from what every
// system trained on, and each SUT family's metric quadruple (throughput,
// p99, SLA violation rate, adjustment speed) is plotted against it. Three
// panels: data drift (key-distribution transport, KV SUT families), query
// drift (predicate location/selectivity transport, SQL optimizer
// families), and interactive sessions (the same data drift paced by
// think-time sessions with a per-session budget). Every run is
// virtual-clock deterministic and byte-identical at any parallelism or
// batch size.

// Fig1gIntensities is the default drift-factor sweep (≥4 points).
var Fig1gIntensities = []float64{0, 0.25, 0.5, 0.75, 1}

// Fig1g session-pacing defaults (virtual ns). Bursts of 4–10 ops arrive
// 2µs apart — comparable to service times, so queueing inside a burst
// makes the session makespan latency-sensitive — separated by ≥200µs
// think gaps, with a 34µs per-session completion budget — tight enough
// that drift-induced queueing turns into missed budgets.
const (
	Fig1gSessionThinkNs  = 200_000
	Fig1gSessionIntraNs  = 2_000
	Fig1gSessionBudgetNs = 34_000
)

// Fig1gData is one (intensity, SUT) cell of the data-drift panel.
type Fig1gData struct {
	D float64
	// Divergence is the controller's predicted KS divergence from the
	// base key distribution at full profile weight — the common x-scale
	// that makes D comparable across base/target pairs.
	Divergence    float64
	SUT           string
	Throughput    float64
	P99Ns         int64
	ViolationRate float64
	// AdjustmentNs is the over-SLA time right after the drift phase
	// begins (adjustment-speed metric).
	AdjustmentNs int64
}

// Fig1gQuery is one (intensity, system) cell of the query-drift panel.
type Fig1gQuery struct {
	D             float64
	System        string
	Throughput    float64
	P99Ns         int64
	ViolationRate float64
	TrainWork     int64
}

// Fig1gSession is one (intensity, SUT) cell of the session panel.
type Fig1gSession struct {
	D             float64
	SUT           string
	Sessions      int64
	MetRate       float64
	LateOps       int64
	MakespanP99Ns int64
}

// Fig1gResult carries the three panels plus the raw per-run results
// (keyed "data/<D>/<sut>", "session/<D>/<sut>", "query/<D>/<system>") for
// JSON pinning.
type Fig1gResult struct {
	Intensities []float64
	Data        []Fig1gData
	Query       []Fig1gQuery
	Session     []Fig1gSession
	Results     map[string]*core.Result
	SQLResults  map[string]*core.SQLRunResult
}

// fig1gController builds the data-drift controller for intensity d: keys
// transport from the trained low half of the domain to the never-seen high
// half. The profile is constant, so the drift phase opens with a step of
// magnitude D — that onset is what the adjustment-speed metric measures —
// and the disjoint halves put the base→target span at the full KS scale,
// making Divergence(d) ≈ d: the drift factor IS the divergence dial.
func fig1gController(seed uint64, d float64) *driftctl.Controller {
	half := distgen.KeyDomain / 2
	baseF := func(s uint64) distgen.Generator { return distgen.NewUniform(s, 0, half) }
	targetF := func(s uint64) distgen.Generator { return distgen.NewUniform(s, half, distgen.KeyDomain) }
	knob := driftctl.Knob{Factor: d, Profile: driftctl.Constant()}
	return driftctl.NewCalibrated(seed, baseF, targetF, knob, 0)
}

// fig1gDataScenario is the two-phase data-drift scenario at intensity d:
// a steady phase on the trained distribution (SLA calibrates here), then a
// drift phase whose keys transport toward the unseen half of the domain.
func fig1gDataScenario(scale Scale, seed uint64, d float64) (core.Scenario, *driftctl.Controller) {
	half := distgen.KeyDomain / 2
	ctrl := fig1gController(seed+7, d)
	return core.Scenario{
		Name:        fmt.Sprintf("fig1g-data-D%.2f", d),
		Seed:        seed,
		InitialData: distgen.NewUniform(seed+1, 0, half),
		InitialSize: scale.DataSize,
		TrainBefore: true,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{
			{
				Name: "steady",
				Ops:  scale.Ops / 2,
				Workload: workload.Spec{
					Mix:    workload.ReadHeavy,
					Access: distgen.Static{G: distgen.NewUniform(seed+2, 0, half)},
				},
			},
			{
				Name: "drift",
				Ops:  scale.Ops,
				Workload: workload.Spec{
					Mix:    workload.Balanced,
					Access: ctrl,
				},
			},
		},
	}, ctrl
}

// fig1gKVSUTs is the data/session panel SUT family list.
func fig1gKVSUTs() (names []string, factories []func() core.SUT) {
	names = []string{"btree", "rmi", "alex"}
	factories = []func() core.SUT{core.NewBTreeSUT, core.NewRMISUT, core.NewALEXSUT}
	return
}

// Fig1g runs the drift-intensity sweep. The intensity grid and session
// pacing come from the scale when set (cmd/figures -drift-factor and
// -session), else the package defaults.
func Fig1g(scale Scale, seed uint64) (*Fig1gResult, error) {
	intensities := scale.DriftFactors
	if len(intensities) == 0 {
		intensities = Fig1gIntensities
	}
	gapNs := scale.SessionGapNs
	if gapNs <= 0 {
		gapNs = Fig1gSessionThinkNs
	}
	budgetNs := scale.SessionBudgetNs
	if budgetNs <= 0 {
		budgetNs = Fig1gSessionBudgetNs
	}
	res := &Fig1gResult{
		Intensities: intensities,
		Results:     make(map[string]*core.Result),
		SQLResults:  make(map[string]*core.SQLRunResult),
	}
	runner := newRunner(scale)
	names, factories := fig1gKVSUTs()

	// Panel 1: data drift.
	for _, d := range intensities {
		scenario, ctrl := fig1gDataScenario(scale, seed, d)
		results, err := runner.RunAll(scenario, factories)
		if err != nil {
			return nil, fmt.Errorf("figures: fig1g data D=%.2f: %w", d, err)
		}
		for i, r := range results {
			adj := int64(0)
			if len(r.PostChangeLatencies) > 0 {
				adj = metrics.AdjustmentSpeed(r.PostChangeLatencies[0], r.SLANs, len(r.PostChangeLatencies[0]))
			}
			res.Data = append(res.Data, Fig1gData{
				D:             d,
				Divergence:    ctrl.Divergence(d),
				SUT:           names[i],
				Throughput:    r.Throughput(),
				P99Ns:         r.Latency.Quantile(0.99),
				ViolationRate: r.Bands.ViolationRate(),
				AdjustmentNs:  adj,
			})
			res.Results[fmt.Sprintf("data/%.2f/%s", d, names[i])] = r
		}
	}

	// Panel 2: query drift. The same star database throughout (no
	// mutation): only the predicates transport — windows move from the
	// sparse tail of the zipf value column into the hot dense region and
	// widen 8x, so cardinalities explode relative to what the first
	// queries looked like. Each system sees the identical query stream
	// (db and drift rebuilt from the same seeds); the ramp profile keeps
	// the SLA-calibration quarter near-undrifted.
	n := scale.Ops / 10
	if n < 200 {
		n = 200
	}
	type sqlCfg struct {
		name  string
		build func(db *optDriftDB) core.QuerySystem
	}
	sqlCfgs := []sqlCfg{
		{name: "static-histogram", build: func(db *optDriftDB) core.QuerySystem {
			h := card.NewHistogram(64)
			h.Analyze(db.dim)
			h.Analyze(db.fact)
			return &core.StaticOptimizer{Label: "static-histogram", Est: h, Hint: optimizer.HintDefault}
		}},
		{name: "static-sample", build: func(db *optDriftDB) core.QuerySystem {
			s := card.NewSample(0.1)
			s.Analyze(db.dim)
			s.Analyze(db.fact)
			return &core.StaticOptimizer{Label: "static-sample", Est: s, Hint: optimizer.HintDefault}
		}},
		{name: "learned-steered", build: func(db *optDriftDB) core.QuerySystem {
			l := card.NewLearned()
			l.ObserveTable(db.dim)
			l.ObserveTable(db.fact)
			return &core.SteeredOptimizer{
				Label:         "learned-steered",
				Est:           l,
				Steering:      optimizer.NewSteering(0.5),
				FeedbackEvery: 2,
			}
		}},
	}
	for _, d := range intensities {
		for _, cfg := range sqlCfgs {
			db := newOptDriftDB(scale, seed+500)
			pd := driftctl.NewPredicateDrift(seed+501,
				driftctl.Knob{Factor: d, Profile: driftctl.Ramp()},
				"val", 512, 64, 0, 8)
			scenario := core.SQLScenario{
				Name: fmt.Sprintf("fig1g-query-D%.2f", d),
				N:    n,
				Queries: func(i, total int) optimizer.Query {
					return optimizer.Query{
						Tables: []*sqlmini.Table{db.dim, db.fact},
						Preds: map[string][]sqlmini.Predicate{
							"dim":  {{Column: "kind", Op: sqlmini.Eq, Value: db.rng.Uint64() % 10}},
							"fact": {pd.PredicateAt(float64(i) / float64(total))},
						},
						Joins: []optimizer.JoinEdge{{
							LeftTable: "dim", LeftCol: "id", RightTable: "fact", RightCol: "dimid",
						}},
					}
				},
				IntervalNs: scale.IntervalNs * 10,
			}
			r, err := core.RunSQL(scenario, cfg.build(db), sim.DefaultCostModel())
			if err != nil {
				return nil, fmt.Errorf("figures: fig1g query D=%.2f %s: %w", d, cfg.name, err)
			}
			res.Query = append(res.Query, Fig1gQuery{
				D:             d,
				System:        cfg.name,
				Throughput:    r.Throughput(),
				P99Ns:         r.Latency.Quantile(0.99),
				ViolationRate: r.Bands.ViolationRate(),
				TrainWork:     r.TrainWork,
			})
			res.SQLResults[fmt.Sprintf("query/%.2f/%s", d, cfg.name)] = r
		}
	}

	// Panel 3: interactive sessions under data drift — the same transport
	// paced by think-time sessions, scored by the per-session budget.
	for _, d := range intensities {
		scenario, _ := fig1gDataScenario(scale, seed+900, d)
		for pi := range scenario.Phases {
			scenario.Phases[pi].Arrival = workload.NewSessionArrival(
				seed+901+uint64(pi)*31, gapNs, Fig1gSessionIntraNs, 4, 10)
		}
		scenario.Name = fmt.Sprintf("fig1g-session-D%.2f", d)
		scenario.Session = &workload.SessionSpec{GapNs: gapNs, BudgetNs: budgetNs}
		results, err := runner.RunAll(scenario, factories)
		if err != nil {
			return nil, fmt.Errorf("figures: fig1g session D=%.2f: %w", d, err)
		}
		for i, r := range results {
			ss := r.Sessions
			if ss == nil {
				return nil, fmt.Errorf("figures: fig1g session D=%.2f %s: no session stats", d, names[i])
			}
			res.Session = append(res.Session, Fig1gSession{
				D:             d,
				SUT:           names[i],
				Sessions:      ss.Sessions,
				MetRate:       ss.MetRate(),
				LateOps:       ss.LateOps,
				MakespanP99Ns: ss.Makespan.Quantile(0.99),
			})
			res.Results[fmt.Sprintf("session/%.2f/%s", d, names[i])] = r
		}
	}
	return res, nil
}

// RenderFig1g prints the three panels as tables — shared by cmd/figures
// and the golden test that pins the panel.
func RenderFig1g(w io.Writer, res *Fig1gResult) {
	fmt.Fprintln(w, "data drift — metric quadruple vs drift intensity D (keys transport to unseen domain half):")
	var rows [][]string
	for _, c := range res.Data {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", c.D),
			fmt.Sprintf("%.3f", c.Divergence),
			c.SUT,
			fmt.Sprintf("%.0f", c.Throughput),
			fmt.Sprintf("%.1fus", float64(c.P99Ns)/1e3),
			fmt.Sprintf("%.2f", c.ViolationRate*100),
			fmt.Sprintf("%.3fms", float64(c.AdjustmentNs)/1e6),
		})
	}
	report.Table(w, []string{"D", "phi(KS)", "sut", "ops/s", "p99", "viol%", "adjust"}, rows)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "query drift — predicate windows transport from the tail into the hot region, widening 8x:")
	rows = rows[:0]
	for _, c := range res.Query {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", c.D),
			c.System,
			fmt.Sprintf("%.0f", c.Throughput),
			fmt.Sprintf("%.1fus", float64(c.P99Ns)/1e3),
			fmt.Sprintf("%.2f", c.ViolationRate*100),
			fmt.Sprintf("%d", c.TrainWork),
		})
	}
	report.Table(w, []string{"D", "system", "q/s", "p99", "viol%", "train work"}, rows)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "interactive sessions — per-session budget met-rate vs drift intensity:")
	rows = rows[:0]
	for _, c := range res.Session {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", c.D),
			c.SUT,
			fmt.Sprintf("%d", c.Sessions),
			fmt.Sprintf("%.1f", c.MetRate*100),
			fmt.Sprintf("%d", c.LateOps),
			fmt.Sprintf("%.1fus", float64(c.MakespanP99Ns)/1e3),
		})
	}
	report.Table(w, []string{"D", "sut", "sessions", "met%", "late ops", "makespan p99"}, rows)
	fmt.Fprintln(w)
}

// Fig1gCSV emits the three panels as one long-format CSV.
func Fig1gCSV(w io.Writer, res *Fig1gResult) {
	fmt.Fprintln(w, "panel,d,divergence,label,throughput,p99_ns,violation_rate,adjust_ns,train_work,sessions,met_rate,late_ops,makespan_p99_ns")
	for _, c := range res.Data {
		fmt.Fprintf(w, "data,%.2f,%.6f,%s,%.3f,%d,%.6f,%d,0,0,0,0,0\n",
			c.D, c.Divergence, c.SUT, c.Throughput, c.P99Ns, c.ViolationRate, c.AdjustmentNs)
	}
	for _, c := range res.Query {
		fmt.Fprintf(w, "query,%.2f,0,%s,%.3f,%d,%.6f,0,%d,0,0,0,0\n",
			c.D, c.System, c.Throughput, c.P99Ns, c.ViolationRate, c.TrainWork)
	}
	for _, c := range res.Session {
		fmt.Fprintf(w, "session,%.2f,0,%s,0,0,0,0,0,%d,%.6f,%d,%d\n",
			c.D, c.SUT, c.Sessions, c.MetRate, c.LateOps, c.MakespanP99Ns)
	}
}
