package figures

import "testing"

func TestCacheExperimentShape(t *testing.T) {
	res := CacheExperiment(SmallScale(), 31)
	wantTraces := []string{"stable-zipf", "zipf+scans", "moving-hotspot"}
	for _, tr := range wantTraces {
		row, ok := res.HitRate[tr]
		if !ok {
			t.Fatalf("missing trace %s", tr)
		}
		belady := res.Belady[tr]
		if belady <= 0 || belady > 1 {
			t.Fatalf("%s: belady = %v", tr, belady)
		}
		for policy, hr := range row {
			if hr < 0 || hr > belady+1e-9 {
				t.Fatalf("%s/%s: hit rate %v vs belady %v", tr, policy, hr, belady)
			}
		}
		if res.LearnedTrainWork[tr] <= 0 {
			t.Fatalf("%s: no learned training work", tr)
		}
	}
	// Headline: the learned policy beats LRU under scan pollution.
	scans := res.HitRate["zipf+scans"]
	if scans["learned"] <= scans["lru"] {
		t.Fatalf("learned (%v) must beat lru (%v) under scan pollution",
			scans["learned"], scans["lru"])
	}
	// And no policy collapses on the drifting hotspot (adaptability).
	for policy, hr := range res.HitRate["moving-hotspot"] {
		if hr < 0.3 {
			t.Fatalf("%s collapsed on moving hotspot: %v", policy, hr)
		}
	}
}
