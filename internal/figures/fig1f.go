package figures

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/kv"
	"repro/internal/pager"
	"repro/internal/report"
	"repro/internal/workload"
)

// Fig 1f is the storage-tier panel: the disk-backed SUTs (paged B+ tree,
// disk LSM) under the three scenarios where the buffer pool — not the
// data structure — decides performance. Every run is virtual-clock
// deterministic: identical seed + knobs produce byte-identical result
// JSON, with page I/O priced through cost.IOModel.

// Fig1fColdPages is the pool size used by the cold-cache policy shootout:
// small enough that the leaf working set cannot fit, so eviction policy
// choice is visible in the hit ratio.
const Fig1fColdPages = 16

// Fig1fPoolSizes is the buffer-pool sweep of the IO-bound panel.
var Fig1fPoolSizes = []int{16, 64, 256}

// Fig1fCold is one eviction policy's cold-cache measurement.
type Fig1fCold struct {
	Policy     string
	HitRatio   float64
	Hits       uint64
	Misses     uint64
	PagesRead  uint64
	Throughput float64
	P99Ns      int64
}

// Fig1fIO is one pool size's IO-bound measurement.
type Fig1fIO struct {
	Pages      int
	HitRatio   float64
	PagesRead  uint64
	Throughput float64
	P50Ns      int64
}

// Fig1fWrite is one SUT's write-heavy measurement.
type Fig1fWrite struct {
	SUT             string
	Throughput      float64
	P99Ns           int64
	PagesWritten    uint64
	Fsyncs          uint64
	DirtyWritebacks uint64
	Evictions       uint64
}

// Fig1fResult carries the three storage panels plus the raw per-run
// results (keyed "cold/<policy>", "iobound/<pages>", "write/<sut>") for
// JSON pinning.
type Fig1fResult struct {
	Cold       []Fig1fCold
	IOBound    []Fig1fIO
	WriteHeavy []Fig1fWrite
	Results    map[string]*core.Result
}

// fig1fAccess builds the cold-cache access pattern: a few tight clusters
// (the hot leaves) mixed with uniform traffic and scans (the flood that
// separates scan-resistant policies from pure recency).
func fig1fAccess(seed uint64) distgen.Generator {
	return distgen.NewMixture(seed, []distgen.Generator{
		distgen.NewClustered(seed+1, 4, float64(distgen.KeyDomain)/1e7),
		distgen.NewUniform(seed+2, 0, distgen.KeyDomain),
	}, []float64{0.5, 0.5})
}

// Fig1f runs the storage-tier experiment ("Fig 1f"):
//
//   - cold-cache: the paged B+ tree starts with an empty pool (the load's
//     pages are dropped) and serves a hot/cold read mix under each
//     eviction policy at the same small pool — the hit-ratio shootout.
//   - io-bound: the same tree under uniform random reads at increasing
//     pool sizes — throughput tracks the hit ratio because page reads
//     dominate the priced work.
//   - write-heavy: paged B+ tree vs disk LSM under a put-dominated mix —
//     in-place dirtying and eviction writebacks against memtable flushes,
//     run files, and compaction rewrites.
func Fig1f(scale Scale, seed uint64) (*Fig1fResult, error) {
	runner := newRunner(scale)
	res := &Fig1fResult{Results: make(map[string]*core.Result)}

	// Panel 1: cold-cache policy shootout.
	policies := []string{"lru", "clock", "2q"}
	coldScenario := core.Scenario{
		Name:        "fig1f-cold-cache",
		Seed:        seed,
		InitialData: distgen.NewUniform(seed+1, 0, distgen.KeyDomain),
		InitialSize: scale.DataSize,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{{
			Name: "cold-read",
			Ops:  scale.Ops,
			Workload: workload.Spec{
				Mix:    workload.Mix{GetFrac: 0.7, ScanFrac: 0.3, ScanLimit: 300},
				Access: distgen.Static{G: fig1fAccess(seed + 2)},
			},
		}},
	}
	coldSUTs := make([]*core.ColdStartSUT, len(policies))
	coldFactories := make([]func() core.SUT, len(policies))
	for i, pol := range policies {
		knobs := pager.PoolKnobs{Pages: Fig1fColdPages, Policy: pol}
		s := core.ColdStart(core.NewDiskBTreeSUT(knobs))
		coldSUTs[i] = s
		coldFactories[i] = func() core.SUT { return s }
	}
	coldResults, err := runner.RunAll(coldScenario, coldFactories)
	if err != nil {
		return nil, fmt.Errorf("figures: fig1f cold-cache: %w", err)
	}
	for i, pol := range policies {
		r := coldResults[i]
		c := coldSUTs[i].MeasuredCounters()
		res.Cold = append(res.Cold, Fig1fCold{
			Policy:     pol,
			HitRatio:   c.HitRatio(),
			Hits:       c.Hits,
			Misses:     c.Misses,
			PagesRead:  c.PagesRead,
			Throughput: r.Throughput(),
			P99Ns:      r.Latency.Quantile(0.99),
		})
		res.Results["cold/"+pol] = r
	}

	// Panel 2: IO-bound pool-size sweep.
	ioScenario := core.Scenario{
		Name:        "fig1f-io-bound",
		Seed:        seed + 100,
		InitialData: distgen.NewUniform(seed+101, 0, distgen.KeyDomain),
		InitialSize: scale.DataSize,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{{
			Name: "uniform-read",
			Ops:  scale.Ops,
			Workload: workload.Spec{
				Mix:    workload.Mix{GetFrac: 1},
				Access: distgen.Static{G: distgen.NewUniform(seed+102, 0, distgen.KeyDomain)},
			},
		}},
	}
	ioSUTs := make([]*core.ColdStartSUT, len(Fig1fPoolSizes))
	ioFactories := make([]func() core.SUT, len(Fig1fPoolSizes))
	for i, pages := range Fig1fPoolSizes {
		knobs := pager.PoolKnobs{Pages: pages, Policy: "lru"}
		s := core.ColdStart(core.NewDiskBTreeSUT(knobs))
		ioSUTs[i] = s
		ioFactories[i] = func() core.SUT { return s }
	}
	ioResults, err := runner.RunAll(ioScenario, ioFactories)
	if err != nil {
		return nil, fmt.Errorf("figures: fig1f io-bound: %w", err)
	}
	for i, pages := range Fig1fPoolSizes {
		r := ioResults[i]
		c := ioSUTs[i].MeasuredCounters()
		res.IOBound = append(res.IOBound, Fig1fIO{
			Pages:      pages,
			HitRatio:   c.HitRatio(),
			PagesRead:  c.PagesRead,
			Throughput: r.Throughput(),
			P50Ns:      r.Latency.Quantile(0.5),
		})
		res.Results[fmt.Sprintf("iobound/%d", pages)] = r
	}

	// Panel 3: write-heavy compaction, B+ tree vs LSM at the stock pool.
	writeScenario := core.Scenario{
		Name:        "fig1f-write-heavy",
		Seed:        seed + 200,
		InitialData: distgen.NewUniform(seed+201, 0, distgen.KeyDomain),
		InitialSize: scale.DataSize,
		IntervalNs:  scale.IntervalNs,
		Phases: []core.Phase{{
			Name: "write-heavy",
			Ops:  scale.Ops,
			Workload: workload.Spec{
				Mix:    workload.Mix{GetFrac: 0.2, PutFrac: 0.65, DeleteFrac: 0.05, ScanFrac: 0.1, ScanLimit: 100},
				Access: distgen.Static{G: distgen.NewUniform(seed+202, 0, distgen.KeyDomain)},
			},
		}},
	}
	writeSUTs := []*core.ColdStartSUT{
		core.ColdStart(core.NewDiskBTreeSUT(pager.DefaultPoolKnobs())),
		core.ColdStart(core.NewDiskKVSUT(kv.DefaultKnobs(), pager.DefaultPoolKnobs())),
	}
	writeFactories := make([]func() core.SUT, len(writeSUTs))
	for i, s := range writeSUTs {
		s := s
		writeFactories[i] = func() core.SUT { return s }
	}
	writeResults, err := runner.RunAll(writeScenario, writeFactories)
	if err != nil {
		return nil, fmt.Errorf("figures: fig1f write-heavy: %w", err)
	}
	for i, s := range writeSUTs {
		r := writeResults[i]
		c := s.MeasuredCounters()
		res.WriteHeavy = append(res.WriteHeavy, Fig1fWrite{
			SUT:             r.SUT,
			Throughput:      r.Throughput(),
			P99Ns:           r.Latency.Quantile(0.99),
			PagesWritten:    c.PagesWritten,
			Fsyncs:          c.Fsyncs,
			DirtyWritebacks: c.DirtyWritebacks,
			Evictions:       c.Evictions,
		})
		res.Results["write/"+r.SUT] = r
	}
	return res, nil
}

// RenderFig1f prints the three panels as tables — shared by cmd/figures
// and the golden test that pins the panel.
func RenderFig1f(w io.Writer, res *Fig1fResult) {
	fmt.Fprintln(w, "cold cache — eviction policy shootout (disk-btree, pool", Fig1fColdPages, "pages):")
	var rows [][]string
	for _, c := range res.Cold {
		rows = append(rows, []string{
			c.Policy,
			fmt.Sprintf("%.3f", c.HitRatio),
			fmt.Sprintf("%d", c.Hits),
			fmt.Sprintf("%d", c.Misses),
			fmt.Sprintf("%d", c.PagesRead),
			fmt.Sprintf("%.0f", c.Throughput),
			fmt.Sprintf("%.3fms", float64(c.P99Ns)/1e6),
		})
	}
	report.Table(w, []string{"policy", "hit ratio", "hits", "misses", "pages read", "ops/s", "p99"}, rows)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "io-bound — pool-size sweep (disk-btree, lru, uniform reads):")
	rows = rows[:0]
	for _, p := range res.IOBound {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Pages),
			fmt.Sprintf("%.3f", p.HitRatio),
			fmt.Sprintf("%d", p.PagesRead),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.1fus", float64(p.P50Ns)/1e3),
		})
	}
	report.Table(w, []string{"pool pages", "hit ratio", "pages read", "ops/s", "p50"}, rows)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "write-heavy — in-place paging vs log-structured compaction:")
	rows = rows[:0]
	for _, p := range res.WriteHeavy {
		rows = append(rows, []string{
			p.SUT,
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.3fms", float64(p.P99Ns)/1e6),
			fmt.Sprintf("%d", p.PagesWritten),
			fmt.Sprintf("%d", p.Fsyncs),
			fmt.Sprintf("%d", p.DirtyWritebacks),
			fmt.Sprintf("%d", p.Evictions),
		})
	}
	report.Table(w, []string{"sut", "ops/s", "p99", "pages written", "fsyncs", "writebacks", "evictions"}, rows)
	fmt.Fprintln(w)
}

// Fig1fCSV emits the three panels as one long-format CSV.
func Fig1fCSV(w io.Writer, res *Fig1fResult) {
	fmt.Fprintln(w, "panel,label,hit_ratio,pages_read,pages_written,fsyncs,evictions,throughput,p50_ns,p99_ns")
	for _, c := range res.Cold {
		fmt.Fprintf(w, "cold,%s,%.6f,%d,0,0,0,%.3f,0,%d\n",
			c.Policy, c.HitRatio, c.PagesRead, c.Throughput, c.P99Ns)
	}
	for _, p := range res.IOBound {
		fmt.Fprintf(w, "iobound,%d,%.6f,%d,0,0,0,%.3f,%d,0\n",
			p.Pages, p.HitRatio, p.PagesRead, p.Throughput, p.P50Ns)
	}
	for _, p := range res.WriteHeavy {
		fmt.Fprintf(w, "write,%s,0,0,%d,%d,%d,%.3f,0,%d\n",
			p.SUT, p.PagesWritten, p.Fsyncs, p.Evictions, p.Throughput, p.P99Ns)
	}
}
