package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/distgen"
	"repro/internal/kv"
	"repro/internal/sim"
	"repro/internal/tuner"
	"repro/internal/workload"
)

// Fig1dResult carries the throughput-per-cost curves of Figure 1d and the
// headline single-value metrics.
type Fig1dResult struct {
	// LearnedCPU/LearnedGPU are the auto-tuner curves across training
	// budgets, priced on each hardware tier.
	LearnedCPU cost.Curve
	LearnedGPU cost.Curve
	// Traditional is the manual-DBA step function.
	Traditional cost.Curve
	// CostToOutperformCPU is the training cost at which the CPU-tier
	// learned system beats the best tuned traditional configuration
	// (negative if never).
	CostToOutperformCPU float64
	CostToOutperformGPU float64
	// EvalWorkUnits is the training work charged per tuner evaluation.
	EvalWorkUnits int64
}

// kvEvaluator measures the virtual-time throughput of the kv store under
// the given knobs on a fixed mixed workload, also reporting the work a
// single evaluation costs (for training-cost accounting).
func kvEvaluator(scale Scale, seed uint64) (tuner.Evaluator, *int64) {
	var lastWork int64
	eval := func(k kv.Knobs) float64 {
		runner := newRunner(scale)
		scenario := core.Scenario{
			Name:        "fig1d-eval",
			Seed:        seed,
			InitialData: distgen.NewZipfKeys(seed+1, 1.05, 1<<22),
			InitialSize: scale.DataSize / 2,
			IntervalNs:  scale.IntervalNs,
			Phases: []core.Phase{{
				Name: "mixed",
				Ops:  scale.Ops / 2,
				Workload: workload.Spec{
					// Read-mostly with scans: rewards bloom filters,
					// tight compaction, and fine sparse indexes —
					// the directions the DBA script also pushes.
					Mix:    workload.Mix{GetFrac: 0.65, PutFrac: 0.2, ScanFrac: 0.15, ScanLimit: 50},
					Access: distgen.Static{G: distgen.NewZipfKeys(seed+2, 1.05, 1<<22)},
				},
			}},
		}
		res, err := runner.Run(scenario, core.NewKVSUT(k))
		if err != nil {
			return 0
		}
		// One evaluation's training work: the virtual time it consumed,
		// expressed in cost-model work units.
		lastWork = res.DurationNs / sim.DefaultCostModel().PerTrainNs
		return res.Throughput()
	}
	return eval, &lastWork
}

// Fig1dBudgets are the tuner evaluation budgets swept for the learned
// curve.
var Fig1dBudgets = []int{2, 5, 10, 20, 40, 80}

// EvalHoursCPU is the wall-clock cost charged per tuner evaluation on the
// CPU tier: each candidate configuration must replay a representative
// workload window long enough to measure it reliably (OtterTune-style
// tuners report ~5-30 minutes per observation; we charge 30 minutes). The
// in-simulator run stands in for that window; accelerated tiers divide the
// duration by their Speedup, modelling parallel cloud evaluation.
const EvalHoursCPU = 0.5

// Fig1d runs the cost experiment: auto-tuner training curves on CPU and
// GPU tiers versus the manual-DBA step function, under the default cost
// model ($120/h DBA).
func Fig1d(scale Scale, seed uint64) (*Fig1dResult, error) {
	eval, lastWork := kvEvaluator(scale, seed)
	model := cost.DefaultModel()

	// Sanity probe; also captures the per-evaluation simulated work.
	probe := eval(kv.DefaultKnobs())
	if probe <= 0 {
		return nil, fmt.Errorf("figures: fig1d evaluator produced zero throughput")
	}
	out := &Fig1dResult{EvalWorkUnits: *lastWork}

	for _, budget := range Fig1dBudgets {
		r := tuner.HillClimb(eval, kv.DefaultKnobs(), budget, seed+uint64(budget))
		label := fmt.Sprintf("budget=%d", budget)
		work := float64(budget)
		out.LearnedCPU = append(out.LearnedCPU, cost.CurvePoint{
			Dollars:    model.TrainingCost(work, EvalHoursCPU, cost.CPU),
			Throughput: r.BestScore,
			Label:      label + " (cpu)",
		})
		out.LearnedGPU = append(out.LearnedGPU, cost.CurvePoint{
			Dollars:    model.TrainingCost(work, EvalHoursCPU, cost.GPU),
			Throughput: r.BestScore,
			Label:      label + " (gpu)",
		})
	}

	for _, p := range tuner.DBACurve(eval, tuner.DBAScript()) {
		out.Traditional = append(out.Traditional, cost.CurvePoint{
			Dollars:    model.DBACost(p.Hours),
			Throughput: p.Score,
			Label:      p.AfterAction,
		})
	}

	out.CostToOutperformCPU = -1
	if d, _, err := cost.TrainingCostToOutperform(out.LearnedCPU, out.Traditional); err == nil {
		out.CostToOutperformCPU = d
	}
	out.CostToOutperformGPU = -1
	if d, _, err := cost.TrainingCostToOutperform(out.LearnedGPU, out.Traditional); err == nil {
		out.CostToOutperformGPU = d
	}
	return out, nil
}
