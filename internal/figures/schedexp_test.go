package figures

import "testing"

func TestSchedExperimentShape(t *testing.T) {
	res := SchedExperiment(SmallScale(), 41)
	for _, policy := range []string{"fifo", "oracle-sjf", "static-sjf", "learned-sjf"} {
		if res.MeanSojournNs[policy] <= 0 {
			t.Fatalf("%s: no sojourn measured", policy)
		}
		if res.P99SojournNs[policy] <= 0 {
			t.Fatalf("%s: no p99", policy)
		}
	}
	// Structural ordering on the drifting trace:
	// oracle <= learned < static (stale) and oracle <= learned < fifo.
	oracle := res.MeanSojournNs["oracle-sjf"]
	learned := res.MeanSojournNs["learned-sjf"]
	static := res.MeanSojournNs["static-sjf"]
	fifo := res.MeanSojournNs["fifo"]
	if oracle > learned {
		t.Fatalf("oracle (%v) above learned (%v)", oracle, learned)
	}
	if learned >= static {
		t.Fatalf("learned (%v) not below stale static (%v)", learned, static)
	}
	if learned >= fifo {
		t.Fatalf("learned (%v) not below fifo (%v)", learned, fifo)
	}
	if res.TrainWork["learned-sjf"] <= 0 {
		t.Fatal("learned policy reported no training work")
	}
	if res.TrainWork["static-sjf"] != 0 {
		t.Fatal("static policy reported online training work")
	}
}
