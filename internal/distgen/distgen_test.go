package distgen

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestUniformBounds(t *testing.T) {
	g := NewUniform(1, 100, 200)
	for _, k := range g.Keys(10000) {
		if k < 100 || k >= 200 {
			t.Fatalf("uniform key %d out of [100,200)", k)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := NewUniform(9, 0, KeyDomain).Keys(100)
	b := NewUniform(9, 0, KeyDomain).Keys(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different keys")
		}
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi <= lo")
		}
	}()
	NewUniform(1, 5, 5)
}

func TestNormalCentering(t *testing.T) {
	mu := float64(KeyDomain / 2)
	g := NewNormal(2, mu, 1e12)
	var sum float64
	ks := g.Keys(20000)
	for _, k := range ks {
		sum += float64(k)
	}
	mean := sum / float64(len(ks))
	if mean < mu*0.99 || mean > mu*1.01 {
		t.Fatalf("normal mean %v, want ~%v", mean, mu)
	}
}

func TestLognormalHeavyTail(t *testing.T) {
	g := NewLognormal(3, 0, 2, 1e6)
	ks := g.Keys(20000)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	median := float64(ks[len(ks)/2])
	var sum float64
	for _, k := range ks {
		sum += float64(k)
	}
	mean := sum / float64(len(ks))
	if mean < 2*median {
		t.Fatalf("lognormal not right-skewed: mean=%v median=%v", mean, median)
	}
}

func TestZipfKeysRepeatHotKeys(t *testing.T) {
	g := NewZipfKeys(4, 1.1, 10000)
	counts := make(map[uint64]int)
	for _, k := range g.Keys(50000) {
		counts[k]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Fatalf("zipf hottest key only %d/50000 draws", max)
	}
}

func TestClusteredConcentration(t *testing.T) {
	g := NewClustered(5, 10, 1e9)
	ks := g.Keys(20000)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	// With 10 tight clusters, the 10 largest gaps should account for most
	// of the domain span.
	type gap struct{ size uint64 }
	gaps := make([]uint64, 0, len(ks)-1)
	for i := 1; i < len(ks); i++ {
		gaps = append(gaps, ks[i]-ks[i-1])
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] > gaps[j] })
	var top, total uint64
	for i, g := range gaps {
		total += g
		if i < 10 {
			top += g
		}
	}
	if float64(top)/float64(total) < 0.9 {
		t.Fatalf("clusters not tight: top-10 gap share %v", float64(top)/float64(total))
	}
}

func TestSegmentedCoversBounds(t *testing.T) {
	g := NewSegmented(6, 8)
	for _, k := range g.Keys(10000) {
		if k >= KeyDomain {
			t.Fatalf("segmented key %d out of domain", k)
		}
	}
}

func TestSequentialStrictlyIncreasing(t *testing.T) {
	g := NewSequential(7, 100, 10)
	ks := g.Keys(10000)
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("sequential keys not increasing at %d", i)
		}
		if ks[i]-ks[i-1] > 10 {
			t.Fatalf("gap %d exceeds max", ks[i]-ks[i-1])
		}
	}
}

func TestMixtureUsesAllComponents(t *testing.T) {
	lo := NewUniform(1, 0, 1000)
	hi := NewUniform(2, KeyDomain-1000, KeyDomain)
	m := NewMixture(8, []Generator{lo, hi}, []float64{0.5, 0.5})
	var nLo, nHi int
	for _, k := range m.Keys(1000) {
		if k < 1000 {
			nLo++
		} else {
			nHi++
		}
	}
	if nLo < 300 || nHi < 300 {
		t.Fatalf("mixture imbalance: lo=%d hi=%d", nLo, nHi)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := map[string]func(){
		"empty":    func() { NewMixture(1, nil, nil) },
		"mismatch": func() { NewMixture(1, []Generator{NewUniform(1, 0, 10)}, []float64{0.5, 0.5}) },
		"negative": func() { NewMixture(1, []Generator{NewUniform(1, 0, 10)}, []float64{-1}) },
		"zero-sum": func() { NewMixture(1, []Generator{NewUniform(1, 0, 10)}, []float64{0}) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestUniqueKeysDistinctSorted(t *testing.T) {
	g := NewZipfKeys(9, 1.3, 500) // heavy duplication forces retries
	ks := UniqueKeys(g, 400)
	if len(ks) != 400 {
		t.Fatalf("got %d keys", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("keys not strictly ascending at %d", i)
		}
	}
}

func TestUniqueKeysTinySupport(t *testing.T) {
	// Support of size 5; ask for 20 — padding must kick in.
	g := NewUniform(10, 0, 5)
	ks := UniqueKeys(g, 20)
	if len(ks) != 20 {
		t.Fatalf("got %d keys", len(ks))
	}
	seen := map[uint64]bool{}
	for _, k := range ks {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
}

func TestGeneratorNamesDistinct(t *testing.T) {
	gens := []Generator{
		NewUniform(1, 0, KeyDomain),
		NewNormal(1, 1e15, 1e12),
		NewLognormal(1, 0, 2, 1e6),
		NewZipfKeys(1, 1.1, 1000),
		NewClustered(1, 10, 1e9),
		NewSegmented(1, 8),
		NewSequential(1, 0, 10),
		NewEmail(1),
	}
	seen := map[string]bool{}
	for _, g := range gens {
		n := g.Name()
		if n == "" || seen[n] {
			t.Fatalf("duplicate or empty name %q", n)
		}
		seen[n] = true
	}
}

func TestEmailAddressesWellFormed(t *testing.T) {
	g := NewEmail(11)
	for i := 0; i < 1000; i++ {
		a := g.Address()
		at := strings.IndexByte(a, '@')
		if at <= 0 || at == len(a)-1 {
			t.Fatalf("malformed address %q", a)
		}
		domain := a[at+1:]
		found := false
		for _, d := range DefaultDomains {
			if domain == d {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("unknown domain in %q", a)
		}
	}
}

func TestEmailKeysSkewedByFirstLetter(t *testing.T) {
	g := NewEmail(12)
	ks := g.Keys(20000)
	// First byte of the key = first letter. 's' and 'm' lead the frequency
	// order, so their share must beat uniform (1/26 each).
	counts := map[byte]int{}
	for _, k := range ks {
		counts[byte(k>>56)]++
	}
	if counts['s']+counts['m'] < len(ks)/8 {
		t.Fatalf("first-letter skew missing: s=%d m=%d", counts['s'], counts['m'])
	}
}

func TestStringKeyOrderPreserving(t *testing.T) {
	f := func(a, b string) bool {
		ka, kb := StringKey(a), StringKey(b)
		a8, b8 := a, b
		if len(a8) > 8 {
			a8 = a8[:8]
		}
		if len(b8) > 8 {
			b8 = b8[:8]
		}
		switch {
		case a8 < b8:
			return ka < kb
		case a8 > b8:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedIsSorted(t *testing.T) {
	ks := Sorted(NewZipfKeys(13, 1.1, 1000), 5000)
	if !sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] }) {
		t.Fatal("Sorted output unsorted")
	}
	if len(ks) != 5000 {
		t.Fatalf("Sorted returned %d keys", len(ks))
	}
}
