package distgen

import (
	"testing"
)

func countBelow(ks []uint64, bound uint64) int {
	n := 0
	for _, k := range ks {
		if k < bound {
			n++
		}
	}
	return n
}

func TestStaticIgnoresProgress(t *testing.T) {
	d := Static{G: NewUniform(1, 0, 1000)}
	for _, p := range []float64{0, 0.5, 1} {
		for _, k := range d.KeysAt(p, 1000) {
			if k >= 1000 {
				t.Fatalf("static drift leaked key %d", k)
			}
		}
	}
}

func TestBlendEndpoints(t *testing.T) {
	lo := NewUniform(1, 0, 1000)
	hi := NewUniform(2, KeyDomain/2, KeyDomain/2+1000)
	b := NewBlend(3, lo, hi)
	if got := countBelow(b.KeysAt(0, 2000), 1000); got < 1990 {
		t.Fatalf("progress 0 should be ~all Start, got %d/2000", got)
	}
	if got := countBelow(b.KeysAt(1, 2000), 1000); got > 10 {
		t.Fatalf("progress 1 should be ~all End, got %d/2000 from Start", got)
	}
}

func TestBlendMidpointMixes(t *testing.T) {
	lo := NewUniform(1, 0, 1000)
	hi := NewUniform(2, KeyDomain/2, KeyDomain/2+1000)
	b := NewBlend(3, lo, hi)
	got := countBelow(b.KeysAt(0.5, 4000), 1000)
	if got < 1600 || got > 2400 {
		t.Fatalf("midpoint blend share %d/4000, want ~2000", got)
	}
}

func TestBlendClampsProgress(t *testing.T) {
	lo := NewUniform(1, 0, 1000)
	hi := NewUniform(2, 2000, 3000)
	b := NewBlend(3, lo, hi)
	if got := countBelow(b.KeysAt(-1, 500), 1000); got != 500 {
		t.Fatalf("progress < 0 must clamp to Start, got %d/500", got)
	}
	if got := countBelow(b.KeysAt(2, 500), 1000); got != 0 {
		t.Fatalf("progress > 1 must clamp to End, got %d from Start", got)
	}
}

func TestAbruptSwitch(t *testing.T) {
	lo := NewUniform(1, 0, 1000)
	hi := NewUniform(2, 2000, 3000)
	a := NewAbrupt(3, lo, hi, 0.5)
	if got := countBelow(a.KeysAt(0.49, 1000), 1000); got != 1000 {
		t.Fatalf("pre-switch draws from End: %d", 1000-got)
	}
	if got := countBelow(a.KeysAt(0.51, 1000), 1000); got != 0 {
		t.Fatalf("post-switch draws from Start: %d", got)
	}
}

func TestMovingHotspotMoves(t *testing.T) {
	m := NewMovingHotspot(4, 0.95, 0.05, 1)
	early := m.KeysAt(0.1, 5000)
	late := m.KeysAt(0.9, 5000)
	medianOf := func(ks []uint64) uint64 {
		s := append([]uint64(nil), ks...)
		for i := 1; i < len(s); i++ { // insertion sort is fine for medians via sort pkg instead
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[len(s)/2]
	}
	me, ml := medianOf(early[:501]), medianOf(late[:501])
	if ml <= me {
		t.Fatalf("hotspot did not move forward: early median %d, late %d", me, ml)
	}
}

func TestMovingHotspotHotMass(t *testing.T) {
	m := NewMovingHotspot(5, 0.9, 0.02, 1)
	ks := m.KeysAt(0.25, 10000)
	winLo := uint64(0.25 * float64(KeyDomain))
	winHi := winLo + uint64(0.02*float64(KeyDomain))
	in := 0
	for _, k := range ks {
		if k >= winLo && k < winHi {
			in++
		}
	}
	if float64(in)/float64(len(ks)) < 0.8 {
		t.Fatalf("hot window mass %v, want >= 0.8", float64(in)/float64(len(ks)))
	}
}

func TestMovingHotspotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad params")
		}
	}()
	NewMovingHotspot(1, 2, 0.1, 1)
}

func TestGrowingSkewSharpens(t *testing.T) {
	g := NewGrowingSkew(6, 1.5, 10000)
	distinct := func(p float64) int {
		seen := map[uint64]bool{}
		for _, k := range g.KeysAt(p, 20000) {
			seen[k] = true
		}
		return len(seen)
	}
	d0, d1 := distinct(0), distinct(1)
	if d1 >= d0 {
		t.Fatalf("skew did not grow: distinct at p=0 %d, p=1 %d", d0, d1)
	}
}

func TestScheduleSegments(t *testing.T) {
	a := Static{G: NewUniform(1, 0, 1000)}
	b := Static{G: NewUniform(2, 2000, 3000)}
	s := NewSchedule(a, b)
	if got := countBelow(s.KeysAt(0.25, 500), 1000); got != 500 {
		t.Fatalf("first half should use segment A, got %d", got)
	}
	if got := countBelow(s.KeysAt(0.75, 500), 1000); got != 0 {
		t.Fatalf("second half should use segment B, got %d from A", got)
	}
	// progress == 1 must not index out of range
	s.KeysAt(1, 10)
	s.KeysAt(-0.5, 10)
}

func TestSchedulePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty schedule")
		}
	}()
	NewSchedule()
}

func TestReplay(t *testing.T) {
	r := NewReplay([]uint64{10, 20, 30})
	got := r.KeysAt(0.5, 5)
	want := []uint64{10, 20, 30, 10, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if r.Position() != 5 {
		t.Fatalf("position = %d", r.Position())
	}
	// Progress is irrelevant; the stream continues where it left off.
	if r.KeysAt(0, 1)[0] != 30 {
		t.Fatal("replay did not continue")
	}
}

func TestReplayPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty trace")
		}
	}()
	NewReplay(nil)
}

func TestDriftNames(t *testing.T) {
	ds := []Drift{
		Static{G: NewUniform(1, 0, 10)},
		NewBlend(1, NewUniform(1, 0, 10), NewUniform(2, 0, 10)),
		NewAbrupt(1, NewUniform(1, 0, 10), NewUniform(2, 0, 10), 0.5),
		NewMovingHotspot(1, 0.9, 0.1, 2),
		NewGrowingSkew(1, 1.2, 100),
		NewSchedule(Static{G: NewUniform(1, 0, 10)}),
		NewReplay([]uint64{1}),
	}
	for _, d := range ds {
		if d.Name() == "" {
			t.Fatal("empty drift name")
		}
	}
}
