package distgen

import (
	"fmt"

	"repro/internal/stats"
)

// Drift produces keys from a distribution that changes over logical time.
// Progress is a number in [0, 1]: 0 is the start of the benchmark phase and
// 1 the end. The benchmark runner advances progress as queries complete, so
// the data/workload distribution evolves during a single run — the core
// requirement the paper derives in Lesson 1.
type Drift interface {
	// Name identifies the drift process for reports.
	Name() string
	// KeysAt returns n keys drawn from the distribution as it exists at
	// the given progress in [0, 1].
	KeysAt(progress float64, n int) []uint64
}

// DriftFiller is implemented by drifts that can write keys into a
// caller-provided buffer. FillAt(p, out) consumes the same RNG stream as
// KeysAt(p, len(out)), so the two are interchangeable without changing
// determinism; it exists so per-op key draws on the benchmark hot path
// allocate nothing.
type DriftFiller interface {
	FillAt(progress float64, out []uint64)
}

// FillAt writes len(out) keys from d at the given progress into out, using
// the drift's allocation-free path when it has one.
func FillAt(d Drift, progress float64, out []uint64) {
	if f, ok := d.(DriftFiller); ok {
		f.FillAt(progress, out)
		return
	}
	copy(out, d.KeysAt(progress, len(out)))
}

// Static adapts a fixed Generator to the Drift interface (no change over
// time). It is the baseline Lesson-1 ablations compare against.
type Static struct{ G Generator }

// Name implements Drift.
func (s Static) Name() string { return "static:" + s.G.Name() }

// KeysAt implements Drift.
func (s Static) KeysAt(_ float64, n int) []uint64 { return s.G.Keys(n) }

// FillAt implements DriftFiller.
func (s Static) FillAt(_ float64, out []uint64) { Fill(s.G, out) }

// Blend interpolates between a start and an end distribution: at progress p
// each key comes from End with probability shape(p) and from Start
// otherwise. With the default linear shape this is the paper's "slow
// transition"; with a step shape it is the "abrupt transition" (§V-B).
type Blend struct {
	Start, End Generator
	// Shape maps progress to the probability of drawing from End. Nil
	// means the identity (linear blend).
	Shape func(p float64) float64
	rng   *stats.RNG
	label string
}

// NewBlend returns a linear blend from start to end.
func NewBlend(seed uint64, start, end Generator) *Blend {
	return &Blend{Start: start, End: end, rng: stats.NewRNG(seed), label: "linear"}
}

// NewAbrupt returns a blend that switches instantaneously from start to end
// when progress crosses at (in [0,1]).
func NewAbrupt(seed uint64, start, end Generator, at float64) *Blend {
	return &Blend{
		Start: start, End: end,
		Shape: func(p float64) float64 {
			if p < at {
				return 0
			}
			return 1
		},
		rng:   stats.NewRNG(seed),
		label: fmt.Sprintf("abrupt@%.2f", at),
	}
}

// Name implements Drift.
func (b *Blend) Name() string {
	return fmt.Sprintf("blend[%s](%s->%s)", b.label, b.Start.Name(), b.End.Name())
}

// KeysAt implements Drift.
func (b *Blend) KeysAt(p float64, n int) []uint64 {
	out := make([]uint64, n)
	b.FillAt(p, out)
	return out
}

// FillAt implements DriftFiller.
func (b *Blend) FillAt(p float64, out []uint64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	w := p
	if b.Shape != nil {
		w = b.Shape(p)
	}
	for i := range out {
		if b.rng.Float64() < w {
			Fill(b.End, out[i:i+1])
		} else {
			Fill(b.Start, out[i:i+1])
		}
	}
}

// MovingHotspot concentrates a fraction of accesses on a window of the key
// domain that slides as progress advances — the classic diurnal "hot set
// moves with the sun" pattern reported for production KV stores.
type MovingHotspot struct {
	// HotFraction of draws land in the hot window (e.g. 0.9).
	HotFraction float64
	// WindowSize is the hot window width as a fraction of the domain.
	WindowSize float64
	// Laps is how many full domain traversals the window makes as
	// progress goes 0 -> 1.
	Laps float64
	rng  *stats.RNG
}

// NewMovingHotspot returns a moving-hotspot drift over the whole key domain.
func NewMovingHotspot(seed uint64, hotFraction, windowSize, laps float64) *MovingHotspot {
	if hotFraction < 0 || hotFraction > 1 || windowSize <= 0 || windowSize > 1 {
		panic("distgen: NewMovingHotspot parameter out of range")
	}
	return &MovingHotspot{
		HotFraction: hotFraction, WindowSize: windowSize, Laps: laps,
		rng: stats.NewRNG(seed),
	}
}

// Name implements Drift.
func (m *MovingHotspot) Name() string {
	return fmt.Sprintf("moving-hotspot(hot=%.2f,win=%.2f,laps=%.1f)",
		m.HotFraction, m.WindowSize, m.Laps)
}

// KeysAt implements Drift.
func (m *MovingHotspot) KeysAt(p float64, n int) []uint64 {
	out := make([]uint64, n)
	m.FillAt(p, out)
	return out
}

// FillAt implements DriftFiller.
func (m *MovingHotspot) FillAt(p float64, out []uint64) {
	domain := float64(KeyDomain)
	start := p * m.Laps
	start -= float64(int(start)) // fractional lap position
	winLo := start * domain
	winSpan := m.WindowSize * domain
	for i := range out {
		if m.rng.Float64() < m.HotFraction {
			x := winLo + m.rng.Float64()*winSpan
			if x >= domain {
				x -= domain // wrap around
			}
			out[i] = uint64(x)
		} else {
			out[i] = m.rng.Uint64() % KeyDomain
		}
	}
}

// GrowingSkew starts uniform and sharpens into a Zipf distribution whose
// theta grows with progress — the paper's "growing data skew over time".
type GrowingSkew struct {
	MaxTheta float64
	Universe uint64
	seed     uint64
	rng      *stats.RNG
	// cache the most recent sampler; rebuilding per call would discard
	// too much rng state and is O(1) anyway, but we avoid reallocating
	// for repeated same-progress calls.
	lastTheta float64
	sampler   *stats.ScrambledZipf
	uniform   *Uniform
}

// NewGrowingSkew returns a drift whose skew grows from ~0 to maxTheta.
func NewGrowingSkew(seed uint64, maxTheta float64, universe uint64) *GrowingSkew {
	return &GrowingSkew{
		MaxTheta: maxTheta, Universe: universe, seed: seed,
		rng:     stats.NewRNG(seed),
		uniform: NewUniform(seed+1, 0, KeyDomain),
	}
}

// Name implements Drift.
func (g *GrowingSkew) Name() string {
	return fmt.Sprintf("growing-skew(max=%.2f)", g.MaxTheta)
}

// KeysAt implements Drift.
func (g *GrowingSkew) KeysAt(p float64, n int) []uint64 {
	out := make([]uint64, n)
	g.FillAt(p, out)
	return out
}

// FillAt implements DriftFiller.
func (g *GrowingSkew) FillAt(p float64, out []uint64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	theta := 0.05 + p*(g.MaxTheta-0.05)
	if theta < 0.05 {
		theta = 0.05
	}
	if g.sampler == nil || theta != g.lastTheta {
		// Quantize theta so the sampler is rebuilt at most ~100 times.
		theta = float64(int(theta*100)) / 100
		if theta <= 0 {
			theta = 0.05
		}
		g.sampler = stats.NewScrambledZipf(stats.NewRNG(g.seed^uint64(theta*1000)), theta, g.Universe)
		g.lastTheta = theta
	}
	stride := KeyDomain / g.Universe
	if stride == 0 {
		stride = 1
	}
	for i := range out {
		out[i] = g.sampler.Next() * stride
	}
}

// Replay feeds a recorded key sequence as a Drift source, wrapping around
// when exhausted. It is how recorded or synthesized traces (package synth)
// are driven through the benchmark; progress is ignored because the trace
// itself encodes any drift.
type Replay struct {
	keys []uint64
	idx  int
}

// NewReplay returns a replay source over the trace (which must be
// non-empty). The trace is not copied; callers must not mutate it.
func NewReplay(trace []uint64) *Replay {
	if len(trace) == 0 {
		panic("distgen: NewReplay with empty trace")
	}
	return &Replay{keys: trace}
}

// Name implements Drift.
func (r *Replay) Name() string { return fmt.Sprintf("replay(%d keys)", len(r.keys)) }

// KeysAt implements Drift.
func (r *Replay) KeysAt(_ float64, n int) []uint64 {
	out := make([]uint64, n)
	r.FillAt(0, out)
	return out
}

// FillAt implements DriftFiller.
func (r *Replay) FillAt(_ float64, out []uint64) {
	for i := range out {
		out[i] = r.keys[r.idx%len(r.keys)]
		r.idx++
	}
}

// Position reports how many keys have been consumed (wrap-around included).
func (r *Replay) Position() int { return r.idx }

// Schedule sequences multiple Drift segments, each occupying an equal share
// of progress. It lets a scenario chain, e.g., static -> abrupt shift ->
// moving hotspot in one run ("define how many different workload and data
// distributions to use and in which order", §V-B).
type Schedule struct {
	Segments []Drift
}

// NewSchedule returns a schedule over the given segments.
func NewSchedule(segments ...Drift) *Schedule {
	if len(segments) == 0 {
		panic("distgen: NewSchedule with no segments")
	}
	return &Schedule{Segments: segments}
}

// Name implements Drift.
func (s *Schedule) Name() string { return fmt.Sprintf("schedule(%d segments)", len(s.Segments)) }

// KeysAt implements Drift.
func (s *Schedule) KeysAt(p float64, n int) []uint64 {
	out := make([]uint64, n)
	s.FillAt(p, out)
	return out
}

// FillAt implements DriftFiller.
func (s *Schedule) FillAt(p float64, out []uint64) {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 0.999999
	}
	k := len(s.Segments)
	idx := int(p * float64(k))
	local := p*float64(k) - float64(idx)
	FillAt(s.Segments[idx], local, out)
}
