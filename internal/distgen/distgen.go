// Package distgen generates synthetic datasets whose key distributions
// imitate the real-world shapes the paper calls for (§V-C): skewed,
// clustered, segmented, and drifting distributions, alongside uniform
// baselines that the dataset-quality tool is supposed to penalize.
//
// Every generator is deterministic given its seed, produces sorted or
// unsorted uint64 keys on demand, and exposes its CDF family so the
// similarity estimators (KS, MMD) can position distributions relative to a
// baseline for the paper's Figure 1a.
package distgen

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// KeyDomain is the inclusive upper bound used by generators that need a
// bounded key universe. 2^60 leaves headroom for drift shifts without
// overflow.
const KeyDomain = uint64(1) << 60

// Generator produces synthetic keys from a fixed distribution.
type Generator interface {
	// Name identifies the distribution family and parameters, e.g.
	// "zipf(theta=1.1)". Names are used in reports and as registry keys.
	Name() string
	// Keys returns n keys drawn from the distribution. Keys may repeat;
	// callers that need a set should use UniqueKeys.
	Keys(n int) []uint64
}

// Filler is implemented by generators that can write keys into a
// caller-provided buffer, avoiding the per-call allocation of Keys. The
// RNG stream consumed by Fill(out) is identical to Keys(len(out)), so the
// two are interchangeable without changing determinism.
type Filler interface {
	Fill(out []uint64)
}

// Fill writes len(out) keys from g into out, using the generator's
// allocation-free path when it has one and falling back to Keys otherwise.
func Fill(g Generator, out []uint64) {
	if f, ok := g.(Filler); ok {
		f.Fill(out)
		return
	}
	copy(out, g.Keys(len(out)))
}

// UniqueKeys draws from g until n distinct keys have been collected and
// returns them sorted ascending. It gives up and pads deterministically if
// the distribution's support is too small, so it always returns exactly n
// keys.
func UniqueKeys(g Generator, n int) []uint64 {
	seen := make(map[uint64]struct{}, n)
	out := make([]uint64, 0, n)
	attempts := 0
	for len(out) < n && attempts < 50 {
		for _, k := range g.Keys(n) {
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, k)
				if len(out) == n {
					break
				}
			}
		}
		attempts++
	}
	// Deterministic padding for tiny-support distributions.
	next := uint64(1)
	for len(out) < n {
		if _, dup := seen[next]; !dup {
			seen[next] = struct{}{}
			out = append(out, next)
		}
		next++
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Uniform draws keys uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi uint64
	rng    *stats.RNG
}

// NewUniform returns a uniform generator over [lo, hi).
func NewUniform(seed uint64, lo, hi uint64) *Uniform {
	if hi <= lo {
		panic("distgen: NewUniform with hi <= lo")
	}
	return &Uniform{Lo: lo, Hi: hi, rng: stats.NewRNG(seed)}
}

// Name implements Generator.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform[%d,%d)", u.Lo, u.Hi) }

// Keys implements Generator.
func (u *Uniform) Keys(n int) []uint64 {
	out := make([]uint64, n)
	u.Fill(out)
	return out
}

// Fill implements Filler.
func (u *Uniform) Fill(out []uint64) {
	span := u.Hi - u.Lo
	for i := range out {
		out[i] = u.Lo + u.rng.Uint64()%span
	}
}

// Normal draws keys from a (truncated) normal distribution, rounded to
// integers and clamped to [0, KeyDomain).
type Normal struct {
	Mu, Sigma float64
	rng       *stats.RNG
}

// NewNormal returns a normal generator with the given mean and deviation.
func NewNormal(seed uint64, mu, sigma float64) *Normal {
	if sigma <= 0 {
		panic("distgen: NewNormal with non-positive sigma")
	}
	return &Normal{Mu: mu, Sigma: sigma, rng: stats.NewRNG(seed)}
}

// Name implements Generator.
func (g *Normal) Name() string { return fmt.Sprintf("normal(mu=%.3g,sigma=%.3g)", g.Mu, g.Sigma) }

// Keys implements Generator.
func (g *Normal) Keys(n int) []uint64 {
	out := make([]uint64, n)
	g.Fill(out)
	return out
}

// Fill implements Filler.
func (g *Normal) Fill(out []uint64) {
	for i := range out {
		out[i] = clampToDomain(g.Mu + g.Sigma*g.rng.NormFloat64())
	}
}

// Lognormal draws keys whose logarithm is normal — a heavy right tail that
// mimics, e.g., value sizes and inter-arrival gaps in production traces.
type Lognormal struct {
	Mu, Sigma float64 // parameters of the underlying normal
	Scale     float64 // multiplier applied after exponentiation
	rng       *stats.RNG
}

// NewLognormal returns a lognormal generator.
func NewLognormal(seed uint64, mu, sigma, scale float64) *Lognormal {
	if sigma <= 0 || scale <= 0 {
		panic("distgen: NewLognormal with non-positive sigma or scale")
	}
	return &Lognormal{Mu: mu, Sigma: sigma, Scale: scale, rng: stats.NewRNG(seed)}
}

// Name implements Generator.
func (g *Lognormal) Name() string {
	return fmt.Sprintf("lognormal(mu=%.3g,sigma=%.3g)", g.Mu, g.Sigma)
}

// Keys implements Generator.
func (g *Lognormal) Keys(n int) []uint64 {
	out := make([]uint64, n)
	g.Fill(out)
	return out
}

// Fill implements Filler.
func (g *Lognormal) Fill(out []uint64) {
	for i := range out {
		out[i] = clampToDomain(g.Scale * exp(g.Mu+g.Sigma*g.rng.NormFloat64()))
	}
}

// ZipfKeys draws keys whose *frequency* follows a Zipf law over a scrambled
// universe — hot keys are scattered across the domain, as in YCSB.
type ZipfKeys struct {
	Theta    float64
	Universe uint64
	sampler  *stats.ScrambledZipf
}

// NewZipfKeys returns a Zipf-frequency generator over a universe of the
// given size.
func NewZipfKeys(seed uint64, theta float64, universe uint64) *ZipfKeys {
	return &ZipfKeys{
		Theta:    theta,
		Universe: universe,
		sampler:  stats.NewScrambledZipf(stats.NewRNG(seed), theta, universe),
	}
}

// Name implements Generator.
func (g *ZipfKeys) Name() string { return fmt.Sprintf("zipf(theta=%.3g,u=%d)", g.Theta, g.Universe) }

// Keys implements Generator.
func (g *ZipfKeys) Keys(n int) []uint64 {
	out := make([]uint64, n)
	g.Fill(out)
	return out
}

// Fill implements Filler.
func (g *ZipfKeys) Fill(out []uint64) {
	stride := KeyDomain / g.Universe
	if stride == 0 {
		stride = 1
	}
	for i := range out {
		out[i] = g.sampler.Next() * stride
	}
}

// Clustered places keys in tight gaussian clusters around uniformly chosen
// centers, imitating geographic datasets such as OpenStreetMap cell IDs
// (the "osm" dataset of the SOSD benchmark).
type Clustered struct {
	NumClusters int
	Spread      float64 // sigma within a cluster, in key units
	centers     []float64
	rng         *stats.RNG
}

// NewClustered returns a clustered generator with the given cluster count
// and intra-cluster spread.
func NewClustered(seed uint64, numClusters int, spread float64) *Clustered {
	if numClusters <= 0 {
		panic("distgen: NewClustered with non-positive cluster count")
	}
	rng := stats.NewRNG(seed)
	centers := make([]float64, numClusters)
	for i := range centers {
		centers[i] = rng.Float64() * float64(KeyDomain)
	}
	sort.Float64s(centers)
	return &Clustered{NumClusters: numClusters, Spread: spread, centers: centers, rng: rng}
}

// Name implements Generator.
func (g *Clustered) Name() string {
	return fmt.Sprintf("clustered(k=%d,spread=%.3g)", g.NumClusters, g.Spread)
}

// Keys implements Generator.
func (g *Clustered) Keys(n int) []uint64 {
	out := make([]uint64, n)
	g.Fill(out)
	return out
}

// Fill implements Filler.
func (g *Clustered) Fill(out []uint64) {
	for i := range out {
		c := g.centers[g.rng.Intn(len(g.centers))]
		out[i] = clampToDomain(c + g.Spread*g.rng.NormFloat64())
	}
}

// Segmented produces keys from piecewise-linear CDF segments with very
// different densities, imitating the "books" dataset (Amazon sales ranks)
// where ID density varies by region. Hard for a single linear model, easy
// for a segment-aware learned index.
type Segmented struct {
	Segments int
	bounds   []uint64  // len Segments+1, ascending
	weights  []float64 // cumulative probability per segment
	rng      *stats.RNG
}

// NewSegmented returns a generator with the given number of random-density
// segments.
func NewSegmented(seed uint64, segments int) *Segmented {
	if segments <= 0 {
		panic("distgen: NewSegmented with non-positive segments")
	}
	rng := stats.NewRNG(seed)
	bounds := make([]uint64, segments+1)
	bounds[0] = 0
	bounds[segments] = KeyDomain
	for i := 1; i < segments; i++ {
		bounds[i] = rng.Uint64() % KeyDomain
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	// Random segment masses, skewed so a few segments dominate.
	raw := make([]float64, segments)
	var total float64
	for i := range raw {
		raw[i] = rng.ExpFloat64() * rng.ExpFloat64() // heavy-tailed mass
		total += raw[i]
	}
	weights := make([]float64, segments)
	cum := 0.0
	for i := range raw {
		cum += raw[i] / total
		weights[i] = cum
	}
	weights[segments-1] = 1
	return &Segmented{Segments: segments, bounds: bounds, weights: weights, rng: rng}
}

// Name implements Generator.
func (g *Segmented) Name() string { return fmt.Sprintf("segmented(s=%d)", g.Segments) }

// Keys implements Generator.
func (g *Segmented) Keys(n int) []uint64 {
	out := make([]uint64, n)
	g.Fill(out)
	return out
}

// Fill implements Filler.
func (g *Segmented) Fill(out []uint64) {
	for i := range out {
		u := g.rng.Float64()
		seg := sort.SearchFloat64s(g.weights, u)
		if seg >= g.Segments {
			seg = g.Segments - 1
		}
		lo, hi := g.bounds[seg], g.bounds[seg+1]
		if hi <= lo {
			out[i] = lo
			continue
		}
		out[i] = lo + g.rng.Uint64()%(hi-lo)
	}
}

// Sequential produces strictly increasing keys with a configurable random
// gap, imitating auto-increment IDs and timestamp keys — the friendliest
// case for a learned index.
type Sequential struct {
	next   uint64
	MaxGap uint64
	rng    *stats.RNG
}

// NewSequential returns a sequential generator starting at start with gaps
// uniform in [1, maxGap].
func NewSequential(seed uint64, start, maxGap uint64) *Sequential {
	if maxGap == 0 {
		maxGap = 1
	}
	return &Sequential{next: start, MaxGap: maxGap, rng: stats.NewRNG(seed)}
}

// Name implements Generator.
func (g *Sequential) Name() string { return fmt.Sprintf("sequential(gap<=%d)", g.MaxGap) }

// Keys implements Generator.
func (g *Sequential) Keys(n int) []uint64 {
	out := make([]uint64, n)
	g.Fill(out)
	return out
}

// Fill implements Filler.
func (g *Sequential) Fill(out []uint64) {
	for i := range out {
		g.next += 1 + g.rng.Uint64()%g.MaxGap
		out[i] = g.next
	}
}

// Mixture draws from component generators with fixed probabilities. It is
// the building block for gradual distribution transitions: a drifting
// workload interpolates the mixture weight from 0 to 1.
type Mixture struct {
	Components []Generator
	Weights    []float64 // must sum to ~1
	rng        *stats.RNG
}

// NewMixture returns a mixture of components with the given weights.
func NewMixture(seed uint64, components []Generator, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("distgen: NewMixture components/weights mismatch")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("distgen: NewMixture negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("distgen: NewMixture zero total weight")
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	return &Mixture{Components: components, Weights: norm, rng: stats.NewRNG(seed)}
}

// Name implements Generator.
func (g *Mixture) Name() string {
	return fmt.Sprintf("mixture(%d components)", len(g.Components))
}

// Keys implements Generator.
func (g *Mixture) Keys(n int) []uint64 {
	out := make([]uint64, n)
	g.Fill(out)
	return out
}

// Fill implements Filler. Each key costs one Float64 from the mixture RNG
// plus one draw from the chosen component — the same stream Keys consumed
// when it drew Keys(1) per element.
func (g *Mixture) Fill(out []uint64) {
	for i := range out {
		u := g.rng.Float64()
		idx := 0
		cum := 0.0
		for j, w := range g.Weights {
			cum += w
			if u < cum {
				idx = j
				break
			}
			idx = j
		}
		Fill(g.Components[idx], out[i:i+1])
	}
}

func clampToDomain(x float64) uint64 {
	if x < 0 {
		return 0
	}
	if x >= float64(KeyDomain) {
		return KeyDomain - 1
	}
	return uint64(x)
}

// exp is a tiny wrapper to keep math import local to one spot.
func exp(x float64) float64 {
	// Guard against overflow for extreme sigma draws.
	if x > 700 {
		x = 700
	}
	return mathExp(x)
}
