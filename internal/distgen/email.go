package distgen

import (
	"math"
	"sort"

	"repro/internal/stats"
)

func mathExp(x float64) float64 { return math.Exp(x) }

// Email generates synthetic email-address keys. The paper (§V-C) uses
// exactly this example: "a table column containing email addresses could be
// replaced by a synthetic email address generator that provides a similar
// data distribution". Addresses are mapped to uint64 keys by interpreting
// the first 8 bytes as a big-endian integer, which preserves the
// lexicographic order an index over the string column would see: the key
// distribution is dominated by the (skewed) first-letter frequencies and
// popular-domain clustering, which is what a learned index must capture.
type Email struct {
	rng     *stats.RNG
	domains []string
	domainZ *stats.Zipf
	letterZ *stats.Zipf
}

// EnglishFirstLetterOrder lists letters by approximate frequency as the
// first letter of English surnames; the generator draws the leading letters
// of local parts Zipf-distributed over this order.
var EnglishFirstLetterOrder = []byte("smbchwgdrlpajkftnevoizyquX")

// DefaultDomains lists provider domains by popularity rank.
var DefaultDomains = []string{
	"gmail.com", "yahoo.com", "hotmail.com", "outlook.com", "aol.com",
	"icloud.com", "proton.me", "mail.com", "gmx.net", "example.org",
}

// NewEmail returns a synthetic email generator.
func NewEmail(seed uint64) *Email {
	rng := stats.NewRNG(seed)
	return &Email{
		rng:     rng,
		domains: DefaultDomains,
		domainZ: stats.NewZipf(rng.Split(), 1.1, uint64(len(DefaultDomains))),
		letterZ: stats.NewZipf(rng.Split(), 0.9, uint64(len(EnglishFirstLetterOrder))),
	}
}

// Name implements Generator.
func (g *Email) Name() string { return "email" }

// Address returns one synthetic email address string.
func (g *Email) Address() string {
	n := 4 + g.rng.Intn(10)
	buf := make([]byte, 0, n+16)
	buf = append(buf, EnglishFirstLetterOrder[g.letterZ.Next()])
	for i := 1; i < n; i++ {
		c := byte('a' + g.rng.Intn(26))
		if g.rng.Intn(8) == 0 {
			c = byte('0' + g.rng.Intn(10))
		}
		if g.rng.Intn(12) == 0 && i < n-1 {
			c = '.'
		}
		buf = append(buf, c)
	}
	buf = append(buf, '@')
	buf = append(buf, g.domains[g.domainZ.Next()]...)
	return string(buf)
}

// Keys implements Generator: each key is the first 8 bytes of a generated
// address, big-endian, preserving lexicographic order.
func (g *Email) Keys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = StringKey(g.Address())
	}
	return out
}

// StringKey maps a string to a uint64 preserving lexicographic order on the
// first 8 bytes (shorter strings are zero-padded, which sorts them first,
// matching string comparison semantics for prefixes).
func StringKey(s string) uint64 {
	var k uint64
	for i := 0; i < 8; i++ {
		k <<= 8
		if i < len(s) {
			k |= uint64(s[i])
		}
	}
	return k
}

// Sorted returns g.Keys(n) sorted ascending (with duplicates retained).
// Index bulk-loading paths use it.
func Sorted(g Generator, n int) []uint64 {
	ks := g.Keys(n)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
