package core

import (
	"fmt"

	"repro/internal/card"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/sim"
	"repro/internal/sqlmini"
)

// QuerySystem is a system under test that answers SPJ queries — the SQL
// counterpart of the KV SUT interface, used by the learned-query-optimizer
// experiments. Cost is reported in engine work units (rows touched).
type QuerySystem interface {
	// Name identifies the optimizer configuration in reports.
	Name() string
	// Execute plans and runs one query, returning the rows-touched cost.
	Execute(q optimizer.Query) (int, error)
	// TrainWork reports cumulative learning work (0 for static systems).
	TrainWork() int64
}

// StaticOptimizer plans every query with a fixed estimator and hint — the
// traditional system: fast, predictable, and oblivious to drift unless an
// external ANALYZE refreshes its statistics.
type StaticOptimizer struct {
	Label string
	Est   card.JoinEstimator
	Hint  optimizer.Hint
}

// Name implements QuerySystem.
func (s *StaticOptimizer) Name() string { return s.Label }

// TrainWork implements QuerySystem.
func (s *StaticOptimizer) TrainWork() int64 { return 0 }

// Execute implements QuerySystem.
func (s *StaticOptimizer) Execute(q optimizer.Query) (int, error) {
	plan, _, err := optimizer.Optimize(q, s.Est, s.Hint)
	if err != nil {
		return 0, err
	}
	return sqlmini.Cost(plan)
}

// SteeredOptimizer wraps an estimator with Bao-style bandit steering and
// (optionally) learned-cardinality feedback: after each query it observes
// the true cost, and when the estimator is a *card.Learned it also feeds
// back true single-table cardinalities — learning online from execution
// exactly as §IV describes.
type SteeredOptimizer struct {
	Label    string
	Est      card.JoinEstimator
	Steering *optimizer.Steering
	// FeedbackEvery controls how often (every Nth query) single-table
	// true cardinalities are labeled and fed back; labeling costs one
	// table scan each, which is charged to the query. 0 disables.
	FeedbackEvery int
	queries       int
}

// Name implements QuerySystem.
func (s *SteeredOptimizer) Name() string { return s.Label }

// TrainWork implements QuerySystem.
func (s *SteeredOptimizer) TrainWork() int64 {
	w := int64(s.Steering.TrainWork())
	if l, ok := s.Est.(*card.Learned); ok {
		w += int64(l.TrainWork())
	}
	return w
}

// Execute implements QuerySystem.
func (s *SteeredOptimizer) Execute(q optimizer.Query) (int, error) {
	plan, hint, tmpl, err := optimizer.OptimizeSteered(q, s.Est, s.Steering)
	if err != nil {
		return 0, err
	}
	c, err := sqlmini.Cost(plan)
	if err != nil {
		return 0, err
	}
	s.Steering.Observe(tmpl, hint, float64(c))
	s.queries++
	if l, ok := s.Est.(*card.Learned); ok && s.FeedbackEvery > 0 && s.queries%s.FeedbackEvery == 0 {
		// Label collection: one scan per filtered table (charged).
		for _, t := range q.Tables {
			preds := q.Preds[t.Name]
			if len(preds) == 0 {
				continue
			}
			for _, p := range preds {
				l.Feedback(t, p, sqlmini.TrueCardinality(t, []sqlmini.Predicate{p}))
			}
			c += t.Len() // the scan that produced the labels
		}
	}
	return c, nil
}

// SQLRunResult carries the metrics of a SQL workload run — the same metric
// families as the KV runner (one shared metrics.Snapshot), so the report
// layer is shared.
type SQLRunResult struct {
	System string
	metrics.Snapshot
	DurationNs int64
	TrainWork  int64
	// ChangeAt is the virtual time of the database drift instant (0 if
	// the run had none).
	ChangeAt int64
	// PostChangeLatencies feed the adjustment-speed metric.
	PostChangeLatencies []int64
}

// Throughput returns queries/second over the run.
func (r *SQLRunResult) Throughput() float64 {
	if r.DurationNs <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.DurationNs) / 1e9)
}

// SQLScenario drives a query stream against a QuerySystem with an optional
// mid-run database mutation (data drift).
type SQLScenario struct {
	Name string
	// Queries yields the i-th query of n total.
	Queries func(i, n int) optimizer.Query
	// N is the number of queries to run.
	N int
	// MutateAt, when in (0,1), applies Mutate after that fraction of
	// queries — the abrupt data-distribution change.
	MutateAt float64
	Mutate   func()
	// IntervalNs is the band/timeline interval (default 1ms).
	IntervalNs int64
	// SLANs fixes the SLA; 0 calibrates from the first quarter of the run.
	SLANs int64
}

// RunSQL executes the scenario on the virtual clock: each query's service
// time is its rows-touched cost priced by the cost model.
func RunSQL(s SQLScenario, sys QuerySystem, cm sim.CostModel) (*SQLRunResult, error) {
	if s.N <= 0 || s.Queries == nil {
		return nil, fmt.Errorf("core: SQL scenario %q incomplete", s.Name)
	}
	interval := s.IntervalNs
	if interval <= 0 {
		interval = 1_000_000
	}
	clock := &sim.Virtual{}
	res := &SQLRunResult{System: sys.Name()}
	mutateAfter := -1
	if s.MutateAt > 0 && s.MutateAt < 1 && s.Mutate != nil {
		mutateAfter = int(s.MutateAt * float64(s.N))
	}
	// SLA: fixed by the scenario, else calibrated from the first quarter
	// of the run (SQL streams are short relative to KV runs, so the
	// window scales with N instead of the KV default of 1000).
	calibrateAfter := s.N / 4
	if calibrateAfter < 1 {
		calibrateAfter = 1
	}
	col := metrics.NewCollector(metrics.CollectorConfig{
		IntervalNs:     interval,
		SLANs:          s.SLANs,
		CalibrateAfter: calibrateAfter,
	})
	for i := 0; i < s.N; i++ {
		if i == mutateAfter {
			s.Mutate()
			res.ChangeAt = clock.Now()
		}
		work, err := sys.Execute(s.Queries(i, s.N))
		if err != nil {
			return nil, fmt.Errorf("core: SQL scenario %q query %d: %w", s.Name, i, err)
		}
		service := cm.ServiceTime(int64(work))
		clock.Advance(service)
		col.Record(clock.Now(), service)
		if res.ChangeAt > 0 {
			res.PostChangeLatencies = append(res.PostChangeLatencies, service)
		}
	}
	res.Snapshot = col.Snapshot()
	res.DurationNs = clock.Now()
	res.TrainWork = sys.TrainWork()
	return res, nil
}
