package core

import (
	"fmt"

	"repro/internal/index/diskbtree"
	"repro/internal/kv"
	"repro/internal/pager"
	"repro/internal/workload"
)

// The disk-backed SUTs run on an in-memory page backend by default: the
// page format, buffer pool, eviction policy, and I/O counters are exactly
// those of a real file, but results stay deterministic and no state leaks
// between runs. The cost model prices the counted page I/O into virtual
// time, so "disk" performance is simulated the same way service time is.

// newMemPool builds a fresh single-run page file under a pool.
func newMemPool(knobs pager.PoolKnobs) *pager.Pool {
	f, err := pager.Create(pager.NewMemBackend())
	if err != nil {
		panic(fmt.Sprintf("core: creating page file: %v", err))
	}
	return pager.NewPool(f, knobs)
}

// NewDiskBTreeSUT returns a paged B+ tree SUT over a fresh in-memory page
// file with the given pool configuration.
func NewDiskBTreeSUT(knobs pager.PoolKnobs) *IndexSUT {
	return NewIndexSUT(diskbtree.New(newMemPool(knobs)))
}

// NewDiskBTreeSUTDefault returns the disk B+ tree with the stock pool.
func NewDiskBTreeSUTDefault() SUT { return NewDiskBTreeSUT(pager.DefaultPoolKnobs()) }

// DiskKVSUT adapts the disk-backed log-structured store. Work combines the
// store's probe counters (CPU) with the buffer pool's page I/O (priced by
// the IOModel); every memtable flush is followed by a catalog sync, so
// write-heavy workloads pay realistic fsync costs.
type DiskKVSUT struct {
	store       *kv.DiskStore
	last        kv.Counters
	lastPool    pager.Counters
	sortScratch []int // reused by DoBatch's sorted get runs
}

// NewDiskKVSUT wraps a disk store with the given store and pool knobs.
func NewDiskKVSUT(knobs kv.Knobs, pool pager.PoolKnobs) *DiskKVSUT {
	s, err := kv.OpenDisk(newMemPool(pool), knobs)
	if err != nil {
		panic(fmt.Sprintf("core: opening disk store: %v", err))
	}
	return &DiskKVSUT{store: s}
}

// NewDiskLSMSUTDefault returns a disk-LSM SUT with untuned defaults.
func NewDiskLSMSUTDefault() SUT {
	return NewDiskKVSUT(kv.DefaultKnobs(), pager.DefaultPoolKnobs())
}

// Name implements SUT.
func (s *DiskKVSUT) Name() string { return "disk-lsm" }

// Store exposes the wrapped store (tuner experiments, tests).
func (s *DiskKVSUT) Store() *kv.DiskStore { return s.store }

// Pool exposes the store's buffer pool.
func (s *DiskKVSUT) Pool() *pager.Pool { return s.store.Pool() }

// Load implements SUT.
func (s *DiskKVSUT) Load(keys, values []uint64) {
	for i, k := range keys {
		s.store.Put(k, values[i])
	}
	if err := s.store.Checkpoint(); err != nil {
		panic(fmt.Sprintf("core: disk store load checkpoint: %v", err))
	}
}

// Do implements SUT.
func (s *DiskKVSUT) Do(op workload.Op) OpResult {
	var res OpResult
	switch op.Type {
	case workload.Get:
		_, res.Found = s.store.Get(op.Key)
	case workload.Put:
		s.store.Put(op.Key, op.Value)
	case workload.Delete:
		s.store.Delete(op.Key)
		res.Found = true
	case workload.Scan:
		limit := op.ScanLimit
		res.Visited = s.store.Scan(op.Key, ^uint64(0), func(_, _ uint64) bool {
			limit--
			return limit > 0
		})
	}
	// Durability: a flush (or the compaction it triggered) leaves new runs
	// that must be published; the sync's page writes and fsyncs land in
	// this op's work — the disk LSM's latency-spike source.
	if s.store.Counters().Flushes != s.last.Flushes {
		if err := s.store.Sync(); err != nil {
			panic(fmt.Sprintf("core: disk store sync: %v", err))
		}
	}
	c := s.store.Counters()
	pc := s.store.Pool().Counters()
	work := int64(c.RunProbes-s.last.RunProbes) +
		int64(c.RunsSearchedSum-s.last.RunsSearchedSum) +
		int64(res.Visited) + 4
	work += int64(c.CompactedBytes-s.last.CompactedBytes) / 4
	d := pc.Sub(s.lastPool)
	work += ioModel.Work(d.PagesRead, d.PagesWritten, d.Fsyncs)
	s.last = c
	s.lastPool = pc
	res.Work = work
	return res
}

// DoBatch implements BatchSUT natively, mirroring KVSUT: sorted lookup
// runs sweep the on-disk runs in key order (sequential page hits instead
// of random misses); counter advances pending from Load are flushed to the
// batch's first slot, matching sequential dispatch.
func (s *DiskKVSUT) DoBatch(ops []workload.Op, out []OpResult) {
	if len(ops) == 0 {
		return
	}
	pending := s.flushPending()
	doSortedGetRuns(&s.sortScratch, ops, out, s.Do)
	out[0].Work += pending
}

// flushPending consumes any counter advance not yet attributed to an
// operation, priced exactly as Do would have priced it.
func (s *DiskKVSUT) flushPending() int64 {
	c := s.store.Counters()
	pc := s.store.Pool().Counters()
	work := int64(c.RunProbes-s.last.RunProbes) +
		int64(c.RunsSearchedSum-s.last.RunsSearchedSum)
	work += int64(c.CompactedBytes-s.last.CompactedBytes) / 4
	d := pc.Sub(s.lastPool)
	work += ioModel.Work(d.PagesRead, d.PagesWritten, d.Fsyncs)
	s.last = c
	s.lastPool = pc
	return work
}

// ColdStartSUT wraps a disk-backed SUT so measurement begins from a cold
// buffer pool: after the initial load it checkpoints (durability), drops
// every cached frame, and records the counter baseline. The run's first
// reads then fault their pages in from the backend — the cold-cache
// scenario of Fig 1f — and MeasuredCounters isolates post-load traffic
// from the load's own page I/O.
type ColdStartSUT struct {
	SUT
	pool *pager.Pool
	base pager.Counters
}

// ColdStart wraps a disk-backed SUT; it panics if the SUT has no pool.
func ColdStart(s SUT) *ColdStartSUT {
	p := PoolOf(s)
	if p == nil {
		panic("core: ColdStart requires a disk-backed SUT")
	}
	return &ColdStartSUT{SUT: s, pool: p}
}

// Load implements SUT: load, persist, then empty the pool.
func (c *ColdStartSUT) Load(keys, values []uint64) {
	c.SUT.Load(keys, values)
	if err := c.pool.Checkpoint(); err != nil {
		panic(fmt.Sprintf("core: cold-start checkpoint: %v", err))
	}
	if err := c.pool.DropCache(); err != nil {
		panic(fmt.Sprintf("core: cold-start drop cache: %v", err))
	}
	c.base = c.pool.Counters()
}

// DoBatch forwards to the inner SUT's native batch path when it has one,
// so wrapping does not change which dispatch strategy runs.
func (c *ColdStartSUT) DoBatch(ops []workload.Op, out []OpResult) {
	if b, ok := c.SUT.(BatchSUT); ok {
		b.DoBatch(ops, out)
		return
	}
	for i := range ops {
		out[i] = c.SUT.Do(ops[i])
	}
}

// Pool exposes the pool so PoolOf (and Result.Storage) see through the
// wrapper.
func (c *ColdStartSUT) Pool() *pager.Pool { return c.pool }

// MeasuredCounters returns the pool counters accumulated after the cold
// start — the measurement phase's traffic only.
func (c *ColdStartSUT) MeasuredCounters() pager.Counters {
	return c.pool.Counters().Sub(c.base)
}

// StorageStats summarizes a disk-backed SUT's buffer-pool activity for
// results and reports. Nil on in-memory SUTs.
type StorageStats struct {
	Knobs    pager.PoolKnobs
	Counters pager.Counters
}

// PoolOf returns the buffer pool behind a SUT, unwrapping the index
// adapter if needed; nil for in-memory SUTs.
func PoolOf(s SUT) *pager.Pool {
	type holder interface{ Pool() *pager.Pool }
	if h, ok := s.(holder); ok {
		return h.Pool()
	}
	if ix, ok := s.(*IndexSUT); ok {
		if h, ok := ix.Underlying().(holder); ok {
			return h.Pool()
		}
	}
	return nil
}

// DiskSUTs returns factories for the disk-backed SUT lineup with the
// given pool configuration.
func DiskSUTs(pool pager.PoolKnobs) []func() SUT {
	return []func() SUT{
		func() SUT { return NewDiskBTreeSUT(pool) },
		func() SUT { return NewDiskKVSUT(kv.DefaultKnobs(), pool) },
	}
}

var (
	_ SUT      = (*DiskKVSUT)(nil)
	_ BatchSUT = (*DiskKVSUT)(nil)
	_ SUT      = (*ColdStartSUT)(nil)
	_ BatchSUT = (*ColdStartSUT)(nil)
)
