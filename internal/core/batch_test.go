package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// randomOps builds a deterministic mixed op sequence: point lookups
// (present and absent keys), inserts, deletes, and scans over a bounded
// key universe, with long lookup runs so the sorted-batch path is
// exercised.
func randomOps(seed uint64, n int, universe uint64) []workload.Op {
	rng := stats.NewRNG(seed)
	ops := make([]workload.Op, n)
	// Force the first two ops to be a descending lookup pair: the batch
	// path sorts them, so slot 0 is not the first op executed. Sequential
	// dispatch charges instrumentation work pending from Load/Train to
	// slot 0; this shape proves batched dispatch attributes it the same
	// way instead of leaking it onto the smallest-key lookup.
	ops[0] = workload.Op{Type: workload.Get, Key: universe - 2}
	ops[1] = workload.Op{Type: workload.Get, Key: 2}
	for i := 2; i < n; i++ {
		r := rng.Float64()
		key := rng.Uint64() % universe
		switch {
		case r < 0.70:
			ops[i] = workload.Op{Type: workload.Get, Key: key}
		case r < 0.85:
			ops[i] = workload.Op{Type: workload.Put, Key: key, Value: rng.Uint64()}
		case r < 0.95:
			ops[i] = workload.Op{Type: workload.Delete, Key: key}
		default:
			ops[i] = workload.Op{Type: workload.Scan, Key: key, ScanLimit: 50}
		}
	}
	return ops
}

// loadedSUT builds a SUT preloaded with every even key below universe.
func loadedSUT(f func() SUT, universe uint64) SUT {
	keys := make([]uint64, 0, universe/2)
	for k := uint64(0); k < universe; k += 2 {
		keys = append(keys, k)
	}
	s := f()
	s.Load(keys, LoadValues(keys))
	return s
}

// plainSUT hides a SUT's native DoBatch so AsBatch takes the sequential
// fallback adapter.
type plainSUT struct{ SUT }

// TestBatchSequentialEquivalence is the BatchSUT contract check: for every
// registered SUT, randomized op sequences dispatched through DoBatch at
// several batch sizes must produce the identical OpResult stream and the
// identical final contents as sequential Do.
func TestBatchSequentialEquivalence(t *testing.T) {
	const universe = 4096
	factories := map[string]func() SUT{
		"btree":   NewBTreeSUT,
		"hash":    NewHashSUT,
		"rmi":     NewRMISUT,
		"alex":    NewALEXSUT,
		"kvstore": NewKVSUTDefault,
		// The fallback adapter must satisfy the same contract.
		"fallback": func() SUT { return plainSUT{NewBTreeSUT()} },
	}
	batchSizes := []int{1, 2, 3, 7, 16, 64, 257}
	for name, f := range factories {
		f := f
		t.Run(name, func(t *testing.T) {
			ops := randomOps(11, 3000, universe)
			seq := loadedSUT(f, universe)
			want := make([]OpResult, len(ops))
			for i, op := range ops {
				want[i] = seq.Do(op)
			}
			for _, bs := range batchSizes {
				bat := AsBatch(loadedSUT(f, universe))
				got := make([]OpResult, len(ops))
				for i := 0; i < len(ops); i += bs {
					end := i + bs
					if end > len(ops) {
						end = len(ops)
					}
					bat.DoBatch(ops[i:end], got[i:end])
				}
				for i := range ops {
					if got[i] != want[i] {
						t.Fatalf("batch=%d op %d (%v): got %+v, want %+v",
							bs, i, ops[i], got[i], want[i])
					}
				}
				// Final contents: probe the whole universe through the
				// SUT interface on both instances.
				for k := uint64(0); k < universe; k++ {
					a := seq.Do(workload.Op{Type: workload.Get, Key: k})
					b := bat.Do(workload.Op{Type: workload.Get, Key: k})
					if a.Found != b.Found {
						t.Fatalf("batch=%d key %d: sequential Found=%v, batched Found=%v",
							bs, k, a.Found, b.Found)
					}
				}
			}
		})
	}
}

// TestOpOutcomesObserve pins the tally semantics: Found counts hits of any
// op type, NotFound counts only missed lookups (Get/Delete), and WorkUnits
// sums everything.
func TestOpOutcomesObserve(t *testing.T) {
	var o OpOutcomes
	o.Observe(workload.Op{Type: workload.Get}, OpResult{Found: true, Work: 3})
	o.Observe(workload.Op{Type: workload.Get}, OpResult{Found: false, Work: 2})
	o.Observe(workload.Op{Type: workload.Delete}, OpResult{Found: false, Work: 1})
	o.Observe(workload.Op{Type: workload.Put}, OpResult{Found: false, Work: 4})
	o.Observe(workload.Op{Type: workload.Scan}, OpResult{Found: false, Work: 5})
	if o.Found != 1 || o.NotFound != 2 || o.WorkUnits != 15 {
		t.Fatalf("outcomes = %+v, want Found=1 NotFound=2 WorkUnits=15", o)
	}
}
