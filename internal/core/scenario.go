package core

import (
	"fmt"

	"repro/internal/distgen"
	"repro/internal/workload"
)

// Phase is one segment of a benchmark run: a workload spec executed for a
// fixed number of operations under an arrival process. Distribution drift
// happens *within* phases (the specs carry Drift sources) and *between*
// them (consecutive phases with different specs are the paper's "two
// separate execution phases with possible retraining in-between").
type Phase struct {
	Name string
	// Ops is the number of operations issued in this phase.
	Ops int
	// Workload generates the operation stream.
	Workload workload.Spec
	// Arrival paces the phase. Nil means closed loop.
	Arrival workload.Arrival
	// RetrainBefore asks the runner to invoke Trainable.Train before the
	// phase starts (the scheduled-retraining window of §V-B).
	RetrainBefore bool
	// Trace, when non-nil, replays a pinned operation/arrival stream
	// instead of drawing from the (stateful) Workload and Arrival
	// sources. Materialize fills it so compared SUTs receive identical
	// streams.
	Trace *PhaseTrace
	// Source, when non-nil, supplies the phase's operation/gap stream
	// directly — a workload.TraceReader replaying a recorded trace, a
	// workload.Synthesizer generating fitted lookalike load, or any other
	// Source implementation. It takes precedence over Workload/Arrival
	// (which may be left zero); Trace, being already pinned, takes
	// precedence over both. The runner Resets it with the phase's
	// derived seed before drawing, so repeated runs of one scenario
	// value replay the identical stream.
	Source workload.Source
}

// PhaseTrace is a materialized phase input: the exact operations and
// inter-arrival gaps, in issue order.
type PhaseTrace struct {
	Ops  []workload.Op
	Gaps []int64
}

// Scenario is a full benchmark configuration: initial database, training
// budget, and a sequence of phases. It mirrors the configuration surface
// the paper sketches in §V-B.
type Scenario struct {
	Name string
	Seed uint64
	// InitialData generates the keys bulk-loaded before the run. Note
	// that generators are stateful: a Run draws from it. For identical
	// databases across several runs, materialize once (see Materialize)
	// or set InitialKeys directly.
	InitialData distgen.Generator
	// InitialSize is the number of unique initial keys.
	InitialSize int
	// InitialKeys, when non-nil, is used verbatim (sorted unique keys)
	// instead of drawing from InitialData. RunAll sets it so every SUT
	// is loaded with the identical database.
	InitialKeys []uint64
	// TrainBefore invokes Trainable.Train after loading, before phase 1,
	// and reports it as the offline training phase.
	TrainBefore bool
	Phases      []Phase
	// IntervalNs is the reporting interval width (Fig 1c bands, Fig 1a
	// throughput samples). 0 defaults to 10ms virtual.
	IntervalNs int64
	// SLANs fixes the SLA threshold; 0 means calibrate from the
	// baseline run (paper's rule) or fall back to 20x median.
	SLANs int64
	// Session, when non-nil, segments the operation stream into
	// interactive sessions (a gap >= Session.GapNs begins a new one) and
	// applies the per-session budget — the IDEBench-style dimension for
	// workloads paced by workload.SessionArrival. Segmentation reads the
	// gap stream itself, so it survives Materialize and trace replay.
	Session *workload.SessionSpec
}

// Materialize pins every stateful input of the scenario: the initial keys
// (drawn once from InitialData) and each phase's operation and arrival
// stream (drawn once from its Workload and Arrival sources). Runs of the
// returned scenario are replays of identical inputs — required for fair
// head-to-head SUT comparison, since generators and drift processes are
// stateful and would otherwise advance between runs.
func (s Scenario) Materialize() Scenario {
	if s.InitialKeys == nil && s.InitialData != nil && s.InitialSize > 0 {
		s.InitialKeys = distgen.UniqueKeys(s.InitialData, s.InitialSize)
	}
	phases := make([]Phase, len(s.Phases))
	copy(phases, s.Phases)
	for pi := range phases {
		p := &phases[pi]
		if p.Trace != nil || p.Ops <= 0 {
			continue
		}
		src := p.Source
		if src == nil {
			if p.Workload.Access == nil {
				continue
			}
			src = workload.NewSource(p.Workload, p.Arrival, 0)
		}
		src.Reset(workload.PhaseSeed(s.Seed, pi))
		tr := &PhaseTrace{
			Ops:  make([]workload.Op, p.Ops),
			Gaps: make([]int64, p.Ops),
		}
		n := src.Fill(tr.Ops, tr.Gaps, 0, p.Ops)
		// A bounded source shorter than the phase surfaces as a trace
		// length mismatch in Validate rather than silently padding.
		tr.Ops = tr.Ops[:n]
		tr.Gaps = tr.Gaps[:n]
		p.Trace = tr
		p.Source = nil
	}
	s.Phases = phases
	return s
}

// Validate checks the scenario is runnable.
func (s Scenario) Validate() error {
	if s.InitialData == nil && s.InitialKeys == nil {
		return fmt.Errorf("core: scenario %q has no initial data", s.Name)
	}
	if s.InitialSize < 0 {
		return fmt.Errorf("core: scenario %q has negative initial size", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("core: scenario %q has no phases", s.Name)
	}
	if s.Session != nil && s.Session.GapNs <= 0 {
		return fmt.Errorf("core: scenario %q session spec needs a positive boundary gap", s.Name)
	}
	for i, p := range s.Phases {
		if p.Ops <= 0 {
			return fmt.Errorf("core: scenario %q phase %d has no ops", s.Name, i)
		}
		if p.Workload.Access == nil && p.Trace == nil && p.Source == nil {
			return fmt.Errorf("core: scenario %q phase %d has no access distribution, trace, or source", s.Name, i)
		}
		if p.Trace != nil && (len(p.Trace.Ops) != p.Ops || len(p.Trace.Gaps) != p.Ops) {
			return fmt.Errorf("core: scenario %q phase %d trace length mismatch", s.Name, i)
		}
	}
	return nil
}

// interval returns the effective reporting interval.
func (s Scenario) interval() int64 {
	if s.IntervalNs > 0 {
		return s.IntervalNs
	}
	return 10_000_000 // 10ms
}
