package core

import (
	"repro/internal/workload"
)

// BatchSUT is an optional SUT extension: execute a slice of operations in
// one call, writing each operation's result to the matching slot of out
// (len(out) must be >= len(ops)). Implementations must be semantically
// equivalent to calling Do per op in order — the same OpResult stream and
// the same final contents — so engines may dispatch in batches of any size
// without changing results. What batching buys is amortization: one lock
// acquisition per batch in the real-time driver, one wire round trip per
// batch in the network driver, and cache-friendly sorted lookup runs in
// the index SUTs.
type BatchSUT interface {
	SUT
	// DoBatch executes ops[i] and stores its result in out[i].
	DoBatch(ops []workload.Op, out []OpResult)
}

// AsBatch returns s itself when it implements BatchSUT natively, else a
// fallback adapter that dispatches the batch one Do at a time. Engines
// call it once per run and then use a single batched code path.
func AsBatch(s SUT) BatchSUT {
	if b, ok := s.(BatchSUT); ok {
		return b
	}
	return seqBatch{s}
}

// seqBatch adapts a plain SUT to BatchSUT by sequential dispatch.
type seqBatch struct{ SUT }

// DoBatch implements BatchSUT.
func (b seqBatch) DoBatch(ops []workload.Op, out []OpResult) {
	for i, op := range ops {
		out[i] = b.Do(op)
	}
}

// doSortedGetRuns is the shared native-batch strategy of the index and kv
// SUT adapters: maximal runs of consecutive Get operations are executed in
// ascending key order (point lookups are read-only, so their per-op results
// and instrumentation deltas are order-independent), which turns random
// probes into locality-friendly sweeps; mutations and scans execute at
// their original positions so batch results match sequential execution
// exactly. Results land in the slots of their original ops.
//
// scratch is the caller's reusable index buffer (its capacity is retained
// across calls), keeping the steady-state batch path allocation-free.
func doSortedGetRuns(scratch *[]int, ops []workload.Op, out []OpResult, do func(workload.Op) OpResult) {
	order := *scratch
	for i := 0; i < len(ops); {
		if ops[i].Type != workload.Get {
			out[i] = do(ops[i])
			i++
			continue
		}
		j := i + 1
		for j < len(ops) && ops[j].Type == workload.Get {
			j++
		}
		if j-i < 2 {
			out[i] = do(ops[i])
			i = j
			continue
		}
		order = order[:0]
		for k := i; k < j; k++ {
			order = append(order, k)
		}
		sortRunByKey(ops, order)
		for _, k := range order {
			out[k] = do(ops[k])
		}
		i = j
	}
	*scratch = order
}

// runLess orders run indices by (key, original position) — a strict total
// order, because indices are distinct. Sorting by it with any comparison
// sort yields exactly the permutation sort.SliceStable produced when it
// ordered by key alone, so replacing the reflection-based stable sort
// cannot change which op executes when.
func runLess(ops []workload.Op, a, b int) bool {
	if ops[a].Key != ops[b].Key {
		return ops[a].Key < ops[b].Key
	}
	return a < b
}

// sortRunByKey sorts order in place by runLess without allocating:
// median-of-three quicksort with an insertion-sort floor.
func sortRunByKey(ops []workload.Op, order []int) {
	for len(order) > 12 {
		mid, last := len(order)/2, len(order)-1
		if runLess(ops, order[mid], order[0]) {
			order[0], order[mid] = order[mid], order[0]
		}
		if runLess(ops, order[last], order[0]) {
			order[0], order[last] = order[last], order[0]
		}
		if runLess(ops, order[last], order[mid]) {
			order[mid], order[last] = order[last], order[mid]
		}
		pivot := order[mid]
		i, j := 0, last
		for i <= j {
			for runLess(ops, order[i], pivot) {
				i++
			}
			for runLess(ops, pivot, order[j]) {
				j--
			}
			if i <= j {
				order[i], order[j] = order[j], order[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger: O(log n) stack.
		if j+1 < len(order)-i {
			sortRunByKey(ops, order[:j+1])
			order = order[i:]
		} else {
			sortRunByKey(ops, order[i:])
			order = order[:j+1]
		}
	}
	for i := 1; i < len(order); i++ {
		v := order[i]
		j := i - 1
		for j >= 0 && runLess(ops, v, order[j]) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
}

// OpOutcomes tallies what a run's operations did: how many found their
// key, how many lookups (Gets and Deletes) missed, and the total abstract
// work the SUT reported. The virtual runner and the real-time driver both
// surface it, so a driver run can be sanity-checked against the virtual
// run of the same workload.
type OpOutcomes struct {
	// Found counts operations whose OpResult.Found was true.
	Found int64
	// NotFound counts Get and Delete operations that missed.
	NotFound int64
	// WorkUnits is the sum of OpResult.Work across all operations.
	WorkUnits int64
	// Failed counts operations that completed as errors.
	Failed int64
}

// Observe folds one operation's result into the tally.
func (o *OpOutcomes) Observe(op workload.Op, r OpResult) {
	if r.Failed {
		o.Failed++
		o.WorkUnits += r.Work
		return
	}
	if r.Found {
		o.Found++
	} else if op.Type == workload.Get || op.Type == workload.Delete {
		o.NotFound++
	}
	o.WorkUnits += r.Work
}
