// Package core is the benchmark framework itself — the paper's primary
// contribution, implemented: scenarios with drifting workloads and data,
// explicit training phases charged as first-class results, a deterministic
// single-server queueing runner over virtual time, and result objects that
// carry every metric family of Figure 1.
package core

import (
	"repro/internal/workload"
)

// OpResult reports what one operation did. Work is the SUT's abstract
// cost (comparisons, probes, rows touched); the runner's cost model turns
// it into service time under the virtual clock.
type OpResult struct {
	Found   bool
	Visited int
	Work    int64
	// Failed marks an operation that completed as an error (injected
	// fault, remote failure). Failed ops occupy the server for their Work
	// like any other op but are excluded from latency statistics and
	// counted separately — availability is a first-class result.
	Failed bool
}

// SUT is a key-value system under test. Implementations need not be safe
// for concurrent use — the runner serializes operations (single-server
// queue); the netdriver shards instead.
type SUT interface {
	// Name identifies the system in reports.
	Name() string
	// Load bulk-loads the initial database from sorted unique keys.
	Load(keys, values []uint64)
	// Do executes one operation.
	Do(op workload.Op) OpResult
}

// ValueFor derives the canonical load value for a key. Every engine that
// bulk-loads an initial database (virtual runner, real-time driver, tests)
// uses this one derivation so loaded contents are comparable across
// execution modes.
func ValueFor(k uint64) uint64 { return k ^ 0xDEADBEEF }

// LoadValues maps ValueFor over keys — the value slice matching an initial
// key set.
func LoadValues(keys []uint64) []uint64 {
	values := make([]uint64, len(keys))
	for i, k := range keys {
		values[i] = ValueFor(k)
	}
	return values
}

// TrainReport accounts one training phase (Lesson 3: training is a
// first-class result).
type TrainReport struct {
	// WorkUnits is the abstract training work performed.
	WorkUnits int64
	// Models is the model count after training.
	Models int
}

// Trainable is implemented by SUTs with an explicit (re)training step.
type Trainable interface {
	// Train (re)builds the SUT's models from its current contents.
	Train() TrainReport
}

// OnlineLearner is implemented by SUTs that also learn during execution;
// the runner collects their accumulated online-training work so the cost
// metrics can charge it (the paper: "measure the system metrics
// corresponding to the training overhead" for online learners).
type OnlineLearner interface {
	// OnlineTrainWork returns cumulative online training work units.
	OnlineTrainWork() int64
}
