package core

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// sessionScenario paces a single phase with interactive sessions and asks
// the runner to segment them with the matching spec.
func sessionScenario(ops int) Scenario {
	arrival := workload.NewSessionArrival(21, 2_000_000, 50_000, 3, 9)
	s := quickScenario(ops)
	s.Name = "sessions"
	s.Phases[0].Arrival = arrival
	s.Session = arrival.Spec(5_000_000)
	return s
}

func TestRunnerSessionStats(t *testing.T) {
	res, err := NewRunner().Run(sessionScenario(6000), NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	ss := res.Snapshot.Sessions
	if ss == nil {
		t.Fatal("session scenario produced no session stats")
	}
	if ss.Sessions < 6000/9 || ss.Sessions > 6000/3+1 {
		t.Fatalf("sessions = %d for 6000 ops of 3..9", ss.Sessions)
	}
	if ss.Makespan.Count() != uint64(ss.Sessions) {
		t.Fatalf("makespan count %d != sessions %d", ss.Makespan.Count(), ss.Sessions)
	}
	if ss.MetBudget > ss.Sessions {
		t.Fatalf("met %d > sessions %d", ss.MetBudget, ss.Sessions)
	}

	// A non-session scenario's snapshot stays free of session stats.
	plain, err := NewRunner().Run(quickScenario(2000), NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Snapshot.Sessions != nil {
		t.Fatal("plain scenario grew session stats")
	}
}

// TestRunnerSessionBatchInvariant checks the per-session digest — like
// every other metric — is byte-identical at any dispatch batch size, and
// survives materialization (segmentation reads the pinned gap stream, not
// the discarded arrival process).
func TestRunnerSessionBatchInvariant(t *testing.T) {
	s := sessionScenario(6000).Materialize()
	r1 := NewRunner()
	a, err := r1.Run(s, NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	r64 := NewRunner()
	r64.Batch = 64
	b, err := r64.Run(s, NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if a.Snapshot.Sessions == nil || b.Snapshot.Sessions == nil {
		t.Fatal("materialized session scenario lost session stats")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("results differ across batch sizes: sessions %+v vs %+v",
			a.Snapshot.Sessions, b.Snapshot.Sessions)
	}
}

// TestRunnerSessionTraceReplay records a session run and replays the trace:
// because segmentation is defined on the gap stream, the replayed run
// reproduces the identical session digest without the arrival process.
func TestRunnerSessionTraceReplay(t *testing.T) {
	s := sessionScenario(4000).Materialize()
	orig, err := NewRunner().Run(s, NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	replayed := Scenario{
		Name:        s.Name,
		Seed:        s.Seed,
		InitialKeys: s.InitialKeys,
		TrainBefore: s.TrainBefore,
		IntervalNs:  s.IntervalNs,
		Session:     s.Session,
		Phases: []Phase{{
			Name: s.Phases[0].Name,
			Ops:  s.Phases[0].Ops,
			Source: workload.NewTraceReader(s.Phases[0].Name,
				s.Phases[0].Trace.Ops, s.Phases[0].Trace.Gaps),
		}},
	}
	rep, err := NewRunner().Run(replayed, NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Snapshot.Sessions, rep.Snapshot.Sessions) {
		t.Fatalf("replay session digest differs: %+v vs %+v",
			orig.Snapshot.Sessions, rep.Snapshot.Sessions)
	}
}

func TestScenarioValidateSession(t *testing.T) {
	s := quickScenario(100)
	s.Session = &workload.SessionSpec{GapNs: 0}
	if err := s.Validate(); err == nil {
		t.Fatal("zero boundary gap validated")
	}
}
