package core

import (
	"testing"

	"repro/internal/card"
	"repro/internal/optimizer"
	"repro/internal/sim"
	"repro/internal/sqlmini"
)

func sqlTestDB() (*sqlmini.Table, *sqlmini.Table) {
	dim := sqlmini.NewTable("dim", "id", "kind")
	for i := uint64(0); i < 50; i++ {
		dim.Append(i, i%5)
	}
	fact := sqlmini.NewTable("fact", "fid", "dimid", "val")
	for i := uint64(0); i < 3000; i++ {
		fact.Append(i, i%50, i%500)
	}
	return dim, fact
}

func sqlTestQuery(dim, fact *sqlmini.Table, lo uint64) optimizer.Query {
	return optimizer.Query{
		Tables: []*sqlmini.Table{dim, fact},
		Preds: map[string][]sqlmini.Predicate{
			"fact": {{Column: "val", Op: sqlmini.Between, Value: lo, Hi: lo + 20}},
		},
		Joins: []optimizer.JoinEdge{{
			LeftTable: "dim", LeftCol: "id", RightTable: "fact", RightCol: "dimid",
		}},
	}
}

func TestRunSQLStatic(t *testing.T) {
	dim, fact := sqlTestDB()
	h := card.NewHistogram(32)
	h.Analyze(dim)
	h.Analyze(fact)
	sys := &StaticOptimizer{Label: "hist", Est: h, Hint: optimizer.HintDefault}
	res, err := RunSQL(SQLScenario{
		Name:    "basic",
		N:       300,
		Queries: func(i, n int) optimizer.Query { return sqlTestQuery(dim, fact, uint64(i%400)) },
	}, sys, sim.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 300 || res.DurationNs <= 0 {
		t.Fatalf("completed=%d duration=%d", res.Completed, res.DurationNs)
	}
	if res.Latency.Count() != 300 || res.Cumulative.Total() != 300 {
		t.Fatal("metrics incomplete")
	}
	if res.SLANs <= 0 {
		t.Fatal("no SLA calibrated")
	}
	var total int64
	for _, iv := range res.Bands.Intervals() {
		total += iv.Completed
	}
	if total != 300 {
		t.Fatalf("bands cover %d ops", total)
	}
	if res.TrainWork != 0 {
		t.Fatal("static optimizer charged training")
	}
	if res.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunSQLSteeredLearns(t *testing.T) {
	dim, fact := sqlTestDB()
	l := card.NewLearned()
	l.ObserveTable(dim)
	l.ObserveTable(fact)
	sys := &SteeredOptimizer{
		Label:         "steered",
		Est:           l,
		Steering:      optimizer.NewSteering(0.5),
		FeedbackEvery: 2,
	}
	res, err := RunSQL(SQLScenario{
		Name:    "steered",
		N:       200,
		Queries: func(i, n int) optimizer.Query { return sqlTestQuery(dim, fact, uint64(i%400)) },
	}, sys, sim.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainWork <= 0 {
		t.Fatal("steered optimizer reported no training work")
	}
	if l.FeedbackCount() == 0 {
		t.Fatal("no cardinality feedback flowed")
	}
}

func TestRunSQLMutation(t *testing.T) {
	dim, fact := sqlTestDB()
	h := card.NewHistogram(32)
	h.Analyze(dim)
	h.Analyze(fact)
	mutated := false
	res, err := RunSQL(SQLScenario{
		Name: "drift",
		N:    400,
		Queries: func(i, n int) optimizer.Query {
			lo := uint64(i % 400)
			if mutated {
				lo += 10000
			}
			return sqlTestQuery(dim, fact, lo)
		},
		MutateAt: 0.5,
		Mutate: func() {
			rows := make([][]uint64, len(fact.Rows))
			for i, r := range fact.Rows {
				rows[i] = []uint64{r[0], r[1], r[2] + 10000}
			}
			fact.ReplaceRows(rows)
			mutated = true
		},
	}, &StaticOptimizer{Label: "hist", Est: h, Hint: optimizer.HintDefault}, sim.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.ChangeAt <= 0 || res.ChangeAt >= res.DurationNs {
		t.Fatalf("change instant %d outside run", res.ChangeAt)
	}
	if len(res.PostChangeLatencies) != 200 {
		t.Fatalf("post-change latencies = %d", len(res.PostChangeLatencies))
	}
}

func TestRunSQLValidation(t *testing.T) {
	if _, err := RunSQL(SQLScenario{}, &StaticOptimizer{Est: card.Exact{}}, sim.DefaultCostModel()); err == nil {
		t.Fatal("empty scenario accepted")
	}
}

func TestRunSQLErrorPropagates(t *testing.T) {
	bad := optimizer.Query{} // no tables
	_, err := RunSQL(SQLScenario{
		Name:    "bad",
		N:       5,
		Queries: func(i, n int) optimizer.Query { return bad },
	}, &StaticOptimizer{Label: "x", Est: card.Exact{}}, sim.DefaultCostModel())
	if err == nil {
		t.Fatal("query error swallowed")
	}
}
