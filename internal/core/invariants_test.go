package core

import (
	"testing"
	"testing/quick"

	"repro/internal/distgen"
	"repro/internal/workload"
)

// TestRunnerInvariants property-checks the result object over random
// scenario seeds and SUT choices: every metric family must account for
// exactly the completed operations, regardless of workload.
func TestRunnerInvariants(t *testing.T) {
	factories := []func() SUT{NewBTreeSUT, NewHashSUT, NewRMISUT, NewALEXSUT, NewKVSUTDefault}
	f := func(seed uint64, sutPick uint8, mixPick uint8) bool {
		mixes := []workload.Mix{workload.ReadHeavy, workload.Balanced,
			workload.WriteHeavy, workload.ScanHeavy}
		s := Scenario{
			Name:        "prop",
			Seed:        seed,
			InitialData: distgen.NewZipfKeys(seed+1, 1.05, 1<<20),
			InitialSize: 2000,
			TrainBefore: seed%2 == 0,
			IntervalNs:  100_000,
			Phases: []Phase{
				{
					Name: "a",
					Ops:  1500,
					Workload: workload.Spec{
						Mix:    mixes[int(mixPick)%len(mixes)],
						Access: distgen.Static{G: distgen.NewZipfKeys(seed+2, 1.05, 1<<20)},
					},
				},
				{
					Name: "b",
					Ops:  1500,
					Workload: workload.Spec{
						Mix:    mixes[int(mixPick+1)%len(mixes)],
						Access: distgen.NewGrowingSkew(seed+3, 1.3, 1<<16),
					},
					Arrival: workload.NewPoisson(seed+4, 300_000),
				},
			},
		}
		res, err := NewRunner().Run(s, factories[int(sutPick)%len(factories)]())
		if err != nil {
			return false
		}
		if res.Completed != 3000 {
			return false
		}
		if res.Cumulative.Total() != res.Completed {
			return false
		}
		if res.Latency.Count() != uint64(res.Completed) {
			return false
		}
		var bandTotal, phaseTotal int64
		for _, iv := range res.Bands.Intervals() {
			bandTotal += iv.Completed
		}
		for _, p := range res.Phases {
			phaseTotal += p.Completed
			if p.EndNs < p.StartNs {
				return false
			}
		}
		if bandTotal != res.Completed || phaseTotal != res.Completed {
			return false
		}
		if res.DurationNs < res.Cumulative.Duration() {
			return false
		}
		return res.SLANs > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
