package core

import (
	"repro/internal/cost"
	"repro/internal/index"
	"repro/internal/index/alex"
	"repro/internal/index/btree"
	"repro/internal/index/hashidx"
	"repro/internal/index/rmi"
	"repro/internal/kv"
	"repro/internal/workload"
)

// ioModel prices page I/O counters into work units. Disk-backed SUTs are
// the only ones that advance those counters, so in-memory SUT results are
// unaffected by its value.
var ioModel = cost.DefaultIOModel()

// IndexSUT adapts any index.Ordered into a benchmark SUT, deriving each
// operation's Work from the index's instrumentation counters so the
// virtual clock charges realistic, distribution-dependent service times.
type IndexSUT struct {
	ix             index.Ordered
	lastCompare    uint64
	lastSplits     uint64
	lastTrainWork  uint64
	lastPageReads  uint64
	lastPageWrites uint64
	online         int64
	sortScratch    []int // reused by DoBatch's sorted get runs
}

// NewIndexSUT wraps an index.
func NewIndexSUT(ix index.Ordered) *IndexSUT { return &IndexSUT{ix: ix} }

// Name implements SUT.
func (s *IndexSUT) Name() string { return s.ix.Name() }

// Load implements SUT.
func (s *IndexSUT) Load(keys, values []uint64) {
	if bl, ok := s.ix.(index.BulkLoader); ok {
		bl.BulkLoad(keys, values)
		return
	}
	for i, k := range keys {
		s.ix.Insert(k, values[i])
	}
}

// Do implements SUT.
func (s *IndexSUT) Do(op workload.Op) OpResult {
	var res OpResult
	switch op.Type {
	case workload.Get:
		_, res.Found = s.ix.Get(op.Key)
	case workload.Put:
		s.ix.Insert(op.Key, op.Value)
	case workload.Delete:
		res.Found = s.ix.Delete(op.Key)
	case workload.Scan:
		limit := op.ScanLimit
		res.Visited = s.ix.Scan(op.Key, ^uint64(0), func(_, _ uint64) bool {
			limit--
			return limit > 0
		})
	}
	res.Work = s.workDelta(op, res)
	return res
}

// workDelta derives the operation's work from instrumentation counters,
// falling back to coarse estimates for uninstrumented indexes.
func (s *IndexSUT) workDelta(op workload.Op, res OpResult) int64 {
	in, ok := s.ix.(index.Instrumented)
	if !ok {
		w := int64(20)
		if op.Type == workload.Scan {
			w += int64(res.Visited)
		}
		return w
	}
	st := in.Stats()
	compares := int64(st.Compares - s.lastCompare)
	splits := int64(st.Splits - s.lastSplits)
	train := int64(st.TrainWork - s.lastTrainWork)
	ioWork := ioModel.Work(st.PageReads-s.lastPageReads, st.PageWrites-s.lastPageWrites, 0)
	s.lastCompare = st.Compares
	s.lastSplits = st.Splits
	s.lastTrainWork = st.TrainWork
	s.lastPageReads = st.PageReads
	s.lastPageWrites = st.PageWrites
	// Structural modifications and online model rebuilds are charged at
	// their full entry-touching cost — these are exactly the latency
	// spikes the adaptability metrics must surface — and also count as
	// training overhead (the paper's online-learning cost accounting).
	// Page I/O (disk-backed indexes only) dominates everything else when
	// the buffer pool misses; it is priced through the shared IOModel.
	work := compares + int64(res.Visited) + ioWork
	if splits > 0 {
		work += splits * 16 // tree split / directory bookkeeping
	}
	if train > 0 {
		work += train
		s.online += train
	}
	if op.Type == workload.Put || op.Type == workload.Delete {
		work += 4 // slot write / shift amortization
	}
	return work
}

// DoBatch implements BatchSUT natively: runs of consecutive point lookups
// execute in ascending key order, sweeping the index (tree leaves, model
// segments, hash directories) with locality instead of random probes.
// Lookups are read-only and their instrumentation deltas are intrinsic per
// key, so the per-op results are identical to sequential dispatch — except
// for counter advances pending from bulk loads or explicit training, which
// sequential dispatch charges to the next op in issue order; flush them to
// the batch's first slot so reordering cannot reattribute that work.
func (s *IndexSUT) DoBatch(ops []workload.Op, out []OpResult) {
	if len(ops) == 0 {
		return
	}
	pending := s.flushPending()
	doSortedGetRuns(&s.sortScratch, ops, out, s.Do)
	out[0].Work += pending
}

// flushPending consumes any instrumentation advance not yet attributed to
// an operation, pricing it exactly as workDelta would have priced it as
// part of the next op's work.
func (s *IndexSUT) flushPending() int64 {
	in, ok := s.ix.(index.Instrumented)
	if !ok {
		return 0
	}
	st := in.Stats()
	compares := int64(st.Compares - s.lastCompare)
	splits := int64(st.Splits - s.lastSplits)
	train := int64(st.TrainWork - s.lastTrainWork)
	work := compares + ioModel.Work(st.PageReads-s.lastPageReads, st.PageWrites-s.lastPageWrites, 0)
	s.lastCompare = st.Compares
	s.lastSplits = st.Splits
	s.lastTrainWork = st.TrainWork
	s.lastPageReads = st.PageReads
	s.lastPageWrites = st.PageWrites
	if splits > 0 {
		work += splits * 16
	}
	if train > 0 {
		work += train
		s.online += train
	}
	return work
}

// Train implements Trainable when the wrapped index is trainable.
func (s *IndexSUT) Train() TrainReport {
	tr, ok := s.ix.(index.Trainable)
	if !ok {
		return TrainReport{}
	}
	work := tr.Retrain()
	return TrainReport{WorkUnits: int64(work), Models: tr.ModelCount()}
}

// OnlineTrainWork implements OnlineLearner: structural adaptation work
// accumulated during execution.
func (s *IndexSUT) OnlineTrainWork() int64 { return s.online }

// Underlying exposes the wrapped index (examples and tests).
func (s *IndexSUT) Underlying() index.Ordered { return s.ix }

// Factories for the standard SUT lineup.

// NewBTreeSUT returns the traditional B+ tree SUT.
func NewBTreeSUT() SUT { return NewIndexSUT(btree.NewDefault()) }

// NewHashSUT returns the hash-index SUT.
func NewHashSUT() SUT { return NewIndexSUT(hashidx.New()) }

// NewRMISUT returns the static learned-index SUT.
func NewRMISUT() SUT { return NewIndexSUT(rmi.NewDefault()) }

// NewALEXSUT returns the adaptive learned-index SUT.
func NewALEXSUT() SUT { return NewIndexSUT(alex.New()) }

// StandardSUTs returns factories for the full comparison lineup.
func StandardSUTs() []func() SUT {
	return []func() SUT{NewBTreeSUT, NewHashSUT, NewRMISUT, NewALEXSUT}
}

// KVSUT adapts the log-structured kv.Store.
type KVSUT struct {
	store       *kv.Store
	last        kv.Counters
	sortScratch []int // reused by DoBatch's sorted get runs
}

// NewKVSUT wraps a store opened with the given knobs.
func NewKVSUT(knobs kv.Knobs) *KVSUT { return &KVSUT{store: kv.Open(knobs)} }

// NewKVSUTDefault returns a kv-store SUT with the untuned default knobs.
func NewKVSUTDefault() SUT { return NewKVSUT(kv.DefaultKnobs()) }

// Name implements SUT.
func (s *KVSUT) Name() string { return "kvstore" }

// Store exposes the wrapped store (for the tuner experiments).
func (s *KVSUT) Store() *kv.Store { return s.store }

// Load implements SUT.
func (s *KVSUT) Load(keys, values []uint64) {
	for i, k := range keys {
		s.store.Put(k, values[i])
	}
	s.store.Flush()
}

// Do implements SUT.
func (s *KVSUT) Do(op workload.Op) OpResult {
	var res OpResult
	switch op.Type {
	case workload.Get:
		_, res.Found = s.store.Get(op.Key)
	case workload.Put:
		s.store.Put(op.Key, op.Value)
	case workload.Delete:
		s.store.Delete(op.Key)
		res.Found = true
	case workload.Scan:
		limit := op.ScanLimit
		res.Visited = s.store.Scan(op.Key, ^uint64(0), func(_, _ uint64) bool {
			limit--
			return limit > 0
		})
	}
	c := s.store.Counters()
	// Work: probes + compaction volume since the last op; compaction is
	// the kv store's latency-spike source.
	work := int64(c.RunProbes-s.last.RunProbes) +
		int64(c.RunsSearchedSum-s.last.RunsSearchedSum) +
		int64(res.Visited) + 4
	work += int64(c.CompactedBytes-s.last.CompactedBytes) / 4
	s.last = c
	res.Work = work
	return res
}

// DoBatch implements BatchSUT natively: sorted lookup runs probe the
// store's sorted runs in key order (sequential sparse-index hits instead
// of random probes); mutations keep their positions so compaction timing —
// and therefore per-op work — matches sequential execution. Counter
// advances pending from Load (which bypasses Do) are flushed to the
// batch's first slot, matching where sequential dispatch charges them.
func (s *KVSUT) DoBatch(ops []workload.Op, out []OpResult) {
	if len(ops) == 0 {
		return
	}
	pending := s.flushPending()
	doSortedGetRuns(&s.sortScratch, ops, out, s.Do)
	out[0].Work += pending
}

// flushPending consumes any counter advance not yet attributed to an
// operation, priced exactly as Do would have priced it within the next
// op's work.
func (s *KVSUT) flushPending() int64 {
	c := s.store.Counters()
	work := int64(c.RunProbes-s.last.RunProbes) +
		int64(c.RunsSearchedSum-s.last.RunsSearchedSum)
	work += int64(c.CompactedBytes-s.last.CompactedBytes) / 4
	s.last = c
	return work
}

var (
	_ SUT           = (*IndexSUT)(nil)
	_ Trainable     = (*IndexSUT)(nil)
	_ OnlineLearner = (*IndexSUT)(nil)
	_ BatchSUT      = (*IndexSUT)(nil)
	_ SUT           = (*KVSUT)(nil)
	_ BatchSUT      = (*KVSUT)(nil)
)
