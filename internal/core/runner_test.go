package core

import (
	"strings"
	"testing"

	"repro/internal/distgen"
	"repro/internal/workload"
)

// quickScenario builds a small single-phase scenario.
func quickScenario(ops int) Scenario {
	return Scenario{
		Name:        "quick",
		Seed:        1,
		InitialData: distgen.NewUniform(1, 0, 1<<40),
		InitialSize: 5000,
		TrainBefore: true,
		IntervalNs:  100_000, // 0.1ms: fine enough for short virtual runs
		Phases: []Phase{{
			Name: "steady",
			Ops:  ops,
			Workload: workload.Spec{
				Mix:    workload.ReadHeavy,
				Access: distgen.Static{G: distgen.NewUniform(2, 0, 1<<40)},
			},
		}},
	}
}

func shiftScenario() Scenario {
	s := quickScenario(4000)
	s.Name = "shift"
	s.Phases = append(s.Phases, Phase{
		Name: "shifted",
		Ops:  4000,
		Workload: workload.Spec{
			Mix:    workload.Balanced,
			Access: distgen.Static{G: distgen.NewClustered(3, 5, 1e9)},
			InsertKeys: distgen.Static{
				G: distgen.NewUniform(4, 1<<41, 1<<42)},
		},
	})
	return s
}

func TestRunnerBasics(t *testing.T) {
	res, err := NewRunner().Run(quickScenario(3000), NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.DurationNs <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if res.Cumulative.Total() != 3000 {
		t.Fatal("cumulative curve incomplete")
	}
	if res.Latency.Count() != 3000 {
		t.Fatal("latency histogram incomplete")
	}
	if res.SLANs <= 0 {
		t.Fatal("no SLA calibrated")
	}
	if res.SUT != "btree" || res.Scenario != "quick" {
		t.Fatal("labels missing")
	}
}

func TestRunnerDeterministic(t *testing.T) {
	a, err := NewRunner().Run(shiftScenario(), NewALEXSUT())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner().Run(shiftScenario(), NewALEXSUT())
	if err != nil {
		t.Fatal(err)
	}
	if a.DurationNs != b.DurationNs || a.Completed != b.Completed {
		t.Fatalf("runs differ: %d/%d vs %d/%d", a.DurationNs, a.Completed, b.DurationNs, b.Completed)
	}
	if a.Latency.Quantile(0.99) != b.Latency.Quantile(0.99) {
		t.Fatal("latency distributions differ")
	}
}

func TestRunnerTrainingCharged(t *testing.T) {
	res, err := NewRunner().Run(quickScenario(1000), NewRMISUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.OfflineTrainWork <= 0 {
		t.Fatal("RMI training not charged")
	}
	if res.Models <= 0 {
		t.Fatal("no models reported")
	}
	// B+ tree has no training.
	bres, err := NewRunner().Run(quickScenario(1000), NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if bres.OfflineTrainWork != 0 {
		t.Fatal("btree charged training")
	}
}

func TestRunnerPhases(t *testing.T) {
	res, err := NewRunner().Run(shiftScenario(), NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	if len(res.PhaseStarts) != 2 || res.PhaseStarts[1] <= res.PhaseStarts[0] {
		t.Fatalf("phase starts = %v", res.PhaseStarts)
	}
	if len(res.PostChangeLatencies) != 1 || len(res.PostChangeLatencies[0]) == 0 {
		t.Fatal("post-change latencies missing")
	}
	for _, p := range res.Phases {
		if p.Completed != 4000 {
			t.Fatalf("phase %s completed %d", p.Name, p.Completed)
		}
		if p.Throughput() <= 0 {
			t.Fatalf("phase %s throughput", p.Name)
		}
	}
}

func TestRunnerRetrainBefore(t *testing.T) {
	s := shiftScenario()
	s.Phases[1].RetrainBefore = true
	res, err := NewRunner().Run(s, NewRMISUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases[1].RetrainWork <= 0 {
		t.Fatal("scheduled retrain not recorded")
	}
}

func TestRunnerRetrainAccounting(t *testing.T) {
	// Three retraining windows across a multi-phase scenario: every one
	// must be counted, and model counts must not be lost by overwriting.
	s := shiftScenario()
	s.Phases[1].RetrainBefore = true
	s.Phases = append(s.Phases, Phase{
		Name:          "third",
		Ops:           2000,
		RetrainBefore: true,
		Workload: workload.Spec{
			Mix:    workload.ReadHeavy,
			Access: distgen.Static{G: distgen.NewUniform(5, 0, 1<<40)},
		},
	}, Phase{
		Name:          "fourth",
		Ops:           2000,
		RetrainBefore: true,
		Workload: workload.Spec{
			Mix:    workload.ReadHeavy,
			Access: distgen.Static{G: distgen.NewUniform(6, 0, 1<<40)},
		},
	})
	res, err := NewRunner().Run(s, NewRMISUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retrains != 3 {
		t.Fatalf("retrains = %d, want 3", res.Retrains)
	}
	if res.Models <= 0 || res.MaxModels < res.Models {
		t.Fatalf("model accounting: last %d, max %d", res.Models, res.MaxModels)
	}
	var windows int
	for _, p := range res.Phases {
		if p.RetrainWork > 0 {
			windows++
		}
	}
	if windows != 3 {
		t.Fatalf("retrain work recorded in %d phases, want 3", windows)
	}
	// An untrained SUT must report zero retrains even with windows set.
	bres, err := NewRunner().Run(s, NewHashSUT())
	if err != nil {
		t.Fatal(err)
	}
	if bres.Retrains != 0 {
		t.Fatalf("untrainable SUT reports %d retrains", bres.Retrains)
	}
}

func TestRunnerBandsCoverAllOps(t *testing.T) {
	res, err := NewRunner().Run(shiftScenario(), NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, iv := range res.Bands.Intervals() {
		total += iv.Completed
	}
	if total != res.Completed {
		t.Fatalf("bands cover %d of %d ops", total, res.Completed)
	}
}

func TestRunnerBandsTinyFirstPhase(t *testing.T) {
	// Phase 0 shorter than the 1000-op calibration window: bands must
	// still cover everything.
	s := shiftScenario()
	s.Phases[0].Ops = 200
	res, err := NewRunner().Run(s, NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, iv := range res.Bands.Intervals() {
		total += iv.Completed
	}
	if total != res.Completed {
		t.Fatalf("bands cover %d of %d ops", total, res.Completed)
	}
}

func TestRunnerFixedSLA(t *testing.T) {
	s := quickScenario(1000)
	s.SLANs = 123456
	res, err := NewRunner().Run(s, NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.SLANs != 123456 || res.Bands.SLA() != 123456 {
		t.Fatalf("fixed SLA not honoured: %d", res.SLANs)
	}
}

func TestRunnerOnlineLearnerAccounting(t *testing.T) {
	// ALEX under heavy inserts must accumulate online training work.
	s := quickScenario(1000)
	s.Phases[0].Workload.Mix = workload.WriteHeavy
	s.Phases[0].Workload.InsertKeys = distgen.Static{G: distgen.NewUniform(9, 0, 1<<50)}
	s.Phases[0].Ops = 20000
	res, err := NewRunner().Run(s, NewALEXSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineTrainWork <= 0 {
		t.Fatal("online training work not collected")
	}
}

func TestRunnerValidation(t *testing.T) {
	r := NewRunner()
	bad := []Scenario{
		{},
		{InitialData: distgen.NewUniform(1, 0, 10)},
		{InitialData: distgen.NewUniform(1, 0, 10), Phases: []Phase{{Ops: 0}}},
		{InitialData: distgen.NewUniform(1, 0, 10), Phases: []Phase{{Ops: 5}}},
	}
	for i, s := range bad {
		if _, err := r.Run(s, NewBTreeSUT()); err == nil {
			t.Fatalf("scenario %d: no validation error", i)
		}
	}
}

func TestRunnerOpenLoopQueueing(t *testing.T) {
	// An arrival rate far above service capacity must produce latencies
	// far beyond service time (queueing delay) — the mechanism behind
	// realistic SLA violations under bursts.
	s := quickScenario(3000)
	s.Phases[0].Arrival = workload.NewPoisson(5, 5_000_000) // 5M/s: saturating
	res, err := NewRunner().Run(s, NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	closed, err := NewRunner().Run(quickScenario(3000), NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Quantile(0.99) <= 2*closed.Latency.Quantile(0.99) {
		t.Fatalf("saturated open loop p99 (%d) not above closed loop (%d)",
			res.Latency.Quantile(0.99), closed.Latency.Quantile(0.99))
	}
}

func TestRunAllParallelBitIdentical(t *testing.T) {
	// The orchestration guarantee: RunAll fans runs out across workers
	// without changing a single bit of any result, because every stateful
	// input is materialized before the fan-out.
	// Generators are stateful, so each RunAll gets a freshly built
	// scenario; the seeds inside make the two builds identical.
	mk := func() Scenario {
		s := shiftScenario()
		s.Phases[1].RetrainBefore = true
		return s
	}
	serial := NewRunner()
	serial.Parallel = 1
	parallel := NewRunner()
	parallel.Parallel = 8

	a, err := serial.RunAll(mk(), StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.RunAll(mk(), StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if ra.SUT != rb.SUT {
			t.Fatalf("order differs at %d: %s vs %s", i, ra.SUT, rb.SUT)
		}
		if ra.DurationNs != rb.DurationNs || ra.Completed != rb.Completed ||
			ra.SLANs != rb.SLANs || ra.OfflineTrainWork != rb.OfflineTrainWork ||
			ra.OnlineTrainWork != rb.OnlineTrainWork || ra.Retrains != rb.Retrains ||
			ra.Models != rb.Models {
			t.Fatalf("%s: headline metrics differ between serial and parallel", ra.SUT)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 1} {
			if ra.Latency.Quantile(q) != rb.Latency.Quantile(q) {
				t.Fatalf("%s: latency q%.2f differs", ra.SUT, q)
			}
		}
		if ra.Bands.ViolationRate() != rb.Bands.ViolationRate() {
			t.Fatalf("%s: violation rates differ", ra.SUT)
		}
		iva, ivb := ra.Bands.Intervals(), rb.Bands.Intervals()
		if len(iva) != len(ivb) {
			t.Fatalf("%s: band interval counts differ", ra.SUT)
		}
		for j := range iva {
			if iva[j] != ivb[j] {
				t.Fatalf("%s: band interval %d differs: %+v vs %+v", ra.SUT, j, iva[j], ivb[j])
			}
		}
	}
}

func TestRunAll(t *testing.T) {
	results, err := NewRunner().RunAll(quickScenario(500), StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.SUT] = true
	}
	for _, want := range []string{"btree", "hash", "rmi", "alex"} {
		if !names[want] {
			t.Fatalf("missing SUT %s in %v", want, names)
		}
	}
}

func TestHoldoutRegistry(t *testing.T) {
	reg := NewHoldoutRegistry()
	if err := reg.Register("secret", func() Scenario { return quickScenario(300) }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("secret", func() Scenario { return quickScenario(300) }); err == nil {
		t.Fatal("duplicate registration allowed")
	}
	r := NewRunner()
	res, err := reg.RunOnce(r, "secret", NewBTreeSUT)
	if err != nil || res.Completed != 300 {
		t.Fatalf("first run: %v", err)
	}
	if _, err := reg.RunOnce(r, "secret", NewBTreeSUT); err == nil {
		t.Fatal("second attempt allowed")
	}
	// A different SUT still gets its attempt.
	if _, err := reg.RunOnce(r, "secret", NewRMISUT); err != nil {
		t.Fatalf("different SUT blocked: %v", err)
	}
	if _, err := reg.RunOnce(r, "ghost", NewBTreeSUT); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown hold-out: %v", err)
	}
	if len(reg.Names()) != 1 {
		t.Fatalf("names = %v", reg.Names())
	}
}

func TestKVSUTRuns(t *testing.T) {
	s := quickScenario(2000)
	s.Phases[0].Workload.Mix = workload.Balanced
	res, err := NewRunner().Run(s, NewKVSUTDefault())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2000 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestAdaptabilityShiftVisibleInMetrics(t *testing.T) {
	// Integration: on an abrupt insert-flood shift, the learned adaptive
	// index must show online work AND the metrics must register phase
	// boundaries usable for adaptation analysis.
	s := shiftScenario()
	s.Phases[1].Workload.Mix = workload.WriteHeavy
	res, err := NewRunner().Run(s, NewALEXSUT())
	if err != nil {
		t.Fatal(err)
	}
	changeAt := res.PhaseStarts[1]
	if changeAt <= 0 || changeAt >= res.DurationNs {
		t.Fatalf("change instant %d outside run", changeAt)
	}
	if res.Timeline.Intervals() < 2 {
		t.Fatal("timeline too coarse to analyze")
	}
}
