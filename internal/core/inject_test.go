package core

import (
	"strings"
	"testing"
)

// TestInjectedFaultIsDetected is the benchmark's sensitivity check: a 60x
// slowdown injected into the middle of a steady run must be visible in
// every adaptability metric the paper proposes.
func TestInjectedFaultIsDetected(t *testing.T) {
	s := quickScenario(9000)
	sut := NewDegradedSUT(NewBTreeSUT(), 60, 3000, 4500)
	res, err := NewRunner().Run(s, sut)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := NewRunner().Run(s, NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}

	// 1. The timeline dips during the fault.
	faultStart := res.DurationNs / 3 // approximate: first third is healthy
	if dip := res.Timeline.DipDepth(faultStart); dip < 0.5 {
		t.Fatalf("dip depth %v — fault invisible in the timeline", dip)
	}
	// 2. SLA bands light up only in the degraded run.
	if res.Bands.ViolationRate() <= healthy.Bands.ViolationRate() {
		t.Fatalf("violations: degraded %v vs healthy %v",
			res.Bands.ViolationRate(), healthy.Bands.ViolationRate())
	}
	if res.Bands.ViolationRate() < 0.05 {
		t.Fatalf("degraded violation rate %v too low to notice", res.Bands.ViolationRate())
	}
	// 3. The cumulative curve departs from ideal more than the healthy run.
	if res.Cumulative.AreaVsIdeal() <= healthy.Cumulative.AreaVsIdeal() {
		t.Fatal("area-vs-ideal does not reflect the fault")
	}
	// 4. The run is slower overall.
	if res.Throughput() >= healthy.Throughput() {
		t.Fatal("throughput unaffected by a 60x fault")
	}
}

func TestDegradedSUTWindowBounds(t *testing.T) {
	// Materialize so both runs replay identical inputs (generators are
	// stateful; without pinning, the comparison would be apples/oranges).
	s := quickScenario(3000).Materialize()
	// Fault window entirely after the run: no effect.
	sut := NewDegradedSUT(NewBTreeSUT(), 50, 10_000, 20_000)
	res, err := NewRunner().Run(s, sut)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := NewRunner().Run(s, NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.DurationNs != healthy.DurationNs {
		t.Fatalf("out-of-window fault changed the run: %d vs %d",
			res.DurationNs, healthy.DurationNs)
	}
}

func TestDegradedSUTPassthrough(t *testing.T) {
	inner := NewRMISUT()
	d := NewDegradedSUT(inner, 0, 0, 0) // factor clamps to 1
	if !strings.Contains(d.Name(), "rmi") || !strings.Contains(d.Name(), "fault") {
		t.Fatalf("name = %q", d.Name())
	}
	d.Load([]uint64{1, 2, 3}, []uint64{10, 20, 30})
	rep := d.Train()
	if rep.Models == 0 {
		t.Fatal("Train not forwarded to trainable inner SUT")
	}
	if d.OnlineTrainWork() != 0 {
		t.Fatal("unexpected online work")
	}
	// Non-trainable inner: zero-value report, no panic.
	d2 := NewDegradedSUT(NewBTreeSUT(), 2, 0, 10)
	if d2.Train().WorkUnits != 0 || d2.OnlineTrainWork() != 0 {
		t.Fatal("non-trainable passthrough")
	}
}
