package core

import (
	"fmt"

	"repro/internal/workload"
)

// DegradedSUT wraps a SUT and injects a work-multiplier fault during a
// window of the run — modelling a background failure (device slowdown,
// noisy neighbour, partial outage) in the spirit of the Under Pressure
// benchmark the paper cites for shifting-conditions evaluation.
//
// Its purpose is meta-validation: a benchmark that claims to measure
// adaptability must *detect* an injected disruption in its own metrics
// (bands light up, the timeline dips, adaptation time is measurable).
// TestInjectedFaultIsDetected asserts exactly that.
type DegradedSUT struct {
	Inner SUT
	// Factor multiplies every operation's Work while degraded (>= 1).
	Factor int64
	// FromOp and ToOp bound the degraded window in completed-operation
	// counts (the wrapper counts Do calls).
	FromOp, ToOp int64

	ops int64
}

// NewDegradedSUT wraps inner with a fault window.
func NewDegradedSUT(inner SUT, factor int64, fromOp, toOp int64) *DegradedSUT {
	if factor < 1 {
		factor = 1
	}
	return &DegradedSUT{Inner: inner, Factor: factor, FromOp: fromOp, ToOp: toOp}
}

// Name implements SUT.
func (d *DegradedSUT) Name() string {
	return fmt.Sprintf("%s+fault(x%d)", d.Inner.Name(), d.Factor)
}

// Load implements SUT.
func (d *DegradedSUT) Load(keys, values []uint64) { d.Inner.Load(keys, values) }

// Do implements SUT, inflating Work inside the fault window.
func (d *DegradedSUT) Do(op workload.Op) OpResult {
	res := d.Inner.Do(op)
	if d.ops >= d.FromOp && d.ops < d.ToOp {
		res.Work *= d.Factor
	}
	d.ops++
	return res
}

// Train implements Trainable when the inner SUT does.
func (d *DegradedSUT) Train() TrainReport {
	if tr, ok := d.Inner.(Trainable); ok {
		return tr.Train()
	}
	return TrainReport{}
}

// OnlineTrainWork implements OnlineLearner when the inner SUT does.
func (d *DegradedSUT) OnlineTrainWork() int64 {
	if ol, ok := d.Inner.(OnlineLearner); ok {
		return ol.OnlineTrainWork()
	}
	return 0
}

var (
	_ SUT           = (*DegradedSUT)(nil)
	_ Trainable     = (*DegradedSUT)(nil)
	_ OnlineLearner = (*DegradedSUT)(nil)
)
