package core

import (
	"fmt"
	"sync"
)

// HoldoutRegistry implements the paper's out-of-sample evaluation idea
// (§V-A): hold-out workload and data distributions "that the system is
// only allowed to execute once". Scenario factories are registered sealed
// — identified by name, their contents never enumerated — and each SUT
// name gets exactly one run per hold-out. A second attempt returns an
// error, mirroring the benchmark-as-a-service gatekeeping the paper
// proposes.
type HoldoutRegistry struct {
	mu        sync.Mutex
	factories map[string]func() Scenario
	used      map[string]bool // "scenario|sut" -> consumed
}

// NewHoldoutRegistry returns an empty registry.
func NewHoldoutRegistry() *HoldoutRegistry {
	return &HoldoutRegistry{
		factories: make(map[string]func() Scenario),
		used:      make(map[string]bool),
	}
}

// Register seals a hold-out scenario factory under a name. Registering the
// same name twice is a configuration bug and returns an error.
func (h *HoldoutRegistry) Register(name string, factory func() Scenario) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.factories[name]; dup {
		return fmt.Errorf("core: hold-out %q already registered", name)
	}
	h.factories[name] = factory
	return nil
}

// Names lists registered hold-outs (names only — contents stay sealed).
func (h *HoldoutRegistry) Names() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.factories))
	for n := range h.factories {
		out = append(out, n)
	}
	return out
}

// Consumed reports whether the (hold-out, SUT-name) attempt is spent.
func (h *HoldoutRegistry) Consumed(name, sutName string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.used[name+"|"+sutName]
}

// RunOnce executes the named hold-out against the SUT built by factory,
// consuming the SUT's single attempt. Subsequent calls for the same
// (hold-out, SUT-name) pair fail even if the first run errored — a spent
// attempt is spent, exactly like a benchmark-as-a-service submission.
//
// RunOnce is safe for concurrent use (the service's queue workers call it
// from several goroutines): the attempt is claimed atomically under the
// registry mutex, so of N concurrent submissions for the same pair
// exactly one runs. The SUT and scenario factories execute outside the
// lock — they may be slow and may themselves consult the registry.
func (h *HoldoutRegistry) RunOnce(r *Runner, name string, sutFactory func() SUT) (*Result, error) {
	sut := sutFactory()
	key := name + "|" + sut.Name()

	h.mu.Lock()
	f, ok := h.factories[name]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: unknown hold-out %q", name)
	}
	if h.used[key] {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: hold-out %q already consumed by %q", name, sut.Name())
	}
	h.used[key] = true
	h.mu.Unlock()

	return r.Run(f(), sut)
}
