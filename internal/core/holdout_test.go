package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/distgen"
	"repro/internal/workload"
)

func holdoutScenario() Scenario {
	return Scenario{
		Name:        "sealed",
		Seed:        5,
		InitialData: distgen.NewUniform(6, 0, 1<<30),
		InitialSize: 500,
		Phases: []Phase{{
			Name: "steady",
			Ops:  2000,
			Workload: workload.Spec{
				Mix:    workload.ReadHeavy,
				Access: distgen.Static{G: distgen.NewUniform(7, 0, 1<<30)},
			},
		}},
	}
}

// TestHoldoutConcurrentRunOnce hammers one (hold-out, SUT) pair from many
// goroutines: exactly one attempt may win. Run under -race this also
// checks the registry's bookkeeping is data-race free — the service calls
// RunOnce from multiple queue workers.
func TestHoldoutConcurrentRunOnce(t *testing.T) {
	reg := NewHoldoutRegistry()
	if err := reg.Register("sealed", holdoutScenario); err != nil {
		t.Fatal(err)
	}
	r := NewRunner()

	const attempts = 16
	var ok, spent atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := reg.RunOnce(r, "sealed", NewBTreeSUT)
			switch {
			case err == nil && res != nil:
				ok.Add(1)
			case err != nil && strings.Contains(err.Error(), "already consumed"):
				spent.Add(1)
			default:
				t.Errorf("unexpected outcome: res=%v err=%v", res, err)
			}
		}()
	}
	wg.Wait()
	if ok.Load() != 1 || spent.Load() != attempts-1 {
		t.Fatalf("wins=%d spent=%d, want exactly one win of %d attempts", ok.Load(), spent.Load(), attempts)
	}
	if !reg.Consumed("sealed", NewBTreeSUT().Name()) {
		t.Fatal("Consumed does not reflect the spent attempt")
	}
}

// TestHoldoutConcurrentRegisterAndRun interleaves Register, Names, and
// RunOnce across goroutines — the service registers hold-outs at startup
// while probes may already be listing them.
func TestHoldoutConcurrentRegisterAndRun(t *testing.T) {
	reg := NewHoldoutRegistry()
	r := NewRunner()
	names := []string{"h0", "h1", "h2", "h3"}
	var wg sync.WaitGroup
	for _, name := range names {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := reg.Register(name, holdoutScenario); err != nil {
				t.Errorf("register %s: %v", name, err)
				return
			}
			if _, err := reg.RunOnce(r, name, NewHashSUT); err != nil {
				t.Errorf("run %s: %v", name, err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg.Names()
		}()
	}
	wg.Wait()
	if got := len(reg.Names()); got != len(names) {
		t.Fatalf("registered %d of %d", got, len(names))
	}
	for _, name := range names {
		if !reg.Consumed(name, NewHashSUT().Name()) {
			t.Fatalf("%s not consumed", name)
		}
	}
}

// TestHoldoutDistinctSUTsDontCollide: one run per SUT name, not one per
// registry.
func TestHoldoutDistinctSUTs(t *testing.T) {
	reg := NewHoldoutRegistry()
	if err := reg.Register("sealed", holdoutScenario); err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	if _, err := reg.RunOnce(r, "sealed", NewBTreeSUT); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.RunOnce(r, "sealed", NewRMISUT); err != nil {
		t.Fatalf("second SUT blocked by first SUT's attempt: %v", err)
	}
	if _, err := reg.RunOnce(r, "sealed", NewRMISUT); err == nil {
		t.Fatal("repeat attempt for the same SUT succeeded")
	}
}
