package core

import (
	"fmt"

	"repro/internal/distgen"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PhaseResult carries the per-phase measurements that back Figure 1a: one
// phase is one workload/data situation, summarized by descriptive
// throughput statistics rather than a single average.
type PhaseResult struct {
	Name string
	// StartNs/EndNs are virtual times bounding the phase.
	StartNs, EndNs int64
	Completed      int64
	Latency        *metrics.Histogram
	// RetrainWork is the training work charged by a RetrainBefore window.
	RetrainWork int64
}

// Throughput returns the phase's average throughput in ops/second.
func (p PhaseResult) Throughput() float64 {
	d := p.EndNs - p.StartNs
	if d <= 0 {
		return 0
	}
	return float64(p.Completed) / (float64(d) / 1e9)
}

// Result is the full outcome of one scenario run against one SUT,
// carrying every metric family of Figure 1.
type Result struct {
	Scenario string
	SUT      string

	// Figure 1a: per-interval throughput and latency.
	Timeline *metrics.Timeline
	// Figure 1b: cumulative completions over virtual time.
	Cumulative *metrics.CumCurve
	// Figure 1c: SLA latency bands.
	Bands *metrics.BandTracker
	// Overall latency histogram.
	Latency *metrics.Histogram
	// Per-phase breakdown.
	Phases []PhaseResult
	// PhaseStarts are the virtual times each phase began — the
	// "distribution change" instants for adaptation metrics.
	PhaseStarts []int64
	// PostChangeLatencies records, for each phase after the first, the
	// latencies of the first operations after the change (input to the
	// AdjustmentSpeed metric).
	PostChangeLatencies [][]int64

	// Lesson 3: training accounting.
	OfflineTrainWork int64
	OnlineTrainWork  int64
	// Models is the model count reported by the most recent training step;
	// MaxModels is the largest count any training step reported. Retrains
	// counts the scheduled RetrainBefore windows that actually trained, so
	// multi-phase scenarios keep their full training history.
	Models    int
	MaxModels int
	Retrains  int

	// SLA threshold used (ns).
	SLANs int64
	// Total virtual duration (ns) and completed ops.
	DurationNs int64
	Completed  int64
}

// recordModels folds one training report's model count into the result:
// Models tracks the latest count, MaxModels the peak across all training
// steps of the run.
func (r *Result) recordModels(models int) {
	r.Models = models
	if models > r.MaxModels {
		r.MaxModels = models
	}
}

// Throughput returns the run's overall average throughput (ops/sec).
func (r *Result) Throughput() float64 {
	if r.DurationNs <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.DurationNs) / 1e9)
}

// Runner executes scenarios against SUTs on a virtual clock.
type Runner struct {
	Cost sim.CostModel
	// PostChangeN is how many operations after each phase change feed
	// the adjustment-speed metric (default 1000).
	PostChangeN int
	// Parallel bounds how many SUT runs RunAll executes concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 runs serially. Results are
	// returned in factory order and, because RunAll materializes every
	// stateful input first, are bit-identical at any setting.
	Parallel int
}

// NewRunner returns a runner with the default cost model.
func NewRunner() *Runner {
	return &Runner{Cost: sim.DefaultCostModel(), PostChangeN: 1000}
}

// Run executes the scenario against the SUT and returns the full result.
func (r *Runner) Run(s Scenario, sut SUT) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clock := &sim.Virtual{}

	// Load the initial database (pinned keys when materialized, so
	// compared SUTs see identical data).
	keys := s.InitialKeys
	if keys == nil {
		keys = distgen.UniqueKeys(s.InitialData, s.InitialSize)
	}
	values := make([]uint64, len(keys))
	for i, k := range keys {
		values[i] = k ^ 0xDEADBEEF
	}
	sut.Load(keys, values)

	res := &Result{
		Scenario:   s.Name,
		SUT:        sut.Name(),
		Timeline:   metrics.NewTimeline(s.interval()),
		Cumulative: &metrics.CumCurve{},
		Latency:    metrics.NewHistogram(),
	}

	// Offline training phase (charged, not hidden — Lesson 3).
	if s.TrainBefore {
		if tr, ok := sut.(Trainable); ok {
			rep := tr.Train()
			res.OfflineTrainWork += rep.WorkUnits
			res.recordModels(rep.Models)
			clock.Advance(r.Cost.TrainTime(rep.WorkUnits))
		}
	}

	// SLA: fixed by scenario, else calibrated deterministically from the
	// first phase's first (up to) 1000 latencies — the paper's rule of
	// deriving the threshold from baseline latency statistics on the
	// same workload. Until the threshold exists, completions are parked
	// in `pending` and replayed into the band tracker on creation.
	sla := s.SLANs
	bands := (*metrics.BandTracker)(nil)
	var pending []comp

	onlineBase := int64(0)
	if ol, ok := sut.(OnlineLearner); ok {
		onlineBase = ol.OnlineTrainWork()
	}

	var completed int64
	for pi, phase := range s.Phases {
		pres := PhaseResult{Name: phase.Name, StartNs: clock.Now(), Latency: metrics.NewHistogram()}
		res.PhaseStarts = append(res.PhaseStarts, pres.StartNs)

		if phase.RetrainBefore {
			if tr, ok := sut.(Trainable); ok {
				rep := tr.Train()
				// Adapters report an empty TrainReport for SUTs with
				// nothing to train; only real training counts as a
				// retrain window.
				if rep.WorkUnits > 0 || rep.Models > 0 {
					pres.RetrainWork = rep.WorkUnits
					res.OfflineTrainWork += rep.WorkUnits
					res.Retrains++
					res.recordModels(rep.Models)
					clock.Advance(r.Cost.TrainTime(rep.WorkUnits))
				}
			}
		}

		var gen *workload.Generator
		var arrival workload.Arrival
		if phase.Trace == nil {
			gen = workload.NewGenerator(phase.Workload, s.Seed+uint64(pi)*7919+1)
			arrival = phase.Arrival
			if arrival == nil {
				arrival = workload.ClosedLoop{}
			}
		}

		// Single-server queue in virtual time.
		prevArrival := clock.Now()
		serverFree := clock.Now()
		var postChange []int64

		for i := 0; i < phase.Ops; i++ {
			progress := float64(i) / float64(phase.Ops)
			var op workload.Op
			var gap int64
			if phase.Trace != nil {
				op = phase.Trace.Ops[i]
				gap = phase.Trace.Gaps[i]
			} else {
				op = gen.Next(progress)
				gap = arrival.NextGap(progress)
			}
			var arrive int64
			if gap == 0 {
				// Closed loop: arrive when the server frees up.
				arrive = serverFree
			} else {
				arrive = prevArrival + gap
			}
			prevArrival = arrive

			start := arrive
			if serverFree > start {
				start = serverFree
			}
			opRes := sut.Do(op)
			service := r.Cost.ServiceTime(opRes.Work)
			done := start + service
			serverFree = done
			clock.AdvanceTo(done)

			latency := done - arrive
			completed++
			res.Cumulative.Add(done, completed)
			res.Timeline.Record(done, latency)
			res.Latency.Record(latency)
			pres.Latency.Record(latency)
			pres.Completed++

			if bands == nil {
				pending = append(pending, comp{done, latency})
				if sla == 0 && len(pending) == 1000 {
					sla = calibrateComps(pending)
				}
				if sla > 0 {
					bands = metrics.NewBandTracker(sla, s.interval())
					for _, c := range pending {
						bands.Record(c.t, c.lat)
					}
					pending = nil
				}
			} else {
				bands.Record(done, latency)
			}
			if pi > 0 && len(postChange) < r.PostChangeN {
				postChange = append(postChange, latency)
			}
		}
		pres.EndNs = clock.Now()
		res.Phases = append(res.Phases, pres)
		if pi > 0 {
			res.PostChangeLatencies = append(res.PostChangeLatencies, postChange)
		}
		if pi == 0 && sla == 0 {
			// Phase 0 shorter than the calibration window: calibrate
			// from whatever it produced so later phases are tracked.
			sla = calibrateComps(pending)
		}
		if bands == nil && sla > 0 {
			bands = metrics.NewBandTracker(sla, s.interval())
			for _, c := range pending {
				bands.Record(c.t, c.lat)
			}
			pending = nil
		}
	}

	if bands == nil {
		bands = metrics.NewBandTracker(calibrateComps(pending), s.interval())
		for _, c := range pending {
			bands.Record(c.t, c.lat)
		}
	}
	if sla == 0 {
		sla = bands.SLA()
	}
	res.Bands = bands
	res.SLANs = sla
	res.DurationNs = clock.Now()
	res.Completed = completed
	if ol, ok := sut.(OnlineLearner); ok {
		res.OnlineTrainWork = ol.OnlineTrainWork() - onlineBase
	}
	return res, nil
}

// calibrateComps derives an SLA threshold from observed completions per
// the paper's baseline-statistics rule: a generous multiple of the median
// so that steady-state operation is comfortably within SLA and only
// adaptation disruptions violate it.
// comp is a parked completion awaiting SLA calibration.
type comp struct{ t, lat int64 }

func calibrateComps(comps []comp) int64 {
	if len(comps) == 0 {
		return 1_000_000 // 1ms fallback
	}
	h := metrics.NewHistogram()
	for _, c := range comps {
		h.Record(c.lat)
	}
	return metrics.CalibrateSLA(h, 0.5, 20)
}

// RunAll executes the scenario against multiple SUT factories, returning
// results in factory order. A factory builds a fresh SUT so runs are
// independent; the initial database and every phase's operation/arrival
// stream are materialized once so every SUT replays identical inputs
// (fair head-to-head comparison). Because each run is then a pure
// function of the pinned scenario and its own SUT, RunAll fans the runs
// out across Runner.Parallel workers without changing any result bit.
func (r *Runner) RunAll(s Scenario, factories []func() SUT) ([]*Result, error) {
	s = s.Materialize()
	out := make([]*Result, len(factories))
	err := par.ForEach(len(factories), r.Parallel, func(i int) error {
		res, err := r.Run(s, factories[i]())
		if err != nil {
			return fmt.Errorf("core: running %s: %w", s.Name, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
