package core

import (
	"fmt"
	"sync"

	"repro/internal/distgen"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runScratch holds one run's dispatch buffers. Runs borrow it from
// runScratchPool so repeated Run calls and concurrent RunAll workers reuse
// the same arenas instead of reallocating per run; nothing in it escapes
// into the Result (per-op outputs are copied out as they are priced).
type runScratch struct {
	ops  []workload.Op
	gaps []int64
	outs []OpResult
}

var runScratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// ensure sizes the buffers for the given batch width, reusing capacity.
func (sc *runScratch) ensure(batch int) {
	if cap(sc.ops) < batch {
		sc.ops = make([]workload.Op, batch)
		sc.gaps = make([]int64, batch)
		sc.outs = make([]OpResult, batch)
	}
	sc.ops = sc.ops[:batch]
	sc.gaps = sc.gaps[:batch]
	sc.outs = sc.outs[:batch]
}

// PhaseResult carries the per-phase measurements that back Figure 1a: one
// phase is one workload/data situation, summarized by descriptive
// throughput statistics rather than a single average.
type PhaseResult struct {
	Name string
	// StartNs/EndNs are virtual times bounding the phase.
	StartNs, EndNs int64
	Completed      int64
	// Failed counts operations that completed as errors (injected faults);
	// they occupy the server but are excluded from Completed and Latency.
	Failed  int64
	Latency *metrics.Histogram
	// RetrainWork is the training work charged by a RetrainBefore window.
	RetrainWork int64
}

// Throughput returns the phase's average throughput in ops/second.
func (p PhaseResult) Throughput() float64 {
	d := p.EndNs - p.StartNs
	if d <= 0 {
		return 0
	}
	return float64(p.Completed) / (float64(d) / 1e9)
}

// Result is the full outcome of one scenario run against one SUT,
// carrying every metric family of Figure 1.
type Result struct {
	Scenario string
	SUT      string

	// Snapshot is the shared measurement quadruple (Fig 1a timeline,
	// Fig 1b cumulative curve, Fig 1c SLA bands, overall latency
	// histogram) plus the SLA threshold and completion count, produced
	// by the one metrics.Collector pipeline every engine uses.
	metrics.Snapshot

	// Per-phase breakdown.
	Phases []PhaseResult
	// PhaseStarts are the virtual times each phase began — the
	// "distribution change" instants for adaptation metrics.
	PhaseStarts []int64
	// PostChangeLatencies records, for each phase after the first, the
	// latencies of the first operations after the change (input to the
	// AdjustmentSpeed metric).
	PostChangeLatencies [][]int64

	// Outcomes tallies found/not-found lookups and total SUT work, for
	// sanity-checking against real-time driver runs of the same workload.
	Outcomes OpOutcomes

	// Lesson 3: training accounting.
	OfflineTrainWork int64
	OnlineTrainWork  int64
	// Models is the model count reported by the most recent training step;
	// MaxModels is the largest count any training step reported. Retrains
	// counts the scheduled RetrainBefore windows that actually trained, so
	// multi-phase scenarios keep their full training history.
	Models    int
	MaxModels int
	Retrains  int

	// Storage summarizes buffer-pool work (hits, misses, page I/O,
	// fsyncs) for disk-backed SUTs; nil for in-memory structures.
	Storage *StorageStats

	// Total virtual duration (ns).
	DurationNs int64
}

// recordModels folds one training report's model count into the result:
// Models tracks the latest count, MaxModels the peak across all training
// steps of the run.
func (r *Result) recordModels(models int) {
	r.Models = models
	if models > r.MaxModels {
		r.MaxModels = models
	}
}

// Throughput returns the run's overall average throughput (ops/sec).
func (r *Result) Throughput() float64 {
	if r.DurationNs <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.DurationNs) / 1e9)
}

// Runner executes scenarios against SUTs on a virtual clock.
type Runner struct {
	Cost sim.CostModel
	// PostChangeN is how many operations after each phase change feed
	// the adjustment-speed metric (default 1000).
	PostChangeN int
	// Parallel bounds how many SUT runs RunAll executes concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 runs serially. Results are
	// returned in factory order and, because RunAll materializes every
	// stateful input first, are bit-identical at any setting.
	Parallel int
	// Batch is the op-dispatch batch size: up to Batch operations are
	// generated ahead and executed through the SUT's BatchSUT path (native
	// or adapted) before their completions are priced on the virtual
	// clock. 0 or 1 dispatches one op at a time. Because op generation
	// never depends on execution results and BatchSUT implementations are
	// result-equivalent to sequential Do, results are byte-identical at
	// every batch size.
	Batch int
	// WrapSUT, when set, wraps the SUT after the run's virtual clock is
	// created but before the initial load — the injection point for
	// middleware that needs the run's own clock (fault.Wrap). A wrapper
	// returning its argument unchanged leaves the run untouched.
	WrapSUT func(sut SUT, clock sim.Clock) SUT
	// TraceSink, when set, records the exact operation/gap stream each
	// phase executes (whatever its source — generator, pinned trace, or
	// replay) into the writer, one BeginPhase per phase. The recorded
	// trace replayed through workload.TraceReader sources reproduces the
	// run byte-for-byte. The writer is not safe for concurrent runs: set
	// it only on a runner executing a single Run (not RunAll with
	// Parallel > 1).
	TraceSink *workload.TraceWriter
}

// NewRunner returns a runner with the default cost model.
func NewRunner() *Runner {
	return &Runner{Cost: sim.DefaultCostModel(), PostChangeN: 1000}
}

// Run executes the scenario against the SUT and returns the full result.
func (r *Runner) Run(s Scenario, sut SUT) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clock := &sim.Virtual{}
	pool := PoolOf(sut) // before wrapping: middleware hides the accessor
	if r.WrapSUT != nil {
		sut = r.WrapSUT(sut, clock)
	}

	// Load the initial database (pinned keys when materialized, so
	// compared SUTs see identical data).
	keys := s.InitialKeys
	if keys == nil {
		keys = distgen.UniqueKeys(s.InitialData, s.InitialSize)
	}
	sut.Load(keys, LoadValues(keys))

	res := &Result{Scenario: s.Name, SUT: sut.Name()}

	// Offline training phase (charged, not hidden — Lesson 3).
	if s.TrainBefore {
		if tr, ok := sut.(Trainable); ok {
			rep := tr.Train()
			res.OfflineTrainWork += rep.WorkUnits
			res.recordModels(rep.Models)
			clock.Advance(r.Cost.TrainTime(rep.WorkUnits))
		}
	}

	// One measurement pipeline for the whole run. SLA: fixed by the
	// scenario, else calibrated deterministically from the first phase's
	// first (up to) 1000 latencies — the paper's rule of deriving the
	// threshold from baseline latency statistics on the same workload.
	colCfg := metrics.CollectorConfig{
		IntervalNs: s.interval(),
		SLANs:      s.SLANs,
	}
	if s.Session != nil {
		colCfg.SessionBudgetNs = s.Session.BudgetNs
	}
	col := metrics.NewCollector(colCfg)

	batch := r.Batch
	if batch < 1 {
		batch = 1
	}
	bsut := AsBatch(sut)
	scratch := runScratchPool.Get().(*runScratch)
	scratch.ensure(batch)
	defer runScratchPool.Put(scratch)
	ops, gaps, outs := scratch.ops, scratch.gaps, scratch.outs

	onlineBase := int64(0)
	if ol, ok := sut.(OnlineLearner); ok {
		onlineBase = ol.OnlineTrainWork()
	}

	// Session segmentation state: the very first op always opens a
	// session; afterwards a gap at or above the spec's boundary does.
	sessionStarted := false

	for pi, phase := range s.Phases {
		pres := PhaseResult{Name: phase.Name, StartNs: clock.Now(), Latency: metrics.NewHistogram()}
		res.PhaseStarts = append(res.PhaseStarts, pres.StartNs)

		if phase.RetrainBefore {
			if tr, ok := sut.(Trainable); ok {
				rep := tr.Train()
				// Adapters report an empty TrainReport for SUTs with
				// nothing to train; only real training counts as a
				// retrain window.
				if rep.WorkUnits > 0 || rep.Models > 0 {
					pres.RetrainWork = rep.WorkUnits
					res.OfflineTrainWork += rep.WorkUnits
					res.Retrains++
					res.recordModels(rep.Models)
					clock.Advance(r.Cost.TrainTime(rep.WorkUnits))
				}
			}
		}

		// Select the phase's op source. A pinned trace replays verbatim;
		// an explicit Source (trace replay, synthesizer, …) is reset to
		// the phase's derived seed; otherwise the spec's generator and
		// arrival process are wrapped in a GeneratorSource — drawing the
		// byte-identical stream the pre-Source runner drew inline.
		var src workload.Source
		switch {
		case phase.Trace != nil:
			src = workload.NewTraceReader(phase.Name, phase.Trace.Ops, phase.Trace.Gaps)
		case phase.Source != nil:
			src = phase.Source
			src.Reset(workload.PhaseSeed(s.Seed, pi))
		default:
			src = workload.NewSource(phase.Workload, phase.Arrival, workload.PhaseSeed(s.Seed, pi))
		}
		if r.TraceSink != nil {
			r.TraceSink.BeginPhase(pi, phase.Name, phase.Ops)
			src = workload.Record(src, r.TraceSink)
		}

		// Single-server queue in virtual time. Operations are generated
		// and dispatched in batches; generation draws (op stream, arrival
		// gaps) never depend on execution results, so the queue math below
		// prices the identical completion sequence at any batch size.
		prevArrival := clock.Now()
		serverFree := clock.Now()
		var postChange []int64

		for i := 0; i < phase.Ops; i += batch {
			bn := batch
			if rest := phase.Ops - i; bn > rest {
				bn = rest
			}
			if n := src.Fill(ops[:bn], gaps[:bn], i, phase.Ops); n != bn {
				return nil, fmt.Errorf("core: scenario %q phase %d: source %s exhausted at op %d of %d",
					s.Name, pi, src.Name(), i+n, phase.Ops)
			}
			bsut.DoBatch(ops[:bn], outs[:bn])
			for j := 0; j < bn; j++ {
				var arrive int64
				if gaps[j] == 0 {
					// Closed loop: arrive when the server frees up.
					arrive = serverFree
				} else {
					arrive = prevArrival + gaps[j]
				}
				prevArrival = arrive
				if s.Session != nil && (!sessionStarted || gaps[j] >= s.Session.GapNs) {
					col.BeginSession(arrive)
					sessionStarted = true
				}

				start := arrive
				if serverFree > start {
					start = serverFree
				}
				service := r.Cost.ServiceTime(outs[j].Work)
				done := start + service
				serverFree = done
				clock.AdvanceTo(done)

				latency := done - arrive
				if outs[j].Failed {
					// Failed ops hold the server for their work but
					// produce no latency sample: an error is not a fast
					// success, it is burned availability.
					col.RecordFailed(done)
					pres.Failed++
					res.Outcomes.Observe(ops[j], outs[j])
					continue
				}
				col.Record(done, latency)
				pres.Latency.Record(latency)
				pres.Completed++
				res.Outcomes.Observe(ops[j], outs[j])
				if pi > 0 && len(postChange) < r.PostChangeN {
					postChange = append(postChange, latency)
				}
			}
		}
		pres.EndNs = clock.Now()
		res.Phases = append(res.Phases, pres)
		if pi > 0 {
			res.PostChangeLatencies = append(res.PostChangeLatencies, postChange)
		}
		if pi == 0 {
			// Phase 0 may be shorter than the calibration window:
			// calibrate from whatever it produced so later phases are
			// tracked. No-op when band tracking already started.
			col.Calibrate()
		}
	}

	res.Snapshot = col.Snapshot()
	res.DurationNs = clock.Now()
	if ol, ok := sut.(OnlineLearner); ok {
		res.OnlineTrainWork = ol.OnlineTrainWork() - onlineBase
	}
	if pool != nil {
		res.Storage = &StorageStats{Knobs: pool.Knobs(), Counters: pool.Counters()}
	}
	return res, nil
}

// RunAll executes the scenario against multiple SUT factories, returning
// results in factory order. A factory builds a fresh SUT so runs are
// independent; the initial database and every phase's operation/arrival
// stream are materialized once so every SUT replays identical inputs
// (fair head-to-head comparison). Because each run is then a pure
// function of the pinned scenario and its own SUT, RunAll fans the runs
// out across Runner.Parallel workers without changing any result bit.
func (r *Runner) RunAll(s Scenario, factories []func() SUT) ([]*Result, error) {
	s = s.Materialize()
	out := make([]*Result, len(factories))
	err := par.ForEach(len(factories), r.Parallel, func(i int) error {
		res, err := r.Run(s, factories[i]())
		if err != nil {
			return fmt.Errorf("core: running %s: %w", s.Name, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
