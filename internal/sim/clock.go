// Package sim provides the deterministic discrete-event clock and service
// cost model the benchmark's figure experiments run on. Virtual time makes
// every experiment reproducible and machine-independent: an operation's
// latency is derived from the *work* the system under test actually
// performed (comparisons, rows probed, model retrains), using constants
// calibrated against the real micro-benchmarks in bench_test.go.
//
// This is the simulator substitution documented in DESIGN.md: the paper's
// benchmark would measure wall time on dedicated hardware; we measure work
// deterministically and convert it to time.
package sim

import "time"

// Clock abstracts time for the benchmark runner. Implementations must be
// monotone.
type Clock interface {
	// Now returns nanoseconds since the clock's epoch.
	Now() int64
	// Advance moves the clock forward by d nanoseconds (no-op on real
	// clocks, which advance themselves).
	Advance(d int64)
}

// Virtual is a discrete-event clock starting at zero. The zero value is
// ready to use.
type Virtual struct {
	now int64
}

// Now implements Clock.
func (v *Virtual) Now() int64 { return v.now }

// Advance implements Clock.
func (v *Virtual) Advance(d int64) {
	if d < 0 {
		panic("sim: negative clock advance")
	}
	v.now += d
}

// AdvanceTo moves the clock to t if t is in the future.
func (v *Virtual) AdvanceTo(t int64) {
	if t > v.now {
		v.now = t
	}
}

// Real reads the wall clock (monotonic) relative to its creation time.
type Real struct {
	epoch time.Time
}

// NewReal returns a wall clock with epoch now.
func NewReal() *Real { return &Real{epoch: time.Now()} }

// Now implements Clock.
func (r *Real) Now() int64 { return time.Since(r.epoch).Nanoseconds() }

// Advance implements Clock (no-op: real time advances itself).
func (r *Real) Advance(int64) {}

// CostModel converts SUT work units into virtual service time. The
// constants are nanoseconds; Calibrate in bench_test.go verifies they are
// within an order of magnitude of measured hardware so virtual results
// keep realistic shape.
type CostModel struct {
	// BaseNs is the fixed per-operation overhead (dispatch, memory walk).
	BaseNs int64
	// PerWorkNs prices one work unit (one comparison / probed row).
	PerWorkNs int64
	// PerTrainNs prices one training work unit (model fit element).
	PerTrainNs int64
}

// DefaultCostModel returns constants calibrated for an in-memory store on
// commodity hardware: ~100ns fixed cost, ~8ns per comparison/probe, ~20ns
// per training element.
func DefaultCostModel() CostModel {
	return CostModel{BaseNs: 100, PerWorkNs: 8, PerTrainNs: 20}
}

// ServiceTime returns the virtual duration of an operation that performed
// the given work units.
func (c CostModel) ServiceTime(work int64) int64 {
	if work < 0 {
		work = 0
	}
	return c.BaseNs + c.PerWorkNs*work
}

// TrainTime returns the virtual duration of a training step of the given
// work units.
func (c CostModel) TrainTime(work int64) int64 {
	if work < 0 {
		work = 0
	}
	return c.PerTrainNs * work
}

// TrainHours converts training work to hours on the baseline CPU tier —
// the unitHoursOnCPU input of the cost package.
func (c CostModel) TrainHours(work int64) float64 {
	return float64(c.TrainTime(work)) / float64(time.Hour.Nanoseconds())
}
