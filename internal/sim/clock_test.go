package sim

import (
	"testing"
	"time"
)

func TestVirtualClock(t *testing.T) {
	v := &Virtual{}
	if v.Now() != 0 {
		t.Fatal("epoch not zero")
	}
	v.Advance(100)
	v.Advance(50)
	if v.Now() != 150 {
		t.Fatalf("now = %d", v.Now())
	}
	v.AdvanceTo(120) // past: no-op
	if v.Now() != 150 {
		t.Fatal("AdvanceTo moved backwards")
	}
	v.AdvanceTo(200)
	if v.Now() != 200 {
		t.Fatalf("now = %d", v.Now())
	}
}

func TestVirtualPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Virtual{}).Advance(-1)
}

func TestRealClockMonotone(t *testing.T) {
	r := NewReal()
	a := r.Now()
	time.Sleep(time.Millisecond)
	b := r.Now()
	if b <= a {
		t.Fatalf("real clock not advancing: %d, %d", a, b)
	}
	r.Advance(1 << 40) // no-op
	if r.Now() > b+int64(time.Second) {
		t.Fatal("Advance affected real clock")
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCostModel()
	if c.ServiceTime(0) != c.BaseNs {
		t.Fatal("zero-work service time")
	}
	if c.ServiceTime(10) != c.BaseNs+10*c.PerWorkNs {
		t.Fatal("service time formula")
	}
	if c.ServiceTime(-5) != c.BaseNs {
		t.Fatal("negative work must clamp")
	}
	if c.TrainTime(100) != 100*c.PerTrainNs {
		t.Fatal("train time formula")
	}
	if c.TrainTime(-1) != 0 {
		t.Fatal("negative train work")
	}
	// One hour of training work converts to exactly 1.0 hours.
	workPerHour := int64(time.Hour.Nanoseconds()) / c.PerTrainNs
	if h := c.TrainHours(workPerHour); h < 0.999 || h > 1.001 {
		t.Fatalf("TrainHours = %v", h)
	}
}
