package sched

import (
	"testing"
)

func steadyJobs(n int, seed uint64) []Job {
	return GenerateJobs(WorkloadOptions{
		Jobs: n, Types: 6, MeanGapNs: 120_000, Seed: seed,
	})
}

func driftJobs(n int, seed uint64) []Job {
	return GenerateJobs(WorkloadOptions{
		Jobs: n, Types: 6, MeanGapNs: 120_000, DriftAt: 0.5, Seed: seed,
	})
}

func TestGenerateJobsShape(t *testing.T) {
	jobs := steadyJobs(5000, 1)
	if len(jobs) != 5000 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	prev := int64(-1)
	types := map[int]bool{}
	for _, j := range jobs {
		if j.ArrivalNs < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = j.ArrivalNs
		if j.TrueDuration <= 0 {
			t.Fatal("non-positive duration")
		}
		types[j.Type] = true
	}
	if len(types) != 6 {
		t.Fatalf("saw %d types", len(types))
	}
	if GenerateJobs(WorkloadOptions{}) != nil {
		t.Fatal("degenerate options must return nil")
	}
}

func TestSimulateCompletesEverything(t *testing.T) {
	jobs := steadyJobs(3000, 2)
	for _, p := range []Policy{FIFO{}, OracleSJF{}, NewLearnedSJF(0)} {
		res := Simulate(jobs, p)
		if res.Completed != len(jobs) {
			t.Fatalf("%s completed %d", p.Name(), res.Completed)
		}
		if res.MeanSojournNs <= 0 {
			t.Fatalf("%s mean sojourn %v", p.Name(), res.MeanSojournNs)
		}
		if res.String() == "" {
			t.Fatal("empty result string")
		}
	}
}

func TestOracleBeatsFIFO(t *testing.T) {
	jobs := steadyJobs(5000, 3)
	fifo := Simulate(jobs, FIFO{})
	oracle := Simulate(jobs, OracleSJF{})
	if oracle.MeanSojournNs >= fifo.MeanSojournNs {
		t.Fatalf("oracle (%v) not below FIFO (%v)",
			oracle.MeanSojournNs, fifo.MeanSojournNs)
	}
}

func TestLearnedApproachesOracleSteadyState(t *testing.T) {
	jobs := steadyJobs(8000, 4)
	oracle := Simulate(jobs, OracleSJF{})
	learned := Simulate(jobs, NewLearnedSJF(0))
	fifo := Simulate(jobs, FIFO{})
	if learned.MeanSojournNs >= fifo.MeanSojournNs {
		t.Fatalf("learned (%v) not below FIFO (%v)", learned.MeanSojournNs, fifo.MeanSojournNs)
	}
	// Within 2x of the oracle on a stationary workload.
	if learned.MeanSojournNs > 2*oracle.MeanSojournNs {
		t.Fatalf("learned (%v) too far from oracle (%v)",
			learned.MeanSojournNs, oracle.MeanSojournNs)
	}
	if learned.TrainWork == 0 {
		t.Fatal("no training work recorded")
	}
}

func TestStaticGoesStaleUnderDrift(t *testing.T) {
	// Train the static policy on pre-drift jobs, then run the drifting
	// trace: the learned policy must beat it (it re-learns the permuted
	// durations), and both must beat FIFO... FIFO is duration-oblivious
	// so only the first claim is structural.
	jobs := driftJobs(10000, 5)
	static := NewStaticSJF(jobs[:1000])
	sres := Simulate(jobs, static)
	lres := Simulate(jobs, NewLearnedSJF(0))
	if lres.MeanSojournNs >= sres.MeanSojournNs {
		t.Fatalf("learned (%v) not below stale static (%v) under drift",
			lres.MeanSojournNs, sres.MeanSojournNs)
	}
}

func TestStaticMatchesLearnedWithoutDrift(t *testing.T) {
	// Sanity: absent drift, a well-trained static estimate is
	// competitive (within 25%) with online learning.
	jobs := steadyJobs(8000, 6)
	static := NewStaticSJF(jobs[:1000])
	sres := Simulate(jobs, static)
	lres := Simulate(jobs, NewLearnedSJF(0))
	ratio := sres.MeanSojournNs / lres.MeanSojournNs
	if ratio > 1.25 || ratio < 0.75 {
		t.Fatalf("static/learned ratio %v outside parity band", ratio)
	}
}

func TestStaticSJFUnknownType(t *testing.T) {
	s := NewStaticSJF([]Job{{Type: 0, TrueDuration: 100}})
	// Unknown type falls back to the global mean without panicking.
	idx := s.Pick([]Job{{Type: 99}, {Type: 0}})
	if idx < 0 || idx > 1 {
		t.Fatalf("pick = %d", idx)
	}
	if NewStaticSJF(nil).estimate(5) <= 0 {
		t.Fatal("empty-sample estimate must be positive")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	jobs := driftJobs(4000, 7)
	a := Simulate(jobs, NewLearnedSJF(0))
	b := Simulate(jobs, NewLearnedSJF(0))
	if a.MeanSojournNs != b.MeanSojournNs {
		t.Fatal("simulation not deterministic")
	}
}

func TestSimulateIdleGaps(t *testing.T) {
	// Jobs separated by huge gaps: sojourn = service time exactly.
	jobs := []Job{
		{ID: 0, ArrivalNs: 0, TrueDuration: 100},
		{ID: 1, ArrivalNs: 1_000_000, TrueDuration: 200},
	}
	res := Simulate(jobs, FIFO{})
	if res.Completed != 2 {
		t.Fatal("jobs lost")
	}
	if res.Sojourn.Max() > 210 {
		t.Fatalf("idle-gap sojourn inflated: %d", res.Sojourn.Max())
	}
}
