// Package sched implements the job-scheduling substrate for the
// benchmark's learned-scheduling experiments — the paper cites learned
// scheduling policies (Mao et al. [30]) among the components a learned-
// systems benchmark must cover.
//
// The model is a single non-preemptive server: jobs of several types
// arrive over virtual time; each type has a duration distribution the
// scheduler cannot see. Policies differ in what they know:
//
//   - FIFO        — order of arrival, no knowledge.
//   - OracleSJF   — shortest true duration first (offline upper bound).
//   - StaticSJF   — shortest-first by per-type estimates measured once in
//     a training phase; silently stale after drift.
//   - LearnedSJF  — shortest-first by per-type online EMA predictions,
//     updated from every completion; adapts to drift at the
//     cost of charged training work.
//
// The benchmark metric is mean/percentile job sojourn time (completion −
// arrival), measured per interval so drift effects are visible.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Job is one unit of work. TrueDuration is hidden from policies except
// the oracle.
type Job struct {
	ID           int
	Type         int
	ArrivalNs    int64
	TrueDuration int64
}

// Policy selects which queued job runs next. Policies may learn from
// completions via Observe.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns the index (into queued) of the job to run next.
	// queued is never empty.
	Pick(queued []Job) int
	// Observe reports a completed job's measured duration.
	Observe(job Job, measured int64)
	// TrainWork returns cumulative model updates (0 for static).
	TrainWork() int64
}

// FIFO runs jobs in arrival order.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Pick implements Policy.
func (FIFO) Pick(queued []Job) int {
	best := 0
	for i, j := range queued {
		if j.ArrivalNs < queued[best].ArrivalNs {
			best = i
		}
	}
	return best
}

// Observe implements Policy.
func (FIFO) Observe(Job, int64) {}

// TrainWork implements Policy.
func (FIFO) TrainWork() int64 { return 0 }

// OracleSJF picks the job with the smallest true duration — unrealizable
// in practice, the experiment's upper bound.
type OracleSJF struct{}

// Name implements Policy.
func (OracleSJF) Name() string { return "oracle-sjf" }

// Pick implements Policy.
func (OracleSJF) Pick(queued []Job) int {
	best := 0
	for i, j := range queued {
		if j.TrueDuration < queued[best].TrueDuration {
			best = i
		}
	}
	return best
}

// Observe implements Policy.
func (OracleSJF) Observe(Job, int64) {}

// TrainWork implements Policy.
func (OracleSJF) TrainWork() int64 { return 0 }

// StaticSJF schedules by fixed per-type duration estimates (a training
// sample taken before execution). Types absent from the estimates get the
// global mean.
type StaticSJF struct {
	Estimates map[int]float64
	global    float64
}

// NewStaticSJF builds the policy from a training sample of jobs (the
// separate training phase of §V-B, charged by the experiment).
func NewStaticSJF(sample []Job) *StaticSJF {
	sum := make(map[int]float64)
	n := make(map[int]int)
	var gsum float64
	for _, j := range sample {
		sum[j.Type] += float64(j.TrueDuration)
		n[j.Type]++
		gsum += float64(j.TrueDuration)
	}
	est := make(map[int]float64, len(sum))
	for t, s := range sum {
		est[t] = s / float64(n[t])
	}
	g := 1.0
	if len(sample) > 0 {
		g = gsum / float64(len(sample))
	}
	return &StaticSJF{Estimates: est, global: g}
}

// Name implements Policy.
func (s *StaticSJF) Name() string { return "static-sjf" }

func (s *StaticSJF) estimate(t int) float64 {
	if e, ok := s.Estimates[t]; ok {
		return e
	}
	return s.global
}

// Pick implements Policy.
func (s *StaticSJF) Pick(queued []Job) int {
	best := 0
	for i, j := range queued {
		if s.estimate(j.Type) < s.estimate(queued[best].Type) {
			best = i
		}
	}
	return best
}

// Observe implements Policy (static: learns nothing).
func (s *StaticSJF) Observe(Job, int64) {}

// TrainWork implements Policy.
func (s *StaticSJF) TrainWork() int64 { return 0 }

// LearnedSJF predicts per-type durations with an online EMA and schedules
// shortest-predicted-first. Unknown types get an optimistic small default
// so they are tried quickly (exploration).
type LearnedSJF struct {
	alpha float64
	est   map[int]float64
	work  int64
}

// NewLearnedSJF returns a learned scheduler with EMA factor alpha in
// (0, 1]; 0 defaults to 0.2.
func NewLearnedSJF(alpha float64) *LearnedSJF {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &LearnedSJF{alpha: alpha, est: make(map[int]float64)}
}

// Name implements Policy.
func (l *LearnedSJF) Name() string { return "learned-sjf" }

func (l *LearnedSJF) estimate(t int) float64 {
	if e, ok := l.est[t]; ok {
		return e
	}
	return 1 // optimistic: run unknown types soon to learn them
}

// Pick implements Policy.
func (l *LearnedSJF) Pick(queued []Job) int {
	best := 0
	for i, j := range queued {
		if l.estimate(j.Type) < l.estimate(queued[best].Type) {
			best = i
		}
	}
	return best
}

// Observe implements Policy: online EMA update.
func (l *LearnedSJF) Observe(job Job, measured int64) {
	l.work++
	if e, ok := l.est[job.Type]; ok {
		l.est[job.Type] = (1-l.alpha)*e + l.alpha*float64(measured)
	} else {
		l.est[job.Type] = float64(measured)
	}
}

// TrainWork implements Policy.
func (l *LearnedSJF) TrainWork() int64 { return l.work }

// Result carries a simulation's outcome.
type Result struct {
	Policy string
	// Sojourn is the distribution of completion - arrival times.
	Sojourn *metrics.Histogram
	// MeanSojournNs is the exact mean.
	MeanSojournNs float64
	Completed     int
	TrainWork     int64
}

// Simulate runs jobs (sorted by ArrivalNs) through a single server under
// the policy, on virtual time.
func Simulate(jobs []Job, p Policy) Result {
	sorted := append([]Job(nil), jobs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].ArrivalNs < sorted[j].ArrivalNs
	})
	res := Result{Policy: p.Name(), Sojourn: metrics.NewHistogram()}
	var queued []Job
	now := int64(0)
	next := 0
	var sum float64
	for next < len(sorted) || len(queued) > 0 {
		// Admit everything that has arrived.
		for next < len(sorted) && sorted[next].ArrivalNs <= now {
			queued = append(queued, sorted[next])
			next++
		}
		if len(queued) == 0 {
			now = sorted[next].ArrivalNs
			continue
		}
		i := p.Pick(queued)
		job := queued[i]
		queued = append(queued[:i], queued[i+1:]...)
		if job.ArrivalNs > now {
			now = job.ArrivalNs
		}
		now += job.TrueDuration
		p.Observe(job, job.TrueDuration)
		sojourn := now - job.ArrivalNs
		res.Sojourn.Record(sojourn)
		sum += float64(sojourn)
		res.Completed++
	}
	if res.Completed > 0 {
		res.MeanSojournNs = sum / float64(res.Completed)
	}
	res.TrainWork = p.TrainWork()
	return res
}

// WorkloadOptions configures the drifting job workload.
type WorkloadOptions struct {
	// Jobs is the total job count.
	Jobs int
	// Types is the number of job types.
	Types int
	// MeanGapNs is the mean inter-arrival gap.
	MeanGapNs float64
	// DriftAt in (0,1): at this fraction of the trace, type durations are
	// permuted (the fast types become slow and vice versa). 0 disables.
	DriftAt float64
	Seed    uint64
}

// GenerateJobs builds a drifting job trace: each type's duration is
// lognormal around a type-specific mean; at DriftAt the mean assignment is
// reversed, invalidating any estimate trained before.
func GenerateJobs(o WorkloadOptions) []Job {
	if o.Jobs <= 0 || o.Types <= 0 {
		return nil
	}
	rng := stats.NewRNG(o.Seed)
	// Type means spread geometrically: type 0 fast ... type k slow.
	means := make([]float64, o.Types)
	base := 10_000.0 // 10µs
	for i := range means {
		means[i] = base * float64(int(1)<<uint(i))
	}
	driftIdx := o.Jobs + 1
	if o.DriftAt > 0 && o.DriftAt < 1 {
		driftIdx = int(o.DriftAt * float64(o.Jobs))
	}
	jobs := make([]Job, o.Jobs)
	t := int64(0)
	for i := range jobs {
		gap := rng.ExpFloat64() * o.MeanGapNs
		t += int64(gap)
		typ := rng.Intn(o.Types)
		mean := means[typ]
		if i >= driftIdx {
			mean = means[o.Types-1-typ] // permuted after drift
		}
		d := mean * (0.5 + rng.Float64()) // +/-50% noise
		jobs[i] = Job{ID: i, Type: typ, ArrivalNs: t, TrueDuration: int64(d)}
	}
	return jobs
}

// String renders a result line.
func (r Result) String() string {
	return fmt.Sprintf("%s: mean sojourn %.3fms over %d jobs (train %d)",
		r.Policy, r.MeanSojournNs/1e6, r.Completed, r.TrainWork)
}
