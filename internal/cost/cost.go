// Package cost implements the total-cost-of-ownership model the paper's
// Lesson 4 demands ("we cannot ignore the human cost anymore") and the
// Figure 1d metrics: cost split into training and execution, hardware
// tiers for training (CPU vs. GPU pricing and speed), the manual-DBA cost
// step function, and the headline single-value metric — the training cost
// at which a learned system outperforms a manually tuned traditional one.
package cost

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// HardwareTier describes a machine class available for training or
// execution. Speedup expresses how much faster training work completes
// relative to the baseline CPU tier; the benchmark's simulated "GPU" is a
// tier with higher speedup and higher hourly cost, which preserves the
// trade-off Figure 1d explores without requiring the hardware.
type HardwareTier struct {
	Name        string
	DollarsPerH float64
	Speedup     float64
}

// Standard tiers. Prices are representative cloud on-demand rates; the
// benchmark only depends on their ratios.
var (
	CPU = HardwareTier{Name: "cpu", DollarsPerH: 0.80, Speedup: 1}
	GPU = HardwareTier{Name: "gpu", DollarsPerH: 3.20, Speedup: 12}
	TPU = HardwareTier{Name: "tpu", DollarsPerH: 8.00, Speedup: 40}
)

// Model is the cost model for a benchmark run. All durations are hours.
type Model struct {
	// DBADollarsPerH prices human administration work (Lesson 4).
	DBADollarsPerH float64
	// ExecutionTier prices the machine running the workload.
	ExecutionTier HardwareTier
	// AmortizationYears spreads one-time costs over the ownership
	// horizon for TCO (typically 3 years, per the paper).
	AmortizationYears float64
}

// DefaultModel returns the model used by the shipped experiments:
// a $120/h administrator, CPU execution, 3-year horizon.
func DefaultModel() Model {
	return Model{
		DBADollarsPerH:    120,
		ExecutionTier:     CPU,
		AmortizationYears: 3,
	}
}

// TrainingCost converts abstract training work units into dollars on a
// tier. workUnits is whatever the SUT reports (model fits, evaluations);
// unitHoursOnCPU calibrates one unit's duration on the CPU tier.
func (m Model) TrainingCost(workUnits float64, unitHoursOnCPU float64, tier HardwareTier) float64 {
	if workUnits <= 0 || unitHoursOnCPU <= 0 {
		return 0
	}
	hours := workUnits * unitHoursOnCPU / tier.Speedup
	return hours * tier.DollarsPerH
}

// ExecutionCost prices running the workload for the given hours.
func (m Model) ExecutionCost(hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	return hours * m.ExecutionTier.DollarsPerH
}

// DBACost prices human tuning hours.
func (m Model) DBACost(hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	return hours * m.DBADollarsPerH
}

// TCO is the paper's three-year-style total: execution (machine) cost over
// the horizon plus one-time optimization cost (training dollars for a
// learned system, DBA dollars for a traditional one).
func (m Model) TCO(executionHoursPerYear float64, oneTimeOptimization float64) float64 {
	return m.ExecutionCost(executionHoursPerYear*m.AmortizationYears) + oneTimeOptimization
}

// CostPerformance returns the classic cost-per-performance ratio
// (dollars per (ops/sec)); lower is better. Returns +Inf for zero
// throughput.
func CostPerformance(totalDollars, throughput float64) float64 {
	if throughput <= 0 {
		return math.Inf(1)
	}
	return totalDollars / throughput
}

// CurvePoint is one point of a throughput-versus-cost curve (learned
// system across training budgets, or DBA step function).
type CurvePoint struct {
	Dollars    float64
	Throughput float64
	Label      string
}

// Curve is a throughput-vs-cost curve sorted by Dollars ascending.
type Curve []CurvePoint

// Sort orders the curve by cost (stable on equal cost).
func (c Curve) Sort() {
	sort.SliceStable(c, func(i, j int) bool { return c[i].Dollars < c[j].Dollars })
}

// At returns the best throughput achievable at cost <= dollars (step
// semantics: spending more never hurts because earlier configurations
// remain available). Returns 0 if nothing is affordable.
func (c Curve) At(dollars float64) float64 {
	best := 0.0
	for _, p := range c {
		if p.Dollars <= dollars && p.Throughput > best {
			best = p.Throughput
		}
	}
	return best
}

// ErrNeverOutperforms is returned by TrainingCostToOutperform when the
// learned curve never beats the traditional curve at any measured budget.
var ErrNeverOutperforms = errors.New("cost: learned system never outperforms the traditional baseline")

// TrainingCostToOutperform is the paper's new Figure 1d metric: the
// smallest training cost at which the learned system's throughput exceeds
// the traditional system's *best* throughput at any manual-tuning cost
// (the strongest form: beat the fully tuned baseline). It returns the
// dollars and the learned-curve point that achieves it.
func TrainingCostToOutperform(learned, traditional Curve) (float64, CurvePoint, error) {
	target := 0.0
	for _, p := range traditional {
		if p.Throughput > target {
			target = p.Throughput
		}
	}
	l := append(Curve(nil), learned...)
	l.Sort()
	for _, p := range l {
		if p.Throughput > target {
			return p.Dollars, p, nil
		}
	}
	return 0, CurvePoint{}, ErrNeverOutperforms
}

// CrossoverBudget is the softer variant: the smallest learned-system cost
// at which it beats the traditional system *at equal spend* (dollars for
// dollars). Returns ErrNeverOutperforms if no measured point qualifies.
func CrossoverBudget(learned, traditional Curve) (float64, error) {
	l := append(Curve(nil), learned...)
	l.Sort()
	for _, p := range l {
		if p.Throughput > traditional.At(p.Dollars) {
			return p.Dollars, nil
		}
	}
	return 0, ErrNeverOutperforms
}

// String renders a point for reports.
func (p CurvePoint) String() string {
	return fmt.Sprintf("$%.2f -> %.1f ops/s (%s)", p.Dollars, p.Throughput, p.Label)
}
