package cost

// IOModel prices page-granular storage I/O in the same abstract work units
// the virtual clock converts to time (sim.CostModel.PerWorkNs). The
// defaults approximate an NVMe SSD relative to ~10ns-class in-memory
// compare work: a 4 KiB random read ~10µs, a write ~20µs, an fsync ~100µs.
// Only the ratios matter for the benchmark's conclusions; recalibrating to
// a different device is a knob change, not a code change.
type IOModel struct {
	WorkPerPageRead  int64
	WorkPerPageWrite int64
	WorkPerFsync     int64
}

// DefaultIOModel returns the NVMe-calibrated defaults.
func DefaultIOModel() IOModel {
	return IOModel{
		WorkPerPageRead:  1250,
		WorkPerPageWrite: 2500,
		WorkPerFsync:     12500,
	}
}

// Work converts I/O counts (typically buffer-pool counter deltas) into
// abstract work units.
func (m IOModel) Work(pageReads, pageWrites, fsyncs uint64) int64 {
	return int64(pageReads)*m.WorkPerPageRead +
		int64(pageWrites)*m.WorkPerPageWrite +
		int64(fsyncs)*m.WorkPerFsync
}
