package cost

import (
	"errors"
	"math"
	"testing"
)

func TestTrainingCostTiers(t *testing.T) {
	m := DefaultModel()
	// 1000 work units at 0.001 CPU-hours each = 1 CPU-hour.
	cpu := m.TrainingCost(1000, 0.001, CPU)
	if math.Abs(cpu-0.80) > 1e-9 {
		t.Fatalf("cpu cost = %v", cpu)
	}
	gpu := m.TrainingCost(1000, 0.001, GPU)
	// GPU: 1/12 hour at $3.20/h ≈ $0.267 — cheaper AND faster.
	if gpu >= cpu {
		t.Fatalf("gpu training should be cheaper here: %v vs %v", gpu, cpu)
	}
	if m.TrainingCost(0, 0.001, CPU) != 0 || m.TrainingCost(10, 0, CPU) != 0 {
		t.Fatal("degenerate training cost must be 0")
	}
}

func TestExecutionAndDBACost(t *testing.T) {
	m := DefaultModel()
	if m.ExecutionCost(10) != 8 {
		t.Fatalf("execution = %v", m.ExecutionCost(10))
	}
	if m.DBACost(2) != 240 {
		t.Fatalf("dba = %v", m.DBACost(2))
	}
	if m.ExecutionCost(-1) != 0 || m.DBACost(-1) != 0 {
		t.Fatal("negative hours must cost 0")
	}
}

func TestTCO(t *testing.T) {
	m := DefaultModel()
	// 100 exec hours/year over 3 years at $0.80 = $240, plus $500 one-time.
	if got := m.TCO(100, 500); math.Abs(got-740) > 1e-9 {
		t.Fatalf("TCO = %v", got)
	}
}

func TestCostPerformance(t *testing.T) {
	if CostPerformance(100, 50) != 2 {
		t.Fatal("ratio")
	}
	if !math.IsInf(CostPerformance(100, 0), 1) {
		t.Fatal("zero throughput must be +Inf")
	}
}

func TestCurveAt(t *testing.T) {
	c := Curve{
		{Dollars: 0, Throughput: 100},
		{Dollars: 50, Throughput: 300},
		{Dollars: 200, Throughput: 250}, // spending more can measure worse...
	}
	if c.At(-1) != 0 {
		t.Fatal("unaffordable")
	}
	if c.At(0) != 100 {
		t.Fatal("free point")
	}
	if c.At(60) != 300 {
		t.Fatal("mid budget")
	}
	// ...but At keeps the best affordable configuration.
	if c.At(1000) != 300 {
		t.Fatal("step semantics violated")
	}
}

func TestTrainingCostToOutperform(t *testing.T) {
	learned := Curve{
		{Dollars: 10, Throughput: 80, Label: "b10"},
		{Dollars: 100, Throughput: 550, Label: "b100"},
		{Dollars: 40, Throughput: 450, Label: "b40"},
	}
	trad := Curve{
		{Dollars: 0, Throughput: 100},
		{Dollars: 480, Throughput: 500}, // fully tuned
	}
	d, p, err := TrainingCostToOutperform(learned, trad)
	if err != nil {
		t.Fatal(err)
	}
	// Must beat the *best* traditional point (500): first learned point
	// above 500 in cost order is b100 at $100.
	if d != 100 || p.Label != "b100" {
		t.Fatalf("got $%v at %s", d, p.Label)
	}
}

func TestTrainingCostNeverOutperforms(t *testing.T) {
	learned := Curve{{Dollars: 10, Throughput: 80}}
	trad := Curve{{Dollars: 0, Throughput: 100}}
	_, _, err := TrainingCostToOutperform(learned, trad)
	if !errors.Is(err, ErrNeverOutperforms) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossoverBudget(t *testing.T) {
	learned := Curve{
		{Dollars: 10, Throughput: 150},
		{Dollars: 100, Throughput: 550},
	}
	trad := Curve{
		{Dollars: 0, Throughput: 100},
		{Dollars: 480, Throughput: 500},
	}
	// At $10 spend, traditional.At(10) = 100 < 150: crossover at $10.
	d, err := CrossoverBudget(learned, trad)
	if err != nil || d != 10 {
		t.Fatalf("crossover = %v, %v", d, err)
	}
	// A learned system that never wins at equal spend.
	weak := Curve{{Dollars: 1000, Throughput: 90}}
	if _, err := CrossoverBudget(weak, trad); !errors.Is(err, ErrNeverOutperforms) {
		t.Fatalf("err = %v", err)
	}
}

func TestCurveSortStable(t *testing.T) {
	c := Curve{
		{Dollars: 50, Throughput: 2, Label: "a"},
		{Dollars: 10, Throughput: 1, Label: "b"},
		{Dollars: 50, Throughput: 3, Label: "c"},
	}
	c.Sort()
	if c[0].Label != "b" || c[1].Label != "a" || c[2].Label != "c" {
		t.Fatalf("sort order: %v %v %v", c[0].Label, c[1].Label, c[2].Label)
	}
}

func TestCurvePointString(t *testing.T) {
	if (CurvePoint{Dollars: 1, Throughput: 2, Label: "x"}).String() == "" {
		t.Fatal("empty string")
	}
}

func TestGPUVsCPUTradeoffShape(t *testing.T) {
	// The Figure 1d discussion: "it could be more profitable to use a
	// learned system with a GPU" — same work, GPU finishes sooner; check
	// the model yields the expected dominance when speedup/price > 1.
	m := DefaultModel()
	work, unit := 50000.0, 0.0005
	cpuCost := m.TrainingCost(work, unit, CPU)
	gpuCost := m.TrainingCost(work, unit, GPU)
	tpuCost := m.TrainingCost(work, unit, TPU)
	if !(gpuCost < cpuCost && tpuCost < cpuCost) {
		t.Fatalf("accelerators should cut dollar cost: cpu=%v gpu=%v tpu=%v",
			cpuCost, gpuCost, tpuCost)
	}
}
