package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 64)
	var n atomic.Int64
	for i := 0; i < 64; i++ {
		if !p.TrySubmit(func() { n.Add(1) }) {
			t.Fatalf("submit %d refused with room in the queue", i)
		}
	}
	p.Close()
	if got := n.Load(); got != 64 {
		t.Fatalf("ran %d of 64 tasks", got)
	}
}

func TestPoolBackpressure(t *testing.T) {
	// One worker blocked + depth 2 queue: the 4th submission must be
	// refused without blocking.
	p := NewPool(1, 2)
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	if !p.TrySubmit(func() { started.Done(); <-release }) {
		t.Fatal("first submit refused")
	}
	started.Wait() // worker occupied; queue empty
	if !p.TrySubmit(func() {}) || !p.TrySubmit(func() {}) {
		t.Fatal("queue-filling submits refused")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit beyond queue depth accepted")
	}
	if d := p.Depth(); d != 2 {
		t.Fatalf("Depth() = %d, want 2", d)
	}
	close(release)
	p.Close()
}

func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2, 8)
	var n atomic.Int64
	for i := 0; i < 8; i++ {
		p.TrySubmit(func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		})
	}
	p.Close() // must wait for queued + running tasks
	if got := n.Load(); got != 8 {
		t.Fatalf("Close returned with %d of 8 tasks done", got)
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted after Close")
	}
	p.Close() // idempotent
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(4, 1024)
	var accepted, ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if p.TrySubmit(func() { ran.Add(1) }) {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if accepted.Load() != ran.Load() {
		t.Fatalf("accepted %d but ran %d", accepted.Load(), ran.Load())
	}
}
