package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllInOrderSlots(t *testing.T) {
	for _, limit := range []int{0, 1, 3, 64} {
		n := 50
		out := make([]int, n)
		if err := ForEach(n, limit, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("limit %d: out[%d] = %d", limit, i, v)
			}
		}
	}
}

func TestForEachRespectsLimit(t *testing.T) {
	const limit = 4
	var inFlight, peak int64
	err := ForEach(100, limit, func(i int) error {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt64(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&peak); got > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", got, limit)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, limit := range []int{1, 8} {
		var ran int64
		err := ForEach(20, limit, func(i int) error {
			atomic.AddInt64(&ran, 1)
			if i == 3 || i == 17 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("limit %d: err = %v, want lowest-index failure", limit, err)
		}
		if ran != 20 {
			t.Fatalf("limit %d: ran %d of 20 despite failure", limit, ran)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
