// Package par provides the bounded, deterministic fan-out primitive used
// by the experiment orchestration layer (core.RunAll, the figures panels,
// cmd/figures). Work items are independent and results are written by
// index, so output order — and therefore every downstream report — is
// identical at any parallelism level.
package par

import (
	"runtime"
	"sync"
)

// ForEach invokes fn(i) for every i in [0, n) with at most limit
// invocations in flight at once. limit <= 0 defaults to
// runtime.GOMAXPROCS(0); limit == 1 degenerates to a serial loop.
//
// Every index runs even when earlier ones fail; the returned error is the
// lowest-index failure, matching what a serial loop would have reported
// first. Callers collect results into index i of a pre-sized slice, which
// keeps declaration order independent of completion order.
func ForEach(n, limit int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > n {
		limit = n
	}
	if limit == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
