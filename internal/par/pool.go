package par

import "sync"

// Pool is the long-lived counterpart of ForEach: a fixed set of workers
// draining a bounded task queue. It backs services that accept work over
// time (the benchmark-as-a-service job queue) where the bound is the
// backpressure signal — TrySubmit refuses instead of blocking, so the
// caller can tell its client to come back later (HTTP 429).
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts workers goroutines draining a queue of at most depth
// pending tasks. workers <= 0 defaults to 1; depth <= 0 defaults to
// workers (one pending task per worker).
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = workers
	}
	p := &Pool{tasks: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn if the queue has room. It returns false — without
// blocking — when the queue is full or the pool is closed.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Depth returns the number of tasks waiting in the queue (not counting
// tasks already being executed by a worker).
func (p *Pool) Depth() int { return len(p.tasks) }

// Close stops accepting new tasks and waits for every queued and running
// task to finish — the graceful-drain step of service shutdown. It is
// idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
