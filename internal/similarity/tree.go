package similarity

import "strings"

// Tree is a generic labeled ordered tree used to describe query plans or
// query shapes. The workload-similarity metric of §V-D1 ("Jaccard
// similarity between the sets of all subtrees of the query tree for all
// queries in the workload") is computed by canonically serializing every
// subtree of every query in a workload into a set and comparing the sets.
type Tree struct {
	Label    string
	Children []*Tree
}

// NewTree returns a tree node with the given label and children.
func NewTree(label string, children ...*Tree) *Tree {
	return &Tree{Label: label, Children: children}
}

// Canon returns the canonical serialization of the whole tree:
// label(child1,child2,...). Two trees have equal Canon strings iff they are
// structurally identical with identical labels.
func (t *Tree) Canon() string {
	var sb strings.Builder
	t.canon(&sb)
	return sb.String()
}

func (t *Tree) canon(sb *strings.Builder) {
	sb.WriteString(t.Label)
	if len(t.Children) == 0 {
		return
	}
	sb.WriteByte('(')
	for i, c := range t.Children {
		if i > 0 {
			sb.WriteByte(',')
		}
		c.canon(sb)
	}
	sb.WriteByte(')')
}

// Subtrees adds the canonical form of every subtree rooted at every node of
// t into set.
func (t *Tree) Subtrees(set map[string]struct{}) {
	set[t.Canon()] = struct{}{}
	for _, c := range t.Children {
		c.Subtrees(set)
	}
}

// SubtreeSet returns the set of all subtree canonical forms across the given
// query trees — the per-workload feature set for WorkloadJaccard.
func SubtreeSet(queries []*Tree) map[string]struct{} {
	set := make(map[string]struct{})
	for _, q := range queries {
		if q != nil {
			q.Subtrees(set)
		}
	}
	return set
}

// WorkloadJaccard returns the Jaccard similarity between two workloads
// represented by their query trees, per the paper's §V-D1 proposal.
func WorkloadJaccard(a, b []*Tree) float64 {
	return Jaccard(SubtreeSet(a), SubtreeSet(b))
}

// WorkloadDistance is 1 - WorkloadJaccard (0 = identical workloads).
func WorkloadDistance(a, b []*Tree) float64 { return 1 - WorkloadJaccard(a, b) }
