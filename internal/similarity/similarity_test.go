package similarity

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/distgen"
	"repro/internal/stats"
)

func TestKSIdentical(t *testing.T) {
	xs := []uint64{1, 2, 3, 4, 5}
	if d := KS(xs, xs); d != 0 {
		t.Fatalf("KS(x,x) = %v", d)
	}
}

func TestKSDisjoint(t *testing.T) {
	a := []uint64{1, 2, 3}
	b := []uint64{100, 200, 300}
	if d := KS(a, b); d != 1 {
		t.Fatalf("KS disjoint = %v, want 1", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if KS(nil, nil) != 0 {
		t.Fatal("KS(nil,nil)")
	}
	if KS(nil, []uint64{1}) != 1 {
		t.Fatal("KS(nil,x)")
	}
}

func TestKSKnownValue(t *testing.T) {
	// a = {1,2}, b = {2,3}: CDF_a jumps to .5 at 1, 1 at 2.
	// CDF_b jumps to .5 at 2, 1 at 3. Max gap is 0.5 (at 1 and between 2,3).
	d := KS([]uint64{1, 2}, []uint64{2, 3})
	if math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKSSymmetric(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a := distgen.NewUniform(seedA, 0, 1000).Keys(200)
		b := distgen.NewZipfKeys(seedB, 1.1, 500).Keys(200)
		return math.Abs(KS(a, b)-KS(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKSBounds(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a := distgen.NewNormal(seedA, 1e15, 1e13).Keys(300)
		b := distgen.NewLognormal(seedB, 0, 2, 1e10).Keys(300)
		d := KS(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKSSameDistributionSmall(t *testing.T) {
	a := distgen.NewUniform(1, 0, 1<<40).Keys(5000)
	b := distgen.NewUniform(2, 0, 1<<40).Keys(5000)
	if d := KS(a, b); d > 0.06 {
		t.Fatalf("KS between same-family samples = %v", d)
	}
}

func TestKSMonotoneInShift(t *testing.T) {
	// Shifting one uniform sample progressively further must not decrease KS.
	base := distgen.NewUniform(3, 0, 1000000).Keys(3000)
	prev := -1.0
	for _, shift := range []uint64{0, 200000, 400000, 800000, 1600000} {
		shifted := make([]uint64, len(base))
		for i, k := range base {
			shifted[i] = k + shift
		}
		d := KS(base, shifted)
		if d < prev-0.02 {
			t.Fatalf("KS not monotone: shift %d gave %v after %v", shift, d, prev)
		}
		prev = d
	}
}

func TestMMDIdenticalNearZero(t *testing.T) {
	xs := distgen.NewUniform(4, 0, 1<<40).Keys(300)
	if d := MMD(xs, xs, 0.1); d > 1e-7 {
		t.Fatalf("MMD(x,x) = %v", d)
	}
}

func TestMMDSeparatesDistributions(t *testing.T) {
	uni := distgen.NewUniform(5, 0, 1<<40)
	a := uni.Keys(300)
	b := distgen.NewUniform(6, 0, 1<<40).Keys(300)
	c := distgen.NewClustered(7, 3, 1e9).Keys(300)
	same := MMD(a, b, 0)
	diff := MMD(a, c, 0)
	if diff <= same {
		t.Fatalf("MMD failed to separate: same=%v diff=%v", same, diff)
	}
}

func TestMMDEmpty(t *testing.T) {
	if MMD(nil, nil, 0) != 0 {
		t.Fatal("MMD(nil,nil)")
	}
	if MMD(nil, []uint64{1}, 0) != 1 {
		t.Fatal("MMD(nil,x)")
	}
}

func TestMMDSubBoundsWork(t *testing.T) {
	big := distgen.NewUniform(8, 0, 1<<40).Keys(50000)
	small := distgen.NewClustered(9, 2, 1e8).Keys(50000)
	d := MMDSub(big, small, 0, 200)
	if d <= 0 || math.IsNaN(d) {
		t.Fatalf("MMDSub = %v", d)
	}
}

func TestMMDConstantSamples(t *testing.T) {
	a := []uint64{5, 5, 5}
	b := []uint64{5, 5}
	if d := MMD(a, b, 0); d > 1e-7 {
		t.Fatalf("MMD over constant equal samples = %v", d)
	}
}

func TestMMDAgreesWithKSOnOrdering(t *testing.T) {
	// The paper only requires Φ estimators to sort distributions; check KS
	// and MMD agree on which of two candidates is closer to a baseline.
	base := distgen.NewUniform(10, 0, 1<<40).Keys(400)
	near := distgen.NewNormal(11, float64(uint64(1)<<39), 1e11).Keys(400) // broad, centered
	far := distgen.NewClustered(12, 2, 1e7).Keys(400)                     // two spikes
	ksNear, ksFar := KS(base, near), KS(base, far)
	mmdNear, mmdFar := MMD(base, near, 0), MMD(base, far, 0)
	if (ksNear < ksFar) != (mmdNear < mmdFar) {
		t.Fatalf("orderings disagree: KS %v/%v, MMD %v/%v", ksNear, ksFar, mmdNear, mmdFar)
	}
}

func TestJaccard(t *testing.T) {
	set := func(ss ...string) map[string]struct{} {
		m := make(map[string]struct{})
		for _, s := range ss {
			m[s] = struct{}{}
		}
		return m
	}
	if j := Jaccard(set("a", "b"), set("a", "b")); j != 1 {
		t.Fatalf("equal sets = %v", j)
	}
	if j := Jaccard(set("a"), set("b")); j != 0 {
		t.Fatalf("disjoint = %v", j)
	}
	if j := Jaccard(set("a", "b", "c"), set("b", "c", "d")); math.Abs(j-0.5) > 1e-12 {
		t.Fatalf("half overlap = %v", j)
	}
	if Jaccard(nil, nil) != 1 {
		t.Fatal("empty sets must be similarity 1")
	}
	if JaccardDistance(set("a"), set("a")) != 0 {
		t.Fatal("distance of equal sets")
	}
}

func TestTreeCanon(t *testing.T) {
	tr := NewTree("join",
		NewTree("scan", NewTree("A")),
		NewTree("filter", NewTree("scan", NewTree("B"))),
	)
	want := "join(scan(A),filter(scan(B)))"
	if got := tr.Canon(); got != want {
		t.Fatalf("canon = %q, want %q", got, want)
	}
}

func TestTreeSubtrees(t *testing.T) {
	tr := NewTree("a", NewTree("b"), NewTree("b"))
	set := make(map[string]struct{})
	tr.Subtrees(set)
	if len(set) != 2 { // "a(b,b)" and "b"
		t.Fatalf("subtree set = %v", set)
	}
}

func TestWorkloadJaccardOrdering(t *testing.T) {
	q1 := NewTree("join", NewTree("scan", NewTree("A")), NewTree("scan", NewTree("B")))
	q2 := NewTree("join", NewTree("scan", NewTree("A")), NewTree("scan", NewTree("C")))
	q3 := NewTree("agg", NewTree("scan", NewTree("Z")))
	wBase := []*Tree{q1}
	wNear := []*Tree{q2} // shares scan(A) subtree
	wFar := []*Tree{q3}  // shares nothing
	near := WorkloadJaccard(wBase, wNear)
	far := WorkloadJaccard(wBase, wFar)
	if near <= far {
		t.Fatalf("workload similarity ordering wrong: near=%v far=%v", near, far)
	}
	if s := WorkloadJaccard(wBase, wBase); s != 1 {
		t.Fatalf("self similarity = %v", s)
	}
	if d := WorkloadDistance(wBase, wFar); d != 1 {
		t.Fatalf("disjoint distance = %v", d)
	}
}

func TestKSDetectsDrift(t *testing.T) {
	// Integration-ish: KS between early and late samples of a drifting
	// distribution must exceed KS between two early samples.
	drift := distgen.NewBlend(13,
		distgen.NewUniform(14, 0, 1<<30),
		distgen.NewClustered(15, 3, 1e6))
	early1 := drift.KeysAt(0.05, 1000)
	early2 := drift.KeysAt(0.06, 1000)
	late := drift.KeysAt(0.95, 1000)
	if KS(early1, late) <= KS(early1, early2) {
		t.Fatal("KS failed to detect drift")
	}
}

func TestSubsampleStride(t *testing.T) {
	xs := make([]uint64, 100)
	for i := range xs {
		xs[i] = uint64(i)
	}
	sub := subsample(xs, 10)
	if len(sub) != 10 {
		t.Fatalf("len = %d", len(sub))
	}
	for i := 1; i < len(sub); i++ {
		if sub[i] <= sub[i-1] {
			t.Fatal("subsample must preserve order")
		}
	}
	if got := subsample(xs, 200); len(got) != 100 {
		t.Fatal("oversized maxN must return input")
	}
}

var sinkF float64

func BenchmarkKS(b *testing.B) {
	a := distgen.NewUniform(1, 0, 1<<40).Keys(10000)
	c := distgen.NewZipfKeys(2, 1.1, 5000).Keys(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = KS(a, c)
	}
}

func BenchmarkMMDSub(b *testing.B) {
	a := distgen.NewUniform(1, 0, 1<<40).Keys(10000)
	c := distgen.NewZipfKeys(2, 1.1, 5000).Keys(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = MMDSub(a, c, 0, 200)
	}
}

// Guard against accidental use of the global rand: similarity must be pure.
func TestKSPure(t *testing.T) {
	a := distgen.NewUniform(1, 0, 1000).Keys(100)
	b := distgen.NewUniform(2, 0, 1000).Keys(100)
	d1 := KS(a, b)
	d2 := KS(a, b)
	if d1 != d2 {
		t.Fatal("KS not deterministic")
	}
	_ = stats.NewRNG(0) // keep import for build parity with other tests
}
