// Package similarity implements the distribution- and workload-similarity
// estimators the paper proposes for positioning benchmark results on the
// Figure 1a X-axis (§V-D1): the Kolmogorov–Smirnov statistic and the
// Maximum Mean Discrepancy for data distributions, and the Jaccard
// similarity over query-plan subtree sets for workloads.
//
// The paper notes the Φ values "need not be precise, and it should be
// sufficient to sort the results by Φ value" — the package therefore
// guarantees stable ordering properties (tested) rather than tight
// numerical accuracy.
package similarity

import (
	"math"
	"sort"
)

// KS returns the two-sample Kolmogorov–Smirnov statistic between samples a
// and b: the maximum absolute difference between their empirical CDFs. It is
// 0 for identical distributions and approaches 1 for disjoint ones. Inputs
// are not modified. Empty inputs return 1 (maximally dissimilar) unless both
// are empty, which returns 0.
func KS(a, b []uint64) float64 {
	switch {
	case len(a) == 0 && len(b) == 0:
		return 0
	case len(a) == 0 || len(b) == 0:
		return 1
	}
	as := append([]uint64(nil), a...)
	bs := append([]uint64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })

	var d float64
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		// Advance past ties on the smaller current value so both CDFs
		// are evaluated immediately after the step.
		if as[i] <= bs[j] {
			v := as[i]
			for i < len(as) && as[i] == v {
				i++
			}
			if v == bs[j] {
				for j < len(bs) && bs[j] == v {
					j++
				}
			}
		} else {
			v := bs[j]
			for j < len(bs) && bs[j] == v {
				j++
			}
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}

// MMD returns the (biased, V-statistic) Maximum Mean Discrepancy between
// samples a and b under an RBF kernel with the given bandwidth. If
// bandwidth <= 0 the median heuristic over the pooled sample is used.
// Samples are normalized to [0,1] over the pooled range first so the
// bandwidth is scale-free. Cost is O((|a|+|b|)^2); callers should subsample
// (see MMDSub).
func MMD(a, b []uint64, bandwidth float64) float64 {
	switch {
	case len(a) == 0 && len(b) == 0:
		return 0
	case len(a) == 0 || len(b) == 0:
		return 1
	}
	xs := normalize(a, b)
	ys := xs[len(a):]
	xs = xs[:len(a)]
	if bandwidth <= 0 {
		bandwidth = medianHeuristic(append(append([]float64(nil), xs...), ys...))
		if bandwidth <= 0 {
			bandwidth = 1e-3
		}
	}
	gamma := 1 / (2 * bandwidth * bandwidth)
	kxx := meanKernel(xs, xs, gamma)
	kyy := meanKernel(ys, ys, gamma)
	kxy := meanKernel(xs, ys, gamma)
	v := kxx + kyy - 2*kxy
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// MMDSub computes MMD over at most maxN evenly strided elements of each
// sample, bounding cost at O(maxN^2).
func MMDSub(a, b []uint64, bandwidth float64, maxN int) float64 {
	return MMD(subsample(a, maxN), subsample(b, maxN), bandwidth)
}

func subsample(xs []uint64, maxN int) []uint64 {
	if maxN <= 0 || len(xs) <= maxN {
		return xs
	}
	out := make([]uint64, 0, maxN)
	stride := float64(len(xs)) / float64(maxN)
	for i := 0; i < maxN; i++ {
		out = append(out, xs[int(float64(i)*stride)])
	}
	return out
}

func normalize(a, b []uint64) []float64 {
	lo, hi := a[0], a[0]
	for _, k := range a {
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	for _, k := range b {
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	span := float64(hi - lo)
	if span == 0 {
		span = 1
	}
	out := make([]float64, 0, len(a)+len(b))
	for _, k := range a {
		out = append(out, float64(k-lo)/span)
	}
	for _, k := range b {
		out = append(out, float64(k-lo)/span)
	}
	return out
}

func meanKernel(xs, ys []float64, gamma float64) float64 {
	var sum float64
	for _, x := range xs {
		for _, y := range ys {
			d := x - y
			sum += math.Exp(-gamma * d * d)
		}
	}
	return sum / float64(len(xs)*len(ys))
}

func medianHeuristic(xs []float64) float64 {
	// Median pairwise distance over a stride-limited subset.
	const cap = 200
	if len(xs) > cap {
		sub := make([]float64, 0, cap)
		stride := float64(len(xs)) / cap
		for i := 0; i < cap; i++ {
			sub = append(sub, xs[int(float64(i)*stride)])
		}
		xs = sub
	}
	dists := make([]float64, 0, len(xs)*(len(xs)-1)/2)
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			dists = append(dists, math.Abs(xs[i]-xs[j]))
		}
	}
	if len(dists) == 0 {
		return 0
	}
	sort.Float64s(dists)
	return dists[len(dists)/2]
}

// Jaccard returns |a ∩ b| / |a ∪ b| for two string sets. It is 1 for equal
// sets and 0 for disjoint ones; two empty sets are defined as similarity 1.
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardDistance is 1 - Jaccard, so that all Φ estimators in this package
// agree on direction: 0 means identical, larger means more different.
func JaccardDistance(a, b map[string]struct{}) float64 { return 1 - Jaccard(a, b) }
