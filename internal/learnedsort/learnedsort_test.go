package learnedsort

import (
	"testing"
	"testing/quick"

	"repro/internal/distgen"
	"repro/internal/stats"
)

func TestModelCDFMonotone(t *testing.T) {
	sample := distgen.NewLognormal(1, 0, 2, 1e9).Keys(10000)
	m := TrainModel(sample, 256)
	prev := -1.0
	for k := uint64(0); k < 1<<34; k += 1 << 28 {
		c := m.CDF(k)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %d: %v after %v", k, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range: %v", c)
		}
		prev = c
	}
}

func TestModelCDFEdges(t *testing.T) {
	m := TrainModel([]uint64{100, 200, 300}, 16)
	if m.CDF(50) != 0 {
		t.Fatal("CDF below min")
	}
	if m.CDF(300) != 1 || m.CDF(1000) != 1 {
		t.Fatal("CDF at/above max")
	}
}

func TestModelEmptyAndConstant(t *testing.T) {
	e := TrainModel(nil, 16)
	if e.CDF(5) != 1 && e.CDF(5) != 0 { // defined behaviour: in [0,1]
		t.Fatalf("empty model CDF = %v", e.CDF(5))
	}
	c := TrainModel([]uint64{7, 7, 7}, 16)
	if c.CDF(7) != 1 {
		t.Fatalf("constant model CDF(7) = %v", c.CDF(7))
	}
	if c.CDF(6) != 0 {
		t.Fatalf("constant model CDF(6) = %v", c.CDF(6))
	}
}

func TestSortCorrectAllDistributions(t *testing.T) {
	gens := []distgen.Generator{
		distgen.NewUniform(1, 0, 1<<40),
		distgen.NewNormal(2, 1e12, 1e10),
		distgen.NewLognormal(3, 0, 2, 1e8),
		distgen.NewZipfKeys(4, 1.1, 10000),
		distgen.NewClustered(5, 10, 1e8),
		distgen.NewSegmented(6, 8),
		distgen.NewEmail(7),
	}
	for _, g := range gens {
		keys := g.Keys(20000)
		SortAuto(keys, 0)
		if !IsSorted(keys) {
			t.Fatalf("%s: output unsorted", g.Name())
		}
	}
}

func TestSortSmallInputs(t *testing.T) {
	for _, keys := range [][]uint64{nil, {5}, {2, 1}, {3, 3, 3}, {1, 2, 3}} {
		in := append([]uint64(nil), keys...)
		SortAuto(in, 0)
		if !IsSorted(in) {
			t.Fatalf("small input %v unsorted: %v", keys, in)
		}
		if len(in) != len(keys) {
			t.Fatal("length changed")
		}
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	f := func(seed uint64) bool {
		keys := distgen.NewZipfKeys(seed, 1.2, 500).Keys(3000) // heavy duplicates
		want := map[uint64]int{}
		for _, k := range keys {
			want[k]++
		}
		SortAuto(keys, 0)
		got := map[uint64]int{}
		for _, k := range keys {
			got[k]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return IsSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGoodModelFewTouchups(t *testing.T) {
	// Uniform data with a trained model: touch-up work should be a small
	// multiple of n, far below the n^2/4 of a naive insertion sort.
	keys := distgen.NewUniform(8, 0, 1<<40).Keys(50000)
	res := SortAuto(keys, 8192)
	if !IsSorted(keys) {
		t.Fatal("unsorted")
	}
	if res.TouchupMoves > 10*len(keys) {
		t.Fatalf("touch-up moves %d too high for uniform data", res.TouchupMoves)
	}
}

func TestBadModelStillSorts(t *testing.T) {
	// Train on one distribution, sort a completely different one — the
	// model is wrong, the output must still be sorted.
	model := TrainModel(distgen.NewUniform(9, 0, 1000).Keys(1000), 64)
	keys := distgen.NewUniform(10, 1<<50, 1<<51).Keys(10000)
	Sort(keys, model)
	if !IsSorted(keys) {
		t.Fatal("bad-model sort produced unsorted output")
	}
}

func TestCollisionFallback(t *testing.T) {
	// All-equal predictions (constant model from constant sample) force
	// the overflow path and potentially the fallback; output stays sorted.
	model := TrainModel([]uint64{42}, 16)
	keys := distgen.NewUniform(11, 0, 1<<40).Keys(5000)
	res := Sort(keys, model)
	if !IsSorted(keys) {
		t.Fatal("fallback did not sort")
	}
	if res.Collisions == 0 {
		t.Fatal("expected collisions with a degenerate model")
	}
}

func TestStdSort(t *testing.T) {
	keys := []uint64{3, 1, 2}
	StdSort(keys)
	if keys[0] != 1 || keys[2] != 3 {
		t.Fatal("StdSort failed")
	}
}

func TestShuffledDeterministic(t *testing.T) {
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	a := Shuffled(keys, 7)
	b := Shuffled(keys, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffled not deterministic")
		}
	}
	_ = stats.NewRNG(0)
}

func TestSortedInputCheapest(t *testing.T) {
	sorted := distgen.Sorted(distgen.NewUniform(12, 0, 1<<40), 20000)
	shuffled := Shuffled(sorted, 3)
	resSorted := SortAuto(append([]uint64(nil), sorted...), 0)
	resShuffled := SortAuto(shuffled, 0)
	if !IsSorted(shuffled) {
		t.Fatal("unsorted")
	}
	// Model quality is identical, so both runs must stay near-linear:
	// a handful of touch-up moves per element, nowhere near the n^2/4 of
	// a naive insertion sort.
	n := len(shuffled)
	if resSorted.TouchupMoves > 2*n || resShuffled.TouchupMoves > 2*n {
		t.Fatalf("touch-up moves not near-linear: sorted=%d shuffled=%d n=%d",
			resSorted.TouchupMoves, resShuffled.TouchupMoves, n)
	}
}

func BenchmarkLearnedSortUniform(b *testing.B) {
	src := distgen.NewUniform(1, 0, 1<<40).Keys(100000)
	buf := make([]uint64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SortAuto(buf, 0)
	}
}

func BenchmarkStdSortUniform(b *testing.B) {
	src := distgen.NewUniform(1, 0, 1<<40).Keys(100000)
	buf := make([]uint64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		StdSort(buf)
	}
}
