// Package learnedsort implements a CDF-model distribution sort after
// Kristo et al., "The Case for a Learned Sorting Algorithm" (SIGMOD 2020),
// which the paper cites as a learned query-execution component: a model of
// the data's cumulative distribution function places each record close to
// its final sorted position, and a cheap touch-up pass (insertion sort over
// a nearly-sorted array) finishes the job.
//
// The package exposes both the learned sort and the std-library comparison
// sort so the benchmark can measure the crossover: learned sorting wins on
// distributions its model captures and loses when the model is badly wrong
// (adversarial or tiny inputs).
package learnedsort

import (
	"sort"

	"repro/internal/stats"
)

// Model approximates the CDF of a key sample with an equi-width histogram
// of linear splines: the domain [min,max] is cut into buckets; within each
// bucket the empirical CDF is interpolated linearly. Training is O(sample).
type Model struct {
	min, max uint64
	buckets  []float64 // cumulative fraction at each bucket boundary
}

// TrainModel fits a CDF model on a sample using the given number of
// histogram buckets (256 is a good default). The sample may be unsorted.
// An empty sample yields a model that maps everything to position 0.
func TrainModel(sample []uint64, buckets int) *Model {
	if buckets < 2 {
		buckets = 2
	}
	m := &Model{buckets: make([]float64, buckets+1)}
	if len(sample) == 0 {
		m.max = 1
		return m
	}
	m.min, m.max = sample[0], sample[0]
	for _, k := range sample {
		if k < m.min {
			m.min = k
		}
		if k > m.max {
			m.max = k
		}
	}
	if m.max == m.min {
		for i := range m.buckets {
			m.buckets[i] = 1
		}
		return m
	}
	counts := make([]int, buckets)
	span := float64(m.max-m.min) + 1
	for _, k := range sample {
		b := int(float64(k-m.min) / span * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	cum := 0
	for i, c := range counts {
		cum += c
		m.buckets[i+1] = float64(cum) / float64(len(sample))
	}
	return m
}

// CDF returns the model's estimate of P(X <= k) in [0, 1].
func (m *Model) CDF(k uint64) float64 {
	if k < m.min {
		return 0
	}
	if k >= m.max {
		return 1
	}
	buckets := len(m.buckets) - 1
	span := float64(m.max-m.min) + 1
	pos := float64(k-m.min) / span * float64(buckets)
	b := int(pos)
	if b >= buckets {
		b = buckets - 1
	}
	frac := pos - float64(b)
	return m.buckets[b] + frac*(m.buckets[b+1]-m.buckets[b])
}

// Result carries the sorted data plus the work counters the benchmark
// reports: how much of the output the model placed correctly and how much
// the touch-up pass had to fix.
type Result struct {
	// Collisions counts keys that could not be placed at their predicted
	// slot and spilled into the overflow path.
	Collisions int
	// TouchupMoves counts element moves performed by the final
	// insertion-sort pass — the model-quality signal (0 for a perfect
	// model).
	TouchupMoves int
}

// oversizeFactor flags a slot group as a model failure when it holds more
// than this multiple of the average load; such groups fall back to the
// comparison sort (graceful degradation, counted in Result.Collisions).
const oversizeFactor = 32

// Sort sorts keys ascending in place using the trained model and returns
// placement statistics. The algorithm is a counting scatter by predicted
// CDF position — because the model's CDF is monotone, slot groups are
// already in global order, and only *within* each (tiny) group does a
// touch-up insertion sort run. Cost is two linear passes plus the
// intra-group work, which the model's quality determines.
func Sort(keys []uint64, m *Model) Result {
	var res Result
	n := len(keys)
	if n < 2 {
		return res
	}
	slots := n
	// Pass 1: count keys per predicted slot.
	counts := make([]int32, slots+1)
	preds := make([]int32, n)
	for i, k := range keys {
		p := int32(m.CDF(k) * float64(slots-1))
		preds[i] = p
		counts[p+1]++
	}
	// Prefix sums -> group start offsets.
	for i := 1; i <= slots; i++ {
		counts[i] += counts[i-1]
	}
	starts := make([]int32, slots)
	copy(starts, counts[:slots])
	// Pass 2: scatter into exact group ranges.
	out := make([]uint64, n)
	next := make([]int32, slots)
	copy(next, starts)
	for i, k := range keys {
		p := preds[i]
		out[next[p]] = k
		next[p]++
	}
	copy(keys, out)
	// Finish each group: tiny groups get an insertion sort (moves
	// counted — the model-quality signal); oversized groups are model
	// failures and fall back to the comparison sort.
	avg := n/slots + 1
	threshold := avg * oversizeFactor
	for s := 0; s < slots; s++ {
		lo := int(starts[s])
		hi := int(counts[s+1])
		if hi-lo < 2 {
			continue
		}
		if hi-lo > threshold {
			res.Collisions += hi - lo
			sort.Slice(keys[lo:hi], func(i, j int) bool { return keys[lo+i] < keys[lo+j] })
			continue
		}
		for i := lo + 1; i < hi; i++ {
			k := keys[i]
			j := i - 1
			for j >= lo && keys[j] > k {
				keys[j+1] = keys[j]
				j--
				res.TouchupMoves++
			}
			keys[j+1] = k
		}
	}
	return res
}

// SortAuto trains a model on a deterministic sample of keys and sorts,
// returning the result stats. sampleSize 0 uses min(n, 4096).
func SortAuto(keys []uint64, sampleSize int) Result {
	n := len(keys)
	if sampleSize <= 0 {
		sampleSize = 4096
	}
	if sampleSize > n {
		sampleSize = n
	}
	sample := make([]uint64, 0, sampleSize)
	if n > 0 {
		stride := float64(n) / float64(sampleSize)
		for i := 0; i < sampleSize; i++ {
			sample = append(sample, keys[int(float64(i)*stride)])
		}
	}
	return Sort(keys, TrainModel(sample, 256))
}

// StdSort is the baseline comparison sort (sort.Slice) with an identical
// signature for the benchmark harness.
func StdSort(keys []uint64) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// IsSorted reports whether keys is ascending.
func IsSorted(keys []uint64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// Shuffled returns a deterministically shuffled copy of keys (test helper
// exported for the benchmark harness).
func Shuffled(keys []uint64, seed uint64) []uint64 {
	out := append([]uint64(nil), keys...)
	r := stats.NewRNG(seed)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
