package netdriver

import (
	"errors"
	"net"
)

// Sentinel errors for the wire layer. Every error the netdriver surfaces
// wraps exactly one stage sentinel (where it happened) and one class
// sentinel (whether retrying can help), so callers branch with errors.Is
// instead of string matching:
//
//	if errors.Is(err, netdriver.ErrTransient) { backoff and retry }
//	if errors.Is(err, netdriver.ErrDial)      { the server is not there }
var (
	// ErrListen marks a failure to bind the server's listener.
	ErrListen = errors.New("netdriver: listen")
	// ErrDial marks a failure to connect to the server.
	ErrDial = errors.New("netdriver: dial")
	// ErrTransient classifies failures worth retrying: timeouts and other
	// conditions the peer may recover from (a dropped frame, a stalled
	// worker). The client's backoff loop retries these.
	ErrTransient = errors.New("netdriver: transient")
	// ErrFatal classifies failures retrying cannot fix: closed or reset
	// connections, protocol desync, the peer gone for good. The client
	// latches these immediately.
	ErrFatal = errors.New("netdriver: fatal")
)

// WireError is the concrete error type of every client-side wire failure:
// the protocol stage it happened in, its retry class, and the underlying
// I/O error. It unwraps to both its class sentinel and the cause, so
// errors.Is works against ErrTransient/ErrFatal and against net errors.
type WireError struct {
	// Stage names the protocol step: "request", "response", "batch
	// request", "batch response", "load", "load ack".
	Stage string
	// Class is ErrTransient or ErrFatal.
	Class error
	// Err is the underlying I/O error.
	Err error
}

// Error implements error.
func (e *WireError) Error() string {
	return "netdriver: " + e.Stage + ": " + e.Err.Error()
}

// Unwrap exposes both the retry class and the cause to errors.Is/As.
func (e *WireError) Unwrap() []error { return []error{e.Class, e.Err} }

// classify maps an I/O error to its retry class: timeouts are transient
// (the frame may simply have been lost — retrying re-sends it); anything
// else (EOF, reset, closed) means the session is gone.
func classify(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ErrTransient
	}
	return ErrFatal
}

// wireErr builds the stage-tagged, classified error for an I/O failure.
func wireErr(stage string, err error) *WireError {
	return &WireError{Stage: stage, Class: classify(err), Err: err}
}
