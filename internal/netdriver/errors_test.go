package netdriver

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestDialErrorTyped(t *testing.T) {
	// A listener we immediately close: the port is valid but nobody is
	// there.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	_, err = Dial(addr)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if !errors.Is(err, ErrDial) {
		t.Fatalf("dial failure is not ErrDial: %v", err)
	}
}

func TestListenErrorTyped(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", nil); !errors.Is(err, ErrListen) {
		t.Fatalf("bad listen addr is not ErrListen: %v", err)
	}
}

// silentListener accepts connections and reads requests but never
// responds — every client read times out.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()
	return l
}

func TestTimeoutIsTransient(t *testing.T) {
	l := silentListener(t)
	c, err := DialOptions(l.Addr().String(), Options{ReadTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.DoErr(workload.Op{Type: workload.Get, Key: 1})
	if err == nil {
		t.Fatal("silent server produced no error")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("response timeout is not ErrTransient: %v", err)
	}
	var we *WireError
	if !errors.As(err, &we) {
		t.Fatalf("error is not a WireError: %v", err)
	}
	if we.Stage != "response" {
		t.Fatalf("stage = %q, want response", we.Stage)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatal("underlying net timeout not reachable through errors.As")
	}
}

func TestClosedSessionIsFatal(t *testing.T) {
	// A listener that hangs up right after accepting: the session dies
	// mid-conversation and can never come back.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	c, err := DialOptions(l.Addr().String(), Options{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 50; i++ {
		if _, lastErr = c.DoErr(workload.Op{Type: workload.Get, Key: 1}); lastErr != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if lastErr == nil {
		t.Fatal("ops kept succeeding on a hung-up session")
	}
	if !errors.Is(lastErr, ErrFatal) {
		t.Fatalf("dead session error is not ErrFatal: %v", lastErr)
	}
	if errors.Is(lastErr, ErrTransient) {
		t.Fatal("dead session classified transient")
	}
}

// TestRetryRecoversLostFrame: with retries enabled, a single swallowed
// request frame is re-sent after a timeout instead of failing the op.
func TestRetryRecoversLostFrame(t *testing.T) {
	srv := startServer(t)
	var dropped bool
	c, err := DialOptions(srv.Addr(), Options{
		ReadTimeout: 25 * time.Millisecond,
		MaxRetries:  2,
		RetrySeed:   9,
		WrapConn: func(conn net.Conn) net.Conn {
			return &dropFirstWriteConn{Conn: conn, dropped: &dropped}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.DoErr(workload.Op{Type: workload.Put, Key: 5, Value: 50})
	if err != nil {
		t.Fatalf("retry did not recover the dropped frame: %v", err)
	}
	if !dropped {
		t.Fatal("test conn never dropped a frame")
	}
	if c.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", c.Retries())
	}
	_ = res
	if r := c.Do(workload.Op{Type: workload.Get, Key: 5}); !r.Found {
		t.Fatal("retried Put lost")
	}
}

// dropFirstWriteConn swallows the first Write after the handshake-free
// dial — the minimal lossy wire.
type dropFirstWriteConn struct {
	net.Conn
	dropped *bool
}

func (d *dropFirstWriteConn) Write(p []byte) (int, error) {
	if !*d.dropped {
		*d.dropped = true
		return len(p), nil
	}
	return d.Conn.Write(p)
}
