package netdriver

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/driver"
	"repro/internal/workload"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", core.NewBTreeSUT)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestRemoteOps(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Load([]uint64{10, 20, 30}, []uint64{1, 2, 3})

	if res := c.Do(workload.Op{Type: workload.Get, Key: 20}); !res.Found {
		t.Fatal("remote Get missed loaded key")
	}
	if res := c.Do(workload.Op{Type: workload.Get, Key: 99}); res.Found {
		t.Fatal("remote Get found absent key")
	}
	c.Do(workload.Op{Type: workload.Put, Key: 40, Value: 4})
	if res := c.Do(workload.Op{Type: workload.Get, Key: 40}); !res.Found {
		t.Fatal("remote Put lost")
	}
	if res := c.Do(workload.Op{Type: workload.Delete, Key: 10}); !res.Found {
		t.Fatal("remote Delete failed")
	}
	res := c.Do(workload.Op{Type: workload.Scan, Key: 0, ScanLimit: 100})
	if res.Visited != 3 { // 20, 30, 40 remain
		t.Fatalf("remote Scan visited %d", res.Visited)
	}
	if res.Work <= 0 {
		t.Fatal("no work units over the wire")
	}
}

func TestRemoteMatchesLocal(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	local := core.NewBTreeSUT()

	keys := distgen.UniqueKeys(distgen.NewUniform(1, 0, 1<<30), 500)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	c.Load(keys, vals)
	local.Load(keys, vals)

	// Wire ops come off a workload.Source, as the driver issues them.
	src := workload.NewSource(workload.Spec{
		Mix:    workload.Balanced,
		Access: distgen.Static{G: distgen.NewUniform(2, 0, 1<<30)},
	}, nil, 3)
	const total = 2000
	ops := make([]workload.Op, total)
	gaps := make([]int64, total)
	src.Fill(ops, gaps, 0, total)
	for i, op := range ops {
		r1 := c.Do(op)
		r2 := local.Do(op)
		if r1.Found != r2.Found || r1.Visited != r2.Visited {
			t.Fatalf("op %d (%+v): remote (%+v) != local (%+v)", i, op, r1, r2)
		}
	}
}

func TestConnectionsIsolated(t *testing.T) {
	srv := startServer(t)
	a, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.Do(workload.Op{Type: workload.Put, Key: 7, Value: 1})
	if res := b.Do(workload.Op{Type: workload.Get, Key: 7}); res.Found {
		t.Fatal("connections share a SUT")
	}
}

func TestDriverOverNetwork(t *testing.T) {
	// The real-time driver runs unchanged against the remote SUT — the
	// paper's separate-machine setup end to end.
	srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := driver.Run(c, workload.Spec{
		Mix:    workload.ReadHeavy,
		Access: distgen.Static{G: distgen.NewUniform(4, 0, 1<<30)},
	}, distgen.NewUniform(5, 0, 1<<30), 1000,
		driver.Options{Workers: 1, Ops: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Latency.Quantile(0.5) <= 0 {
		t.Fatal("no network latency measured")
	}
}

func TestDriverReplayOverNetwork(t *testing.T) {
	// Record a real-time run against a local SUT, then replay the trace
	// through the driver against the remote SUT: every wire op is drawn
	// from a workload.Source (one TraceReader per worker), and the remote
	// run must issue exactly the recorded op count.
	spec := workload.Spec{
		Mix:    workload.ReadHeavy,
		Access: distgen.Static{G: distgen.NewUniform(4, 0, 1<<30)},
	}
	var buf bytes.Buffer
	w := workload.NewTraceWriter(&buf, "net-replay", 6)
	if _, err := driver.Run(core.NewBTreeSUT(), spec, distgen.NewUniform(5, 0, 1<<30), 1000,
		driver.Options{Workers: 2, Ops: 2000, Seed: 6, TraceSink: w}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Phases) != 2 || tr.TotalOps() != 2000 {
		t.Fatalf("recorded %d phases / %d ops", len(tr.Phases), tr.TotalOps())
	}

	srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := driver.Run(c, workload.Spec{}, distgen.NewUniform(5, 0, 1<<30), 1000,
		driver.Options{
			Workers: 2,
			Ops:     tr.TotalOps(),
			Batch:   16,
			Sources: func(wk int) workload.Source { return tr.PhaseReader(wk) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Completed)+int(res.Outcomes.Failed) != tr.TotalOps() {
		t.Fatalf("replayed %d+%d ops, want %d", res.Completed, res.Outcomes.Failed, tr.TotalOps())
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestClientReadDeadline(t *testing.T) {
	// A server that accepts and then never responds: the client must
	// surface an error after its read timeout instead of hanging.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn) // swallow requests, answer nothing
	}()

	c, err := DialOptions(ln.Addr().String(), Options{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan struct{})
	var res core.OpResult
	var opErr error
	go func() {
		res, opErr = c.DoErr(workload.Op{Type: workload.Get, Key: 1})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do hung on a dead peer despite the read deadline")
	}
	if opErr == nil {
		t.Fatalf("DoErr returned no error on a dead peer (res %+v)", res)
	}
	var nerr net.Error
	if !errors.As(opErr, &nerr) || !nerr.Timeout() {
		t.Fatalf("error is not a timeout: %v", opErr)
	}
	if c.Err() == nil {
		t.Fatal("session error not latched")
	}
	// Subsequent ops short-circuit on the latched error.
	if _, err := c.DoErr(workload.Op{Type: workload.Get, Key: 2}); err == nil {
		t.Fatal("latched session still issuing ops")
	}
	// The error-swallowing SUT-interface path stays usable (zero result).
	if got := c.Do(workload.Op{Type: workload.Get, Key: 3}); got.Found {
		t.Fatal("failed session returned a found result")
	}
}

func TestServerReadDeadline(t *testing.T) {
	// A client that connects and goes silent: with a read deadline the
	// server must drop the connection rather than pin it forever, so
	// Close() (which waits on handlers) returns promptly.
	srv, err := ServeOptions("127.0.0.1:0", core.NewBTreeSUT, Options{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer conn.Close()

	// The server should close our end once its read deadline fires.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the silent connection open")
	}

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on the dead connection")
	}
}

func TestDeadlinesDontBreakHealthySessions(t *testing.T) {
	srv, err := ServeOptions("127.0.0.1:0", core.NewBTreeSUT, Options{
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialOptions(srv.Addr(), Options{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Load([]uint64{1, 2, 3}, []uint64{10, 20, 30})
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	for i := 0; i < 100; i++ {
		res, err := c.DoErr(workload.Op{Type: workload.Get, Key: 2})
		if err != nil || !res.Found {
			t.Fatalf("op %d: res=%+v err=%v", i, res, err)
		}
	}
}

// TestBatchWire drives a mixed batch through the batched frame path and
// checks the results match per-op dispatch against an identical local SUT.
func TestBatchWire(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := []uint64{10, 20, 30, 40, 50}
	vals := []uint64{1, 2, 3, 4, 5}
	c.Load(keys, vals)
	local := core.NewBTreeSUT()
	local.Load(keys, vals)

	ops := []workload.Op{
		{Type: workload.Get, Key: 30},
		{Type: workload.Get, Key: 99},
		{Type: workload.Put, Key: 60, Value: 6},
		{Type: workload.Get, Key: 60},
		{Type: workload.Delete, Key: 10},
		{Type: workload.Scan, Key: 0, ScanLimit: 100},
		{Type: workload.Get, Key: 50},
		{Type: workload.Get, Key: 20},
	}
	got := make([]core.OpResult, len(ops))
	c.DoBatch(ops, got)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	want := make([]core.OpResult, len(ops))
	core.AsBatch(local).DoBatch(ops, want)
	for i := range ops {
		if got[i] != want[i] {
			t.Fatalf("op %d (%v): remote %+v != local %+v", i, ops[i], got[i], want[i])
		}
	}
}

// TestBatchWireLarge pushes a batch bigger than the write buffer to make
// sure framing survives segmentation, and follows it with per-op traffic
// on the same session.
func TestBatchWireLarge(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 8192
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 3
		vals[i] = uint64(i)
	}
	c.Load(keys, vals)

	ops := make([]workload.Op, n)
	for i := range ops {
		ops[i] = workload.Op{Type: workload.Get, Key: uint64((i * 7) % (n * 3))}
	}
	out := make([]core.OpResult, n)
	c.DoBatch(ops, out)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	found := 0
	for i, r := range out {
		if r.Found != (ops[i].Key%3 == 0) {
			t.Fatalf("op %d key %d: Found=%v", i, ops[i].Key, r.Found)
		}
		if r.Found {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no batch op found anything")
	}
	// The session keeps working per-op after a batch.
	if res := c.Do(workload.Op{Type: workload.Get, Key: 3}); !res.Found {
		t.Fatal("per-op Get after batch missed")
	}
}

// TestBatchWireErrorLatch: batch dispatch against a dead server latches the
// session error and zeroes results instead of hanging.
func TestBatchWireErrorLatch(t *testing.T) {
	srv, err := ServeOptions("127.0.0.1:0", core.NewBTreeSUT,
		Options{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialOptions(srv.Addr(), Options{ReadTimeout: 200 * time.Millisecond, WriteTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()

	ops := []workload.Op{{Type: workload.Get, Key: 1}, {Type: workload.Get, Key: 2}}
	out := []core.OpResult{{Found: true, Work: 99}, {Found: true, Work: 99}}
	c.DoBatch(ops, out)
	if c.Err() == nil {
		t.Fatal("no latched error after server close")
	}
	for i, r := range out {
		if r != (core.OpResult{}) {
			t.Fatalf("result %d not zeroed after error: %+v", i, r)
		}
	}
}
