package netdriver

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestLoadHeaderBounded sends a load header claiming 2^40 pairs backed by
// almost no data. The unbounded pre-allocation this guards against would
// take the whole process down with it (makeslice panic), so surviving the
// frame and serving the next connection is the assertion.
func TestLoadHeaderBounded(t *testing.T) {
	srv := startServer(t)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	req := make([]byte, reqSize)
	req[0] = opLoadBegin
	binary.BigEndian.PutUint64(req[1:9], 1<<40) // a claim no peer could back
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	// A few real pairs, then hang up mid-"load": the server must discard
	// the session without ballooning memory first.
	pair := make([]byte, 16)
	for i := 0; i < 3; i++ {
		binary.BigEndian.PutUint64(pair[0:8], uint64(i))
		conn.Write(pair)
	}
	conn.Close()

	// The server survived: a fresh session works end to end.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Load([]uint64{1, 2}, []uint64{10, 20})
	if res := c.Do(workload.Op{Type: workload.Get, Key: 2}); !res.Found {
		t.Fatal("server did not survive oversized load header")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("session error after oversized-header attack: %v", err)
	}
}

// countingSUT counts Put executions per key so a test can prove an op ran
// exactly once. Counts are mutex-guarded: the server runs each connection
// on its own goroutine.
type countingSUT struct {
	inner core.SUT
	mu    sync.Mutex
	puts  map[uint64]int
}

func (s *countingSUT) Name() string               { return s.inner.Name() }
func (s *countingSUT) Load(keys, values []uint64) { s.inner.Load(keys, values) }
func (s *countingSUT) Do(op workload.Op) core.OpResult {
	if op.Type == workload.Put {
		s.mu.Lock()
		s.puts[op.Key]++
		s.mu.Unlock()
	}
	return s.inner.Do(op)
}
func (s *countingSUT) putCount(key uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts[key]
}

// holdProxy relays client⇄server TCP traffic, optionally impounding the
// server→client direction — the "response delayed in flight" failure that
// makes a client retry a batch the server already executed.
type holdProxy struct {
	ln net.Listener

	mu      sync.Mutex
	holding bool
	held    []byte
	client  net.Conn
}

func newHoldProxy(t *testing.T, backend string) *holdProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &holdProxy{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		client, err := ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", backend)
		if err != nil {
			client.Close()
			return
		}
		p.mu.Lock()
		p.client = client
		p.mu.Unlock()
		go func() {
			io.Copy(server, client) // requests pass through untouched
			server.Close()
		}()
		go p.relay(server, client)
	}()
	return p
}

// relay forwards server→client bytes, impounding them while holding. All
// writes happen under p.mu so released bytes never reorder with live ones.
func (p *holdProxy) relay(server, client net.Conn) {
	buf := make([]byte, 1<<15)
	for {
		n, err := server.Read(buf)
		if n > 0 {
			p.mu.Lock()
			if p.holding {
				p.held = append(p.held, buf[:n]...)
			} else if _, werr := client.Write(buf[:n]); werr != nil {
				p.mu.Unlock()
				return
			}
			p.mu.Unlock()
		}
		if err != nil {
			client.Close()
			return
		}
	}
}

func (p *holdProxy) hold() {
	p.mu.Lock()
	p.holding = true
	p.mu.Unlock()
}

func (p *holdProxy) release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.holding = false
	if len(p.held) > 0 && p.client != nil {
		p.client.Write(p.held)
		p.held = nil
	}
}

// TestBatchRetryDoesNotDoubleExecute is the delayed-response drill: the
// server executes a batch of Puts but its response is impounded in flight,
// so the client times out and re-sends the batch — several times — before
// the original answer finally arrives. The per-session sequence number
// must make the server replay its cached answer for every duplicate
// instead of re-executing, and the client must absorb the late duplicate
// answers without desyncing the stream.
func TestBatchRetryDoesNotDoubleExecute(t *testing.T) {
	sut := &countingSUT{inner: core.NewBTreeSUT(), puts: make(map[uint64]int)}
	srv, err := Serve("127.0.0.1:0", func() core.SUT { return sut })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy := newHoldProxy(t, srv.Addr())
	c, err := DialOptions(proxy.ln.Addr().String(), Options{
		ReadTimeout: 60 * time.Millisecond,
		MaxRetries:  8,
		RetryBase:   time.Millisecond,
		RetryMax:    5 * time.Millisecond,
		RetrySeed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Load([]uint64{1000}, []uint64{1})

	const nOps = 10
	ops := make([]workload.Op, nOps)
	for i := range ops {
		ops[i] = workload.Op{Type: workload.Put, Key: uint64(i + 1), Value: uint64(i) * 10}
	}
	out := make([]core.OpResult, nOps)

	proxy.hold()
	release := time.AfterFunc(200*time.Millisecond, proxy.release)
	defer release.Stop()
	c.DoBatch(ops, out)

	if err := c.Err(); err != nil {
		t.Fatalf("batch failed despite retry budget: %v", err)
	}
	if c.Retries() == 0 {
		t.Fatal("response hold did not force a retry; the test exercised nothing")
	}
	for _, op := range ops {
		if n := sut.putCount(op.Key); n != 1 {
			t.Fatalf("key %d executed %d times across %d retries, want exactly 1",
				op.Key, n, c.Retries())
		}
	}
	for i, res := range out {
		if res.Failed || res.Work <= 0 {
			t.Fatalf("op %d result corrupt after replay: %+v", i, res)
		}
	}

	// The stream must stay frame-aligned past the stale duplicate answers:
	// a second batch and a per-op round trip both still work.
	gets := make([]workload.Op, nOps)
	for i := range gets {
		gets[i] = workload.Op{Type: workload.Get, Key: uint64(i + 1)}
	}
	got := make([]core.OpResult, nOps)
	c.DoBatch(gets, got)
	if err := c.Err(); err != nil {
		t.Fatalf("follow-up batch after replay drill: %v", err)
	}
	for i, res := range got {
		if !res.Found {
			t.Fatalf("get %d after replay drill: key missing (%+v)", i, res)
		}
	}
	if res := c.Do(workload.Op{Type: workload.Get, Key: 1000}); !res.Found {
		t.Fatal("per-op round trip after replay drill missed a loaded key")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("session errored after drill: %v", err)
	}
}
