// Package netdriver runs the benchmark driver and the system under test
// on opposite ends of a TCP connection, realizing the paper's §V-A setup
// ("the benchmark driver should ideally run on a separate machine and
// connect to the system under test over a fast network connection") —
// over loopback in tests, over a real network in deployments.
//
// The wire protocol is a fixed-size binary frame per operation (no
// allocation, no framing ambiguity):
//
//	request:  opType u8 | key u64 | value u64 | scanLimit u32   (21 bytes)
//	response: flags u8  | visited u32 | work u64                (13 bytes)
//
// Batches ship one opBatchBegin header (count u64, per-session sequence
// number u64) followed by count request frames; the server answers a
// sequence-numbered batch with a tagged response — one header frame
// (batchRespMark u8 | count u32 | seq u64) plus count response frames in
// a single flush. The sequence number makes batch retries idempotent: a
// re-sent batch (same seq) replays the server's cached answer instead of
// re-executing, and the client uses the response tags to discard delayed
// duplicate answers without desyncing the stream. A zero seq selects the
// legacy untagged path.
//
// All integers are big-endian.
package netdriver

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options bounds how long either end waits on the peer. Zero values mean
// no deadline (the pre-deadline behaviour); with a deadline set, a dead
// or stalled peer surfaces as an I/O error instead of hanging forever.
type Options struct {
	// ReadTimeout bounds each frame read (server: waiting for the next
	// request; client: waiting for the response).
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write/flush.
	WriteTimeout time.Duration

	// WrapConn, when set, wraps the client's raw connection before
	// deadlines apply — the injection point for wire-fault middleware
	// (fault.NewConn). If the wrapped conn implements WireFaultGater the
	// client gates faults off around load and close framing, whose
	// multi-write streams cannot tolerate a dropped chunk.
	WrapConn func(net.Conn) net.Conn
	// MaxRetries is how many times the client re-sends an operation after
	// a transient failure (ErrTransient: a response timeout, i.e. a frame
	// presumed lost) before latching the error. 0 disables retries.
	// Retries assume lost-request semantics — the request never reached
	// the server — so they require ReadTimeout to be set.
	MaxRetries int
	// RetryBase/RetryMax bound the capped exponential backoff between
	// retries (defaults 1ms and 250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the backoff jitter, keeping retry timing
	// reproducible for a fixed seed.
	RetrySeed uint64
}

// WireFaultGater is implemented by WrapConn wrappers whose faults must be
// suspended around multi-write framing (load, close). fault.Conn
// implements it.
type WireFaultGater interface {
	SetWireFaults(on bool)
}

// deadlineConn applies per-operation deadlines around a net.Conn.
type deadlineConn struct {
	net.Conn
	opts Options
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if c.opts.ReadTimeout > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if c.opts.WriteTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

const (
	reqSize  = 1 + 8 + 8 + 4
	respSize = 1 + 4 + 8
	// opBatchBegin announces a batch of n operations (n request frames
	// follow; the server answers with n response frames and one flush) —
	// the batched wire path that amortizes per-op flush latency.
	opBatchBegin = 249
	// opLoadBegin announces a bulk load of n pairs (key/value frames of
	// 16 bytes each follow); opClose ends the session.
	opLoadBegin = 250
	opClose     = 255

	// maxWireBatch bounds a batch frame count so a corrupt or malicious
	// header cannot force an unbounded allocation server-side.
	maxWireBatch = 1 << 16

	// maxLoadPrealloc bounds how many key/value pairs a load header may
	// pre-size server-side buffers for. Loads larger than this still work —
	// the buffers grow as pair data actually arrives — but a corrupt or
	// malicious header alone can no longer force an unbounded allocation
	// (the opBatchBegin bound, adapted to a stream whose length is
	// legitimately unbounded).
	maxLoadPrealloc = 1 << 16
)

// Server exposes a SUT factory over TCP. Each accepted connection gets a
// fresh SUT instance, so concurrent benchmark runs are isolated.
type Server struct {
	ln      net.Listener
	factory func() core.SUT
	opts    Options
	wg      sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and returns it. The
// chosen address is available via Addr. No I/O deadlines are applied; use
// ServeOptions to bound waits on dead peers.
func Serve(addr string, factory func() core.SUT) (*Server, error) {
	return ServeOptions(addr, factory, Options{})
}

// ServeOptions is Serve with per-connection I/O deadlines: a client that
// stops mid-session releases its connection (and SUT) after
// opts.ReadTimeout instead of pinning them forever.
func ServeOptions(addr string, factory func() core.SUT, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w %s: %w", ErrListen, addr, err)
	}
	s := &Server{ln: ln, factory: factory, opts: opts}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// decodeOp decodes a request frame (after the opType byte has been
// inspected) into an operation.
func decodeOp(req []byte) workload.Op {
	return workload.Op{
		Type:      workload.OpType(req[0]),
		Key:       binary.BigEndian.Uint64(req[1:9]),
		Value:     binary.BigEndian.Uint64(req[9:17]),
		ScanLimit: int(binary.BigEndian.Uint32(req[17:21])),
	}
}

// Response flag bits (resp[0]). respFound doubles as the historical
// found=1 byte, so pre-flag peers interoperate for successful ops.
const (
	respFound  = 1 << 0
	respFailed = 1 << 1
)

// batchRespMark tags the header frame of a sequence-numbered batch
// response: marker u8 | n u32 | seq u64 (one respSize frame). Result
// frames only ever use the low flag bits, so the marker cannot collide.
// The header lets the client match a response stream to the batch it sent
// and drain stale duplicates (the delayed answer of a batch it already
// retried) instead of desyncing on them.
const batchRespMark = 0xFE

// encodeResult encodes an op result into a response frame.
func encodeResult(resp []byte, res core.OpResult) {
	resp[0] = 0
	if res.Found {
		resp[0] |= respFound
	}
	if res.Failed {
		resp[0] |= respFailed
	}
	binary.BigEndian.PutUint32(resp[1:5], uint32(res.Visited))
	binary.BigEndian.PutUint64(resp[5:13], uint64(res.Work))
}

// decodeResult decodes a response frame into an op result.
func decodeResult(resp []byte) core.OpResult {
	return core.OpResult{
		Found:   resp[0]&respFound != 0,
		Failed:  resp[0]&respFailed != 0,
		Visited: int(binary.BigEndian.Uint32(resp[1:5])),
		Work:    int64(binary.BigEndian.Uint64(resp[5:13])),
	}
}

func (s *Server) handle(raw net.Conn) {
	sut := s.factory()
	bsut := core.AsBatch(sut)
	conn := &deadlineConn{Conn: raw, opts: s.opts}
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	req := make([]byte, reqSize)
	resp := make([]byte, respSize)
	// Duplicate-batch detection: the last executed batch's sequence number
	// and its encoded response frames. A re-sent batch (same non-zero seq)
	// means the client timed out waiting for a response that was delayed or
	// lost *after* execution — replaying the cached frames instead of
	// re-executing keeps retried Puts from double-applying. At most
	// maxWireBatch*respSize (~832 KiB) per connection.
	var lastSeq uint64
	var lastResp []byte
	for {
		if _, err := io.ReadFull(r, req); err != nil {
			return
		}
		opType := req[0]
		switch opType {
		case opClose:
			w.Flush()
			return
		case opBatchBegin:
			n := binary.BigEndian.Uint64(req[1:9])
			seq := binary.BigEndian.Uint64(req[9:17])
			if n == 0 || n > maxWireBatch {
				return
			}
			ops := make([]workload.Op, n)
			for i := uint64(0); i < n; i++ {
				if _, err := io.ReadFull(r, req); err != nil {
					return
				}
				ops[i] = decodeOp(req)
			}
			if seq != 0 && seq == lastSeq {
				// A duplicate must re-send the identical batch; a size
				// mismatch means the stream desynced beyond repair.
				if (int(n)+1)*respSize != len(lastResp) {
					return
				}
				if _, err := w.Write(lastResp); err != nil {
					return
				}
				if err := w.Flush(); err != nil {
					return
				}
				continue
			}
			results := make([]core.OpResult, n)
			// Native batch implementations (the index adapters' sorted
			// lookup runs) kick in here; plain SUTs fall back to
			// sequential dispatch.
			bsut.DoBatch(ops, results)
			if seq != 0 {
				// Sequence-numbered batch: build the tagged response
				// (header + frames), cache it for duplicate replay, and
				// send it in one write.
				lastSeq = seq
				if need := (int(n) + 1) * respSize; cap(lastResp) < need {
					lastResp = make([]byte, 0, need)
				}
				lastResp = lastResp[:0]
				var hdr [respSize]byte
				hdr[0] = batchRespMark
				binary.BigEndian.PutUint32(hdr[1:5], uint32(n))
				binary.BigEndian.PutUint64(hdr[5:13], seq)
				lastResp = append(lastResp, hdr[:]...)
				for _, res := range results {
					encodeResult(resp, res)
					lastResp = append(lastResp, resp...)
				}
				if _, err := w.Write(lastResp); err != nil {
					return
				}
				if err := w.Flush(); err != nil {
					return
				}
				continue
			}
			// Legacy un-sequenced batch: bare result frames, no replay
			// protection (pre-seq clients).
			for _, res := range results {
				encodeResult(resp, res)
				if _, err := w.Write(resp); err != nil {
					return
				}
			}
			// One flush per batch: this is the wire-level amortization
			// the batched path exists for.
			if err := w.Flush(); err != nil {
				return
			}
		case opLoadBegin:
			n := binary.BigEndian.Uint64(req[1:9])
			// Pre-size only up to maxLoadPrealloc pairs: beyond that the
			// buffers grow with the data actually received, so the header
			// cannot force an allocation the peer never backs with bytes.
			hint := n
			if hint > maxLoadPrealloc {
				hint = maxLoadPrealloc
			}
			keys := make([]uint64, 0, hint)
			values := make([]uint64, 0, hint)
			pair := make([]byte, 16)
			for i := uint64(0); i < n; i++ {
				if _, err := io.ReadFull(r, pair); err != nil {
					return
				}
				keys = append(keys, binary.BigEndian.Uint64(pair[0:8]))
				values = append(values, binary.BigEndian.Uint64(pair[8:16]))
			}
			sut.Load(keys, values)
			// Ack with an empty response frame.
			for i := range resp {
				resp[i] = 0
			}
			resp[0] = 1
			if _, err := w.Write(resp); err != nil {
				return
			}
			w.Flush()
		default:
			res := sut.Do(decodeOp(req))
			encodeResult(resp, res)
			if _, err := w.Write(resp); err != nil {
				return
			}
			// Flush per op: latency fidelity beats batching here.
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// Client is a core.SUT whose operations execute on a remote Server. It is
// not safe for concurrent use (matching the SUT contract); open one client
// per driver worker.
//
// The SUT interface cannot return I/O errors, so the first failure is
// latched: every later operation short-circuits to a zero result and
// Err() reports what went wrong — callers driving a remote SUT should
// check it when the run finishes (cmd/lsbench does).
type Client struct {
	conn *deadlineConn
	r    *bufio.Reader
	name string
	err  error
	req  [reqSize]byte
	resp [respSize]byte
	// scratch buffers batch frames so a whole batch goes out in one
	// write and comes back in one read loop (DoBatch).
	scratch []byte

	// batchSeq numbers this session's batch chunks (1, 2, …). A retry
	// re-sends the same number, letting the server detect the duplicate
	// and replay its cached answer instead of re-executing the ops.
	batchSeq uint64

	// Retry state: transient failures (ErrTransient — a presumed-lost
	// frame) are re-sent up to maxRetries times with capped exponential
	// backoff and seeded jitter before the error latches.
	maxRetries int
	retryBase  time.Duration
	retryMax   time.Duration
	retryRNG   *stats.RNG
	retries    int64
	gater      WireFaultGater
}

// Dial connects to a netdriver server with no I/O deadlines.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects with per-operation I/O deadlines: a dead or
// stalled server surfaces as an error on the client (via Err and DoErr)
// after opts.ReadTimeout instead of hanging the driver forever. With
// opts.MaxRetries set, transient failures back off and retry first.
func DialOptions(addr string, opts Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w %s: %w", ErrDial, addr, err)
	}
	var gater WireFaultGater
	if opts.WrapConn != nil {
		wrapped := opts.WrapConn(conn)
		gater, _ = wrapped.(WireFaultGater)
		conn = wrapped
	}
	base := opts.RetryBase
	if base <= 0 {
		base = time.Millisecond
	}
	max := opts.RetryMax
	if max < base {
		max = 250 * time.Millisecond
	}
	dc := &deadlineConn{Conn: conn, opts: opts}
	return &Client{
		conn:       dc,
		r:          bufio.NewReaderSize(dc, 1<<16),
		name:       "remote(" + addr + ")",
		maxRetries: opts.MaxRetries,
		retryBase:  base,
		retryMax:   max,
		retryRNG:   stats.NewRNG(opts.RetrySeed ^ 0xFA17),
		gater:      gater,
	}, nil
}

// Retries returns how many transient-failure retries the session made.
func (c *Client) Retries() int64 { return c.retries }

// backoff sleeps the capped exponential delay for retry attempt (0-based)
// with seeded jitter in [d/2, d).
func (c *Client) backoff(attempt int) {
	d := c.retryBase << attempt
	if d > c.retryMax || d <= 0 {
		d = c.retryMax
	}
	d = d/2 + time.Duration(c.retryRNG.Float64()*float64(d/2))
	time.Sleep(d)
}

// setWireFaults gates WrapConn fault middleware around framing that
// cannot tolerate drops.
func (c *Client) setWireFaults(on bool) {
	if c.gater != nil {
		c.gater.SetWireFaults(on)
	}
}

// Name implements core.SUT.
func (c *Client) Name() string { return c.name }

// Err returns the first I/O error the session hit, if any. Once set, all
// subsequent operations are no-ops returning zero results.
func (c *Client) Err() error { return c.err }

// fail latches the session's first error as a stage-tagged, classified
// WireError (errors.Is-able against ErrTransient/ErrFatal).
func (c *Client) fail(stage string, err error) error {
	if c.err == nil {
		c.err = wireErr(stage, err)
	}
	return c.err
}

// Close terminates the session. Wire faults are gated off: the close
// frame must reach the server so it releases the connection promptly.
func (c *Client) Close() error {
	c.setWireFaults(false)
	c.req[0] = opClose
	c.conn.Write(c.req[:])
	return c.conn.Close()
}

// Load implements core.SUT by streaming the pairs to the server. Wire
// faults are gated off for the duration: the load stream is one logical
// frame spread over many writes, and a dropped chunk would desync the
// session rather than simulate a lost request.
func (c *Client) Load(keys, values []uint64) {
	if c.err != nil {
		return
	}
	c.setWireFaults(false)
	defer c.setWireFaults(true)
	c.req[0] = opLoadBegin
	binary.BigEndian.PutUint64(c.req[1:9], uint64(len(keys)))
	if _, err := c.conn.Write(c.req[:]); err != nil {
		c.fail("load", err)
		return
	}
	buf := bufio.NewWriterSize(c.conn, 1<<16)
	pair := make([]byte, 16)
	for i, k := range keys {
		binary.BigEndian.PutUint64(pair[0:8], k)
		binary.BigEndian.PutUint64(pair[8:16], values[i])
		if _, err := buf.Write(pair); err != nil {
			c.fail("load", err)
			return
		}
	}
	if err := buf.Flush(); err != nil {
		c.fail("load", err)
		return
	}
	if _, err := io.ReadFull(c.r, c.resp[:]); err != nil { // ack
		c.fail("load ack", err)
	}
}

// Do implements core.SUT.
func (c *Client) Do(op workload.Op) core.OpResult {
	res, _ := c.DoErr(op)
	return res
}

// DoErr executes one operation and surfaces the I/O error, if any —
// callers that can handle failure (the service's remote adapters) should
// prefer it over the error-swallowing SUT-interface Do. Transient
// failures (a response timeout: the request frame presumed lost in
// flight) are re-sent up to Options.MaxRetries times with capped
// exponential backoff before the session latches the error.
func (c *Client) DoErr(op workload.Op) (core.OpResult, error) {
	if c.err != nil {
		return core.OpResult{}, c.err
	}
	c.req[0] = byte(op.Type)
	binary.BigEndian.PutUint64(c.req[1:9], op.Key)
	binary.BigEndian.PutUint64(c.req[9:17], op.Value)
	binary.BigEndian.PutUint32(c.req[17:21], uint32(op.ScanLimit))
	for attempt := 0; ; attempt++ {
		if _, err := c.conn.Write(c.req[:]); err != nil {
			return core.OpResult{}, c.fail("request", err)
		}
		_, err := io.ReadFull(c.r, c.resp[:])
		if err == nil {
			return decodeResult(c.resp[:]), nil
		}
		we := wireErr("response", err)
		if we.Class == ErrTransient && attempt < c.maxRetries {
			c.retries++
			c.backoff(attempt)
			continue
		}
		if c.err == nil {
			c.err = we
		}
		return core.OpResult{}, c.err
	}
}

// DoBatch implements core.BatchSUT with batched wire frames: one batch
// header plus len(ops) request frames leave in a single write, and the
// server answers with len(ops) response frames after one flush — one
// network round trip per batch instead of one per operation. Oversized
// batches are split to the protocol's frame-count bound.
func (c *Client) DoBatch(ops []workload.Op, out []core.OpResult) {
	for len(ops) > maxWireBatch {
		c.doBatchChunk(ops[:maxWireBatch], out[:maxWireBatch])
		ops, out = ops[maxWireBatch:], out[maxWireBatch:]
	}
	c.doBatchChunk(ops, out)
}

func (c *Client) doBatchChunk(ops []workload.Op, out []core.OpResult) {
	if len(ops) == 0 {
		return
	}
	if c.err != nil {
		for i := range out[:len(ops)] {
			out[i] = core.OpResult{}
		}
		return
	}
	c.batchSeq++
	need := reqSize * (1 + len(ops))
	if cap(c.scratch) < need {
		c.scratch = make([]byte, need)
	}
	buf := c.scratch[:0]
	var hdr [reqSize]byte
	hdr[0] = opBatchBegin
	binary.BigEndian.PutUint64(hdr[1:9], uint64(len(ops)))
	binary.BigEndian.PutUint64(hdr[9:17], c.batchSeq)
	buf = append(buf, hdr[:]...)
	for _, op := range ops {
		var f [reqSize]byte
		f[0] = byte(op.Type)
		binary.BigEndian.PutUint64(f[1:9], op.Key)
		binary.BigEndian.PutUint64(f[9:17], op.Value)
		binary.BigEndian.PutUint32(f[17:21], uint32(op.ScanLimit))
		buf = append(buf, f[:]...)
	}
	for attempt := 0; ; attempt++ {
		if _, err := c.conn.Write(buf); err != nil {
			c.fail("batch request", err)
			for i := range out[:len(ops)] {
				out[i] = core.OpResult{}
			}
			return
		}
		atHeader, err := c.readBatchResponse(c.batchSeq, out[:len(ops)])
		if err == nil {
			return
		}
		we := wireErr("batch response", err)
		// Re-send only when the failure struck at a response-stream
		// boundary (the stream still frame-aligned). The sequence number
		// makes the re-send safe either way: if the batch never arrived
		// the server executes it now; if it did arrive (the response was
		// delayed or lost, not the request), the server recognizes the
		// duplicate and replays its cached answer without re-executing.
		if atHeader && we.Class == ErrTransient && attempt < c.maxRetries {
			c.retries++
			c.backoff(attempt)
			continue
		}
		if c.err == nil {
			c.err = we
		}
		for i := range out[:len(ops)] {
			out[i] = core.OpResult{}
		}
		return
	}
}

// readBatchResponse reads tagged batch response streams until the one
// numbered seq arrives, decoding its frames into out. A stale duplicate —
// the delayed answer of an earlier batch this session already resolved
// through a retry — is drained and discarded by its header instead of
// desyncing the stream. atHeader reports whether a failure struck at a
// header boundary, where the stream is still frame-aligned and a re-send
// is safe.
func (c *Client) readBatchResponse(seq uint64, out []core.OpResult) (atHeader bool, err error) {
	for {
		if _, err := io.ReadFull(c.r, c.resp[:]); err != nil {
			return true, err
		}
		if c.resp[0] != batchRespMark {
			return false, fmt.Errorf("batch response desync: marker %#x, want %#x", c.resp[0], batchRespMark)
		}
		n := int(binary.BigEndian.Uint32(c.resp[1:5]))
		got := binary.BigEndian.Uint64(c.resp[5:13])
		if got > seq || n > maxWireBatch || (got == seq && n != len(out)) {
			return false, fmt.Errorf("batch response desync: got seq %d (%d frames), want seq %d (%d frames)",
				got, n, seq, len(out))
		}
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(c.r, c.resp[:]); err != nil {
				return false, err
			}
			if got == seq {
				out[i] = decodeResult(c.resp[:])
			}
		}
		if got == seq {
			return false, nil
		}
	}
}

var _ core.SUT = (*Client)(nil)
var _ core.BatchSUT = (*Client)(nil)
