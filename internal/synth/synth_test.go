package synth

import (
	"bytes"
	"testing"

	"repro/internal/distgen"
	"repro/internal/quality"
	"repro/internal/similarity"
	"repro/internal/stats"
)

// driftingTrace builds a trace with a hot-key head, a heavy marginal, and
// mid-trace drift — the shape of a production trace.
func driftingTrace(n int, seed uint64) []uint64 {
	rng := stats.NewRNG(seed)
	zipf := stats.NewZipf(rng.Split(), 1.3, 50)
	d := distgen.NewBlend(seed+1,
		distgen.NewLognormal(seed+2, 0, 1.5, 1e12),
		distgen.NewClustered(seed+3, 8, 1e9))
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			// Hot head: 30% of refs hit 50 popular keys.
			out = append(out, 7777000+zipf.Next())
		} else {
			out = append(out, d.KeysAt(float64(i)/float64(n), 1)[0])
		}
	}
	return out
}

func TestFitGenerateMarginalFidelity(t *testing.T) {
	orig := driftingTrace(40000, 1)
	m, err := Fit(orig, FitOptions{}) // no anonymization: full fidelity
	if err != nil {
		t.Fatal(err)
	}
	syn := m.Generate(40000, 2)
	if len(syn) != 40000 {
		t.Fatalf("generated %d keys", len(syn))
	}
	// Per-segment KS between original and synthetic must be small.
	segs := len(m.Segments)
	for s := 0; s < segs; s++ {
		o := orig[s*len(orig)/segs : (s+1)*len(orig)/segs]
		y := syn[s*len(syn)/segs : (s+1)*len(syn)/segs]
		if d := similarity.KS(o, y); d > 0.12 {
			t.Fatalf("segment %d: KS(orig, synth) = %v", s, d)
		}
	}
}

func TestSynthPreservesDrift(t *testing.T) {
	orig := driftingTrace(40000, 3)
	m, err := Fit(orig, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	syn := m.Generate(40000, 4)
	oq := quality.Score(orig, nil)
	sq := quality.Score(syn, nil)
	if diff := oq.DriftScore - sq.DriftScore; diff > 0.2 || diff < -0.2 {
		t.Fatalf("drift score diverged: orig %v vs synth %v", oq.DriftScore, sq.DriftScore)
	}
	if diff := oq.SkewScore - sq.SkewScore; diff > 0.25 || diff < -0.25 {
		t.Fatalf("skew score diverged: orig %v vs synth %v", oq.SkewScore, sq.SkewScore)
	}
}

func TestSynthHidesHotKeyIdentities(t *testing.T) {
	orig := driftingTrace(20000, 5)
	m, err := Fit(orig, FitOptions{RemapSeed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	// Original hot keys are 7777000..7777049; none may appear among the
	// model's hot keys.
	for _, s := range m.Segments {
		for _, hk := range s.HotKeys {
			if hk >= 7777000 && hk < 7777050 {
				t.Fatalf("original hot key %d leaked into the model", hk)
			}
		}
		if len(s.HotKeys) == 0 {
			t.Fatal("no hot keys detected despite the 30% head")
		}
	}
}

func TestSynthHotMassPreserved(t *testing.T) {
	orig := driftingTrace(30000, 6)
	m, err := Fit(orig, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	syn := m.Generate(30000, 7)
	headShare := func(trace []uint64) float64 {
		counts := map[uint64]int{}
		for _, k := range trace {
			counts[k]++
		}
		// Mass of keys individually above 0.5%.
		var mass int
		for _, c := range counts {
			if float64(c) >= 0.005*float64(len(trace)) {
				mass += c
			}
		}
		return float64(mass) / float64(len(trace))
	}
	o, s := headShare(orig), headShare(syn)
	if diff := o - s; diff > 0.1 || diff < -0.1 {
		t.Fatalf("hot mass diverged: orig %v vs synth %v", o, s)
	}
}

// TestRemapFidelityCost quantifies the privacy/fidelity tension of §V-C:
// anonymizing hot keys (RemapSeed != 0) costs marginal fidelity, but the
// KS penalty is bounded by the displaced hot mass.
func TestRemapFidelityCost(t *testing.T) {
	orig := driftingTrace(40000, 1)
	plain, err := Fit(orig, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	anon, err := Fit(orig, FitOptions{RemapSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	ksPlain := similarity.KS(orig, plain.Generate(40000, 2))
	ksAnon := similarity.KS(orig, anon.Generate(40000, 2))
	if ksAnon <= ksPlain {
		t.Fatalf("anonymization should cost fidelity: plain %v, anon %v", ksPlain, ksAnon)
	}
	// The penalty is bounded by the hot mass (~0.3 here).
	var hotMass float64
	for _, p := range anon.Segments[0].HotProbs {
		hotMass += p
	}
	if ksAnon > ksPlain+hotMass+0.05 {
		t.Fatalf("anonymization penalty %v exceeds hot-mass bound %v", ksAnon-ksPlain, hotMass)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, FitOptions{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestFitShortTrace(t *testing.T) {
	trace := distgen.NewUniform(8, 0, 1000).Keys(100)
	m, err := Fit(trace, FitOptions{NumSegments: 16, NumQuantiles: 64})
	if err != nil {
		t.Fatal(err)
	}
	syn := m.Generate(100, 9)
	if len(syn) != 100 {
		t.Fatalf("generated %d", len(syn))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m, err := Fit(driftingTrace(10000, 10), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := m.Generate(5000, 11)
	b := m.Generate(5000, 11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
	if m.Generate(0, 1) != nil {
		t.Fatal("n=0 must return nil")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m, err := Fit(driftingTrace(20000, 12), FitOptions{RemapSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.TraceLen != m.TraceLen || len(m2.Segments) != len(m.Segments) {
		t.Fatal("header mismatch")
	}
	for i := range m.Segments {
		a, b := m.Segments[i], m2.Segments[i]
		if a.TotalRefs != b.TotalRefs || len(a.Quantiles) != len(b.Quantiles) ||
			len(a.HotKeys) != len(b.HotKeys) {
			t.Fatalf("segment %d structure mismatch", i)
		}
		for j := range a.Quantiles {
			if a.Quantiles[j] != b.Quantiles[j] {
				t.Fatalf("segment %d quantile %d mismatch", i, j)
			}
		}
	}
	// Round-tripped model generates identically.
	x := m.Generate(1000, 13)
	y := m2.Generate(1000, 13)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("round-tripped model generates differently")
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := Read(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("bad magic accepted")
	}
}
