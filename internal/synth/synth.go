// Package synth implements the workload synthesizer sketched in the
// paper's §V-C: "an interesting avenue for a new benchmark involves
// automatically generating synthetic datasets and workloads from
// real-world deployments". Given a recorded key trace (which a company
// could not share), Fit learns a compact, shareable model — per-segment
// quantile sketches of the key distribution, the hot-key mass, and the
// drift between segments — and Generate produces a fresh trace with the
// same statistical shape but none of the original keys' identities
// (hot keys are remapped through a keyed hash).
//
// Fidelity is measured with the same Φ estimators the benchmark uses: the
// tests require a small KS distance between original and synthetic
// segments and agreement of the dataset-quality scores.
package synth

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Model is a fitted, serializable description of a key trace. It contains
// no raw keys from the original except quantile boundaries and (hashed)
// hot-key identities — the privacy-preserving trade the paper discusses.
type Model struct {
	// Segments hold per-time-slice distribution sketches, in trace order.
	Segments []Segment
	// TraceLen is the original trace length (generation hint).
	TraceLen int
}

// Segment sketches one time slice of the trace.
type Segment struct {
	// Quantiles are the q = i/(len-1) quantile key values, i.e. a
	// piecewise-linear CDF with len(Quantiles) knots (>= 2).
	Quantiles []uint64
	// HotKeys are the remapped identities of keys whose individual
	// frequency exceeds the hot threshold, with their probabilities.
	HotKeys   []uint64
	HotProbs  []float64 // same length; sum <= 1
	TotalRefs int
}

// FitOptions tunes the synthesizer.
type FitOptions struct {
	// NumSegments splits the trace for drift modelling (default 8).
	NumSegments int
	// NumQuantiles per segment (default 64).
	NumQuantiles int
	// HotThreshold: keys with frequency share above this become
	// explicit hot keys (default 0.005 = 0.5%).
	HotThreshold float64
	// RemapSeed, when non-zero, anonymizes hot-key identities with a
	// keyed locality-preserving hash. Anonymization costs marginal
	// fidelity: a displaced point mass moves the empirical CDF by up to
	// the displaced hot mass — the privacy/fidelity tension of §V-C,
	// which TestRemapFidelityCost quantifies. Zero keeps identities.
	RemapSeed uint64
}

func (o FitOptions) withDefaults() FitOptions {
	if o.NumSegments <= 0 {
		o.NumSegments = 8
	}
	if o.NumQuantiles < 2 {
		o.NumQuantiles = 64
	}
	if o.HotThreshold <= 0 {
		o.HotThreshold = 0.005
	}
	return o
}

// Fit learns a Model from a recorded key trace (keys in arrival order).
func Fit(trace []uint64, opts FitOptions) (*Model, error) {
	if len(trace) == 0 {
		return nil, errors.New("synth: empty trace")
	}
	opts = opts.withDefaults()
	segLen := len(trace) / opts.NumSegments
	if segLen < opts.NumQuantiles {
		// Too short to segment that finely; reduce segments.
		opts.NumSegments = len(trace) / opts.NumQuantiles
		if opts.NumSegments < 1 {
			opts.NumSegments = 1
		}
		segLen = len(trace) / opts.NumSegments
	}
	m := &Model{TraceLen: len(trace)}
	for s := 0; s < opts.NumSegments; s++ {
		lo := s * segLen
		hi := lo + segLen
		if s == opts.NumSegments-1 {
			hi = len(trace)
		}
		m.Segments = append(m.Segments, fitSegment(trace[lo:hi], opts))
	}
	return m, nil
}

func fitSegment(seg []uint64, opts FitOptions) Segment {
	out := Segment{TotalRefs: len(seg)}
	// Hot keys by frequency share.
	counts := make(map[uint64]int, len(seg)/4)
	for _, k := range seg {
		counts[k]++
	}
	threshold := int(opts.HotThreshold * float64(len(seg)))
	if threshold < 2 {
		threshold = 2
	}
	type hot struct {
		k uint64
		c int
	}
	var hots []hot
	for k, c := range counts {
		if c >= threshold {
			hots = append(hots, hot{k, c})
		}
	}
	// Deterministic order: by count desc, key asc.
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].c != hots[j].c {
			return hots[i].c > hots[j].c
		}
		return hots[i].k < hots[j].k
	})
	hotSet := make(map[uint64]struct{}, len(hots))
	for _, h := range hots {
		hotSet[h.k] = struct{}{}
		out.HotKeys = append(out.HotKeys, remap(h.k, opts.RemapSeed))
		out.HotProbs = append(out.HotProbs, float64(h.c)/float64(len(seg)))
	}
	// Quantile sketch over the *tail* only — hot keys are re-sampled
	// explicitly, so including their references here would double-count
	// their mass in the synthetic trace.
	xs := make([]uint64, 0, len(seg))
	for _, k := range seg {
		if _, hot := hotSet[k]; !hot {
			xs = append(xs, k)
		}
	}
	if len(xs) == 0 {
		// Entirely hot segment: normalize hot probabilities to 1 so
		// sampling never falls through to an empty sketch.
		var hm float64
		for _, p := range out.HotProbs {
			hm += p
		}
		if hm > 0 {
			for i := range out.HotProbs {
				out.HotProbs[i] /= hm
			}
		}
		out.Quantiles = []uint64{0, 0}
		return out
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	q := opts.NumQuantiles
	out.Quantiles = make([]uint64, q)
	for i := 0; i < q; i++ {
		pos := float64(i) / float64(q-1) * float64(len(xs)-1)
		out.Quantiles[i] = xs[int(pos)]
	}
	return out
}

// remap anonymizes a hot key's identity with a keyed locality-preserving
// hash: the low 24 bits are replaced, so the synthetic key lands within
// 2^24 of the original but is not the original identity. A seed of zero
// disables remapping (full fidelity, no anonymization).
func remap(k, seed uint64) uint64 {
	if seed == 0 {
		return k
	}
	const mask = (1 << 24) - 1
	h := k ^ seed
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return (k &^ uint64(mask)) | (h & mask)
}

// hotMass returns the total probability of explicit hot keys.
func (s Segment) hotMass() float64 {
	var m float64
	for _, p := range s.HotProbs {
		m += p
	}
	return m
}

// sample draws one key from the segment model.
func (s Segment) sample(rng *stats.RNG) uint64 {
	if hm := s.hotMass(); hm > 0 && rng.Float64() < hm {
		// Pick among hot keys proportionally.
		u := rng.Float64() * hm
		cum := 0.0
		for i, p := range s.HotProbs {
			cum += p
			if u < cum {
				return s.HotKeys[i]
			}
		}
		return s.HotKeys[len(s.HotKeys)-1]
	}
	// Inverse-CDF sampling from the piecewise-linear quantile sketch.
	u := rng.Float64() * float64(len(s.Quantiles)-1)
	i := int(u)
	if i >= len(s.Quantiles)-1 {
		i = len(s.Quantiles) - 2
	}
	frac := u - float64(i)
	lo, hi := s.Quantiles[i], s.Quantiles[i+1]
	if hi <= lo {
		return lo
	}
	return lo + uint64(frac*float64(hi-lo))
}

// Generate produces a synthetic trace of n keys that follows the model's
// per-segment distributions (including the drift between them).
func (m *Model) Generate(n int, seed uint64) []uint64 {
	if n <= 0 || len(m.Segments) == 0 {
		return nil
	}
	rng := stats.NewRNG(seed)
	out := make([]uint64, n)
	for i := range out {
		s := i * len(m.Segments) / n
		if s >= len(m.Segments) {
			s = len(m.Segments) - 1
		}
		out[i] = m.Segments[s].sample(rng)
	}
	return out
}

// ---------------------------------------------------------------------------
// Serialization: the shareable artifact (binary, versioned).
// ---------------------------------------------------------------------------

const magic = uint32(0x4C534D31) // "LSM1"

// Write serializes the model.
func (m *Model) Write(w io.Writer) error {
	if err := binary.Write(w, binary.BigEndian, magic); err != nil {
		return fmt.Errorf("synth: write: %w", err)
	}
	if err := binary.Write(w, binary.BigEndian, uint64(m.TraceLen)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(m.Segments))); err != nil {
		return err
	}
	for _, s := range m.Segments {
		if err := binary.Write(w, binary.BigEndian, uint64(s.TotalRefs)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.BigEndian, uint32(len(s.Quantiles))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.BigEndian, s.Quantiles); err != nil {
			return err
		}
		if err := binary.Write(w, binary.BigEndian, uint32(len(s.HotKeys))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.BigEndian, s.HotKeys); err != nil {
			return err
		}
		if err := binary.Write(w, binary.BigEndian, s.HotProbs); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a model written by Write.
func Read(r io.Reader) (*Model, error) {
	var mg uint32
	if err := binary.Read(r, binary.BigEndian, &mg); err != nil {
		return nil, fmt.Errorf("synth: read: %w", err)
	}
	if mg != magic {
		return nil, fmt.Errorf("synth: bad magic %#x", mg)
	}
	var traceLen uint64
	if err := binary.Read(r, binary.BigEndian, &traceLen); err != nil {
		return nil, err
	}
	var nSeg uint32
	if err := binary.Read(r, binary.BigEndian, &nSeg); err != nil {
		return nil, err
	}
	if nSeg > 1<<20 {
		return nil, fmt.Errorf("synth: implausible segment count %d", nSeg)
	}
	m := &Model{TraceLen: int(traceLen)}
	for i := uint32(0); i < nSeg; i++ {
		var s Segment
		var total uint64
		if err := binary.Read(r, binary.BigEndian, &total); err != nil {
			return nil, err
		}
		s.TotalRefs = int(total)
		var nq uint32
		if err := binary.Read(r, binary.BigEndian, &nq); err != nil {
			return nil, err
		}
		if nq < 2 || nq > 1<<20 {
			return nil, fmt.Errorf("synth: implausible quantile count %d", nq)
		}
		s.Quantiles = make([]uint64, nq)
		if err := binary.Read(r, binary.BigEndian, s.Quantiles); err != nil {
			return nil, err
		}
		var nh uint32
		if err := binary.Read(r, binary.BigEndian, &nh); err != nil {
			return nil, err
		}
		if nh > 1<<20 {
			return nil, fmt.Errorf("synth: implausible hot-key count %d", nh)
		}
		s.HotKeys = make([]uint64, nh)
		if err := binary.Read(r, binary.BigEndian, s.HotKeys); err != nil {
			return nil, err
		}
		s.HotProbs = make([]float64, nh)
		if err := binary.Read(r, binary.BigEndian, s.HotProbs); err != nil {
			return nil, err
		}
		m.Segments = append(m.Segments, s)
	}
	return m, nil
}
