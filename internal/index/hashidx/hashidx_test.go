package hashidx

import (
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Ordered { return New() })
}

func TestDirectoryGrowth(t *testing.T) {
	ix := New()
	for k := uint64(0); k < 100000; k++ {
		ix.Insert(k, k)
	}
	if ix.Len() != 100000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.globalDepth == 0 {
		t.Fatal("directory never grew")
	}
	for _, k := range []uint64{0, 50000, 99999} {
		if v, ok := ix.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) failed after growth", k)
		}
	}
	if ix.Stats().Splits == 0 {
		t.Fatal("no splits recorded")
	}
}

func TestBucketInvariant(t *testing.T) {
	// Every key in every bucket must hash back to a directory slot
	// pointing at that bucket.
	ix := New()
	for k := uint64(0); k < 20000; k += 3 {
		ix.Insert(k, k)
	}
	for slot, b := range ix.dirs {
		for _, k := range b.keys {
			if ix.dirs[ix.dirIndex(k)] != b {
				t.Fatalf("key %d in bucket at slot %d but routes elsewhere", k, slot)
			}
		}
	}
}

func TestDeleteShrinksLen(t *testing.T) {
	ix := New()
	for k := uint64(0); k < 1000; k++ {
		ix.Insert(k, k)
	}
	for k := uint64(0); k < 1000; k += 2 {
		if !ix.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if ix.Len() != 500 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestScanSortsResults(t *testing.T) {
	ix := New()
	for _, k := range []uint64{50, 10, 90, 30, 70} {
		ix.Insert(k, k)
	}
	var got []uint64
	ix.Scan(0, 100, func(k, _ uint64) bool { got = append(got, k); return true })
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("scan unsorted: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("scan visited %d", len(got))
	}
}

func TestBulkLoadReplaces(t *testing.T) {
	ix := New()
	ix.Insert(999, 1)
	ix.BulkLoad([]uint64{1, 2, 3}, []uint64{10, 20, 30})
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if _, ok := ix.Get(999); ok {
		t.Fatal("BulkLoad did not replace contents")
	}
}
