// Package hashidx implements an extendible-hashing index over uint64 keys.
// It is the traditional point-lookup baseline: O(1) gets regardless of data
// distribution, but no ordered scans — the benchmark uses it to show that
// metric rankings depend on the operation mix.
package hashidx

import (
	"sort"

	"repro/internal/index"
)

const (
	bucketCap = 16
	// maxDepth caps directory doubling; beyond it buckets overflow
	// linearly (only reachable under adversarial hash collisions).
	maxDepth = 40
)

// Index is an extendible hash table. Not safe for concurrent use.
type Index struct {
	globalDepth uint
	dirs        []*bucket
	size        int
	stats       index.Stats
}

type bucket struct {
	localDepth uint
	keys       []uint64
	values     []uint64
}

// New returns an empty hash index.
func New() *Index {
	b := &bucket{localDepth: 0}
	return &Index{globalDepth: 0, dirs: []*bucket{b}}
}

// Name implements index.Ordered.
func (ix *Index) Name() string { return "hash" }

// Len implements index.Ordered.
func (ix *Index) Len() int { return ix.size }

// Stats implements index.Instrumented.
func (ix *Index) Stats() index.Stats { return ix.stats }

func hash64(k uint64) uint64 {
	// Fibonacci hashing with an avalanche pass; cheap and well mixed.
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 33
	return k
}

func (ix *Index) dirIndex(key uint64) int {
	if ix.globalDepth == 0 {
		return 0
	}
	return int(hash64(key) >> (64 - ix.globalDepth))
}

// Get implements index.Ordered.
func (ix *Index) Get(key uint64) (uint64, bool) {
	ix.stats.Searches++
	b := ix.dirs[ix.dirIndex(key)]
	for i, k := range b.keys {
		ix.stats.Compares++
		if k == key {
			return b.values[i], true
		}
	}
	return 0, false
}

// Insert implements index.Ordered.
func (ix *Index) Insert(key, value uint64) {
	for {
		b := ix.dirs[ix.dirIndex(key)]
		for i, k := range b.keys {
			if k == key {
				b.values[i] = value
				return
			}
		}
		// Overflow past capacity only in the pathological case where
		// the directory has hit its depth cap (mass hash collisions);
		// the bucket then degrades to a linear list rather than the
		// split loop spinning forever.
		if len(b.keys) < bucketCap || b.localDepth >= maxDepth {
			b.keys = append(b.keys, key)
			b.values = append(b.values, value)
			ix.size++
			return
		}
		ix.split(b)
	}
}

// split doubles the directory if needed and redistributes b.
func (ix *Index) split(b *bucket) {
	ix.stats.Splits++
	if b.localDepth == ix.globalDepth {
		// Double the directory.
		nd := make([]*bucket, len(ix.dirs)*2)
		for i, d := range ix.dirs {
			nd[2*i] = d
			nd[2*i+1] = d
		}
		ix.dirs = nd
		ix.globalDepth++
	}
	b.localDepth++
	sib := &bucket{localDepth: b.localDepth}
	// Redistribute entries between b and sib on the new depth bit.
	bit := uint64(1) << (64 - b.localDepth)
	oldKeys, oldVals := b.keys, b.values
	b.keys, b.values = nil, nil
	for i, k := range oldKeys {
		if hash64(k)&bit != 0 {
			sib.keys = append(sib.keys, k)
			sib.values = append(sib.values, oldVals[i])
		} else {
			b.keys = append(b.keys, k)
			b.values = append(b.values, oldVals[i])
		}
	}
	// Point the upper half of b's directory range at the sibling.
	span := 1 << (ix.globalDepth - b.localDepth) // dirs per half
	for i := range ix.dirs {
		if ix.dirs[i] == b && (i/span)%2 == 1 {
			ix.dirs[i] = sib
		}
	}
}

// Delete implements index.Ordered.
func (ix *Index) Delete(key uint64) bool {
	b := ix.dirs[ix.dirIndex(key)]
	for i, k := range b.keys {
		if k == key {
			last := len(b.keys) - 1
			b.keys[i], b.values[i] = b.keys[last], b.values[last]
			b.keys = b.keys[:last]
			b.values = b.values[:last]
			ix.size--
			return true
		}
	}
	return false
}

// Scan implements index.Ordered. Hash indexes have no order, so Scan
// collects and sorts matching entries — deliberately expensive, reflecting
// the real cost of range queries on hash structures.
func (ix *Index) Scan(lo, hi uint64, fn func(key, value uint64) bool) int {
	if hi < lo {
		return 0
	}
	type kv struct{ k, v uint64 }
	var hits []kv
	seen := make(map[*bucket]struct{})
	for _, b := range ix.dirs {
		if _, dup := seen[b]; dup {
			continue
		}
		seen[b] = struct{}{}
		for i, k := range b.keys {
			if k >= lo && k <= hi {
				hits = append(hits, kv{k, b.values[i]})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].k < hits[j].k })
	visited := 0
	for _, h := range hits {
		visited++
		if !fn(h.k, h.v) {
			break
		}
	}
	return visited
}

// BulkLoad implements index.BulkLoader by repeated insertion (hashing gains
// nothing from sorted input).
func (ix *Index) BulkLoad(keys, values []uint64) {
	*ix = *New()
	for i, k := range keys {
		ix.Insert(k, values[i])
	}
}

var _ index.Ordered = (*Index)(nil)
var _ index.BulkLoader = (*Index)(nil)
var _ index.Instrumented = (*Index)(nil)
