// Package index defines the common interface implemented by every index
// structure under benchmark — the traditional baselines (B+ tree, hash) and
// the learned indexes (RMI, ALEX-style adaptive) — so the benchmark driver
// and the SUT adapters can treat them uniformly.
package index

// Ordered is a mutable ordered map from uint64 keys to uint64 values.
// Implementations need not be safe for concurrent use; the driver
// serializes access per SUT shard.
type Ordered interface {
	// Get returns the value for key and whether it is present.
	Get(key uint64) (uint64, bool)
	// Insert sets the value for key, replacing any existing value.
	Insert(key, value uint64)
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) bool
	// Scan visits entries with key in [lo, hi] in ascending key order,
	// stopping early if fn returns false. It returns the number of
	// entries visited.
	Scan(lo, hi uint64, fn func(key, value uint64) bool) int
	// Len returns the number of entries.
	Len() int
	// Name identifies the index implementation in reports.
	Name() string
}

// BulkLoader is implemented by indexes that can be built from sorted data
// much faster than by repeated inserts. keys must be strictly ascending and
// values parallel to keys.
type BulkLoader interface {
	// BulkLoad replaces the index contents from sorted key/value pairs.
	BulkLoad(keys, values []uint64)
}

// Trainable is implemented by learned indexes that have an explicit model
// (re)training step — the paper's Lesson 3 requires the benchmark to
// measure it as a first-class result.
type Trainable interface {
	// Retrain rebuilds the index's models from its current contents and
	// returns an abstract count of training work performed (model
	// updates), which the cost model converts into time and dollars.
	Retrain() int
	// ModelCount reports the number of fitted models currently in use.
	ModelCount() int
}

// Stats captures per-operation counters useful for explaining *why* an
// index is fast or slow on a distribution (e.g. last-mile search length for
// learned indexes, node splits for trees).
type Stats struct {
	Searches    uint64 // point lookups served
	Compares    uint64 // key comparisons performed
	ModelErrSum uint64 // total |predicted - actual| positions (learned only)
	Splits      uint64 // structural modifications (splits/retrains)
	// TrainWork counts online model-building work performed inside
	// regular operations — entries touched by automatic delta merges,
	// node rebuilds, and splits. The benchmark charges it as both
	// service time (the op that triggered it stalls) and training
	// overhead (the paper's online-learning cost accounting).
	TrainWork uint64
	// PageReads and PageWrites count 4 KiB pages moved between the
	// buffer pool and the backing file (disk-backed indexes only; zero
	// for in-memory structures). The cost model prices them separately
	// from CPU work — they are the dominant term for cold caches.
	PageReads  uint64
	PageWrites uint64
}

// Instrumented exposes internal counters.
type Instrumented interface {
	Stats() Stats
}
