package btree

import (
	"testing"

	"repro/internal/distgen"
	"repro/internal/index"
	"repro/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Ordered { return NewDefault() })
}

func TestSmallOrderConformance(t *testing.T) {
	// Order 4 forces deep trees and frequent splits.
	indextest.Run(t, func() index.Ordered { return New(4) })
}

func TestOrderClamped(t *testing.T) {
	tr := New(1)
	for k := uint64(0); k < 100; k++ {
		tr.Insert(k, k)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestMin(t *testing.T) {
	tr := NewDefault()
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	tr.Insert(50, 1)
	tr.Insert(10, 2)
	tr.Insert(90, 3)
	if m, ok := tr.Min(); !ok || m != 10 {
		t.Fatalf("Min = %d,%v", m, ok)
	}
	tr.Delete(10)
	if m, ok := tr.Min(); !ok || m != 50 {
		t.Fatalf("Min after delete = %d,%v", m, ok)
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	keys := distgen.UniqueKeys(distgen.NewZipfKeys(7, 1.1, 100000), 20000)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	bulk := NewDefault()
	bulk.BulkLoad(keys, vals)
	incr := NewDefault()
	for i, k := range keys {
		incr.Insert(k, vals[i])
	}
	if bulk.Len() != incr.Len() {
		t.Fatalf("len mismatch: %d vs %d", bulk.Len(), incr.Len())
	}
	for i, k := range keys {
		bv, bok := bulk.Get(k)
		iv, iok := incr.Get(k)
		if !bok || !iok || bv != iv || bv != vals[i] {
			t.Fatalf("mismatch at key %d", k)
		}
	}
	// Scans agree.
	var a, b []uint64
	bulk.Scan(keys[100], keys[10000], func(k, _ uint64) bool { a = append(a, k); return true })
	incr.Scan(keys[100], keys[10000], func(k, _ uint64) bool { b = append(b, k); return true })
	if len(a) != len(b) {
		t.Fatalf("scan lengths differ: %d vs %d", len(a), len(b))
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := NewDefault()
	tr.Insert(1, 1)
	tr.BulkLoad(nil, nil)
	if tr.Len() != 0 {
		t.Fatal("BulkLoad(nil) did not clear")
	}
	tr.Insert(5, 5)
	if v, ok := tr.Get(5); !ok || v != 5 {
		t.Fatal("tree unusable after empty BulkLoad")
	}
}

func TestBulkLoadPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDefault().BulkLoad([]uint64{1, 2}, []uint64{1})
}

func TestStatsProgress(t *testing.T) {
	tr := New(4)
	for k := uint64(0); k < 1000; k++ {
		tr.Insert(k, k)
	}
	for k := uint64(0); k < 1000; k++ {
		tr.Get(k)
	}
	st := tr.Stats()
	if st.Searches != 1000 {
		t.Fatalf("searches = %d", st.Searches)
	}
	if st.Splits == 0 {
		t.Fatal("no splits recorded for order-4 tree with 1000 keys")
	}
	if st.Compares == 0 {
		t.Fatal("no compares recorded")
	}
}

func TestDeleteDoesNotBreakScans(t *testing.T) {
	tr := New(4)
	for k := uint64(0); k < 2000; k++ {
		tr.Insert(k, k)
	}
	// Delete a whole leaf's worth in the middle.
	for k := uint64(500); k < 600; k++ {
		tr.Delete(k)
	}
	var got []uint64
	tr.Scan(450, 650, func(k, _ uint64) bool { got = append(got, k); return true })
	want := 201 - 100 // [450,650] minus deleted [500,599]
	if len(got) != want {
		t.Fatalf("scan after deletes visited %d, want %d", len(got), want)
	}
}
