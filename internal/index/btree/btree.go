// Package btree implements an in-memory B+ tree over uint64 keys and
// values. It is the traditional-index baseline of the benchmark: no model,
// no training phase, stable O(log n) performance regardless of the data
// distribution — exactly the profile learned indexes are compared against.
package btree

import (
	"repro/internal/index"
	"repro/internal/par"
	"repro/internal/search"
)

// parLoadMin is the key count at which BulkLoad fans the slab fill out
// over internal/par; below it a serial copy wins.
const parLoadMin = 1 << 20

// DefaultOrder is the fan-out used by New. 64 keys per node keeps inner
// nodes around one cache line's worth of separators while staying readable.
const DefaultOrder = 64

// Tree is a B+ tree. The zero value is not usable; call New. Not safe for
// concurrent use.
type Tree struct {
	order int
	root  node
	size  int
	stats index.Stats
}

type node interface {
	// insert returns a new right sibling and its separator key when the
	// node split, else nil.
	insert(t *Tree, key, value uint64) (node, uint64, bool)
	get(t *Tree, key uint64) (uint64, bool)
	// delete reports whether the key existed.
	delete(key uint64) bool
}

type inner struct {
	keys     []uint64 // separator keys; child i holds keys < keys[i]
	children []node
}

type leaf struct {
	keys   []uint64
	values []uint64
	next   *leaf
}

// New returns an empty B+ tree with the given order (max keys per leaf).
// Orders below 4 are raised to 4.
func New(order int) *Tree {
	if order < 4 {
		order = 4
	}
	return &Tree{order: order, root: &leaf{}}
}

// NewDefault returns an empty B+ tree with DefaultOrder.
func NewDefault() *Tree { return New(DefaultOrder) }

// Name implements index.Ordered.
func (t *Tree) Name() string { return "btree" }

// Len implements index.Ordered.
func (t *Tree) Len() int { return t.size }

// Stats implements index.Instrumented.
func (t *Tree) Stats() index.Stats { return t.stats }

// Get implements index.Ordered.
func (t *Tree) Get(key uint64) (uint64, bool) {
	t.stats.Searches++
	return t.root.get(t, key)
}

// Insert implements index.Ordered.
func (t *Tree) Insert(key, value uint64) {
	right, sep, added := t.root.insert(t, key, value)
	if added {
		t.size++
	}
	if right != nil {
		t.stats.Splits++
		t.root = &inner{keys: []uint64{sep}, children: []node{t.root, right}}
	}
}

// Delete implements index.Ordered. Deletion uses lazy rebalancing: keys are
// removed from leaves but underfull nodes are not merged. For benchmark
// workloads (delete share well below insert share) this bounds complexity
// without affecting asymptotics; Len stays exact.
func (t *Tree) Delete(key uint64) bool {
	if t.root.delete(key) {
		t.size--
		return true
	}
	return false
}

func (n *inner) childFor(t *Tree, key uint64) (int, node) {
	t.stats.Compares += uint64(bits(len(n.keys)))
	// Branchless upper bound: child i holds keys < keys[i], so the route
	// for key is the first separator strictly greater than it.
	i := search.UpperBound(n.keys, key)
	return i, n.children[i]
}

func bits(n int) int {
	b := 1
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func (n *inner) get(t *Tree, key uint64) (uint64, bool) {
	_, c := n.childFor(t, key)
	return c.get(t, key)
}

func (n *inner) insert(t *Tree, key, value uint64) (node, uint64, bool) {
	i, c := n.childFor(t, key)
	right, sep, added := c.insert(t, key, value)
	if right == nil {
		return nil, 0, added
	}
	t.stats.Splits++
	// Splice the new child in at position i.
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right

	if len(n.keys) <= t.order {
		return nil, 0, added
	}
	// Split this inner node: middle separator moves up.
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	r := &inner{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return r, upKey, added
}

func (n *inner) delete(key uint64) bool {
	return n.children[search.UpperBound(n.keys, key)].delete(key)
}

func (l *leaf) find(t *Tree, key uint64) (int, bool) {
	if t != nil {
		t.stats.Compares += uint64(bits(len(l.keys)))
	}
	i := search.LowerBound(l.keys, key)
	return i, i < len(l.keys) && l.keys[i] == key
}

func (l *leaf) get(t *Tree, key uint64) (uint64, bool) {
	i, ok := l.find(t, key)
	if !ok {
		return 0, false
	}
	return l.values[i], true
}

func (l *leaf) insert(t *Tree, key, value uint64) (node, uint64, bool) {
	i, ok := l.find(t, key)
	if ok {
		l.values[i] = value
		return nil, 0, false
	}
	l.keys = append(l.keys, 0)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.values = append(l.values, 0)
	copy(l.values[i+1:], l.values[i:])
	l.values[i] = value

	if len(l.keys) <= t.order {
		return nil, 0, true
	}
	mid := len(l.keys) / 2
	r := &leaf{
		keys:   append([]uint64(nil), l.keys[mid:]...),
		values: append([]uint64(nil), l.values[mid:]...),
		next:   l.next,
	}
	l.keys = l.keys[:mid]
	l.values = l.values[:mid]
	l.next = r
	return r, r.keys[0], true
}

func (l *leaf) delete(key uint64) bool {
	i, ok := l.find(nil, key)
	if !ok {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.values = append(l.values[:i], l.values[i+1:]...)
	return true
}

// leafFor descends to the leaf that would contain key.
func (t *Tree) leafFor(key uint64) *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *inner:
			_, n = v.childFor(t, key)
		}
	}
}

// Scan implements index.Ordered.
func (t *Tree) Scan(lo, hi uint64, fn func(key, value uint64) bool) int {
	if hi < lo {
		return 0
	}
	l := t.leafFor(lo)
	visited := 0
	for l != nil {
		i, _ := l.find(t, lo)
		for ; i < len(l.keys); i++ {
			if l.keys[i] > hi {
				return visited
			}
			visited++
			if !fn(l.keys[i], l.values[i]) {
				return visited
			}
		}
		l = l.next
		lo = 0 // after the first leaf, start at its beginning
	}
	return visited
}

// BulkLoad implements index.BulkLoader: builds the tree bottom-up from
// strictly ascending keys in O(n).
func (t *Tree) BulkLoad(keys, values []uint64) {
	if len(keys) != len(values) {
		panic("btree: BulkLoad length mismatch")
	}
	t.size = len(keys)
	t.stats = index.Stats{}
	if len(keys) == 0 {
		t.root = &leaf{}
		return
	}
	// Fill leaves to ~75% of order so early inserts don't cascade splits.
	per := t.order * 3 / 4
	if per < 2 {
		per = 2
	}
	// Cache-conscious arena layout: one slab of leaf structs and two flat
	// key/value slabs that every leaf slices into, instead of three small
	// allocations per leaf. Each leaf's slices are capped at its own span
	// (three-index slicing), so a post-load insert that grows a leaf
	// reallocates that leaf privately and can never scribble on a sibling.
	n := len(keys)
	nLeaves := (n + per - 1) / per
	leafArr := make([]leaf, nLeaves)
	keySlab := make([]uint64, n)
	valSlab := make([]uint64, n)
	if n >= parLoadMin {
		const chunk = 1 << 20
		nc := (n + chunk - 1) / chunk
		par.ForEach(nc, 0, func(c int) error {
			lo, hi := c*chunk, (c+1)*chunk
			if hi > n {
				hi = n
			}
			copy(keySlab[lo:hi], keys[lo:hi])
			copy(valSlab[lo:hi], values[lo:hi])
			return nil
		})
	} else {
		copy(keySlab, keys)
		copy(valSlab, values)
	}
	leaves := make([]node, nLeaves)
	seps := make([]uint64, 0, nLeaves) // first key of each leaf except the first
	for li := 0; li < nLeaves; li++ {
		start := li * per
		end := start + per
		if end > n {
			end = n
		}
		lf := &leafArr[li]
		lf.keys = keySlab[start:end:end]
		lf.values = valSlab[start:end:end]
		if li > 0 {
			leafArr[li-1].next = lf
			seps = append(seps, lf.keys[0])
		}
		leaves[li] = lf
	}
	t.root = buildLevel(leaves, seps, t.order)
}

// buildLevel assembles parents over children until a single root remains.
// Each level's inner nodes come from one arena slab and slice into the
// previous level's node and separator arrays (capacity-capped, so a later
// split's append reallocates privately instead of aliasing a sibling).
func buildLevel(children []node, seps []uint64, order int) node {
	for len(children) > 1 {
		per := order * 3 / 4
		if per < 2 {
			per = 2
		}
		nPar := (len(children) + per) / (per + 1)
		inners := make([]inner, nPar)
		parents := make([]node, 0, nPar)
		parentSeps := make([]uint64, 0, nPar)
		for i := 0; i < len(children); i += per + 1 {
			end := i + per + 1
			if end > len(children) {
				end = len(children)
			}
			in := &inners[len(parents)]
			in.children = children[i:end:end]
			if nk := end - i - 1; nk > 0 {
				in.keys = seps[i : i+nk : i+nk]
			}
			if i > 0 {
				parentSeps = append(parentSeps, seps[i-1])
			}
			parents = append(parents, in)
		}
		children, seps = parents, parentSeps
	}
	return children[0]
}

// Min returns the smallest key and true, or false when empty.
func (t *Tree) Min() (uint64, bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			if len(v.keys) == 0 {
				// Lazy deletes can empty a leaf; walk the chain.
				for v != nil && len(v.keys) == 0 {
					v = v.next
				}
				if v == nil {
					return 0, false
				}
			}
			return v.keys[0], true
		case *inner:
			n = v.children[0]
		}
	}
}

var _ index.Ordered = (*Tree)(nil)
var _ index.BulkLoader = (*Tree)(nil)
var _ index.Instrumented = (*Tree)(nil)
