// Package btree implements an in-memory B+ tree over uint64 keys and
// values. It is the traditional-index baseline of the benchmark: no model,
// no training phase, stable O(log n) performance regardless of the data
// distribution — exactly the profile learned indexes are compared against.
package btree

import (
	"sort"

	"repro/internal/index"
)

// DefaultOrder is the fan-out used by New. 64 keys per node keeps inner
// nodes around one cache line's worth of separators while staying readable.
const DefaultOrder = 64

// Tree is a B+ tree. The zero value is not usable; call New. Not safe for
// concurrent use.
type Tree struct {
	order int
	root  node
	size  int
	stats index.Stats
}

type node interface {
	// insert returns a new right sibling and its separator key when the
	// node split, else nil.
	insert(t *Tree, key, value uint64) (node, uint64, bool)
	get(t *Tree, key uint64) (uint64, bool)
	// delete reports whether the key existed.
	delete(key uint64) bool
}

type inner struct {
	keys     []uint64 // separator keys; child i holds keys < keys[i]
	children []node
}

type leaf struct {
	keys   []uint64
	values []uint64
	next   *leaf
}

// New returns an empty B+ tree with the given order (max keys per leaf).
// Orders below 4 are raised to 4.
func New(order int) *Tree {
	if order < 4 {
		order = 4
	}
	return &Tree{order: order, root: &leaf{}}
}

// NewDefault returns an empty B+ tree with DefaultOrder.
func NewDefault() *Tree { return New(DefaultOrder) }

// Name implements index.Ordered.
func (t *Tree) Name() string { return "btree" }

// Len implements index.Ordered.
func (t *Tree) Len() int { return t.size }

// Stats implements index.Instrumented.
func (t *Tree) Stats() index.Stats { return t.stats }

// Get implements index.Ordered.
func (t *Tree) Get(key uint64) (uint64, bool) {
	t.stats.Searches++
	return t.root.get(t, key)
}

// Insert implements index.Ordered.
func (t *Tree) Insert(key, value uint64) {
	right, sep, added := t.root.insert(t, key, value)
	if added {
		t.size++
	}
	if right != nil {
		t.stats.Splits++
		t.root = &inner{keys: []uint64{sep}, children: []node{t.root, right}}
	}
}

// Delete implements index.Ordered. Deletion uses lazy rebalancing: keys are
// removed from leaves but underfull nodes are not merged. For benchmark
// workloads (delete share well below insert share) this bounds complexity
// without affecting asymptotics; Len stays exact.
func (t *Tree) Delete(key uint64) bool {
	if t.root.delete(key) {
		t.size--
		return true
	}
	return false
}

func (n *inner) childFor(t *Tree, key uint64) (int, node) {
	t.stats.Compares += uint64(bits(len(n.keys)))
	i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	return i, n.children[i]
}

func bits(n int) int {
	b := 1
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func (n *inner) get(t *Tree, key uint64) (uint64, bool) {
	_, c := n.childFor(t, key)
	return c.get(t, key)
}

func (n *inner) insert(t *Tree, key, value uint64) (node, uint64, bool) {
	i, c := n.childFor(t, key)
	right, sep, added := c.insert(t, key, value)
	if right == nil {
		return nil, 0, added
	}
	t.stats.Splits++
	// Splice the new child in at position i.
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right

	if len(n.keys) <= t.order {
		return nil, 0, added
	}
	// Split this inner node: middle separator moves up.
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	r := &inner{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return r, upKey, added
}

func (n *inner) delete(key uint64) bool {
	i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	return n.children[i].delete(key)
}

func (l *leaf) find(t *Tree, key uint64) (int, bool) {
	if t != nil {
		t.stats.Compares += uint64(bits(len(l.keys)))
	}
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	return i, i < len(l.keys) && l.keys[i] == key
}

func (l *leaf) get(t *Tree, key uint64) (uint64, bool) {
	i, ok := l.find(t, key)
	if !ok {
		return 0, false
	}
	return l.values[i], true
}

func (l *leaf) insert(t *Tree, key, value uint64) (node, uint64, bool) {
	i, ok := l.find(t, key)
	if ok {
		l.values[i] = value
		return nil, 0, false
	}
	l.keys = append(l.keys, 0)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.values = append(l.values, 0)
	copy(l.values[i+1:], l.values[i:])
	l.values[i] = value

	if len(l.keys) <= t.order {
		return nil, 0, true
	}
	mid := len(l.keys) / 2
	r := &leaf{
		keys:   append([]uint64(nil), l.keys[mid:]...),
		values: append([]uint64(nil), l.values[mid:]...),
		next:   l.next,
	}
	l.keys = l.keys[:mid]
	l.values = l.values[:mid]
	l.next = r
	return r, r.keys[0], true
}

func (l *leaf) delete(key uint64) bool {
	i, ok := l.find(nil, key)
	if !ok {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.values = append(l.values[:i], l.values[i+1:]...)
	return true
}

// leafFor descends to the leaf that would contain key.
func (t *Tree) leafFor(key uint64) *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *inner:
			_, n = v.childFor(t, key)
		}
	}
}

// Scan implements index.Ordered.
func (t *Tree) Scan(lo, hi uint64, fn func(key, value uint64) bool) int {
	if hi < lo {
		return 0
	}
	l := t.leafFor(lo)
	visited := 0
	for l != nil {
		i, _ := l.find(t, lo)
		for ; i < len(l.keys); i++ {
			if l.keys[i] > hi {
				return visited
			}
			visited++
			if !fn(l.keys[i], l.values[i]) {
				return visited
			}
		}
		l = l.next
		lo = 0 // after the first leaf, start at its beginning
	}
	return visited
}

// BulkLoad implements index.BulkLoader: builds the tree bottom-up from
// strictly ascending keys in O(n).
func (t *Tree) BulkLoad(keys, values []uint64) {
	if len(keys) != len(values) {
		panic("btree: BulkLoad length mismatch")
	}
	t.size = len(keys)
	t.stats = index.Stats{}
	if len(keys) == 0 {
		t.root = &leaf{}
		return
	}
	// Fill leaves to ~75% of order so early inserts don't cascade splits.
	per := t.order * 3 / 4
	if per < 2 {
		per = 2
	}
	var leaves []node
	var seps []uint64 // first key of each leaf except the first
	var prev *leaf
	for i := 0; i < len(keys); i += per {
		end := i + per
		if end > len(keys) {
			end = len(keys)
		}
		lf := &leaf{
			keys:   append([]uint64(nil), keys[i:end]...),
			values: append([]uint64(nil), values[i:end]...),
		}
		if prev != nil {
			prev.next = lf
			seps = append(seps, lf.keys[0])
		}
		prev = lf
		leaves = append(leaves, lf)
	}
	t.root = buildLevel(leaves, seps, t.order)
}

// buildLevel assembles parents over children until a single root remains.
func buildLevel(children []node, seps []uint64, order int) node {
	for len(children) > 1 {
		per := order * 3 / 4
		if per < 2 {
			per = 2
		}
		var parents []node
		var parentSeps []uint64
		for i := 0; i < len(children); i += per + 1 {
			end := i + per + 1
			if end > len(children) {
				end = len(children)
			}
			in := &inner{
				children: append([]node(nil), children[i:end]...),
			}
			if end-i-1 > 0 {
				in.keys = append([]uint64(nil), seps[i:i+end-i-1]...)
			}
			if i > 0 {
				parentSeps = append(parentSeps, seps[i-1])
			}
			parents = append(parents, in)
		}
		children, seps = parents, parentSeps
	}
	return children[0]
}

// Min returns the smallest key and true, or false when empty.
func (t *Tree) Min() (uint64, bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			if len(v.keys) == 0 {
				// Lazy deletes can empty a leaf; walk the chain.
				for v != nil && len(v.keys) == 0 {
					v = v.next
				}
				if v == nil {
					return 0, false
				}
			}
			return v.keys[0], true
		case *inner:
			n = v.children[0]
		}
	}
}

var _ index.Ordered = (*Tree)(nil)
var _ index.BulkLoader = (*Tree)(nil)
var _ index.Instrumented = (*Tree)(nil)
