// Package diskbtree implements a disk-resident B+ tree over the pager's
// slotted pages: fixed 8-byte keys and values in leaf pages chained for
// range scans, separator/child cells in inner pages, and a buffer pool
// between the tree and the page file. It implements index.Ordered (plus
// BulkLoader and Instrumented), so core.NewIndexSUT adapts it into the
// benchmark unchanged — the only difference from the in-memory baselines
// is that its work is dominated by page I/O, which the pool counts and
// the cost model prices.
package diskbtree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/index"
	"repro/internal/pager"
)

const (
	leafCellSize  = 16 // key(8) + value(8)
	innerCellSize = 12 // separator key(8) + child page(4)

	// rootSlot and countSlot are the File root-pointer slots the tree
	// owns: the root page, and the entry count (persisted so Len survives
	// reopen without a full walk).
	rootSlot  = 0
	countSlot = 1

	// bulk-load fill targets: ~90% so post-load inserts do not split on
	// the first touch of every page.
	leafFillCells  = (pager.PageSize - pager.HeaderSize) * 9 / 10 / (leafCellSize + 4)
	innerFillCells = (pager.PageSize - pager.HeaderSize) * 9 / 10 / (innerCellSize + 4)
)

// Tree is a paged B+ tree. Not safe for concurrent use (the benchmark
// driver serializes per SUT). Pager failures (checksum mismatches, backend
// errors) panic: the Ordered interface has no error channel, and a failed
// page read under a benchmark is corruption, not a recoverable condition.
type Tree struct {
	pool  *pager.Pool
	count int
	st    index.Stats
}

// New opens (or initializes) a B+ tree on pool. A fresh file gets an empty
// leaf as root; an existing file resumes from its published root.
func New(pool *pager.Pool) *Tree {
	t := &Tree{pool: pool}
	f := pool.File()
	if f.Root(rootSlot) == pager.NilPage {
		pg, id, err := pool.Alloc(pager.TypeLeaf)
		if err != nil {
			panic(err)
		}
		_ = pg
		pool.Unpin(id, true)
		f.SetRoot(rootSlot, id)
		f.SetRoot(countSlot, 0)
	}
	t.count = int(f.Root(countSlot))
	return t
}

// Pool exposes the tree's buffer pool (for counters and checkpoints).
func (t *Tree) Pool() *pager.Pool { return t.pool }

// Name implements index.Ordered.
func (t *Tree) Name() string { return "disk-btree" }

// Len implements index.Ordered.
func (t *Tree) Len() int { return t.count }

// Stats implements index.Instrumented: tree-level counters plus the pool's
// backend I/O (reads/writes of 4 KiB pages).
func (t *Tree) Stats() index.Stats {
	s := t.st
	c := t.pool.Counters()
	s.PageReads = c.PagesRead
	s.PageWrites = c.PagesWritten
	return s
}

func (t *Tree) setCount(n int) {
	t.count = n
	t.pool.File().SetRoot(countSlot, pager.PageID(n))
}

func (t *Tree) get(id pager.PageID) *pager.Page {
	pg, err := t.pool.Get(id)
	if err != nil {
		panic(fmt.Sprintf("diskbtree: %v", err))
	}
	return pg
}

func cellKey(cell []byte) uint64 { return binary.LittleEndian.Uint64(cell) }

func leafCell(key, val uint64) []byte {
	var c [leafCellSize]byte
	binary.LittleEndian.PutUint64(c[0:], key)
	binary.LittleEndian.PutUint64(c[8:], val)
	return c[:]
}

func leafVal(cell []byte) uint64 { return binary.LittleEndian.Uint64(cell[8:]) }

func innerCell(key uint64, child pager.PageID) []byte {
	var c [innerCellSize]byte
	binary.LittleEndian.PutUint64(c[0:], key)
	binary.LittleEndian.PutUint32(c[8:], uint32(child))
	return c[:]
}

func innerChild(cell []byte) pager.PageID {
	return pager.PageID(binary.LittleEndian.Uint32(cell[8:]))
}

// findSlot binary-searches pg's cells (sorted by leading 8-byte key) and
// returns the first slot with key >= target, plus whether it is an exact
// match. Comparisons are charged to Stats.Compares.
func (t *Tree) findSlot(pg *pager.Page, key uint64) (int, bool) {
	lo, hi := 0, pg.NumCells()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t.st.Compares++
		k := cellKey(pg.Cell(mid))
		switch {
		case k < key:
			lo = mid + 1
		case k > key:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// childFor returns the child of inner page pg covering key: the child of
// the largest separator <= key, or the leftmost child (header Next) when
// key precedes every separator. slot is the separator's cell index, -1 for
// the leftmost child.
func (t *Tree) childFor(pg *pager.Page, key uint64) (child pager.PageID, slot int) {
	i, eq := t.findSlot(pg, key)
	if eq {
		return innerChild(pg.Cell(i)), i
	}
	if i == 0 {
		return pg.Next(), -1
	}
	return innerChild(pg.Cell(i - 1)), i - 1
}

// descend walks from the root to the leaf covering key. The leaf is
// returned pinned; inner pages along the way are unpinned before return.
// When path is non-nil, the page IDs from root to the leaf's parent are
// appended to it (for split propagation).
func (t *Tree) descend(key uint64, path *[]pager.PageID) (*pager.Page, pager.PageID) {
	id := t.pool.File().Root(rootSlot)
	for {
		pg := t.get(id)
		if pg.Type() == pager.TypeLeaf {
			return pg, id
		}
		child, _ := t.childFor(pg, key)
		t.pool.Unpin(id, false)
		if path != nil {
			*path = append(*path, id)
		}
		id = child
	}
}

// Get implements index.Ordered.
func (t *Tree) Get(key uint64) (uint64, bool) {
	t.st.Searches++
	pg, id := t.descend(key, nil)
	defer t.pool.Unpin(id, false)
	i, ok := t.findSlot(pg, key)
	if !ok {
		return 0, false
	}
	return leafVal(pg.Cell(i)), true
}

// Insert implements index.Ordered.
func (t *Tree) Insert(key, value uint64) {
	var path []pager.PageID
	pg, id := t.descend(key, &path)
	i, ok := t.findSlot(pg, key)
	if ok {
		pg.SetCell(i, leafCell(key, value))
		t.pool.Unpin(id, true)
		return
	}
	if pg.Insert(i, leafCell(key, value)) {
		t.pool.Unpin(id, true)
		t.setCount(t.count + 1)
		return
	}
	// Leaf full: split, then place the new cell on the correct side.
	sep, right, rightID := t.splitLeaf(pg)
	target := pg
	if key >= sep {
		target = right
	}
	j, _ := t.findSlot(target, key)
	if !target.Insert(j, leafCell(key, value)) {
		panic("diskbtree: cell does not fit in fresh split half")
	}
	t.pool.Unpin(id, true)
	t.pool.Unpin(rightID, true)
	t.setCount(t.count + 1)
	t.propagate(path, sep, rightID)
}

// splitLeaf moves the upper half of left (pinned, full) into a fresh right
// sibling and links the leaf chain. Both pages stay pinned (left by the
// caller's pin, right by Alloc); the caller unpins both. Returns the
// separator (right's first key), the pinned right page, and its ID.
func (t *Tree) splitLeaf(left *pager.Page) (uint64, *pager.Page, pager.PageID) {
	t.st.Splits++
	right, rightID, err := t.pool.Alloc(pager.TypeLeaf)
	if err != nil {
		panic(fmt.Sprintf("diskbtree: %v", err))
	}
	n := left.NumCells()
	mid := n / 2
	for i := mid; i < n; i++ {
		if !right.Insert(right.NumCells(), left.Cell(i)) {
			panic("diskbtree: split overflow")
		}
	}
	for i := n - 1; i >= mid; i-- {
		left.Delete(i)
	}
	right.SetNext(left.Next())
	left.SetNext(rightID)
	return cellKey(right.Cell(0)), right, rightID
}

// propagate inserts the separator/child pair produced by a split into the
// parent, splitting inner pages (and ultimately the root) as needed. path
// holds the page IDs from the root down to the split page's parent.
func (t *Tree) propagate(path []pager.PageID, sep uint64, rightID pager.PageID) {
	for level := len(path) - 1; level >= 0; level-- {
		id := path[level]
		pg := t.get(id)
		i, _ := t.findSlot(pg, sep)
		if pg.Insert(i, innerCell(sep, rightID)) {
			t.pool.Unpin(id, true)
			return
		}
		// Inner page full: split it. The median separator moves up.
		sep, rightID = t.splitInner(pg, i, sep, rightID)
		t.pool.Unpin(id, true)
	}
	// Split reached the root: grow the tree by one level.
	root, rootID, err := t.pool.Alloc(pager.TypeInner)
	if err != nil {
		panic(fmt.Sprintf("diskbtree: %v", err))
	}
	oldRoot := t.pool.File().Root(rootSlot)
	root.SetNext(oldRoot)
	if !root.Insert(0, innerCell(sep, rightID)) {
		panic("diskbtree: root cell does not fit")
	}
	t.pool.Unpin(rootID, true)
	t.pool.File().SetRoot(rootSlot, rootID)
}

// splitInner splits full inner page left, inserting (sep, rightID) at slot
// i as part of the split. Returns the separator and page promoted to the
// parent. The median key moves up (it is not duplicated into either half).
func (t *Tree) splitInner(left *pager.Page, i int, sep uint64, rightID pager.PageID) (uint64, pager.PageID) {
	t.st.Splits++
	// Materialize the full ordered cell list including the pending entry.
	n := left.NumCells()
	cells := make([][]byte, 0, n+1)
	for j := 0; j < n; j++ {
		c := make([]byte, innerCellSize)
		copy(c, left.Cell(j))
		cells = append(cells, c)
	}
	pending := make([]byte, innerCellSize)
	copy(pending, innerCell(sep, rightID))
	cells = append(cells, nil)
	copy(cells[i+1:], cells[i:])
	cells[i] = pending

	mid := len(cells) / 2
	upKey := cellKey(cells[mid])
	upChild := innerChild(cells[mid])

	newRight, newRightID, err := t.pool.Alloc(pager.TypeInner)
	if err != nil {
		panic(fmt.Sprintf("diskbtree: %v", err))
	}
	newRight.SetNext(upChild) // median's child becomes right's leftmost
	for _, c := range cells[mid+1:] {
		if !newRight.Insert(newRight.NumCells(), c) {
			panic("diskbtree: inner split overflow")
		}
	}
	// Rebuild left with the lower half.
	leftmost := left.Next()
	leftID := left.ID()
	left.Reset(leftID, pager.TypeInner)
	left.SetNext(leftmost)
	for j, c := range cells[:mid] {
		if !left.Insert(j, c) {
			panic("diskbtree: inner split overflow")
		}
	}
	t.pool.Unpin(newRightID, true)
	return upKey, newRightID
}

// Delete implements index.Ordered. Leaves are never merged or rebalanced
// (the classic lazy scheme: pages reclaim space on reuse, and the
// benchmark workloads delete far less than they insert).
func (t *Tree) Delete(key uint64) bool {
	pg, id := t.descend(key, nil)
	i, ok := t.findSlot(pg, key)
	if !ok {
		t.pool.Unpin(id, false)
		return false
	}
	pg.Delete(i)
	t.pool.Unpin(id, true)
	t.setCount(t.count - 1)
	return true
}

// Scan implements index.Ordered: leaf-chain traversal from the leaf
// covering lo.
func (t *Tree) Scan(lo, hi uint64, fn func(key, value uint64) bool) int {
	pg, id := t.descend(lo, nil)
	i, _ := t.findSlot(pg, lo)
	visited := 0
	for {
		for ; i < pg.NumCells(); i++ {
			cell := pg.Cell(i)
			k := cellKey(cell)
			if k > hi {
				t.pool.Unpin(id, false)
				return visited
			}
			visited++
			if !fn(k, leafVal(cell)) {
				t.pool.Unpin(id, false)
				return visited
			}
		}
		next := pg.Next()
		t.pool.Unpin(id, false)
		if next == pager.NilPage {
			return visited
		}
		id = next
		pg = t.get(id)
		i = 0
	}
}

// BulkLoad implements index.BulkLoader: builds packed leaves left to right
// at ~90% fill, then inner levels bottom-up. Pages of a previous tree are
// freed (quarantined until the next checkpoint).
func (t *Tree) BulkLoad(keys, values []uint64) {
	f := t.pool.File()
	if old := f.Root(rootSlot); old != pager.NilPage {
		for _, id := range t.Reachable() {
			if err := t.pool.Free(id); err != nil {
				panic(fmt.Sprintf("diskbtree: %v", err))
			}
		}
	}

	type entry struct {
		first uint64
		id    pager.PageID
	}
	var level []entry

	if len(keys) == 0 {
		pg, id, err := t.pool.Alloc(pager.TypeLeaf)
		if err != nil {
			panic(err)
		}
		_ = pg
		t.pool.Unpin(id, true)
		f.SetRoot(rootSlot, id)
		t.setCount(0)
		return
	}

	// Leaf level.
	var prev *pager.Page
	var prevID pager.PageID
	for off := 0; off < len(keys); {
		pg, id, err := t.pool.Alloc(pager.TypeLeaf)
		if err != nil {
			panic(fmt.Sprintf("diskbtree: %v", err))
		}
		for n := 0; n < leafFillCells && off < len(keys); n, off = n+1, off+1 {
			if !pg.Insert(n, leafCell(keys[off], values[off])) {
				break
			}
		}
		level = append(level, entry{first: cellKey(pg.Cell(0)), id: id})
		if prev != nil {
			prev.SetNext(id)
			t.pool.Unpin(prevID, true)
		}
		prev, prevID = pg, id
	}
	t.pool.Unpin(prevID, true)

	// Inner levels until one node remains.
	for len(level) > 1 {
		var up []entry
		for off := 0; off < len(level); {
			pg, id, err := t.pool.Alloc(pager.TypeInner)
			if err != nil {
				panic(fmt.Sprintf("diskbtree: %v", err))
			}
			first := level[off].first
			pg.SetNext(level[off].id) // leftmost child
			off++
			for n := 0; n < innerFillCells && off < len(level); n, off = n+1, off+1 {
				if !pg.Insert(n, innerCell(level[off].first, level[off].id)) {
					break
				}
			}
			t.pool.Unpin(id, true)
			up = append(up, entry{first: first, id: id})
		}
		level = up
	}
	f.SetRoot(rootSlot, level[0].id)
	t.setCount(len(keys))
}

// Reachable returns every page ID reachable from the root — the input to
// pager.Pool.CheckConsistency and RebuildFreeList after reopening a file.
func (t *Tree) Reachable() []pager.PageID {
	root := t.pool.File().Root(rootSlot)
	if root == pager.NilPage {
		return nil
	}
	var out []pager.PageID
	var walk func(id pager.PageID)
	walk = func(id pager.PageID) {
		out = append(out, id)
		pg := t.get(id)
		if pg.Type() == pager.TypeInner {
			children := make([]pager.PageID, 0, pg.NumCells()+1)
			children = append(children, pg.Next())
			for i := 0; i < pg.NumCells(); i++ {
				children = append(children, innerChild(pg.Cell(i)))
			}
			t.pool.Unpin(id, false)
			for _, c := range children {
				walk(c)
			}
			return
		}
		t.pool.Unpin(id, false)
	}
	walk(root)
	return out
}
