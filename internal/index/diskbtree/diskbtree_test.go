package diskbtree

import (
	"testing"

	"repro/internal/pager"
)

func newTree(t *testing.T, pages int) *Tree {
	t.Helper()
	f, err := pager.Create(pager.NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	return New(pager.NewPool(f, pager.PoolKnobs{Pages: pages}))
}

// keyAt generates a deterministic pseudo-random key (splitmix64).
func keyAt(i uint64) uint64 {
	z := i*0x9E3779B97F4A7C15 + 0x123456789
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func TestInsertGetAcrossSplits(t *testing.T) {
	tr := newTree(t, 32)
	const n = 5000
	ref := make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		k := keyAt(i)
		tr.Insert(k, i)
		ref[k] = i
	}
	if tr.Len() != len(ref) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(ref))
	}
	if tr.Stats().Splits == 0 {
		t.Fatal("5000 inserts caused no page splits")
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("get %d = (%d,%v), want %d", k, got, ok, v)
		}
	}
	if _, ok := tr.Get(12345); ok {
		t.Fatal("found a key never inserted")
	}
}

func TestInsertReplaces(t *testing.T) {
	tr := newTree(t, 16)
	tr.Insert(42, 1)
	tr.Insert(42, 2)
	if v, ok := tr.Get(42); !ok || v != 2 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 32)
	const n = 2000
	for i := uint64(0); i < n; i++ {
		tr.Insert(keyAt(i), i)
	}
	for i := uint64(0); i < n; i += 2 {
		if !tr.Delete(keyAt(i)) {
			t.Fatalf("delete %d reported absent", i)
		}
	}
	if tr.Delete(keyAt(0)) {
		t.Fatal("double delete reported present")
	}
	if tr.Len() != n/2 {
		t.Fatalf("len = %d, want %d", tr.Len(), n/2)
	}
	for i := uint64(0); i < n; i++ {
		_, ok := tr.Get(keyAt(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("get %d present=%v, want %v", i, ok, want)
		}
	}
}

func TestScanAcrossLeaves(t *testing.T) {
	tr := newTree(t, 32)
	const n = 3000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i*10, i)
	}
	// Full scan is ordered and complete.
	var last uint64
	first := true
	visited := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= last {
			t.Fatalf("scan out of order: %d after %d", k, last)
		}
		if v != k/10 {
			t.Fatalf("scan value %d for key %d", v, k)
		}
		last, first = k, false
		return true
	})
	if visited != n {
		t.Fatalf("visited %d, want %d", visited, n)
	}
	// Bounded scan.
	count := tr.Scan(1000, 1990, func(k, v uint64) bool { return true })
	if count != 100 {
		t.Fatalf("bounded scan visited %d, want 100", count)
	}
	// Early stop.
	count = tr.Scan(0, ^uint64(0), func(k, v uint64) bool { return k < 50 })
	if count != 6 {
		t.Fatalf("early-stop scan visited %d, want 6", count)
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	const n = 10000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)*7 + 3
		vals[i] = uint64(i)
	}
	tr := newTree(t, 64)
	tr.BulkLoad(keys, vals)
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	for i, k := range keys {
		if v, ok := tr.Get(k); !ok || v != vals[i] {
			t.Fatalf("get %d = (%d,%v)", k, v, ok)
		}
	}
	if _, ok := tr.Get(keys[0] + 1); ok {
		t.Fatal("found absent key after bulk load")
	}
	if got := tr.Scan(keys[0], keys[n-1], func(k, v uint64) bool { return true }); got != n {
		t.Fatalf("scan visited %d", got)
	}
	// Bulk load replaces a previous tree and frees its pages.
	tr.BulkLoad(keys[:100], vals[:100])
	if tr.Len() != 100 {
		t.Fatalf("len after reload = %d", tr.Len())
	}
	if err := tr.Pool().CheckConsistency(tr.Reachable()); err != nil {
		t.Fatal(err)
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	b := pager.NewMemBackend()
	f, err := pager.Create(b)
	if err != nil {
		t.Fatal(err)
	}
	pool := pager.NewPool(f, pager.PoolKnobs{Pages: 32})
	tr := New(pool)
	const n = 4000
	for i := uint64(0); i < n; i++ {
		tr.Insert(keyAt(i), i)
	}
	if err := pool.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	f2, err := pager.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	pool2 := pager.NewPool(f2, pager.PoolKnobs{Pages: 32})
	tr2 := New(pool2)
	if tr2.Len() != tr.Len() {
		t.Fatalf("reopened len = %d, want %d", tr2.Len(), tr.Len())
	}
	pool2.RebuildFreeList(tr2.Reachable())
	if err := pool2.CheckConsistency(tr2.Reachable()); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tr2.Get(keyAt(i)); !ok || v != i {
			t.Fatalf("reopened get %d = (%d,%v)", i, v, ok)
		}
	}
}

func TestTinyPoolStillCorrect(t *testing.T) {
	// A pool far smaller than the tree forces eviction on nearly every
	// access; correctness must not depend on residency.
	tr := newTree(t, 8)
	const n = 3000
	for i := uint64(0); i < n; i++ {
		tr.Insert(keyAt(i), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tr.Get(keyAt(i)); !ok || v != i {
			t.Fatalf("get %d = (%d,%v)", i, v, ok)
		}
	}
	st := tr.Stats()
	if st.PageReads == 0 || st.PageWrites == 0 {
		t.Fatalf("tiny pool produced no backend I/O: %+v", st)
	}
}

func TestStatsCounters(t *testing.T) {
	tr := newTree(t, 64)
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i, i)
	}
	before := tr.Stats()
	tr.Get(500)
	after := tr.Stats()
	if after.Searches != before.Searches+1 {
		t.Fatalf("searches %d -> %d", before.Searches, after.Searches)
	}
	if after.Compares <= before.Compares {
		t.Fatal("get charged no compares")
	}
}
