// Package rmi implements a two-stage Recursive Model Index (Kraska et al.,
// "The Case for Learned Index Structures", SIGMOD 2018): a root linear model
// dispatches each key to one of many second-stage linear models, each
// predicting the key's position in a sorted array within a tracked error
// bound; a final bounded binary search ("last-mile search") corrects the
// prediction.
//
// The RMI is the archetypal *static* learned index: it must be trained on
// sorted data, answers lookups extremely fast when the trained CDF still
// matches the data, and degrades — and eventually refuses inserts into its
// sorted array — when the distribution drifts. The benchmark exercises
// exactly this trade-off; inserts are absorbed into a sorted delta buffer
// that is merged on Retrain, modelling the common "RMI + delta" deployment.
package rmi

import (
	"repro/internal/index"
	"repro/internal/par"
	"repro/internal/search"
	"repro/internal/stats"
)

// DefaultStage2 is the number of second-stage models used by New.
const DefaultStage2 = 1024

// deltaMergeThreshold triggers an automatic retrain when the unsorted
// delta grows beyond this fraction of the main array.
const deltaMergeThreshold = 0.25

// parTrainMin is the main-array size at which Retrain fans the routing
// pass and per-leaf model fits out over internal/par. Below it, goroutine
// overhead beats the win; above it, leaf fits are embarrassingly parallel
// (each writes a disjoint ix.leaves slot), so results are byte-identical
// at any parallelism.
const parTrainMin = 1 << 15

// Index is a two-stage RMI with a delta buffer for updates. Not safe for
// concurrent use.
type Index struct {
	stage2N int

	keys   []uint64 // sorted main array
	values []uint64

	root   stats.Linear
	leaves []leafModel

	// delta absorbs inserts between retrains; kept sorted for O(log n)
	// lookup and ordered scans.
	deltaKeys []uint64
	deltaVals []uint64

	tombstones map[uint64]struct{} // deleted keys awaiting merge

	st      index.Stats
	trained bool

	// Retrain scratch, reused across retrains so the periodic merges of a
	// long drift run stop allocating: spareKeys/spareVals recycle the
	// replaced main arrays as the next merge's destination; the rest are
	// training work arrays.
	spareKeys []uint64
	spareVals []uint64
	leafOf    []int
	starts    []int
	xs2, ys2  []float64
}

type leafModel struct {
	model stats.Linear
	// err is the max |predicted - actual| observed while training; the
	// last-mile search is bounded to [pred-err, pred+err].
	err int
}

// New returns an empty RMI with the given number of stage-2 models.
func New(stage2 int) *Index {
	if stage2 < 1 {
		stage2 = 1
	}
	return &Index{stage2N: stage2, tombstones: make(map[uint64]struct{})}
}

// NewDefault returns an RMI with DefaultStage2 leaf models.
func NewDefault() *Index { return New(DefaultStage2) }

// Name implements index.Ordered.
func (ix *Index) Name() string { return "rmi" }

// Len implements index.Ordered.
func (ix *Index) Len() int {
	return len(ix.keys) + len(ix.deltaKeys) - len(ix.tombstones)
}

// Stats implements index.Instrumented.
func (ix *Index) Stats() index.Stats { return ix.st }

// ModelCount implements index.Trainable.
func (ix *Index) ModelCount() int {
	if !ix.trained {
		return 0
	}
	return 1 + len(ix.leaves)
}

// BulkLoad implements index.BulkLoader: installs the sorted data and trains.
func (ix *Index) BulkLoad(keys, values []uint64) {
	if len(keys) != len(values) {
		panic("rmi: BulkLoad length mismatch")
	}
	ix.keys = append(ix.keys[:0], keys...)
	ix.values = append(ix.values[:0], values...)
	ix.deltaKeys = ix.deltaKeys[:0]
	ix.deltaVals = ix.deltaVals[:0]
	ix.tombstones = make(map[uint64]struct{})
	ix.Retrain()
}

// Retrain implements index.Trainable: merges the delta buffer and
// tombstones into the main array and refits all models. The returned work
// count is the number of model fits plus entries touched, which the cost
// model converts to training time.
func (ix *Index) Retrain() int {
	work := 0
	// Merge delta + main, dropping tombstones. The destination reuses the
	// arrays retired by the previous merge, so steady-state retrains under
	// drift allocate nothing once capacities stabilize.
	if len(ix.deltaKeys) > 0 || len(ix.tombstones) > 0 {
		need := len(ix.keys) + len(ix.deltaKeys)
		merged, mergedV := ix.spareKeys[:0], ix.spareVals[:0]
		if cap(merged) < need || cap(mergedV) < need {
			merged = make([]uint64, 0, need)
			mergedV = make([]uint64, 0, need)
		}
		i, j := 0, 0
		for i < len(ix.keys) || j < len(ix.deltaKeys) {
			var k, v uint64
			takeDelta := i >= len(ix.keys) ||
				(j < len(ix.deltaKeys) && ix.deltaKeys[j] <= ix.keys[i])
			if takeDelta {
				k, v = ix.deltaKeys[j], ix.deltaVals[j]
				// Delta overrides main on equal keys.
				if i < len(ix.keys) && ix.keys[i] == k {
					i++
				}
				j++
			} else {
				k, v = ix.keys[i], ix.values[i]
				i++
			}
			if _, dead := ix.tombstones[k]; dead {
				continue
			}
			merged = append(merged, k)
			mergedV = append(mergedV, v)
		}
		work += len(merged)
		ix.spareKeys, ix.spareVals = ix.keys[:0], ix.values[:0]
		ix.keys, ix.values = merged, mergedV
		ix.deltaKeys = ix.deltaKeys[:0]
		ix.deltaVals = ix.deltaVals[:0]
		ix.tombstones = make(map[uint64]struct{})
	}

	n := len(ix.keys)
	if cap(ix.leaves) >= ix.stage2N {
		ix.leaves = ix.leaves[:ix.stage2N]
	} else {
		ix.leaves = make([]leafModel, ix.stage2N)
	}
	if n == 0 {
		for i := range ix.leaves {
			ix.leaves[i] = leafModel{}
		}
		ix.root = stats.Linear{}
		ix.trained = true
		return work + 1
	}

	// Stage 1: map key -> leaf id over the full range. sampleCap pins the
	// sampling stride to the same value the buffers' capacity implied when
	// they were allocated fresh, so reuse cannot change the fitted model.
	sampleCap := minInt(n, 4096)
	if cap(ix.xs2) < sampleCap {
		ix.xs2 = make([]float64, 0, sampleCap)
		ix.ys2 = make([]float64, 0, sampleCap)
	}
	xs2, ys2 := ix.xs2[:0], ix.ys2[:0]
	stride := n / sampleCap
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < n; i += stride {
		xs2 = append(xs2, float64(ix.keys[i]))
		ys2 = append(ys2, float64(i)/float64(n)*float64(ix.stage2N))
	}
	ix.root = stats.FitLinear(xs2, ys2)
	work++

	// Partition keys among leaves by the root model's prediction, then
	// fit each leaf on its own span. Using the root's own routing for
	// training guarantees lookup-time routing sees the same partition.
	if cap(ix.starts) >= ix.stage2N+1 {
		ix.starts = ix.starts[:ix.stage2N+1]
	} else {
		ix.starts = make([]int, ix.stage2N+1)
	}
	starts := ix.starts
	for i := range starts {
		starts[i] = -1
	}
	if cap(ix.leafOf) >= n {
		ix.leafOf = ix.leafOf[:n]
	} else {
		ix.leafOf = make([]int, n)
	}
	leafOf := ix.leafOf
	// The routing pass is pure per element (the root model is fixed), so
	// large arrays fan out in chunks; each chunk writes disjoint leafOf
	// slots and the starts derivation below is a sequential scan.
	if n >= parTrainMin {
		const chunk = 1 << 15
		nc := (n + chunk - 1) / chunk
		par.ForEach(nc, 0, func(c int) error {
			lo, hi := c*chunk, (c+1)*chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				leafOf[i] = ix.root.PredictClamped(float64(ix.keys[i]), ix.stage2N)
			}
			return nil
		})
	} else {
		for i := 0; i < n; i++ {
			leafOf[i] = ix.root.PredictClamped(float64(ix.keys[i]), ix.stage2N)
		}
	}
	for i := 0; i < n; i++ {
		if l := leafOf[i]; starts[l] == -1 {
			starts[l] = i
		}
	}
	starts[ix.stage2N] = n
	// Back-fill empty leaves' start with the next non-empty start.
	for i := ix.stage2N - 1; i >= 0; i-- {
		if starts[i] == -1 {
			starts[i] = starts[i+1]
		}
	}

	// Stage 2: fit each leaf on its own span. Fits are independent — each
	// writes only its ix.leaves slot — so they fan out per leaf; the work
	// tally (one unit per non-empty leaf, as the serial loop counted) is
	// recomputed deterministically afterwards.
	fit := func(l int) {
		lo, hi := starts[l], starts[l+1]
		if lo >= hi {
			// Empty leaf: constant model pointing at the boundary.
			ix.leaves[l] = leafModel{model: stats.Linear{Intercept: float64(lo)}, err: 0}
			return
		}
		seg := ix.keys[lo:hi]
		m := fitSegment(seg, lo)
		maxErr := 0
		for i, k := range seg {
			pred := m.PredictClamped(float64(k), n)
			diff := pred - (lo + i)
			if diff < 0 {
				diff = -diff
			}
			if diff > maxErr {
				maxErr = diff
			}
		}
		ix.leaves[l] = leafModel{model: m, err: maxErr}
	}
	if n >= parTrainMin && ix.stage2N > 1 {
		par.ForEach(ix.stage2N, 0, func(l int) error {
			fit(l)
			return nil
		})
	} else {
		for l := 0; l < ix.stage2N; l++ {
			fit(l)
		}
	}
	for l := 0; l < ix.stage2N; l++ {
		if starts[l] < starts[l+1] {
			work++
		}
	}
	ix.trained = true
	return work
}

func fitSegment(keys []uint64, offset int) stats.Linear {
	if len(keys) == 1 {
		return stats.Linear{Intercept: float64(offset)}
	}
	m := stats.FitLinearKeys(keys)
	m.Intercept += float64(offset)
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// searchMain locates key in the main array via the model, returning its
// index and presence.
func (ix *Index) searchMain(key uint64) (int, bool) {
	n := len(ix.keys)
	if n == 0 || !ix.trained {
		return 0, false
	}
	l := ix.root.PredictClamped(float64(key), ix.stage2N)
	lm := ix.leaves[l]
	pred := lm.model.PredictClamped(float64(key), n)
	lo := pred - lm.err
	hi := pred + lm.err + 1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	// Track model error for diagnostics.
	span := hi - lo
	ix.st.Compares += uint64(bits(span))
	// Last-mile search: branchless lower bound over the error window.
	// Index-exact equivalent of the sort.Search formulation, so
	// virtual-clock outputs are unchanged. search.InterpolateLowerBound
	// was measured here too and lost at every window size this hardware
	// produces (its 128-bit divisions cost more than the probes they save
	// — see BenchmarkBoundedWindow); it stays available for wider windows.
	i := search.LowerBoundRange(ix.keys, lo, hi, key)
	if i < n && ix.keys[i] == key {
		d := i - pred
		if d < 0 {
			d = -d
		}
		ix.st.ModelErrSum += uint64(d)
		return i, true
	}
	return i, false
}

func bits(n int) int {
	b := 1
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Get implements index.Ordered.
func (ix *Index) Get(key uint64) (uint64, bool) {
	ix.st.Searches++
	if _, dead := ix.tombstones[key]; dead {
		return 0, false
	}
	// Delta first: it overrides the main array.
	if j := search.LowerBound(ix.deltaKeys, key); j < len(ix.deltaKeys) && ix.deltaKeys[j] == key {
		return ix.deltaVals[j], true
	}
	if i, ok := ix.searchMain(key); ok {
		return ix.values[i], true
	}
	return 0, false
}

// Insert implements index.Ordered. New keys go to the sorted delta buffer;
// once the delta exceeds deltaMergeThreshold of the main array the index
// retrains automatically (counted in Stats().Splits so the benchmark can
// attribute the latency spike).
func (ix *Index) Insert(key, value uint64) {
	delete(ix.tombstones, key)
	// Update-in-place if the key is in the main array.
	if i, ok := ix.searchMain(key); ok {
		ix.values[i] = value
		return
	}
	j := search.LowerBound(ix.deltaKeys, key)
	if j < len(ix.deltaKeys) && ix.deltaKeys[j] == key {
		ix.deltaVals[j] = value
		return
	}
	ix.deltaKeys = append(ix.deltaKeys, 0)
	copy(ix.deltaKeys[j+1:], ix.deltaKeys[j:])
	ix.deltaKeys[j] = key
	ix.deltaVals = append(ix.deltaVals, 0)
	copy(ix.deltaVals[j+1:], ix.deltaVals[j:])
	ix.deltaVals[j] = value
	// Charge the memmove that keeps the delta sorted (~16 bytes per
	// shifted entry, one work unit per cache line): the sorted-array
	// delta is cheap while small and increasingly expensive as drift
	// fills it — a real cost of the static-learned-index design.
	ix.st.Compares += uint64((len(ix.deltaKeys) - j) / 4)

	if len(ix.keys) > 0 && float64(len(ix.deltaKeys)) > deltaMergeThreshold*float64(len(ix.keys)) {
		ix.st.Splits++
		ix.st.TrainWork += uint64(ix.Retrain())
	}
}

// Delete implements index.Ordered via tombstones resolved at Retrain.
func (ix *Index) Delete(key uint64) bool {
	if _, dead := ix.tombstones[key]; dead {
		return false
	}
	if j := search.LowerBound(ix.deltaKeys, key); j < len(ix.deltaKeys) && ix.deltaKeys[j] == key {
		ix.deltaKeys = append(ix.deltaKeys[:j], ix.deltaKeys[j+1:]...)
		ix.deltaVals = append(ix.deltaVals[:j], ix.deltaVals[j+1:]...)
		return true
	}
	if _, ok := ix.searchMain(key); ok {
		ix.tombstones[key] = struct{}{}
		return true
	}
	return false
}

// Scan implements index.Ordered: a sorted merge of the main array and the
// delta buffer, skipping tombstones.
func (ix *Index) Scan(lo, hi uint64, fn func(key, value uint64) bool) int {
	if hi < lo {
		return 0
	}
	i, _ := ix.searchMain(lo)
	if !ix.trained {
		i = search.LowerBound(ix.keys, lo)
	}
	// The trained error bound holds for present keys; for an absent scan
	// bound the insertion point can sit just outside the searched window.
	// Fix up locally (cost bounded by the true model error).
	for i > 0 && ix.keys[i-1] >= lo {
		i--
	}
	for i < len(ix.keys) && ix.keys[i] < lo {
		i++
	}
	j := search.LowerBound(ix.deltaKeys, lo)
	visited := 0
	for i < len(ix.keys) || j < len(ix.deltaKeys) {
		var k, v uint64
		fromDelta := i >= len(ix.keys) ||
			(j < len(ix.deltaKeys) && ix.deltaKeys[j] <= ix.keys[i])
		if fromDelta {
			k, v = ix.deltaKeys[j], ix.deltaVals[j]
			if i < len(ix.keys) && ix.keys[i] == k {
				i++ // delta overrides main
			}
			j++
		} else {
			k, v = ix.keys[i], ix.values[i]
			i++
		}
		if k > hi {
			break
		}
		if _, dead := ix.tombstones[k]; dead {
			continue
		}
		visited++
		if !fn(k, v) {
			break
		}
	}
	return visited
}

// DeltaLen reports the current delta-buffer size (for tests and reports).
func (ix *Index) DeltaLen() int { return len(ix.deltaKeys) }

// MaxLeafError returns the largest trained last-mile error bound across
// leaves — the distribution-difficulty signal Figure 1a explains.
func (ix *Index) MaxLeafError() int {
	m := 0
	for _, l := range ix.leaves {
		if l.err > m {
			m = l.err
		}
	}
	return m
}

var _ index.Ordered = (*Index)(nil)
var _ index.BulkLoader = (*Index)(nil)
var _ index.Trainable = (*Index)(nil)
var _ index.Instrumented = (*Index)(nil)
