package rmi

import (
	"testing"

	"repro/internal/distgen"
	"repro/internal/index"
	"repro/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Ordered { return NewDefault() })
}

func TestConformanceFewModels(t *testing.T) {
	indextest.Run(t, func() index.Ordered { return New(4) })
}

func TestTrainOnSequentialTightErrors(t *testing.T) {
	keys := distgen.UniqueKeys(distgen.NewSequential(1, 0, 8), 100000)
	vals := make([]uint64, len(keys))
	ix := New(256)
	ix.BulkLoad(keys, vals)
	if e := ix.MaxLeafError(); e > 64 {
		t.Fatalf("sequential data should train tightly, max err = %d", e)
	}
	if ix.ModelCount() != 257 {
		t.Fatalf("model count = %d", ix.ModelCount())
	}
}

func TestHardDistributionStillCorrect(t *testing.T) {
	keys := distgen.UniqueKeys(distgen.NewClustered(2, 50, 1e6), 50000)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	ix := NewDefault()
	ix.BulkLoad(keys, vals)
	for i, k := range keys {
		if v, ok := ix.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestDeltaAutoMerge(t *testing.T) {
	keys := distgen.UniqueKeys(distgen.NewUniform(3, 0, 1<<40), 10000)
	vals := make([]uint64, len(keys))
	ix := NewDefault()
	ix.BulkLoad(keys, vals)
	// Insert until the delta threshold (25%) forces a merge.
	inserted := 0
	for k := uint64(1); inserted < 4000; k += 7919 {
		if _, ok := ix.Get(k); !ok {
			ix.Insert(k, k)
			inserted++
		}
	}
	if ix.DeltaLen() >= 4000 {
		t.Fatalf("delta never merged: %d", ix.DeltaLen())
	}
	if ix.Stats().Splits == 0 {
		t.Fatal("auto-retrain not recorded in Splits")
	}
}

func TestRetrainReturnsWork(t *testing.T) {
	ix := NewDefault()
	keys := distgen.UniqueKeys(distgen.NewUniform(4, 0, 1<<40), 5000)
	ix.BulkLoad(keys, make([]uint64, len(keys)))
	for k := uint64(3); k < 100; k += 2 {
		ix.Insert(k, k)
	}
	if w := ix.Retrain(); w <= 0 {
		t.Fatalf("Retrain work = %d", w)
	}
	if ix.DeltaLen() != 0 {
		t.Fatal("Retrain left delta entries")
	}
}

func TestUntrainedIndexUsable(t *testing.T) {
	ix := NewDefault()
	ix.Insert(5, 50)
	ix.Insert(1, 10)
	if v, ok := ix.Get(5); !ok || v != 50 {
		t.Fatal("delta-only Get failed")
	}
	var got []uint64
	ix.Scan(0, 10, func(k, _ uint64) bool { got = append(got, k); return true })
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("delta-only scan = %v", got)
	}
	if ix.ModelCount() != 0 {
		t.Fatalf("untrained ModelCount = %d", ix.ModelCount())
	}
}

func TestTombstoneSurvivesRetrain(t *testing.T) {
	ix := NewDefault()
	keys := []uint64{10, 20, 30, 40, 50}
	ix.BulkLoad(keys, []uint64{1, 2, 3, 4, 5})
	ix.Delete(30)
	ix.Retrain()
	if _, ok := ix.Get(30); ok {
		t.Fatal("tombstoned key resurrected by Retrain")
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestModelErrAccumulates(t *testing.T) {
	// On clustered data the learned model must report nonzero error work.
	keys := distgen.UniqueKeys(distgen.NewClustered(5, 20, 1e5), 20000)
	ix := New(64)
	ix.BulkLoad(keys, make([]uint64, len(keys)))
	for _, k := range keys[:5000] {
		ix.Get(k)
	}
	st := ix.Stats()
	if st.Searches != 5000 {
		t.Fatalf("searches = %d", st.Searches)
	}
	if st.Compares == 0 {
		t.Fatal("no compare work recorded")
	}
}

func TestLookupFasterOnEasyData(t *testing.T) {
	// The whole point of an RMI: last-mile work on learnable (sequential)
	// data must be much lower than on adversarial (clustered) data.
	easyKeys := distgen.UniqueKeys(distgen.NewSequential(6, 0, 4), 50000)
	hardKeys := distgen.UniqueKeys(distgen.NewClustered(7, 30, 1e4), 50000)

	probe := func(keys []uint64) uint64 {
		ix := New(512)
		ix.BulkLoad(keys, make([]uint64, len(keys)))
		for _, k := range keys {
			ix.Get(k)
		}
		return ix.Stats().Compares
	}
	easy, hard := probe(easyKeys), probe(hardKeys)
	if easy >= hard {
		t.Fatalf("easy data compares (%d) not below hard data (%d)", easy, hard)
	}
}
