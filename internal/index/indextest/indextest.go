// Package indextest provides a conformance suite run against every
// index.Ordered implementation, checking each against a reference model
// (Go map + sorted slice) under randomized operation sequences. Keeping the
// suite in one place guarantees the traditional and learned indexes are
// held to identical semantics before the benchmark compares their
// performance.
package indextest

import (
	"sort"
	"testing"

	"repro/internal/distgen"
	"repro/internal/index"
	"repro/internal/stats"
)

// Factory builds a fresh empty index under test.
type Factory func() index.Ordered

// Run executes the full conformance suite.
func Run(t *testing.T, newIndex Factory) {
	t.Helper()
	t.Run("EmptyBehaviour", func(t *testing.T) { testEmpty(t, newIndex()) })
	t.Run("InsertGet", func(t *testing.T) { testInsertGet(t, newIndex()) })
	t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, newIndex()) })
	t.Run("Delete", func(t *testing.T) { testDelete(t, newIndex()) })
	t.Run("ScanOrder", func(t *testing.T) { testScanOrder(t, newIndex()) })
	t.Run("ScanEarlyStop", func(t *testing.T) { testScanEarlyStop(t, newIndex()) })
	t.Run("ScanEmptyRange", func(t *testing.T) { testScanEmptyRange(t, newIndex()) })
	t.Run("BulkLoad", func(t *testing.T) { testBulkLoad(t, newIndex()) })
	t.Run("RandomOpsVsModel", func(t *testing.T) { testRandomOps(t, newIndex, 1) })
	t.Run("RandomOpsVsModelSkewed", func(t *testing.T) { testRandomOps(t, newIndex, 2) })
	t.Run("SequentialInsertHeavy", func(t *testing.T) { testSequentialHeavy(t, newIndex()) })
	t.Run("ExtremeKeys", func(t *testing.T) { testExtremeKeys(t, newIndex()) })
}

func testEmpty(t *testing.T, ix index.Ordered) {
	if ix.Len() != 0 {
		t.Fatalf("empty Len = %d", ix.Len())
	}
	if _, ok := ix.Get(42); ok {
		t.Fatal("Get on empty index")
	}
	if ix.Delete(42) {
		t.Fatal("Delete on empty index")
	}
	if n := ix.Scan(0, ^uint64(0), func(_, _ uint64) bool { return true }); n != 0 {
		t.Fatalf("Scan on empty visited %d", n)
	}
	if ix.Name() == "" {
		t.Fatal("empty Name")
	}
}

func testInsertGet(t *testing.T, ix index.Ordered) {
	keys := distgen.UniqueKeys(distgen.NewUniform(1, 0, distgen.KeyDomain), 2000)
	for i, k := range keys {
		ix.Insert(k, uint64(i))
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(keys))
	}
	for i, k := range keys {
		v, ok := ix.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d,%v want %d", k, v, ok, i)
		}
	}
	// Absent keys between present ones.
	for _, k := range keys[:100] {
		if _, ok := ix.Get(k + 1); ok {
			found := false
			for _, k2 := range keys {
				if k2 == k+1 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("Get(%d) found absent key", k+1)
			}
		}
	}
}

func testOverwrite(t *testing.T, ix index.Ordered) {
	ix.Insert(10, 1)
	ix.Insert(10, 2)
	if ix.Len() != 1 {
		t.Fatalf("overwrite changed Len to %d", ix.Len())
	}
	if v, _ := ix.Get(10); v != 2 {
		t.Fatalf("overwrite lost: %d", v)
	}
}

func testDelete(t *testing.T, ix index.Ordered) {
	for k := uint64(0); k < 100; k++ {
		ix.Insert(k*10, k)
	}
	if !ix.Delete(500) {
		t.Fatal("Delete existing returned false")
	}
	if ix.Delete(500) {
		t.Fatal("double Delete returned true")
	}
	if _, ok := ix.Get(500); ok {
		t.Fatal("deleted key still found")
	}
	if ix.Len() != 99 {
		t.Fatalf("Len after delete = %d", ix.Len())
	}
	// Reinsert after delete.
	ix.Insert(500, 777)
	if v, ok := ix.Get(500); !ok || v != 777 {
		t.Fatal("reinsert after delete failed")
	}
}

func testScanOrder(t *testing.T, ix index.Ordered) {
	keys := distgen.UniqueKeys(distgen.NewClustered(3, 5, 1e9), 3000)
	for _, k := range keys {
		ix.Insert(k, k*2)
	}
	lo, hi := keys[500], keys[2500]
	var got []uint64
	ix.Scan(lo, hi, func(k, v uint64) bool {
		if v != k*2 {
			t.Fatalf("scan value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	want := keys[500:2501]
	if len(got) != len(want) {
		t.Fatalf("scan visited %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan order mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func testScanEarlyStop(t *testing.T, ix index.Ordered) {
	for k := uint64(1); k <= 100; k++ {
		ix.Insert(k, k)
	}
	n := 0
	visited := ix.Scan(1, 100, func(_, _ uint64) bool {
		n++
		return n < 10
	})
	if n != 10 || visited != 10 {
		t.Fatalf("early stop visited %d/%d", n, visited)
	}
}

func testScanEmptyRange(t *testing.T, ix index.Ordered) {
	ix.Insert(100, 1)
	if n := ix.Scan(200, 100, func(_, _ uint64) bool { return true }); n != 0 {
		t.Fatalf("inverted range visited %d", n)
	}
	if n := ix.Scan(101, 99999, func(_, _ uint64) bool { return true }); n != 0 {
		t.Fatalf("empty range visited %d", n)
	}
}

func testBulkLoad(t *testing.T, ix index.Ordered) {
	bl, ok := ix.(index.BulkLoader)
	if !ok {
		t.Skip("index does not implement BulkLoader")
	}
	keys := distgen.UniqueKeys(distgen.NewSegmented(4, 8), 5000)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i) + 1
	}
	bl.BulkLoad(keys, vals)
	if ix.Len() != len(keys) {
		t.Fatalf("Len after BulkLoad = %d", ix.Len())
	}
	for i, k := range keys {
		if v, ok := ix.Get(k); !ok || v != vals[i] {
			t.Fatalf("Get(%d) after BulkLoad = %d,%v", k, v, ok)
		}
	}
	// Mutations after bulk load must work.
	ix.Insert(keys[0]+1, 424242)
	if v, ok := ix.Get(keys[0] + 1); !ok || v != 424242 {
		t.Fatal("insert after BulkLoad failed")
	}
}

// testRandomOps drives the index with a random mixed workload and checks
// every result against a map-based reference model.
func testRandomOps(t *testing.T, newIndex Factory, seed uint64) {
	ix := newIndex()
	rng := stats.NewRNG(seed)
	ref := make(map[uint64]uint64)
	var keyPool []uint64

	const ops = 20000
	for op := 0; op < ops; op++ {
		r := rng.Float64()
		switch {
		case r < 0.5: // insert
			var k uint64
			if seed == 2 && len(keyPool) > 0 && rng.Float64() < 0.3 {
				// Skewed: revisit existing keys for overwrites.
				k = keyPool[rng.Intn(len(keyPool))]
			} else {
				k = rng.Uint64() % (1 << 40)
			}
			v := rng.Uint64()
			if _, exists := ref[k]; !exists {
				keyPool = append(keyPool, k)
			}
			ref[k] = v
			ix.Insert(k, v)
		case r < 0.75: // get
			var k uint64
			if len(keyPool) > 0 && rng.Float64() < 0.7 {
				k = keyPool[rng.Intn(len(keyPool))]
			} else {
				k = rng.Uint64() % (1 << 40)
			}
			wantV, wantOK := ref[k]
			gotV, gotOK := ix.Get(k)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)",
					op, k, gotV, gotOK, wantV, wantOK)
			}
		case r < 0.85: // delete
			if len(keyPool) == 0 {
				continue
			}
			k := keyPool[rng.Intn(len(keyPool))]
			_, wantOK := ref[k]
			gotOK := ix.Delete(k)
			if gotOK != wantOK {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, gotOK, wantOK)
			}
			delete(ref, k)
		default: // scan
			if len(keyPool) < 2 {
				continue
			}
			a := keyPool[rng.Intn(len(keyPool))]
			b := a + uint64(rng.Intn(1<<30))
			var got []uint64
			ix.Scan(a, b, func(k, v uint64) bool {
				got = append(got, k)
				if ref[k] != v {
					t.Fatalf("op %d: scan value mismatch at %d", op, k)
				}
				return true
			})
			var want []uint64
			for k := range ref {
				if k >= a && k <= b {
					want = append(want, k)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("op %d: scan[%d,%d] visited %d, want %d",
					op, a, b, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d: scan key %d = %d, want %d", op, i, got[i], want[i])
				}
			}
		}
		if ix.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, model has %d", op, ix.Len(), len(ref))
		}
	}
}

func testSequentialHeavy(t *testing.T, ix index.Ordered) {
	// Append-mostly pattern (auto-increment IDs) — stresses learned
	// indexes' right-edge behaviour and tree splits.
	for k := uint64(1); k <= 30000; k++ {
		ix.Insert(k, k)
	}
	if ix.Len() != 30000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for _, k := range []uint64{1, 15000, 30000} {
		if v, ok := ix.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) failed after sequential load", k)
		}
	}
	n := ix.Scan(10000, 10099, func(_, _ uint64) bool { return true })
	if n != 100 {
		t.Fatalf("scan visited %d, want 100", n)
	}
}

func testExtremeKeys(t *testing.T, ix index.Ordered) {
	keys := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 1 << 63, 1<<63 - 1}
	for i, k := range keys {
		ix.Insert(k, uint64(i))
	}
	for i, k := range keys {
		if v, ok := ix.Get(k); !ok || v != uint64(i) {
			t.Fatalf("extreme key %d lost", k)
		}
	}
	count := ix.Scan(0, ^uint64(0), func(_, _ uint64) bool { return true })
	if count != len(keys) {
		t.Fatalf("full scan over extremes visited %d", count)
	}
}
