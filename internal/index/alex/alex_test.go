package alex

import (
	"testing"

	"repro/internal/distgen"
	"repro/internal/index"
	"repro/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Ordered { return New() })
}

func TestNodeSplitting(t *testing.T) {
	ix := New()
	for k := uint64(0); k < 50000; k++ {
		ix.Insert(k, k)
	}
	if ix.NodeCount() < 2 {
		t.Fatalf("no splits after 50k inserts: %d nodes", ix.NodeCount())
	}
	if ix.Retrains() == 0 {
		t.Fatal("no retrain work recorded")
	}
	for _, k := range []uint64{0, 25000, 49999} {
		if v, ok := ix.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) failed after splits", k)
		}
	}
}

func TestRoutingInvariant(t *testing.T) {
	ix := New()
	keys := distgen.NewZipfKeys(1, 1.1, 100000).Keys(60000)
	for _, k := range keys {
		ix.Insert(k, k)
	}
	// lows must be ascending and every node's occupied keys must fall in
	// [lows[i], lows[i+1]).
	for i := 1; i < len(ix.lows); i++ {
		if ix.lows[i] <= ix.lows[i-1] {
			t.Fatalf("lows not ascending at %d", i)
		}
	}
	for i, n := range ix.nodes {
		lo := ix.lows[i]
		hi := ^uint64(0)
		if i+1 < len(ix.lows) {
			hi = ix.lows[i+1] - 1
		}
		for s := range n.keys {
			if !n.occ.test(s) {
				continue
			}
			if n.keys[s] < lo || n.keys[s] > hi {
				t.Fatalf("node %d holds key %d outside [%d,%d]", i, n.keys[s], lo, hi)
			}
		}
	}
}

func TestNodeOrderInvariant(t *testing.T) {
	ix := New()
	keys := distgen.NewClustered(2, 8, 1e7).Keys(30000)
	for _, k := range keys {
		ix.Insert(k, k)
	}
	for ni, n := range ix.nodes {
		prev := uint64(0)
		first := true
		for s := range n.keys {
			if !n.occ.test(s) {
				continue
			}
			if !first && n.keys[s] <= prev {
				t.Fatalf("node %d slot %d breaks order: %d after %d", ni, s, n.keys[s], prev)
			}
			prev = n.keys[s]
			first = false
		}
	}
}

func TestAdaptsToDrift(t *testing.T) {
	// Bulk-load one region, then insert a flood from a new region; the
	// index must absorb it (splits) and stay correct.
	ix := New()
	base := distgen.UniqueKeys(distgen.NewUniform(3, 0, 1<<30), 20000)
	ix.BulkLoad(base, base)
	nodesBefore := ix.NodeCount()
	for k := uint64(1 << 50); k < (1<<50)+20000; k++ {
		ix.Insert(k, k)
	}
	if ix.NodeCount() <= nodesBefore {
		t.Fatal("index did not grow nodes for the new region")
	}
	if v, ok := ix.Get(1<<50 + 100); !ok || v != 1<<50+100 {
		t.Fatal("drifted key lost")
	}
	if v, ok := ix.Get(base[100]); !ok || v != base[100] {
		t.Fatal("original key lost after drift")
	}
}

func TestRetrainCompacts(t *testing.T) {
	ix := New()
	for k := uint64(0); k < 10000; k++ {
		ix.Insert(k*3, k)
	}
	for k := uint64(0); k < 10000; k += 2 {
		ix.Delete(k * 3)
	}
	if w := ix.Retrain(); w <= 0 {
		t.Fatalf("Retrain work = %d", w)
	}
	if ix.Len() != 5000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	// All survivors reachable.
	for k := uint64(1); k < 10000; k += 2 {
		if v, ok := ix.Get(k * 3); !ok || v != k {
			t.Fatalf("Get(%d) after retrain = %d,%v", k*3, v, ok)
		}
	}
}

func TestModelCountGrows(t *testing.T) {
	ix := New()
	if ix.ModelCount() != 1 {
		t.Fatalf("fresh index ModelCount = %d", ix.ModelCount())
	}
	for k := uint64(0); k < 30000; k++ {
		ix.Insert(k, k)
	}
	if ix.ModelCount() < 2 {
		t.Fatal("ModelCount did not grow")
	}
}

func TestGappedInsertCheaperThanFull(t *testing.T) {
	// After a rebuild, the gapped array should accept nearby inserts
	// without long shift chains; we proxy-check via correctness under a
	// dense random-order load.
	ix := New()
	perm := make([]uint64, 20000)
	for i := range perm {
		perm[i] = uint64(i)
	}
	// Deterministic shuffle.
	r := uint64(12345)
	for i := len(perm) - 1; i > 0; i-- {
		r = r*6364136223846793005 + 1442695040888963407
		j := int(r % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for _, k := range perm {
		ix.Insert(k, k+1)
	}
	if ix.Len() != 20000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for k := uint64(0); k < 20000; k += 97 {
		if v, ok := ix.Get(k); !ok || v != k+1 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}
