// Package alex implements an updatable adaptive learned index modelled on
// ALEX (Ding et al., SIGMOD 2020): data nodes store entries in *gapped
// arrays* at positions chosen by a per-node linear model ("model-based
// inserts"), lookups predict a slot and correct with a short local search,
// and nodes expand/split — refitting their models — as data arrives.
//
// Unlike the static RMI, this index learns *online*: it has no separate
// training phase, adapts incrementally to distribution drift, and pays for
// that adaptation with occasional expansion/split latency spikes — the
// precise behaviour the paper's adaptability metrics (Fig 1b/1c) surface.
package alex

import (
	"sort"

	"repro/internal/index"
	"repro/internal/stats"
)

const (
	// targetDensity is the fill factor applied when (re)building a
	// node's gapped array.
	targetDensity = 0.7
	// expandDensity triggers a node rebuild at twice the capacity.
	expandDensity = 0.85
	// maxNodeSize splits a node into two when exceeded.
	maxNodeSize = 4096
	minCapacity = 16
)

// Index is an adaptive learned index. Not safe for concurrent use.
type Index struct {
	nodes []*dataNode // ordered by key range
	lows  []uint64    // lows[i] = smallest key ever routed to nodes[i]
	size  int
	st    index.Stats
	// retrains counts whole-node model refits (expansions + splits),
	// exposed as training work for the cost model.
	retrains int
}

type dataNode struct {
	keys  []uint64
	vals  []uint64
	occ   []bool
	size  int
	model stats.Linear // key -> slot
}

// New returns an empty adaptive index.
func New() *Index {
	n := newNode(nil, nil)
	return &Index{nodes: []*dataNode{n}, lows: []uint64{0}}
}

// Name implements index.Ordered.
func (ix *Index) Name() string { return "alex" }

// Len implements index.Ordered.
func (ix *Index) Len() int { return ix.size }

// Stats implements index.Instrumented.
func (ix *Index) Stats() index.Stats { return ix.st }

// ModelCount implements index.Trainable.
func (ix *Index) ModelCount() int { return len(ix.nodes) }

// Retrain implements index.Trainable: rebuilds every node's gapped array
// and model at the target density. Called explicitly by scenarios that
// schedule retraining windows; the index also adapts on its own.
func (ix *Index) Retrain() int {
	work := 0
	for _, n := range ix.nodes {
		n.rebuild(n.capacityFor(n.size))
		work += n.size + 1
	}
	ix.retrains += len(ix.nodes)
	return work
}

// Retrains reports how many node-level model refits have occurred — the
// online-training work the benchmark charges as training overhead.
func (ix *Index) Retrains() int { return ix.retrains }

// newNode builds a node from sorted keys/values (may be empty).
func newNode(keys, vals []uint64) *dataNode {
	n := &dataNode{}
	n.loadSorted(keys, vals)
	return n
}

func (n *dataNode) capacityFor(m int) int {
	c := int(float64(m)/targetDensity) + 1
	if c < minCapacity {
		c = minCapacity
	}
	return c
}

// loadSorted installs sorted entries at the default density.
func (n *dataNode) loadSorted(keys, vals []uint64) {
	n.loadSortedCap(keys, vals, n.capacityFor(len(keys)))
}

// loadSortedCap installs sorted entries into a gapped array of the given
// capacity (raised to fit if needed) using model-based placement.
func (n *dataNode) loadSortedCap(keys, vals []uint64, c int) {
	m := len(keys)
	if c <= m {
		c = m + 1
	}
	if c < minCapacity {
		c = minCapacity
	}
	n.keys = make([]uint64, c)
	n.vals = make([]uint64, c)
	n.occ = make([]bool, c)
	n.size = m
	if m == 0 {
		n.model = stats.Linear{}
		return
	}
	// Fit rank = f(key) over the sorted input, scaled to capacity.
	n.model = stats.FitLinearKeys(keys)
	scale := float64(c) / float64(m)
	n.model.Slope *= scale
	n.model.Intercept *= scale
	prev := -1
	for i, k := range keys {
		slot := n.model.PredictClamped(float64(k), c)
		if slot <= prev {
			slot = prev + 1
		}
		// Keep room for the remaining entries.
		if maxSlot := c - (m - i); slot > maxSlot {
			slot = maxSlot
		}
		n.keys[slot] = k
		n.vals[slot] = vals[i]
		n.occ[slot] = true
		prev = slot
	}
}

// collect appends the node's entries in order to the given slices.
func (n *dataNode) collect(keys, vals []uint64) ([]uint64, []uint64) {
	for i, o := range n.occ {
		if o {
			keys = append(keys, n.keys[i])
			vals = append(vals, n.vals[i])
		}
	}
	return keys, vals
}

// rebuild re-gaps the node at the given capacity.
func (n *dataNode) rebuild(capacity int) {
	keys, vals := n.collect(make([]uint64, 0, n.size), make([]uint64, 0, n.size))
	n.loadSortedCap(keys, vals, capacity)
}

// search returns the slot holding key (found=true), or the slot of the
// smallest occupied key greater than key (found=false; slot==len if none).
// compares counts key comparisons for instrumentation.
func (n *dataNode) search(key uint64) (slot int, found bool, compares int) {
	c := len(n.keys)
	if c == 0 || n.size == 0 {
		return c, false, 0
	}
	i := n.model.PredictClamped(float64(key), c)
	// Land on an occupied slot.
	j := i
	for j < c && !n.occ[j] {
		j++
	}
	if j == c {
		j = i
		for j >= 0 && (j >= c || !n.occ[j]) {
			j--
		}
		if j < 0 {
			return c, false, compares
		}
	}
	compares++
	switch {
	case n.keys[j] == key:
		return j, true, compares
	case n.keys[j] < key:
		// Walk right over occupied slots until >= key.
		for k := j + 1; k < c; k++ {
			if !n.occ[k] {
				continue
			}
			compares++
			if n.keys[k] >= key {
				return k, n.keys[k] == key, compares
			}
		}
		return c, false, compares
	default:
		// Walk left: find the leftmost occupied slot with key' >= key.
		best := j
		for k := j - 1; k >= 0; k-- {
			if !n.occ[k] {
				continue
			}
			compares++
			if n.keys[k] < key {
				return best, false, compares
			}
			best = k
			if n.keys[k] == key {
				return k, true, compares
			}
		}
		return best, false, compares
	}
}

// nodeFor routes a key to its data node index.
func (ix *Index) nodeFor(key uint64) int {
	// lows[i] is the routing boundary: node i serves keys in
	// [lows[i], lows[i+1]).
	i := sort.Search(len(ix.lows), func(i int) bool { return ix.lows[i] > key })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Get implements index.Ordered.
func (ix *Index) Get(key uint64) (uint64, bool) {
	ix.st.Searches++
	n := ix.nodes[ix.nodeFor(key)]
	slot, found, cmp := n.search(key)
	ix.st.Compares += uint64(cmp)
	if !found {
		return 0, false
	}
	return n.vals[slot], true
}

// Insert implements index.Ordered.
func (ix *Index) Insert(key, value uint64) {
	ni := ix.nodeFor(key)
	n := ix.nodes[ni]
	slot, found, cmp := n.search(key)
	ix.st.Compares += uint64(cmp)
	if found {
		n.vals[slot] = value
		return
	}
	n.insertAt(slot, key, value)
	ix.size++

	if float64(n.size) > expandDensity*float64(len(n.keys)) {
		ix.st.Splits++
		ix.retrains++
		ix.st.TrainWork += uint64(n.size)
		if n.size > maxNodeSize {
			ix.splitNode(ni)
		} else {
			n.rebuild(n.capacityFor(n.size * 2))
		}
	}
}

// insertAt places key before the occupied slot `pos` (pos may be len for
// append), shifting toward the nearest gap — the ALEX insert path.
func (n *dataNode) insertAt(pos int, key, value uint64) {
	c := len(n.keys)
	if c == 0 {
		n.loadSorted([]uint64{key}, []uint64{value})
		return
	}
	// A gap immediately left of pos can take the entry directly (order
	// is preserved because slots (gapLeft, pos) are unoccupied).
	if pos > 0 && !n.occ[pos-1] {
		n.keys[pos-1] = key
		n.vals[pos-1] = value
		n.occ[pos-1] = true
		n.size++
		return
	}
	// Find nearest gap right of pos, then shift [pos, gap) right by one.
	gapR := -1
	for i := pos; i < c; i++ {
		if !n.occ[i] {
			gapR = i
			break
		}
	}
	if gapR >= 0 {
		copy(n.keys[pos+1:gapR+1], n.keys[pos:gapR])
		copy(n.vals[pos+1:gapR+1], n.vals[pos:gapR])
		for i := gapR; i > pos; i-- {
			n.occ[i] = n.occ[i-1]
		}
		n.keys[pos] = key
		n.vals[pos] = value
		n.occ[pos] = true
		n.size++
		return
	}
	// No gap to the right: find one to the left and shift left.
	gapL := -1
	for i := pos - 1; i >= 0; i-- {
		if !n.occ[i] {
			gapL = i
			break
		}
	}
	if gapL >= 0 {
		copy(n.keys[gapL:pos-1], n.keys[gapL+1:pos])
		copy(n.vals[gapL:pos-1], n.vals[gapL+1:pos])
		for i := gapL; i < pos-1; i++ {
			n.occ[i] = n.occ[i+1]
		}
		n.keys[pos-1] = key
		n.vals[pos-1] = value
		n.occ[pos-1] = true
		n.size++
		return
	}
	// Completely full: expand then retry.
	n.rebuild(n.capacityFor(n.size * 2))
	slot, _, _ := n.search(key)
	n.insertAt(slot, key, value)
}

// splitNode splits nodes[ni] into two equal halves.
func (ix *Index) splitNode(ni int) {
	n := ix.nodes[ni]
	keys, vals := n.collect(make([]uint64, 0, n.size), make([]uint64, 0, n.size))
	mid := len(keys) / 2
	left := newNode(keys[:mid], vals[:mid])
	right := newNode(keys[mid:], vals[mid:])
	ix.nodes[ni] = left
	ix.nodes = append(ix.nodes, nil)
	copy(ix.nodes[ni+2:], ix.nodes[ni+1:])
	ix.nodes[ni+1] = right
	ix.lows = append(ix.lows, 0)
	copy(ix.lows[ni+2:], ix.lows[ni+1:])
	ix.lows[ni+1] = keys[mid]
}

// Delete implements index.Ordered: clears the slot (gap reclaimed by later
// inserts or rebuilds).
func (ix *Index) Delete(key uint64) bool {
	n := ix.nodes[ix.nodeFor(key)]
	slot, found, cmp := n.search(key)
	ix.st.Compares += uint64(cmp)
	if !found {
		return false
	}
	n.occ[slot] = false
	n.size--
	ix.size--
	return true
}

// Scan implements index.Ordered.
func (ix *Index) Scan(lo, hi uint64, fn func(key, value uint64) bool) int {
	if hi < lo {
		return 0
	}
	visited := 0
	for ni := ix.nodeFor(lo); ni < len(ix.nodes); ni++ {
		n := ix.nodes[ni]
		start := 0
		if ni == ix.nodeFor(lo) {
			s, _, _ := n.search(lo)
			start = s
		}
		for i := start; i < len(n.keys); i++ {
			if !n.occ[i] {
				continue
			}
			if n.keys[i] > hi {
				return visited
			}
			if n.keys[i] < lo {
				continue
			}
			visited++
			if !fn(n.keys[i], n.vals[i]) {
				return visited
			}
		}
	}
	return visited
}

// BulkLoad implements index.BulkLoader: partitions sorted data into nodes
// of at most maxNodeSize/2 entries and model-loads each.
func (ix *Index) BulkLoad(keys, values []uint64) {
	if len(keys) != len(values) {
		panic("alex: BulkLoad length mismatch")
	}
	ix.nodes = ix.nodes[:0]
	ix.lows = ix.lows[:0]
	ix.size = len(keys)
	ix.st = index.Stats{}
	if len(keys) == 0 {
		ix.nodes = append(ix.nodes, newNode(nil, nil))
		ix.lows = append(ix.lows, 0)
		return
	}
	per := maxNodeSize / 2
	for i := 0; i < len(keys); i += per {
		end := i + per
		if end > len(keys) {
			end = len(keys)
		}
		ix.nodes = append(ix.nodes, newNode(keys[i:end], values[i:end]))
		if i == 0 {
			ix.lows = append(ix.lows, 0)
		} else {
			ix.lows = append(ix.lows, keys[i])
		}
	}
}

// NodeCount reports the number of data nodes (structure growth signal).
func (ix *Index) NodeCount() int { return len(ix.nodes) }

var _ index.Ordered = (*Index)(nil)
var _ index.BulkLoader = (*Index)(nil)
var _ index.Trainable = (*Index)(nil)
var _ index.Instrumented = (*Index)(nil)
