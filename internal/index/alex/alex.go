// Package alex implements an updatable adaptive learned index modelled on
// ALEX (Ding et al., SIGMOD 2020): data nodes store entries in *gapped
// arrays* at positions chosen by a per-node linear model ("model-based
// inserts"), lookups predict a slot and correct with a short local search,
// and nodes expand/split — refitting their models — as data arrives.
//
// Unlike the static RMI, this index learns *online*: it has no separate
// training phase, adapts incrementally to distribution drift, and pays for
// that adaptation with occasional expansion/split latency spikes — the
// precise behaviour the paper's adaptability metrics (Fig 1b/1c) surface.
package alex

import (
	"math/bits"

	"repro/internal/index"
	"repro/internal/par"
	"repro/internal/search"
	"repro/internal/stats"
)

const (
	// targetDensity is the fill factor applied when (re)building a
	// node's gapped array.
	targetDensity = 0.7
	// expandDensity triggers a node rebuild at twice the capacity.
	expandDensity = 0.85
	// maxNodeSize splits a node into two when exceeded.
	maxNodeSize = 4096
	minCapacity = 16
	// parLoadMin is the key count at which BulkLoad fans per-node builds
	// out over internal/par; nodes write disjoint arena windows, so the
	// result is byte-identical at any parallelism.
	parLoadMin = 1 << 20
)

// bitset is a fixed-size occupancy bitmap over a node's gapped array. One
// cache line covers 512 slots, versus 64 for the []bool it replaces. The
// search path uses only test() — it inlines, and occupied slots are at
// most a few steps from a model prediction at target density — while the
// insert path's gap hunts use the word scans below, turning the O(gap)
// slot-by-slot crawl into O(gap/64).
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)>>6) }

func (b bitset) test(i int) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }
func (b bitset) set(i int)       { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)     { b[i>>6] &^= 1 << (uint(i) & 63) }

// nextClear returns the smallest clear index in [i, limit), or limit.
func (b bitset) nextClear(i, limit int) int {
	if i < 0 {
		i = 0
	}
	for i < limit {
		if w := ^b[i>>6] >> (uint(i) & 63); w != 0 {
			if j := i + bits.TrailingZeros64(w); j < limit {
				return j
			}
			return limit
		}
		i = (i>>6 + 1) << 6
	}
	return limit
}

// prevClear returns the largest clear index in [0, i], or -1 if none.
func (b bitset) prevClear(i int) int {
	for i >= 0 {
		if w := ^b[i>>6] << (63 - uint(i)&63); w != 0 {
			return i - bits.LeadingZeros64(w)
		}
		i = (i>>6)<<6 - 1
	}
	return -1
}

// Index is an adaptive learned index. Not safe for concurrent use.
type Index struct {
	nodes []*dataNode // ordered by key range
	lows  []uint64    // lows[i] = smallest key ever routed to nodes[i]
	size  int
	st    index.Stats
	// retrains counts whole-node model refits (expansions + splits),
	// exposed as training work for the cost model.
	retrains int
}

type dataNode struct {
	keys  []uint64
	vals  []uint64
	occ   bitset
	size  int
	model stats.Linear // key -> slot
}

// New returns an empty adaptive index.
func New() *Index {
	n := newNode(nil, nil)
	return &Index{nodes: []*dataNode{n}, lows: []uint64{0}}
}

// Name implements index.Ordered.
func (ix *Index) Name() string { return "alex" }

// Len implements index.Ordered.
func (ix *Index) Len() int { return ix.size }

// Stats implements index.Instrumented.
func (ix *Index) Stats() index.Stats { return ix.st }

// ModelCount implements index.Trainable.
func (ix *Index) ModelCount() int { return len(ix.nodes) }

// Retrain implements index.Trainable: rebuilds every node's gapped array
// and model at the target density. Called explicitly by scenarios that
// schedule retraining windows; the index also adapts on its own.
func (ix *Index) Retrain() int {
	work := 0
	for _, n := range ix.nodes {
		n.rebuild(n.capacityFor(n.size))
		work += n.size + 1
	}
	ix.retrains += len(ix.nodes)
	return work
}

// Retrains reports how many node-level model refits have occurred — the
// online-training work the benchmark charges as training overhead.
func (ix *Index) Retrains() int { return ix.retrains }

// newNode builds a node from sorted keys/values (may be empty).
func newNode(keys, vals []uint64) *dataNode {
	n := &dataNode{}
	n.loadSorted(keys, vals)
	return n
}

func (n *dataNode) capacityFor(m int) int {
	c := int(float64(m)/targetDensity) + 1
	if c < minCapacity {
		c = minCapacity
	}
	return c
}

// loadSorted installs sorted entries at the default density.
func (n *dataNode) loadSorted(keys, vals []uint64) {
	n.loadSortedCap(keys, vals, n.capacityFor(len(keys)))
}

// normCap raises a requested gapped-array capacity to fit m entries plus
// one gap and the minimum capacity floor.
func normCap(m, c int) int {
	if c <= m {
		c = m + 1
	}
	if c < minCapacity {
		c = minCapacity
	}
	return c
}

// loadSortedCap installs sorted entries into a gapped array of the given
// capacity (raised to fit if needed) using model-based placement.
func (n *dataNode) loadSortedCap(keys, vals []uint64, c int) {
	c = normCap(len(keys), c)
	n.keys = make([]uint64, c)
	n.vals = make([]uint64, c)
	n.occ = newBitset(c)
	n.place(keys, vals)
}

// place model-places sorted entries into the node's already sized arrays;
// n.keys/n.vals/n.occ must be zeroed and len(n.keys) is the capacity.
func (n *dataNode) place(keys, vals []uint64) {
	c := len(n.keys)
	m := len(keys)
	n.size = m
	if m == 0 {
		n.model = stats.Linear{}
		return
	}
	// Fit rank = f(key) over the sorted input, scaled to capacity.
	n.model = stats.FitLinearKeys(keys)
	scale := float64(c) / float64(m)
	n.model.Slope *= scale
	n.model.Intercept *= scale
	prev := -1
	for i, k := range keys {
		slot := n.model.PredictClamped(float64(k), c)
		if slot <= prev {
			slot = prev + 1
		}
		// Keep room for the remaining entries.
		if maxSlot := c - (m - i); slot > maxSlot {
			slot = maxSlot
		}
		n.keys[slot] = k
		n.vals[slot] = vals[i]
		n.occ.set(slot)
		prev = slot
	}
}

// collect appends the node's entries in order to the given slices.
func (n *dataNode) collect(keys, vals []uint64) ([]uint64, []uint64) {
	for i := range n.keys {
		if n.occ.test(i) {
			keys = append(keys, n.keys[i])
			vals = append(vals, n.vals[i])
		}
	}
	return keys, vals
}

// rebuild re-gaps the node at the given capacity.
func (n *dataNode) rebuild(capacity int) {
	keys, vals := n.collect(make([]uint64, 0, n.size), make([]uint64, 0, n.size))
	n.loadSortedCap(keys, vals, capacity)
}

// search returns the slot holding key (found=true), or the slot of the
// smallest occupied key greater than key (found=false; slot==len if none).
// compares counts key comparisons for instrumentation.
func (n *dataNode) search(key uint64) (slot int, found bool, compares int) {
	c := len(n.keys)
	if c == 0 || n.size == 0 {
		return c, false, 0
	}
	i := n.model.PredictClamped(float64(key), c)
	// Land on an occupied slot. compares counts only occupied-slot key
	// comparisons, so the virtual clock's work accounting is unchanged.
	// The walks use the inlinable occ.test — at target density an occupied
	// slot is at most a few steps away, so inline bit tests beat any
	// cleverness with per-step function calls.
	j := i
	for j < c && !n.occ.test(j) {
		j++
	}
	if j == c {
		if i > c-1 {
			i = c - 1
		}
		j = i
		for j >= 0 && !n.occ.test(j) {
			j--
		}
		if j < 0 {
			return c, false, compares
		}
	}
	compares++
	switch {
	case n.keys[j] == key:
		return j, true, compares
	case n.keys[j] < key:
		// Walk right over occupied slots until >= key.
		for k := j + 1; k < c; k++ {
			if !n.occ.test(k) {
				continue
			}
			compares++
			if n.keys[k] >= key {
				return k, n.keys[k] == key, compares
			}
		}
		return c, false, compares
	default:
		// Walk left: find the leftmost occupied slot with key' >= key.
		best := j
		for k := j - 1; k >= 0; k-- {
			if !n.occ.test(k) {
				continue
			}
			compares++
			if n.keys[k] < key {
				return best, false, compares
			}
			best = k
			if n.keys[k] == key {
				return k, true, compares
			}
		}
		return best, false, compares
	}
}

// nodeFor routes a key to its data node index.
func (ix *Index) nodeFor(key uint64) int {
	// lows[i] is the routing boundary: node i serves keys in
	// [lows[i], lows[i+1]).
	i := search.UpperBound(ix.lows, key)
	if i == 0 {
		return 0
	}
	return i - 1
}

// Get implements index.Ordered.
func (ix *Index) Get(key uint64) (uint64, bool) {
	ix.st.Searches++
	n := ix.nodes[ix.nodeFor(key)]
	slot, found, cmp := n.search(key)
	ix.st.Compares += uint64(cmp)
	if !found {
		return 0, false
	}
	return n.vals[slot], true
}

// Insert implements index.Ordered.
func (ix *Index) Insert(key, value uint64) {
	ni := ix.nodeFor(key)
	n := ix.nodes[ni]
	slot, found, cmp := n.search(key)
	ix.st.Compares += uint64(cmp)
	if found {
		n.vals[slot] = value
		return
	}
	n.insertAt(slot, key, value)
	ix.size++

	if float64(n.size) > expandDensity*float64(len(n.keys)) {
		ix.st.Splits++
		ix.retrains++
		ix.st.TrainWork += uint64(n.size)
		if n.size > maxNodeSize {
			ix.splitNode(ni)
		} else {
			n.rebuild(n.capacityFor(n.size * 2))
		}
	}
}

// insertAt places key before the occupied slot `pos` (pos may be len for
// append), shifting toward the nearest gap — the ALEX insert path.
func (n *dataNode) insertAt(pos int, key, value uint64) {
	c := len(n.keys)
	if c == 0 {
		n.loadSorted([]uint64{key}, []uint64{value})
		return
	}
	// A gap immediately left of pos can take the entry directly (order
	// is preserved because slots (gapLeft, pos) are unoccupied).
	if pos > 0 && !n.occ.test(pos-1) {
		n.keys[pos-1] = key
		n.vals[pos-1] = value
		n.occ.set(pos - 1)
		n.size++
		return
	}
	// Find nearest gap right of pos, then shift [pos, gap) right by one.
	// Every slot in [pos, gap) is occupied by construction, so the shifted
	// range ends fully occupied: the occupancy update is one set bit at the
	// consumed gap instead of the old per-slot shuffle.
	if gapR := n.occ.nextClear(pos, c); gapR < c {
		copy(n.keys[pos+1:gapR+1], n.keys[pos:gapR])
		copy(n.vals[pos+1:gapR+1], n.vals[pos:gapR])
		n.occ.set(gapR)
		n.keys[pos] = key
		n.vals[pos] = value
		n.size++
		return
	}
	// No gap to the right: find one to the left and shift left.
	if gapL := n.occ.prevClear(pos - 1); gapL >= 0 {
		copy(n.keys[gapL:pos-1], n.keys[gapL+1:pos])
		copy(n.vals[gapL:pos-1], n.vals[gapL+1:pos])
		n.occ.set(gapL)
		n.keys[pos-1] = key
		n.vals[pos-1] = value
		n.size++
		return
	}
	// Completely full: expand then retry.
	n.rebuild(n.capacityFor(n.size * 2))
	slot, _, _ := n.search(key)
	n.insertAt(slot, key, value)
}

// splitNode splits nodes[ni] into two equal halves.
func (ix *Index) splitNode(ni int) {
	n := ix.nodes[ni]
	keys, vals := n.collect(make([]uint64, 0, n.size), make([]uint64, 0, n.size))
	mid := len(keys) / 2
	left := newNode(keys[:mid], vals[:mid])
	right := newNode(keys[mid:], vals[mid:])
	ix.nodes[ni] = left
	ix.nodes = append(ix.nodes, nil)
	copy(ix.nodes[ni+2:], ix.nodes[ni+1:])
	ix.nodes[ni+1] = right
	ix.lows = append(ix.lows, 0)
	copy(ix.lows[ni+2:], ix.lows[ni+1:])
	ix.lows[ni+1] = keys[mid]
}

// Delete implements index.Ordered: clears the slot (gap reclaimed by later
// inserts or rebuilds).
func (ix *Index) Delete(key uint64) bool {
	n := ix.nodes[ix.nodeFor(key)]
	slot, found, cmp := n.search(key)
	ix.st.Compares += uint64(cmp)
	if !found {
		return false
	}
	n.occ.clear(slot)
	n.size--
	ix.size--
	return true
}

// Scan implements index.Ordered.
func (ix *Index) Scan(lo, hi uint64, fn func(key, value uint64) bool) int {
	if hi < lo {
		return 0
	}
	visited := 0
	for ni := ix.nodeFor(lo); ni < len(ix.nodes); ni++ {
		n := ix.nodes[ni]
		start := 0
		if ni == ix.nodeFor(lo) {
			s, _, _ := n.search(lo)
			start = s
		}
		for i := start; i < len(n.keys); i++ {
			if !n.occ.test(i) {
				continue
			}
			if n.keys[i] > hi {
				return visited
			}
			if n.keys[i] < lo {
				continue
			}
			visited++
			if !fn(n.keys[i], n.vals[i]) {
				return visited
			}
		}
	}
	return visited
}

// BulkLoad implements index.BulkLoader: partitions sorted data into nodes
// of at most maxNodeSize/2 entries and model-loads each.
func (ix *Index) BulkLoad(keys, values []uint64) {
	if len(keys) != len(values) {
		panic("alex: BulkLoad length mismatch")
	}
	ix.size = len(keys)
	ix.st = index.Stats{}
	if len(keys) == 0 {
		ix.nodes = append(ix.nodes[:0], newNode(nil, nil))
		ix.lows = append(ix.lows[:0], 0)
		return
	}
	// Arena layout: one slab of node structs and flat key/value/occupancy
	// slabs that every node slices into (capacity-capped windows), instead
	// of three allocations per node. Node builds write disjoint windows, so
	// large loads fan out over internal/par without changing a byte.
	per := maxNodeSize / 2
	n := len(keys)
	nNodes := (n + per - 1) / per
	nodeArr := make([]dataNode, nNodes)
	offs := make([]int, nNodes+1)   // slot offsets into key/val slabs
	woffs := make([]int, nNodes+1)  // word offsets into the occupancy slab
	starts := make([]int, nNodes+1) // entry offsets into the input
	for i := 0; i < nNodes; i++ {
		starts[i] = i * per
		sz := per
		if rest := n - starts[i]; sz > rest {
			sz = rest
		}
		c := normCap(sz, (&nodeArr[i]).capacityFor(sz))
		offs[i+1] = offs[i] + c
		woffs[i+1] = woffs[i] + (c+63)>>6
	}
	starts[nNodes] = n
	keySlab := make([]uint64, offs[nNodes])
	valSlab := make([]uint64, offs[nNodes])
	occSlab := make(bitset, woffs[nNodes])
	ix.nodes = make([]*dataNode, nNodes)
	ix.lows = make([]uint64, nNodes)
	build := func(i int) {
		nd := &nodeArr[i]
		nd.keys = keySlab[offs[i]:offs[i+1]:offs[i+1]]
		nd.vals = valSlab[offs[i]:offs[i+1]:offs[i+1]]
		nd.occ = occSlab[woffs[i]:woffs[i+1]:woffs[i+1]]
		nd.place(keys[starts[i]:starts[i+1]], values[starts[i]:starts[i+1]])
		ix.nodes[i] = nd
		if i > 0 {
			ix.lows[i] = keys[starts[i]]
		}
	}
	if n >= parLoadMin {
		par.ForEach(nNodes, 0, func(i int) error {
			build(i)
			return nil
		})
	} else {
		for i := 0; i < nNodes; i++ {
			build(i)
		}
	}
}

// NodeCount reports the number of data nodes (structure growth signal).
func (ix *Index) NodeCount() int { return len(ix.nodes) }

var _ index.Ordered = (*Index)(nil)
var _ index.BulkLoader = (*Index)(nil)
var _ index.Trainable = (*Index)(nil)
var _ index.Instrumented = (*Index)(nil)
