// Package cache implements the cache substrate for the benchmark's
// learned-caching experiments — the paper lists "learning-based caches"
// among the learned components a benchmark must cover. It provides a
// classic LRU baseline, a sampled-LFU baseline, a *learned* eviction
// policy that predicts per-key reuse intervals online (an LRB-style
// approximation of Belady's algorithm), and the offline Belady oracle as
// the upper bound.
//
// All policies share one interface and deterministic behaviour, so the
// benchmark can compare hit rates and adaptation under drifting access
// patterns.
package cache

import (
	"fmt"

	"repro/internal/stats"
)

// Cache is a fixed-capacity key cache. Access records a reference to key,
// returning whether it hit; on miss the key is admitted (possibly evicting
// another). Implementations are deterministic and not safe for concurrent
// use.
type Cache interface {
	// Name identifies the policy in reports.
	Name() string
	// Access references key, returns hit/miss, and admits on miss.
	Access(key uint64) bool
	// Len returns the number of cached keys.
	Len() int
	// Capacity returns the configured maximum entries.
	Capacity() int
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

type lruNode struct {
	key        uint64
	prev, next *lruNode
}

// LRU is the classic least-recently-used policy (map + intrusive list).
type LRU struct {
	capacity   int
	items      map[uint64]*lruNode
	head, tail *lruNode // head = most recent
}

// NewLRU returns an LRU cache with the given capacity (min 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{capacity: capacity, items: make(map[uint64]*lruNode, capacity)}
}

// Name implements Cache.
func (c *LRU) Name() string { return "lru" }

// Len implements Cache.
func (c *LRU) Len() int { return len(c.items) }

// Capacity implements Cache.
func (c *LRU) Capacity() int { return c.capacity }

func (c *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU) pushFront(n *lruNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// Access implements Cache.
func (c *LRU) Access(key uint64) bool {
	if n, ok := c.items[key]; ok {
		c.unlink(n)
		c.pushFront(n)
		return true
	}
	if len(c.items) >= c.capacity {
		victim := c.tail
		c.unlink(victim)
		delete(c.items, victim.key)
	}
	n := &lruNode{key: key}
	c.items[key] = n
	c.pushFront(n)
	return false
}

// ---------------------------------------------------------------------------
// Sampled LFU
// ---------------------------------------------------------------------------

// SampledLFU approximates least-frequently-used eviction by sampling K
// resident entries and evicting the one with the lowest decayed frequency
// (the Redis maxmemory-policy approach). Frequencies halve every
// decayEvery accesses so the policy can forget stale popularity.
type SampledLFU struct {
	capacity   int
	sampleK    int
	decayEvery int
	freq       map[uint64]float64
	keys       []uint64 // resident keys, position-indexed for sampling
	pos        map[uint64]int
	rng        *stats.RNG
	accesses   int
}

// NewSampledLFU returns a sampled-LFU cache.
func NewSampledLFU(capacity int, seed uint64) *SampledLFU {
	if capacity < 1 {
		capacity = 1
	}
	return &SampledLFU{
		capacity:   capacity,
		sampleK:    8,
		decayEvery: capacity * 4,
		freq:       make(map[uint64]float64, capacity),
		pos:        make(map[uint64]int, capacity),
		rng:        stats.NewRNG(seed),
	}
}

// Name implements Cache.
func (c *SampledLFU) Name() string { return "lfu" }

// Len implements Cache.
func (c *SampledLFU) Len() int { return len(c.keys) }

// Capacity implements Cache.
func (c *SampledLFU) Capacity() int { return c.capacity }

// Access implements Cache.
func (c *SampledLFU) Access(key uint64) bool {
	c.accesses++
	if c.decayEvery > 0 && c.accesses%c.decayEvery == 0 {
		for k := range c.freq {
			c.freq[k] /= 2
		}
	}
	c.freq[key]++
	if _, ok := c.pos[key]; ok {
		return true
	}
	if len(c.keys) >= c.capacity {
		c.evict()
	}
	c.pos[key] = len(c.keys)
	c.keys = append(c.keys, key)
	return false
}

func (c *SampledLFU) evict() {
	victimIdx := -1
	victimFreq := 0.0
	for i := 0; i < c.sampleK; i++ {
		idx := c.rng.Intn(len(c.keys))
		f := c.freq[c.keys[idx]]
		if victimIdx == -1 || f < victimFreq {
			victimIdx, victimFreq = idx, f
		}
	}
	c.removeAt(victimIdx)
}

func (c *SampledLFU) removeAt(idx int) {
	key := c.keys[idx]
	last := len(c.keys) - 1
	c.keys[idx] = c.keys[last]
	c.pos[c.keys[idx]] = idx
	c.keys = c.keys[:last]
	delete(c.pos, key)
	delete(c.freq, key)
}

// ---------------------------------------------------------------------------
// Learned (reuse-interval predicting) cache
// ---------------------------------------------------------------------------

// Learned evicts the entry predicted to be reused furthest in the future —
// an online approximation of Belady's optimal policy. Per key it learns an
// exponentially-weighted reuse interval from observed history; the
// predicted next access is lastAccess + predictedInterval, and eviction
// samples K residents and removes the one with the latest prediction.
// Keys never seen twice get a pessimistic default, giving the policy scan
// resistance that LRU fundamentally lacks.
type Learned struct {
	capacity int
	sampleK  int
	rng      *stats.RNG

	now  int64 // logical access clock
	meta map[uint64]*keyMeta
	keys []uint64
	pos  map[uint64]int
	// trainWork counts model updates, charged by the benchmark as
	// online training overhead.
	trainWork int64
}

type keyMeta struct {
	lastAccess int64
	// interval is the EWMA of observed reuse intervals; 0 = never
	// reused yet.
	interval float64
}

// NewLearned returns a learned cache.
func NewLearned(capacity int, seed uint64) *Learned {
	if capacity < 1 {
		capacity = 1
	}
	return &Learned{
		capacity: capacity,
		sampleK:  8,
		rng:      stats.NewRNG(seed),
		meta:     make(map[uint64]*keyMeta, capacity*2),
		pos:      make(map[uint64]int, capacity),
	}
}

// Name implements Cache.
func (c *Learned) Name() string { return "learned" }

// Len implements Cache.
func (c *Learned) Len() int { return len(c.keys) }

// Capacity implements Cache.
func (c *Learned) Capacity() int { return c.capacity }

// TrainWork reports accumulated model updates.
func (c *Learned) TrainWork() int64 { return c.trainWork }

// predictedNext returns the modeled next-access time for a resident key.
func (c *Learned) predictedNext(key uint64) float64 {
	m := c.meta[key]
	if m == nil {
		return float64(c.now) + float64(c.capacity)*8
	}
	if m.interval == 0 {
		// Seen once: pessimistic — beyond a full cache turnover. This
		// is what keeps one-shot scan keys from displacing the hot set.
		return float64(m.lastAccess) + float64(c.capacity)*8
	}
	return float64(m.lastAccess) + m.interval
}

// Access implements Cache.
func (c *Learned) Access(key uint64) bool {
	c.now++
	m := c.meta[key]
	if m != nil {
		// Online model update: EWMA of the observed reuse interval.
		obs := float64(c.now - m.lastAccess)
		if m.interval == 0 {
			m.interval = obs
		} else {
			m.interval = 0.7*m.interval + 0.3*obs
		}
		m.lastAccess = c.now
		c.trainWork++
	} else {
		m = &keyMeta{lastAccess: c.now}
		c.meta[key] = m
		c.trainWork++
		// Bound metadata: the model remembers history for ~4x capacity
		// keys (ghost entries), evicting the stalest when over.
		if len(c.meta) > c.capacity*4 {
			c.forgetStalest()
		}
	}
	if _, resident := c.pos[key]; resident {
		return true
	}
	if len(c.keys) >= c.capacity {
		c.evict()
	}
	c.pos[key] = len(c.keys)
	c.keys = append(c.keys, key)
	return false
}

// forgetStalest sweeps the ghost metadata, dropping every non-resident
// entry older than the median ghost age. The sweep is deterministic (a
// fixed age threshold, not map-iteration sampling) and amortized O(1):
// it halves the ghost population, so it runs every ~2x capacity misses.
func (c *Learned) forgetStalest() {
	ages := make([]int64, 0, len(c.meta))
	for k, m := range c.meta {
		if _, resident := c.pos[k]; !resident {
			ages = append(ages, m.lastAccess)
		}
	}
	if len(ages) == 0 {
		return
	}
	// Median via counting around the midpoint (avoid sort import churn:
	// simple nth-element by partial selection is overkill — sort is fine
	// at this amortization).
	threshold := medianInt64(ages)
	for k, m := range c.meta {
		if _, resident := c.pos[k]; resident {
			continue
		}
		if m.lastAccess <= threshold {
			delete(c.meta, k)
		}
	}
}

func medianInt64(xs []int64) int64 {
	// Deterministic selection of the median by value, independent of
	// slice order: quickselect with a fixed pivot rule.
	lo, hi := 0, len(xs)-1
	k := len(xs) / 2
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}

func (c *Learned) evict() {
	victimIdx := -1
	victimPred := 0.0
	for i := 0; i < c.sampleK; i++ {
		idx := c.rng.Intn(len(c.keys))
		p := c.predictedNext(c.keys[idx])
		if victimIdx == -1 || p > victimPred {
			victimIdx, victimPred = idx, p
		}
	}
	key := c.keys[victimIdx]
	last := len(c.keys) - 1
	c.keys[victimIdx] = c.keys[last]
	c.pos[c.keys[victimIdx]] = victimIdx
	c.keys = c.keys[:last]
	delete(c.pos, key)
}

// ---------------------------------------------------------------------------
// Belady oracle
// ---------------------------------------------------------------------------

// BeladyHitRate computes the hit rate of the offline-optimal (Belady)
// policy on a full trace with the given capacity — the upper bound the
// benchmark reports alongside the online policies.
func BeladyHitRate(trace []uint64, capacity int) float64 {
	if len(trace) == 0 || capacity < 1 {
		return 0
	}
	// next[i] = index of the next occurrence of trace[i] (or infinity).
	next := make([]int, len(trace))
	lastSeen := make(map[uint64]int)
	const inf = 1 << 62
	for i := len(trace) - 1; i >= 0; i-- {
		if j, ok := lastSeen[trace[i]]; ok {
			next[i] = j
		} else {
			next[i] = inf
		}
		lastSeen[trace[i]] = i
	}
	resident := make(map[uint64]int, capacity) // key -> next use index
	hits := 0
	for i, key := range trace {
		if _, ok := resident[key]; ok {
			hits++
			resident[key] = next[i]
			continue
		}
		if len(resident) >= capacity {
			// Evict the key with the furthest next use.
			var victim uint64
			worst := -1
			for k, n := range resident {
				if n > worst {
					victim, worst = k, n
				}
			}
			delete(resident, victim)
		}
		resident[key] = next[i]
	}
	return float64(hits) / float64(len(trace))
}

// HitRate replays a trace through a cache and returns the hit fraction.
func HitRate(c Cache, trace []uint64) float64 {
	if len(trace) == 0 {
		return 0
	}
	hits := 0
	for _, k := range trace {
		if c.Access(k) {
			hits++
		}
	}
	return float64(hits) / float64(len(trace))
}

// String summaries.
func (c *LRU) String() string     { return fmt.Sprintf("lru(cap=%d)", c.capacity) }
func (c *Learned) String() string { return fmt.Sprintf("learned(cap=%d)", c.capacity) }
