package cache

import (
	"testing"

	"repro/internal/stats"
)

// zipfScanTrace interleaves a zipf-hot working set with periodic one-shot
// sequential scans — the classic LRU-polluting pattern.
func zipfScanTrace(n int, seed uint64) []uint64 {
	rng := stats.NewRNG(seed)
	z := stats.NewZipf(rng.Split(), 1.1, 500)
	out := make([]uint64, 0, n)
	scanKey := uint64(1 << 40)
	for len(out) < n {
		// 400 zipf references...
		for i := 0; i < 400 && len(out) < n; i++ {
			out = append(out, z.Next())
		}
		// ...then a 300-key one-shot scan.
		for i := 0; i < 300 && len(out) < n; i++ {
			scanKey++
			out = append(out, scanKey)
		}
	}
	return out
}

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if c.Access(1) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1) {
		t.Fatal("warm access missed")
	}
	c.Access(2)
	c.Access(3) // evicts 1 (LRU order: 1 oldest)
	if c.Access(1) {
		t.Fatal("evicted key still resident")
	}
	if !c.Access(3) {
		t.Fatal("recent key evicted")
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Capacity())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := NewLRU(3)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	c.Access(1) // 1 is now most recent; 2 is LRU
	c.Access(4) // evicts 2
	if c.Access(2) {
		t.Fatal("2 should have been the LRU victim")
	}
	if !c.Access(1) {
		t.Fatal("1 was refreshed and must be resident")
	}
}

func TestCachesRespectCapacity(t *testing.T) {
	for _, c := range []Cache{NewLRU(10), NewSampledLFU(10, 1), NewLearned(10, 1)} {
		for k := uint64(0); k < 1000; k++ {
			c.Access(k)
		}
		if c.Len() > c.Capacity() {
			t.Fatalf("%s: len %d exceeds capacity", c.Name(), c.Len())
		}
	}
}

func TestMinimumCapacityClamped(t *testing.T) {
	for _, c := range []Cache{NewLRU(0), NewSampledLFU(-1, 1), NewLearned(0, 1)} {
		c.Access(1)
		if c.Capacity() != 1 || c.Len() != 1 {
			t.Fatalf("%s: cap=%d", c.Name(), c.Capacity())
		}
	}
}

func TestHitRateOnPureZipf(t *testing.T) {
	// All policies must capture most of a stable zipf working set.
	rng := stats.NewRNG(2)
	z := stats.NewZipf(rng, 1.2, 1000)
	trace := make([]uint64, 50000)
	for i := range trace {
		trace[i] = z.Next()
	}
	for _, c := range []Cache{NewLRU(200), NewSampledLFU(200, 3), NewLearned(200, 3)} {
		hr := HitRate(c, trace)
		if hr < 0.5 {
			t.Fatalf("%s: hit rate %v on stable zipf", c.Name(), hr)
		}
	}
}

func TestLearnedResistsScanPollution(t *testing.T) {
	trace := zipfScanTrace(100000, 4)
	lru := HitRate(NewLRU(300), trace)
	learned := HitRate(NewLearned(300, 5), trace)
	if learned <= lru {
		t.Fatalf("learned (%v) must beat LRU (%v) under scan pollution", learned, lru)
	}
}

func TestLearnedAdaptsToHotSetShift(t *testing.T) {
	// Hot set A for the first half, hot set B for the second: the
	// learned policy must not fossilize on A.
	rng := stats.NewRNG(6)
	zA := stats.NewZipf(rng.Split(), 1.2, 300)
	zB := stats.NewZipf(rng.Split(), 1.2, 300)
	trace := make([]uint64, 0, 60000)
	for i := 0; i < 30000; i++ {
		trace = append(trace, zA.Next())
	}
	for i := 0; i < 30000; i++ {
		trace = append(trace, 1_000_000+zB.Next())
	}
	c := NewLearned(200, 7)
	// Measure hit rate over the last quarter only (post-shift steady state).
	for _, k := range trace[:45000] {
		c.Access(k)
	}
	hits := 0
	for _, k := range trace[45000:] {
		if c.Access(k) {
			hits++
		}
	}
	hr := float64(hits) / 15000
	if hr < 0.5 {
		t.Fatalf("learned cache failed to adapt to the new hot set: %v", hr)
	}
}

func TestBeladyIsUpperBound(t *testing.T) {
	trace := zipfScanTrace(30000, 8)
	belady := BeladyHitRate(trace, 300)
	for _, c := range []Cache{NewLRU(300), NewSampledLFU(300, 9), NewLearned(300, 9)} {
		hr := HitRate(c, trace)
		if hr > belady+1e-9 {
			t.Fatalf("%s (%v) beat Belady (%v) — oracle broken", c.Name(), hr, belady)
		}
	}
}

func TestBeladyKnownTrace(t *testing.T) {
	// Capacity 2, trace 1,2,3,1,2: Belady evicts 2 when 3 arrives? No —
	// optimal: at miss(3), resident {1,2}; next use of 1 is idx 3, of 2
	// is idx 4; evict 2 (furthest). Then 1 hits, 2 misses: 1 hit total.
	hr := BeladyHitRate([]uint64{1, 2, 3, 1, 2}, 2)
	if hr != 0.2 {
		t.Fatalf("belady hit rate = %v, want 0.2", hr)
	}
	if BeladyHitRate(nil, 2) != 0 {
		t.Fatal("empty trace")
	}
	if BeladyHitRate([]uint64{1}, 0) != 0 {
		t.Fatal("zero capacity")
	}
}

func TestLearnedTrainWorkAccumulates(t *testing.T) {
	c := NewLearned(50, 10)
	for k := uint64(0); k < 1000; k++ {
		c.Access(k % 100)
	}
	if c.TrainWork() == 0 {
		t.Fatal("no training work recorded")
	}
}

func TestLearnedGhostMetadataBounded(t *testing.T) {
	c := NewLearned(100, 11)
	for k := uint64(0); k < 100000; k++ {
		c.Access(k) // pure scan: every key unique
	}
	if len(c.meta) > c.capacity*4+1 {
		t.Fatalf("metadata grew unbounded: %d entries", len(c.meta))
	}
}

func TestDeterminism(t *testing.T) {
	trace := zipfScanTrace(20000, 12)
	a := HitRate(NewLearned(200, 13), trace)
	b := HitRate(NewLearned(200, 13), trace)
	if a != b {
		t.Fatal("learned cache not deterministic")
	}
}

func TestNamesAndStrings(t *testing.T) {
	if NewLRU(1).Name() == "" || NewSampledLFU(1, 1).Name() == "" || NewLearned(1, 1).Name() == "" {
		t.Fatal("empty cache name")
	}
	if NewLRU(5).String() == "" || NewLearned(5, 1).String() == "" {
		t.Fatal("empty String")
	}
}

func TestHitRateEmptyTrace(t *testing.T) {
	if HitRate(NewLRU(10), nil) != 0 {
		t.Fatal("empty trace hit rate")
	}
}
