package fault

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// faultScenario is a small single-phase scenario on the virtual clock,
// materialized so repeated runs replay identical inputs.
func faultScenario(ops int) core.Scenario {
	s := core.Scenario{
		Name:        "fault-quick",
		Seed:        7,
		InitialData: distgen.NewUniform(8, 0, 1<<40),
		InitialSize: 5000,
		TrainBefore: true,
		IntervalNs:  100_000,
		Phases: []core.Phase{{
			Name: "steady",
			Ops:  ops,
			Workload: workload.Spec{
				Mix:    workload.ReadHeavy,
				Access: distgen.Static{G: distgen.NewUniform(9, 0, 1<<40)},
			},
		}},
	}
	return s.Materialize()
}

// runWith executes the scenario with the given plan wrapped around the SUT
// (nil windows = no injector at all) and returns the result JSON plus the
// injector's ledger.
func runWith(t *testing.T, scenario core.Scenario, sut core.SUT, plan *Plan, batch int) ([]byte, Report) {
	t.Helper()
	r := core.NewRunner()
	r.Batch = batch
	var inj *Injector
	if plan != nil {
		r.WrapSUT = func(s core.SUT, clock sim.Clock) core.SUT {
			inj = NewInjector(*plan, clock)
			return Wrap(s, inj)
		}
	}
	res, err := r.Run(scenario, sut)
	if err != nil {
		t.Fatal(err)
	}
	data, err := report.MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if inj != nil {
		rep = inj.Report()
	}
	return data, rep
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "slow@10ms-20ms:factor=8,rate=0.5;crash@35ms;error@55ms-65ms;drop@1ms-2ms:rate=0.25;delay@3ms-4ms:delay=500us;stall@5ms-6ms"
	p, err := ParseSpec(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Windows) != 6 {
		t.Fatalf("parsed plan: seed=%d windows=%d", p.Seed, len(p.Windows))
	}
	// String() is canonical and re-parses to the same plan.
	s1 := p.String()
	p2, err := ParseSpec(s1, 42)
	if err != nil {
		t.Fatalf("canonical spec %q does not re-parse: %v", s1, err)
	}
	if s2 := p2.String(); s1 != s2 {
		t.Fatalf("round trip unstable:\n  %s\n  %s", s1, s2)
	}
}

func TestParseSpecDefaults(t *testing.T) {
	p, err := ParseSpec("error@1ms-2ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Windows[0]
	if w.rate() != 1 {
		t.Fatalf("default rate = %v, want 1", w.rate())
	}
	p, err = ParseSpec("slow@1ms-2ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f := p.Windows[0].factor(); f != 4 {
		t.Fatalf("default slow factor = %v, want 4", f)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"bogus@1ms-2ms",          // unknown kind
		"slow@2ms-1ms",           // end before start
		"slow@1ms",               // windowed kind needs an end
		"crash@1ms-2ms",          // crash is a point event
		"error@1ms-2ms:rate=2",   // rate out of range
		"slow@1ms-2ms:factor=0",  // factor must be >= 1
		"delay@1ms-2ms:delay=-1", // bad duration
		"slow@1ms-2ms:wat=1",     // unknown param
		"@1ms-2ms",               // missing kind
		"slow",                   // missing window
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", spec)
		}
	}
	if p, err := ParseSpec("", 1); err != nil || !p.Empty() {
		t.Errorf("empty spec: plan=%+v err=%v, want empty plan", p, err)
	}
}

// TestZeroPlanByteIdentity is the acceptance golden: wrapping a SUT with an
// all-zero fault plan must be byte-identical to no injector at all, at
// every dispatch batch size.
func TestZeroPlanByteIdentity(t *testing.T) {
	scenario := faultScenario(4000)
	for _, batch := range []int{0, 1, 7, 64} {
		bare, _ := runWith(t, scenario, core.NewRMISUT(), nil, batch)
		empty := Plan{Seed: 99}
		wrapped, rep := runWith(t, scenario, core.NewRMISUT(), &empty, batch)
		if !bytes.Equal(bare, wrapped) {
			t.Fatalf("batch=%d: zero-plan run differs from bare run", batch)
		}
		if rep.SlowedOps != 0 || rep.FailedOps != 0 || rep.Crashes != 0 {
			t.Fatalf("batch=%d: zero plan produced faults: %+v", batch, rep)
		}
	}
}

// TestDeterminism: same plan + seed ⇒ byte-identical result JSON and an
// identical fault ledger, across batch sizes too.
func TestDeterminism(t *testing.T) {
	scenario := faultScenario(6000)
	plan, err := ParseSpec("slow@0.05ms-0.2ms:factor=6;error@0.25ms-0.4ms:rate=0.5;crash@0.5ms", 1234)
	if err != nil {
		t.Fatal(err)
	}

	a, repA := runWith(t, scenario, core.NewRMISUT(), &plan, 0)
	b, repB := runWith(t, scenario, core.NewRMISUT(), &plan, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("identical plan+seed produced different result JSON")
	}
	if repA != repB {
		t.Fatalf("fault ledgers differ:\n  %+v\n  %+v", repA, repB)
	}
	if repA.SlowedOps == 0 || repA.FailedOps == 0 || repA.Crashes != 1 {
		t.Fatalf("plan did not bite: %+v", repA)
	}

	// Batched dispatch is deterministic too (ops within a batch share a
	// clock reading, so the stream differs from unbatched — but two runs
	// at the same batch size must agree exactly).
	c, repC := runWith(t, scenario, core.NewRMISUT(), &plan, 32)
	d, repD := runWith(t, scenario, core.NewRMISUT(), &plan, 32)
	if !bytes.Equal(c, d) {
		t.Fatal("batch=32 faulted runs disagree with each other")
	}
	if repC != repD {
		t.Fatalf("batched ledgers differ: %+v vs %+v", repC, repD)
	}

	// A different seed perturbs which ops the probabilistic window hits.
	plan2 := plan
	plan2.Seed = 4321
	_, repE := runWith(t, scenario, core.NewRMISUT(), &plan2, 0)
	if repE == repA {
		t.Fatal("different seed produced an identical ledger (suspicious)")
	}
}

// TestCrashForcesRetrain is the acceptance criterion: a crash-restart
// demonstrably forces the learned SUT to retrain, and the recovery view
// surfaces the fault span.
func TestCrashForcesRetrain(t *testing.T) {
	scenario := faultScenario(8000)
	plan, err := ParseSpec("crash@0.2ms", 5)
	if err != nil {
		t.Fatal(err)
	}

	// Learned index: the crash wipes its models mid-run, so the op stream
	// must pay retraining work that the clean run never sees.
	r := core.NewRunner()
	var inj *Injector
	r.WrapSUT = func(s core.SUT, clock sim.Clock) core.SUT {
		inj = NewInjector(plan, clock)
		return Wrap(s, inj)
	}
	res, err := r.Run(scenario, core.NewRMISUT())
	if err != nil {
		t.Fatal(err)
	}
	rep := inj.Report()
	if rep.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", rep.Crashes)
	}
	if rep.CrashRetrainWork <= 0 {
		t.Fatalf("crash retrain work = %d, want > 0 for a learned SUT", rep.CrashRetrainWork)
	}

	// The retrain bill is visible end to end: the crashed run's results
	// diverge from the clean run's (the op stream paid retraining work a
	// clean run never sees — it may even speed up afterwards, since the
	// forced retrain sees fresher data).
	clean, err := core.NewRunner().Run(scenario, core.NewRMISUT())
	if err != nil {
		t.Fatal(err)
	}
	cleanJSON, err := report.MarshalResult(clean)
	if err != nil {
		t.Fatal(err)
	}
	crashJSON, err := report.MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(cleanJSON, crashJSON) {
		t.Fatal("crash-restart left the run byte-identical to a clean run")
	}

	// The recovery view pins the fault span to the crash instant.
	start, end, ok := plan.OpFaultSpan()
	if !ok {
		t.Fatal("crash plan reports no op-fault span")
	}
	rec := res.Snapshot.Recovery(start, end, 0)
	if rec.FaultStartNs != start || rec.FaultEndNs != end {
		t.Fatalf("recovery span [%d,%d], want [%d,%d]", rec.FaultStartNs, rec.FaultEndNs, start, end)
	}
	if rec.Availability <= 0 || rec.Availability > 1 {
		t.Fatalf("availability = %v", rec.Availability)
	}

	// The traditional B+ tree has no learned state: zero retrain work.
	var binj *Injector
	rb := core.NewRunner()
	rb.WrapSUT = func(s core.SUT, clock sim.Clock) core.SUT {
		binj = NewInjector(plan, clock)
		return Wrap(s, binj)
	}
	if _, err := rb.Run(scenario, core.NewBTreeSUT()); err != nil {
		t.Fatal(err)
	}
	if w := binj.Report().CrashRetrainWork; w != 0 {
		t.Fatalf("btree crash retrain work = %d, want 0", w)
	}
}

// TestErrorWindowAccounting: injected op errors are excluded from latency
// stats but tallied as failures everywhere they should appear.
func TestErrorWindowAccounting(t *testing.T) {
	scenario := faultScenario(6000)
	plan, err := ParseSpec("error@0ms-1000ms", 77) // full-run outage, rate=1
	if err != nil {
		t.Fatal(err)
	}
	data, rep := runWith(t, scenario, core.NewBTreeSUT(), &plan, 0)
	if rep.FailedOps != 6000 {
		t.Fatalf("failed ops = %d, want all 6000", rep.FailedOps)
	}
	if !strings.Contains(string(data), `"failed"`) {
		t.Fatal("result JSON does not surface the failed count")
	}

	res := mustRun(t, scenario, plan)
	if res.Snapshot.Failed != 6000 {
		t.Fatalf("snapshot failed = %d, want 6000", res.Snapshot.Failed)
	}
	if res.Completed != 0 {
		t.Fatalf("completed = %d, want 0 (every op failed)", res.Completed)
	}
	if res.Outcomes.Failed != 6000 {
		t.Fatalf("outcomes failed = %d, want 6000", res.Outcomes.Failed)
	}
	start, end, _ := plan.OpFaultSpan()
	rec := res.Snapshot.Recovery(start, end, 0)
	if rec.Availability != 0 {
		t.Fatalf("availability = %v, want 0 under a full outage", rec.Availability)
	}
	if rec.Recovered {
		t.Fatal("recovered = true under a run-long outage")
	}
	if rec.TimeToRecoverNs != -1 {
		t.Fatalf("time to recover = %d, want -1 sentinel", rec.TimeToRecoverNs)
	}
}

func mustRun(t *testing.T, scenario core.Scenario, plan Plan) *core.Result {
	t.Helper()
	r := core.NewRunner()
	r.WrapSUT = func(s core.SUT, clock sim.Clock) core.SUT {
		return Wrap(s, NewInjector(plan, clock))
	}
	res, err := r.Run(scenario, core.NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	return res
}
