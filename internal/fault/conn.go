package fault

import (
	"net"
	"time"
)

// Conn wraps a net.Conn with wire-frame faults: affected Write calls are
// swallowed whole (WireDrop — lost-request semantics, the peer never
// sees the frame) or delayed (WireDelay). The netdriver client writes
// each request or batch as a single Write, so drops are frame-aligned
// and the stream never desyncs; the client's retry loop turns a lost
// frame into a timeout plus a seeded-backoff retry.
type Conn struct {
	net.Conn
	inj *Injector
}

// NewConn wraps c with the injector's wire faults.
func NewConn(c net.Conn, inj *Injector) *Conn { return &Conn{Conn: c, inj: inj} }

// Write implements net.Conn. A dropped write reports full success — from
// the caller's view the frame went out and was lost in flight.
func (c *Conn) Write(p []byte) (int, error) {
	d := c.inj.DecideWrite()
	if d.Drop {
		return len(p), nil
	}
	if d.DelayNs > 0 {
		time.Sleep(time.Duration(d.DelayNs))
	}
	return c.Conn.Write(p)
}

// SetWireFaults implements the netdriver's WireFaultGater: the client
// disables wire faults around load and close framing, whose multi-write
// streams cannot tolerate a dropped chunk.
func (c *Conn) SetWireFaults(on bool) { c.inj.SetWireFaults(on) }
