package fault

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Injector drives a Plan against a clock and hands out fault decisions to
// the three plug-in layers. Decisions are pure functions of (plan seed,
// window index, site sequence number): the sequence numbers are taken
// from atomic counters, so under concurrent dispatch the *set* of
// affected sites — and therefore every counter in Report — is identical
// across runs even when goroutine interleaving is not. Under the virtual
// runner dispatch order is itself deterministic, making whole results
// byte-identical.
type Injector struct {
	plan  Plan
	clock sim.Clock

	opSeq   atomic.Uint64
	wireSeq atomic.Uint64

	// crashFired latches each CrashRestart window (point events fire once).
	crashFired []atomic.Bool

	// wireOff gates wire faults globally (load/close framing must not be
	// perturbed — dropping a mid-load chunk desyncs the stream).
	wireOff atomic.Bool

	slowed       atomic.Int64
	failed       atomic.Int64
	crashes      atomic.Int64
	retrainWork  atomic.Int64
	wireDrops    atomic.Int64
	wireDelays   atomic.Int64
	workerStalls atomic.Int64
}

// NewInjector builds an injector for plan driven by clock. A nil clock
// means wall time measured from this call (sim.Real anchored now).
func NewInjector(plan Plan, clock sim.Clock) *Injector {
	if clock == nil {
		clock = sim.NewReal()
	}
	return &Injector{
		plan:       plan,
		clock:      clock,
		crashFired: make([]atomic.Bool, len(plan.Windows)),
	}
}

// Plan returns the plan the injector is driving.
func (in *Injector) Plan() Plan { return in.plan }

// Clock returns the driving clock.
func (in *Injector) Clock() sim.Clock { return in.clock }

// Decision is the verdict for one SUT operation.
type Decision struct {
	// Crash: a CrashRestart window fired; wipe learned state and retrain
	// before the op executes.
	Crash bool
	// Fail: the op fails without executing (OpResult.Failed).
	Fail bool
	// SlowFactor multiplies the op's work; 1 when no SlowOps window hit.
	SlowFactor float64
}

// DecideOp returns the fault verdict for the next SUT operation at the
// current clock time. Error windows are checked before slow windows: a
// failed op never also pays inflated work.
func (in *Injector) DecideOp() Decision {
	d := Decision{SlowFactor: 1}
	if in.plan.Empty() {
		return d
	}
	now := in.clock.Now()
	seq := in.opSeq.Add(1) - 1
	for wi, w := range in.plan.Windows {
		switch w.Kind {
		case CrashRestart:
			if now >= w.StartNs && in.crashFired[wi].CompareAndSwap(false, true) {
				d.Crash = true
				in.crashes.Add(1)
			}
		case ErrorOps:
			if !d.Fail && w.covers(now) && in.hit(wi, seq, w.rate()) {
				d.Fail = true
				in.failed.Add(1)
			}
		case SlowOps:
			if w.covers(now) && in.hit(wi, seq, w.rate()) {
				d.SlowFactor *= w.factor()
			}
		}
	}
	if d.Fail {
		d.SlowFactor = 1
	} else if d.SlowFactor > 1 {
		in.slowed.Add(1)
	}
	return d
}

// opFaultsPossible reports whether any op-layer window exists at all —
// the Wrap fast path: when false, batches delegate straight to the inner
// SUT's native DoBatch.
func (in *Injector) opFaultsPossible() bool {
	for _, w := range in.plan.Windows {
		if w.Kind.opKind() {
			return true
		}
	}
	return false
}

// WireDecision is the verdict for one wire write.
type WireDecision struct {
	// Drop: swallow the write; the peer never sees the frame.
	Drop bool
	// DelayNs: sleep this long before writing.
	DelayNs int64
}

// DecideWrite returns the fault verdict for the next wire write. Returns
// the zero decision when wire faults are gated off (SetWireFaults).
func (in *Injector) DecideWrite() WireDecision {
	var d WireDecision
	if in.plan.Empty() || in.wireOff.Load() {
		return d
	}
	now := in.clock.Now()
	seq := in.wireSeq.Add(1) - 1
	for wi, w := range in.plan.Windows {
		if !w.Kind.wireKind() || !w.covers(now) || !in.hit(wi, seq, w.rate()) {
			continue
		}
		switch w.Kind {
		case WireDrop:
			if !d.Drop {
				d.Drop = true
				in.wireDrops.Add(1)
			}
		case WireDelay:
			d.DelayNs += w.delayNs()
			in.wireDelays.Add(1)
		}
	}
	if d.Drop {
		d.DelayNs = 0
	}
	return d
}

// SetWireFaults gates wire-write faults on or off. The netdriver client
// turns them off around load and close framing, whose multi-write
// streams cannot tolerate a dropped chunk.
func (in *Injector) SetWireFaults(on bool) { in.wireOff.Store(!on) }

// StallFor returns how long a service worker picking up a job right now
// must stall before starting it: the remainder of the longest active
// WorkerStall window, or zero.
func (in *Injector) StallFor() time.Duration {
	if in.plan.Empty() {
		return 0
	}
	now := in.clock.Now()
	var stall int64
	for _, w := range in.plan.Windows {
		if w.Kind == WorkerStall && w.covers(now) && w.EndNs-now > stall {
			stall = w.EndNs - now
		}
	}
	if stall > 0 {
		in.workerStalls.Add(1)
	}
	return time.Duration(stall)
}

// recordRetrain accumulates crash-forced retraining work (Wrap calls it).
func (in *Injector) recordRetrain(work int64) { in.retrainWork.Add(work) }

// hit decides membership of site seq in window wi's affected set: a
// splitmix64-style finalizer over (seed, window, seq) mapped to [0, 1)
// and compared against the window rate. Stateless, so concurrent callers
// agree without coordination.
func (in *Injector) hit(wi int, seq uint64, rate float64) bool {
	if rate >= 1 {
		return true
	}
	x := in.plan.Seed ^ (uint64(wi)+1)*0x9E3779B97F4A7C15 ^ (seq+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < rate
}

// Report is the injector's deterministic fault ledger: what the plan
// actually did to the run.
type Report struct {
	Spec             string `json:"spec"`
	Seed             uint64 `json:"seed"`
	SlowedOps        int64  `json:"slowed_ops"`
	FailedOps        int64  `json:"failed_ops"`
	Crashes          int64  `json:"crashes"`
	CrashRetrainWork int64  `json:"crash_retrain_work"`
	WireDrops        int64  `json:"wire_drops"`
	WireDelays       int64  `json:"wire_delays"`
	WorkerStalls     int64  `json:"worker_stalls"`
}

// Report snapshots the fault ledger.
func (in *Injector) Report() Report {
	return Report{
		Spec:             in.plan.String(),
		Seed:             in.plan.Seed,
		SlowedOps:        in.slowed.Load(),
		FailedOps:        in.failed.Load(),
		Crashes:          in.crashes.Load(),
		CrashRetrainWork: in.retrainWork.Load(),
		WireDrops:        in.wireDrops.Load(),
		WireDelays:       in.wireDelays.Load(),
		WorkerStalls:     in.workerStalls.Load(),
	}
}

// Marshal renders the report as deterministic JSON (fixed field order,
// trailing newline) for goldens and logs.
func (r Report) Marshal() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		panic("fault: marshal report: " + err.Error())
	}
	return buf.Bytes()
}
