// Package fault is the deterministic fault-injection and
// recovery-measurement subsystem: it shifts the *environment* of a run the
// way internal/distgen shifts its data — with seeded, parameterized,
// reproducible perturbations — so "graceful degradation" becomes a
// measured property instead of an asserted one.
//
// A Plan is a schedule of fault windows on the run's clock: per-operation
// latency inflation (SlowOps), injected operation errors (ErrorOps), a
// crash-restart that wipes learned state and forces retraining
// (CrashRestart), wire-frame drop/delay on the network driver (WireDrop,
// WireDelay), and stalled workers in the benchmark service (WorkerStall).
// An Injector drives the plan: every decision is a pure function of the
// plan seed and a fault-site sequence number, so identical (plan, seed)
// runs make identical decisions — on the virtual clock the full result is
// byte-identical; on the wall clock the decision stream and fault counts
// still are.
//
// The subsystem plugs in at three layers without touching engine code:
//
//   - Wrap turns any core.SUT into a fault-carrying SUT (the runner's
//     WrapSUT hook hands it the run's virtual clock);
//   - NewConn wraps a net.Conn with wire-frame faults (the netdriver's
//     Options.WrapConn hook), against which the client's capped
//     exponential backoff makes degradation survivable and measurable;
//   - Injector.StallFor is the service-queue hook: workers picking up a
//     job inside a WorkerStall window sleep the window out first.
//
// Recovery measurement lives in internal/metrics (Snapshot.Recovery):
// time to return to the pre-fault SLA band, availability, and error
// budget burn — the Fig 1e robustness view.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the fault types a Window can schedule.
type Kind int

// Fault kinds. SlowOps, ErrorOps, and CrashRestart act at the SUT
// middleware (Wrap); WireDrop and WireDelay act at the conn wrapper
// (NewConn); WorkerStall acts at the service queue (Injector.StallFor).
const (
	// SlowOps multiplies the work of affected operations by Factor,
	// inflating their service time (a slow device, a noisy neighbour).
	SlowOps Kind = iota
	// ErrorOps fails affected operations outright: they complete as
	// failures (OpResult.Failed) without executing.
	ErrorOps
	// CrashRestart fires once at StartNs: the SUT loses its learned
	// in-memory state and is forced to retrain (CrashRestarter if
	// implemented, else core.Trainable.Train).
	CrashRestart
	// WireDrop swallows affected wire writes — the frame is lost and the
	// peer never sees it (lost-request semantics).
	WireDrop
	// WireDelay sleeps DelayNs before affected wire writes.
	WireDelay
	// WorkerStall stalls service-queue workers for the remainder of the
	// window before they start a job.
	WorkerStall
	numKinds
)

// kindNames is the spec vocabulary, indexed by Kind.
var kindNames = [numKinds]string{"slow", "error", "crash", "drop", "delay", "stall"}

// String returns the spec name of the kind.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// opKind reports whether the kind acts at the SUT middleware layer.
func (k Kind) opKind() bool { return k == SlowOps || k == ErrorOps || k == CrashRestart }

// wireKind reports whether the kind acts at the conn-wrapper layer.
func (k Kind) wireKind() bool { return k == WireDrop || k == WireDelay }

// Default parameters for unspecified window knobs.
const (
	defaultFactor  = 4.0
	defaultDelayNs = int64(time.Millisecond)
)

// Window is one scheduled fault: it is live on [StartNs, EndNs) of the
// driving clock (CrashRestart is a point event at StartNs; EndNs is
// ignored).
type Window struct {
	Kind Kind
	// StartNs/EndNs bound the window in nanoseconds on the injector's
	// clock — virtual time under the deterministic runner, wall time
	// since injector creation elsewhere.
	StartNs, EndNs int64
	// Rate is the fraction of fault sites (ops, wire writes) affected
	// while the window is live, in (0, 1]. 0 means 1 (all).
	Rate float64
	// Factor is the SlowOps work multiplier (> 1). 0 means 4.
	Factor float64
	// DelayNs is the WireDelay per-write delay. 0 means 1ms.
	DelayNs int64
}

// covers reports whether the window is live at time t.
func (w Window) covers(t int64) bool { return t >= w.StartNs && t < w.EndNs }

// rate returns the effective affect fraction.
func (w Window) rate() float64 {
	if w.Rate <= 0 || w.Rate > 1 {
		return 1
	}
	return w.Rate
}

// factor returns the effective slow multiplier.
func (w Window) factor() float64 {
	if w.Factor <= 1 {
		return defaultFactor
	}
	return w.Factor
}

// delayNs returns the effective wire delay.
func (w Window) delayNs() int64 {
	if w.DelayNs <= 0 {
		return defaultDelayNs
	}
	return w.DelayNs
}

// Plan is a seeded schedule of fault windows. The zero value (no windows)
// is the all-zero plan: an injector driving it never perturbs anything,
// and a run under it is byte-identical to a run with no injector at all.
type Plan struct {
	Seed    uint64
	Windows []Window
}

// Empty reports whether the plan schedules no faults.
func (p Plan) Empty() bool { return len(p.Windows) == 0 }

// Validate checks the plan is runnable.
func (p Plan) Validate() error {
	for i, w := range p.Windows {
		if w.Kind < 0 || w.Kind >= numKinds {
			return fmt.Errorf("fault: window %d: unknown kind %d", i, int(w.Kind))
		}
		if w.StartNs < 0 {
			return fmt.Errorf("fault: window %d (%s): negative start", i, w.Kind)
		}
		if w.Kind != CrashRestart && w.EndNs <= w.StartNs {
			return fmt.Errorf("fault: window %d (%s): end %d not after start %d", i, w.Kind, w.EndNs, w.StartNs)
		}
		if w.Rate < 0 || w.Rate > 1 {
			return fmt.Errorf("fault: window %d (%s): rate %g outside [0,1]", i, w.Kind, w.Rate)
		}
	}
	return nil
}

// OpFaultSpan returns the [start, end) hull of the plan's op-affecting
// windows — the default recovery-measurement window when the caller has
// no more specific fault of interest. CrashRestart contributes its start
// instant. ok is false when the plan has no op-affecting windows.
func (p Plan) OpFaultSpan() (startNs, endNs int64, ok bool) {
	for _, w := range p.Windows {
		if !w.Kind.opKind() {
			continue
		}
		end := w.EndNs
		if w.Kind == CrashRestart {
			end = w.StartNs
		}
		if !ok || w.StartNs < startNs {
			startNs = w.StartNs
		}
		if !ok || end > endNs {
			endNs = end
		}
		ok = true
	}
	return startNs, endNs, ok
}

// String renders the plan as a canonical spec string (parsable by
// ParseSpec, windows in schedule order).
func (p Plan) String() string {
	ws := append([]Window(nil), p.Windows...)
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].StartNs < ws[j].StartNs })
	var parts []string
	for _, w := range ws {
		s := w.Kind.String() + "@" + formatNs(w.StartNs)
		if w.Kind != CrashRestart {
			s += "-" + formatNs(w.EndNs)
		}
		var params []string
		if w.Rate > 0 && w.Rate < 1 {
			params = append(params, "rate="+strconv.FormatFloat(w.Rate, 'g', -1, 64))
		}
		if w.Kind == SlowOps && w.Factor > 1 {
			params = append(params, "factor="+strconv.FormatFloat(w.Factor, 'g', -1, 64))
		}
		if w.Kind == WireDelay && w.DelayNs > 0 {
			params = append(params, "delay="+formatNs(w.DelayNs))
		}
		if len(params) > 0 {
			s += ":" + strings.Join(params, ",")
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

// formatNs renders nanoseconds as a time.ParseDuration-compatible string.
func formatNs(ns int64) string { return time.Duration(ns).String() }

// ParseSpec parses a fault plan from its compact CLI form:
//
//	spec    := window (';' window)*
//	window  := kind '@' start [ '-' end ] [ ':' param (',' param)* ]
//	kind    := slow | error | crash | drop | delay | stall
//	param   := rate=<0..1> | factor=<float> | delay=<duration>
//
// start, end, and delay are Go durations ("10ms", "1.5s", "0"); windows
// are [start, end) on the driving clock. crash takes no end (a point
// event). Example:
//
//	slow@10ms-30ms:rate=0.5,factor=8;crash@50ms;error@70ms-80ms
func ParseSpec(spec string, seed uint64) (Plan, error) {
	plan := Plan{Seed: seed}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return plan, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := parseWindow(part)
		if err != nil {
			return Plan{}, err
		}
		plan.Windows = append(plan.Windows, w)
	}
	if err := plan.Validate(); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// parseWindow parses one kind@start-end:params clause.
func parseWindow(s string) (Window, error) {
	kindStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Window{}, fmt.Errorf("fault: window %q: missing '@' (want kind@start-end)", s)
	}
	var w Window
	kind := -1
	for k, name := range kindNames {
		if kindStr == name {
			kind = k
			break
		}
	}
	if kind < 0 {
		return Window{}, fmt.Errorf("fault: window %q: unknown kind %q (have %s)",
			s, kindStr, strings.Join(kindNames[:], ","))
	}
	w.Kind = Kind(kind)

	span := rest
	var params string
	if i := strings.Index(rest, ":"); i >= 0 {
		span, params = rest[:i], rest[i+1:]
	}
	startStr, endStr, hasEnd := strings.Cut(span, "-")
	start, err := parseDur(startStr)
	if err != nil {
		return Window{}, fmt.Errorf("fault: window %q: bad start: %v", s, err)
	}
	w.StartNs = start
	if w.Kind == CrashRestart {
		if hasEnd {
			return Window{}, fmt.Errorf("fault: window %q: crash is a point event, no end", s)
		}
	} else {
		if !hasEnd {
			return Window{}, fmt.Errorf("fault: window %q: missing end (want %s@start-end)", s, kindStr)
		}
		end, err := parseDur(endStr)
		if err != nil {
			return Window{}, fmt.Errorf("fault: window %q: bad end: %v", s, err)
		}
		w.EndNs = end
	}

	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Window{}, fmt.Errorf("fault: window %q: bad param %q (want key=value)", s, kv)
			}
			switch key {
			case "rate":
				r, err := strconv.ParseFloat(val, 64)
				if err != nil || r < 0 || r > 1 {
					return Window{}, fmt.Errorf("fault: window %q: rate %q outside [0,1]", s, val)
				}
				w.Rate = r
			case "factor":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil || f <= 1 {
					return Window{}, fmt.Errorf("fault: window %q: factor %q must be > 1", s, val)
				}
				w.Factor = f
			case "delay":
				d, err := parseDur(val)
				if err != nil || d <= 0 {
					return Window{}, fmt.Errorf("fault: window %q: bad delay %q", s, val)
				}
				w.DelayNs = d
			default:
				return Window{}, fmt.Errorf("fault: window %q: unknown param %q (have rate, factor, delay)", s, key)
			}
		}
	}
	return w, nil
}

// parseDur parses a Go duration into nanoseconds, accepting a bare "0".
func parseDur(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "0" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return d.Nanoseconds(), nil
}
