package fault

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// CrashRestarter is implemented by SUTs that can simulate a process
// crash-restart: wipe volatile learned state (models, caches) while
// keeping durable contents, leaving the system degraded until retrained.
// SUTs without it are crash-restarted via core.Trainable.Train — the
// forced retrain is the observable cost.
type CrashRestarter interface {
	CrashRestart()
}

// SUT is the fault-injection middleware: it wraps any core.SUT and
// applies the injector's op-layer verdicts (slow, error, crash-restart)
// around the inner system. With an empty plan it is transparent — results
// are byte-identical to running the inner SUT bare.
type SUT struct {
	inner core.SUT
	batch core.BatchSUT
	inj   *Injector
}

// Wrap returns s behind the fault middleware driven by inj.
func Wrap(s core.SUT, inj *Injector) *SUT {
	return &SUT{inner: s, batch: core.AsBatch(s), inj: inj}
}

// Name implements core.SUT.
func (s *SUT) Name() string { return s.inner.Name() }

// Load implements core.SUT.
func (s *SUT) Load(keys, values []uint64) { s.inner.Load(keys, values) }

// Do implements core.SUT: one injector verdict per operation. A crash
// fires before the op and charges the forced retraining work to the op
// itself — the latency spike is the measurement. A failed op returns
// immediately with Failed set and no work.
func (s *SUT) Do(op workload.Op) core.OpResult {
	d := s.inj.DecideOp()
	var crashWork int64
	if d.Crash {
		crashWork = s.crashRestart()
	}
	if d.Fail {
		return core.OpResult{Failed: true, Work: crashWork}
	}
	res := s.inner.Do(op)
	if d.SlowFactor > 1 {
		res.Work = int64(float64(res.Work) * d.SlowFactor)
	}
	res.Work += crashWork
	return res
}

// DoBatch implements core.BatchSUT. When the plan schedules no op-layer
// faults the batch delegates to the inner SUT's native batch path
// untouched (preserving byte-identity with an unwrapped run); otherwise
// ops dispatch one at a time so each gets its own verdict at the frozen
// dispatch-time clock.
func (s *SUT) DoBatch(ops []workload.Op, out []core.OpResult) {
	if !s.inj.opFaultsPossible() {
		s.batch.DoBatch(ops, out)
		return
	}
	for i, op := range ops {
		out[i] = s.Do(op)
	}
}

// crashRestart wipes the inner SUT's learned state and retrains it,
// returning the work the op must absorb. Prefers CrashRestarter; falls
// back to Trainable (the retrain is the crash cost). For counter-delta
// SUTs (IndexSUT) the retrain work also lands in the instrumentation
// counters and is charged to this op via the normal delta path, so the
// explicit report work is not added twice — recordRetrain only feeds the
// fault ledger.
func (s *SUT) crashRestart() int64 {
	if cr, ok := s.inner.(CrashRestarter); ok {
		cr.CrashRestart()
		s.inj.recordRetrain(0)
		return 0
	}
	tr, ok := s.inner.(core.Trainable)
	if !ok {
		return 0
	}
	rep := tr.Train()
	s.inj.recordRetrain(rep.WorkUnits)
	return 0
}

// Train implements core.Trainable by forwarding to the inner SUT; a
// non-trainable inner returns the zero report, which the runner ignores.
func (s *SUT) Train() core.TrainReport {
	if tr, ok := s.inner.(core.Trainable); ok {
		return tr.Train()
	}
	return core.TrainReport{}
}

// OnlineTrainWork implements core.OnlineLearner by forwarding.
func (s *SUT) OnlineTrainWork() int64 {
	if ol, ok := s.inner.(core.OnlineLearner); ok {
		return ol.OnlineTrainWork()
	}
	return 0
}

// Inner exposes the wrapped SUT (tests, examples).
func (s *SUT) Inner() core.SUT { return s.inner }

var (
	_ core.SUT           = (*SUT)(nil)
	_ core.BatchSUT      = (*SUT)(nil)
	_ core.Trainable     = (*SUT)(nil)
	_ core.OnlineLearner = (*SUT)(nil)
)
