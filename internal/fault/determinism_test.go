package fault

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/driver"
	"repro/internal/netdriver"
	"repro/internal/workload"
)

// driverFaultRun executes one concurrent real-time driver run with the
// plan's injector on the wall clock and returns the measured outcomes and
// the fault ledger.
func driverFaultRun(t *testing.T, plan Plan, workers, batch int) (*driver.Result, Report) {
	t.Helper()
	inj := NewInjector(plan, nil)
	res, err := driver.Run(Wrap(core.NewBTreeSUT(), inj),
		workload.Spec{
			Mix:    workload.ReadHeavy,
			Access: distgen.Static{G: distgen.NewUniform(11, 0, 1<<40)},
		},
		distgen.NewUniform(12, 0, 1<<40), 3000,
		driver.Options{Workers: workers, Ops: 6000, Seed: 13, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	return res, inj.Report()
}

// TestDriverFaultCountsDeterministic: under the concurrent wall-clock
// driver, which ops fail depends on scheduling, but how many fail does
// not — decisions are pure functions of the injector's op sequence, so a
// run-long probabilistic window yields identical totals on every run.
// (Run with -race in CI: the injector is exercised from many workers.)
func TestDriverFaultCountsDeterministic(t *testing.T) {
	plan, err := ParseSpec("error@0s-1h:rate=0.2", 31)
	if err != nil {
		t.Fatal(err)
	}
	resA, repA := driverFaultRun(t, plan, 8, 4)
	resB, repB := driverFaultRun(t, plan, 8, 4)

	if repA.FailedOps == 0 {
		t.Fatal("error window never fired")
	}
	if repA != repB {
		t.Fatalf("fault ledgers differ across runs:\n  %+v\n  %+v", repA, repB)
	}
	if resA.Outcomes.Failed != repA.FailedOps || resB.Outcomes.Failed != repB.FailedOps {
		t.Fatalf("driver failed tally (%d, %d) disagrees with injector (%d)",
			resA.Outcomes.Failed, resB.Outcomes.Failed, repA.FailedOps)
	}
	if resA.Snapshot.Failed != repA.FailedOps {
		t.Fatalf("snapshot failed = %d, injector = %d", resA.Snapshot.Failed, repA.FailedOps)
	}
	if got := resA.Completed + resA.Outcomes.Failed; got != 6000 {
		t.Fatalf("completed+failed = %d, want 6000", got)
	}
	// Worker count cannot change the totals either.
	_, repC := driverFaultRun(t, plan, 2, 1)
	if repC != repA {
		t.Fatalf("ledger depends on worker count: %+v vs %+v", repC, repA)
	}
}

// TestWireFaultsRecoverE2E: frames dropped by the injector are recovered
// by the client's retry path — the run completes with no latched error and
// correct results despite a lossy wire.
func TestWireFaultsRecoverE2E(t *testing.T) {
	srv, err := netdriver.Serve("127.0.0.1:0", core.NewBTreeSUT)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan, err := ParseSpec("drop@0s-1h:rate=0.2;delay@0s-1h:rate=0.3,delay=200us", 71)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan, nil)
	c, err := netdriver.DialOptions(srv.Addr(), netdriver.Options{
		ReadTimeout:  25 * time.Millisecond,
		WriteTimeout: 25 * time.Millisecond,
		MaxRetries:   8,
		RetrySeed:    71,
		WrapConn:     func(conn net.Conn) net.Conn { return NewConn(conn, inj) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Load is gated: its multi-write framing must never lose a chunk.
	keys := distgen.UniqueKeys(distgen.NewUniform(72, 0, 1<<30), 400)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i) + 1
	}
	c.Load(keys, vals)

	found := 0
	for i := 0; i < 90; i++ {
		res, err := c.DoErr(workload.Op{Type: workload.Get, Key: keys[i%len(keys)]})
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if res.Found {
			found++
		}
	}
	// Batched ops ride the same retry path (retry only before any
	// response frame has been consumed).
	ops := make([]workload.Op, 12)
	out := make([]core.OpResult, len(ops))
	for i := range ops {
		ops[i] = workload.Op{Type: workload.Get, Key: keys[i]}
	}
	for b := 0; b < 5; b++ {
		c.DoBatch(ops, out)
		for i, r := range out {
			if !r.Found {
				t.Fatalf("batch %d op %d: loaded key not found", b, i)
			}
		}
	}

	if err := c.Err(); err != nil {
		t.Fatalf("client latched error: %v", err)
	}
	if found != 90 {
		t.Fatalf("found %d/90 loaded keys", found)
	}
	rep := inj.Report()
	if rep.WireDrops == 0 {
		t.Fatal("drop window never fired")
	}
	if rep.WireDelays == 0 {
		t.Fatal("delay window never fired")
	}
	if c.Retries() == 0 {
		t.Fatal("client recovered dropped frames without retrying?")
	}
}
