// Package pager implements the disk-backed storage tier underneath the
// benchmark's disk-resident SUTs: a slotted-page file format (fixed 4 KiB
// pages with checksummed headers and a free-list) behind a buffer pool
// with pluggable eviction policies and per-pool work counters.
//
// The design follows the classic textbook pager:
//
//   - Page 0 and 1 are alternating meta pages (epoch-stamped); open picks
//     the valid one with the higher epoch, so a torn meta write falls back
//     to the previous checkpoint instead of corrupting the file.
//   - Every page carries a CRC32-C checksum over its contents; reads verify
//     it, so torn data pages are detected, never silently served.
//   - Durability is checkpoint-based: Pool.Checkpoint flushes dirty pages,
//     fsyncs, then publishes the new meta (roots, free-list head, page
//     count) with a second fsync. A crash between checkpoints reverts the
//     file to the last published state — the free-list and root pointers
//     can never disagree with the data they describe.
//
// Everything above the backend is deterministic: given the same sequence
// of operations, page allocation, eviction decisions, and counters are
// identical — the property the virtual-clock benchmark requires.
package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// PageSize is the fixed page size. 4 KiB matches the common OS page and
// SSD sector granularity the cost model prices.
const PageSize = 4096

// PageID identifies a page by its slot in the file. 0 and 1 are the meta
// pages; user pages start at 2. 0 doubles as the nil page reference in
// chain pointers (a real chain never points at a meta page).
type PageID uint32

// NilPage is the null page reference.
const NilPage PageID = 0

// Page header layout (bytes):
//
//	 0..3   checksum   crc32c over bytes [4, PageSize)
//	 4..7   pageID     self-reference, catches misdirected writes
//	 8      type       PageType
//	 9      flags      (reserved)
//	10..11  nslots     slot count
//	12..13  cellStart  offset of the lowest cell byte (cells grow down)
//	14..15  reserved
//	16..23  next       chain pointer (free-list, leaf sibling, catalog)
//	24..    slot directory (4 bytes per slot), then free space, then cells
const (
	offChecksum  = 0
	offPageID    = 4
	offType      = 8
	offNSlots    = 10
	offCellStart = 12
	offNext      = 16
	// HeaderSize is where the slot directory begins.
	HeaderSize = 24
)

// PageType tags what a page stores. The pager itself only interprets Free
// and Meta; the rest are for the structures built on top.
type PageType uint8

// Page types.
const (
	TypeFree    PageType = 0
	TypeMeta    PageType = 1
	TypeLeaf    PageType = 2 // B+ tree leaf
	TypeInner   PageType = 3 // B+ tree inner node
	TypeRun     PageType = 4 // LSM sorted-run block
	TypeCatalog PageType = 5 // LSM run directory
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Page is one in-memory page image. Structures edit it through the slotted
// accessors (or raw via Bytes) and the pool checksums it on write-back.
type Page struct {
	buf [PageSize]byte
}

// Bytes exposes the raw page image (checksum and header included).
func (p *Page) Bytes() []byte { return p.buf[:] }

// Reset clears the page to an empty slotted page of the given type and id.
func (p *Page) Reset(id PageID, t PageType) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	binary.LittleEndian.PutUint32(p.buf[offPageID:], uint32(id))
	p.buf[offType] = byte(t)
	p.setNSlots(0)
	p.setCellStart(PageSize)
}

// ID returns the page's self-reference.
func (p *Page) ID() PageID {
	return PageID(binary.LittleEndian.Uint32(p.buf[offPageID:]))
}

// Type returns the page type tag.
func (p *Page) Type() PageType { return PageType(p.buf[offType]) }

// SetType updates the page type tag.
func (p *Page) SetType(t PageType) { p.buf[offType] = byte(t) }

// Next returns the chain pointer.
func (p *Page) Next() PageID {
	return PageID(binary.LittleEndian.Uint64(p.buf[offNext:]))
}

// SetNext updates the chain pointer.
func (p *Page) SetNext(id PageID) {
	binary.LittleEndian.PutUint64(p.buf[offNext:], uint64(id))
}

func (p *Page) nSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[offNSlots:]))
}

func (p *Page) setNSlots(n int) {
	binary.LittleEndian.PutUint16(p.buf[offNSlots:], uint16(n))
}

func (p *Page) cellStart() int {
	return int(binary.LittleEndian.Uint16(p.buf[offCellStart:]))
}

func (p *Page) setCellStart(v int) {
	// PageSize itself (empty page) wraps to 0 in uint16; store 0 as the
	// sentinel for "no cells yet" and decode it back.
	binary.LittleEndian.PutUint16(p.buf[offCellStart:], uint16(v%PageSize))
}

func (p *Page) cellStartDecoded() int {
	v := p.cellStart()
	if v == 0 {
		return PageSize
	}
	return v
}

// slot directory entry i: offset uint16, length uint16.
func (p *Page) slotPos(i int) int { return HeaderSize + 4*i }

func (p *Page) slot(i int) (off, ln int) {
	sp := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.buf[sp:])),
		int(binary.LittleEndian.Uint16(p.buf[sp+2:]))
}

func (p *Page) setSlot(i, off, ln int) {
	sp := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.buf[sp:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[sp+2:], uint16(ln))
}

// NumCells returns the number of cells in the page.
func (p *Page) NumCells() int { return p.nSlots() }

// Cell returns the i-th cell's bytes (aliasing the page image).
func (p *Page) Cell(i int) []byte {
	off, ln := p.slot(i)
	return p.buf[off : off+ln]
}

// FreeSpace returns the cell bytes one more Insert can hold, with its slot
// directory entry already accounted for. Fragmented space (from deleted
// cells) counts: Insert compacts when the contiguous region runs short.
func (p *Page) FreeSpace() int {
	n := p.nSlots()
	used := 0
	for i := 0; i < n; i++ {
		_, ln := p.slot(i)
		used += ln
	}
	free := PageSize - HeaderSize - 4*n - used - 4
	if free < 0 {
		return 0
	}
	return free
}

// contiguous returns the bytes between the slot directory and the lowest
// cell — the space a new cell's bytes must fit into without compaction.
func (p *Page) contiguous() int {
	return p.cellStartDecoded() - (HeaderSize + 4*p.nSlots())
}

// Insert places cell at slot index i (shifting later slots up), keeping
// the caller's ordering. Returns false when the page cannot hold it.
func (p *Page) Insert(i int, cell []byte) bool {
	n := p.nSlots()
	if i < 0 || i > n {
		panic("pager: insert slot out of range")
	}
	if len(cell) > p.FreeSpace() {
		return false
	}
	if p.contiguous() < len(cell)+4 {
		p.compact()
	}
	// Claim cell space from the bottom.
	start := p.cellStartDecoded() - len(cell)
	copy(p.buf[start:], cell)
	p.setCellStart(start)
	// Shift slots [i, n) up one.
	copy(p.buf[p.slotPos(i+1):p.slotPos(n+1)], p.buf[p.slotPos(i):p.slotPos(n)])
	p.setSlot(i, start, len(cell))
	p.setNSlots(n + 1)
	return true
}

// Delete removes slot i; the cell bytes become reclaimable fragmentation.
func (p *Page) Delete(i int) {
	n := p.nSlots()
	if i < 0 || i >= n {
		panic("pager: delete slot out of range")
	}
	copy(p.buf[p.slotPos(i):p.slotPos(n-1)], p.buf[p.slotPos(i+1):p.slotPos(n)])
	p.setNSlots(n - 1)
	if n-1 == 0 {
		p.setCellStart(PageSize)
	}
}

// SetCell overwrites cell i in place; the new cell must be the same length
// (the fixed-size records of the disk SUTs always are).
func (p *Page) SetCell(i int, cell []byte) {
	off, ln := p.slot(i)
	if ln != len(cell) {
		panic("pager: SetCell length mismatch")
	}
	copy(p.buf[off:off+ln], cell)
}

// compact rewrites cells top-down to squeeze out fragmentation. Slot order
// is preserved; offsets change.
func (p *Page) compact() {
	var tmp [PageSize]byte
	n := p.nSlots()
	bottom := PageSize
	for i := 0; i < n; i++ {
		off, ln := p.slot(i)
		bottom -= ln
		copy(tmp[bottom:], p.buf[off:off+ln])
		p.setSlot(i, bottom, ln)
	}
	copy(p.buf[bottom:], tmp[bottom:])
	p.setCellStart(bottom)
}

// seal stamps the checksum for writing.
func (p *Page) seal() {
	sum := crc32.Checksum(p.buf[offPageID:], crcTable)
	binary.LittleEndian.PutUint32(p.buf[offChecksum:], sum)
}

// verify checks the stored checksum and self-reference against id.
func (p *Page) verify(id PageID) error {
	want := binary.LittleEndian.Uint32(p.buf[offChecksum:])
	got := crc32.Checksum(p.buf[offPageID:], crcTable)
	if want != got {
		return fmt.Errorf("pager: page %d checksum mismatch (stored %08x, computed %08x)", id, want, got)
	}
	if self := p.ID(); self != id {
		return fmt.Errorf("pager: page %d carries self-reference %d (misdirected write)", id, self)
	}
	return nil
}
