package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

func memFile(t *testing.T) *File {
	t.Helper()
	f, err := Create(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSlottedPageInsertDelete(t *testing.T) {
	var p Page
	p.Reset(7, TypeLeaf)
	if p.ID() != 7 || p.Type() != TypeLeaf || p.NumCells() != 0 {
		t.Fatalf("fresh page: id=%d type=%d cells=%d", p.ID(), p.Type(), p.NumCells())
	}
	// Insert cells in slot order with distinct contents.
	for i := 0; i < 10; i++ {
		cell := []byte(fmt.Sprintf("cell-%02d", i))
		if !p.Insert(i, cell) {
			t.Fatalf("insert %d failed with %d free", i, p.FreeSpace())
		}
	}
	// Insert in the middle shifts slots.
	if !p.Insert(5, []byte("mid")) {
		t.Fatal("mid insert failed")
	}
	if got := string(p.Cell(5)); got != "mid" {
		t.Fatalf("cell 5 = %q", got)
	}
	if got := string(p.Cell(6)); got != "cell-05" {
		t.Fatalf("cell 6 = %q", got)
	}
	p.Delete(5)
	if got := string(p.Cell(5)); got != "cell-05" {
		t.Fatalf("after delete, cell 5 = %q", got)
	}
	if p.NumCells() != 10 {
		t.Fatalf("cells = %d", p.NumCells())
	}
}

func TestSlottedPageFillAndCompact(t *testing.T) {
	var p Page
	p.Reset(3, TypeRun)
	cell := make([]byte, 16)
	n := 0
	for p.Insert(p.NumCells(), cell) {
		n++
	}
	want := (PageSize - HeaderSize) / 20 // 16 bytes cell + 4 bytes slot
	if n != want {
		t.Fatalf("fixed 16-byte cells per page = %d, want %d", n, want)
	}
	// Delete half (every other), then the freed space must be reusable
	// via compaction even though it is fragmented.
	for i := n - 1; i >= 0; i -= 2 {
		p.Delete(i)
	}
	refill := 0
	for p.Insert(p.NumCells(), cell) {
		refill++
	}
	if refill < n/2-1 {
		t.Fatalf("refilled only %d of ~%d freed slots", refill, n/2)
	}
}

func TestPageChecksumRoundTrip(t *testing.T) {
	f := memFile(t)
	pool := NewPool(f, PoolKnobs{Pages: 8})
	pg, id, err := pool.Alloc(TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	pg.Insert(0, []byte("hello"))
	pool.Unpin(id, true)
	if err := pool.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Reopen and read it back through a fresh pool.
	f2, err := Open(f.b)
	if err != nil {
		t.Fatal(err)
	}
	pool2 := NewPool(f2, PoolKnobs{Pages: 8})
	got, err := pool2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Cell(0)) != "hello" {
		t.Fatalf("cell = %q", got.Cell(0))
	}
	pool2.Unpin(id, false)
}

func TestChecksumRejectionOnReload(t *testing.T) {
	b := NewMemBackend()
	f, err := Create(b)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(f, PoolKnobs{Pages: 8})
	pg, id, err := pool.Alloc(TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	pg.Insert(0, []byte("payload"))
	pool.Unpin(id, true)
	if err := pool.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte behind the pager's back.
	b.data[int64(id)*PageSize+HeaderSize+100] ^= 0xFF

	f2, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	pool2 := NewPool(f2, PoolKnobs{Pages: 8})
	if _, err := pool2.Get(id); err == nil {
		t.Fatal("corrupted page served without a checksum error")
	}
}

func TestMisdirectedWriteDetected(t *testing.T) {
	b := NewMemBackend()
	f, err := Create(b)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(f, PoolKnobs{Pages: 8})
	var ids []PageID
	for i := 0; i < 2; i++ {
		pg, id, err := pool.Alloc(TypeLeaf)
		if err != nil {
			t.Fatal(err)
		}
		pg.Insert(0, []byte{byte(i)})
		pool.Unpin(id, true)
		ids = append(ids, id)
	}
	if err := pool.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Copy page ids[0]'s bytes over ids[1]: checksum is valid but the
	// self-reference betrays the misdirected write.
	src := make([]byte, PageSize)
	copy(src, b.data[int64(ids[0])*PageSize:])
	copy(b.data[int64(ids[1])*PageSize:], src)

	f2, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	pool2 := NewPool(f2, PoolKnobs{Pages: 8})
	if _, err := pool2.Get(ids[1]); err == nil {
		t.Fatal("misdirected page served without error")
	}
}

func TestTornMetaFallsBackToOlderCheckpoint(t *testing.T) {
	b := NewMemBackend()
	f, err := Create(b)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(f, PoolKnobs{Pages: 8})
	pg, id, err := pool.Alloc(TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	pg.Insert(0, []byte("v1"))
	pool.Unpin(id, true)
	f.SetRoot(0, id)
	if err := pool.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	epoch1 := f.published.epoch

	// Second checkpoint writes the other meta slot; tear it mid-write.
	pg2, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	pg2.SetCell(0, []byte("v2"))
	pool.Unpin(id, true)
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	slot := PageID((epoch1 + 1) % 2)
	f.working.epoch = epoch1 + 1
	if err := f.writeMeta(slot, f.working); err != nil {
		t.Fatal(err)
	}
	// Tear: zero the first half of the just-written meta page (checksum,
	// magic, and epoch all land there).
	off := int64(slot) * PageSize
	for i := int64(0); i < PageSize/2; i++ {
		b.data[off+i] = 0
	}

	f2, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	if f2.published.epoch != epoch1 {
		t.Fatalf("opened epoch %d, want fallback to %d", f2.published.epoch, epoch1)
	}
	if f2.Root(0) != id {
		t.Fatalf("root = %d, want %d", f2.Root(0), id)
	}
}

func TestTornDataPageOnWrite(t *testing.T) {
	// A torn page write (power cut mid-write) must surface as an error on
	// reload, not as silently wrong data. Uses the FileBackend write hook
	// — the same failure-injection pattern as service.Store's fsync hook.
	dir := t.TempDir()
	fb, err := NewFileBackend(filepath.Join(dir, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Create(fb)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(f, PoolKnobs{Pages: 8})
	pg, id, err := pool.Alloc(TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	pg.Insert(0, []byte("durable"))
	pool.Unpin(id, true)
	if err := pool.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Now rewrite the page, but the write tears half-way and the machine
	// "dies" (we simply stop using the handles).
	torn := errors.New("simulated power cut")
	fb.WriteHook = func(off int64, p []byte) (int, error) {
		if off == int64(id)*PageSize {
			return PageSize / 3, torn
		}
		return len(p), nil
	}
	pg2, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	pg2.SetCell(0, []byte("mutated"))
	pool.Unpin(id, true)
	if err := pool.Flush(); !errors.Is(err, torn) {
		t.Fatalf("flush error = %v, want the injected tear", err)
	}
	fb.WriteHook = nil

	// Reload: the torn page must be rejected by its checksum.
	fb2, err := NewFileBackend(filepath.Join(dir, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	f2, err := Open(fb2)
	if err != nil {
		t.Fatal(err)
	}
	pool2 := NewPool(f2, PoolKnobs{Pages: 8})
	if _, err := pool2.Get(id); err == nil {
		t.Fatal("torn page served without a checksum error")
	}
}

func TestAllocFreeReuseAcrossCheckpoint(t *testing.T) {
	f := memFile(t)
	pool := NewPool(f, PoolKnobs{Pages: 16})
	var ids []PageID
	for i := 0; i < 5; i++ {
		_, id, err := pool.Alloc(TypeRun)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, true)
		ids = append(ids, id)
	}
	if err := pool.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := pool.Free(ids[3]); err != nil {
		t.Fatal(err)
	}
	// Quarantine: freed pages must NOT be reused before a checkpoint.
	_, id, err := pool.Alloc(TypeRun)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id, true)
	if id == ids[1] || id == ids[3] {
		t.Fatalf("quarantined page %d reused before checkpoint", id)
	}
	if err := pool.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Now the lowest freed page is the next allocation.
	_, id2, err := pool.Alloc(TypeRun)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id2, true)
	if id2 != ids[1] {
		t.Fatalf("alloc after checkpoint = %d, want reused %d", id2, ids[1])
	}
}

func TestCheckConsistency(t *testing.T) {
	f := memFile(t)
	pool := NewPool(f, PoolKnobs{Pages: 16})
	var ids []PageID
	for i := 0; i < 4; i++ {
		_, id, err := pool.Alloc(TypeRun)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, true)
		ids = append(ids, id)
	}
	if err := pool.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	reachable := []PageID{ids[0], ids[1], ids[3]}
	if err := pool.CheckConsistency(reachable); err != nil {
		t.Fatal(err)
	}
	// An orphan (reachable set missing a live page) must be caught.
	if err := pool.CheckConsistency(reachable[:2]); err == nil {
		t.Fatal("orphan page not detected")
	}
	// A page both free and reachable must be caught.
	if err := pool.CheckConsistency(append(reachable, ids[2])); err == nil {
		t.Fatal("free+reachable overlap not detected")
	}
}

func TestRebuildFreeList(t *testing.T) {
	f := memFile(t)
	pool := NewPool(f, PoolKnobs{Pages: 16})
	for i := 0; i < 6; i++ {
		_, id, err := pool.Alloc(TypeRun)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, true)
	}
	// Pretend only pages 3 and 5 survived (e.g. reread from a catalog).
	pool.RebuildFreeList([]PageID{3, 5})
	if err := pool.CheckConsistency([]PageID{3, 5}); err != nil {
		t.Fatal(err)
	}
	// The rebuilt list hands out the lowest free page first.
	_, id, err := pool.Alloc(TypeRun)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id, true)
	if id != 2 {
		t.Fatalf("first alloc after rebuild = %d, want 2", id)
	}
}

func TestOpenRejectsGarbageFile(t *testing.T) {
	b := NewMemBackend()
	junk := make([]byte, PageSize*2)
	for i := range junk {
		junk[i] = byte(i * 31)
	}
	if _, err := b.WriteAt(junk, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(b); err == nil {
		t.Fatal("opened a garbage file")
	}
}

func TestPoolCountersAndPolicies(t *testing.T) {
	for _, policy := range []string{"lru", "clock", "2q"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			f := memFile(t)
			pool := NewPool(f, PoolKnobs{Pages: 8, Policy: policy})
			var ids []PageID
			for i := 0; i < 32; i++ {
				pg, id, err := pool.Alloc(TypeRun)
				if err != nil {
					t.Fatal(err)
				}
				var cell [16]byte
				binary.LittleEndian.PutUint64(cell[:], uint64(i))
				pg.Insert(0, cell[:])
				pool.Unpin(id, true)
				ids = append(ids, id)
			}
			if err := pool.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// Random-ish but deterministic access pattern.
			for i := 0; i < 200; i++ {
				id := ids[(i*7)%len(ids)]
				pg, err := pool.Get(id)
				if err != nil {
					t.Fatal(err)
				}
				if got := binary.LittleEndian.Uint64(pg.Cell(0)); got != uint64((int(id)-2)%32) {
					t.Fatalf("page %d cell = %d", id, got)
				}
				pool.Unpin(id, false)
			}
			c := pool.Counters()
			if c.Misses == 0 || c.Evictions == 0 {
				t.Fatalf("%s: no pressure exercised: %+v", policy, c)
			}
			if c.Hits+c.Misses < 200 {
				t.Fatalf("%s: accounting lost requests: %+v", policy, c)
			}
			if c.PagesRead != c.Misses {
				t.Fatalf("%s: reads %d != misses %d", policy, c.PagesRead, c.Misses)
			}
		})
	}
}

func TestPoolDeterminism(t *testing.T) {
	// Identical op sequences must produce identical counters — the
	// property the byte-identical virtual-clock results rest on.
	run := func(policy string) Counters {
		f, err := Create(NewMemBackend())
		if err != nil {
			t.Fatal(err)
		}
		pool := NewPool(f, PoolKnobs{Pages: 12, Policy: policy})
		var ids []PageID
		for i := 0; i < 64; i++ {
			_, id, err := pool.Alloc(TypeRun)
			if err != nil {
				t.Fatal(err)
			}
			pool.Unpin(id, true)
			ids = append(ids, id)
		}
		for i := 0; i < 500; i++ {
			id := ids[(i*i*31+i)%len(ids)]
			if _, err := pool.Get(id); err != nil {
				t.Fatal(err)
			}
			pool.Unpin(id, i%3 == 0)
		}
		if err := pool.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		return pool.Counters()
	}
	for _, policy := range []string{"lru", "clock", "2q"} {
		a, b := run(policy), run(policy)
		if a != b {
			t.Fatalf("%s: counters diverged across identical runs:\n%+v\n%+v", policy, a, b)
		}
	}
}

func TestPoliciesDifferOnSkewedAccess(t *testing.T) {
	// A hot set inside probation-polluting scan traffic: policies must
	// produce different hit ratios (the knob is worth tuning).
	run := func(policy string) float64 {
		f, err := Create(NewMemBackend())
		if err != nil {
			t.Fatal(err)
		}
		pool := NewPool(f, PoolKnobs{Pages: 16, Policy: policy})
		var ids []PageID
		for i := 0; i < 128; i++ {
			_, id, err := pool.Alloc(TypeRun)
			if err != nil {
				t.Fatal(err)
			}
			pool.Unpin(id, true)
			ids = append(ids, id)
		}
		for i := 0; i < 4000; i++ {
			var id PageID
			if i%2 == 0 {
				id = ids[(i/2)%12] // hot set: 12 pages, re-touched constantly
			} else {
				id = ids[12+(i*13)%116] // cold sweep polluting the cache
			}
			if _, err := pool.Get(id); err != nil {
				t.Fatal(err)
			}
			pool.Unpin(id, false)
		}
		return pool.Counters().HitRatio()
	}
	ratios := map[string]float64{}
	for _, p := range []string{"lru", "clock", "2q"} {
		ratios[p] = run(p)
	}
	lo, hi := 1.0, 0.0
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi-lo < 0.01 {
		t.Fatalf("policies indistinguishable on skewed access: %+v", ratios)
	}
}

func TestPoolExhaustion(t *testing.T) {
	f := memFile(t)
	pool := NewPool(f, PoolKnobs{Pages: 8})
	for i := 0; i < 8; i++ {
		_, _, err := pool.Alloc(TypeRun)
		if err != nil {
			t.Fatal(err)
		}
		// Deliberately keep pinned.
	}
	if _, _, err := pool.Alloc(TypeRun); err == nil {
		t.Fatal("alloc succeeded with every frame pinned")
	}
}

func TestKnobsValidateAndSpace(t *testing.T) {
	k := PoolKnobs{Pages: 1, Policy: "bogus"}.Validate()
	if k.Pages != 8 || k.Policy != "lru" {
		t.Fatalf("validated = %+v", k)
	}
	sp := PoolSpace()
	if len(sp) != 9 {
		t.Fatalf("pool space = %d points", len(sp))
	}
	seen := map[string]bool{}
	for _, k := range sp {
		if seen[k.String()] {
			t.Fatalf("duplicate point %s", k)
		}
		seen[k.String()] = true
	}
}
