package pager

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Backend is the byte store a page file sits on. *os.File satisfies the
// I/O surface via FileBackend; MemBackend keeps everything in memory for
// the deterministic virtual-clock SUTs (same format, same counters, no
// filesystem dependence).
type Backend interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
	Close() error
}

// MemBackend is an in-memory Backend.
type MemBackend struct {
	data []byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// ReadAt implements Backend.
func (m *MemBackend) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

// WriteAt implements Backend.
func (m *MemBackend) WriteAt(p []byte, off int64) (int, error) {
	if need := off + int64(len(p)); need > int64(len(m.data)) {
		grown := make([]byte, need)
		copy(grown, m.data)
		m.data = grown
	}
	return copy(m.data[off:], p), nil
}

// Sync implements Backend (no-op).
func (m *MemBackend) Sync() error { return nil }

// Truncate implements Backend.
func (m *MemBackend) Truncate(size int64) error {
	if size < int64(len(m.data)) {
		m.data = m.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, m.data)
		m.data = grown
	}
	return nil
}

// Size implements Backend.
func (m *MemBackend) Size() (int64, error) { return int64(len(m.data)), nil }

// Close implements Backend (no-op).
func (m *MemBackend) Close() error { return nil }

// FileBackend adapts *os.File with failure hooks for the crash-safety
// suite: WriteHook may truncate or fail a page write (torn page), SyncHook
// may fail an fsync (mirroring the hook pattern of service.Store).
type FileBackend struct {
	F *os.File
	// WriteHook, when set, intercepts every WriteAt: it returns how many
	// bytes of p to actually write and an error to report. nil = write all.
	WriteHook func(off int64, p []byte) (int, error)
	// SyncHook, when set, replaces fsync.
	SyncHook func(*os.File) error
}

// NewFileBackend opens (or creates) the file at path.
func NewFileBackend(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	return &FileBackend{F: f}, nil
}

// ReadAt implements Backend.
func (b *FileBackend) ReadAt(p []byte, off int64) (int, error) { return b.F.ReadAt(p, off) }

// WriteAt implements Backend.
func (b *FileBackend) WriteAt(p []byte, off int64) (int, error) {
	if b.WriteHook != nil {
		n, err := b.WriteHook(off, p)
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if _, werr := b.F.WriteAt(p[:n], off); werr != nil {
				return 0, werr
			}
		}
		if err != nil {
			return n, err
		}
		if n < len(p) {
			return n, io.ErrShortWrite
		}
		return n, nil
	}
	return b.F.WriteAt(p, off)
}

// Sync implements Backend.
func (b *FileBackend) Sync() error {
	if b.SyncHook != nil {
		return b.SyncHook(b.F)
	}
	return b.F.Sync()
}

// Truncate implements Backend.
func (b *FileBackend) Truncate(size int64) error { return b.F.Truncate(size) }

// Size implements Backend.
func (b *FileBackend) Size() (int64, error) {
	st, err := b.F.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close implements Backend.
func (b *FileBackend) Close() error { return b.F.Close() }

// metaMagic identifies a pager file ("LSPG" little-endian).
const metaMagic = 0x4750534C

// NumRoots is how many root pointers the meta page carries (the B+ tree
// uses one for its root, the LSM one for its catalog head).
const NumRoots = 4

// meta is the deserialized meta-page payload. The free-list is
// deliberately NOT persisted: it is rebuilt on open by a reachability
// sweep (see Pool.RebuildFreeList), which makes "free-list disagrees with
// the data" impossible by construction after any crash.
type meta struct {
	epoch     uint64
	pageCount uint32 // pages in the file, meta pages included
	roots     [NumRoots]PageID
}

// File is a page file: fixed-size pages over a Backend with checksummed
// reads/writes and dual epoch-stamped meta pages. File does raw page I/O
// only — callers go through a Pool, which caches, counts, and owns the
// free-list.
type File struct {
	b Backend
	// published is the last checkpointed meta; working is the in-memory
	// state (allocations, root updates) the next checkpoint publishes.
	published meta
	working   meta
}

// Create initializes a fresh page file on backend (truncating whatever is
// there) and publishes an empty meta into both slots.
func Create(b Backend) (*File, error) {
	if err := b.Truncate(0); err != nil {
		return nil, fmt.Errorf("pager: create: %w", err)
	}
	f := &File{b: b}
	f.working = meta{epoch: 1, pageCount: 2}
	if err := f.writeMeta(0, f.working); err != nil {
		return nil, err
	}
	if err := f.writeMeta(1, f.working); err != nil {
		return nil, err
	}
	if err := b.Sync(); err != nil {
		return nil, fmt.Errorf("pager: create sync: %w", err)
	}
	f.published = f.working
	return f, nil
}

// Open loads an existing page file, picking the newer valid meta page. A
// torn meta write (crash mid-checkpoint) falls back to the older epoch;
// two invalid metas mean the file is not a pager file or is corrupt beyond
// recovery, and Open fails loudly.
func Open(b Backend) (*File, error) {
	f := &File{b: b}
	var best *meta
	for slot := PageID(0); slot <= 1; slot++ {
		m, err := f.readMeta(slot)
		if err != nil {
			continue // torn or foreign; try the other slot
		}
		if best == nil || m.epoch > best.epoch {
			mm := m
			best = &mm
		}
	}
	if best == nil {
		return nil, fmt.Errorf("pager: no valid meta page (not a pager file, or both checkpoints torn)")
	}
	f.published = *best
	f.working = *best
	// Pages written after the published checkpoint are unreachable by
	// definition; truncating keeps Size in step with pageCount.
	if sz, err := b.Size(); err == nil && sz > int64(best.pageCount)*PageSize {
		if err := b.Truncate(int64(best.pageCount) * PageSize); err != nil {
			return nil, fmt.Errorf("pager: open truncate: %w", err)
		}
	}
	return f, nil
}

// writeMeta serializes m into meta slot (page 0 or 1).
func (f *File) writeMeta(slot PageID, m meta) error {
	var p Page
	p.Reset(slot, TypeMeta)
	pl := p.buf[HeaderSize:]
	binary.LittleEndian.PutUint32(pl[0:], metaMagic)
	binary.LittleEndian.PutUint64(pl[4:], m.epoch)
	binary.LittleEndian.PutUint32(pl[12:], m.pageCount)
	for i, r := range m.roots {
		binary.LittleEndian.PutUint32(pl[16+4*i:], uint32(r))
	}
	return f.WritePage(slot, &p)
}

// readMeta loads and validates meta slot.
func (f *File) readMeta(slot PageID) (meta, error) {
	var p Page
	if err := f.ReadPage(slot, &p); err != nil {
		return meta{}, err
	}
	if p.Type() != TypeMeta {
		return meta{}, fmt.Errorf("pager: page %d is not a meta page", slot)
	}
	pl := p.buf[HeaderSize:]
	if binary.LittleEndian.Uint32(pl[0:]) != metaMagic {
		return meta{}, fmt.Errorf("pager: bad magic in meta page %d", slot)
	}
	m := meta{
		epoch:     binary.LittleEndian.Uint64(pl[4:]),
		pageCount: binary.LittleEndian.Uint32(pl[12:]),
	}
	for i := range m.roots {
		m.roots[i] = PageID(binary.LittleEndian.Uint32(pl[16+4*i:]))
	}
	return m, nil
}

// ReadPage reads and verifies page id into p.
func (f *File) ReadPage(id PageID, p *Page) error {
	if _, err := f.b.ReadAt(p.buf[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	return p.verify(id)
}

// WritePage seals (checksums) and writes page p at id.
func (f *File) WritePage(id PageID, p *Page) error {
	p.seal()
	if _, err := f.b.WriteAt(p.buf[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	return nil
}

// Root returns working root pointer i.
func (f *File) Root(i int) PageID { return f.working.roots[i] }

// SetRoot updates working root pointer i; it becomes durable at the next
// checkpoint.
func (f *File) SetRoot(i int, id PageID) { f.working.roots[i] = id }

// PageCount returns the working page count (meta pages included).
func (f *File) PageCount() uint32 { return f.working.pageCount }

// Sync flushes the backend.
func (f *File) Sync() error { return f.b.Sync() }

// Close closes the backend without checkpointing.
func (f *File) Close() error { return f.b.Close() }

// Checkpoint publishes the working meta. Callers must have flushed and
// synced all data pages first (Pool.Checkpoint does). The meta lands in
// the slot not holding the currently published epoch, then is synced, so
// the old checkpoint stays intact until the new one is fully durable.
func (f *File) Checkpoint() error {
	f.working.epoch = f.published.epoch + 1
	slot := PageID(f.working.epoch % 2)
	if err := f.writeMeta(slot, f.working); err != nil {
		return err
	}
	if err := f.b.Sync(); err != nil {
		return fmt.Errorf("pager: checkpoint sync: %w", err)
	}
	f.published = f.working
	return nil
}
