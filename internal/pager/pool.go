package pager

import (
	"fmt"
	"sort"
)

// PoolKnobs configures a buffer pool — the new tuner target: capacity and
// eviction policy are exactly the kind of knob an auto-tuner searches and
// a DBA sets from rules of thumb.
type PoolKnobs struct {
	// Pages is the pool capacity in frames.
	Pages int
	// Policy selects the eviction policy: "lru", "clock", or "2q".
	Policy string
}

// DefaultPoolKnobs returns the untuned stock pool: modest capacity, LRU.
func DefaultPoolKnobs() PoolKnobs { return PoolKnobs{Pages: 64, Policy: "lru"} }

// Validate normalizes out-of-range values. The minimum capacity (8) keeps
// room for a full B+ tree root-to-leaf path plus split scratch pages.
func (k PoolKnobs) Validate() PoolKnobs {
	if k.Pages < 8 {
		k.Pages = 8
	}
	switch k.Policy {
	case "lru", "clock", "2q":
	default:
		k.Policy = "lru"
	}
	return k
}

// String renders the knobs compactly for reports.
func (k PoolKnobs) String() string {
	return fmt.Sprintf("pool{pages=%d policy=%s}", k.Pages, k.Policy)
}

// PoolSpace enumerates the discrete pool knob space the tuner searches:
// capacities spanning cache-starved to comfortable, times every policy.
func PoolSpace() []PoolKnobs {
	var out []PoolKnobs
	for _, pages := range []int{16, 64, 256} {
		for _, policy := range []string{"lru", "clock", "2q"} {
			out = append(out, PoolKnobs{Pages: pages, Policy: policy})
		}
	}
	return out
}

// Counters are the pool's work counters: the "why" behind a disk SUT's
// throughput. Reads/writes count page-sized I/Os against the backend;
// hits/misses count Get requests against the cache.
type Counters struct {
	Hits            uint64
	Misses          uint64
	Evictions       uint64
	DirtyWritebacks uint64
	Fsyncs          uint64
	PagesRead       uint64
	PagesWritten    uint64
}

// HitRatio returns hits / (hits + misses), 0 when the pool was never hit.
func (c Counters) HitRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Sub returns the counter delta c - prev (for per-op work accounting).
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Hits:            c.Hits - prev.Hits,
		Misses:          c.Misses - prev.Misses,
		Evictions:       c.Evictions - prev.Evictions,
		DirtyWritebacks: c.DirtyWritebacks - prev.DirtyWritebacks,
		Fsyncs:          c.Fsyncs - prev.Fsyncs,
		PagesRead:       c.PagesRead - prev.PagesRead,
		PagesWritten:    c.PagesWritten - prev.PagesWritten,
	}
}

// frame is one cached page.
type frame struct {
	page  Page
	pins  int
	dirty bool
}

// Pool is a buffer pool over a page File: fixed capacity, pluggable
// eviction, pin/unpin discipline, write-back caching. Like the SUTs it
// serves, it is not safe for concurrent use — the benchmark runner
// serializes operations per SUT.
//
// The pool also owns the free-list, with copy-on-write discipline: a page
// freed since the last checkpoint (freeNext) is quarantined — it may
// still be referenced by the published checkpoint, so reusing (and thus
// overwriting) it before the next checkpoint would make a crash
// unrecoverable. Checkpoint promotes the quarantine into the reusable set
// (freeNow). Structures that only ever write freshly allocated pages and
// flip a root at checkpoint (the disk LSM) are therefore crash-consistent
// end to end.
type Pool struct {
	f      *File
	knobs  PoolKnobs
	frames map[PageID]*frame
	policy evictPolicy
	st     Counters

	freeNow  []PageID // reusable, ascending (pop from the front)
	freeNext []PageID // freed since last checkpoint, quarantined
}

// NewPool wraps f with a buffer pool.
func NewPool(f *File, knobs PoolKnobs) *Pool {
	knobs = knobs.Validate()
	return &Pool{
		f:      f,
		knobs:  knobs,
		frames: make(map[PageID]*frame, knobs.Pages),
		policy: newPolicy(knobs),
	}
}

// File exposes the underlying page file (root pointers, meta state).
func (p *Pool) File() *File { return p.f }

// Knobs returns the active configuration.
func (p *Pool) Knobs() PoolKnobs { return p.knobs }

// Counters returns a snapshot of the work counters.
func (p *Pool) Counters() Counters { return p.st }

// Get returns page id pinned; the caller must Unpin it. A miss evicts (and
// writes back) per the pool's policy, reads the page from the file, and
// verifies its checksum.
func (p *Pool) Get(id PageID) (*Page, error) {
	if fr, ok := p.frames[id]; ok {
		p.st.Hits++
		fr.pins++
		p.policy.touch(id)
		return &fr.page, nil
	}
	p.st.Misses++
	if err := p.makeRoom(); err != nil {
		return nil, err
	}
	fr := &frame{pins: 1}
	if err := p.f.ReadPage(id, &fr.page); err != nil {
		return nil, err
	}
	p.st.PagesRead++
	p.frames[id] = fr
	p.policy.admit(id)
	return &fr.page, nil
}

// Unpin releases one pin on id; dirty marks the page modified so eviction
// and Flush write it back.
func (p *Pool) Unpin(id PageID, dirty bool) {
	fr, ok := p.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("pager: unpin of unpinned page %d", id))
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

// Alloc returns a fresh pinned page of the given type, reusing the lowest
// reusable free page when available and extending the file otherwise. The
// page is zeroed, typed, and dirty; the caller must Unpin it.
func (p *Pool) Alloc(t PageType) (*Page, PageID, error) {
	var id PageID
	if len(p.freeNow) > 0 {
		id = p.freeNow[0]
		p.freeNow = p.freeNow[1:]
	} else {
		id = PageID(p.f.working.pageCount)
		p.f.working.pageCount++
	}
	if err := p.makeRoom(); err != nil {
		return nil, NilPage, err
	}
	fr := &frame{pins: 1, dirty: true}
	fr.page.Reset(id, t)
	p.frames[id] = fr
	p.policy.admit(id)
	return &fr.page, id, nil
}

// Free returns page id to the free-list. The page must be unpinned; any
// cached dirty state is discarded (its content is dead). The page enters
// the quarantined set and becomes reusable only after the next checkpoint
// — until then the published checkpoint may still reference it, and its
// bytes must survive a crash.
func (p *Pool) Free(id PageID) error {
	if fr, ok := p.frames[id]; ok {
		if fr.pins > 0 {
			return fmt.Errorf("pager: freeing pinned page %d", id)
		}
		delete(p.frames, id)
		p.policy.remove(id)
	}
	p.freeNext = append(p.freeNext, id)
	return nil
}

// FreePages returns the free set (reusable + quarantined), ascending —
// the consistency-audit view of the free-list.
func (p *Pool) FreePages() []PageID {
	out := make([]PageID, 0, len(p.freeNow)+len(p.freeNext))
	out = append(out, p.freeNow...)
	out = append(out, p.freeNext...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RebuildFreeList derives the free-list from reachability: every
// allocatable page not in reachable becomes reusable. Structures call this
// after reopening a file — the free-list can then never disagree with the
// data that survived, regardless of where a crash landed.
func (p *Pool) RebuildFreeList(reachable []PageID) {
	live := make(map[PageID]bool, len(reachable))
	for _, id := range reachable {
		live[id] = true
	}
	p.freeNow = p.freeNow[:0]
	p.freeNext = p.freeNext[:0]
	for id := uint32(2); id < p.f.working.pageCount; id++ {
		if !live[PageID(id)] {
			p.freeNow = append(p.freeNow, PageID(id))
		}
	}
}

// CheckConsistency verifies that the free set and the reachable set
// partition the allocatable pages: no page is both, none is neither, and
// no reachable page is referenced twice. Test and recovery-audit helper.
func (p *Pool) CheckConsistency(reachable []PageID) error {
	const (
		live = 1
		free = 2
	)
	state := make(map[PageID]int, p.f.working.pageCount)
	for _, id := range reachable {
		if id < 2 || uint32(id) >= p.f.working.pageCount {
			return fmt.Errorf("pager: reachable page %d out of bounds [2,%d)", id, p.f.working.pageCount)
		}
		if state[id] == live {
			return fmt.Errorf("pager: page %d referenced twice", id)
		}
		state[id] = live
	}
	for _, id := range p.FreePages() {
		if state[id] == live {
			return fmt.Errorf("pager: page %d is both reachable and free", id)
		}
		if state[id] == free {
			return fmt.Errorf("pager: page %d is on the free-list twice", id)
		}
		state[id] = free
	}
	for id := uint32(2); id < p.f.working.pageCount; id++ {
		if state[PageID(id)] == 0 {
			return fmt.Errorf("pager: page %d is neither reachable nor free (orphan)", id)
		}
	}
	return nil
}

// DropCache writes back dirty pages and empties the pool — the cold-cache
// experiment hook. Fails if any page is pinned.
func (p *Pool) DropCache() error {
	for _, fr := range p.frames {
		if fr.pins > 0 {
			return fmt.Errorf("pager: dropping cache with pinned pages")
		}
	}
	if err := p.Flush(); err != nil {
		return err
	}
	// Sorted removal keeps policy-internal state (e.g. 2Q's ghost queue)
	// deterministic — map iteration order must never leak into results.
	ids := make([]PageID, 0, len(p.frames))
	for id := range p.frames {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p.policy.remove(id)
	}
	p.frames = make(map[PageID]*frame, p.knobs.Pages)
	return nil
}

// ResetCounters zeroes the work counters (measurement-window hook).
func (p *Pool) ResetCounters() { p.st = Counters{} }

// makeRoom evicts until a frame slot is available.
func (p *Pool) makeRoom() error {
	for len(p.frames) >= p.knobs.Pages {
		id, ok := p.policy.victim(func(id PageID) bool {
			fr := p.frames[id]
			return fr == nil || fr.pins > 0
		})
		if !ok {
			return fmt.Errorf("pager: pool of %d pages exhausted (all pinned)", p.knobs.Pages)
		}
		fr := p.frames[id]
		if fr.dirty {
			if err := p.f.WritePage(id, &fr.page); err != nil {
				return err
			}
			p.st.DirtyWritebacks++
			p.st.PagesWritten++
		}
		delete(p.frames, id)
		p.policy.remove(id)
		p.st.Evictions++
	}
	return nil
}

// Flush writes back every dirty page (in ascending page order, for
// deterministic backend write sequences) without evicting.
func (p *Pool) Flush() error {
	ids := make([]PageID, 0, len(p.frames))
	for id, fr := range p.frames {
		if fr.dirty {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fr := p.frames[id]
		if err := p.f.WritePage(id, &fr.page); err != nil {
			return err
		}
		fr.dirty = false
		p.st.DirtyWritebacks++
		p.st.PagesWritten++
	}
	return nil
}

// Checkpoint makes the current state durable: flush dirty pages, sync,
// publish the working meta (roots, page count), sync again, then release
// the free-page quarantine. After Checkpoint returns, a crash reverts the
// file to exactly this state.
func (p *Pool) Checkpoint() error {
	if err := p.Flush(); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("pager: checkpoint data sync: %w", err)
	}
	p.st.Fsyncs++
	if err := p.f.Checkpoint(); err != nil {
		return err
	}
	p.st.Fsyncs++
	p.st.PagesWritten++ // the meta page
	// Quarantined pages are now unreferenced by any durable state.
	p.freeNow = append(p.freeNow, p.freeNext...)
	p.freeNext = p.freeNext[:0]
	sort.Slice(p.freeNow, func(i, j int) bool { return p.freeNow[i] < p.freeNow[j] })
	return nil
}
