package pager

import "container/list"

// evictPolicy decides which resident page to evict. Implementations must
// be deterministic: victim order may depend only on the admit/touch/remove
// history, never on map iteration or randomness — the virtual-clock
// benchmark requires identical counters on identical op sequences.
type evictPolicy interface {
	// admit records a page entering the pool.
	admit(id PageID)
	// touch records a hit on a resident page.
	touch(id PageID)
	// victim returns the next page to evict, skipping pages for which
	// pinned reports true. ok is false when every candidate is pinned.
	victim(pinned func(PageID) bool) (id PageID, ok bool)
	// remove records a page leaving the pool (evicted or freed).
	remove(id PageID)
}

// newPolicy builds the policy named by knobs (already validated).
func newPolicy(k PoolKnobs) evictPolicy {
	switch k.Policy {
	case "clock":
		return newClock()
	case "2q":
		return newTwoQ(k.Pages)
	default:
		return newLRU()
	}
}

// ---------------------------------------------------------------- LRU --

// lruPolicy evicts the least recently used page.
type lruPolicy struct {
	ll  *list.List // front = most recent
	pos map[PageID]*list.Element
}

func newLRU() *lruPolicy {
	return &lruPolicy{ll: list.New(), pos: make(map[PageID]*list.Element)}
}

func (l *lruPolicy) admit(id PageID) { l.pos[id] = l.ll.PushFront(id) }

func (l *lruPolicy) touch(id PageID) {
	if e, ok := l.pos[id]; ok {
		l.ll.MoveToFront(e)
	}
}

func (l *lruPolicy) victim(pinned func(PageID) bool) (PageID, bool) {
	for e := l.ll.Back(); e != nil; e = e.Prev() {
		id := e.Value.(PageID)
		if !pinned(id) {
			return id, true
		}
	}
	return NilPage, false
}

func (l *lruPolicy) remove(id PageID) {
	if e, ok := l.pos[id]; ok {
		l.ll.Remove(e)
		delete(l.pos, id)
	}
}

// -------------------------------------------------------------- CLOCK --

// clockPolicy is the classic second-chance ring: a hit sets the page's
// reference bit; the hand sweeps, clearing bits, and evicts the first
// unreferenced page it meets. Cheaper bookkeeping than LRU, coarser
// recency — the gap the cold-cache experiment surfaces.
type clockPolicy struct {
	ring []PageID // insertion ring; NilPage marks holes
	ref  map[PageID]bool
	pos  map[PageID]int
	hand int
}

func newClock() *clockPolicy {
	return &clockPolicy{ref: make(map[PageID]bool), pos: make(map[PageID]int)}
}

func (c *clockPolicy) admit(id PageID) {
	// Reuse a hole if the hand is on one, else append. Holes are rare
	// (remove punches them, the sweep reuses them) and scanning from the
	// hand keeps placement deterministic.
	c.pos[id] = len(c.ring)
	c.ring = append(c.ring, id)
	c.ref[id] = false
}

func (c *clockPolicy) touch(id PageID) {
	if _, ok := c.pos[id]; ok {
		c.ref[id] = true
	}
}

func (c *clockPolicy) victim(pinned func(PageID) bool) (PageID, bool) {
	if len(c.ring) == 0 {
		return NilPage, false
	}
	// Two full sweeps suffice: the first clears reference bits, the
	// second must find an unreferenced unpinned page if one exists.
	for sweep := 0; sweep < 2*len(c.ring); sweep++ {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		id := c.ring[c.hand]
		if id == NilPage {
			c.compactHole()
			continue
		}
		if pinned(id) {
			c.hand++
			continue
		}
		if c.ref[id] {
			c.ref[id] = false
			c.hand++
			continue
		}
		return id, true
	}
	return NilPage, false
}

// compactHole removes the hole under the hand.
func (c *clockPolicy) compactHole() {
	c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
	for i := c.hand; i < len(c.ring); i++ {
		if c.ring[i] != NilPage {
			c.pos[c.ring[i]] = i
		}
	}
}

func (c *clockPolicy) remove(id PageID) {
	if i, ok := c.pos[id]; ok {
		c.ring[i] = NilPage // punch a hole; the sweep compacts it
		delete(c.pos, id)
		delete(c.ref, id)
	}
}

// ----------------------------------------------------------------- 2Q --

// twoQPolicy is full 2Q: first-touch pages enter a FIFO probation queue
// (A1in); a second touch promotes to the protected LRU (Am). Pages evicted
// out of probation leave a ghost entry (A1out, IDs only) — re-admission of
// a ghosted page goes straight to Am, which is how 2Q recognizes a hot
// page whose re-reference distance exceeds the probation queue. Victims
// come from A1in while it exceeds its share, else from Am's tail. Scan
// traffic (one-touch pages) therefore washes through probation without
// evicting the hot set — the property that separates it from plain LRU on
// mixed workloads.
type twoQPolicy struct {
	a1    *list.List // FIFO: front = newest
	am    *list.List // LRU: front = most recent
	ghost *list.List // A1out: front = newest ghost (IDs of pages evicted from a1)
	pos   map[PageID]*list.Element
	gpos  map[PageID]*list.Element
	in    map[PageID]bool // true: element lives in a1
	// a1Max is the probation share of the pool (capacity / 4, min 1);
	// ghostMax bounds A1out (2x capacity — ghosts are 4-byte IDs).
	a1Max    int
	ghostMax int
}

func newTwoQ(capacity int) *twoQPolicy {
	a1Max := capacity / 4
	if a1Max < 1 {
		a1Max = 1
	}
	return &twoQPolicy{
		a1:       list.New(),
		am:       list.New(),
		ghost:    list.New(),
		pos:      make(map[PageID]*list.Element),
		gpos:     make(map[PageID]*list.Element),
		in:       make(map[PageID]bool),
		a1Max:    a1Max,
		ghostMax: 2 * capacity,
	}
}

func (q *twoQPolicy) admit(id PageID) {
	if e, ok := q.gpos[id]; ok {
		// Seen recently: the page is hot with a long re-reference
		// distance. Skip probation, go straight to the protected queue.
		q.ghost.Remove(e)
		delete(q.gpos, id)
		q.pos[id] = q.am.PushFront(id)
		q.in[id] = false
		return
	}
	q.pos[id] = q.a1.PushFront(id)
	q.in[id] = true
}

func (q *twoQPolicy) touch(id PageID) {
	e, ok := q.pos[id]
	if !ok {
		return
	}
	if q.in[id] {
		q.a1.Remove(e)
		q.pos[id] = q.am.PushFront(id)
		q.in[id] = false
		return
	}
	q.am.MoveToFront(e)
}

func (q *twoQPolicy) victim(pinned func(PageID) bool) (PageID, bool) {
	scan := func(ll *list.List) (PageID, bool) {
		for e := ll.Back(); e != nil; e = e.Prev() {
			id := e.Value.(PageID)
			if !pinned(id) {
				return id, true
			}
		}
		return NilPage, false
	}
	if q.a1.Len() > q.a1Max {
		if id, ok := scan(q.a1); ok {
			return id, true
		}
	}
	if id, ok := scan(q.am); ok {
		return id, true
	}
	return scan(q.a1)
}

func (q *twoQPolicy) remove(id PageID) {
	e, ok := q.pos[id]
	if !ok {
		return
	}
	if q.in[id] {
		q.a1.Remove(e)
		// Leaving probation without a promotion: remember the page in
		// A1out so a prompt return is recognized as a hot page.
		q.gpos[id] = q.ghost.PushFront(id)
		for q.ghost.Len() > q.ghostMax {
			old := q.ghost.Back()
			q.ghost.Remove(old)
			delete(q.gpos, old.Value.(PageID))
		}
	} else {
		q.am.Remove(e)
	}
	delete(q.pos, id)
	delete(q.in, id)
}
