package optimizer

import (
	"strings"
	"testing"

	"repro/internal/card"
	"repro/internal/sqlmini"
	"repro/internal/stats"
)

// star builds a star-schema database: a small dimension table, a large
// fact table, and a medium table joining the fact.
func star() (dim, fact, detail *sqlmini.Table) {
	dim = sqlmini.NewTable("dim", "id", "kind")
	for i := uint64(0); i < 50; i++ {
		dim.Append(i, i%5)
	}
	fact = sqlmini.NewTable("fact", "fid", "dimid", "val")
	for i := uint64(0); i < 5000; i++ {
		fact.Append(i, i%50, i%997)
	}
	detail = sqlmini.NewTable("detail", "fid2", "note")
	for i := uint64(0); i < 2000; i++ {
		detail.Append(i, i%13)
	}
	return
}

func starQuery(dim, fact, detail *sqlmini.Table) Query {
	return Query{
		Tables: []*sqlmini.Table{dim, fact, detail},
		Preds: map[string][]sqlmini.Predicate{
			"dim": {{Column: "kind", Op: sqlmini.Eq, Value: 3}},
		},
		Joins: []JoinEdge{
			{LeftTable: "dim", LeftCol: "id", RightTable: "fact", RightCol: "dimid"},
			{LeftTable: "fact", LeftCol: "fid", RightTable: "detail", RightCol: "fid2"},
		},
	}
}

func TestOptimizeProducesValidPlan(t *testing.T) {
	dim, fact, detail := star()
	q := starQuery(dim, fact, detail)
	plan, est, err := Optimize(q, card.Exact{}, HintDefault)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatalf("estimated cost = %v", est)
	}
	rows, _, err := sqlmini.Execute(plan)
	if err != nil {
		t.Fatalf("optimized plan does not execute: %v", err)
	}
	// Ground truth via a fixed plan.
	ref := sqlmini.NewJoin(sqlmini.HashJoin,
		sqlmini.NewJoin(sqlmini.HashJoin,
			sqlmini.NewScan(dim, q.Preds["dim"]...),
			sqlmini.NewScan(fact), "dim.id", "fact.dimid"),
		sqlmini.NewScan(detail), "fact.fid", "detail.fid2")
	refRows, _, err := sqlmini.Execute(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(refRows) {
		t.Fatalf("optimized plan returns %d rows, reference %d", len(rows), len(refRows))
	}
}

func TestOptimizeWithExactBeatsWorstOrder(t *testing.T) {
	dim, fact, detail := star()
	q := starQuery(dim, fact, detail)
	plan, _, err := Optimize(q, card.Exact{}, HintDefault)
	if err != nil {
		t.Fatal(err)
	}
	good, err := sqlmini.Cost(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately bad: nested-loop everything, fact joined last.
	bad := sqlmini.NewJoin(sqlmini.NestedLoopJoin,
		sqlmini.NewJoin(sqlmini.NestedLoopJoin,
			sqlmini.NewScan(fact),
			sqlmini.NewScan(detail), "fact.fid", "detail.fid2"),
		sqlmini.NewScan(dim, q.Preds["dim"]...), "fact.dimid", "dim.id")
	worse, err := sqlmini.Cost(bad)
	if err != nil {
		t.Fatal(err)
	}
	if good*5 > worse {
		t.Fatalf("optimizer plan (%d) not clearly better than bad plan (%d)", good, worse)
	}
}

func TestOptimizeErrors(t *testing.T) {
	dim, fact, detail := star()
	if _, _, err := Optimize(Query{}, card.Exact{}, HintDefault); err == nil {
		t.Fatal("empty query")
	}
	// Disconnected graph.
	q := Query{Tables: []*sqlmini.Table{dim, fact}, Preds: map[string][]sqlmini.Predicate{}}
	if _, _, err := Optimize(q, card.Exact{}, HintDefault); err == nil {
		t.Fatal("disconnected graph must error")
	}
	// Unknown table in edge.
	q2 := starQuery(dim, fact, detail)
	q2.Joins[0].LeftTable = "ghost"
	if _, _, err := Optimize(q2, card.Exact{}, HintDefault); err == nil {
		t.Fatal("unknown table must error")
	}
	// Too many tables.
	var many []*sqlmini.Table
	for i := 0; i < MaxTables+1; i++ {
		tb := sqlmini.NewTable(strings.Repeat("x", i+1), "a")
		many = append(many, tb)
	}
	if _, _, err := Optimize(Query{Tables: many}, card.Exact{}, HintDefault); err == nil {
		t.Fatal("table cap must error")
	}
}

func TestHintsRestrictAlgorithms(t *testing.T) {
	dim, fact, detail := star()
	q := starQuery(dim, fact, detail)
	hashPlan, _, err := Optimize(q, card.Exact{}, HintHashOnly)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(hashPlan.String(), "nljoin") {
		t.Fatalf("hash-only plan contains NL join: %s", hashPlan)
	}
	nlPlan, _, err := Optimize(q, card.Exact{}, HintNLOnly)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(nlPlan.String(), "hashjoin") {
		t.Fatalf("nl-only plan contains hash join: %s", nlPlan)
	}
}

func TestSingleTableQuery(t *testing.T) {
	dim, _, _ := star()
	q := Query{
		Tables: []*sqlmini.Table{dim},
		Preds:  map[string][]sqlmini.Predicate{"dim": {{Column: "kind", Op: sqlmini.Eq, Value: 1}}},
	}
	plan, _, err := Optimize(q, card.Exact{}, HintDefault)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := sqlmini.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestBadEstimatesProduceWorsePlans(t *testing.T) {
	// The core premise of learned optimization: plan quality tracks
	// estimate quality. An adversarially wrong estimator must yield a
	// plan no better than the exact-estimator plan.
	dim, fact, detail := star()
	q := starQuery(dim, fact, detail)
	exactPlan, _, err := Optimize(q, card.Exact{}, HintDefault)
	if err != nil {
		t.Fatal(err)
	}
	liarPlan, _, err := Optimize(q, liar{}, HintDefault)
	if err != nil {
		t.Fatal(err)
	}
	exactCost, _ := sqlmini.Cost(exactPlan)
	liarCost, _ := sqlmini.Cost(liarPlan)
	if liarCost < exactCost {
		t.Fatalf("liar estimator produced a better plan (%d < %d)", liarCost, exactCost)
	}
}

// liar inverts reality: claims big inputs are tiny and vice versa.
type liar struct{}

func (liar) Name() string { return "liar" }
func (liar) EstimateScan(t *sqlmini.Table, _ []sqlmini.Predicate) float64 {
	return 1e7 / (float64(t.Len()) + 1)
}
func (liar) EstimateJoin(l, r float64, _ *sqlmini.Table, _ string, _ *sqlmini.Table, _ string) float64 {
	return 1
}

func TestSteeringExploresThenConverges(t *testing.T) {
	s := NewSteering(0.5)
	tmpl := "q1"
	// Arm costs: default=100, hash=50, nl=500.
	costOf := map[Hint]float64{HintDefault: 100, HintHashOnly: 50, HintNLOnly: 500}
	picks := map[Hint]int{}
	for i := 0; i < 300; i++ {
		h := s.Choose(tmpl)
		picks[h]++
		s.Observe(tmpl, h, costOf[h])
	}
	if picks[HintHashOnly] < 200 {
		t.Fatalf("bandit did not converge to best arm: %v", picks)
	}
	if picks[HintDefault] == 0 || picks[HintNLOnly] == 0 {
		t.Fatal("bandit never explored some arms")
	}
	if s.TrainWork() != 300 {
		t.Fatalf("train work = %d", s.TrainWork())
	}
}

func TestSteeringAdaptsToCostShift(t *testing.T) {
	s := NewSteering(0.8)
	tmpl := "q2"
	// Phase 1: hash wins.
	for i := 0; i < 150; i++ {
		h := s.Choose(tmpl)
		c := 500.0
		if h == HintHashOnly {
			c = 50
		}
		s.Observe(tmpl, h, c)
	}
	// Phase 2: the world flips — NL wins now (e.g. inputs became tiny).
	picksLate := map[Hint]int{}
	for i := 0; i < 600; i++ {
		h := s.Choose(tmpl)
		c := 500.0
		if h == HintNLOnly {
			c = 50
		}
		s.Observe(tmpl, h, c)
		if i >= 400 {
			picksLate[h]++
		}
	}
	if picksLate[HintNLOnly] < 120 {
		t.Fatalf("bandit failed to adapt after cost shift: %v", picksLate)
	}
}

func TestSteeringPerTemplateIsolation(t *testing.T) {
	s := NewSteering(1)
	for i := 0; i < 50; i++ {
		h := s.Choose("a")
		c := 100.0
		if h == HintHashOnly {
			c = 10
		}
		s.Observe("a", h, c)
	}
	// Template "b" starts fresh: first three picks must cover all arms.
	seen := map[Hint]bool{}
	for i := 0; i < 3; i++ {
		h := s.Choose("b")
		seen[h] = true
		s.Observe("b", h, 1)
	}
	if len(seen) != 3 {
		t.Fatalf("new template did not explore all arms: %v", seen)
	}
}

func TestTemplateStability(t *testing.T) {
	dim, fact, detail := star()
	q1 := starQuery(dim, fact, detail)
	q2 := starQuery(dim, fact, detail)
	q2.Preds["dim"] = []sqlmini.Predicate{{Column: "kind", Op: sqlmini.Eq, Value: 4}} // different literal
	if Template(q1) != Template(q2) {
		t.Fatal("templates must ignore literals")
	}
	q3 := starQuery(dim, fact, detail)
	q3.Preds["dim"] = []sqlmini.Predicate{{Column: "kind", Op: sqlmini.Ge, Value: 4}} // different op
	if Template(q1) == Template(q3) {
		t.Fatal("templates must reflect predicate shape")
	}
}

func TestOptimizeSteeredEndToEnd(t *testing.T) {
	dim, fact, detail := star()
	q := starQuery(dim, fact, detail)
	s := NewSteering(1)
	rng := stats.NewRNG(1)
	for i := 0; i < 30; i++ {
		// Vary the literal like a real workload.
		q.Preds["dim"] = []sqlmini.Predicate{{Column: "kind", Op: sqlmini.Eq, Value: rng.Uint64() % 5}}
		plan, h, tmpl, err := OptimizeSteered(q, card.Exact{}, s)
		if err != nil {
			t.Fatal(err)
		}
		c, err := sqlmini.Cost(plan)
		if err != nil {
			t.Fatal(err)
		}
		s.Observe(tmpl, h, float64(c))
	}
	// After 30 queries of one template the bandit must have stats.
	if s.TrainWork() != 30 {
		t.Fatalf("train work = %d", s.TrainWork())
	}
}

func TestHintString(t *testing.T) {
	for _, h := range Hints() {
		if h.String() == "" {
			t.Fatal("empty hint name")
		}
	}
	if Hint(99).String() == "" {
		t.Fatal("unknown hint must stringify")
	}
}
