// Package optimizer implements cost-based query optimization for the mini
// SQL engine: a dynamic-programming join-order optimizer parameterized by
// a cardinality estimator (so traditional-histogram and learned estimators
// are drop-in alternatives), and a Bao-style bandit that *steers* the
// optimizer by choosing among hint sets based on observed execution cost
// (Marcus et al., "Bao: Learning to Steer Query Optimizers" [14]).
//
// Together with package card this forms the learned-query-optimizer SUT:
// when data drifts, the histogram-driven optimizer keeps emitting a stale
// plan while the steered optimizer pays a short exploration penalty and
// recovers — the adaptability behaviour the benchmark's Figure 1b/1c
// metrics are designed to expose.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/card"
	"repro/internal/sqlmini"
)

// JoinEdge declares an equi-join between two base-table columns.
type JoinEdge struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// Query is a select-project-join query: base tables with per-table filter
// predicates and a set of equi-join edges.
type Query struct {
	Tables []*sqlmini.Table
	Preds  map[string][]sqlmini.Predicate // table name -> filters
	Joins  []JoinEdge
}

// MaxTables bounds the DP (3^n subset enumeration).
const MaxTables = 10

// Hint restricts the physical operators the optimizer may pick — the
// steering surface of the Bao-style bandit.
type Hint int

// Hint sets. HintDefault lets the cost model choose per join; the others
// force one algorithm globally.
const (
	HintDefault Hint = iota
	HintHashOnly
	HintNLOnly
	numHints
)

// String names the hint.
func (h Hint) String() string {
	switch h {
	case HintDefault:
		return "default"
	case HintHashOnly:
		return "hash-only"
	case HintNLOnly:
		return "nl-only"
	default:
		return fmt.Sprintf("Hint(%d)", int(h))
	}
}

// Hints lists all steering arms.
func Hints() []Hint { return []Hint{HintDefault, HintHashOnly, HintNLOnly} }

// planInfo is a DP table entry.
type planInfo struct {
	plan *sqlmini.Plan
	card float64 // estimated output rows
	cost float64 // estimated cumulative rows touched
}

// Optimize returns the cheapest plan for q under the estimator and hint,
// with its estimated cost. It returns an error for malformed queries
// (too many tables, unknown tables in edges, or a disconnected join graph).
func Optimize(q Query, est card.JoinEstimator, hint Hint) (*sqlmini.Plan, float64, error) {
	n := len(q.Tables)
	if n == 0 {
		return nil, 0, fmt.Errorf("optimizer: query has no tables")
	}
	if n > MaxTables {
		return nil, 0, fmt.Errorf("optimizer: %d tables exceeds MaxTables=%d", n, MaxTables)
	}
	tblIdx := make(map[string]int, n)
	for i, t := range q.Tables {
		tblIdx[t.Name] = i
	}
	for _, e := range q.Joins {
		if _, ok := tblIdx[e.LeftTable]; !ok {
			return nil, 0, fmt.Errorf("optimizer: join references unknown table %q", e.LeftTable)
		}
		if _, ok := tblIdx[e.RightTable]; !ok {
			return nil, 0, fmt.Errorf("optimizer: join references unknown table %q", e.RightTable)
		}
	}

	dp := make(map[uint32]planInfo, 1<<n)
	for i, t := range q.Tables {
		preds := q.Preds[t.Name]
		c := est.EstimateScan(t, preds)
		if c < 1 {
			c = 1
		}
		dp[1<<i] = planInfo{
			plan: sqlmini.NewScan(t, preds...),
			card: c,
			cost: float64(t.Len()),
		}
	}

	full := uint32(1<<n) - 1
	for mask := uint32(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) < 2 {
			continue
		}
		var best planInfo
		found := false
		// Enumerate proper sub-partitions A|B of mask.
		for a := (mask - 1) & mask; a > 0; a = (a - 1) & mask {
			b := mask ^ a
			if a > b {
				continue // each partition once
			}
			pa, oka := dp[a]
			pb, okb := dp[b]
			if !oka || !okb {
				continue
			}
			// Find a join edge connecting A and B.
			for _, e := range q.Joins {
				li, ri := tblIdx[e.LeftTable], tblIdx[e.RightTable]
				var left, right planInfo
				var lcol, rcol string
				var lt, rt *sqlmini.Table
				switch {
				case a&(1<<li) != 0 && b&(1<<ri) != 0:
					left, right = pa, pb
					lcol, rcol = e.LeftTable+"."+e.LeftCol, e.RightTable+"."+e.RightCol
					lt, rt = q.Tables[li], q.Tables[ri]
				case b&(1<<li) != 0 && a&(1<<ri) != 0:
					left, right = pb, pa
					lcol, rcol = e.LeftTable+"."+e.LeftCol, e.RightTable+"."+e.RightCol
					lt, rt = q.Tables[li], q.Tables[ri]
				default:
					continue
				}
				outCard := est.EstimateJoin(left.card, right.card, lt, e.LeftCol, rt, e.RightCol)
				if outCard < 1 {
					outCard = 1
				}
				for _, algo := range allowedAlgos(hint) {
					cost := left.cost + right.cost + joinCost(algo, left.card, right.card, outCard)
					if !found || cost < best.cost {
						best = planInfo{
							plan: sqlmini.NewJoin(algo, left.plan, right.plan, lcol, rcol),
							card: outCard,
							cost: cost,
						}
						found = true
					}
				}
			}
		}
		if found {
			dp[mask] = best
		}
	}
	res, ok := dp[full]
	if !ok {
		return nil, 0, fmt.Errorf("optimizer: join graph is disconnected")
	}
	return res.plan, res.cost, nil
}

func allowedAlgos(h Hint) []sqlmini.JoinAlgo {
	switch h {
	case HintHashOnly:
		return []sqlmini.JoinAlgo{sqlmini.HashJoin}
	case HintNLOnly:
		return []sqlmini.JoinAlgo{sqlmini.NestedLoopJoin}
	default:
		return []sqlmini.JoinAlgo{sqlmini.HashJoin, sqlmini.NestedLoopJoin}
	}
}

// joinCost mirrors the executor's RowsTouched accounting.
func joinCost(algo sqlmini.JoinAlgo, l, r, out float64) float64 {
	if algo == sqlmini.HashJoin {
		return l + r + out
	}
	return l * r
}

// Steering is the Bao-style bandit: per query template it runs UCB1 over
// hint sets, learning from observed execution costs. Safe for sequential
// use by one optimizer loop (the driver serializes per SUT).
type Steering struct {
	// c is the UCB exploration constant (in units of normalized reward).
	c float64
	// arms[template][hint] tracks observations.
	arms map[string]*armStats
	// trainWork counts bandit updates for the cost model.
	trainWork int
}

type armStats struct {
	count    [numHints]int
	meanCost [numHints]float64
	total    int
}

// NewSteering returns a bandit with the given exploration constant
// (0 falls back to 1.0).
func NewSteering(c float64) *Steering {
	if c <= 0 {
		c = 1.0
	}
	return &Steering{c: c, arms: make(map[string]*armStats)}
}

// Choose picks the hint to use for the given query template. Unexplored
// arms are tried first (in order); afterwards UCB1 on negative normalized
// cost decides.
func (s *Steering) Choose(template string) Hint {
	st, ok := s.arms[template]
	if !ok {
		st = &armStats{}
		s.arms[template] = st
	}
	for h := 0; h < int(numHints); h++ {
		if st.count[h] == 0 {
			return Hint(h)
		}
	}
	// All arms explored: minimize lower confidence bound of cost.
	// Normalize by the worst observed mean so the exploration term is
	// scale-free.
	worst := 0.0
	for h := 0; h < int(numHints); h++ {
		if st.meanCost[h] > worst {
			worst = st.meanCost[h]
		}
	}
	if worst == 0 {
		worst = 1
	}
	bestH, bestLCB := Hint(0), math.Inf(1)
	for h := 0; h < int(numHints); h++ {
		norm := st.meanCost[h] / worst
		lcb := norm - s.c*math.Sqrt(math.Log(float64(st.total+1))/float64(st.count[h]))
		if lcb < bestLCB {
			bestH, bestLCB = Hint(h), lcb
		}
	}
	return bestH
}

// Observe records the measured execution cost of running template under
// hint. Costs are decayed (EMA) so the bandit tracks drift.
func (s *Steering) Observe(template string, h Hint, cost float64) {
	st, ok := s.arms[template]
	if !ok {
		st = &armStats{}
		s.arms[template] = st
	}
	s.trainWork++
	st.total++
	i := int(h)
	if st.count[i] == 0 {
		st.meanCost[i] = cost
	} else {
		// EMA with a floor on the effective window keeps the bandit
		// responsive to distribution change (the decayed average is
		// what lets it *re*-learn after drift).
		alpha := 0.2
		st.meanCost[i] = (1-alpha)*st.meanCost[i] + alpha*cost
	}
	st.count[i]++
}

// TrainWork reports accumulated bandit updates for the cost model.
func (s *Steering) TrainWork() int { return s.trainWork }

// Template produces a stable template string for a query (its join graph
// and predicate shape, not literals).
func Template(q Query) string {
	out := ""
	for _, t := range q.Tables {
		out += t.Name + ";"
		for _, p := range q.Preds[t.Name] {
			out += p.Column + p.Op.String() + ","
		}
	}
	for _, e := range q.Joins {
		out += fmt.Sprintf("%s.%s=%s.%s|", e.LeftTable, e.LeftCol, e.RightTable, e.RightCol)
	}
	return out
}

// OptimizeSteered runs the full steered pipeline for one query: choose a
// hint, optimize under it, and return plan, hint, and template (the caller
// executes the plan and calls steering.Observe with the measured cost).
func OptimizeSteered(q Query, est card.JoinEstimator, s *Steering) (*sqlmini.Plan, Hint, string, error) {
	tmpl := Template(q)
	h := s.Choose(tmpl)
	plan, _, err := Optimize(q, est, h)
	return plan, h, tmpl, err
}
