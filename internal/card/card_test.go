package card

import (
	"testing"

	"repro/internal/sqlmini"
	"repro/internal/stats"
)

// skewedTable builds a table whose "v" column is heavily skewed and whose
// "u" column is uniform.
func skewedTable(n int, seed uint64) *sqlmini.Table {
	t := sqlmini.NewTable("t", "u", "v")
	rng := stats.NewRNG(seed)
	z := stats.NewZipf(rng.Split(), 1.2, 1000)
	for i := 0; i < n; i++ {
		t.Append(rng.Uint64()%10000, z.Next())
	}
	return t
}

func TestQError(t *testing.T) {
	if QError(10, 10) != 1 {
		t.Fatal("perfect")
	}
	if QError(100, 10) != 10 || QError(10, 100) != 10 {
		t.Fatal("symmetric")
	}
	if QError(0, 0) != 1 {
		t.Fatal("zero clamp")
	}
}

func TestExactIsPerfect(t *testing.T) {
	tab := skewedTable(5000, 1)
	e := Exact{}
	for _, p := range []sqlmini.Predicate{
		{Column: "u", Op: sqlmini.Lt, Value: 5000},
		{Column: "v", Op: sqlmini.Ge, Value: 100},
		{Column: "v", Op: sqlmini.Between, Value: 10, Hi: 50},
	} {
		truth := float64(sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p}))
		if got := e.EstimateScan(tab, []sqlmini.Predicate{p}); got != truth {
			t.Fatalf("exact estimate %v != truth %v for %v", got, truth, p)
		}
	}
}

func TestHistogramAccurateOnUniform(t *testing.T) {
	tab := skewedTable(20000, 2)
	h := NewHistogram(64)
	if work := h.Analyze(tab); work <= 0 {
		t.Fatal("analyze reported no work")
	}
	p := sqlmini.Predicate{Column: "u", Op: sqlmini.Lt, Value: 5000}
	truth := float64(sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p}))
	if q := QError(h.EstimateScan(tab, []sqlmini.Predicate{p}), truth); q > 1.3 {
		t.Fatalf("histogram q-error %v on uniform range", q)
	}
}

func TestHistogramHandlesSkewedRange(t *testing.T) {
	tab := skewedTable(20000, 3)
	h := NewHistogram(128)
	h.Analyze(tab)
	// Equi-depth histograms stay decent on skewed range predicates.
	p := sqlmini.Predicate{Column: "v", Op: sqlmini.Lt, Value: 10}
	truth := float64(sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p}))
	if q := QError(h.EstimateScan(tab, []sqlmini.Predicate{p}), truth); q > 2.0 {
		t.Fatalf("histogram q-error %v on skewed range (truth %v)", q, truth)
	}
}

func TestHistogramGoesStaleAfterDrift(t *testing.T) {
	tab := skewedTable(10000, 4)
	h := NewHistogram(64)
	h.Analyze(tab)
	p := sqlmini.Predicate{Column: "u", Op: sqlmini.Ge, Value: 1 << 20}
	before := QError(h.EstimateScan(tab, []sqlmini.Predicate{p}),
		float64(sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p})))
	// Drift: all u values move up by 2^20 without re-analyze.
	newRows := make([][]uint64, len(tab.Rows))
	for i, r := range tab.Rows {
		newRows[i] = []uint64{r[0] + 1<<20, r[1]}
	}
	tab.ReplaceRows(newRows)
	after := QError(h.EstimateScan(tab, []sqlmini.Predicate{p}),
		float64(sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p})))
	if after < before*10 {
		t.Fatalf("histogram should be badly stale: before q=%v after q=%v", before, after)
	}
	// Re-analyze fixes it.
	h.Analyze(tab)
	fixed := QError(h.EstimateScan(tab, []sqlmini.Predicate{p}),
		float64(sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p})))
	if fixed > 1.5 {
		t.Fatalf("re-analyze did not fix staleness: q=%v", fixed)
	}
}

func TestHistogramUnanalyzedFallback(t *testing.T) {
	tab := skewedTable(1000, 5)
	h := NewHistogram(16)
	got := h.EstimateScan(tab, []sqlmini.Predicate{{Column: "u", Op: sqlmini.Eq, Value: 5}})
	if got <= 0 || got > 1000 {
		t.Fatalf("fallback estimate = %v", got)
	}
}

func TestSampleEstimator(t *testing.T) {
	tab := skewedTable(20000, 6)
	s := NewSample(0.05)
	s.Analyze(tab)
	for _, p := range []sqlmini.Predicate{
		{Column: "u", Op: sqlmini.Lt, Value: 3000},
		{Column: "v", Op: sqlmini.Between, Value: 0, Hi: 20},
	} {
		truth := float64(sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p}))
		if q := QError(s.EstimateScan(tab, []sqlmini.Predicate{p}), truth); q > 1.5 {
			t.Fatalf("sample q-error %v for %v", q, p)
		}
	}
}

func TestSamplePanicsOnBadRate(t *testing.T) {
	for _, r := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rate %v: no panic", r)
				}
			}()
			NewSample(r)
		}()
	}
}

func TestJoinEstimates(t *testing.T) {
	users := sqlmini.NewTable("users", "id")
	for i := uint64(0); i < 100; i++ {
		users.Append(i)
	}
	orders := sqlmini.NewTable("orders", "uid")
	for i := uint64(0); i < 300; i++ {
		orders.Append(i % 100)
	}
	truth := 300.0
	for _, est := range []JoinEstimator{Exact{}, analyzedHist(users, orders), analyzedSample(users, orders)} {
		got := est.EstimateJoin(100, 300, users, "id", orders, "uid")
		if q := QError(got, truth); q > 1.5 {
			t.Fatalf("%s join q-error %v (est %v)", est.Name(), q, got)
		}
	}
}

func analyzedHist(ts ...*sqlmini.Table) *Histogram {
	h := NewHistogram(32)
	for _, t := range ts {
		h.Analyze(t)
	}
	return h
}

func analyzedSample(ts ...*sqlmini.Table) *Sample {
	s := NewSample(0.1)
	for _, t := range ts {
		s.Analyze(t)
	}
	return s
}

func TestLearnedUntrainedIsVague(t *testing.T) {
	tab := skewedTable(10000, 7)
	l := NewLearned()
	l.ObserveTable(tab)
	p := sqlmini.Predicate{Column: "u", Op: sqlmini.Lt, Value: 100}
	got := l.EstimateScan(tab, []sqlmini.Predicate{p})
	if got <= 0 || got > 10000 {
		t.Fatalf("untrained estimate out of range: %v", got)
	}
}

func TestLearnedImprovesWithTraining(t *testing.T) {
	tab := skewedTable(20000, 8)
	l := NewLearned()
	l.ObserveTable(tab)
	probe := sqlmini.Predicate{Column: "v", Op: sqlmini.Lt, Value: 17}
	truth := float64(sqlmini.TrueCardinality(tab, []sqlmini.Predicate{probe}))
	before := QError(l.EstimateScan(tab, []sqlmini.Predicate{probe}), truth)

	// Training phase: labeled range queries across the v domain.
	var preds []sqlmini.Predicate
	var truths []int
	for hi := uint64(1); hi <= 1024; hi *= 2 {
		p := sqlmini.Predicate{Column: "v", Op: sqlmini.Lt, Value: hi}
		preds = append(preds, p)
		truths = append(truths, sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p}))
	}
	l.Train(tab, preds, truths)

	after := QError(l.EstimateScan(tab, []sqlmini.Predicate{probe}), truth)
	if after >= before {
		t.Fatalf("training did not improve: before q=%v after q=%v", before, after)
	}
	if after > 2.5 {
		t.Fatalf("trained q-error still %v", after)
	}
	if l.FeedbackCount() != len(preds) {
		t.Fatalf("feedback count = %d", l.FeedbackCount())
	}
	if l.TrainWork() == 0 {
		t.Fatal("no training work recorded")
	}
}

func TestLearnedAdaptsToDrift(t *testing.T) {
	tab := skewedTable(10000, 9)
	l := NewLearned()
	l.ObserveTable(tab)
	// Train on the original distribution.
	for hi := uint64(1); hi <= 1024; hi *= 2 {
		p := sqlmini.Predicate{Column: "v", Op: sqlmini.Lt, Value: hi}
		l.Feedback(tab, p, sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p}))
	}
	// Drift: shift v by +512.
	rows := make([][]uint64, len(tab.Rows))
	for i, r := range tab.Rows {
		rows[i] = []uint64{r[0], r[1] + 512}
	}
	tab.ReplaceRows(rows)
	probe := sqlmini.Predicate{Column: "v", Op: sqlmini.Lt, Value: 520}
	truth := float64(sqlmini.TrueCardinality(tab, []sqlmini.Predicate{probe}))
	stale := QError(l.EstimateScan(tab, []sqlmini.Predicate{probe}), truth)
	// Online feedback after drift (as executed queries return counts).
	// The zipf CDF is sharply curved just past the shift point, so the
	// workload's own queries supply dense labels there — exactly what
	// query-driven estimators rely on.
	for rep := 0; rep < 2; rep++ {
		for hi := uint64(513); hi <= 1600; hi += 8 {
			p := sqlmini.Predicate{Column: "v", Op: sqlmini.Lt, Value: hi}
			l.Feedback(tab, p, sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p}))
		}
	}
	adapted := QError(l.EstimateScan(tab, []sqlmini.Predicate{probe}), truth)
	if adapted >= stale {
		t.Fatalf("online feedback did not adapt: stale q=%v adapted q=%v", stale, adapted)
	}
	if adapted > 3 {
		t.Fatalf("adapted q-error still %v", adapted)
	}
}

func TestLearnedEqAndGeFeedback(t *testing.T) {
	tab := skewedTable(10000, 10)
	l := NewLearned()
	l.ObserveTable(tab)
	pEq := sqlmini.Predicate{Column: "v", Op: sqlmini.Eq, Value: 0}
	truthEq := sqlmini.TrueCardinality(tab, []sqlmini.Predicate{pEq})
	l.Feedback(tab, pEq, truthEq)
	estEq := l.EstimateScan(tab, []sqlmini.Predicate{pEq})
	if q := QError(estEq, float64(truthEq)); q > 2 {
		t.Fatalf("eq feedback q-error %v", q)
	}

	pGe := sqlmini.Predicate{Column: "v", Op: sqlmini.Ge, Value: 100}
	truthGe := sqlmini.TrueCardinality(tab, []sqlmini.Predicate{pGe})
	l.Feedback(tab, pGe, truthGe)
	if q := QError(l.EstimateScan(tab, []sqlmini.Predicate{pGe}), float64(truthGe)); q > 1.6 {
		t.Fatalf("ge feedback q-error %v", q)
	}
}

func TestLearnedMonotoneModel(t *testing.T) {
	tab := skewedTable(5000, 11)
	l := NewLearned()
	l.ObserveTable(tab)
	// Noisy, out-of-order feedback must keep estimates monotone in the
	// range bound.
	rng := stats.NewRNG(12)
	for i := 0; i < 200; i++ {
		hi := rng.Uint64() % 2000
		p := sqlmini.Predicate{Column: "v", Op: sqlmini.Lt, Value: hi}
		l.Feedback(tab, p, sqlmini.TrueCardinality(tab, []sqlmini.Predicate{p}))
	}
	prev := -1.0
	for hi := uint64(0); hi <= 2000; hi += 50 {
		est := l.EstimateScan(tab, []sqlmini.Predicate{{Column: "v", Op: sqlmini.Lt, Value: hi}})
		if est < prev-1e-9 {
			t.Fatalf("estimates not monotone at %d: %v after %v", hi, est, prev)
		}
		prev = est
	}
}

func TestLearnedKnotCap(t *testing.T) {
	tab := skewedTable(5000, 13)
	l := NewLearned()
	l.ObserveTable(tab)
	for v := uint64(0); v < 3000; v++ {
		l.Feedback(tab, sqlmini.Predicate{Column: "u", Op: sqlmini.Lt, Value: v + 1}, int(v))
	}
	if n := l.KnotCount("t", "u"); n > 512 {
		t.Fatalf("knot count %d exceeds cap", n)
	}
	if l.String() == "" {
		t.Fatal("empty String")
	}
}

func TestLearnedConcurrentSafety(t *testing.T) {
	tab := skewedTable(2000, 14)
	l := NewLearned()
	l.ObserveTable(tab)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			p := sqlmini.Predicate{Column: "v", Op: sqlmini.Lt, Value: uint64(i % 500)}
			l.Feedback(tab, p, i%100)
		}
	}()
	for i := 0; i < 2000; i++ {
		l.EstimateScan(tab, []sqlmini.Predicate{{Column: "v", Op: sqlmini.Lt, Value: uint64(i % 500)}})
	}
	<-done
}
