package card

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sqlmini"
)

// Learned is a workload-driven learned cardinality estimator: it maintains
// a per-column spline model of the CDF, initialized from a training set of
// (predicate, true cardinality) labels and refined online from execution
// feedback. This mirrors the supervised query-driven approach (e.g. Kipf
// et al. [25], Dutt et al. [29]): ground-truth labels come either from a
// separate training phase or from observing executed queries, and the
// benchmark charges both (paper §IV).
//
// Learned is safe for concurrent use: feedback arrives from driver workers
// while estimates are served.
type Learned struct {
	mu sync.RWMutex
	// knots[table.column] are (value, cumulative-count) control points,
	// kept sorted by value; estimates interpolate between knots and new
	// feedback inserts/updates knots — an online monotone regression.
	knots map[string][]knot
	rows  map[string]float64
	dv    map[string]float64
	// FeedbackCount is the number of labels absorbed (training set size
	// + online observations) — the label-collection cost (§IV).
	feedback int
	// trainWork accumulates model-update work units for the cost model.
	trainWork int
}

type knot struct {
	v   uint64
	cum float64 // estimated number of rows with value <= v
}

// NewLearned returns an untrained learned estimator.
func NewLearned() *Learned {
	return &Learned{
		knots: make(map[string][]knot),
		rows:  make(map[string]float64),
		dv:    make(map[string]float64),
	}
}

// Name implements Estimator.
func (l *Learned) Name() string { return "learned" }

// FeedbackCount reports how many ground-truth labels the model has seen.
func (l *Learned) FeedbackCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.feedback
}

// TrainWork reports accumulated model-update work units.
func (l *Learned) TrainWork() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.trainWork
}

// ObserveTable registers a table's row count and per-column distinct
// counts (cheap metadata the engine always has).
func (l *Learned) ObserveTable(t *sqlmini.Table) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rows[t.Name] = float64(t.Len())
	for _, c := range t.Columns {
		l.dv[t.Name+"."+c] = float64(t.DistinctCount(c))
	}
}

// Train absorbs a batch of labeled range predicates: for each predicate the
// true cardinality on the table, as produced during a training phase. It
// returns the number of labels absorbed.
func (l *Learned) Train(t *sqlmini.Table, preds []sqlmini.Predicate, truths []int) int {
	if len(preds) != len(truths) {
		panic("card: Train length mismatch")
	}
	for i, p := range preds {
		l.Feedback(t, p, truths[i])
	}
	return len(preds)
}

// Feedback folds one observed (predicate, true cardinality) label into the
// model online. Only single-column predicates update the model; the total
// row count is refreshed opportunistically.
func (l *Learned) Feedback(t *sqlmini.Table, p sqlmini.Predicate, truth int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.feedback++
	l.trainWork++
	l.rows[t.Name] = float64(t.Len())
	key := t.Name + "." + p.Column
	switch p.Op {
	case sqlmini.Lt:
		if p.Value > 0 {
			l.setKnot(key, p.Value-1, float64(truth))
		}
	case sqlmini.Ge:
		if p.Value == 0 {
			break
		}
		l.setKnot(key, p.Value-1, l.rows[t.Name]-float64(truth))
	case sqlmini.Between:
		// A between label pins the *difference* of two CDF points; use
		// it to refine the upper point against the current lower
		// estimate (a common trick in feedback-driven models).
		lo := l.cumAt(key, p.Value-1, t.Name)
		if p.Value == 0 {
			lo = 0
		}
		l.setKnot(key, p.Hi, lo+float64(truth))
	case sqlmini.Eq:
		// Equality feedback refines the distinct-count estimate:
		// E[rows per value] = truth  =>  dv ~ total/truth.
		if truth > 0 {
			l.dv[key] = l.rows[t.Name] / float64(truth)
		}
	}
}

// setKnot inserts or updates the knot at v, then restores monotonicity by
// blending violating neighbours (isotonic repair).
func (l *Learned) setKnot(key string, v uint64, cum float64) {
	if cum < 0 {
		cum = 0
	}
	ks := l.knots[key]
	i := sort.Search(len(ks), func(i int) bool { return ks[i].v >= v })
	if i < len(ks) && ks[i].v == v {
		// Exponential moving average keeps the model stable under
		// noisy or drifting feedback while still tracking change.
		ks[i].cum = 0.5*ks[i].cum + 0.5*cum
	} else {
		ks = append(ks, knot{})
		copy(ks[i+1:], ks[i:])
		ks[i] = knot{v: v, cum: cum}
		l.trainWork++
	}
	// Isotonic repair: push violations outward from i.
	for j := i - 1; j >= 0; j-- {
		if ks[j].cum > ks[j+1].cum {
			ks[j].cum = ks[j+1].cum
		} else {
			break
		}
	}
	for j := i + 1; j < len(ks); j++ {
		if ks[j].cum < ks[j-1].cum {
			ks[j].cum = ks[j-1].cum
		} else {
			break
		}
	}
	// Bound model size: drop every other interior knot beyond a cap.
	const maxKnots = 512
	if len(ks) > maxKnots {
		w := 0
		for j := 0; j < len(ks); j++ {
			if j == 0 || j == len(ks)-1 || j%2 == 0 {
				ks[w] = ks[j]
				w++
			}
		}
		ks = ks[:w]
	}
	l.knots[key] = ks
}

// cumAt interpolates the modeled cumulative count at v (callers hold mu).
func (l *Learned) cumAt(key string, v uint64, table string) float64 {
	ks := l.knots[key]
	total := l.rows[table]
	if len(ks) == 0 {
		// Untrained column: assume uniform over the value domain is
		// impossible without bounds; fall back to half the table.
		return total / 2
	}
	i := sort.Search(len(ks), func(i int) bool { return ks[i].v >= v })
	switch {
	case i == 0:
		if ks[0].v == v {
			return ks[0].cum
		}
		// Below the first knot: interpolate from (0-ish, 0).
		if ks[0].v == 0 {
			return 0
		}
		return ks[0].cum * float64(v) / float64(ks[0].v)
	case i == len(ks):
		// Above the last knot: clamp to the larger of last knot and
		// table size heuristic.
		return ks[len(ks)-1].cum
	default:
		lo, hi := ks[i-1], ks[i]
		if hi.v == v {
			return hi.cum
		}
		frac := float64(v-lo.v) / float64(hi.v-lo.v)
		return lo.cum + frac*(hi.cum-lo.cum)
	}
}

// EstimateScan implements Estimator.
func (l *Learned) EstimateScan(t *sqlmini.Table, preds []sqlmini.Predicate) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	total := l.rows[t.Name]
	if total == 0 {
		total = float64(t.Len())
	}
	if total == 0 {
		return 0
	}
	sel := 1.0
	for _, p := range preds {
		key := t.Name + "." + p.Column
		var s float64
		switch p.Op {
		case sqlmini.Lt:
			if p.Value == 0 {
				s = 0
			} else {
				s = l.cumAt(key, p.Value-1, t.Name) / total
			}
		case sqlmini.Ge:
			if p.Value == 0 {
				s = 1
			} else {
				s = 1 - l.cumAt(key, p.Value-1, t.Name)/total
			}
		case sqlmini.Between:
			lo := 0.0
			if p.Value > 0 {
				lo = l.cumAt(key, p.Value-1, t.Name)
			}
			s = (l.cumAt(key, p.Hi, t.Name) - lo) / total
		case sqlmini.Eq:
			dv := l.dv[key]
			if dv < 1 {
				dv = 10
			}
			s = 1 / dv
		}
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		sel *= s
	}
	return total * sel
}

// EstimateJoin implements JoinEstimator.
func (l *Learned) EstimateJoin(lc, rc float64, lt *sqlmini.Table, lcol string, rt *sqlmini.Table, rcol string) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ldv := l.dv[lt.Name+"."+lcol]
	rdv := l.dv[rt.Name+"."+rcol]
	if ldv < 1 || rdv < 1 {
		return lc * rc * 0.01
	}
	return containmentJoin(lc, rc, ldv, rdv)
}

// KnotCount reports the current model size for a column (test hook).
func (l *Learned) KnotCount(table, column string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.knots[table+"."+column])
}

// String summarizes the model.
func (l *Learned) String() string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return fmt.Sprintf("learned{cols=%d feedback=%d}", len(l.knots), l.feedback)
}
