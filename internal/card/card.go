// Package card implements cardinality estimation for the mini SQL engine:
// a ground-truth oracle, the traditional equi-depth histogram and sampling
// estimators, and a *learned* estimator that trains on observed query
// feedback and keeps learning online — the workload-driven approach of the
// learned cardinality estimation literature the paper cites [25]-[29].
//
// The estimators differ exactly where the paper says benchmarks must look:
// the histogram is built once ("ANALYZE") and silently goes stale when the
// data drifts; the learned estimator pays a training cost, tracks feedback
// collection (§IV: "collect and curate data labels for training"), and
// adapts.
package card

import (
	"fmt"
	"sort"

	"repro/internal/sqlmini"
)

// Estimator predicts the number of rows of a table matching predicates.
type Estimator interface {
	// Name identifies the estimator in reports.
	Name() string
	// EstimateScan predicts |σ_preds(t)|.
	EstimateScan(t *sqlmini.Table, preds []sqlmini.Predicate) float64
}

// JoinEstimator additionally predicts equi-join output sizes from input
// estimates using per-column distinct counts.
type JoinEstimator interface {
	Estimator
	// EstimateJoin predicts |L ⋈ R| given the estimated input sizes and
	// the joined columns on the base tables that own them.
	EstimateJoin(leftCard, rightCard float64,
		leftTable *sqlmini.Table, leftCol string,
		rightTable *sqlmini.Table, rightCol string) float64
}

// QError is the standard cardinality-estimation accuracy metric:
// max(est/true, true/est), with the convention that zero values are
// clamped to 1 row. 1.0 is perfect.
func QError(estimate, truth float64) float64 {
	if estimate < 1 {
		estimate = 1
	}
	if truth < 1 {
		truth = 1
	}
	if estimate > truth {
		return estimate / truth
	}
	return truth / estimate
}

// ---------------------------------------------------------------------------
// Exact oracle
// ---------------------------------------------------------------------------

// Exact is the ground-truth oracle: it scans the table. Used to score the
// other estimators and as the "perfect optimizer" upper bound.
type Exact struct{}

// Name implements Estimator.
func (Exact) Name() string { return "exact" }

// EstimateScan implements Estimator by counting.
func (Exact) EstimateScan(t *sqlmini.Table, preds []sqlmini.Predicate) float64 {
	return float64(sqlmini.TrueCardinality(t, preds))
}

// EstimateJoin implements JoinEstimator with the textbook containment
// formula using true distinct counts.
func (Exact) EstimateJoin(l, r float64, lt *sqlmini.Table, lc string, rt *sqlmini.Table, rc string) float64 {
	return containmentJoin(l, r, float64(lt.DistinctCount(lc)), float64(rt.DistinctCount(rc)))
}

func containmentJoin(l, r, ldv, rdv float64) float64 {
	dv := ldv
	if rdv > dv {
		dv = rdv
	}
	if dv < 1 {
		dv = 1
	}
	return l * r / dv
}

// ---------------------------------------------------------------------------
// Equi-depth histogram (traditional, built once, goes stale)
// ---------------------------------------------------------------------------

// Histogram is the traditional estimator: per-column equi-depth histograms
// captured by Analyze. It never updates itself — after data drift its
// estimates are silently wrong, which is the failure mode the benchmark's
// adaptability metrics expose.
type Histogram struct {
	buckets int
	cols    map[string]*colHist // key: table.column
	rows    map[string]float64  // table -> row count at analyze time
	dv      map[string]float64  // table.column -> distinct estimate
}

type colHist struct {
	// bounds[i] is the upper inclusive bound of bucket i; each bucket
	// holds ~rowsPerBucket rows.
	bounds        []uint64
	rowsPerBucket float64
	min           uint64
}

// NewHistogram returns an estimator with the given buckets per column.
func NewHistogram(buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	return &Histogram{
		buckets: buckets,
		cols:    make(map[string]*colHist),
		rows:    make(map[string]float64),
		dv:      make(map[string]float64),
	}
}

// Name implements Estimator.
func (h *Histogram) Name() string { return fmt.Sprintf("histogram(%d)", h.buckets) }

// Analyze captures statistics for every column of t (the ANALYZE command).
// The work performed (rows scanned) is returned so the benchmark can charge
// it as maintenance cost.
func (h *Histogram) Analyze(t *sqlmini.Table) int {
	h.rows[t.Name] = float64(t.Len())
	work := 0
	for _, c := range t.Columns {
		vals := t.ColumnValues(c)
		work += len(vals)
		key := t.Name + "." + c
		if len(vals) == 0 {
			h.cols[key] = &colHist{}
			h.dv[key] = 0
			continue
		}
		ch := &colHist{min: vals[0]}
		per := len(vals) / h.buckets
		if per < 1 {
			per = 1
		}
		for i := per - 1; i < len(vals); i += per {
			ch.bounds = append(ch.bounds, vals[i])
		}
		if ch.bounds[len(ch.bounds)-1] != vals[len(vals)-1] {
			ch.bounds = append(ch.bounds, vals[len(vals)-1])
		}
		ch.rowsPerBucket = float64(len(vals)) / float64(len(ch.bounds))
		h.cols[key] = ch
		// Distinct estimate from a pass over the sorted values.
		dv := 1
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[i-1] {
				dv++
			}
		}
		h.dv[key] = float64(dv)
	}
	return work
}

// selectivity estimates the fraction of rows matching p.
func (ch *colHist) selectivity(p sqlmini.Predicate, totalRows, distinct float64) float64 {
	if len(ch.bounds) == 0 || totalRows == 0 {
		return 0
	}
	cdf := func(v uint64) float64 { // P(col <= v)
		if v < ch.min {
			return 0
		}
		i := sort.Search(len(ch.bounds), func(i int) bool { return ch.bounds[i] >= v })
		if i == len(ch.bounds) {
			return 1
		}
		// Linear interpolation within bucket i.
		lo := ch.min
		if i > 0 {
			lo = ch.bounds[i-1]
		}
		hi := ch.bounds[i]
		frac := 1.0
		if hi > lo {
			frac = float64(v-lo) / float64(hi-lo)
		}
		return (float64(i) + frac) / float64(len(ch.bounds))
	}
	switch p.Op {
	case sqlmini.Eq:
		if distinct < 1 {
			distinct = 1
		}
		return 1 / distinct
	case sqlmini.Lt:
		if p.Value == 0 {
			return 0
		}
		return cdf(p.Value - 1)
	case sqlmini.Ge:
		if p.Value == 0 {
			return 1
		}
		return 1 - cdf(p.Value-1)
	case sqlmini.Between:
		loCDF := 0.0
		if p.Value > 0 {
			loCDF = cdf(p.Value - 1)
		}
		s := cdf(p.Hi) - loCDF
		if s < 0 {
			s = 0
		}
		return s
	default:
		return 0.1
	}
}

// EstimateScan implements Estimator assuming predicate independence (the
// classic System R assumption, with its classic correlated-predicate
// failure mode).
func (h *Histogram) EstimateScan(t *sqlmini.Table, preds []sqlmini.Predicate) float64 {
	total, ok := h.rows[t.Name]
	if !ok {
		// Never analyzed: magic default selectivity.
		return float64(t.Len()) * defaultSelectivity(len(preds))
	}
	sel := 1.0
	for _, p := range preds {
		key := t.Name + "." + p.Column
		ch, ok := h.cols[key]
		if !ok {
			sel *= 0.1
			continue
		}
		sel *= ch.selectivity(p, total, h.dv[key])
	}
	return total * sel
}

func defaultSelectivity(preds int) float64 {
	s := 1.0
	for i := 0; i < preds; i++ {
		s *= 0.1
	}
	return s
}

// EstimateJoin implements JoinEstimator with analyze-time distinct counts.
func (h *Histogram) EstimateJoin(l, r float64, lt *sqlmini.Table, lc string, rt *sqlmini.Table, rc string) float64 {
	ldv, lok := h.dv[lt.Name+"."+lc]
	rdv, rok := h.dv[rt.Name+"."+rc]
	if !lok || !rok {
		return l * r * 0.01
	}
	return containmentJoin(l, r, ldv, rdv)
}

// ---------------------------------------------------------------------------
// Sampling estimator
// ---------------------------------------------------------------------------

// Sample estimates by evaluating predicates on a fixed-rate row sample
// taken at Analyze time. More robust to correlation than histograms,
// equally stale after drift.
type Sample struct {
	rate    float64
	samples map[string][][]uint64 // table -> sampled rows
	tables  map[string]*sqlmini.Table
	rows    map[string]float64
	dv      map[string]float64
}

// NewSample returns a sampling estimator with the given rate in (0, 1].
func NewSample(rate float64) *Sample {
	if rate <= 0 || rate > 1 {
		panic("card: sample rate out of (0,1]")
	}
	return &Sample{
		rate:    rate,
		samples: make(map[string][][]uint64),
		tables:  make(map[string]*sqlmini.Table),
		rows:    make(map[string]float64),
		dv:      make(map[string]float64),
	}
}

// Name implements Estimator.
func (s *Sample) Name() string { return fmt.Sprintf("sample(%.2f)", s.rate) }

// Analyze captures a deterministic stride sample of t.
func (s *Sample) Analyze(t *sqlmini.Table) int {
	n := t.Len()
	s.rows[t.Name] = float64(n)
	s.tables[t.Name] = t
	want := int(float64(n) * s.rate)
	if want < 1 && n > 0 {
		want = 1
	}
	var rows [][]uint64
	if want > 0 {
		stride := float64(n) / float64(want)
		for i := 0; i < want; i++ {
			rows = append(rows, t.Rows[int(float64(i)*stride)])
		}
	}
	s.samples[t.Name] = rows
	for _, c := range t.Columns {
		s.dv[t.Name+"."+c] = float64(t.DistinctCount(c))
	}
	return n
}

// EstimateScan implements Estimator by counting sample matches.
func (s *Sample) EstimateScan(t *sqlmini.Table, preds []sqlmini.Predicate) float64 {
	rows, ok := s.samples[t.Name]
	if !ok || len(rows) == 0 {
		return float64(t.Len()) * defaultSelectivity(len(preds))
	}
	idxs := make([]int, len(preds))
	for i, p := range preds {
		idxs[i] = t.Col(p.Column)
	}
	match := 0
	for _, row := range rows {
		ok := true
		for i, p := range preds {
			if !p.Matches(row[idxs[i]]) {
				ok = false
				break
			}
		}
		if ok {
			match++
		}
	}
	return float64(match) / float64(len(rows)) * s.rows[t.Name]
}

// EstimateJoin implements JoinEstimator.
func (s *Sample) EstimateJoin(l, r float64, lt *sqlmini.Table, lc string, rt *sqlmini.Table, rc string) float64 {
	ldv, lok := s.dv[lt.Name+"."+lc]
	rdv, rok := s.dv[rt.Name+"."+rc]
	if !lok || !rok {
		return l * r * 0.01
	}
	return containmentJoin(l, r, ldv, rdv)
}
