package card

import (
	"strings"
	"testing"

	"repro/internal/sqlmini"
)

func TestEstimatorNames(t *testing.T) {
	for _, e := range []Estimator{Exact{}, NewHistogram(16), NewSample(0.1), NewLearned()} {
		if e.Name() == "" {
			t.Fatal("empty estimator name")
		}
	}
	if !strings.Contains(NewHistogram(32).Name(), "32") {
		t.Fatal("histogram name should carry bucket count")
	}
}

func TestHistogramBucketClamp(t *testing.T) {
	h := NewHistogram(0) // clamps to 1 bucket
	tab := sqlmini.NewTable("t", "a")
	for i := uint64(0); i < 100; i++ {
		tab.Append(i)
	}
	h.Analyze(tab)
	got := h.EstimateScan(tab, []sqlmini.Predicate{{Column: "a", Op: sqlmini.Lt, Value: 50}})
	if got <= 0 || got > 100 {
		t.Fatalf("single-bucket estimate %v", got)
	}
}

func TestHistogramSelectivityEdges(t *testing.T) {
	tab := sqlmini.NewTable("t", "a")
	for i := uint64(10); i < 110; i++ {
		tab.Append(i)
	}
	h := NewHistogram(16)
	h.Analyze(tab)
	cases := []struct {
		p    sqlmini.Predicate
		want float64 // approximate expected cardinality
		tol  float64
	}{
		{sqlmini.Predicate{Column: "a", Op: sqlmini.Lt, Value: 0}, 0, 1},
		{sqlmini.Predicate{Column: "a", Op: sqlmini.Lt, Value: 5}, 0, 1},
		{sqlmini.Predicate{Column: "a", Op: sqlmini.Ge, Value: 0}, 100, 1},
		{sqlmini.Predicate{Column: "a", Op: sqlmini.Ge, Value: 200}, 0, 7},
		{sqlmini.Predicate{Column: "a", Op: sqlmini.Between, Value: 200, Hi: 300}, 0, 7},
		{sqlmini.Predicate{Column: "a", Op: sqlmini.Between, Value: 30, Hi: 20}, 0, 1}, // inverted
	}
	for _, c := range cases {
		got := h.EstimateScan(tab, []sqlmini.Predicate{c.p})
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Fatalf("%v: estimate %v, want ~%v", c.p, got, c.want)
		}
	}
	// Unknown predicate column: falls back without panicking.
	tab2 := sqlmini.NewTable("t2", "b")
	tab2.Append(1)
	h.Analyze(tab2)
	// Analyzed table, predicate on a column analyzed under another table
	// name — exercises the missing-column fallback path.
	est := h.EstimateScan(tab, []sqlmini.Predicate{{Column: "a", Op: sqlmini.Eq, Value: 50}})
	if est <= 0 {
		t.Fatalf("eq estimate %v", est)
	}
}

func TestHistogramEmptyColumn(t *testing.T) {
	tab := sqlmini.NewTable("empty", "a")
	h := NewHistogram(8)
	h.Analyze(tab)
	got := h.EstimateScan(tab, []sqlmini.Predicate{{Column: "a", Op: sqlmini.Lt, Value: 10}})
	if got != 0 {
		t.Fatalf("empty-table estimate %v", got)
	}
}

func TestLearnedEstimateJoin(t *testing.T) {
	users := sqlmini.NewTable("users", "id")
	for i := uint64(0); i < 100; i++ {
		users.Append(i)
	}
	orders := sqlmini.NewTable("orders", "uid")
	for i := uint64(0); i < 300; i++ {
		orders.Append(i % 100)
	}
	l := NewLearned()
	// Without table metadata: conservative fallback.
	fallback := l.EstimateJoin(100, 300, users, "id", orders, "uid")
	if fallback <= 0 {
		t.Fatalf("fallback join estimate %v", fallback)
	}
	// With metadata: containment formula.
	l.ObserveTable(users)
	l.ObserveTable(orders)
	got := l.EstimateJoin(100, 300, users, "id", orders, "uid")
	if q := QError(got, 300); q > 1.5 {
		t.Fatalf("learned join q-error %v (est %v)", q, got)
	}
}

func TestLearnedEstimateScanEdges(t *testing.T) {
	tab := sqlmini.NewTable("t", "a")
	for i := uint64(0); i < 100; i++ {
		tab.Append(i)
	}
	l := NewLearned()
	// Empty-table registration path.
	empty := sqlmini.NewTable("e", "a")
	l.ObserveTable(empty)
	if got := l.EstimateScan(empty, nil); got != 0 {
		t.Fatalf("empty table estimate %v", got)
	}
	l.ObserveTable(tab)
	// Lt 0 and Ge 0 boundary predicates.
	if got := l.EstimateScan(tab, []sqlmini.Predicate{{Column: "a", Op: sqlmini.Lt, Value: 0}}); got != 0 {
		t.Fatalf("Lt 0 estimate %v", got)
	}
	if got := l.EstimateScan(tab, []sqlmini.Predicate{{Column: "a", Op: sqlmini.Ge, Value: 0}}); got != 100 {
		t.Fatalf("Ge 0 estimate %v", got)
	}
	// Between with feedback on an untouched column uses the fallback
	// interpolation paths.
	p := sqlmini.Predicate{Column: "a", Op: sqlmini.Between, Value: 10, Hi: 20}
	if got := l.EstimateScan(tab, []sqlmini.Predicate{p}); got < 0 || got > 100 {
		t.Fatalf("between estimate %v", got)
	}
	// Never-observed table falls back to live Len().
	fresh := sqlmini.NewTable("fresh", "a")
	fresh.Append(1)
	if got := NewLearned().EstimateScan(fresh, nil); got != 1 {
		t.Fatalf("unobserved table estimate %v", got)
	}
}

func TestLearnedTrainPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l := NewLearned()
	tab := sqlmini.NewTable("t", "a")
	l.Train(tab, []sqlmini.Predicate{{Column: "a"}}, nil)
}

func TestContainmentJoinZeroDV(t *testing.T) {
	if got := containmentJoin(10, 10, 0, 0); got != 100 {
		t.Fatalf("zero-dv containment %v (dv clamps to 1)", got)
	}
}
