package kv

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func smallKnobs() Knobs {
	return Knobs{MemtableCap: 64, MaxRuns: 3, SparseEvery: 8, BloomBitsPerKey: 10}
}

func TestPutGet(t *testing.T) {
	s := Open(smallKnobs())
	for k := uint64(0); k < 1000; k++ {
		s.Put(k, k*2)
	}
	for k := uint64(0); k < 1000; k++ {
		v, ok := s.Get(k)
		if !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := s.Get(99999); ok {
		t.Fatal("found absent key")
	}
}

func TestFlushAndCompact(t *testing.T) {
	s := Open(smallKnobs())
	for k := uint64(0); k < 2000; k++ {
		s.Put(k, k)
	}
	c := s.Counters()
	if c.Flushes == 0 {
		t.Fatal("no flushes")
	}
	if c.Compactions == 0 {
		t.Fatal("no compactions with MaxRuns=3")
	}
	if s.RunCount() > smallKnobs().MaxRuns+1 {
		t.Fatalf("run count %d exceeds budget", s.RunCount())
	}
}

func TestOverwriteAcrossFlush(t *testing.T) {
	s := Open(smallKnobs())
	s.Put(42, 1)
	for k := uint64(1000); k < 1200; k++ { // force flushes
		s.Put(k, k)
	}
	s.Put(42, 2)
	if v, _ := s.Get(42); v != 2 {
		t.Fatalf("newest version lost: %d", v)
	}
}

func TestDeleteTombstones(t *testing.T) {
	s := Open(smallKnobs())
	s.Put(7, 70)
	for k := uint64(1000); k < 1100; k++ {
		s.Put(k, k)
	}
	s.Delete(7)
	if _, ok := s.Get(7); ok {
		t.Fatal("deleted key visible")
	}
	// Force compaction; tombstone must still mask, then vanish.
	for k := uint64(2000); k < 3000; k++ {
		s.Put(k, k)
	}
	if _, ok := s.Get(7); ok {
		t.Fatal("deleted key resurrected by compaction")
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	s := Open(smallKnobs())
	s.Put(5, 1)
	s.Delete(5)
	s.Put(5, 2)
	if v, ok := s.Get(5); !ok || v != 2 {
		t.Fatalf("reinsert after delete: %d,%v", v, ok)
	}
}

func TestScanMergesSources(t *testing.T) {
	s := Open(smallKnobs())
	// Old values flushed to runs.
	for k := uint64(0); k < 300; k++ {
		s.Put(k, 1)
	}
	s.Flush()
	// Overwrites and deletes in newer runs/memtable.
	for k := uint64(0); k < 300; k += 3 {
		s.Put(k, 2)
	}
	for k := uint64(1); k < 300; k += 3 {
		s.Delete(k)
	}
	var keys []uint64
	s.Scan(0, 299, func(k, v uint64) bool {
		switch k % 3 {
		case 0:
			if v != 2 {
				t.Fatalf("key %d: stale value %d", k, v)
			}
		case 1:
			t.Fatalf("deleted key %d in scan", k)
		case 2:
			if v != 1 {
				t.Fatalf("key %d: value %d", k, v)
			}
		}
		keys = append(keys, k)
		return true
	})
	if len(keys) != 200 {
		t.Fatalf("scan visited %d, want 200", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("scan unsorted")
	}
}

func TestScanEarlyStopAndEmptyRange(t *testing.T) {
	s := Open(smallKnobs())
	for k := uint64(0); k < 100; k++ {
		s.Put(k, k)
	}
	n := 0
	s.Scan(0, 99, func(_, _ uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop at %d", n)
	}
	if s.Scan(50, 10, func(_, _ uint64) bool { return true }) != 0 {
		t.Fatal("inverted range")
	}
}

func TestBloomFiltersSkipRuns(t *testing.T) {
	with := Open(Knobs{MemtableCap: 64, MaxRuns: 16, SparseEvery: 8, BloomBitsPerKey: 12})
	without := Open(Knobs{MemtableCap: 64, MaxRuns: 16, SparseEvery: 8, BloomBitsPerKey: 0})
	for k := uint64(0); k < 3000; k += 2 {
		with.Put(k, k)
		without.Put(k, k)
	}
	for k := uint64(1); k < 3000; k += 2 { // all misses
		with.Get(k)
		without.Get(k)
	}
	cw, co := with.Counters(), without.Counters()
	if cw.BloomNegatives == 0 {
		t.Fatal("bloom filter never skipped a run")
	}
	if cw.RunProbes >= co.RunProbes {
		t.Fatalf("bloom filters did not reduce probes: %d vs %d", cw.RunProbes, co.RunProbes)
	}
}

func TestSetKnobsCompactsImmediately(t *testing.T) {
	s := Open(Knobs{MemtableCap: 64, MaxRuns: 16, SparseEvery: 8})
	for k := uint64(0); k < 2000; k++ {
		s.Put(k, k)
	}
	before := s.RunCount()
	if before < 2 {
		t.Skipf("need multiple runs, got %d", before)
	}
	k := s.Knobs()
	k.MaxRuns = 1
	s.SetKnobs(k)
	if s.RunCount() != 1 {
		t.Fatalf("re-tune did not compact: %d runs", s.RunCount())
	}
	for key := uint64(0); key < 2000; key += 101 {
		if v, ok := s.Get(key); !ok || v != key {
			t.Fatalf("Get(%d) after re-tune = %d,%v", key, v, ok)
		}
	}
}

func TestRandomOpsVsModel(t *testing.T) {
	f := func(seed uint64) bool {
		s := Open(Knobs{MemtableCap: 128, MaxRuns: 2, SparseEvery: 4, BloomBitsPerKey: 8})
		r := stats.NewRNG(seed)
		ref := make(map[uint64]uint64)
		for op := 0; op < 5000; op++ {
			k := r.Uint64() % 500 // small space to force overwrites
			switch r.Intn(4) {
			case 0, 1:
				v := r.Uint64()
				s.Put(k, v)
				ref[k] = v
			case 2:
				s.Delete(k)
				delete(ref, k)
			case 3:
				wantV, wantOK := ref[k]
				gotV, gotOK := s.Get(k)
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					return false
				}
			}
		}
		// Full scan must equal the model.
		got := make(map[uint64]uint64)
		s.Scan(0, ^uint64(0), func(k, v uint64) bool { got[k] = v; return true })
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestKnobsValidate(t *testing.T) {
	k := Knobs{MemtableCap: -1, MaxRuns: 0, SparseEvery: 0, BloomBitsPerKey: 100}.Validate()
	if k.MemtableCap < 64 || k.MaxRuns < 1 || k.SparseEvery < 1 || k.BloomBitsPerKey > 32 {
		t.Fatalf("validate failed: %+v", k)
	}
	if DefaultKnobs().String() == "" {
		t.Fatal("empty knob string")
	}
}

func TestSpaceSizeAndUniqueness(t *testing.T) {
	sp := Space()
	if len(sp) != 144 {
		t.Fatalf("space size = %d", len(sp))
	}
	seen := map[string]bool{}
	for _, k := range sp {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate knob point %s", s)
		}
		seen[s] = true
	}
}


// Detailed filter behavior (FPR at several bits-per-key, nil semantics)
// lives in internal/kv/bloom since the extraction; here we only pin that
// runs actually wire the shared filter in and that it pays off on misses.
func TestRunsUseSharedBloom(t *testing.T) {
	s := Open(smallKnobs())
	for k := uint64(0); k < 500; k += 2 {
		s.Put(k, k)
	}
	s.Flush()
	for k := uint64(1 << 40); k < 1<<40+200; k++ {
		s.Get(k)
	}
	if c := s.Counters(); c.BloomNegatives == 0 {
		t.Fatalf("no bloom negatives on a miss-only probe: %+v", c)
	}
}

func TestCountersProgress(t *testing.T) {
	s := Open(smallKnobs())
	for k := uint64(0); k < 500; k++ {
		s.Put(k, k)
	}
	s.Get(1)
	s.Delete(2)
	c := s.Counters()
	if c.Puts != 500 || c.Gets != 1 || c.Deletes != 1 {
		t.Fatalf("counters = %+v", c)
	}
}
