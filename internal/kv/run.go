package kv

import (
	"repro/internal/kv/bloom"
	"repro/internal/search"
)

// tombstoneVal marks deletions inside runs. Values written by users are
// stored alongside a liveness flag, so the full uint64 value space remains
// usable.
type entry struct {
	key  uint64
	val  uint64
	dead bool
}

// run is an immutable sorted run — the "on-disk" unit of the store. A
// sparse index of every SparseEvery-th key accelerates point and range
// lookups; a Bloom filter short-circuits misses.
type run struct {
	entries []entry
	// sparse[i] is the key at entries[i*sparseEvery].
	sparse      []uint64
	sparseEvery int
	filter      *bloom.Filter
}

// newRun builds a run from sorted, deduplicated entries.
func newRun(entries []entry, sparseEvery, bloomBitsPerKey int) *run {
	r := &run{entries: entries, sparseEvery: sparseEvery}
	if sparseEvery < 1 {
		r.sparseEvery = 1
	}
	for i := 0; i < len(entries); i += r.sparseEvery {
		r.sparse = append(r.sparse, entries[i].key)
	}
	if bloomBitsPerKey > 0 {
		r.filter = bloom.New(len(entries), bloomBitsPerKey)
		for _, e := range entries {
			r.filter.Add(e.key)
		}
	}
	return r
}

// get returns the entry for key if present in this run. The probes counter
// feedback lets the store report read amplification.
func (r *run) get(key uint64) (entry, bool, int) {
	if len(r.entries) == 0 {
		return entry{}, false, 0
	}
	if !r.filter.MayContain(key) {
		return entry{}, false, 0
	}
	probes := 0
	// Sparse index narrows to a block of sparseEvery entries.
	b := search.UpperBound(r.sparse, key)
	if b == 0 {
		// sparse[0] is entries[0].key, so key below it is absent.
		if key < r.entries[0].key {
			return entry{}, false, probes
		}
		b = 1
	}
	lo := (b - 1) * r.sparseEvery
	hi := lo + r.sparseEvery
	if hi > len(r.entries) {
		hi = len(r.entries)
	}
	probes = hi - lo
	i := lowerBoundEntries(r.entries, lo, hi, key)
	if i < len(r.entries) && r.entries[i].key == key {
		return r.entries[i], true, probes
	}
	return entry{}, false, probes
}

// lowerBound returns the index of the first entry with key >= lo.
func (r *run) lowerBound(lo uint64) int {
	b := search.LowerBound(r.sparse, lo)
	start := 0
	if b > 0 {
		start = (b - 1) * r.sparseEvery
	}
	end := b*r.sparseEvery + 1
	if end > len(r.entries) {
		end = len(r.entries)
	}
	if start > end {
		start = end
	}
	return lowerBoundEntries(r.entries, start, end, lo)
}

// lowerBoundEntries is the branchless lower bound over a window of an
// entry slice: the smallest i in [lo, hi] with entries[i].key >= key.
// Same kernel as search.LowerBound, restated because the key lives inside
// a struct.
func lowerBoundEntries(entries []entry, lo, hi int, key uint64) int {
	base, n := lo, hi-lo
	for n > 1 {
		half := n >> 1
		if entries[base+half-1].key < key {
			base += half
		}
		n -= half
	}
	if n == 1 && entries[base].key < key {
		base++
	}
	return base
}

// mergeRuns merges newest-to-oldest ordered runs into one deduplicated run
// (newest wins), dropping tombstones when dropDead is true (full merge).
func mergeRuns(runs []*run, sparseEvery, bloomBitsPerKey int, dropDead bool) *run {
	// k-way merge via iterative pairwise merging, newest priority.
	// runs[0] is newest.
	var merged []entry
	for _, r := range runs {
		merged = mergePair(merged, r.entries)
	}
	if dropDead {
		w := 0
		for _, e := range merged {
			if !e.dead {
				merged[w] = e
				w++
			}
		}
		merged = merged[:w]
	}
	return newRun(merged, sparseEvery, bloomBitsPerKey)
}

// mergePair merges two sorted entry slices; entries in `newer` win ties.
func mergePair(newer, older []entry) []entry {
	if len(newer) == 0 {
		return append([]entry(nil), older...)
	}
	if len(older) == 0 {
		return append([]entry(nil), newer...)
	}
	out := make([]entry, 0, len(newer)+len(older))
	i, j := 0, 0
	for i < len(newer) && j < len(older) {
		switch {
		case newer[i].key < older[j].key:
			out = append(out, newer[i])
			i++
		case newer[i].key > older[j].key:
			out = append(out, older[j])
			j++
		default:
			out = append(out, newer[i])
			i++
			j++
		}
	}
	out = append(out, newer[i:]...)
	out = append(out, older[j:]...)
	return out
}
