package bloom

import (
	"fmt"
	"testing"
)

// splitmix64 drives test key generation without pulling in internal/stats.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func TestNoFalseNegatives(t *testing.T) {
	const n = 10000
	f := New(n, 10)
	for i := uint64(0); i < n; i++ {
		f.Add(splitmix64(i))
	}
	for i := uint64(0); i < n; i++ {
		if !f.MayContain(splitmix64(i)) {
			t.Fatalf("false negative for inserted key %d", i)
		}
	}
}

func TestNilFilterIsPermissive(t *testing.T) {
	var f *Filter
	f.Add(1) // must not panic
	if !f.MayContain(1) {
		t.Fatal("nil filter must report MayContain = true")
	}
	if New(100, 0) != nil || New(0, 10) != nil {
		t.Fatal("disabled configurations must return nil")
	}
	if f.Bits() != 0 || f.Probes() != 0 {
		t.Fatal("nil filter accounting must be zero")
	}
}

// TestFalsePositiveRate checks the measured FPR at several bits-per-key
// settings against the theoretical (1 - e^{-kn/m})^k bound with slack.
// This is the test the in-memory store could never express while the
// filter was package-private.
func TestFalsePositiveRate(t *testing.T) {
	const n = 20000
	const probes = 100000
	// Theoretical FPR ~ 0.6185^bitsPerKey at the optimal probe count; our
	// probe count is floored/capped so allow generous headroom.
	cases := []struct {
		bitsPerKey int
		maxFPR     float64
	}{
		{4, 0.25},
		{8, 0.06},
		{10, 0.03},
		{16, 0.002},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("bpk=%d", tc.bitsPerKey), func(t *testing.T) {
			f := New(n, tc.bitsPerKey)
			for i := uint64(0); i < n; i++ {
				f.Add(splitmix64(i))
			}
			fp := 0
			for i := uint64(0); i < probes; i++ {
				// Disjoint key space: offset far past the inserted range.
				if f.MayContain(splitmix64(1<<40 + i)) {
					fp++
				}
			}
			got := float64(fp) / probes
			if got > tc.maxFPR {
				t.Fatalf("FPR %.4f exceeds %.4f at %d bits/key", got, tc.maxFPR, tc.bitsPerKey)
			}
		})
	}
}

// TestFPRImprovesWithBits pins the monotone trend the sizing knob promises.
func TestFPRImprovesWithBits(t *testing.T) {
	const n = 20000
	const probes = 50000
	measure := func(bpk int) float64 {
		f := New(n, bpk)
		for i := uint64(0); i < n; i++ {
			f.Add(splitmix64(i))
		}
		fp := 0
		for i := uint64(0); i < probes; i++ {
			if f.MayContain(splitmix64(1<<40 + i)) {
				fp++
			}
		}
		return float64(fp) / probes
	}
	f4, f8, f16 := measure(4), measure(8), measure(16)
	if !(f16 < f8 && f8 < f4) {
		t.Fatalf("FPR not monotone in bits/key: 4->%.4f 8->%.4f 16->%.4f", f4, f8, f16)
	}
}
