// Package bloom implements the split Bloom filter shared by the in-memory
// kv store's sorted runs and the disk LSM's run files. It uses double
// hashing (Kirsch–Mitzenmacher): h_i(k) = h1(k) + i*h2(k), which gives k
// independent-enough probes from two 64-bit mixes.
//
// A nil *Filter is valid and means "filter disabled": Add is a no-op and
// MayContain always reports true, so callers can treat bitsPerKey <= 0 as
// "no filter" without branching.
package bloom

// Filter is a split Bloom filter over uint64 keys. Not safe for concurrent
// mutation; concurrent MayContain over a filled filter is fine.
type Filter struct {
	bits []uint64
	k    int // number of hash probes
}

// New sizes a filter for n keys at bitsPerKey. Returns nil when disabled
// (bitsPerKey <= 0 or n <= 0), which callers treat as "might contain".
func New(n, bitsPerKey int) *Filter {
	if bitsPerKey <= 0 || n <= 0 {
		return nil
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	// Optimal probe count ~= bitsPerKey * ln2.
	k := int(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 12 {
		k = 12
	}
	return &Filter{bits: make([]uint64, (nbits+63)/64), k: k}
}

func h1(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}

func h2(k uint64) uint64 {
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 29
	return k | 1 // odd, so probes cycle the whole table
}

// Add inserts key into the filter.
func (f *Filter) Add(key uint64) {
	if f == nil {
		return
	}
	n := uint64(len(f.bits) * 64)
	a, b := h1(key), h2(key)
	for i := 0; i < f.k; i++ {
		pos := (a + uint64(i)*b) % n
		f.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain reports whether key might be present (false = definitely not).
func (f *Filter) MayContain(key uint64) bool {
	if f == nil {
		return true
	}
	n := uint64(len(f.bits) * 64)
	a, b := h1(key), h2(key)
	for i := 0; i < f.k; i++ {
		pos := (a + uint64(i)*b) % n
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter's bit-table size in bits (0 for a nil filter) —
// a memory-accounting hook for reports.
func (f *Filter) Bits() int {
	if f == nil {
		return 0
	}
	return len(f.bits) * 64
}

// Probes returns the per-lookup probe count (0 for a nil filter).
func (f *Filter) Probes() int {
	if f == nil {
		return 0
	}
	return f.k
}
