package kv

// bloom is a split Bloom filter over uint64 keys using double hashing
// (Kirsch–Mitzenmacher): h_i(k) = h1(k) + i*h2(k).
type bloom struct {
	bits []uint64
	k    int // number of hash probes
}

// newBloom sizes a filter for n keys at bitsPerKey. Returns nil when
// disabled (bitsPerKey <= 0 or n == 0), which callers treat as "might
// contain".
func newBloom(n, bitsPerKey int) *bloom {
	if bitsPerKey <= 0 || n <= 0 {
		return nil
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	// Optimal probe count ~= bitsPerKey * ln2.
	k := int(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 12 {
		k = 12
	}
	return &bloom{bits: make([]uint64, (nbits+63)/64), k: k}
}

func bloomH1(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}

func bloomH2(k uint64) uint64 {
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 29
	return k | 1 // odd, so probes cycle the whole table
}

// add inserts key into the filter.
func (b *bloom) add(key uint64) {
	if b == nil {
		return
	}
	n := uint64(len(b.bits) * 64)
	h1, h2 := bloomH1(key), bloomH2(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % n
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

// mayContain reports whether key might be present (false = definitely not).
func (b *bloom) mayContain(key uint64) bool {
	if b == nil {
		return true
	}
	n := uint64(len(b.bits) * 64)
	h1, h2 := bloomH1(key), bloomH2(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % n
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}
