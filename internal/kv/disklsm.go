package kv

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kv/bloom"
	"repro/internal/pager"
)

// DiskStore is the disk-backed sibling of Store: the same log-structured
// design (sorted memtable, immutable sorted runs, merge compaction,
// newest-first reads through Bloom filters), but with runs laid out in
// block-aligned slotted pages behind a buffer pool instead of in-memory
// slices. Reads and compactions therefore move 4 KiB pages, which the
// pool counts and the cost model prices — the axis the in-memory store
// cannot exercise.
//
// Durability is checkpoint-based and crash-consistent by construction:
// run pages are immutable once written, a checkpoint serializes the run
// directory into fresh catalog pages and flips the catalog root, and
// pages freed by compaction stay quarantined until the checkpoint that
// unreferences them is published (see pager.Pool). A crash between
// checkpoints reverts to the previous catalog, whose runs are intact.
//
// The sparse index is per-page (the first key of every run page), which
// is the block-granular equivalent of Store's SparseEvery knob; Bloom
// filters and the sparse index live in memory and are rebuilt when a
// file is reopened. Not safe for concurrent use.
type DiskStore struct {
	knobs Knobs
	pool  *pager.Pool

	memKeys []uint64
	memVals []uint64
	memDead []bool

	runs    []*diskRun // runs[0] is newest
	catalog []pager.PageID

	st Counters
}

const (
	// runCellSize is one entry on a run page: key(8) + value(8) + dead(1).
	runCellSize = 17
	// entriesPerPage is the fixed fan-out of a run page.
	entriesPerPage = (pager.PageSize - pager.HeaderSize) / (runCellSize + 4)
	// catalogChunkIDs caps page IDs per catalog chunk cell so every cell
	// fits comfortably in a page.
	catalogChunkIDs = 500

	// catalogRootSlot is the File root-pointer slot holding the head of
	// the catalog page chain.
	catalogRootSlot = 0
)

// diskRun is one immutable sorted run: its pages, entry count, per-page
// first keys (the sparse index), and Bloom filter. Only pages are durable;
// the rest is rebuilt on open.
type diskRun struct {
	pages  []pager.PageID
	n      int
	first  []uint64
	filter *bloom.Filter
}

func runCell(e entry) []byte {
	var c [runCellSize]byte
	binary.LittleEndian.PutUint64(c[0:], e.key)
	binary.LittleEndian.PutUint64(c[8:], e.val)
	if e.dead {
		c[16] = 1
	}
	return c[:]
}

func decodeRunCell(c []byte) entry {
	return entry{
		key:  binary.LittleEndian.Uint64(c[0:]),
		val:  binary.LittleEndian.Uint64(c[8:]),
		dead: c[16] == 1,
	}
}

// OpenDisk returns a disk store over pool. A fresh file starts empty; a
// file with a published catalog resumes from it, rebuilding the in-memory
// sparse indexes and Bloom filters and the pool's free-list (by
// reachability, so a crash anywhere leaves no inconsistency to repair).
func OpenDisk(pool *pager.Pool, knobs Knobs) (*DiskStore, error) {
	s := &DiskStore{knobs: knobs.Validate(), pool: pool}
	if pool.File().Root(catalogRootSlot) != pager.NilPage {
		if err := s.loadCatalog(); err != nil {
			return nil, err
		}
		pool.RebuildFreeList(s.Reachable())
	}
	return s, nil
}

// Pool exposes the store's buffer pool (for counters and checkpoints).
func (s *DiskStore) Pool() *pager.Pool { return s.pool }

// Knobs returns the active configuration.
func (s *DiskStore) Knobs() Knobs { return s.knobs }

// Counters returns a snapshot of the work counters.
func (s *DiskStore) Counters() Counters { return s.st }

// SetKnobs applies a new configuration (an online re-tune), compacting
// immediately when the run budget tightened.
func (s *DiskStore) SetKnobs(k Knobs) {
	s.knobs = k.Validate()
	if len(s.runs) > s.knobs.MaxRuns {
		s.compact()
	}
}

// RunCount reports the current number of on-disk runs.
func (s *DiskStore) RunCount() int { return len(s.runs) }

// MemtableLen reports the number of buffered entries.
func (s *DiskStore) MemtableLen() int { return len(s.memKeys) }

func (s *DiskStore) get(id pager.PageID) *pager.Page {
	pg, err := s.pool.Get(id)
	if err != nil {
		panic(fmt.Sprintf("kv: disk store: %v", err))
	}
	return pg
}

func (s *DiskStore) memFind(key uint64) (int, bool) {
	lo, hi := 0, len(s.memKeys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.memKeys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.memKeys) && s.memKeys[lo] == key
}

// Put inserts or overwrites key.
func (s *DiskStore) Put(key, value uint64) {
	s.st.Puts++
	s.memPut(key, value, false)
}

// Delete removes key (tombstone semantics).
func (s *DiskStore) Delete(key uint64) {
	s.st.Deletes++
	s.memPut(key, 0, true)
}

func (s *DiskStore) memPut(key, value uint64, dead bool) {
	i, found := s.memFind(key)
	if found {
		s.memVals[i] = value
		s.memDead[i] = dead
		return
	}
	s.memKeys = append(s.memKeys, 0)
	copy(s.memKeys[i+1:], s.memKeys[i:])
	s.memKeys[i] = key
	s.memVals = append(s.memVals, 0)
	copy(s.memVals[i+1:], s.memVals[i:])
	s.memVals[i] = value
	s.memDead = append(s.memDead, false)
	copy(s.memDead[i+1:], s.memDead[i:])
	s.memDead[i] = dead

	if len(s.memKeys) >= s.knobs.MemtableCap {
		s.flush()
	}
}

// Flush forces the memtable out into a new run (test/benchmark hook).
func (s *DiskStore) Flush() { s.flush() }

func (s *DiskStore) flush() {
	if len(s.memKeys) == 0 {
		return
	}
	s.st.Flushes++
	entries := make([]entry, len(s.memKeys))
	for i := range s.memKeys {
		entries[i] = entry{key: s.memKeys[i], val: s.memVals[i], dead: s.memDead[i]}
	}
	r := s.buildRun(entries)
	s.runs = append([]*diskRun{r}, s.runs...)
	s.memKeys = s.memKeys[:0]
	s.memVals = s.memVals[:0]
	s.memDead = s.memDead[:0]
	if len(s.runs) > s.knobs.MaxRuns {
		s.compact()
	}
}

// buildRun writes entries (sorted, deduped) into fresh pages and returns
// the run with its in-memory index and filter.
func (s *DiskStore) buildRun(entries []entry) *diskRun {
	r := &diskRun{n: len(entries), filter: bloom.New(len(entries), s.knobs.BloomBitsPerKey)}
	for off := 0; off < len(entries); {
		pg, id, err := s.pool.Alloc(pager.TypeRun)
		if err != nil {
			panic(fmt.Sprintf("kv: disk store: %v", err))
		}
		r.pages = append(r.pages, id)
		r.first = append(r.first, entries[off].key)
		for slot := 0; slot < entriesPerPage && off < len(entries); slot, off = slot+1, off+1 {
			if !pg.Insert(slot, runCell(entries[off])) {
				panic("kv: disk store: run cell does not fit")
			}
			r.filter.Add(entries[off].key)
		}
		s.pool.Unpin(id, true)
	}
	return r
}

// readRun decodes every entry of r (ascending) through the pool.
func (s *DiskStore) readRun(r *diskRun) []entry {
	out := make([]entry, 0, r.n)
	for _, id := range r.pages {
		pg := s.get(id)
		for i := 0; i < pg.NumCells(); i++ {
			out = append(out, decodeRunCell(pg.Cell(i)))
		}
		s.pool.Unpin(id, false)
	}
	return out
}

// compact merges all runs into one (single-tier size-tiered policy,
// matching the in-memory Store so knob effects are comparable), dropping
// tombstones, and frees the old runs' pages into the quarantine.
func (s *DiskStore) compact() {
	if len(s.runs) <= 1 {
		return
	}
	s.st.Compactions++
	// Streamed k-way merge over per-run cursors; newest run wins ties.
	type cursor struct {
		entries []entry
		idx     int
	}
	cursors := make([]cursor, len(s.runs))
	for i, r := range s.runs {
		cursors[i] = cursor{entries: s.readRun(r)}
		s.st.CompactedBytes += uint64(r.n)
	}
	var merged []entry
	for {
		best := -1
		var bk uint64
		for ci := range cursors {
			c := &cursors[ci]
			if c.idx >= len(c.entries) {
				continue
			}
			k := c.entries[c.idx].key
			if best == -1 || k < bk {
				best, bk = ci, k
			}
		}
		if best == -1 {
			break
		}
		e := cursors[best].entries[cursors[best].idx]
		for ci := range cursors {
			c := &cursors[ci]
			if c.idx < len(c.entries) && c.entries[c.idx].key == bk {
				c.idx++
			}
		}
		if e.dead {
			continue // full merge: tombstones have masked everything older
		}
		merged = append(merged, e)
	}
	old := s.runs
	s.runs = []*diskRun{s.buildRun(merged)}
	for _, r := range old {
		for _, id := range r.pages {
			if err := s.pool.Free(id); err != nil {
				panic(fmt.Sprintf("kv: disk store: %v", err))
			}
		}
	}
}

// runGet searches r for key: binary search the per-page index, then the
// page's cells. probes counts cell comparisons (the RunProbes metric).
func (s *DiskStore) runGet(r *diskRun, key uint64) (entry, bool, int) {
	// Last page with first <= key.
	lo, hi := 0, len(r.first)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.first[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return entry{}, false, 0
	}
	pg := s.get(r.pages[lo-1])
	defer s.pool.Unpin(r.pages[lo-1], false)
	probes := 0
	clo, chi := 0, pg.NumCells()
	for clo < chi {
		mid := int(uint(clo+chi) >> 1)
		probes++
		e := decodeRunCell(pg.Cell(mid))
		switch {
		case e.key < key:
			clo = mid + 1
		case e.key > key:
			chi = mid
		default:
			return e, true, probes
		}
	}
	return entry{}, false, probes
}

// Get returns the value for key.
func (s *DiskStore) Get(key uint64) (uint64, bool) {
	s.st.Gets++
	if i, found := s.memFind(key); found {
		s.st.MemtableHits++
		if s.memDead[i] {
			return 0, false
		}
		return s.memVals[i], true
	}
	for _, r := range s.runs {
		s.st.RunsSearchedSum++
		if !r.filter.MayContain(key) {
			s.st.BloomNegatives++
			continue
		}
		e, found, probes := s.runGet(r, key)
		s.st.RunProbes += uint64(probes)
		if found {
			if e.dead {
				return 0, false
			}
			return e.val, true
		}
	}
	return 0, false
}

// Scan visits live entries with key in [lo, hi] ascending with newest-wins
// semantics, stopping early if fn returns false; it returns the number
// visited. Run cursors decode one page at a time through the pool.
func (s *DiskStore) Scan(lo, hi uint64, fn func(key, value uint64) bool) int {
	if hi < lo {
		return 0
	}
	type cursor struct {
		run     *diskRun
		pageIdx int
		cellIdx int
		page    []entry // decoded current page
	}
	load := func(c *cursor) {
		c.page = nil
		if c.pageIdx >= len(c.run.pages) {
			return
		}
		pg := s.get(c.run.pages[c.pageIdx])
		c.page = make([]entry, pg.NumCells())
		for i := range c.page {
			c.page[i] = decodeRunCell(pg.Cell(i))
		}
		s.pool.Unpin(c.run.pages[c.pageIdx], false)
	}
	advance := func(c *cursor) {
		c.cellIdx++
		for c.page != nil && c.cellIdx >= len(c.page) {
			c.pageIdx++
			c.cellIdx = 0
			load(c)
		}
	}
	// Position each run cursor at the first entry >= lo.
	cursors := make([]*cursor, len(s.runs))
	for ri, r := range s.runs {
		c := &cursor{run: r}
		pi, ph := 0, len(r.first)
		for pi < ph {
			mid := int(uint(pi+ph) >> 1)
			if r.first[mid] <= lo {
				pi = mid + 1
			} else {
				ph = mid
			}
		}
		if pi > 0 {
			pi--
		}
		c.pageIdx = pi
		load(c)
		for c.page != nil && c.page[c.cellIdx].key < lo {
			advance(c)
		}
		cursors[ri] = c
	}
	mi, _ := s.memFind(lo)

	visited := 0
	for {
		// Smallest current key across memtable and runs; newer wins ties.
		best := -1 // -1 none, 0 memtable, 1+ri run
		var bk, bv uint64
		var bdead bool
		if mi < len(s.memKeys) && s.memKeys[mi] <= hi {
			best, bk, bv, bdead = 0, s.memKeys[mi], s.memVals[mi], s.memDead[mi]
		}
		for ri, c := range cursors {
			if c.page == nil {
				continue
			}
			e := c.page[c.cellIdx]
			if e.key > hi {
				continue
			}
			if best == -1 || e.key < bk {
				best, bk, bv, bdead = ri+1, e.key, e.val, e.dead
			}
		}
		if best == -1 {
			return visited
		}
		if mi < len(s.memKeys) && s.memKeys[mi] == bk {
			mi++
		}
		for _, c := range cursors {
			if c.page != nil && c.page[c.cellIdx].key == bk {
				advance(c)
			}
		}
		if bdead {
			continue
		}
		visited++
		if !fn(bk, bv) {
			return visited
		}
	}
}

// Len returns the number of live keys (O(data); tests and reports only).
func (s *DiskStore) Len() int {
	n := 0
	s.Scan(0, ^uint64(0), func(_, _ uint64) bool { n++; return n >= 0 })
	return n
}

// Reachable returns every page referenced by the current catalog and runs
// — the input to pager consistency checks.
func (s *DiskStore) Reachable() []pager.PageID {
	var out []pager.PageID
	out = append(out, s.catalog...)
	for _, r := range s.runs {
		out = append(out, r.pages...)
	}
	return out
}

// Checkpoint makes the current runs durable: the memtable is flushed, the
// run directory is serialized into fresh catalog pages, the catalog root
// flips, and the pool checkpoint publishes it all atomically.
func (s *DiskStore) Checkpoint() error {
	s.flush()
	return s.Sync()
}

// Sync publishes the current run set without forcing a memtable flush —
// the durability step a store performs after each natural flush or
// compaction (buffered memtable entries are the volatile tier by design).
func (s *DiskStore) Sync() error {
	if err := s.writeCatalog(); err != nil {
		return err
	}
	return s.pool.Checkpoint()
}

// writeCatalog serializes the run directory (newest first) into a fresh
// chain of catalog pages and points the catalog root at it. Old catalog
// pages join the free-page quarantine.
//
// Cell stream format, in chain order:
//
//	header cell:  0x00, entryCount uint32, pageCount uint32
//	chunk cell:   0x01, pageID uint32 ... (up to catalogChunkIDs)
//
// Each run is one header followed by enough chunks to list its pages.
func (s *DiskStore) writeCatalog() error {
	var cells [][]byte
	for _, r := range s.runs {
		hdr := make([]byte, 9)
		hdr[0] = 0
		binary.LittleEndian.PutUint32(hdr[1:], uint32(r.n))
		binary.LittleEndian.PutUint32(hdr[5:], uint32(len(r.pages)))
		cells = append(cells, hdr)
		for off := 0; off < len(r.pages); off += catalogChunkIDs {
			end := off + catalogChunkIDs
			if end > len(r.pages) {
				end = len(r.pages)
			}
			chunk := make([]byte, 1+4*(end-off))
			chunk[0] = 1
			for i, id := range r.pages[off:end] {
				binary.LittleEndian.PutUint32(chunk[1+4*i:], uint32(id))
			}
			cells = append(cells, chunk)
		}
	}

	old := s.catalog
	s.catalog = nil
	head := pager.NilPage
	var cur *pager.Page
	var curID pager.PageID
	for _, cell := range cells {
		if cur != nil && cur.Insert(cur.NumCells(), cell) {
			continue
		}
		pg, id, err := s.pool.Alloc(pager.TypeCatalog)
		if err != nil {
			return err
		}
		if cur != nil {
			cur.SetNext(id)
			s.pool.Unpin(curID, true)
		} else {
			head = id
		}
		cur, curID = pg, id
		if !cur.Insert(0, cell) {
			return fmt.Errorf("kv: catalog cell of %d bytes does not fit", len(cell))
		}
	}
	if cur == nil {
		// No runs at all: an empty catalog page marks "empty store".
		pg, id, err := s.pool.Alloc(pager.TypeCatalog)
		if err != nil {
			return err
		}
		_ = pg
		head = id
		curID = id
	}
	s.pool.Unpin(curID, true)
	s.pool.File().SetRoot(catalogRootSlot, head)
	for _, id := range old {
		if err := s.pool.Free(id); err != nil {
			return err
		}
	}
	s.catalog = s.chainPages(head)
	return nil
}

// chainPages walks a page chain from head collecting IDs.
func (s *DiskStore) chainPages(head pager.PageID) []pager.PageID {
	var out []pager.PageID
	for id := head; id != pager.NilPage; {
		out = append(out, id)
		pg := s.get(id)
		next := pg.Next()
		s.pool.Unpin(id, false)
		id = next
	}
	return out
}

// loadCatalog rebuilds the run directory from the published catalog chain,
// re-deriving each run's sparse index and Bloom filter from its pages.
func (s *DiskStore) loadCatalog() error {
	head := s.pool.File().Root(catalogRootSlot)
	s.catalog = s.chainPages(head)
	s.runs = nil

	var pending *diskRun
	var want int
	finish := func() error {
		if pending == nil {
			return nil
		}
		if len(pending.pages) != want {
			return fmt.Errorf("kv: catalog lists %d pages, found %d", want, len(pending.pages))
		}
		pending.filter = bloom.New(pending.n, s.knobs.BloomBitsPerKey)
		for _, id := range pending.pages {
			pg := s.get(id)
			if pg.NumCells() > 0 {
				pending.first = append(pending.first, decodeRunCell(pg.Cell(0)).key)
			}
			for i := 0; i < pg.NumCells(); i++ {
				pending.filter.Add(decodeRunCell(pg.Cell(i)).key)
			}
			s.pool.Unpin(id, false)
		}
		s.runs = append(s.runs, pending)
		pending = nil
		return nil
	}
	for _, cid := range s.catalog {
		pg := s.get(cid)
		for i := 0; i < pg.NumCells(); i++ {
			cell := pg.Cell(i)
			switch cell[0] {
			case 0:
				if err := finish(); err != nil {
					s.pool.Unpin(cid, false)
					return err
				}
				pending = &diskRun{n: int(binary.LittleEndian.Uint32(cell[1:]))}
				want = int(binary.LittleEndian.Uint32(cell[5:]))
			case 1:
				if pending == nil {
					s.pool.Unpin(cid, false)
					return fmt.Errorf("kv: catalog chunk before any run header")
				}
				for off := 1; off < len(cell); off += 4 {
					pending.pages = append(pending.pages, pager.PageID(binary.LittleEndian.Uint32(cell[off:])))
				}
			default:
				s.pool.Unpin(cid, false)
				return fmt.Errorf("kv: unknown catalog cell tag %d", cell[0])
			}
		}
		s.pool.Unpin(cid, false)
	}
	return finish()
}
