package kv

import (
	"testing"

	"repro/internal/pager"
)

func newDiskStore(t *testing.T, knobs Knobs) *DiskStore {
	t.Helper()
	f, err := pager.Create(pager.NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenDisk(pager.NewPool(f, pager.PoolKnobs{Pages: 32}), knobs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testKnobs() Knobs {
	return Knobs{MemtableCap: 256, MaxRuns: 3, SparseEvery: 64, BloomBitsPerKey: 10}
}

func TestDiskStoreMatchesMemStore(t *testing.T) {
	// The disk store must agree with the in-memory store op for op: same
	// design, different media.
	mem := Open(testKnobs())
	disk := newDiskStore(t, testKnobs())
	const n = 5000
	for i := uint64(0); i < n; i++ {
		k := mix64(i % 1500) // overwrites included
		mem.Put(k, i)
		disk.Put(k, i)
		if i%7 == 0 {
			dk := mix64((i * 3) % 1500)
			mem.Delete(dk)
			disk.Delete(dk)
		}
	}
	for i := uint64(0); i < 1500; i++ {
		k := mix64(i)
		mv, mok := mem.Get(k)
		dv, dok := disk.Get(k)
		if mv != dv || mok != dok {
			t.Fatalf("key %d: mem=(%d,%v) disk=(%d,%v)", k, mv, mok, dv, dok)
		}
	}
	if mem.Len() != disk.Len() {
		t.Fatalf("len: mem=%d disk=%d", mem.Len(), disk.Len())
	}
	// Scans agree, including ordering.
	var memSeen, diskSeen []uint64
	mem.Scan(0, ^uint64(0), func(k, v uint64) bool { memSeen = append(memSeen, k, v); return true })
	disk.Scan(0, ^uint64(0), func(k, v uint64) bool { diskSeen = append(diskSeen, k, v); return true })
	if len(memSeen) != len(diskSeen) {
		t.Fatalf("scan lengths: mem=%d disk=%d", len(memSeen)/2, len(diskSeen)/2)
	}
	for i := range memSeen {
		if memSeen[i] != diskSeen[i] {
			t.Fatalf("scan diverges at %d: mem=%d disk=%d", i/2, memSeen[i], diskSeen[i])
		}
	}
}

func TestDiskStoreFlushAndCompactMovePages(t *testing.T) {
	s := newDiskStore(t, testKnobs())
	for i := uint64(0); i < 2000; i++ {
		s.Put(mix64(i), i)
	}
	c := s.Counters()
	if c.Flushes == 0 || c.Compactions == 0 {
		t.Fatalf("no flush/compaction traffic: %+v", c)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pc := s.Pool().Counters()
	if pc.PagesWritten == 0 || pc.Fsyncs == 0 {
		t.Fatalf("checkpoint wrote no pages: %+v", pc)
	}
	if s.RunCount() > s.Knobs().MaxRuns {
		t.Fatalf("runs %d exceed budget %d", s.RunCount(), s.Knobs().MaxRuns)
	}
}

func TestDiskStoreBloomSkipsRuns(t *testing.T) {
	s := newDiskStore(t, testKnobs())
	for i := uint64(0); i < 600; i++ {
		s.Put(mix64(i), i)
	}
	s.Flush()
	for i := uint64(10000); i < 10200; i++ {
		s.Get(mix64(i))
	}
	if s.Counters().BloomNegatives == 0 {
		t.Fatal("misses never skipped a run via the Bloom filter")
	}
}

func TestDiskStorePersistsAcrossReopen(t *testing.T) {
	b := pager.NewMemBackend()
	f, err := pager.Create(b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenDisk(pager.NewPool(f, pager.PoolKnobs{Pages: 32}), testKnobs())
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := uint64(0); i < n; i++ {
		s.Put(mix64(i), i)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	f2, err := pager.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDisk(pager.NewPool(f2, pager.PoolKnobs{Pages: 32}), testKnobs())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Pool().CheckConsistency(s2.Reachable()); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := s2.Get(mix64(i)); !ok || v != i {
			t.Fatalf("reopened get %d = (%d,%v)", i, v, ok)
		}
	}
	// Rebuilt Bloom filters still work.
	for i := uint64(50000); i < 50100; i++ {
		s2.Get(mix64(i))
	}
	if s2.Counters().BloomNegatives == 0 {
		t.Fatal("rebuilt filters never fired")
	}
}

func TestDiskStoreCrashDuringCompactionRecovers(t *testing.T) {
	// Kill the store mid-compaction (no checkpoint after it) and reopen:
	// the published catalog must still describe intact runs, and the
	// rebuilt free-list must partition the file cleanly.
	b := pager.NewMemBackend()
	f, err := pager.Create(b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenDisk(pager.NewPool(f, pager.PoolKnobs{Pages: 32}), testKnobs())
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	for i := uint64(0); i < n; i++ {
		s.Put(mix64(i), i)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// More writes force flushes and at least one compaction, all
	// unpublished. Evictions write pages, but only to fresh or
	// post-checkpoint-freed slots — never over published pages.
	for i := n; i < 2*n; i++ {
		s.Put(mix64(uint64(i)), uint64(i))
	}
	if s.Counters().Compactions == 0 {
		t.Fatal("workload did not trigger a compaction")
	}
	// Crash: drop all in-memory state, reopen from the backend bytes.
	f2, err := pager.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDisk(pager.NewPool(f2, pager.PoolKnobs{Pages: 32}), testKnobs())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Pool().CheckConsistency(s2.Reachable()); err != nil {
		t.Fatalf("free-list inconsistent after mid-compaction crash: %v", err)
	}
	// Exactly the checkpointed state survives.
	for i := uint64(0); i < n; i++ {
		if v, ok := s2.Get(mix64(i)); !ok || v != i {
			t.Fatalf("checkpointed key %d lost: (%d,%v)", i, v, ok)
		}
	}
	if s2.Len() != n {
		t.Fatalf("len after crash = %d, want %d", s2.Len(), n)
	}
	// And the store keeps working after recovery.
	for i := uint64(0); i < 500; i++ {
		s2.Put(mix64(100000+i), i)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get(mix64(100123)); !ok || v != 123 {
		t.Fatalf("post-recovery write lost: (%d,%v)", v, ok)
	}
}

func TestDiskStoreEmptyCheckpointReopen(t *testing.T) {
	b := pager.NewMemBackend()
	f, err := pager.Create(b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenDisk(pager.NewPool(f, pager.PoolKnobs{Pages: 16}), testKnobs())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	f2, err := pager.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDisk(pager.NewPool(f2, pager.PoolKnobs{Pages: 16}), testKnobs())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("empty store reopened with %d keys", s2.Len())
	}
}

// mix64 is a deterministic key scrambler (splitmix64 finalizer).
func mix64(x uint64) uint64 {
	z := x*0x9E3779B97F4A7C15 + 1
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
