package kv

import (
	"repro/internal/search"
)

// Store is an in-memory log-structured KV store: writes land in a sorted
// memtable; full memtables flush to immutable sorted runs; when more than
// Knobs.MaxRuns runs accumulate they are merge-compacted into one. Reads
// consult the memtable, then runs newest-to-oldest through Bloom filters
// and sparse indexes.
//
// Not safe for concurrent use; the benchmark driver shards or serializes.
type Store struct {
	knobs Knobs

	// memtable: sorted keys with parallel values/liveness. A slice-based
	// sorted memtable keeps the hot path allocation-free.
	memKeys []uint64
	memVals []uint64
	memDead []bool

	runs []*run // runs[0] is newest

	st Counters
}

// Counters exposes the store's internal work counters so benchmarks can
// explain throughput differences between knob settings.
type Counters struct {
	Gets            uint64
	Puts            uint64
	Deletes         uint64
	Flushes         uint64
	Compactions     uint64
	CompactedBytes  uint64 // entries rewritten by compaction
	RunProbes       uint64 // entries touched during run lookups
	BloomNegatives  uint64 // run lookups skipped by a filter
	MemtableHits    uint64
	RunsSearchedSum uint64 // total runs consulted across Gets
}

// Open returns an empty store with the given knobs.
func Open(knobs Knobs) *Store {
	return &Store{knobs: knobs.Validate()}
}

// Knobs returns the active configuration.
func (s *Store) Knobs() Knobs { return s.knobs }

// Counters returns a snapshot of the work counters.
func (s *Store) Counters() Counters { return s.st }

// SetKnobs applies a new configuration (an online re-tune). The new
// MaxRuns takes effect at the next write; a stricter run budget triggers an
// immediate compaction so reads benefit right away.
func (s *Store) SetKnobs(k Knobs) {
	s.knobs = k.Validate()
	if len(s.runs) > s.knobs.MaxRuns {
		s.compact()
	}
}

// memFind locates key in the memtable.
func (s *Store) memFind(key uint64) (int, bool) {
	i := search.LowerBound(s.memKeys, key)
	return i, i < len(s.memKeys) && s.memKeys[i] == key
}

// Put inserts or overwrites key.
func (s *Store) Put(key, value uint64) {
	s.st.Puts++
	s.memPut(key, value, false)
}

// Delete removes key (tombstone semantics: the deletion masks older runs).
func (s *Store) Delete(key uint64) {
	s.st.Deletes++
	s.memPut(key, 0, true)
}

func (s *Store) memPut(key, value uint64, dead bool) {
	i, found := s.memFind(key)
	if found {
		s.memVals[i] = value
		s.memDead[i] = dead
		return
	}
	s.memKeys = append(s.memKeys, 0)
	copy(s.memKeys[i+1:], s.memKeys[i:])
	s.memKeys[i] = key
	s.memVals = append(s.memVals, 0)
	copy(s.memVals[i+1:], s.memVals[i:])
	s.memVals[i] = value
	s.memDead = append(s.memDead, false)
	copy(s.memDead[i+1:], s.memDead[i:])
	s.memDead[i] = dead

	if len(s.memKeys) >= s.knobs.MemtableCap {
		s.flush()
	}
}

// flush turns the memtable into the newest run.
func (s *Store) flush() {
	if len(s.memKeys) == 0 {
		return
	}
	s.st.Flushes++
	entries := make([]entry, len(s.memKeys))
	for i := range s.memKeys {
		entries[i] = entry{key: s.memKeys[i], val: s.memVals[i], dead: s.memDead[i]}
	}
	r := newRun(entries, s.knobs.SparseEvery, s.knobs.BloomBitsPerKey)
	s.runs = append([]*run{r}, s.runs...)
	s.memKeys = s.memKeys[:0]
	s.memVals = s.memVals[:0]
	s.memDead = s.memDead[:0]
	if len(s.runs) > s.knobs.MaxRuns {
		s.compact()
	}
}

// compact merges all runs into one, dropping tombstones.
func (s *Store) compact() {
	if len(s.runs) <= 1 {
		return
	}
	s.st.Compactions++
	for _, r := range s.runs {
		s.st.CompactedBytes += uint64(len(r.entries))
	}
	merged := mergeRuns(s.runs, s.knobs.SparseEvery, s.knobs.BloomBitsPerKey, true)
	s.runs = []*run{merged}
}

// Get returns the value for key.
func (s *Store) Get(key uint64) (uint64, bool) {
	s.st.Gets++
	if i, found := s.memFind(key); found {
		s.st.MemtableHits++
		if s.memDead[i] {
			return 0, false
		}
		return s.memVals[i], true
	}
	for _, r := range s.runs {
		s.st.RunsSearchedSum++
		if !r.filter.MayContain(key) {
			s.st.BloomNegatives++
			continue
		}
		e, found, probes := r.get(key)
		s.st.RunProbes += uint64(probes)
		if found {
			if e.dead {
				return 0, false
			}
			return e.val, true
		}
	}
	return 0, false
}

// Scan visits live entries with key in [lo, hi] ascending, stopping early
// if fn returns false; it returns the number visited. The scan merges the
// memtable and all runs with newest-wins semantics.
func (s *Store) Scan(lo, hi uint64, fn func(key, value uint64) bool) int {
	if hi < lo {
		return 0
	}
	type cursor struct {
		// source 0 is the memtable; 1..len(runs) are runs newest-first,
		// so a smaller source index wins ties.
		source int
		idx    int
	}
	cursors := make([]cursor, 0, len(s.runs)+1)
	mi, _ := s.memFind(lo)
	cursors = append(cursors, cursor{source: 0, idx: mi})
	for ri, r := range s.runs {
		cursors = append(cursors, cursor{source: ri + 1, idx: r.lowerBound(lo)})
	}
	keyAt := func(c cursor) (uint64, uint64, bool, bool) { // key, val, dead, ok
		if c.source == 0 {
			if c.idx >= len(s.memKeys) {
				return 0, 0, false, false
			}
			return s.memKeys[c.idx], s.memVals[c.idx], s.memDead[c.idx], true
		}
		r := s.runs[c.source-1]
		if c.idx >= len(r.entries) {
			return 0, 0, false, false
		}
		e := r.entries[c.idx]
		return e.key, e.val, e.dead, true
	}
	visited := 0
	for {
		// Find the smallest current key; newest source wins ties.
		best := -1
		var bk, bv uint64
		var bdead bool
		for ci := range cursors {
			k, v, dead, ok := keyAt(cursors[ci])
			if !ok || k > hi {
				continue
			}
			if best == -1 || k < bk {
				best, bk, bv, bdead = ci, k, v, dead
			}
		}
		if best == -1 {
			return visited
		}
		// Advance every cursor sitting on bk (dedup across sources).
		for ci := range cursors {
			if k, _, _, ok := keyAt(cursors[ci]); ok && k == bk {
				cursors[ci].idx++
			}
		}
		if bdead {
			continue
		}
		visited++
		if !fn(bk, bv) {
			return visited
		}
	}
}

// Len returns the number of live keys. It is O(data) — intended for tests
// and reports, not hot paths.
func (s *Store) Len() int {
	n := 0
	s.Scan(0, ^uint64(0), func(_, _ uint64) bool { n++; return n >= 0 })
	return n
}

// RunCount reports the current number of on-"disk" runs.
func (s *Store) RunCount() int { return len(s.runs) }

// MemtableLen reports the number of buffered entries.
func (s *Store) MemtableLen() int { return len(s.memKeys) }

// Flush forces the memtable out (test/benchmark hook).
func (s *Store) Flush() { s.flush() }
