// Package kv implements a log-structured key-value store (memtable +
// sorted runs + merge compaction + Bloom filters) with explicit tuning
// knobs. It is the substrate for the paper's cost metrics (Fig 1d): the
// knob space is what the auto-tuner searches and what the simulated
// database administrator tunes by hand, so "training cost to outperform a
// manually-tuned traditional system" becomes measurable.
package kv

import "fmt"

// Knobs are the store's tunable configuration parameters. The defaults are
// deliberately mediocre for most workloads — mirroring an untuned stock
// deployment — so that both tuning paths have headroom to demonstrate.
type Knobs struct {
	// MemtableCap is the number of entries buffered before a flush to a
	// sorted run. Larger favours write-heavy workloads.
	MemtableCap int
	// MaxRuns is the number of on-"disk" runs tolerated before a full
	// merge compaction. Smaller favours read-heavy workloads.
	MaxRuns int
	// SparseEvery is the sparse-index granularity inside a run: one
	// index entry per SparseEvery keys. Smaller = faster reads, more
	// memory.
	SparseEvery int
	// BloomBitsPerKey sizes each run's Bloom filter. 0 disables filters.
	BloomBitsPerKey int
}

// DefaultKnobs returns the untuned stock configuration.
func DefaultKnobs() Knobs {
	return Knobs{
		MemtableCap:     4096,
		MaxRuns:         12,
		SparseEvery:     256,
		BloomBitsPerKey: 0,
	}
}

// Validate normalizes out-of-range values and returns the cleaned knobs.
func (k Knobs) Validate() Knobs {
	if k.MemtableCap < 64 {
		k.MemtableCap = 64
	}
	if k.MaxRuns < 1 {
		k.MaxRuns = 1
	}
	if k.SparseEvery < 1 {
		k.SparseEvery = 1
	}
	if k.BloomBitsPerKey < 0 {
		k.BloomBitsPerKey = 0
	}
	if k.BloomBitsPerKey > 32 {
		k.BloomBitsPerKey = 32
	}
	return k
}

// String renders the knob values compactly for reports.
func (k Knobs) String() string {
	return fmt.Sprintf("knobs{mem=%d runs=%d sparse=%d bloom=%d}",
		k.MemtableCap, k.MaxRuns, k.SparseEvery, k.BloomBitsPerKey)
}

// Space enumerates the discrete knob search space the tuner and the DBA
// model draw from. Kept modest (4*4*3*3 = 144 points) so exhaustive search
// is feasible in tests while hill climbing remains non-trivial.
func Space() []Knobs {
	var out []Knobs
	for _, mem := range []int{1024, 4096, 16384, 65536} {
		for _, runs := range []int{2, 4, 8, 16} {
			for _, sparse := range []int{32, 128, 512} {
				for _, bloom := range []int{0, 8, 16} {
					out = append(out, Knobs{
						MemtableCap:     mem,
						MaxRuns:         runs,
						SparseEvery:     sparse,
						BloomBitsPerKey: bloom,
					})
				}
			}
		}
	}
	return out
}
