// Package prof wires the conventional -cpuprofile/-memprofile flags into
// the CLI binaries. The perf campaign's workflow is: reproduce a hot path
// under cmd/lsbench or cmd/figures with profiling on, feed the output to
// `go tool pprof`, and check the flame graph against DESIGN.md's hot-path
// inventory.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (skipped when empty) and returns a
// stop function that ends the CPU profile and, when memPath is non-empty,
// writes a GC-settled heap profile there. The stop function logs rather
// than fails: a broken profile write should never mask the run's output.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof: creating mem profile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: writing mem profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing mem profile:", err)
			}
		}
	}, nil
}
