package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const sampleYCSBLog = `YCSB Client 0.17.0
Loading workload...
Starting test.
READ usertable user6284781860667377211 [ <all fields>]
INSERT usertable user8517097267634966620 [ field0=value0 field1=value1 ]
UPDATE usertable user42 [ field2=value2 ]
READMODIFYWRITE usertable user43 [ field0 ] [ field0=new ]
SCAN usertable user544337897754927744 67 [ <all fields>]
DELETE usertable user99
READ usertable frontier-key-aa17 [ <all fields>]
[OVERALL], RunTime(ms), 1795
`

func TestParseYCSBOp(t *testing.T) {
	ops, err := ImportYCSB(strings.NewReader(sampleYCSBLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 7 {
		t.Fatalf("imported %d ops, want 7 (status lines must be skipped)", len(ops))
	}
	wantTypes := []OpType{Get, Put, Put, Put, Scan, Delete, Get}
	for i, w := range wantTypes {
		if ops[i].Type != w {
			t.Fatalf("op %d type %v, want %v", i, ops[i].Type, w)
		}
	}
	if ops[0].Key != 6284781860667377211 {
		t.Fatalf("numeric user key not preserved: %d", ops[0].Key)
	}
	if ops[2].Key != 42 || ops[2].Value == 0 {
		t.Fatalf("update mapped to %+v, want key 42 with a derived value", ops[2])
	}
	if ops[4].ScanLimit != 67 {
		t.Fatalf("scan limit %d, want 67", ops[4].ScanLimit)
	}
	if ops[6].Key == 0 {
		t.Fatal("non-numeric key did not hash")
	}
	// Hashing is deterministic.
	a, _ := ParseYCSBOp("READ usertable frontier-key-aa17")
	b, _ := ParseYCSBOp("READ usertable frontier-key-aa17")
	if a.Key != b.Key || a.Key != ops[6].Key {
		t.Fatal("hashed key not deterministic")
	}

	for _, junk := range []string{
		"", "READ", "READ usertable", "SCAN usertable user5",
		"SCAN usertable user5 x", "SCAN usertable user5 0",
		"FROB usertable user5", "[OVERALL], Throughput(ops/sec), 5571",
	} {
		if _, ok := ParseYCSBOp(junk); ok {
			t.Fatalf("junk line %q parsed as an op", junk)
		}
	}

	if _, err := ImportYCSB(strings.NewReader("no ops here\n")); err == nil {
		t.Fatal("op-free input accepted")
	}
}

// TestYCSBImportRoundTrip pins the lstrace-import path: a parsed YCSB log
// written through the trace writer reads back as the identical op stream
// with closed-loop (zero) gaps.
func TestYCSBImportRoundTrip(t *testing.T) {
	ops, err := ImportYCSB(strings.NewReader(sampleYCSBLog))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, "ycsb-import", 0)
	tw.BeginPhase(0, "import", len(ops))
	tw.Append(ops, make([]int64, len(ops)))
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "ycsb-import" || len(tr.Phases) != 1 {
		t.Fatalf("trace header mangled: %q, %d phases", tr.Name, len(tr.Phases))
	}
	ph := tr.Phases[0]
	if !reflect.DeepEqual(ph.Ops, ops) {
		t.Fatalf("ops did not round-trip:\n%+v\n%+v", ph.Ops, ops)
	}
	for i, g := range ph.Gaps {
		if g != 0 {
			t.Fatalf("gap %d is %d, want closed-loop zeros", i, g)
		}
	}
}
