// Package workload models benchmark workloads the way the paper demands
// (§III-A, §V-B): operation mixes over key-access distributions that can
// drift during a single run, and arrival processes with fluctuating query
// load — diurnal patterns, bursts — rather than a fixed closed loop.
package workload

import (
	"fmt"

	"repro/internal/distgen"
	"repro/internal/stats"
)

// OpType enumerates the KV operation types the benchmark issues.
type OpType int

// Operation types.
const (
	Get OpType = iota
	Put
	Delete
	Scan
	numOpTypes
)

// String names the operation.
func (o OpType) String() string {
	switch o {
	case Get:
		return "get"
	case Put:
		return "put"
	case Delete:
		return "delete"
	case Scan:
		return "scan"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Op is one generated operation.
type Op struct {
	Type OpType
	Key  uint64
	// Value for Put.
	Value uint64
	// ScanLimit is the maximum entries a Scan visits.
	ScanLimit int
}

// Mix fixes the operation-type proportions. Fractions must be non-negative
// and sum to ~1 (Normalize enforces it).
type Mix struct {
	GetFrac    float64
	PutFrac    float64
	DeleteFrac float64
	ScanFrac   float64
	ScanLimit  int
}

// Normalize scales fractions to sum to 1 and defaults ScanLimit to 100.
// An all-zero mix becomes 100% Get.
func (m Mix) Normalize() Mix {
	sum := m.GetFrac + m.PutFrac + m.DeleteFrac + m.ScanFrac
	if sum <= 0 {
		return Mix{GetFrac: 1, ScanLimit: 100}
	}
	m.GetFrac /= sum
	m.PutFrac /= sum
	m.DeleteFrac /= sum
	m.ScanFrac /= sum
	if m.ScanLimit <= 0 {
		m.ScanLimit = 100
	}
	return m
}

// Common mixes, YCSB-inspired.
var (
	ReadHeavy  = Mix{GetFrac: 0.95, PutFrac: 0.05, ScanLimit: 100}
	Balanced   = Mix{GetFrac: 0.50, PutFrac: 0.50, ScanLimit: 100}
	WriteHeavy = Mix{GetFrac: 0.10, PutFrac: 0.85, DeleteFrac: 0.05, ScanLimit: 100}
	ScanHeavy  = Mix{GetFrac: 0.20, ScanFrac: 0.75, PutFrac: 0.05, ScanLimit: 200}
)

// Spec generates the operation stream of one benchmark phase. Reads draw
// keys from Access; writes draw new keys from InsertKeys (both may drift).
type Spec struct {
	Name string
	Mix  Mix
	// Access chooses the keys of Gets, Deletes, and Scan starts.
	Access distgen.Drift
	// InsertKeys chooses the keys of Puts. Nil reuses Access.
	InsertKeys distgen.Drift
	// MixEnd, when non-nil, blends the operation mix linearly from Mix
	// to MixEnd across the phase — a workload transition without a data
	// transition (OLTP-Bench-style evolving mixes, §I).
	MixEnd *Mix
}

// Generator produces the deterministic op stream for a Spec.
type Generator struct {
	spec Spec
	mix  Mix
	end  *Mix
	rng  *stats.RNG
	// keyBuf receives single-key draws so the per-op path allocates
	// nothing; drifts fill it in place via distgen.FillAt.
	keyBuf [1]uint64
}

// NewGenerator returns a generator for spec seeded deterministically.
func NewGenerator(spec Spec, seed uint64) *Generator {
	if spec.Access == nil {
		panic("workload: Spec.Access is required")
	}
	g := &Generator{spec: spec, mix: spec.Mix.Normalize(), rng: stats.NewRNG(seed)}
	if spec.MixEnd != nil {
		e := spec.MixEnd.Normalize()
		g.end = &e
	}
	return g
}

// Spec returns the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// mixAt interpolates the operation mix at the given progress.
func (g *Generator) mixAt(p float64) Mix {
	if g.end == nil {
		return g.mix
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	lerp := func(a, b float64) float64 { return a + p*(b-a) }
	return Mix{
		GetFrac:    lerp(g.mix.GetFrac, g.end.GetFrac),
		PutFrac:    lerp(g.mix.PutFrac, g.end.PutFrac),
		DeleteFrac: lerp(g.mix.DeleteFrac, g.end.DeleteFrac),
		ScanFrac:   lerp(g.mix.ScanFrac, g.end.ScanFrac),
		ScanLimit:  g.mix.ScanLimit,
	}
}

// Next generates the next operation for the given phase progress in [0,1].
func (g *Generator) Next(progress float64) Op {
	m := g.mixAt(progress)
	r := g.rng.Float64()
	var op Op
	switch {
	case r < m.GetFrac:
		op.Type = Get
		op.Key = g.accessKey(progress)
	case r < m.GetFrac+m.PutFrac:
		op.Type = Put
		op.Key = g.insertKey(progress)
		op.Value = g.rng.Uint64()
	case r < m.GetFrac+m.PutFrac+m.DeleteFrac:
		op.Type = Delete
		op.Key = g.accessKey(progress)
	default:
		op.Type = Scan
		op.Key = g.accessKey(progress)
		op.ScanLimit = m.ScanLimit
	}
	return op
}

func (g *Generator) accessKey(p float64) uint64 {
	distgen.FillAt(g.spec.Access, p, g.keyBuf[:])
	return g.keyBuf[0]
}

func (g *Generator) insertKey(p float64) uint64 {
	if g.spec.InsertKeys != nil {
		distgen.FillAt(g.spec.InsertKeys, p, g.keyBuf[:])
		return g.keyBuf[0]
	}
	return g.accessKey(p)
}
