package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// This file is the PBench half of the trace flywheel: fit compact
// statistics from a recorded trace (per-key popularity as an exact top-K
// head plus a bucketed tail, the inter-arrival distribution as log-scale
// buckets, and the operation mix), then synthesize unbounded seeded
// lookalike load from those statistics — optionally with a Redbench-style
// controlled repetition rate layered on top.

// KeyCount is one entry of the fitted popularity head.
type KeyCount struct {
	Key   uint64 `json:"key"`
	Count int64  `json:"count"`
}

// TraceStats are the workload statistics fitted from a recorded trace —
// everything the Synthesizer needs to generate lookalike load, small
// enough to serialize and ship instead of the trace itself.
type TraceStats struct {
	// Ops is the number of operations fitted.
	Ops int64 `json:"ops"`
	// OpCounts is the operation mix, indexed by OpType.
	OpCounts [numOpTypes]int64 `json:"opCounts"`

	// TopKeys is the exact popularity head: the TopK most-accessed keys,
	// descending by count (ties broken by key for determinism).
	TopKeys []KeyCount `json:"topKeys,omitempty"`
	// TailBuckets histograms the remaining accesses over equal-width key
	// ranges spanning [KeyLo, KeyHi].
	TailBuckets []int64 `json:"tailBuckets,omitempty"`
	KeyLo       uint64  `json:"keyLo"`
	KeyHi       uint64  `json:"keyHi"`
	// UniqueKeys counts distinct keys seen (head + tail).
	UniqueKeys int `json:"uniqueKeys"`

	// GapBuckets histograms inter-arrival gaps in quarter-octave log2
	// buckets: bucket 0 is gap<=0 (closed loop), bucket i>=1 covers
	// [2^((i-1)/4), 2^(i/4)) ns.
	GapBuckets []int64 `json:"gapBuckets,omitempty"`
	// GapMeanNs is the exact mean inter-arrival gap of the fitted trace.
	GapMeanNs float64 `json:"gapMeanNs"`

	// ScanLimit is the most frequent scan limit (0 when the trace has no
	// scans).
	ScanLimit int `json:"scanLimit,omitempty"`
}

// FitOptions sizes the fitted model.
type FitOptions struct {
	// TopK is the exact popularity head size (default 64).
	TopK int
	// TailBuckets is the tail histogram resolution (default 256).
	TailBuckets int
}

func (o FitOptions) withDefaults() FitOptions {
	if o.TopK <= 0 {
		o.TopK = 64
	}
	if o.TailBuckets <= 0 {
		o.TailBuckets = 256
	}
	return o
}

// FitTrace fits statistics over every phase of a decoded trace.
func FitTrace(t *Trace, opt FitOptions) *TraceStats {
	var ops []Op
	var gaps []int64
	if len(t.Phases) == 1 {
		ops, gaps = t.Phases[0].Ops, t.Phases[0].Gaps
	} else {
		for _, p := range t.Phases {
			ops = append(ops, p.Ops...)
			gaps = append(gaps, p.Gaps...)
		}
	}
	return FitStream(ops, gaps, opt)
}

// FitStream fits statistics from a raw operation/gap stream.
func FitStream(ops []Op, gaps []int64, opt FitOptions) *TraceStats {
	opt = opt.withDefaults()
	st := &TraceStats{Ops: int64(len(ops))}
	if len(ops) == 0 {
		return st
	}

	freq := make(map[uint64]int64, len(ops)/4)
	scanLimits := make(map[int]int64)
	st.KeyLo, st.KeyHi = ops[0].Key, ops[0].Key
	for _, op := range ops {
		st.OpCounts[op.Type]++
		freq[op.Key]++
		if op.Key < st.KeyLo {
			st.KeyLo = op.Key
		}
		if op.Key > st.KeyHi {
			st.KeyHi = op.Key
		}
		if op.Type == Scan {
			scanLimits[op.ScanLimit]++
		}
	}
	st.UniqueKeys = len(freq)

	// Popularity head: exact top-K by count, deterministic order.
	kcs := make([]KeyCount, 0, len(freq))
	for k, c := range freq {
		kcs = append(kcs, KeyCount{Key: k, Count: c})
	}
	sort.Slice(kcs, func(i, j int) bool {
		if kcs[i].Count != kcs[j].Count {
			return kcs[i].Count > kcs[j].Count
		}
		return kcs[i].Key < kcs[j].Key
	})
	head := opt.TopK
	if head > len(kcs) {
		head = len(kcs)
	}
	st.TopKeys = append([]KeyCount(nil), kcs[:head]...)

	// Popularity tail: equal-width histogram over the observed key range.
	if head < len(kcs) {
		st.TailBuckets = make([]int64, opt.TailBuckets)
		span := st.KeyHi - st.KeyLo
		for _, kc := range kcs[head:] {
			b := 0
			if span > 0 {
				b = int(float64(kc.Key-st.KeyLo) / float64(span) * float64(opt.TailBuckets))
				if b >= opt.TailBuckets {
					b = opt.TailBuckets - 1
				}
			}
			st.TailBuckets[b] += kc.Count
		}
	}

	// Inter-arrival distribution.
	var sum float64
	maxBucket := 0
	counts := make(map[int]int64)
	for _, g := range gaps {
		b := gapBucket(g)
		counts[b]++
		if b > maxBucket {
			maxBucket = b
		}
		if g > 0 {
			sum += float64(g)
		}
	}
	st.GapBuckets = make([]int64, maxBucket+1)
	for b, c := range counts {
		st.GapBuckets[b] = c
	}
	if len(gaps) > 0 {
		st.GapMeanNs = sum / float64(len(gaps))
	}

	// Most frequent scan limit, smallest wins ties for determinism.
	var best int64
	for l, c := range scanLimits {
		if c > best || (c == best && (st.ScanLimit == 0 || l < st.ScanLimit)) {
			best, st.ScanLimit = c, l
		}
	}
	return st
}

// gapBucket maps a gap to its quarter-octave log2 bucket.
func gapBucket(g int64) int {
	if g <= 0 {
		return 0
	}
	return int(4*math.Log2(float64(g))) + 1
}

// gapBucketBounds returns bucket b's [lo, hi) range in ns (b >= 1).
func gapBucketBounds(b int) (lo, hi float64) {
	lo = math.Exp2(float64(b-1) / 4)
	hi = math.Exp2(float64(b) / 4)
	return lo, hi
}

// synthWindow is the recent-key window repetition redraws from.
const synthWindow = 1024

// Synthesizer generates unbounded lookalike load from fitted TraceStats:
// keys from the top-K head + bucketed tail popularity model, op types
// from the fitted mix, gaps from the fitted inter-arrival distribution —
// plus a controlled repetition rate (Redbench's "support" scenarios):
// with probability repeatFrac an access re-issues a key drawn from the
// last synthWindow issued keys instead of a fresh popularity sample.
//
// The stream is a pure function of (stats, seed, repeatFrac): Reset(seed)
// reproduces it exactly, and Fill allocates nothing.
type Synthesizer struct {
	st         *TraceStats
	name       string
	repeatFrac float64
	rng        *stats.RNG

	// Prefix-sum tables for weighted sampling.
	opCum   [numOpTypes]int64
	topCum  []int64
	tailCum []int64
	gapCum  []int64
	keyTot  int64
	gapTot  int64

	window [synthWindow]uint64
	wlen   int
	wpos   int
}

// NewSynthesizer returns a synthesizer over fitted statistics, seeded
// deterministically, repeating a fraction repeatFrac of key accesses from
// the recent window. It panics on empty stats or repeatFrac outside [0,1).
func NewSynthesizer(st *TraceStats, seed uint64, repeatFrac float64) *Synthesizer {
	if st == nil || st.Ops == 0 {
		panic("workload: NewSynthesizer needs non-empty TraceStats")
	}
	if repeatFrac < 0 || repeatFrac >= 1 {
		panic("workload: repeatFrac must be in [0,1)")
	}
	s := &Synthesizer{
		st:         st,
		name:       fmt.Sprintf("synth(ops=%d,repeat=%.2f)", st.Ops, repeatFrac),
		repeatFrac: repeatFrac,
		rng:        stats.NewRNG(seed),
	}
	var c int64
	for i, n := range st.OpCounts {
		c += n
		s.opCum[i] = c
	}
	for _, kc := range st.TopKeys {
		s.keyTot += kc.Count
		s.topCum = append(s.topCum, s.keyTot)
	}
	for _, n := range st.TailBuckets {
		s.keyTot += n
		s.tailCum = append(s.tailCum, s.keyTot)
	}
	for _, n := range st.GapBuckets {
		s.gapTot += n
		s.gapCum = append(s.gapCum, s.gapTot)
	}
	return s
}

// Name implements Source.
func (s *Synthesizer) Name() string { return s.name }

// Reset implements Source: the stream restarts from position 0 under the
// new seed, with an empty repetition window.
func (s *Synthesizer) Reset(seed uint64) {
	s.rng = stats.NewRNG(seed)
	s.wlen, s.wpos = 0, 0
}

// Fill implements Source. The synthesized stream is unbounded and
// stationary (fitted statistics carry no phase-progress axis), so pos and
// total only size the batch.
func (s *Synthesizer) Fill(ops []Op, gaps []int64, pos, total int) int {
	for j := range ops {
		ops[j] = s.next()
		gaps[j] = s.nextGap()
	}
	return len(ops)
}

// next synthesizes one operation.
func (s *Synthesizer) next() Op {
	var op Op
	r := int64(s.rng.Uint64() % uint64(s.st.Ops))
	op.Type = OpType(cumIndex(s.opCum[:], r))

	if s.repeatFrac > 0 && s.wlen > 0 && s.rng.Float64() < s.repeatFrac {
		op.Key = s.window[s.rng.Intn(s.wlen)]
	} else {
		op.Key = s.sampleKey()
	}
	s.window[s.wpos] = op.Key
	s.wpos = (s.wpos + 1) % synthWindow
	if s.wlen < synthWindow {
		s.wlen++
	}

	switch op.Type {
	case Put:
		op.Value = s.rng.Uint64()
	case Scan:
		op.ScanLimit = s.st.ScanLimit
		if op.ScanLimit <= 0 {
			op.ScanLimit = 100
		}
	}
	return op
}

// sampleKey draws from the fitted popularity model: the exact head with
// its exact weights, then the tail histogram (bucket by weight, uniform
// key within the bucket's range).
func (s *Synthesizer) sampleKey() uint64 {
	if s.keyTot == 0 {
		return s.st.KeyLo
	}
	r := int64(s.rng.Uint64() % uint64(s.keyTot))
	if i := cumIndex(s.topCum, r); i >= 0 {
		return s.st.TopKeys[i].Key
	}
	b := cumIndex(s.tailCum, r)
	nb := len(s.st.TailBuckets)
	span := s.st.KeyHi - s.st.KeyLo
	if span == 0 || nb == 0 {
		return s.st.KeyLo
	}
	width := float64(span) / float64(nb)
	lo := s.st.KeyLo + uint64(float64(b)*width)
	w := uint64(width)
	if w == 0 {
		w = 1
	}
	return lo + s.rng.Uint64()%w
}

// nextGap draws from the fitted inter-arrival distribution: bucket by
// weight, then uniform within the bucket's quarter-octave range.
func (s *Synthesizer) nextGap() int64 {
	if s.gapTot == 0 {
		return 0
	}
	r := int64(s.rng.Uint64() % uint64(s.gapTot))
	b := cumIndex(s.gapCum, r)
	if b == 0 {
		return 0
	}
	lo, hi := gapBucketBounds(b)
	return int64(lo + s.rng.Float64()*(hi-lo))
}

// cumIndex returns the first index whose cumulative count exceeds r, or
// -1 when r falls past the table (the caller's next table continues the
// prefix sum). Plain binary search, no allocation.
func cumIndex(cum []int64, r int64) int {
	lo, hi := 0, len(cum)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(cum) {
		return -1
	}
	return lo
}
