package workload

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

// randomStream draws a stream covering every op type, key deltas in both
// directions, and a spread of gap magnitudes.
func randomStream(seed uint64, n int) ([]Op, []int64) {
	rng := stats.NewRNG(seed)
	ops := make([]Op, n)
	gaps := make([]int64, n)
	for i := range ops {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			ops[i].Type = Get
		case 6, 7:
			ops[i].Type = Put
			ops[i].Value = rng.Uint64()
		case 8:
			ops[i].Type = Delete
		default:
			ops[i].Type = Scan
			ops[i].ScanLimit = 1 + rng.Intn(500)
		}
		ops[i].Key = rng.Uint64() >> uint(rng.Intn(40)) // mixed magnitudes
		if rng.Intn(4) > 0 {
			gaps[i] = rng.Int63() % 5_000_000
		}
	}
	return ops, gaps
}

func encodeStream(name string, seed uint64, phases [][2]int, ops []Op, gaps []int64) []byte {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, name, seed)
	for pi, span := range phases {
		w.BeginPhase(pi, "ph", span[1]-span[0])
		// Append in ragged chunks to exercise block buffering.
		for i := span[0]; i < span[1]; {
			n := 1 + (i*7)%613
			if i+n > span[1] {
				n = span[1] - i
			}
			w.Append(ops[i:i+n], gaps[i:i+n])
			i += n
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestTraceRoundTrip encodes and decodes multi-phase random streams and
// requires exact equality — the codec's core property.
func TestTraceRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 17, 4096, 4097, 20_000} {
		ops, gaps := randomStream(uint64(n)+1, n)
		mid := n / 2
		data := encodeStream("rt", 99, [][2]int{{0, mid}, {mid, n}}, ops, gaps)
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Truncated {
			t.Fatalf("n=%d: unexpected truncation", n)
		}
		if tr.Name != "rt" || tr.Seed != 99 || len(tr.Phases) != 2 {
			t.Fatalf("n=%d: meta %+v", n, tr)
		}
		if tr.TotalOps() != n {
			t.Fatalf("n=%d: decoded %d ops", n, tr.TotalOps())
		}
		got := tr.Reader()
		for i := 0; i < n; i++ {
			var o [1]Op
			var g [1]int64
			if got.Fill(o[:], g[:], i, n) != 1 || o[0] != ops[i] || g[0] != gaps[i] {
				t.Fatalf("n=%d: op %d = %+v/%d, want %+v/%d", n, i, o[0], g[0], ops[i], gaps[i])
			}
		}
	}
}

// TestTraceTornTail truncates an encoded trace at every frame-ish offset
// and requires: no error, no partial block, and the decoded stream is an
// exact prefix of the original.
func TestTraceTornTail(t *testing.T) {
	const n = 10_000
	ops, gaps := randomStream(7, n)
	data := encodeStream("torn", 1, [][2]int{{0, n}}, ops, gaps)

	step := len(data)/257 + 1
	sawPartial := false
	for cut := 0; cut < len(data); cut += step {
		tr, err := ReadTrace(bytes.NewReader(data[:cut]))
		if cut < 6 { // inside the fixed header: a real error is correct
			if err == nil {
				t.Fatalf("cut=%d: expected header error", cut)
			}
			continue
		}
		if err != nil {
			// Cuts inside the name/seed varints are still header errors.
			continue
		}
		got := tr.TotalOps()
		if got > n {
			t.Fatalf("cut=%d: decoded %d > %d ops", cut, got, n)
		}
		if got < n {
			// A block-boundary cut reads as a clean (shorter) trace;
			// any other cut must be flagged as truncated.
			sawPartial = true
		}
		flat := tr.Reader()
		for i := 0; i < got; i++ {
			var o [1]Op
			var g [1]int64
			flat.Fill(o[:], g[:], i, got)
			if o[0] != ops[i] || g[0] != gaps[i] {
				t.Fatalf("cut=%d: op %d diverges from original", cut, i)
			}
		}
	}
	if !sawPartial {
		t.Fatal("no truncation point produced a partial trace; test is vacuous")
	}
}

// TestTraceCorruptTail flips bytes inside the final block's payload and
// requires the block to be dropped whole (crc catches it), never decoded
// partially or wrongly.
func TestTraceCorruptTail(t *testing.T) {
	const n = 9000 // > traceBlockOps so several blocks exist
	ops, gaps := randomStream(21, n)
	data := encodeStream("corrupt", 1, [][2]int{{0, n}}, ops, gaps)

	for _, back := range []int{1, 10, 100} {
		mut := append([]byte(nil), data...)
		mut[len(mut)-back] ^= 0xFF
		tr, err := ReadTrace(bytes.NewReader(mut))
		if err != nil {
			t.Fatalf("back=%d: %v", back, err)
		}
		if !tr.Truncated {
			t.Fatalf("back=%d: corruption not detected", back)
		}
		got := tr.TotalOps()
		if got >= n {
			t.Fatalf("back=%d: corrupt block not dropped (%d ops)", back, got)
		}
		// Surviving prefix must be intact and block-aligned.
		if got%traceBlockOps != 0 {
			t.Fatalf("back=%d: partial block survived (%d ops)", back, got)
		}
		flat := tr.Reader()
		for i := 0; i < got; i++ {
			var o [1]Op
			var g [1]int64
			flat.Fill(o[:], g[:], i, got)
			if o[0] != ops[i] || g[0] != gaps[i] {
				t.Fatalf("back=%d: op %d diverges", back, i)
			}
		}
	}
}

// FuzzTraceDecode throws arbitrary bytes at the decoder: it must never
// panic, and whatever decodes from a valid prefix must re-encode and
// decode to the same stream.
func FuzzTraceDecode(f *testing.F) {
	ops, gaps := randomStream(3, 500)
	f.Add(encodeStream("seed", 7, [][2]int{{0, 500}}, ops, gaps))
	f.Add([]byte("LSTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Re-encode and decode: streams must match exactly.
		var buf bytes.Buffer
		w := NewTraceWriter(&buf, tr.Name, tr.Seed)
		for _, p := range tr.Phases {
			w.BeginPhase(p.Index, p.Name, p.DeclaredOps)
			w.Append(p.Ops, p.Gaps)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		tr2, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if tr2.TotalOps() != tr.TotalOps() || len(tr2.Phases) != len(tr.Phases) {
			t.Fatalf("re-encode changed shape: %d/%d ops, %d/%d phases",
				tr.TotalOps(), tr2.TotalOps(), len(tr.Phases), len(tr2.Phases))
		}
		for pi, p := range tr.Phases {
			q := tr2.Phases[pi]
			for i := range p.Ops {
				if p.Ops[i] != q.Ops[i] || p.Gaps[i] != q.Gaps[i] {
					t.Fatalf("phase %d op %d changed across re-encode", pi, i)
				}
			}
		}
	})
}
