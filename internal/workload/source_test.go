package workload

import (
	"bytes"
	"testing"

	"repro/internal/distgen"
)

func mixedSpec(seed uint64) Spec {
	return Spec{
		Name:   "mixed",
		Mix:    Mix{GetFrac: 0.6, PutFrac: 0.25, DeleteFrac: 0.05, ScanFrac: 0.1, ScanLimit: 50},
		Access: distgen.Static{G: distgen.NewZipfKeys(seed, 1.1, 1<<20)},
	}
}

// TestPhaseSeed pins the seed-derivation formula every layer shares.
func TestPhaseSeed(t *testing.T) {
	for _, tc := range []struct {
		seed uint64
		i    int
		want uint64
	}{
		{0, 0, 1},
		{42, 0, 43},
		{42, 1, 42 + 7919 + 1},
		{7, 3, 7 + 3*7919 + 1},
	} {
		if got := PhaseSeed(tc.seed, tc.i); got != tc.want {
			t.Errorf("PhaseSeed(%d,%d) = %d, want %d", tc.seed, tc.i, got, tc.want)
		}
	}
}

// TestGeneratorSourceMatchesInlineStream asserts the Source seam is
// behavior-preserving: Fill draws the byte-identical stream the pre-Source
// layers drew inline (per op: Generator.Next then Arrival.NextGap), at any
// batch size.
func TestGeneratorSourceMatchesInlineStream(t *testing.T) {
	const total = 5000
	// Reference: the inline loop the runner used to run.
	gen := NewGenerator(mixedSpec(9), 77)
	arr := NewDiurnal(5, 500_000, 0.5, 2)
	wantOps := make([]Op, total)
	wantGaps := make([]int64, total)
	for i := 0; i < total; i++ {
		p := float64(i) / float64(total)
		wantOps[i] = gen.Next(p)
		wantGaps[i] = arr.NextGap(p)
	}

	for _, batch := range []int{1, 7, 64, 1000, total} {
		src := NewSource(mixedSpec(9), NewDiurnal(5, 500_000, 0.5, 2), 77)
		ops := make([]Op, batch)
		gaps := make([]int64, batch)
		for i := 0; i < total; i += batch {
			bn := batch
			if rest := total - i; bn > rest {
				bn = rest
			}
			if n := src.Fill(ops[:bn], gaps[:bn], i, total); n != bn {
				t.Fatalf("batch %d: Fill returned %d, want %d", batch, n, bn)
			}
			for j := 0; j < bn; j++ {
				if ops[j] != wantOps[i+j] || gaps[j] != wantGaps[i+j] {
					t.Fatalf("batch %d: op %d = %+v/%d, want %+v/%d",
						batch, i+j, ops[j], gaps[j], wantOps[i+j], wantGaps[i+j])
				}
			}
		}
	}
}

// TestTraceReaderBounded checks position addressing and end-of-stream.
func TestTraceReaderBounded(t *testing.T) {
	ops := []Op{{Type: Get, Key: 1}, {Type: Put, Key: 2, Value: 3}, {Type: Get, Key: 9}}
	gaps := []int64{0, 10, 20}
	tr := NewTraceReader("t", ops, gaps)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	bo := make([]Op, 2)
	bg := make([]int64, 2)
	if n := tr.Fill(bo, bg, 0, 3); n != 2 || bo[0] != ops[0] || bg[1] != 10 {
		t.Fatalf("Fill(0) = %d %v %v", n, bo, bg)
	}
	if n := tr.Fill(bo, bg, 2, 3); n != 1 || bo[0] != ops[2] || bg[0] != 20 {
		t.Fatalf("Fill(2) = %d %v %v", n, bo, bg)
	}
	if n := tr.Fill(bo, bg, 3, 3); n != 0 {
		t.Fatalf("Fill past end = %d", n)
	}
	// Nil gaps replay as closed loop.
	bg[0], bg[1] = 99, 99
	if n := NewTraceReader("t", ops, nil).Fill(bo, bg, 0, 3); n != 2 || bg[0] != 0 || bg[1] != 0 {
		t.Fatalf("nil-gap Fill = %d %v", n, bg)
	}
}

// TestRecordTee asserts the recording wrapper is transparent to the
// consumer and captures exactly the stream that passed through it.
func TestRecordTee(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, "tee", 5)
	w.BeginPhase(0, "p0", 300)
	src := Record(NewSource(mixedSpec(3), NewPoisson(4, 100_000), 11), w)

	ops := make([]Op, 32)
	gaps := make([]int64, 32)
	var passed []Op
	var passedGaps []int64
	for i := 0; i < 300; i += 32 {
		bn := 32
		if rest := 300 - i; bn > rest {
			bn = rest
		}
		src.Fill(ops[:bn], gaps[:bn], i, 300)
		passed = append(passed, ops[:bn]...)
		passedGaps = append(passedGaps, gaps[:bn]...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "tee" || tr.Seed != 5 || len(tr.Phases) != 1 {
		t.Fatalf("trace meta: %+v", tr)
	}
	ph := tr.Phases[0]
	if ph.Name != "p0" || ph.DeclaredOps != 300 || len(ph.Ops) != 300 {
		t.Fatalf("phase meta: %+v len=%d", ph, len(ph.Ops))
	}
	for i := range passed {
		if ph.Ops[i] != passed[i] || ph.Gaps[i] != passedGaps[i] {
			t.Fatalf("op %d: recorded %+v/%d, passed %+v/%d",
				i, ph.Ops[i], ph.Gaps[i], passed[i], passedGaps[i])
		}
	}
}
