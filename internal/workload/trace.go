package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Binary trace format. A trace is the exact operation/gap stream of one
// run, compact enough that the service can keep one per job served:
//
//	header: magic "LSTR" | version u8
//	        uvarint(len(name)) name | uvarint(seed)
//	block:  kind u8 | payloadLen u32 LE | crc32c(payload) u32 LE | payload
//
// Block kinds:
//
//	phase (1): uvarint(index) | uvarint(len(name)) name | uvarint(ops)
//	ops   (2): uvarint(count)
//	           op-type run-length pairs (type u8, uvarint(run)) summing
//	           to count
//	           per op: zigzag-varint key delta from the previous op's key
//	           (state persists across blocks and phases)
//	           per op: zigzag-varint arrival gap (ns of virtual time)
//	           per Put, in stream order: value u64 LE (raw — values are
//	           full-entropy and do not varint-compress)
//	           per Scan, in stream order: uvarint(scanLimit)
//
// Keys delta-compress well for the clustered/sequential/zipf streams the
// benchmark issues; gaps are already inter-arrival deltas of the virtual
// timeline. Each block is independently crc32c-framed, so a torn tail — a
// crash mid-append, exactly like the JSONL result store — truncates to
// the last whole block instead of corrupting the replay.
const (
	traceMagic   = "LSTR"
	traceVersion = 1

	blockPhase = 1
	blockOps   = 2

	// traceBlockOps is how many operations a writer packs per block: big
	// enough to amortize framing, small enough that a torn tail loses
	// little.
	traceBlockOps = 4096
	// maxBlockPayload bounds a block a reader will buffer; a corrupt
	// length field is treated as a torn tail, not an allocation request.
	maxBlockPayload = 1 << 24
	// maxBlockCount bounds the op count a block may declare.
	maxBlockCount = 1 << 20
)

var traceCRC = crc32.MakeTable(crc32.Castagnoli)

// zigzag maps signed deltas onto uvarint-friendly magnitudes.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// TraceWriter encodes an operation stream into the binary trace format.
// Appends buffer into blocks; every I/O or encoding error latches and
// surfaces at Close, so hot-path recording never branches on errors.
type TraceWriter struct {
	w   *bufio.Writer
	err error

	// Pending block contents.
	ops  []Op
	gaps []int64

	lastKey uint64
	scratch []byte
}

// NewTraceWriter writes a trace header for a run named name (typically
// the scenario name) seeded with seed, and returns the writer. Close
// flushes; the caller owns closing the underlying writer.
func NewTraceWriter(w io.Writer, name string, seed uint64) *TraceWriter {
	tw := &TraceWriter{
		w:    bufio.NewWriter(w),
		ops:  make([]Op, 0, traceBlockOps),
		gaps: make([]int64, 0, traceBlockOps),
	}
	var hdr []byte
	hdr = append(hdr, traceMagic...)
	hdr = append(hdr, traceVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.AppendUvarint(hdr, seed)
	_, tw.err = tw.w.Write(hdr)
	return tw
}

// Err returns the latched error, if any.
func (t *TraceWriter) Err() error { return t.err }

// BeginPhase marks a phase boundary: subsequent Appends belong to phase
// index (named name, declaredOps operations). The runner calls it at each
// phase start so replay can reproduce per-phase streams exactly.
func (t *TraceWriter) BeginPhase(index int, name string, declaredOps int) {
	t.flushOps()
	var p []byte
	p = binary.AppendUvarint(p, uint64(index))
	p = binary.AppendUvarint(p, uint64(len(name)))
	p = append(p, name...)
	p = binary.AppendUvarint(p, uint64(declaredOps))
	t.writeBlock(blockPhase, p)
}

// Append records the next operations of the stream with their arrival
// gaps. gaps may be nil for closed-loop streams.
func (t *TraceWriter) Append(ops []Op, gaps []int64) {
	for i, op := range ops {
		t.ops = append(t.ops, op)
		if gaps == nil {
			t.gaps = append(t.gaps, 0)
		} else {
			t.gaps = append(t.gaps, gaps[i])
		}
		if len(t.ops) >= traceBlockOps {
			t.flushOps()
		}
	}
}

// Flush writes any buffered operations out as a (possibly short) block
// and flushes the underlying writer.
func (t *TraceWriter) Flush() error {
	t.flushOps()
	if t.err == nil {
		t.err = t.w.Flush()
	}
	return t.err
}

// Close flushes and returns the latched error. It does not close the
// underlying writer.
func (t *TraceWriter) Close() error { return t.Flush() }

// flushOps encodes the pending ops into one block.
func (t *TraceWriter) flushOps() {
	if len(t.ops) == 0 {
		return
	}
	p := t.scratch[:0]
	p = binary.AppendUvarint(p, uint64(len(t.ops)))
	// Op types, run-length coded.
	for i := 0; i < len(t.ops); {
		j := i + 1
		for j < len(t.ops) && t.ops[j].Type == t.ops[i].Type {
			j++
		}
		p = append(p, byte(t.ops[i].Type))
		p = binary.AppendUvarint(p, uint64(j-i))
		i = j
	}
	// Keys, delta + zigzag varint.
	last := t.lastKey
	for _, op := range t.ops {
		p = binary.AppendUvarint(p, zigzag(int64(op.Key-last)))
		last = op.Key
	}
	t.lastKey = last
	// Gaps.
	for _, g := range t.gaps {
		p = binary.AppendUvarint(p, zigzag(g))
	}
	// Put values (raw) and scan limits, in stream order.
	for _, op := range t.ops {
		if op.Type == Put {
			p = binary.LittleEndian.AppendUint64(p, op.Value)
		}
	}
	for _, op := range t.ops {
		if op.Type == Scan {
			p = binary.AppendUvarint(p, uint64(op.ScanLimit))
		}
	}
	t.scratch = p[:0]
	t.writeBlock(blockOps, p)
	t.ops = t.ops[:0]
	t.gaps = t.gaps[:0]
}

// writeBlock frames and writes one block.
func (t *TraceWriter) writeBlock(kind byte, payload []byte) {
	if t.err != nil {
		return
	}
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, traceCRC))
	if _, err := t.w.Write(hdr[:]); err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(payload); err != nil {
		t.err = err
	}
}

// TracePhase is one recorded phase: its marker metadata and the decoded
// operation/gap stream.
type TracePhase struct {
	// Index and Name mirror the scenario phase the stream was recorded
	// from; DeclaredOps is the op count the marker announced (the decoded
	// stream may be shorter if the trace tail was torn).
	Index       int
	Name        string
	DeclaredOps int
	Ops         []Op
	Gaps        []int64
}

// Trace is a fully decoded trace file.
type Trace struct {
	// Name and Seed are the recorded run's identity from the header.
	Name string
	Seed uint64
	// Phases holds the streams in recorded order. Ops recorded before
	// any phase marker land in an implicit phase 0.
	Phases []TracePhase
	// Truncated reports that a torn or corrupt tail block was dropped —
	// everything in Phases is intact.
	Truncated bool
}

// TotalOps returns the number of decoded operations across all phases.
func (t *Trace) TotalOps() int {
	n := 0
	for _, p := range t.Phases {
		n += len(p.Ops)
	}
	return n
}

// Reader returns a Source replaying the whole trace as one flat stream.
func (t *Trace) Reader() *TraceReader {
	if len(t.Phases) == 1 {
		return NewTraceReader(t.Name, t.Phases[0].Ops, t.Phases[0].Gaps)
	}
	var ops []Op
	var gaps []int64
	for _, p := range t.Phases {
		ops = append(ops, p.Ops...)
		gaps = append(gaps, p.Gaps...)
	}
	return NewTraceReader(t.Name, ops, gaps)
}

// PhaseReader returns a Source replaying phase i's stream.
func (t *Trace) PhaseReader(i int) *TraceReader {
	p := t.Phases[i]
	name := t.Name
	if p.Name != "" {
		name = name + "/" + p.Name
	}
	return NewTraceReader(name, p.Ops, p.Gaps)
}

// ReadTrace decodes a trace. A malformed header is an error; a torn or
// corrupt tail block is dropped cleanly (Truncated is set) — the crash
// semantics of the service's JSONL store, carried to the binary format.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if string(magic[:4]) != traceMagic {
		return nil, fmt.Errorf("workload: not a trace file (bad magic %q)", magic[:4])
	}
	if magic[4] != traceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d", magic[4])
	}
	name, err := readUvarintString(br)
	if err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	seed, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}

	tr := &Trace{Name: name, Seed: seed}
	var cur *TracePhase
	phase := func() *TracePhase {
		if cur == nil {
			tr.Phases = append(tr.Phases, TracePhase{})
			cur = &tr.Phases[len(tr.Phases)-1]
		}
		return cur
	}
	var lastKey uint64
	var hdr [9]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				tr.Truncated = true
			}
			return tr, nil
		}
		kind := hdr[0]
		plen := binary.LittleEndian.Uint32(hdr[1:5])
		sum := binary.LittleEndian.Uint32(hdr[5:9])
		if plen > maxBlockPayload {
			tr.Truncated = true
			return tr, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			tr.Truncated = true
			return tr, nil
		}
		if crc32.Checksum(payload, traceCRC) != sum {
			tr.Truncated = true
			return tr, nil
		}
		switch kind {
		case blockPhase:
			idx, name, declared, ok := decodePhaseBlock(payload)
			if !ok {
				tr.Truncated = true
				return tr, nil
			}
			tr.Phases = append(tr.Phases, TracePhase{Index: idx, Name: name, DeclaredOps: declared})
			cur = &tr.Phases[len(tr.Phases)-1]
		case blockOps:
			p := phase()
			if !decodeOpsBlock(payload, p, &lastKey) {
				tr.Truncated = true
				return tr, nil
			}
		default:
			// Unknown block kind: either corruption or a future writer.
			// Stop at the last understood prefix.
			tr.Truncated = true
			return tr, nil
		}
	}
}

// ReadTraceFile decodes the trace at path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// readUvarintString reads a uvarint length-prefixed string.
func readUvarintString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxBlockPayload {
		return "", fmt.Errorf("string length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// decodePhaseBlock parses a phase marker payload.
func decodePhaseBlock(p []byte) (idx int, name string, declared int, ok bool) {
	u, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, "", 0, false
	}
	p = p[n:]
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < l {
		return 0, "", 0, false
	}
	name = string(p[n : n+int(l)])
	p = p[n+int(l):]
	d, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, "", 0, false
	}
	return int(u), name, int(d), true
}

// decodeOpsBlock parses one ops block into the phase, threading the
// cross-block key-delta state. On any malformed field it rolls the phase
// back to its pre-block length — a dropped block never leaves a partial
// decode behind.
func decodeOpsBlock(p []byte, ph *TracePhase, lastKey *uint64) bool {
	count, n := binary.Uvarint(p)
	if n <= 0 || count > maxBlockCount {
		return false
	}
	p = p[n:]
	// Every op costs at least one key byte and one gap byte: a count the
	// payload cannot possibly back is corruption, rejected before any
	// allocation is sized from it.
	if count*2 > uint64(len(p)) {
		return false
	}
	base := len(ph.Ops)
	fail := func() bool {
		ph.Ops = ph.Ops[:base]
		ph.Gaps = ph.Gaps[:base]
		return false
	}
	ph.Ops = append(ph.Ops, make([]Op, count)...)
	ph.Gaps = append(ph.Gaps, make([]int64, count)...)
	ops := ph.Ops[base:]
	gaps := ph.Gaps[base:]

	// Op-type runs.
	for filled := uint64(0); filled < count; {
		if len(p) == 0 {
			return fail()
		}
		typ := OpType(p[0])
		if typ < 0 || typ >= numOpTypes {
			return fail()
		}
		run, n := binary.Uvarint(p[1:])
		if n <= 0 || run == 0 || filled+run > count {
			return fail()
		}
		p = p[1+n:]
		for j := uint64(0); j < run; j++ {
			ops[filled+j].Type = typ
		}
		filled += run
	}
	// Keys.
	key := *lastKey
	for i := range ops {
		u, n := binary.Uvarint(p)
		if n <= 0 {
			return fail()
		}
		p = p[n:]
		key += uint64(unzigzag(u))
		ops[i].Key = key
	}
	// Gaps.
	for i := range gaps {
		u, n := binary.Uvarint(p)
		if n <= 0 {
			return fail()
		}
		p = p[n:]
		gaps[i] = unzigzag(u)
	}
	// Put values.
	for i := range ops {
		if ops[i].Type != Put {
			continue
		}
		if len(p) < 8 {
			return fail()
		}
		ops[i].Value = binary.LittleEndian.Uint64(p)
		p = p[8:]
	}
	// Scan limits.
	for i := range ops {
		if ops[i].Type != Scan {
			continue
		}
		u, n := binary.Uvarint(p)
		if n <= 0 {
			return fail()
		}
		p = p[n:]
		ops[i].ScanLimit = int(u)
	}
	if len(p) != 0 {
		return fail()
	}
	*lastKey = key
	return true
}
