package workload

import (
	"math"
	"testing"

	"repro/internal/distgen"
)

// drain pulls n ops/gaps from a source into fresh slices.
func drain(src Source, n int) ([]Op, []int64) {
	ops := make([]Op, n)
	gaps := make([]int64, n)
	const batch = 256
	for i := 0; i < n; i += batch {
		bn := batch
		if rest := n - i; bn > rest {
			bn = rest
		}
		src.Fill(ops[i:i+bn], gaps[i:i+bn], i, n)
	}
	return ops, gaps
}

// opMix returns per-type fractions.
func opMix(ops []Op) [numOpTypes]float64 {
	var m [numOpTypes]float64
	for _, op := range ops {
		m[op.Type]++
	}
	for i := range m {
		m[i] /= float64(len(ops))
	}
	return m
}

// headMass returns the fraction of accesses landing on the given keys.
func headMass(ops []Op, head []KeyCount) float64 {
	in := make(map[uint64]bool, len(head))
	for _, kc := range head {
		in[kc.Key] = true
	}
	hits := 0
	for _, op := range ops {
		if in[op.Key] {
			hits++
		}
	}
	return float64(hits) / float64(len(ops))
}

func meanGap(gaps []int64) float64 {
	var s float64
	for _, g := range gaps {
		s += float64(g)
	}
	return s / float64(len(gaps))
}

// TestSynthesizerFidelity fits statistics from a recorded skewed stream
// and requires the synthesized stream to match it on op mix, head-key
// popularity mass, and mean inter-arrival gap — the PBench contract that
// fitted load looks like the source load. All seeds fixed; bounds
// deterministic.
func TestSynthesizerFidelity(t *testing.T) {
	const n = 60_000
	spec := Spec{
		Name:   "fit-src",
		Mix:    Mix{GetFrac: 0.55, PutFrac: 0.3, DeleteFrac: 0.05, ScanFrac: 0.1, ScanLimit: 64},
		Access: distgen.Static{G: distgen.NewZipfKeys(11, 1.2, 1<<18)},
	}
	srcOps, srcGaps := drain(NewSource(spec, NewPoisson(13, 250_000), 29), n)
	st := FitStream(srcOps, srcGaps, FitOptions{})

	synth := NewSynthesizer(st, 31, 0)
	synOps, synGaps := drain(synth, n)

	// Operation mix within 1.5 points per type.
	want, got := opMix(srcOps), opMix(synOps)
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > 0.015 {
			t.Errorf("op %s mix: source %.4f, synth %.4f (Δ %.4f)", OpType(i), want[i], got[i], d)
		}
	}

	// Key-popularity skew: the fitted head must carry the same share of
	// accesses in the synthesized stream (within 3 points). A zipf(1.2)
	// head carries a large mass, so this genuinely tests the skew.
	hm, sm := headMass(srcOps, st.TopKeys), headMass(synOps, st.TopKeys)
	if hm < 0.2 {
		t.Fatalf("source head mass %.3f too small; fixture lost its skew", hm)
	}
	if d := math.Abs(hm - sm); d > 0.03 {
		t.Errorf("head mass: source %.4f, synth %.4f (Δ %.4f)", hm, sm, d)
	}

	// Mean inter-arrival within 15% (quarter-octave buckets bound the
	// within-bucket error well under that).
	mg, sg := meanGap(srcGaps), meanGap(synGaps)
	if mg <= 0 {
		t.Fatal("source mean gap is zero; fixture lost its arrival process")
	}
	if r := sg / mg; r < 0.85 || r > 1.15 {
		t.Errorf("mean gap: source %.0fns, synth %.0fns (ratio %.3f)", mg, sg, r)
	}

	// Scans carry the fitted limit.
	for _, op := range synOps {
		if op.Type == Scan && op.ScanLimit != st.ScanLimit {
			t.Fatalf("scan limit %d, want fitted %d", op.ScanLimit, st.ScanLimit)
		}
	}
}

// TestSynthesizerDeterminism: same (stats, seed) → identical stream;
// Reset reproduces it; a different seed diverges.
func TestSynthesizerDeterminism(t *testing.T) {
	ops, gaps := drain(NewSource(mixedSpec(2), NewPoisson(3, 100_000), 5), 8000)
	st := FitStream(ops, gaps, FitOptions{TopK: 32, TailBuckets: 64})

	a1, g1 := drain(NewSynthesizer(st, 7, 0.3), 5000)
	a2, g2 := drain(NewSynthesizer(st, 7, 0.3), 5000)
	for i := range a1 {
		if a1[i] != a2[i] || g1[i] != g2[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}

	s := NewSynthesizer(st, 7, 0.3)
	drain(s, 1234)
	s.Reset(7)
	a3, g3 := drain(s, 5000)
	for i := range a1 {
		if a1[i] != a3[i] || g1[i] != g3[i] {
			t.Fatalf("Reset did not reproduce the stream at op %d", i)
		}
	}

	b, _ := drain(NewSynthesizer(st, 8, 0.3), 5000)
	same := 0
	for i := range a1 {
		if a1[i] == b[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestSynthesizerRepetition checks the Redbench knob: with repeatFrac set,
// the window-hit rate (key seen among the last synthWindow issued keys)
// rises to roughly the requested rate over a low-repetition base workload.
func TestSynthesizerRepetition(t *testing.T) {
	// Uniform base load over a large keyspace: natural window hits ~0.
	spec := Spec{
		Name:   "uniform",
		Mix:    Mix{GetFrac: 1},
		Access: distgen.Static{G: distgen.NewUniform(3, 0, 1<<40)},
	}
	ops, gaps := drain(NewSource(spec, nil, 17), 30_000)
	st := FitStream(ops, gaps, FitOptions{})

	hitRate := func(ops []Op) float64 {
		seen := make(map[uint64]int)
		var ring [synthWindow]uint64
		hits := 0
		for i, op := range ops {
			if seen[op.Key] > 0 {
				hits++
			}
			if i >= synthWindow {
				old := ring[i%synthWindow]
				if seen[old]--; seen[old] == 0 {
					delete(seen, old)
				}
			}
			ring[i%synthWindow] = op.Key
			seen[op.Key]++
		}
		return float64(hits) / float64(len(ops))
	}

	base, _ := drain(NewSynthesizer(st, 5, 0), 30_000)
	rep, _ := drain(NewSynthesizer(st, 5, 0.6), 30_000)
	br, rr := hitRate(base), hitRate(rep)
	if br > 0.15 {
		t.Fatalf("base window-hit rate %.3f too high; fixture not low-repetition", br)
	}
	if rr < 0.5 || rr > 0.7 {
		t.Errorf("repeat window-hit rate %.3f, want ≈0.6", rr)
	}
}
