package workload

// Source is the one seam every execution layer draws operations through:
// the virtual-clock runner, the real-time driver (and with it the
// netdriver client), the service's job runs, and the figure sweeps all
// consume a Source instead of a concrete *Generator. A Source produces a
// phase's operation stream in caller-provided batches (the PR-8 zero-alloc
// discipline: Fill writes into buffers, the per-op path allocates nothing)
// and can be rewound for deterministic repeats.
//
// Three implementations ship: GeneratorSource (the classic synthetic
// spec+arrival generator), TraceReader (replay of a recorded binary
// trace), and Synthesizer (unbounded lookalike load fitted from a trace's
// statistics). Record tees any of them into a TraceWriter.
type Source interface {
	// Name identifies the source in reports and trace metadata.
	Name() string
	// Fill writes the operations and inter-arrival gaps for stream
	// positions [pos, pos+len(ops)) of a phase totalling total ops,
	// returning how many entries it produced. len(gaps) must equal
	// len(ops). Unbounded sources always fill the whole batch; bounded
	// sources (trace replay) return short counts at end of stream.
	Fill(ops []Op, gaps []int64, pos, total int) int
	// Reset rewinds the source to position 0 for a deterministic repeat,
	// reseeding where randomness is involved. Trace replay ignores the
	// seed (the stream is exact); generator-backed sources rebuild their
	// op RNG from it (note: stateful drift/arrival processes keep their
	// own advanced state — pin those via core.Scenario.Materialize).
	Reset(seed uint64)
}

// PhaseSeed derives the deterministic per-stream seed for phase (or
// driver-worker) index i of a run seeded with seed. Every layer that
// splits one scenario seed into per-phase generator streams — the core
// runner, scenario materialization, and the real-time driver's workers —
// uses this single formula, so a trace recorded from any of them can be
// re-derived or replayed stream-exactly.
func PhaseSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*7919 + 1
}

// GeneratorSource adapts the synthetic Spec+Arrival pair to the Source
// seam. Its Fill draws exactly the stream the pre-Source layers drew
// inline — per position: one op from the Generator, then one gap from the
// arrival process, both at progress pos/total — so all virtual-clock
// goldens are byte-identical across the refactor.
type GeneratorSource struct {
	spec    Spec
	arrival Arrival
	gen     *Generator
}

// NewSource returns a generator-backed source for spec paced by arrival
// (nil means closed loop), seeded deterministically.
func NewSource(spec Spec, arrival Arrival, seed uint64) *GeneratorSource {
	if arrival == nil {
		arrival = ClosedLoop{}
	}
	return &GeneratorSource{spec: spec, arrival: arrival, gen: NewGenerator(spec, seed)}
}

// Name implements Source.
func (s *GeneratorSource) Name() string {
	if s.spec.Name != "" {
		return "generator(" + s.spec.Name + ")"
	}
	return "generator"
}

// Fill implements Source. Generator-backed streams are unbounded: the
// batch is always filled.
func (s *GeneratorSource) Fill(ops []Op, gaps []int64, pos, total int) int {
	for j := range ops {
		progress := float64(pos+j) / float64(total)
		ops[j] = s.gen.Next(progress)
		gaps[j] = s.arrival.NextGap(progress)
	}
	return len(ops)
}

// Reset implements Source: the op-stream RNG restarts from seed. Stateful
// drift and arrival processes are shared instances and keep their state;
// deterministic repeats across whole runs go through materialized traces.
func (s *GeneratorSource) Reset(seed uint64) {
	s.gen = NewGenerator(s.spec, seed)
}

// TraceReader replays a pinned operation/gap stream — a decoded trace
// phase, a materialized scenario phase, or any in-memory stream. Fill is
// position-addressed and copies from the backing slices, so replay is
// allocation-free and Reset is a no-op (the stream is exact).
type TraceReader struct {
	name string
	ops  []Op
	gaps []int64
}

// NewTraceReader returns a source replaying the given stream verbatim.
// gaps may be nil for a closed-loop (all-zero-gap) stream.
func NewTraceReader(name string, ops []Op, gaps []int64) *TraceReader {
	return &TraceReader{name: name, ops: ops, gaps: gaps}
}

// Name implements Source.
func (t *TraceReader) Name() string { return "trace(" + t.name + ")" }

// Len returns the replayed stream's length.
func (t *TraceReader) Len() int { return len(t.ops) }

// Fill implements Source. The stream is bounded: positions at or past the
// recorded length yield a short (possibly zero) count.
func (t *TraceReader) Fill(ops []Op, gaps []int64, pos, total int) int {
	if pos >= len(t.ops) || pos < 0 {
		return 0
	}
	n := copy(ops, t.ops[pos:])
	if t.gaps == nil {
		for j := 0; j < n; j++ {
			gaps[j] = 0
		}
	} else {
		copy(gaps[:n], t.gaps[pos:])
	}
	return n
}

// Reset implements Source. Replay is exact; the seed is ignored.
func (t *TraceReader) Reset(uint64) {}

// recorder tees everything the wrapped source produces into a TraceWriter
// — the hook the runner, driver, and service use to record any run they
// execute. Encoding errors latch inside the writer and surface at Close.
type recorder struct {
	src Source
	w   *TraceWriter
}

// Record returns a source that forwards src and appends every filled
// operation/gap pair to w.
func Record(src Source, w *TraceWriter) Source { return &recorder{src: src, w: w} }

// Name implements Source.
func (r *recorder) Name() string { return r.src.Name() }

// Fill implements Source.
func (r *recorder) Fill(ops []Op, gaps []int64, pos, total int) int {
	n := r.src.Fill(ops, gaps, pos, total)
	r.w.Append(ops[:n], gaps[:n])
	return n
}

// Reset implements Source.
func (r *recorder) Reset(seed uint64) { r.src.Reset(seed) }
