package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Arrival generates inter-arrival gaps (ns) for an open-loop workload. A
// progress argument lets the process itself evolve — rising load, diurnal
// cycles, bursts — during one run, per the paper's §III-A list of
// behaviours classical benchmarks miss.
type Arrival interface {
	// Name identifies the process in reports.
	Name() string
	// NextGap returns the nanoseconds between the previous arrival and
	// the next one at the given phase progress in [0, 1].
	NextGap(progress float64) int64
}

// ClosedLoop models a zero-think-time closed loop: the next request
// arrives the moment the previous completes. NextGap returns 0; the runner
// interprets it as "arrival == previous completion".
type ClosedLoop struct{}

// Name implements Arrival.
func (ClosedLoop) Name() string { return "closed-loop" }

// NextGap implements Arrival.
func (ClosedLoop) NextGap(float64) int64 { return 0 }

// Poisson is an open-loop memoryless arrival process at a constant rate.
type Poisson struct {
	RatePerSec float64
	rng        *stats.RNG
}

// NewPoisson returns a Poisson process with the given mean rate.
func NewPoisson(seed uint64, ratePerSec float64) *Poisson {
	if ratePerSec <= 0 {
		panic("workload: Poisson rate must be positive")
	}
	return &Poisson{RatePerSec: ratePerSec, rng: stats.NewRNG(seed)}
}

// Name implements Arrival.
func (p *Poisson) Name() string { return fmt.Sprintf("poisson(%.0f/s)", p.RatePerSec) }

// NextGap implements Arrival.
func (p *Poisson) NextGap(float64) int64 {
	return int64(p.rng.ExpFloat64() / p.RatePerSec * 1e9)
}

// Diurnal modulates a Poisson process sinusoidally: rate(t) = Base *
// (1 + Amplitude*sin(2π*Cycles*progress)). Amplitude in [0,1); Cycles is
// how many day-night cycles fit in the phase.
type Diurnal struct {
	BaseRatePerSec float64
	Amplitude      float64
	Cycles         float64
	rng            *stats.RNG
}

// NewDiurnal returns a diurnal arrival process.
func NewDiurnal(seed uint64, baseRate, amplitude, cycles float64) *Diurnal {
	if baseRate <= 0 || amplitude < 0 || amplitude >= 1 || cycles <= 0 {
		panic("workload: Diurnal parameters out of range")
	}
	return &Diurnal{BaseRatePerSec: baseRate, Amplitude: amplitude, Cycles: cycles,
		rng: stats.NewRNG(seed)}
}

// Name implements Arrival.
func (d *Diurnal) Name() string {
	return fmt.Sprintf("diurnal(%.0f/s,amp=%.2f,cycles=%.1f)", d.BaseRatePerSec, d.Amplitude, d.Cycles)
}

// RateAt returns the instantaneous rate at the given progress.
func (d *Diurnal) RateAt(p float64) float64 {
	return d.BaseRatePerSec * (1 + d.Amplitude*math.Sin(2*math.Pi*d.Cycles*p))
}

// NextGap implements Arrival.
func (d *Diurnal) NextGap(p float64) int64 {
	return int64(d.rng.ExpFloat64() / d.RateAt(p) * 1e9)
}

// Bursty overlays square-wave bursts on a base Poisson process: for
// BurstFraction of each burst period the rate multiplies by BurstFactor.
type Bursty struct {
	BaseRatePerSec float64
	BurstFactor    float64
	BurstFraction  float64
	Periods        float64
	rng            *stats.RNG
}

// NewBursty returns a bursty arrival process.
func NewBursty(seed uint64, baseRate, factor, fraction, periods float64) *Bursty {
	if baseRate <= 0 || factor < 1 || fraction <= 0 || fraction >= 1 || periods <= 0 {
		panic("workload: Bursty parameters out of range")
	}
	return &Bursty{BaseRatePerSec: baseRate, BurstFactor: factor,
		BurstFraction: fraction, Periods: periods, rng: stats.NewRNG(seed)}
}

// Name implements Arrival.
func (b *Bursty) Name() string {
	return fmt.Sprintf("bursty(%.0f/s,x%.0f)", b.BaseRatePerSec, b.BurstFactor)
}

// InBurst reports whether the process is bursting at the given progress.
func (b *Bursty) InBurst(p float64) bool {
	phase := p * b.Periods
	return phase-math.Floor(phase) < b.BurstFraction
}

// NextGap implements Arrival.
func (b *Bursty) NextGap(p float64) int64 {
	rate := b.BaseRatePerSec
	if b.InBurst(p) {
		rate *= b.BurstFactor
	}
	return int64(b.rng.ExpFloat64() / rate * 1e9)
}
