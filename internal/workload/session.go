package workload

import (
	"fmt"

	"repro/internal/stats"
)

// SessionArrival is an IDEBench-style interactive-session arrival process:
// a user issues a burst of closely spaced operations (one "session" of
// exploratory queries), pauses for a think-time gap, then starts the next
// burst. Open-loop Poisson arrivals cannot express this bimodal structure —
// the paper's interactive-analytics use case — because the gap distribution
// has two regimes: intra-session gaps well below the think time, and
// inter-session gaps at or above it.
//
// The process is deterministic from its seed: session lengths and all gaps
// come from one RNG stream in issue order, so the emitted gap stream is
// byte-identical across batch sizes and (per-worker) under the parallel
// driver. By construction every inter-session gap is >= ThinkNs and every
// intra-session gap is < ThinkNs, so sessions remain recoverable from the
// pinned gap stream after scenario materialization discards the arrival
// state — the property SessionSpec's segmentation rule relies on.
type SessionArrival struct {
	// ThinkNs is the think-time floor between sessions: inter-session gaps
	// are ThinkNs plus an exponential tail.
	ThinkNs int64
	// IntraGapNs is the mean gap between operations inside a session;
	// draws are capped at ThinkNs-1 so the two regimes never overlap.
	IntraGapNs int64
	// MinOps and MaxOps bound the session length (uniform, inclusive).
	MinOps, MaxOps int

	rng       *stats.RNG
	remaining int
}

// NewSessionArrival returns a session arrival process.
func NewSessionArrival(seed uint64, thinkNs, intraGapNs int64, minOps, maxOps int) *SessionArrival {
	if thinkNs <= 0 || intraGapNs <= 0 || intraGapNs >= thinkNs {
		panic("workload: SessionArrival needs 0 < intraGapNs < thinkNs")
	}
	if minOps <= 0 || maxOps < minOps {
		panic("workload: SessionArrival needs 0 < minOps <= maxOps")
	}
	return &SessionArrival{
		ThinkNs: thinkNs, IntraGapNs: intraGapNs,
		MinOps: minOps, MaxOps: maxOps,
		rng: stats.NewRNG(seed),
	}
}

// Name implements Arrival.
func (s *SessionArrival) Name() string {
	return fmt.Sprintf("session(think=%dns,intra=%dns,len=%d..%d)",
		s.ThinkNs, s.IntraGapNs, s.MinOps, s.MaxOps)
}

// NextGap implements Arrival. The first gap of each session is the
// think-time gap (>= ThinkNs); the rest are intra-session gaps
// (< ThinkNs).
func (s *SessionArrival) NextGap(float64) int64 {
	if s.remaining == 0 {
		n := s.MinOps
		if s.MaxOps > s.MinOps {
			n += s.rng.Intn(s.MaxOps - s.MinOps + 1)
		}
		s.remaining = n - 1
		return s.ThinkNs + int64(s.rng.ExpFloat64()*float64(s.ThinkNs)/2)
	}
	s.remaining--
	g := int64(s.rng.ExpFloat64() * float64(s.IntraGapNs))
	if g >= s.ThinkNs {
		g = s.ThinkNs - 1
	}
	return g
}

// Spec returns the segmentation rule matching this process: a gap at or
// above ThinkNs begins a new session. budgetNs is the per-session SLA
// budget (0 for none).
func (s *SessionArrival) Spec(budgetNs int64) *SessionSpec {
	return &SessionSpec{GapNs: s.ThinkNs, BudgetNs: budgetNs}
}

// SessionSpec declares how a scenario's operation stream segments into
// interactive sessions and what per-session SLA applies. Segmentation is
// defined on the gap stream itself — an arrival gap >= GapNs begins a new
// session — so it survives Materialize (which pins ops and gaps but
// discards the arrival process) and trace replay.
type SessionSpec struct {
	// GapNs is the session boundary: gaps >= GapNs start a new session.
	GapNs int64
	// BudgetNs is the per-session time budget: a session meets its SLA
	// when every operation completes within BudgetNs of the session's
	// first arrival. 0 disables budget accounting (sessions are still
	// counted and their makespans recorded).
	BudgetNs int64
}
