package workload

import (
	"math"
	"testing"

	"repro/internal/distgen"
)

func uniformSpec() Spec {
	return Spec{
		Name:   "test",
		Mix:    Mix{GetFrac: 0.5, PutFrac: 0.3, DeleteFrac: 0.1, ScanFrac: 0.1, ScanLimit: 50},
		Access: distgen.Static{G: distgen.NewUniform(1, 0, 1000)},
	}
}

func TestMixNormalize(t *testing.T) {
	m := Mix{GetFrac: 2, PutFrac: 2}.Normalize()
	if m.GetFrac != 0.5 || m.PutFrac != 0.5 {
		t.Fatalf("normalize = %+v", m)
	}
	if m.ScanLimit != 100 {
		t.Fatal("default scan limit")
	}
	z := Mix{}.Normalize()
	if z.GetFrac != 1 {
		t.Fatal("zero mix must default to all-get")
	}
}

func TestGeneratorProportions(t *testing.T) {
	g := NewGenerator(uniformSpec(), 42)
	counts := map[OpType]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		op := g.Next(0.5)
		counts[op.Type]++
	}
	check := func(ot OpType, want float64) {
		got := float64(counts[ot]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("%v fraction = %v, want %v", ot, got, want)
		}
	}
	check(Get, 0.5)
	check(Put, 0.3)
	check(Delete, 0.1)
	check(Scan, 0.1)
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(uniformSpec(), 7)
	b := NewGenerator(uniformSpec(), 7)
	for i := 0; i < 1000; i++ {
		x, y := a.Next(0.3), b.Next(0.3)
		if x != y {
			t.Fatalf("op %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

func TestGeneratorScanLimit(t *testing.T) {
	spec := uniformSpec()
	spec.Mix = Mix{ScanFrac: 1, ScanLimit: 77}
	g := NewGenerator(spec, 1)
	op := g.Next(0)
	if op.Type != Scan || op.ScanLimit != 77 {
		t.Fatalf("op = %+v", op)
	}
}

func TestGeneratorInsertKeysSeparate(t *testing.T) {
	spec := Spec{
		Mix:        Mix{PutFrac: 1},
		Access:     distgen.Static{G: distgen.NewUniform(1, 0, 10)},
		InsertKeys: distgen.Static{G: distgen.NewUniform(2, 1000, 2000)},
	}
	g := NewGenerator(spec, 3)
	for i := 0; i < 100; i++ {
		op := g.Next(0)
		if op.Key < 1000 || op.Key >= 2000 {
			t.Fatalf("put key %d not from InsertKeys", op.Key)
		}
	}
}

func TestGeneratorMixTransition(t *testing.T) {
	end := Mix{PutFrac: 1}
	spec := Spec{
		Mix:    Mix{GetFrac: 1},
		MixEnd: &end,
		Access: distgen.Static{G: distgen.NewUniform(1, 0, 1000)},
	}
	g := NewGenerator(spec, 5)
	frac := func(p float64) float64 {
		puts := 0
		for i := 0; i < 5000; i++ {
			if g.Next(p).Type == Put {
				puts++
			}
		}
		return float64(puts) / 5000
	}
	if f := frac(0); f > 0.02 {
		t.Fatalf("puts at start = %v", f)
	}
	if f := frac(0.5); math.Abs(f-0.5) > 0.05 {
		t.Fatalf("puts at midpoint = %v", f)
	}
	if f := frac(1); f < 0.98 {
		t.Fatalf("puts at end = %v", f)
	}
	// Out-of-range progress clamps.
	g.Next(-1)
	g.Next(2)
}

func TestGeneratorPanicsWithoutAccess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil Access")
		}
	}()
	NewGenerator(Spec{Mix: ReadHeavy}, 1)
}

func TestOpTypeString(t *testing.T) {
	for _, ot := range []OpType{Get, Put, Delete, Scan} {
		if ot.String() == "" {
			t.Fatal("empty op name")
		}
	}
	if OpType(42).String() == "" {
		t.Fatal("unknown op must stringify")
	}
}

func TestStandardMixesNormalized(t *testing.T) {
	for _, m := range []Mix{ReadHeavy, Balanced, WriteHeavy, ScanHeavy} {
		n := m.Normalize()
		sum := n.GetFrac + n.PutFrac + n.DeleteFrac + n.ScanFrac
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mix sums to %v", sum)
		}
	}
}

func TestClosedLoop(t *testing.T) {
	c := ClosedLoop{}
	if c.NextGap(0.5) != 0 || c.Name() == "" {
		t.Fatal("closed loop")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	p := NewPoisson(1, 1000) // 1000/s => mean gap 1ms
	var sum int64
	const n = 50000
	for i := 0; i < n; i++ {
		g := p.NextGap(0)
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	mean := float64(sum) / n
	if math.Abs(mean-1e6)/1e6 > 0.03 {
		t.Fatalf("mean gap = %v ns, want ~1e6", mean)
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPoisson(1, 0)
}

func TestDiurnalRateVaries(t *testing.T) {
	d := NewDiurnal(2, 1000, 0.8, 1)
	peak := d.RateAt(0.25)   // sin peak
	trough := d.RateAt(0.75) // sin trough
	if peak <= trough {
		t.Fatalf("diurnal rates: peak %v, trough %v", peak, trough)
	}
	if math.Abs(peak-1800) > 1 || math.Abs(trough-200) > 1 {
		t.Fatalf("rates = %v, %v", peak, trough)
	}
	// Gaps at the trough are longer on average.
	gapMean := func(p float64) float64 {
		var s int64
		for i := 0; i < 20000; i++ {
			s += d.NextGap(p)
		}
		return float64(s) / 20000
	}
	if gapMean(0.25) >= gapMean(0.75) {
		t.Fatal("diurnal gap means not ordered")
	}
}

func TestBurstyBursts(t *testing.T) {
	b := NewBursty(3, 100, 10, 0.2, 2)
	if !b.InBurst(0.05) {
		t.Fatal("expected burst at start of period")
	}
	if b.InBurst(0.3) {
		t.Fatal("no burst expected at 0.3")
	}
	// Burst gaps are ~10x shorter.
	mean := func(p float64) float64 {
		var s int64
		for i := 0; i < 20000; i++ {
			s += b.NextGap(p)
		}
		return float64(s) / 20000
	}
	ratio := mean(0.3) / mean(0.05)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("burst speedup ratio = %v, want ~10", ratio)
	}
}

func TestArrivalNames(t *testing.T) {
	for _, a := range []Arrival{
		ClosedLoop{},
		NewPoisson(1, 100),
		NewDiurnal(1, 100, 0.5, 2),
		NewBursty(1, 100, 5, 0.1, 3),
	} {
		if a.Name() == "" {
			t.Fatal("empty arrival name")
		}
	}
}

func TestArrivalPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"diurnal-amp":     func() { NewDiurnal(1, 100, 1.5, 1) },
		"diurnal-rate":    func() { NewDiurnal(1, 0, 0.5, 1) },
		"bursty-factor":   func() { NewBursty(1, 100, 0.5, 0.1, 1) },
		"bursty-fraction": func() { NewBursty(1, 100, 5, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
