package workload

import (
	"testing"

	"repro/internal/distgen"
)

func sessionGaps(seed uint64, n int) []int64 {
	a := NewSessionArrival(seed, 2_000_000, 50_000, 3, 9)
	gaps := make([]int64, n)
	for i := range gaps {
		gaps[i] = a.NextGap(float64(i) / float64(n))
	}
	return gaps
}

func TestSessionArrivalDeterministic(t *testing.T) {
	a := sessionGaps(42, 5000)
	b := sessionGaps(42, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := sessionGaps(43, 5000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical gap streams")
	}
}

func TestSessionArrivalStructure(t *testing.T) {
	const think, intra = int64(2_000_000), int64(50_000)
	a := NewSessionArrival(7, think, intra, 3, 9)
	gaps := make([]int64, 20000)
	for i := range gaps {
		gaps[i] = a.NextGap(float64(i) / float64(len(gaps)))
	}
	// The two regimes must be separable by the think-time boundary — the
	// property SessionSpec segmentation relies on.
	if gaps[0] < think {
		t.Fatalf("first gap %d below think time %d", gaps[0], think)
	}
	sessions := 0
	length := 0
	for i, g := range gaps {
		if g >= think {
			if sessions > 0 && (length < 3 || length > 9) {
				t.Fatalf("session ending at op %d has %d ops, want 3..9", i, length)
			}
			sessions++
			length = 1
		} else {
			length++
		}
	}
	if sessions < len(gaps)/9 {
		t.Fatalf("only %d sessions over %d ops", sessions, len(gaps))
	}
	if spec := a.Spec(123); spec.GapNs != think || spec.BudgetNs != 123 {
		t.Fatalf("Spec = %+v", spec)
	}
}

func TestSessionArrivalRejectsBadParams(t *testing.T) {
	for _, tc := range []struct {
		think, intra   int64
		minOps, maxOps int
	}{
		{0, 1, 1, 1},
		{100, 0, 1, 1},
		{100, 100, 1, 1},
		{100, 10, 0, 1},
		{100, 10, 5, 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSessionArrival(%+v) did not panic", tc)
				}
			}()
			NewSessionArrival(1, tc.think, tc.intra, tc.minOps, tc.maxOps)
		}()
	}
}

// TestSessionArrivalByteIdenticalAcrossBatches draws the same session-paced
// stream through GeneratorSource at several batch widths: the arrival
// process consumes one RNG draw pattern per position regardless of how
// Fill calls are sliced, so the gap stream is byte-identical.
func TestSessionArrivalByteIdenticalAcrossBatches(t *testing.T) {
	const total = 4000
	draw := func(batch int) ([]Op, []int64) {
		spec := Spec{Mix: Balanced, Access: distgen.Static{G: distgen.NewUniform(11, 0, 1<<30)}}
		src := NewSource(spec, NewSessionArrival(99, 1_000_000, 20_000, 2, 6), 5)
		ops := make([]Op, total)
		gaps := make([]int64, total)
		for pos := 0; pos < total; pos += batch {
			bn := batch
			if rest := total - pos; bn > rest {
				bn = rest
			}
			if n := src.Fill(ops[pos:pos+bn], gaps[pos:pos+bn], pos, total); n != bn {
				t.Fatalf("short fill at %d: %d", pos, n)
			}
		}
		return ops, gaps
	}
	refOps, refGaps := draw(1)
	for _, batch := range []int{7, 64, total} {
		ops, gaps := draw(batch)
		for i := range refGaps {
			if gaps[i] != refGaps[i] {
				t.Fatalf("batch %d: gap %d differs: %d vs %d", batch, i, gaps[i], refGaps[i])
			}
			if ops[i] != refOps[i] {
				t.Fatalf("batch %d: op %d differs", batch, i)
			}
		}
	}
}
