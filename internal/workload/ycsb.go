package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// YCSB operation-log import. The YCSB basic binding prints one line per
// operation:
//
//	READ usertable user6284781860667377211 [ <all fields>]
//	INSERT usertable user8517097267634966620 [ field0=... ]
//	UPDATE usertable user42 [ field2=... ]
//	SCAN usertable user544 67 [ <all fields>]
//	DELETE usertable user99
//
// ImportYCSB maps those onto the benchmark's op alphabet — READ→Get,
// INSERT/UPDATE/READMODIFYWRITE→Put, DELETE→Delete, SCAN→Scan with the
// record count as the scan limit — so real YCSB runs can enter the
// record→fit→synthesize flywheel as .lstrace files. Keys keep their
// numeric identity when the YCSB key is "user<digits>" (or bare digits);
// anything else hashes through FNV-64a, so the import is deterministic
// either way. The log carries no timestamps, so every gap is zero:
// replay arrives closed-loop (each op as the server frees).

// ycsbKey extracts the benchmark key from a YCSB key token.
func ycsbKey(tok string) uint64 {
	digits := strings.TrimPrefix(tok, "user")
	if n, err := strconv.ParseUint(digits, 10, 64); err == nil {
		return n
	}
	// FNV-64a over the raw token.
	h := uint64(14695981039346656037)
	for i := 0; i < len(tok); i++ {
		h ^= uint64(tok[i])
		h *= 1099511628211
	}
	return h
}

// ycsbValue derives a deterministic Put payload from the key (the
// benchmark stores scalar values; the YCSB field contents are opaque).
func ycsbValue(key uint64) uint64 {
	return key*0x9E3779B97F4A7C15 + 1
}

// ParseYCSBOp parses one YCSB log line. The second return is false for
// lines that are not operations (status output, comments, blanks).
func ParseYCSBOp(line string) (Op, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Op{}, false
	}
	key := ycsbKey(fields[2])
	switch fields[0] {
	case "READ":
		return Op{Type: Get, Key: key}, true
	case "INSERT", "UPDATE", "READMODIFYWRITE":
		return Op{Type: Put, Key: key, Value: ycsbValue(key)}, true
	case "DELETE":
		return Op{Type: Delete, Key: key}, true
	case "SCAN":
		if len(fields) < 4 {
			return Op{}, false
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil || n <= 0 {
			return Op{}, false
		}
		return Op{Type: Scan, Key: key, ScanLimit: n}, true
	}
	return Op{}, false
}

// ImportYCSB reads a YCSB operation log and returns the mapped op stream.
// Non-operation lines are skipped; an input with no operations at all is
// an error (almost certainly not a YCSB log).
func ImportYCSB(r io.Reader) ([]Op, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var ops []Op
	for sc.Scan() {
		if op, ok := ParseYCSBOp(sc.Text()); ok {
			ops = append(ops, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading ycsb log: %w", err)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("workload: no YCSB operations found")
	}
	return ops, nil
}
