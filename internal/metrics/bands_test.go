package metrics

import (
	"sort"
	"testing"
)

func TestClassifyLatency(t *testing.T) {
	const sla = 1000
	cases := []struct {
		lat  int64
		want BandLevel
	}{
		{100, Green}, {500, Green}, {501, Yellow}, {1000, Yellow},
		{1001, Orange}, {2000, Orange}, {2001, Red}, {1 << 40, Red},
	}
	for _, c := range cases {
		if got := ClassifyLatency(c.lat, sla); got != c.want {
			t.Fatalf("ClassifyLatency(%d) = %v, want %v", c.lat, got, c.want)
		}
	}
}

func TestBandLevelString(t *testing.T) {
	names := map[BandLevel]string{Green: "green", Yellow: "yellow", Orange: "orange", Red: "red"}
	for lvl, want := range names {
		if lvl.String() != want {
			t.Fatalf("%d.String() = %q", lvl, lvl.String())
		}
	}
	if BandLevel(9).String() == "" {
		t.Fatal("unknown level must still stringify")
	}
}

func TestBandTrackerIntervals(t *testing.T) {
	bt := NewBandTracker(1000, 1e9) // 1µs SLA, 1s intervals
	bt.Record(5e8, 500)             // interval 0, within
	bt.Record(15e8, 1500)           // interval 1, violated
	bt.Record(15e8, 900)            // interval 1, within
	ivs := bt.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if ivs[0].Completed != 1 || ivs[0].WithinSLA != 1 || ivs[0].Violated != 0 {
		t.Fatalf("interval 0 = %+v", ivs[0])
	}
	if ivs[1].Completed != 2 || ivs[1].WithinSLA != 1 || ivs[1].Violated != 1 {
		t.Fatalf("interval 1 = %+v", ivs[1])
	}
	if ivs[1].OverSLATime != 500 {
		t.Fatalf("over-SLA time = %d", ivs[1].OverSLATime)
	}
	if ivs[1].Start != 1e9 {
		t.Fatalf("interval 1 start = %d", ivs[1].Start)
	}
}

func TestBandTrackerGapsFilled(t *testing.T) {
	bt := NewBandTracker(1000, 1e9)
	bt.Record(0, 100)
	bt.Record(5e9, 100) // skips intervals 1-4
	ivs := bt.Intervals()
	if len(ivs) != 6 {
		t.Fatalf("intervals = %d, want 6", len(ivs))
	}
	for i := 1; i <= 4; i++ {
		if ivs[i].Completed != 0 {
			t.Fatalf("gap interval %d non-empty", i)
		}
	}
}

func TestBandTrackerOutOfOrder(t *testing.T) {
	bt := NewBandTracker(1000, 1e9)
	bt.Record(5e9, 100)
	bt.Record(1e9, 2000) // earlier completion arriving late
	ivs := bt.Intervals()
	if ivs[1].Violated != 1 {
		t.Fatal("out-of-order record lost")
	}
}

func TestBandTrackerOutOfOrderEquivalence(t *testing.T) {
	// Concurrent workers deliver completions in arbitrary order; the
	// tracker must produce the same bands as a time-sorted stream.
	const sla, width = 1000, 1_000_000
	type comp struct{ t, lat int64 }
	var comps []comp
	// Deterministic pseudo-random completion stream spanning many
	// intervals, with latencies straddling every band boundary.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 5000; i++ {
		comps = append(comps, comp{
			t:   int64(next() % (50 * width)),
			lat: int64(next() % (4 * sla)),
		})
	}

	sorted := NewBandTracker(sla, width)
	ordered := append([]comp(nil), comps...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].t < ordered[j].t })
	for _, c := range ordered {
		sorted.Record(c.t, c.lat)
	}
	shuffled := NewBandTracker(sla, width)
	for _, c := range comps {
		shuffled.Record(c.t, c.lat)
	}

	a, b := sorted.Intervals(), shuffled.Intervals()
	if len(a) != len(b) {
		t.Fatalf("interval counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interval %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if sorted.ViolationRate() != shuffled.ViolationRate() {
		t.Fatal("violation rates differ")
	}
}

func TestBandTrackerNegativeTimeClamped(t *testing.T) {
	bt := NewBandTracker(1000, 1e9)
	bt.Record(-50, 100)
	if bt.Intervals()[0].Completed != 1 {
		t.Fatal("negative time not clamped into interval 0")
	}
}

func TestViolationRate(t *testing.T) {
	bt := NewBandTracker(1000, 1e9)
	if bt.ViolationRate() != 0 {
		t.Fatal("empty violation rate")
	}
	for i := 0; i < 80; i++ {
		bt.Record(int64(i)*1e7, 500)
	}
	for i := 0; i < 20; i++ {
		bt.Record(int64(i)*1e7, 5000)
	}
	if r := bt.ViolationRate(); r != 0.2 {
		t.Fatalf("violation rate = %v", r)
	}
}

func TestWorstInterval(t *testing.T) {
	bt := NewBandTracker(1000, 1e9)
	if _, ok := bt.WorstInterval(); ok {
		t.Fatal("empty tracker has no worst interval")
	}
	bt.Record(5e8, 5000)  // interval 0: 1 violation
	bt.Record(15e8, 5000) // interval 1: 2 violations
	bt.Record(16e8, 5000)
	w, ok := bt.WorstInterval()
	if !ok || w.Start != 1e9 || w.Violated != 2 {
		t.Fatalf("worst = %+v ok=%v", w, ok)
	}
}

func TestBandTrackerByLevelSums(t *testing.T) {
	bt := NewBandTracker(1000, 1e9)
	lats := []int64{100, 600, 1500, 9999}
	for _, l := range lats {
		bt.Record(0, l)
	}
	iv := bt.Intervals()[0]
	var sum int64
	for _, c := range iv.ByLevel {
		sum += c
	}
	if sum != iv.Completed {
		t.Fatalf("ByLevel sums to %d, completed %d", sum, iv.Completed)
	}
	if iv.ByLevel[Green] != 1 || iv.ByLevel[Yellow] != 1 || iv.ByLevel[Orange] != 1 || iv.ByLevel[Red] != 1 {
		t.Fatalf("ByLevel = %v", iv.ByLevel)
	}
}

func TestBandTrackerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"sla":   func() { NewBandTracker(0, 1e9) },
		"width": func() { NewBandTracker(1000, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAdjustmentSpeed(t *testing.T) {
	lats := []int64{500, 1500, 3000, 800, 2000}
	// sla=1000, n=5: over-SLA sums = 500 + 2000 + 1000 = 3500
	if got := AdjustmentSpeed(lats, 1000, 5); got != 3500 {
		t.Fatalf("AdjustmentSpeed = %d", got)
	}
	// n=2 considers only first two: 500
	if got := AdjustmentSpeed(lats, 1000, 2); got != 500 {
		t.Fatalf("AdjustmentSpeed(n=2) = %d", got)
	}
	// n beyond length clamps
	if got := AdjustmentSpeed(lats, 1000, 100); got != 3500 {
		t.Fatalf("AdjustmentSpeed(n=100) = %d", got)
	}
	if AdjustmentSpeed(nil, 1000, 10) != 0 {
		t.Fatal("empty latencies")
	}
}

func TestCalibrateSLA(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(1000)
	}
	sla := CalibrateSLA(h, 0.99, 2)
	// p99 of constant 1000 is ~1000 (bucket midpoint), doubled ~2000.
	if sla < 1500 || sla > 2500 {
		t.Fatalf("calibrated SLA = %d", sla)
	}
	if CalibrateSLA(NewHistogram(), 0.99, 2) < 1 {
		t.Fatal("empty calibration must be >= 1")
	}
}
