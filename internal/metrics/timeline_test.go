package metrics

import (
	"testing"
)

// fillTimeline records `perInterval` completions in each of `n` intervals.
func fillTimeline(tl *Timeline, startInterval, n, perInterval int, latency int64) {
	w := tl.Width()
	for i := 0; i < n; i++ {
		base := int64(startInterval+i) * w
		for j := 0; j < perInterval; j++ {
			tl.Record(base+int64(j), latency)
		}
	}
}

func TestTimelineThroughputSeries(t *testing.T) {
	tl := NewTimeline(1e9)
	fillTimeline(tl, 0, 3, 100, 1000)
	s := tl.ThroughputSeries()
	if len(s) != 3 {
		t.Fatalf("series len = %d", len(s))
	}
	for _, v := range s {
		if v != 100 {
			t.Fatalf("throughput = %v, want 100 q/s", v)
		}
	}
}

func TestTimelineSummary(t *testing.T) {
	tl := NewTimeline(1e9)
	fillTimeline(tl, 0, 5, 100, 1000)
	fillTimeline(tl, 5, 5, 200, 1000)
	sum := tl.ThroughputSummary()
	if sum.N != 10 || sum.Min != 100 || sum.Max != 200 || sum.Median != 150 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestTimelineLatencyQuantiles(t *testing.T) {
	tl := NewTimeline(1e9)
	fillTimeline(tl, 0, 1, 100, 1000)
	fillTimeline(tl, 1, 1, 100, 100000)
	qs := tl.LatencyQuantileSeries(0.5)
	if len(qs) != 2 {
		t.Fatalf("series len = %d", len(qs))
	}
	if qs[0] >= qs[1] {
		t.Fatalf("latency quantiles: %v", qs)
	}
}

func TestTimelineMergedLatency(t *testing.T) {
	tl := NewTimeline(1e9)
	fillTimeline(tl, 0, 2, 50, 1000)
	m := tl.MergedLatency()
	if m.Count() != 100 {
		t.Fatalf("merged count = %d", m.Count())
	}
}

func TestTimelineEmptyIntervalQuantileZero(t *testing.T) {
	tl := NewTimeline(1e9)
	tl.Record(0, 500)
	tl.Record(2.5e9, 500) // leaves interval 1 empty
	qs := tl.LatencyQuantileSeries(0.5)
	if qs[1] != 0 {
		t.Fatalf("empty interval quantile = %d", qs[1])
	}
}

func TestAdaptationTimeRecovery(t *testing.T) {
	tl := NewTimeline(1e9)
	fillTimeline(tl, 0, 10, 100, 1000) // baseline 100/s for 10s
	fillTimeline(tl, 10, 3, 10, 1000)  // dip to 10/s for 3s after change
	fillTimeline(tl, 13, 5, 100, 1000) // recovered
	d, ok := tl.AdaptationTime(10e9, 0.9, 2)
	if !ok {
		t.Fatal("recovery not detected")
	}
	// Dip lasts 3 intervals; recovery sustained from interval 13; with
	// sustain=2 the detector reports after interval 14 ends → delay 5s
	// from change at 10s... recoveredAt = (14-2+2)*1s = 14s? Let's assert
	// the delay is in a sane window rather than an exact formula.
	if d < 3e9 || d > 6e9 {
		t.Fatalf("adaptation delay = %d ns", d)
	}
}

func TestAdaptationTimeNeverRecovers(t *testing.T) {
	tl := NewTimeline(1e9)
	fillTimeline(tl, 0, 5, 100, 1000)
	fillTimeline(tl, 5, 10, 10, 1000) // permanent degradation
	if _, ok := tl.AdaptationTime(5e9, 0.9, 2); ok {
		t.Fatal("false recovery detected")
	}
}

func TestAdaptationTimeNoBaseline(t *testing.T) {
	tl := NewTimeline(1e9)
	fillTimeline(tl, 0, 5, 100, 1000)
	if _, ok := tl.AdaptationTime(0, 0.9, 2); ok {
		t.Fatal("recovery with no pre-change baseline")
	}
	if _, ok := tl.AdaptationTime(100e9, 0.9, 2); ok {
		t.Fatal("recovery with change beyond timeline")
	}
}

func TestAdaptationTimeInstantRecovery(t *testing.T) {
	tl := NewTimeline(1e9)
	fillTimeline(tl, 0, 10, 100, 1000) // no dip at all
	d, ok := tl.AdaptationTime(5e9, 0.9, 1)
	if !ok {
		t.Fatal("instant recovery not detected")
	}
	if d > 2e9 {
		t.Fatalf("instant recovery delay = %d", d)
	}
}

func TestDipDepth(t *testing.T) {
	tl := NewTimeline(1e9)
	fillTimeline(tl, 0, 5, 100, 1000)
	fillTimeline(tl, 5, 1, 20, 1000) // 80% drop
	fillTimeline(tl, 6, 4, 100, 1000)
	d := tl.DipDepth(5e9)
	if d < 0.75 || d > 0.85 {
		t.Fatalf("dip depth = %v, want ~0.8", d)
	}
	if tl.DipDepth(0) != 0 {
		t.Fatal("no-baseline dip depth")
	}
}

func TestTimelinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero width")
		}
	}()
	NewTimeline(0)
}

func TestTimelineNegativeTimeClamped(t *testing.T) {
	tl := NewTimeline(1e9)
	tl.Record(-1, 100)
	if tl.Intervals() != 1 {
		t.Fatal("negative time not clamped")
	}
}
