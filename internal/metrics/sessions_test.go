package metrics

import "testing"

func TestSessionTracker(t *testing.T) {
	tr := NewSessionTracker(100)
	// Session 1: two ops, both inside the budget.
	tr.Begin(0)
	tr.Observe(40)
	tr.Observe(90)
	// Session 2: second op lands past start+budget.
	tr.Begin(1000)
	tr.Observe(1050)
	tr.Observe(1200)
	// Session 3: single op on the boundary (done == start+budget is met).
	tr.Begin(2000)
	tr.Observe(2100)
	st := tr.Stats()
	if st.Sessions != 3 || st.MetBudget != 2 || st.LateOps != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.MetRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("MetRate = %v", got)
	}
	if st.Makespan.Count() != 3 || st.Makespan.Max() < 200 {
		t.Fatalf("makespan histogram: count=%d max=%d", st.Makespan.Count(), st.Makespan.Max())
	}
	// Stats is idempotent: closing again must not double-count.
	st2 := tr.Stats()
	if st2.Sessions != 3 || st2.MetBudget != 2 {
		t.Fatalf("second Stats = %+v", st2)
	}
}

func TestSessionTrackerNoBudget(t *testing.T) {
	tr := NewSessionTracker(0)
	tr.Observe(5) // before any Begin: ignored
	tr.Begin(10)
	tr.Observe(500_000)
	tr.Begin(600_000)
	tr.Observe(700_000)
	st := tr.Stats()
	if st.Sessions != 2 || st.MetBudget != 2 || st.LateOps != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCollectorSessions(t *testing.T) {
	c := NewCollector(CollectorConfig{IntervalNs: 1000, SLANs: 50, SessionBudgetNs: 100})
	c.BeginSession(0)
	c.Record(40, 40)
	c.Record(150, 30) // past budget
	c.BeginSession(500)
	c.Record(560, 20)
	s := c.Snapshot()
	if s.Sessions == nil {
		t.Fatal("snapshot has no session stats")
	}
	if s.Sessions.Sessions != 2 || s.Sessions.MetBudget != 1 || s.Sessions.LateOps != 1 {
		t.Fatalf("sessions = %+v", s.Sessions)
	}
	if s.Sessions.BudgetNs != 100 {
		t.Fatalf("budget = %d", s.Sessions.BudgetNs)
	}
}

func TestCollectorWithoutSessionsUnchanged(t *testing.T) {
	c := NewCollector(CollectorConfig{IntervalNs: 1000, SLANs: 50, SessionBudgetNs: 100})
	c.Record(10, 10)
	if s := c.Snapshot(); s.Sessions != nil {
		t.Fatal("non-session collector grew session stats")
	}
}
