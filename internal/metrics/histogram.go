// Package metrics implements the measurement machinery the paper proposes
// for learned-system benchmarks (§V-D): descriptive throughput statistics
// (box plots, Fig 1a), cumulative-completion curves with area-vs-ideal
// scores (Fig 1b), SLA latency bands with adjustment-speed metrics
// (Fig 1c), throughput timelines, and adaptation-time detection.
//
// All duration quantities are expressed in nanoseconds as int64, matching
// time.Duration, so the package works identically under the real clock and
// the simulator's virtual clock.
package metrics

import (
	"fmt"
	"math"
)

// Histogram is a log-bucketed latency histogram in the spirit of HDR
// histograms: values are bucketed with bounded relative error (~4.2% with
// the default 16 sub-buckets per octave), supporting quantile queries
// without retaining samples. The zero value is not usable; call
// NewHistogram.
type Histogram struct {
	counts     []uint64
	subBuckets int
	total      uint64
	sum        float64
	min, max   int64
}

// NewHistogram returns an empty histogram covering [0, 2^62) ns.
func NewHistogram() *Histogram {
	const subBuckets = 16
	// 63 octaves * subBuckets is a safe upper bound on bucket count.
	return &Histogram{
		counts:     make([]uint64, 63*subBuckets),
		subBuckets: subBuckets,
		min:        math.MaxInt64,
	}
}

func (h *Histogram) bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < int64(h.subBuckets) {
		return int(v)
	}
	// Octave = position of the highest set bit above the sub-bucket
	// resolution; sub-bucket = next log2(subBuckets) bits.
	octave := 63 - leadingZeros(uint64(v))
	shift := octave - log2int(h.subBuckets)
	sub := int(v>>uint(shift)) - h.subBuckets
	return (octave-log2int(h.subBuckets)+1)*h.subBuckets + sub
}

// bucketLow returns the lowest value mapping to bucket i (inverse of
// bucketOf for reporting).
func (h *Histogram) bucketLow(i int) int64 {
	if i < h.subBuckets {
		return int64(i)
	}
	octaveIdx := i/h.subBuckets - 1
	sub := i % h.subBuckets
	shift := octaveIdx
	return int64(h.subBuckets+sub) << uint(shift)
}

func leadingZeros(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

func log2int(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Record adds one observation of v nanoseconds.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	b := h.bucketOf(v)
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the exact minimum recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum recorded value (0 when empty).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an approximation of the q-quantile (0<=q<=1) with the
// histogram's relative-error bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			lo := h.bucketLow(i)
			hi := h.bucketLow(i + 1)
			v := lo + (hi-lo)/2
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CountAbove returns how many recorded values are (approximately) above the
// threshold. Values in the threshold's own bucket are counted above only if
// the bucket midpoint exceeds the threshold, keeping the error within the
// bucket resolution.
func (h *Histogram) CountAbove(threshold int64) uint64 {
	tb := h.bucketOf(threshold)
	var n uint64
	for i := tb; i < len(h.counts); i++ {
		if i == tb {
			mid := h.bucketLow(i) + (h.bucketLow(i+1)-h.bucketLow(i))/2
			if mid <= threshold {
				continue
			}
		}
		n += h.counts[i]
	}
	return n
}

// Merge folds other into h. Both histograms must have been created by
// NewHistogram (same bucket layout); merging mismatched layouts would
// silently misattribute counts, so it panics instead.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if len(other.counts) != len(h.counts) || other.subBuckets != h.subBuckets {
		panic(fmt.Sprintf("metrics: Merge of mismatched histogram layouts (%d/%d buckets, %d/%d sub-buckets)",
			len(h.counts), len(other.counts), h.subBuckets, other.subBuckets))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram for reuse.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// String summarizes the histogram for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.0fns p50=%d p99=%d max=%d}",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}
